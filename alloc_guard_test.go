package mtsim

import "testing"

// runAllocCeiling is the regression ceiling for one context-reused MTS
// run of the BenchmarkRunSetupReuse configuration (50 nodes, 10 m/s,
// 20 s). The packet arena landed this at ~16.7 k allocs/op (from ~107 k
// before it); the control-plane arena (router recycling, pooled route
// buffers, cached RNG labels) brought the steady state down to ~14.6 k.
// The ceiling carries ~23 % headroom over the recorded value so routine
// noise passes while losing either arena (or a new per-packet allocation
// on the hot path) fails loudly. If you raise this, update the
// PERFORMANCE.md "control-plane arena" table in the same commit.
const runAllocCeiling = 18_000

// TestRunAllocationCeiling is the allocation-regression guard behind the
// bench smoke: it measures the steady-state allocations of a cached-
// context run directly (no -bench invocation needed), so plain `go test
// ./...` — and therefore CI — fails when the data plane regresses.
func TestRunAllocationCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation guard runs full simulations")
	}
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	cfg := benchBase()
	cfg.Protocol = "MTS"
	cfg.MaxSpeed = 10
	cfg.Seed = 1
	ctx := NewRunContext()
	// Warm the context: the first run grows the scaffolding and the
	// arena's free lists; the guard is about the steady state.
	if _, err := ctx.RunOne(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2, func() {
		if _, err := ctx.RunOne(cfg); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("context-reused run: %.0f allocs (ceiling %d)", allocs, runAllocCeiling)
	if allocs > runAllocCeiling {
		t.Errorf("allocation regression: %.0f allocs/run exceeds the %d ceiling; "+
			"profile the data plane (packet arena release points) before raising it",
			allocs, runAllocCeiling)
	}
}
