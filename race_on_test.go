//go:build race

package mtsim

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
