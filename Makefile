GO ?= go

.PHONY: build test test-race vet bench bench-smoke clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector lane (the experiment sweep fans simulations out over a
# worker pool; this keeps the aggregation path provably race-clean).
test-race:
	$(GO) test -race ./...

# Full benchmark suite; see PERFORMANCE.md for methodology.
bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime 5x .
	$(GO) test -run xxx -bench . -benchmem ./internal/...

# One-iteration smoke of every benchmark (CI).
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x .
	$(GO) test -run xxx -bench . -benchtime 1x ./internal/...

clean:
	$(GO) clean ./...
