GO ?= go

.PHONY: build test test-race test-chaos vet bench bench-smoke sweep-demo sweepd-demo coevolution-demo clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector lane (the experiment sweep fans simulations out over a
# worker pool; this keeps the aggregation path provably race-clean).
test-race:
	$(GO) test -race ./...

# Fault-injection lane: the seeded chaos suite (internal/faultinject),
# plain and under the race detector — sweeps under injected panics,
# watchdog kills, and torn cache writes must aggregate bit-identically
# to fault-free sweeps (docs/ARCHITECTURE.md "Failure semantics").
test-chaos:
	$(GO) test -v ./internal/faultinject/
	$(GO) test -race ./internal/faultinject/

# Full benchmark suite; see PERFORMANCE.md for methodology.
bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime 5x .
	$(GO) test -run xxx -bench . -benchmem ./internal/...

# One-iteration smoke of every benchmark (CI).
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x .
	$(GO) test -run xxx -bench . -benchtime 1x ./internal/...

# Demonstrate the content-addressed run cache (internal/runcache): the
# first invocation simulates and fills the cache, the second serves every
# cell from disk — asserted: the demo FAILS unless the second run reports
# all 8 hits and 0 misses (guards the CLI cache wiring, not just the
# engine, which TestSweepWarmCacheRunsNothing already covers).
SWEEP_DEMO_FLAGS = -duration 8 -reps 2 -speeds 2,10 -protocols AODV,MTS -only fig9 -cache-dir .sweep-demo-cache
sweep-demo:
	rm -rf .sweep-demo-cache
	$(GO) run ./cmd/experiments $(SWEEP_DEMO_FLAGS)
	$(GO) run ./cmd/experiments $(SWEEP_DEMO_FLAGS) -resume 2>.sweep-demo-cache/stderr.log; \
	  status=$$?; cat .sweep-demo-cache/stderr.log >&2; \
	  [ $$status -eq 0 ] && grep -q '8 hits, 0 misses' .sweep-demo-cache/stderr.log
	rm -rf .sweep-demo-cache

# Attacker–defender co-evolution demo (internal/experiment): plays the
# iterated best-response game from examples/coevolution and re-diffs the
# payoff table and move history against the committed output — the
# equilibrium is evidence, so it must stay reproducible byte for byte,
# not just compile. Regenerate the committed output after an intentional
# behaviour change with:
#	go run ./examples/coevolution > examples/coevolution/OUTPUT.txt
coevolution-demo:
	$(GO) run ./examples/coevolution > .coevolution-demo.out
	diff -u examples/coevolution/OUTPUT.txt .coevolution-demo.out
	rm -f .coevolution-demo.out

# Distributed sweep fabric demo (cmd/sweepd, internal/sweepfabric):
# boots a coordinator, shards a mini-sweep across two separate worker
# processes, and asserts the warm re-query is served from the
# rendered-query memo with zero cells simulated (the script fails
# otherwise — it is the CI fabric job's local equivalent).
sweepd-demo:
	bash scripts/sweepd_demo.sh

clean:
	$(GO) clean ./...
	rm -rf .sweep-demo-cache
