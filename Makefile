GO ?= go

.PHONY: build test vet bench bench-smoke clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark suite; see PERFORMANCE.md for methodology.
bench:
	$(GO) test -run xxx -bench . -benchmem -benchtime 5x .
	$(GO) test -run xxx -bench . -benchmem ./internal/...

# One-iteration smoke of every benchmark (CI).
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x .
	$(GO) test -run xxx -bench . -benchtime 1x ./internal/...

clean:
	$(GO) clean ./...
