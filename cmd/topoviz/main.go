// Command topoviz renders an ASCII snapshot of a scenario's topology at
// chosen moments of virtual time: node positions on the field, the TCP
// endpoints (S/D), the eavesdropper (E), and radio adjacency statistics.
// It is a debugging aid for understanding why a given seed behaves the way
// it does.
//
//	topoviz -protocol MTS -speed 10 -seed 4 -at 0,50,100
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mtsim"
)

func main() {
	var (
		protocol = flag.String("protocol", "MTS", "routing protocol")
		nodes    = flag.Int("nodes", 50, "number of nodes")
		speed    = flag.Float64("speed", 10, "MAXSPEED m/s")
		seed     = flag.Int64("seed", 1, "seed")
		at       = flag.String("at", "0,100,200", "comma-separated snapshot times (s)")
		width    = flag.Int("width", 50, "render width in characters")
	)
	flag.Parse()

	cfg := mtsim.DefaultConfig()
	cfg.Protocol = *protocol
	cfg.Nodes = *nodes
	cfg.MaxSpeed = *speed
	cfg.Seed = *seed

	times := parseTimes(*at)
	last := times[len(times)-1]
	cfg.Duration = mtsim.Seconds(last + 1)

	s, err := mtsim.Build(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topoviz:", err)
		os.Exit(1)
	}
	srcID, dstID := s.Flows[0].Src, s.Flows[0].Dst
	fmt.Printf("seed %d: flow %d -> %d, eavesdropper %d\n\n", *seed, srcID, dstID, s.Eaves.ID)

	for _, ts := range times {
		s.Sched.RunUntil(mtsim.Time(mtsim.Seconds(ts)))
		fmt.Printf("t = %.0fs\n", ts)
		render(s, *width)
		fmt.Println()
	}
}

func render(s *mtsim.Scenario, w int) {
	h := w / 2 // terminal cells are ~2:1
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", w))
	}
	fw, fh := s.Cfg.Field.Width(), s.Cfg.Field.Height()
	links := 0
	for i, nd := range s.Nodes {
		p := nd.Position()
		x := int(p.X / fw * float64(w-1))
		y := int(p.Y / fh * float64(h-1))
		c := byte('o')
		switch {
		case mtsim.NodeID(i) == s.Flows[0].Src:
			c = 'S'
		case mtsim.NodeID(i) == s.Flows[0].Dst:
			c = 'D'
		case mtsim.NodeID(i) == s.Eaves.ID:
			c = 'E'
		}
		if grid[y][x] == '.' || c != 'o' {
			grid[y][x] = c
		}
		for j := i + 1; j < len(s.Nodes); j++ {
			if nd.Position().DistanceTo(s.Nodes[j].Position()) <= s.Cfg.RxRange {
				links++
			}
		}
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
	fmt.Printf("(%d nodes, %d radio links, mean degree %.1f)\n",
		len(s.Nodes), links, 2*float64(links)/float64(len(s.Nodes)))
}

func parseTimes(s string) []float64 {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topoviz: bad -at:", err)
			os.Exit(2)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		out = []float64{0}
	}
	return out
}
