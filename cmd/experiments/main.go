// Command experiments regenerates the paper's complete evaluation —
// Table I and Figs. 5–11 — and writes the aggregated tables and CSV series
// to a results directory.
//
// The full reproduction (the paper's 200 s × 5 repetitions):
//
//	experiments -out results
//
// A quick pass for smoke-testing the pipeline:
//
//	experiments -duration 30 -reps 2 -out /tmp/results
//
// Single artefacts:
//
//	experiments -only fig7
//	experiments -only table1
//
// The adversary sweep (threat model × k, beyond the paper's lone
// eavesdropper; see internal/adversary):
//
//	experiments -only adversary -ks 1,2,4 -duration 30 -reps 2
//
// The defender-vs-attacker grid (countermeasure × adversary at one speed;
// see internal/countermeasure — data shuffling and adversary-aware MTS
// against coalitions of taps):
//
//	experiments -only countermeasure -cms none,shuffle -ks 1,2 -duration 30 -reps 2
//
// Cached and resumable sweeps (see internal/runcache): with -cache-dir,
// every completed run is persisted under a content address of its full
// configuration and seed, so re-running any sweep serves identical cells
// from disk without simulating, and a killed sweep picks up where it left
// off:
//
//	experiments -out results -cache-dir .mtsim-cache            # cold: simulates and fills the cache
//	experiments -out results -cache-dir .mtsim-cache            # warm: zero simulations, identical output
//	experiments -out results -cache-dir .mtsim-cache -resume    # same, stating the intent after an interruption
//
// The cache applies to the sweep artefacts (figures, adversary grids);
// -only table1 and -only timeseries are single runs and always execute.
//
// Fault-tolerant sweeps (see internal/experiment): -keep-going completes
// the healthy grid and records failed cells instead of cancelling on the
// first failure (exit status 3, with a failed-cell summary on stderr, if
// any cell ultimately failed); -max-retries re-attempts failed cells
// (same seed — a retry is byte-identical to a clean run); -run-timeout
// and -run-events arm the per-run watchdog against hung and livelocked
// simulations; -journal appends one JSONL record per attempt:
//
//	experiments -keep-going -max-retries 2 -run-timeout 5m -journal attempts.jsonl -out results
//
// Distributed sweeps (see internal/sweepfabric and cmd/sweepd): -fabric
// points the sweep at a sweepd coordinator — cells are enqueued there,
// simulated by the fabric's worker fleet (plus -fabric-workers loops run
// in this process), and aggregated from the shared content-addressed
// cache. Determinism makes the output byte-identical to a local run:
//
//	experiments -fabric http://127.0.0.1:7077 -fabric-workers 2 -out results
//
// Profiling: -profile-dir writes a CPU profile of the whole invocation
// (all sweep workers) to <dir>/cpu.pprof for `go tool pprof`, so a slow
// grid ships its own perf artifact:
//
//	experiments -out results -profile-dir results/pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mtsim"
	"mtsim/internal/sweepfabric"
)

func main() {
	var (
		duration  = flag.Float64("duration", 200, "simulated seconds per run")
		reps      = flag.Int("reps", 5, "repetitions per (protocol, speed) cell")
		speeds    = flag.String("speeds", "2,5,10,15,20", "comma-separated MAXSPEED values (m/s)")
		protocols = flag.String("protocols", "DSR,AODV,MTS", "comma-separated protocols")
		nodes     = flag.Int("nodes", 50, "number of nodes")
		seedBase  = flag.Int64("seedbase", 1, "first seed; repetition r uses seedbase+r")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		only      = flag.String("only", "all", "what to produce: all, table1, timeseries, adversary, countermeasure, fig5..fig11")
		outDir    = flag.String("out", "", "directory for CSV/markdown output (empty = stdout only)")
		quiet     = flag.Bool("q", false, "suppress progress output")
		advModels = flag.String("advmodels", "coalition,mobile,blackhole,grayhole",
			"comma-separated adversary models for -only adversary")
		advKs = flag.String("ks", "1,2,4", "comma-separated coalition sizes k for -only adversary/countermeasure")
		cms   = flag.String("cms", "none,shuffle,aware,shuffle+aware",
			"comma-separated countermeasure models for -only countermeasure")
		cmAdvModels = flag.String("cm-advmodels", "coalition",
			"comma-separated adversary models crossed against -cms for -only countermeasure")
		cmSpeed = flag.Float64("cm-speed", 10,
			"MAXSPEED (m/s) at which the -only countermeasure tables are rendered")
		coevAttackers = flag.String("coev-attackers", "eavesdropper,adaptive,wormhole,rushing",
			"comma-separated adversary models forming the attacker strategy set for -only coevolution (first entry is the opening strategy)")
		coevDefenders = flag.String("coev-defenders", "none,shuffle,trust",
			"comma-separated countermeasure models forming the defender strategy set for -only coevolution (first entry is the opening strategy)")
		coevRounds = flag.Int("coev-rounds", 8,
			"best-response round limit for -only coevolution")
		cacheDir = flag.String("cache-dir", "",
			"content-addressed run cache directory: sweep cells already cached are served without simulating, newly computed cells are persisted (empty = no cache)")
		noCache = flag.Bool("no-cache", false,
			"bypass -cache-dir entirely: every cell is recomputed and nothing is read from or written to the cache")
		resume = flag.Bool("resume", false,
			"resume an interrupted sweep from -cache-dir (asserts a cache is in use; completed cells are never recomputed)")
		keepGoing = flag.Bool("keep-going", false,
			"complete the healthy grid and record failed cells instead of cancelling the sweep on the first failure; exit status 3 if any cell ultimately failed")
		maxRetries = flag.Int("max-retries", 0,
			"re-attempts per failed cell before giving up on it (same configuration and seed: a retry is byte-identical to a clean run)")
		runTimeout = flag.Duration("run-timeout", 0,
			"wall-clock watchdog per run (e.g. 5m): hung runs are killed cleanly and count as failed cells (0 = unlimited)")
		runEvents = flag.Uint64("run-events", 0,
			"simulated-event watchdog budget per run: livelocked runs are killed cleanly (0 = unlimited)")
		journalPath = flag.String("journal", "",
			"append one JSONL record per run attempt (successes, failures, cache hits) to this file")
		profileDir = flag.String("profile-dir", "",
			"write a CPU profile of the whole invocation to <dir>/cpu.pprof (inspect with `go tool pprof`); covers the sweep workers, so long grids emit their own perf artifact")
		fabric = flag.String("fabric", "",
			"sweepd coordinator URL (e.g. http://127.0.0.1:7077): the sweep's cells are enqueued to the fabric, simulated by its worker fleet, and aggregated from the shared cache — byte-identical to a local run (see cmd/sweepd)")
		fabricWorkers = flag.Int("fabric-workers", 0,
			"in-process worker loops contributed to the -fabric coordinator while this sweep waits (0 = rely on the fleet)")
		fabricTimeout = flag.Duration("fabric-timeout", 10*time.Minute,
			"how long -fabric waits for the fleet to finish the grid")
	)
	flag.Parse()

	// Validate -only before any simulation: a typo like "fig12" must be
	// a fast, loud failure, not a full sweep that renders nothing.
	fail(validateOnly(*only))

	if *profileDir != "" {
		fail(startCPUProfile(*profileDir))
		defer stopCPUProfile()
	}

	if *resume && (*cacheDir == "" || *noCache) {
		fail(fmt.Errorf("-resume needs -cache-dir (and is incompatible with -no-cache): resumption works by serving completed cells from the cache"))
	}
	if *maxRetries < 0 {
		fail(fmt.Errorf("-max-retries must be >= 0"))
	}

	base := mtsim.DefaultConfig()
	base.Nodes = *nodes
	base.Duration = mtsim.Seconds(*duration)

	if *only == "table1" {
		out, err := mtsim.Table1(base, *seedBase)
		fail(err)
		fmt.Print(out)
		writeFile(*outDir, "table1.txt", out)
		return
	}

	if *only == "timeseries" {
		// Throughput over simulation time, one series per protocol (the
		// Fig. 9 caption's view), at MAXSPEED 10 m/s.
		var csv strings.Builder
		csv.WriteString("t_s")
		var series [][]mtsim.Sample
		protos := splitList(*protocols)
		for _, proto := range protos {
			cfg := base
			cfg.Protocol = proto
			cfg.MaxSpeed = 10
			cfg.Seed = *seedBase
			s, err := mtsim.Build(cfg)
			fail(err)
			ser, _ := s.RunSampled(10 * mtsim.Second)
			series = append(series, ser)
			csv.WriteString("," + proto + "_pps")
		}
		csv.WriteString("\n")
		for i := range series[0] {
			fmt.Fprintf(&csv, "%.0f", series[0][i].At.Seconds())
			for p := range series {
				fmt.Fprintf(&csv, ",%.2f", series[p][i].ThroughputPps)
			}
			csv.WriteString("\n")
		}
		fmt.Print(csv.String())
		writeFile(*outDir, "fig9_timeseries.csv", csv.String())
		return
	}

	sweep := mtsim.PaperSweep(base)
	sweep.Reps = *reps
	sweep.SeedBase = *seedBase
	sweep.Parallelism = *parallel
	sweep.Protocols = splitList(*protocols)
	sweep.Speeds = parseSpeeds(*speeds)
	var cache *mtsim.RunCache
	if *cacheDir != "" && !*noCache {
		var err error
		cache, err = mtsim.OpenRunCache(*cacheDir)
		fail(err)
		sweep.Cache = cache
	}
	sweep.KeepGoing = *keepGoing
	sweep.Watchdog = mtsim.Watchdog{MaxEvents: *runEvents, WallClock: *runTimeout}
	if *maxRetries > 0 {
		sweep.Retry = mtsim.RetryPolicy{
			MaxAttempts: *maxRetries + 1,
			Backoff:     time.Second,
			MaxBackoff:  30 * time.Second,
		}
	}
	if *journalPath != "" {
		j, err := mtsim.OpenJournal(*journalPath)
		fail(err)
		sweep.Journal = j
	}

	if *only == "coevolution" {
		// Iterated best response over the attacker × defender strategy
		// sets at a single protocol and speed; the sweep's cache/retry/
		// journal plumbing carries over to every evaluation sweep.
		coev := mtsim.Coevolution{
			Base:        base,
			Speed:       *cmSpeed,
			Reps:        *reps,
			SeedBase:    *seedBase,
			MaxRounds:   *coevRounds,
			Parallelism: *parallel,
			Cache:       sweep.Cache,
			Retry:       sweep.Retry,
			Watchdog:    sweep.Watchdog,
			Journal:     sweep.Journal,
		}
		for _, model := range splitList(*coevAttackers) {
			coev.Attackers = append(coev.Attackers, mtsim.AdversarySpec{Model: model})
		}
		for _, model := range splitList(*coevDefenders) {
			coev.Defenders = append(coev.Defenders, mtsim.CountermeasureSpec{Model: model})
		}
		start := time.Now()
		cres, err := coev.Run()
		if err != nil {
			if sweep.Journal != nil {
				sweep.Journal.Close()
			}
			fail(err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "coevolution finished in %v\n\n",
				time.Since(start).Round(time.Millisecond))
		}
		out := cres.PayoffTable() + "\n" + cres.History()
		fmt.Print(out)
		writeFile(*outDir, "coevolution.txt", out)
		writeFile(*outDir, "coevolution_payoffs.csv", cres.PayoffCSV())
		if sweep.Journal != nil {
			sweep.Journal.Close()
		}
		return
	}

	if *only == "adversary" {
		// Threat-model axis: every requested model at every coalition
		// size k, on top of the protocol × speed grid.
		for _, model := range splitList(*advModels) {
			for _, ks := range splitList(*advKs) {
				k, err := strconv.Atoi(ks)
				fail(err)
				sweep.Adversaries = append(sweep.Adversaries,
					mtsim.AdversarySpec{Model: model, K: k})
			}
		}
	}

	if *only == "countermeasure" {
		// Defender × attacker grid: every requested countermeasure against
		// every requested adversary (model × k), at the single -cm-speed
		// (the grid is already three axes deep; the speed sweep belongs to
		// the paper figures).
		sweep.Speeds = []float64{*cmSpeed}
		for _, model := range splitList(*cmAdvModels) {
			for _, ks := range splitList(*advKs) {
				k, err := strconv.Atoi(ks)
				fail(err)
				sweep.Adversaries = append(sweep.Adversaries,
					mtsim.AdversarySpec{Model: model, K: k})
			}
		}
		for _, model := range splitList(*cms) {
			sweep.Countermeasures = append(sweep.Countermeasures,
				mtsim.CountermeasureSpec{Model: model})
		}
	}

	total := len(sweep.Protocols) * len(sweep.Speeds) * sweep.Reps
	if n := len(sweep.Adversaries); n > 0 {
		total *= n
	}
	if n := len(sweep.Countermeasures); n > 0 {
		total *= n
	}
	var done int64
	if !*quiet {
		fmt.Fprintf(os.Stderr, "running %d simulations (%s × %v m/s × %d reps, %.0fs each)...\n",
			total, *protocols, sweep.Speeds, sweep.Reps, *duration)
		sweep.OnRun = func(m *mtsim.Metrics) {
			n := atomic.AddInt64(&done, 1)
			fmt.Fprintf(os.Stderr, "\r%3d/%d done", n, total)
		}
	}
	if *fabric != "" {
		// Fabric mode: the fleet fills the shared store, then the
		// ordinary Run below aggregates entirely from cache — the same
		// code path as a local sweep, so the output is byte-identical.
		fail(runFabric(&sweep, *fabric, *fabricWorkers, *fabricTimeout, cache, *quiet))
	}

	start := time.Now()
	res, err := sweep.Run()
	if err != nil {
		// The non-KeepGoing first-error exit bypasses conclude();
		// flush the journal here so the attempt log survives the crash
		// it just recorded.
		if sweep.Journal != nil {
			if cerr := sweep.Journal.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "experiments: journal:", cerr)
			}
		}
		fail(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "\rsweep finished in %v", time.Since(start).Round(time.Millisecond))
		if sweep.Cache != nil {
			fmt.Fprintf(os.Stderr, " — cache: %d hits, %d misses (%s)",
				res.CacheHits, res.CacheMisses, *cacheDir)
		}
		fmt.Fprintln(os.Stderr)
		fmt.Fprintln(os.Stderr)
	}
	if res.CachePutErrs > 0 {
		// An error signal, not progress output: never silenced by -q. A
		// sweep whose results failed to checkpoint will recompute them on
		// resume.
		fmt.Fprintf(os.Stderr, "warning: %d results could not be written to the cache", res.CachePutErrs)
		if res.CacheFirstPutErr != nil {
			fmt.Fprintf(os.Stderr, " (first: %v)", res.CacheFirstPutErr)
		}
		fmt.Fprintln(os.Stderr)
	}
	if cache != nil {
		if h := cache.Health(); h != (mtsim.CacheHealth{}) {
			fmt.Fprintf(os.Stderr, "warning: cache degraded: %d corrupt entries quarantined (under %s/quarantine), %d erroring reads, %d stale-version misses\n",
				h.Quarantined, *cacheDir, h.DegradedReads, h.StaleMisses)
		}
	}
	// conclude runs after the artefacts are rendered: a sweep that lost
	// cells prints the post-mortem summary on stderr and exits non-zero so
	// scripts and CI notice the degraded results.
	conclude := func() {
		if sweep.Journal != nil {
			sweep.Journal.Close()
		}
		if len(res.Failed) == 0 {
			return
		}
		fmt.Fprintln(os.Stderr)
		fmt.Fprint(os.Stderr, res.FailedSummary())
		fmt.Fprintf(os.Stderr, "results above are degraded: %d runs failed every attempt\n", len(res.Failed))
		stopCPUProfile() // os.Exit skips defers; flush the profile first
		os.Exit(3)
	}

	if *only == "countermeasure" {
		// One defence-vs-metric table per figure and adversary: rows are
		// countermeasures, columns protocols — the defender-vs-attacker
		// grid (how much each defence claws back from each threat model).
		figs := mtsim.CountermeasureFigures()
		if ri, ok := mtsim.FigureByID("advRi"); ok {
			figs = append(figs, ri)
		}
		if dv, ok := mtsim.FigureByID("advDeliv"); ok {
			figs = append(figs, dv)
		}
		var md strings.Builder
		for _, fig := range figs {
			// The engine's canonical labels, not Spec.Label(): colliding
			// specs get "#n" suffixes and must render as distinct cells.
			for _, advLabel := range sweep.AdversaryLabels() {
				table := res.CountermeasureTable(fig, *cmSpeed, advLabel)
				fmt.Println(table)
				md.WriteString(table)
				md.WriteString("\n")
				writeFile(*outDir, fmt.Sprintf("%s_%s.csv", fig.ID, advLabel),
					res.CountermeasureCSV(fig, *cmSpeed, advLabel))
			}
			fmt.Println("expect:", fig.Expect)
			fmt.Println()
		}
		writeFile(*outDir, "countermeasure.txt", md.String())
		conclude()
		return
	}

	if *only == "adversary" {
		// One Ri-vs-adversary table per metric and speed, alongside the
		// paper's per-speed figures.
		var md strings.Builder
		for _, fig := range mtsim.AdversaryFigures() {
			for _, v := range sweep.Speeds {
				table := res.AdversaryTable(fig, v)
				fmt.Println(table)
				md.WriteString(table)
				md.WriteString("\n")
				writeFile(*outDir, fmt.Sprintf("%s_speed%g.csv", fig.ID, v),
					res.AdversaryCSV(fig, v))
			}
			fmt.Println("expect:", fig.Expect)
			fmt.Println()
		}
		writeFile(*outDir, "adversary.txt", md.String())
		conclude()
		return
	}

	var md strings.Builder
	for _, fig := range mtsim.PaperFigures() {
		if *only != "all" && *only != fig.ID {
			continue
		}
		table := res.Table(fig)
		fmt.Println(table)
		fmt.Println("paper:", fig.Expect)
		fmt.Println()
		md.WriteString(table)
		md.WriteString("paper: " + fig.Expect + "\n\n")
		writeFile(*outDir, fig.ID+".csv", res.CSV(fig))
	}
	if *only == "all" {
		out, err := mtsim.Table1(base, *seedBase)
		fail(err)
		fmt.Print(out)
		writeFile(*outDir, "table1.txt", out)
		writeFile(*outDir, "figures.txt", md.String())
	}
	conclude()
}

// validateOnly rejects unknown -only values before anything simulates.
func validateOnly(only string) error {
	valid := []string{"all", "table1", "timeseries", "adversary", "countermeasure", "coevolution"}
	for _, fig := range mtsim.PaperFigures() {
		valid = append(valid, fig.ID)
	}
	for _, v := range valid {
		if only == v {
			return nil
		}
	}
	return fmt.Errorf("-only %q is not a known artefact; valid values: %s",
		only, strings.Join(valid, ", "))
}

// runFabric pushes the sweep's grid through a sweepd coordinator and
// repoints the sweep's cache at the fabric: a local tier (the -cache-dir
// store, if any) over the coordinator's shared store. When it returns,
// every cell is a cache hit and sweep.Run simulates nothing.
func runFabric(sweep *mtsim.Sweep, baseURL string, workers int, timeout time.Duration, local *mtsim.RunCache, quiet bool) error {
	client := sweepfabric.NewClient(baseURL)
	if err := client.WaitReady(10 * time.Second); err != nil {
		return err
	}
	jobs := sweep.Jobs()
	sum, err := client.Enqueue(jobs)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "fabric: %d cells (%d new, %d already cached, %d in flight) at %s\n",
			len(jobs), sum.Queued, sum.AlreadyDone, sum.AlreadyPending, baseURL)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	if workers > 0 {
		w := &sweepfabric.Worker{
			Coordinator: client,
			Name:        fmt.Sprintf("experiments:%d", os.Getpid()),
			Parallel:    workers,
			Batch:       2,
			Cache:       cacheOrNil(local),
			Exec: mtsim.Executor{
				Runner:   sweep.Runner,
				Retry:    sweep.Retry,
				Watchdog: sweep.Watchdog,
				Journal:  sweep.Journal,
			},
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }() //nolint:errcheck
	}

	deadline := time.Now().Add(timeout)
	for {
		st, err := client.Wait(sum.Keys, 2*time.Second)
		if err != nil {
			cancel()
			wg.Wait()
			return err
		}
		if len(st.Failed) > 0 {
			cancel()
			wg.Wait()
			return fmt.Errorf("fabric: %d cells failed permanently (first: %s after %d attempts: %s)",
				len(st.Failed), st.Failed[0].Key[:12], st.Failed[0].Attempts, st.Failed[0].Err)
		}
		if st.Remaining == 0 {
			break
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "\rfabric: %d/%d cells ready", st.Done, len(sum.Keys))
		}
		if time.Now().After(deadline) {
			cancel()
			wg.Wait()
			return fmt.Errorf("fabric: %d cells still cold after %s — are workers connected to %s?",
				st.Remaining, timeout, baseURL)
		}
	}
	cancel()
	wg.Wait()
	if !quiet {
		fmt.Fprintf(os.Stderr, "\rfabric: %d/%d cells ready\n", len(sum.Keys), len(sum.Keys))
	}
	sweep.Cache = &sweepfabric.TieredCache{
		Local:  cacheOrNil(local),
		Remote: &sweepfabric.RemoteCache{Client: client},
	}
	return nil
}

// cacheOrNil keeps a nil *RunCache from becoming a non-nil interface.
func cacheOrNil(c *mtsim.RunCache) mtsim.SweepCache {
	if c == nil {
		return nil
	}
	return c
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSpeeds(s string) []float64 {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		fail(err)
		out = append(out, v)
	}
	return out
}

func writeFile(dir, name, content string) {
	if dir == "" {
		return
	}
	fail(os.MkdirAll(dir, 0o755))
	fail(os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		stopCPUProfile() // os.Exit skips defers; flush the profile first
		os.Exit(1)
	}
}

// profileStop flushes and closes the -profile-dir CPU profile exactly
// once; nil when profiling is off.
var profileStop func()

// startCPUProfile begins a whole-process CPU profile under dir. The
// profile is closed by stopCPUProfile, which every exit path calls
// (directly before os.Exit, or via main's defer).
func startCPUProfile(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "cpu.pprof")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	var once sync.Once
	profileStop = func() {
		once.Do(func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: closing cpu profile:", err)
				return
			}
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", path)
		})
	}
	return nil
}

func stopCPUProfile() {
	if profileStop != nil {
		profileStop()
	}
}
