package main

// Regression test for the -only validation: an unknown artefact ID must
// be a fast non-zero exit that names the valid values — not a full
// sweep that renders nothing and exits 0. The test re-executes its own
// binary as the experiments command (the standard helper-process
// pattern), so the real main(), flag parsing and exit path are under
// test.

import (
	"errors"
	"flag"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestHelperProcess is not a test: re-invoked by the tests below with
// GO_WANT_HELPER_PROCESS set, it becomes the experiments binary.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("GO_WANT_HELPER_PROCESS") != "1" {
		t.Skip("helper process stub")
	}
	os.Args = append([]string{"experiments"}, strings.Fields(os.Getenv("HELPER_ARGS"))...)
	// main registers its flags on the global CommandLine, which the
	// test framework already populated — start it fresh.
	flag.CommandLine = flag.NewFlagSet("experiments", flag.ExitOnError)
	main()
	os.Exit(0)
}

func runExperiments(t *testing.T, args string) ([]byte, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperProcess")
	cmd.Env = append(os.Environ(), "GO_WANT_HELPER_PROCESS=1", "HELPER_ARGS="+args)
	return cmd.CombinedOutput()
}

func TestUnknownOnlyExitsNonZeroWithoutSimulating(t *testing.T) {
	start := time.Now()
	out, err := runExperiments(t, "-only fig12")
	elapsed := time.Since(start)
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("-only fig12 exited 0; a typo silently ran the sweep\noutput: %s", out)
	}
	text := string(out)
	if !strings.Contains(text, "fig12") {
		t.Fatalf("error does not name the bad value:\n%s", text)
	}
	if !strings.Contains(text, "fig5") || !strings.Contains(text, "countermeasure") {
		t.Fatalf("error does not list the valid artefact IDs:\n%s", text)
	}
	if strings.Contains(text, "running") {
		t.Fatalf("the sweep banner printed — simulation started before validation:\n%s", text)
	}
	// Seconds, not the minutes a 200 s × 75-cell sweep takes: the
	// failure happened before any simulation.
	if elapsed > 30*time.Second {
		t.Fatalf("rejection took %s — it simulated first", elapsed)
	}
}

func TestValidOnlyValuesPassValidation(t *testing.T) {
	for _, v := range []string{"all", "table1", "timeseries", "adversary", "countermeasure", "fig5", "fig11"} {
		if err := validateOnly(v); err != nil {
			t.Errorf("validateOnly(%q) = %v, want nil", v, err)
		}
	}
	for _, v := range []string{"fig12", "fig4", "table2", "", "Fig5"} {
		if err := validateOnly(v); err == nil {
			t.Errorf("validateOnly(%q) accepted an unknown artefact", v)
		}
	}
}
