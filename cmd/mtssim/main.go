// Command mtssim runs a single ad hoc network simulation and reports the
// paper's metrics for it.
//
// Usage:
//
//	mtssim -protocol MTS -speed 10 -seed 1 -duration 200
//	mtssim -protocol DSR -nodes 50 -speed 20 -json
//	mtssim -protocol AODV -table1
//	mtssim -protocol MTS -trace run.tr     # ns-2-style packet trace
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mtsim"
)

func main() {
	var (
		protocol = flag.String("protocol", "MTS", "routing protocol: DSR, AODV or MTS")
		nodes    = flag.Int("nodes", 50, "number of nodes")
		speed    = flag.Float64("speed", 10, "MAXSPEED in m/s (0 = static random placement)")
		pause    = flag.Float64("pause", 1, "random-waypoint pause time in seconds")
		duration = flag.Float64("duration", 200, "simulated seconds")
		seed     = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		field    = flag.Float64("field", 1000, "square field edge length in metres")
		src      = flag.Int("src", -1, "TCP source node (-1 = random)")
		dst      = flag.Int("dst", -1, "TCP destination node (-1 = random)")
		eaves    = flag.Int("eaves", -1, "eavesdropper node (-1 = random non-endpoint)")
		jsonOut  = flag.Bool("json", false, "emit metrics as JSON")
		table1   = flag.Bool("table1", false, "print the Table I relay normalization for this run")
		traceTo  = flag.String("trace", "", "write an ns-2-style packet trace to this file")
	)
	flag.Parse()

	cfg := mtsim.DefaultConfig()
	cfg.Protocol = *protocol
	cfg.Nodes = *nodes
	cfg.MaxSpeed = *speed
	cfg.Pause = mtsim.Seconds(*pause)
	cfg.Duration = mtsim.Seconds(*duration)
	cfg.Seed = *seed
	cfg.Field.MaxX = *field
	cfg.Field.MaxY = *field
	cfg.Eavesdropper = mtsim.NodeID(*eaves)
	if (*src >= 0) != (*dst >= 0) {
		fmt.Fprintln(os.Stderr, "mtssim: -src and -dst must be given together")
		os.Exit(2)
	}
	if *src >= 0 {
		cfg.Flows = []mtsim.FlowSpec{{Src: mtsim.NodeID(*src), Dst: mtsim.NodeID(*dst)}}
	}

	s, err := mtsim.Build(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtssim:", err)
		os.Exit(1)
	}
	if *traceTo != "" {
		f, err := os.Create(*traceTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtssim:", err)
			os.Exit(1)
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		defer w.Flush()
		mtsim.AttachTrace(s, w)
	}
	m := s.Run()

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m); err != nil {
			fmt.Fprintln(os.Stderr, "mtssim:", err)
			os.Exit(1)
		}
	case *table1:
		fmt.Print(mtsim.RenderTable1(m))
	default:
		fmt.Printf("protocol            %s\n", m.Protocol)
		fmt.Printf("maxspeed            %g m/s\n", m.MaxSpeed)
		fmt.Printf("seed                %d\n", m.Seed)
		fmt.Printf("simulated           %.0f s (%d events)\n", m.Duration.Seconds(), m.EventsRun)
		fmt.Printf("eavesdropper        node %d\n", m.EavesdropperID)
		fmt.Println()
		fmt.Printf("participating nodes %d\n", m.Participating)
		fmt.Printf("relay stddev (Eq.4) %.4f\n", m.RelayStdDev)
		fmt.Printf("interception ratio  %.4f\n", m.InterceptionRatio)
		fmt.Printf("highest interception%.4f\n", m.HighestInterception)
		fmt.Println()
		fmt.Printf("avg delay           %.4f s\n", m.AvgDelaySec)
		fmt.Printf("throughput          %.1f pkt/s (%.1f kb/s)\n", m.ThroughputPps, m.ThroughputKbps)
		fmt.Printf("delivery rate       %.4f\n", m.DeliveryRate)
		fmt.Printf("control packets     %d\n", m.ControlPkts)
		fmt.Println()
		fmt.Printf("segments sent       %d (%d retransmits, %d timeouts)\n",
			m.SegmentsSent, m.Retransmits, m.Timeouts)
		if len(m.Extra) > 0 {
			fmt.Printf("protocol extras     %v\n", m.Extra)
		}
	}
}
