// Command sweepd is the distributed sweep fabric's daemon and toolbelt
// (see internal/sweepfabric): one binary with three roles.
//
// Coordinator + query service:
//
//	sweepd serve -addr 127.0.0.1:7077 -cache-dir /var/mtsim-cache
//
// partitions enqueued sweeps into leases for workers, aggregates
// results in a content-addressed run cache, and answers figure queries
// over HTTP — warm queries are served from a rendered-query memo
// without touching the simulator. `-local-workers N` makes the server
// self-sufficient for small grids by running N resident worker loops
// in-process.
//
// Worker fleet:
//
//	sweepd worker -coordinator http://127.0.0.1:7077 -parallel 4
//
// claims cell leases, simulates them through the engine's
// fault-tolerance layer (panic isolation, deterministic retries, run
// watchdog), and publishes results back. Workers are stateless: kill
// one mid-grid and its lease expires, the cells re-queue, and any cell
// it already published is a cache hit on re-lease. `-cache-dir` gives a
// worker a local result tier shared with other workers on the host.
//
// Queries:
//
//	sweepd query -coordinator http://127.0.0.1:7077 -fig fig7 -format csv
//
// fetches one figure, table or CSV. `-require-warm` asserts the answer
// came from the rendered memo (used by CI to prove a re-query simulates
// nothing).
//
// Every result is content-addressed by its full configuration and seed
// (runcache), and the simulator is deterministic, so a fabric sweep's
// aggregates are byte-identical to a single-process run — `sweepd` adds
// wall-clock parallelism and crash tolerance, never new behaviour.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"mtsim/internal/experiment"
	"mtsim/internal/runcache"
	"mtsim/internal/scenario"
	"mtsim/internal/sim"
	"mtsim/internal/sweepfabric"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "serve":
		runServe(os.Args[2:])
	case "worker":
		runWorker(os.Args[2:])
	case "query":
		runQuery(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "sweepd: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  sweepd serve  -cache-dir DIR [-addr HOST:PORT] [-local-workers N] ...
  sweepd worker -coordinator URL [-parallel N] [-cache-dir DIR] ...
  sweepd query  -coordinator URL -fig ID [-format table|csv] ...

Run 'sweepd <subcommand> -h' for the full flag list.
`)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

// signalContext is the daemon lifetime: cancelled by SIGINT/SIGTERM.
func signalContext() context.Context {
	ctx, _ := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	return ctx
}

// executorFlags registers the engine fault-tolerance knobs shared by
// serve's local workers and the worker subcommand.
type executorFlags struct {
	maxRetries *int
	runTimeout *time.Duration
	runEvents  *uint64
	journal    *string
}

func addExecutorFlags(fs *flag.FlagSet) executorFlags {
	return executorFlags{
		maxRetries: fs.Int("max-retries", 0, "re-attempts per failed cell (same seed; a retry is byte-identical)"),
		runTimeout: fs.Duration("run-timeout", 0, "wall-clock watchdog per run (0 = unlimited)"),
		runEvents:  fs.Uint64("run-events", 0, "simulated-event watchdog budget per run (0 = unlimited)"),
		journal:    fs.String("journal", "", "append one JSONL record per attempt to this file"),
	}
}

func (ef executorFlags) build() (experiment.Executor, *experiment.Journal, error) {
	exec := experiment.Executor{
		Watchdog: experiment.Watchdog{MaxEvents: *ef.runEvents, WallClock: *ef.runTimeout},
	}
	if *ef.maxRetries > 0 {
		exec.Retry = experiment.RetryPolicy{
			MaxAttempts: *ef.maxRetries + 1,
			Backoff:     time.Second,
			MaxBackoff:  30 * time.Second,
		}
	}
	var j *experiment.Journal
	if *ef.journal != "" {
		var err error
		if j, err = experiment.OpenJournal(*ef.journal); err != nil {
			return exec, nil, err
		}
		exec.Journal = j
	}
	return exec, j, nil
}

func runServe(args []string) {
	fs := flag.NewFlagSet("sweepd serve", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:7077", "listen address (use :0 for an ephemeral port; the bound address is printed)")
		cacheDir     = fs.String("cache-dir", "", "content-addressed result store directory (required)")
		leaseTTL     = fs.Duration("lease-ttl", sweepfabric.DefaultTTL, "how long a worker owns leased cells before they are reclaimable")
		maxAttempts  = fs.Int("max-cell-attempts", sweepfabric.DefaultMaxAttempts, "lease grants per cell before it is marked permanently failed")
		pollHint     = fs.Duration("poll-hint", sweepfabric.DefaultPollHint, "poll interval hinted to idle workers")
		localWorkers = fs.Int("local-workers", 0, "resident in-process worker loops (0 = rely on external sweepd workers)")
		batch        = fs.Int("batch", 2, "cells per lease for the resident workers")
		nodes        = fs.Int("nodes", 50, "figure queries: number of nodes in the base configuration")
		duration     = fs.Float64("duration", 200, "figure queries: simulated seconds per run")
		queryTimeout = fs.Duration("query-timeout", sweepfabric.DefaultQueryTimeout, "how long a cold figure query waits for the fleet")
		quiet        = fs.Bool("q", false, "suppress startup and progress output")
	)
	ef := addExecutorFlags(fs)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *cacheDir == "" {
		fail(fmt.Errorf("serve: -cache-dir is required (the shared result store)"))
	}
	store, err := runcache.Open(*cacheDir)
	fail(err)
	board := sweepfabric.NewBoard(store)
	board.TTL = *leaseTTL
	board.MaxAttempts = *maxAttempts
	board.PollHint = *pollHint

	base := scenario.DefaultConfig()
	base.Nodes = *nodes
	base.Duration = sim.Seconds(*duration)
	srv := sweepfabric.NewServer(board)
	srv.Base = base
	srv.QueryTimeout = *queryTimeout

	ctx := signalContext()
	if *localWorkers > 0 {
		exec, journal, err := ef.build()
		fail(err)
		if journal != nil {
			defer journal.Close()
		}
		w := &sweepfabric.Worker{
			Coordinator: board, // in-process: no HTTP between server and residents
			Name:        "resident",
			Parallel:    *localWorkers,
			Batch:       *batch,
			Cache:       store,
			Exec:        exec,
		}
		go w.Run(ctx) //nolint:errcheck // lives until shutdown
	}

	ln, err := net.Listen("tcp", *addr)
	fail(err)
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweepd: serving on http://%s (store %s, %d entries, lease TTL %s, %d resident workers)\n",
			ln.Addr(), *cacheDir, store.Len(), *leaseTTL, *localWorkers)
	}
	hs := &http.Server{Handler: srv}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx) //nolint:errcheck
	}()
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
	if !*quiet {
		fmt.Fprintln(os.Stderr, "sweepd: shut down")
	}
}

func runWorker(args []string) {
	fs := flag.NewFlagSet("sweepd worker", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:7077 (required)")
		name        = fs.String("name", "", "worker name in stats and journals (default host:pid)")
		parallel    = fs.Int("parallel", 1, "concurrent lease loops, each with its own simulation context")
		batch       = fs.Int("batch", 1, "cells claimed per lease")
		cacheDir    = fs.String("cache-dir", "", "local result tier probed before simulating and filled after (optional)")
		poll        = fs.Duration("poll", sweepfabric.DefaultWorkerPoll, "idle sleep between empty lease responses")
		idleExit    = fs.Duration("idle-exit", 0, "exit after this long without work (0 = run until signalled)")
		throttle    = fs.Duration("throttle", 0, "sleep before each simulated cell (test/demo pacing)")
		waitReady   = fs.Duration("wait-ready", 10*time.Second, "how long to wait for the coordinator at startup")
		quiet       = fs.Bool("q", false, "suppress the exit summary")
	)
	ef := addExecutorFlags(fs)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *coordinator == "" {
		fail(fmt.Errorf("worker: -coordinator is required"))
	}
	client := sweepfabric.NewClient(*coordinator)
	fail(client.WaitReady(*waitReady))

	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	exec, journal, err := ef.build()
	fail(err)
	w := &sweepfabric.Worker{
		Coordinator: client,
		Name:        *name,
		Parallel:    *parallel,
		Batch:       *batch,
		Exec:        exec,
		Poll:        *poll,
		IdleExit:    *idleExit,
		Throttle:    *throttle,
	}
	if *cacheDir != "" {
		store, err := runcache.Open(*cacheDir)
		fail(err)
		w.Cache = store
	}
	runErr := w.Run(signalContext())
	if journal != nil {
		if err := journal.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd: journal:", err)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "sweepd worker %s: %d cells completed (%d cached), %d failed\n",
			*name, w.Completed(), w.CachedHits(), w.FailedCells())
	}
	if runErr != nil && runErr != context.Canceled {
		fail(runErr)
	}
}

func runQuery(args []string) {
	fs := flag.NewFlagSet("sweepd query", flag.ExitOnError)
	var (
		coordinator = fs.String("coordinator", "", "coordinator base URL (required)")
		figID       = fs.String("fig", "", "figure ID, e.g. fig5 (required)")
		format      = fs.String("format", "table", "table or csv")
		protocols   = fs.String("protocols", "", "comma-separated protocols (default: the paper grid)")
		speeds      = fs.String("speeds", "", "comma-separated MAXSPEED values (default: the paper grid)")
		reps        = fs.Int("reps", 0, "repetitions per cell (default: the paper grid)")
		seedBase    = fs.Int64("seedbase", 0, "first seed (0 = server default)")
		nodes       = fs.Int("nodes", 0, "nodes in the base configuration (0 = server default)")
		duration    = fs.Float64("duration", 0, "simulated seconds per run (0 = server default)")
		tcpStart    = fs.Float64("tcpstart", -1, "TCP start time in simulated seconds (-1 = server default; short -duration demos need it below the duration)")
		timeout     = fs.Duration("timeout", 0, "cold-query wait budget (0 = server default)")
		requireWarm = fs.Bool("require-warm", false, "fail unless the answer came from the rendered-query memo (proves zero simulation)")
		waitReady   = fs.Duration("wait-ready", 10*time.Second, "how long to wait for the coordinator at startup")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *coordinator == "" || *figID == "" {
		fail(fmt.Errorf("query: -coordinator and -fig are required"))
	}
	client := sweepfabric.NewClient(*coordinator)
	fail(client.WaitReady(*waitReady))

	q := url.Values{}
	q.Set("fig", *figID)
	q.Set("format", *format)
	if *protocols != "" {
		q.Set("protocols", *protocols)
	}
	if *speeds != "" {
		q.Set("speeds", *speeds)
	}
	if *reps > 0 {
		q.Set("reps", strconv.Itoa(*reps))
	}
	if *seedBase != 0 {
		q.Set("seedbase", strconv.FormatInt(*seedBase, 10))
	}
	if *nodes > 0 {
		q.Set("nodes", strconv.Itoa(*nodes))
	}
	if *duration > 0 {
		q.Set("duration", strconv.FormatFloat(*duration, 'g', -1, 64))
	}
	if *tcpStart >= 0 {
		q.Set("tcpstart", strconv.FormatFloat(*tcpStart, 'g', -1, 64))
	}
	if *timeout > 0 {
		q.Set("timeout", timeout.String())
	}
	resp, err := http.Get(*coordinator + "/v1/figure?" + q.Encode())
	fail(err)
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	fail(err)
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("query: HTTP %d: %s", resp.StatusCode, body))
	}
	mode := resp.Header.Get("X-Sweepd-Query")
	fmt.Fprintf(os.Stderr, "sweepd query: %s (cached=%s simulated=%s)\n",
		mode, resp.Header.Get("X-Sweepd-Cached"), resp.Header.Get("X-Sweepd-Simulated"))
	os.Stdout.Write(body) //nolint:errcheck
	if *requireWarm && mode != "warm" {
		fail(fmt.Errorf("query: answer was %q, not warm — the rendered memo missed", mode))
	}
}
