#!/usr/bin/env bash
# End-to-end demonstration of the distributed sweep fabric (cmd/sweepd,
# internal/sweepfabric): boots a coordinator, shards a mini-sweep across
# two separate worker processes, then proves the warm re-query is served
# from the rendered-query memo without simulating a single cell — the
# script FAILS (non-zero exit) if the re-query falls off the warm path.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
workdir=$(mktemp -d)
port=$((20000 + RANDOM % 20000))
url="http://127.0.0.1:${port}"
pids=()
cleanup() {
    for pid in ${pids[@]+"${pids[@]}"}; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building sweepd =="
$GO build -o "$workdir/sweepd" ./cmd/sweepd

echo "== coordinator on $url =="
"$workdir/sweepd" serve -addr "127.0.0.1:${port}" -cache-dir "$workdir/cache" &
pids+=($!)

echo "== starting 2 sweepd worker processes =="
for i in 1 2; do
    "$workdir/sweepd" worker -coordinator "$url" -name "demo-w$i" -batch 2 -poll 50ms &
    pids+=($!)
done

common=(-coordinator "$url" -fig fig9 -protocols AODV,MTS -speeds 2,10
    -reps 2 -duration 8 -tcpstart 0.5)

echo "== cold query: the worker fleet simulates the grid =="
"$workdir/sweepd" query "${common[@]}"

echo "== warm re-query: must come from the rendered memo, zero cells simulated =="
"$workdir/sweepd" query "${common[@]}" -require-warm

echo "== sweepd demo OK: warm re-query simulated nothing =="
