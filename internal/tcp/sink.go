package tcp

import (
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// SinkStats counts receiver-side events; the metrics layer reads them for
// throughput (Fig. 9), delivery rate (Fig. 10) and delay (Fig. 8).
type SinkStats struct {
	Arrivals       uint64 // data packets that reached the sink (incl. dups)
	Distinct       uint64 // distinct segments received
	DupArrivals    uint64
	AcksSent       uint64
	TotalDelay     sim.Duration // summed end-to-end delay of first arrivals
	LastArrival    sim.Time
	HighestInOrder int64 // == Distinct when no loss reordering remains
}

// Sink is the receiving TCP endpoint: it acknowledges every arriving data
// segment with the highest in-order sequence number received so far
// (cumulative ACK, ns-2 TCPSink semantics, no delayed ACK).
type Sink struct {
	net  Network
	ar   *packet.Arena // resolved once from net; nil means plain allocation
	flow int

	nextExpected int64
	outOfOrder   map[int64]bool

	// OnDeliver, when set, observes each first arrival of a segment.
	OnDeliver func(p *packet.Packet)

	// Mute suppresses acknowledgements, turning the sink into a passive
	// datagram counter for CBR/UDP-style workloads.
	Mute bool

	Stats SinkStats
}

// NewSink creates a sink for the given flow and registers it with the node.
func NewSink(net Network, flow int) *Sink {
	k := &Sink{
		net:        net,
		ar:         arenaOf(net),
		flow:       flow,
		outOfOrder: make(map[int64]bool),
	}
	net.RegisterFlow(flow, k.receive)
	return k
}

func (k *Sink) receive(p *packet.Packet, _ packet.NodeID) {
	if p.TCP == nil || p.TCP.Ack {
		return
	}
	now := k.net.Scheduler().Now()
	k.Stats.Arrivals++
	k.Stats.LastArrival = now

	seq := p.TCP.Seq
	isNew := seq >= k.nextExpected && !k.outOfOrder[seq]
	if isNew {
		k.Stats.Distinct++
		k.Stats.TotalDelay += now.Sub(p.CreatedAt)
		if k.OnDeliver != nil {
			k.OnDeliver(p)
		}
		if seq == k.nextExpected {
			k.nextExpected++
			for k.outOfOrder[k.nextExpected] {
				delete(k.outOfOrder, k.nextExpected)
				k.nextExpected++
			}
		} else {
			k.outOfOrder[seq] = true
		}
	} else {
		k.Stats.DupArrivals++
	}
	k.Stats.HighestInOrder = k.nextExpected - 1

	if k.Mute {
		return
	}
	ack := k.ar.NewPacketFrom(packet.Packet{
		UID:       k.net.UIDs().Next(),
		Kind:      packet.KindAck,
		Size:      packet.IPHeaderBytes + packet.TCPHeaderBytes,
		Src:       k.net.ID(),
		Dst:       p.Src,
		TTL:       64,
		CreatedAt: now,
	})
	h := k.ar.AttachTCP(ack)
	h.Flow = k.flow
	h.Seq = k.nextExpected - 1
	h.Ack = true
	h.SentAt = p.TCP.SentAt // echo for the sender's RTT sample
	k.Stats.AcksSent++
	k.net.Originate(ack)
}

// NextExpected returns the sink's next in-order sequence (tests).
func (k *Sink) NextExpected() int64 { return k.nextExpected }
