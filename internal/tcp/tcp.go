// Package tcp implements a TCP Reno sender and sink at packet granularity,
// following the ns-2 TCP agents the paper's simulations used: sequence
// numbers count segments rather than bytes, the congestion window is a
// (fractional) packet count, and the sink acknowledges every arriving
// segment cumulatively.
//
// The Reno machinery is complete: slow start, congestion avoidance, three
// duplicate ACKs triggering fast retransmit and fast recovery with window
// inflation, and an RFC 6298-style retransmission timer with exponential
// backoff. These dynamics — especially timeout behaviour after route
// breaks — are what differentiate the routing protocols in Figs. 8–10.
package tcp

import (
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// Network is the slice of the node a TCP endpoint needs.
type Network interface {
	ID() packet.NodeID
	Scheduler() *sim.Scheduler
	UIDs() *packet.UIDSource
	RegisterFlow(flow int, h func(p *packet.Packet, from packet.NodeID))
	// Originate hands a packet to the routing protocol.
	Originate(p *packet.Packet)
}

// arenaOf resolves the network's packet arena when it carries one
// (node.Node does); plain test networks fall back to nil, i.e. ordinary
// allocation. Kept as a structural assertion so Network stays minimal and
// existing fakes keep compiling; endpoints resolve it once at
// construction (node.SetArena precedes endpoint attachment).
func arenaOf(net Network) *packet.Arena {
	if c, ok := net.(interface{ Arena() *packet.Arena }); ok {
		return c.Arena()
	}
	return nil
}

// Config holds the Reno parameters (ns-2-style defaults).
type Config struct {
	MSS          int     // payload bytes per segment
	MaxWindow    float64 // receiver/advertised window cap, packets
	InitSSThresh float64 // initial slow-start threshold, packets
	MinRTO       sim.Duration
	InitRTO      sim.Duration // RTO before the first RTT sample
	MaxRTO       sim.Duration
}

// DefaultConfig returns the parameter set used in all experiments.
func DefaultConfig() Config {
	return Config{
		MSS:          packet.DefaultPayload,
		MaxWindow:    32,
		InitSSThresh: 32,
		MinRTO:       sim.Second,
		InitRTO:      3 * sim.Second,
		MaxRTO:       64 * sim.Second,
	}
}

// SenderStats counts sender-side events for the metrics layer.
type SenderStats struct {
	Segments       uint64 // data transmissions incl. retransmits ("generated")
	Retransmits    uint64
	FastRecoveries uint64
	Timeouts       uint64
	AcksReceived   uint64
}

// Sender is a Reno source with an infinite backlog supplied by an
// application (see internal/app.FTP).
type Sender struct {
	net  Network
	ar   *packet.Arena // resolved once from net; nil means plain allocation
	cfg  Config
	flow int
	dst  packet.NodeID

	// Reliability state (packet-granularity).
	sndUna int64 // lowest unacknowledged segment
	sndNxt int64 // next segment to send (rewound to sndUna on timeout)
	sndMax int64 // highest segment ever sent + 1

	// Congestion state.
	cwnd       float64
	ssthresh   float64
	dupAcks    int
	inRecovery bool
	recover    int64 // highest segment sent when recovery began

	// RTT estimation (RFC 6298).
	srtt, rttvar float64 // seconds; srtt < 0 until the first sample
	rto          sim.Duration
	backoff      int

	timer *sim.Event

	// limit is how many segments the application has made available;
	// an FTP source keeps this effectively infinite.
	limit int64

	// firstSent remembers each segment's original transmission time so
	// retransmissions preserve end-to-end delay semantics.
	firstSent map[int64]sim.Time

	running bool

	Stats SenderStats
}

// NewSender creates a Reno sender for flow toward dst. Call Start to begin.
func NewSender(net Network, cfg Config, flow int, dst packet.NodeID) *Sender {
	s := &Sender{
		net:       net,
		ar:        arenaOf(net),
		cfg:       cfg,
		flow:      flow,
		dst:       dst,
		cwnd:      1,
		ssthresh:  cfg.InitSSThresh,
		srtt:      -1,
		rto:       cfg.InitRTO,
		firstSent: make(map[int64]sim.Time),
	}
	net.RegisterFlow(flow, s.receive)
	return s
}

// Supply makes n more segments available for transmission (application
// data). The FTP app calls this once with a huge value.
func (s *Sender) Supply(n int64) {
	s.limit += n
	if s.running {
		s.trySend()
	}
}

// Start begins transmission at the current simulation time.
func (s *Sender) Start() {
	s.running = true
	s.trySend()
}

// Cwnd returns the current congestion window in packets (tests, traces).
func (s *Sender) Cwnd() float64 { return s.cwnd }

// RTO returns the current retransmission timeout (tests).
func (s *Sender) RTO() sim.Duration { return s.rto }

// window is the effective send window in whole packets.
func (s *Sender) window() int64 {
	w := s.cwnd
	if w > s.cfg.MaxWindow {
		w = s.cfg.MaxWindow
	}
	if w < 1 {
		w = 1
	}
	return int64(w)
}

// trySend transmits as many segments as the window allows, starting at
// sndNxt. After a timeout sndNxt is rewound to sndUna (go-back-N, as in
// ns-2's TcpAgent), so this loop also refills loss holes in slow start.
func (s *Sender) trySend() {
	for s.sndNxt < s.sndUna+s.window() && s.sndNxt < s.limit {
		s.emit(s.sndNxt)
		s.sndNxt++
	}
}

// emit transmits segment seq; retransmissions are detected internally.
func (s *Sender) emit(seq int64) {
	retx := seq < s.sndMax
	if !retx {
		s.sndMax = seq + 1
	}
	now := s.net.Scheduler().Now()
	created, ok := s.firstSent[seq]
	if !ok {
		created = now
		s.firstSent[seq] = created
	}
	p := s.ar.NewPacketFrom(packet.Packet{
		UID:       s.net.UIDs().Next(),
		Kind:      packet.KindData,
		Size:      packet.IPHeaderBytes + packet.TCPHeaderBytes + s.cfg.MSS,
		Src:       s.net.ID(),
		Dst:       s.dst,
		TTL:       64,
		CreatedAt: created,
		DataID:    uint64(seq) + 1, // distinct logical payload per segment
	})
	h := s.ar.AttachTCP(p)
	h.Flow, h.Seq, h.SentAt = s.flow, seq, now
	s.Stats.Segments++
	if retx {
		s.Stats.Retransmits++
	}
	s.net.Originate(p)
	if s.timer == nil {
		s.armTimer()
	}
}

func (s *Sender) armTimer() {
	d := s.rto << s.backoff
	if d > s.cfg.MaxRTO {
		d = s.cfg.MaxRTO
	}
	s.timer = s.net.Scheduler().After(d, s.onTimeout)
}

func (s *Sender) cancelTimer() {
	if s.timer != nil {
		s.net.Scheduler().Cancel(s.timer)
		s.timer = nil
	}
}

// receive handles an incoming ACK.
func (s *Sender) receive(p *packet.Packet, _ packet.NodeID) {
	if p.TCP == nil || !p.TCP.Ack {
		return
	}
	s.Stats.AcksReceived++
	ackedThrough := p.TCP.Seq // highest in-order segment received by sink
	newUna := ackedThrough + 1

	if newUna > s.sndUna {
		s.newAck(newUna, p.TCP.SentAt)
	} else {
		s.dupAck()
	}
}

func (s *Sender) newAck(newUna int64, echo sim.Time) {
	acked := newUna - s.sndUna
	for seq := s.sndUna; seq < newUna; seq++ {
		delete(s.firstSent, seq)
	}
	s.sndUna = newUna
	s.backoff = 0

	// RTT sample from the echoed transmission timestamp. Retransmitted
	// segments carry their own (latest) timestamp, so Karn's problem does
	// not arise.
	if echo > 0 {
		s.sampleRTT(s.net.Scheduler().Now().Sub(echo))
	}

	if s.inRecovery {
		if newUna > s.recover {
			// Full recovery: deflate to ssthresh.
			s.inRecovery = false
			s.cwnd = s.ssthresh
			s.dupAcks = 0
		} else {
			// Partial ACK (Reno): retransmit next hole, stay in recovery.
			s.emit(s.sndUna)
			s.cwnd -= float64(acked)
			if s.cwnd < 1 {
				s.cwnd = 1
			}
		}
	} else {
		s.dupAcks = 0
		if s.cwnd < s.ssthresh {
			s.cwnd++ // slow start
		} else {
			s.cwnd += 1 / s.cwnd // congestion avoidance
		}
	}

	s.cancelTimer()
	if s.sndUna < s.sndNxt {
		s.armTimer()
	}
	s.trySend()
}

func (s *Sender) dupAck() {
	if s.inRecovery {
		// Window inflation: each further dup signals another departure.
		s.cwnd++
		s.trySend()
		return
	}
	s.dupAcks++
	if s.dupAcks == 3 && s.sndUna < s.sndNxt {
		// Fast retransmit + fast recovery.
		s.Stats.FastRecoveries++
		s.ssthresh = s.cwnd / 2
		if s.ssthresh < 2 {
			s.ssthresh = 2
		}
		s.recover = s.sndMax - 1
		s.inRecovery = true
		s.cwnd = s.ssthresh + 3
		s.emit(s.sndUna)
		s.cancelTimer()
		s.armTimer()
	}
}

func (s *Sender) onTimeout() {
	s.timer = nil
	if s.sndUna >= s.sndNxt {
		return // everything acked meanwhile
	}
	s.Stats.Timeouts++
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = 1
	s.dupAcks = 0
	s.inRecovery = false
	if s.backoff < 6 {
		s.backoff++ // exponential backoff, capped via MaxRTO too
	}
	// Go-back-N: everything past the last cumulative ACK is presumed
	// lost; rewind and resend forward in slow start (ns-2 semantics).
	s.sndNxt = s.sndUna
	s.trySend() // emits sndUna and re-arms the timer (it is nil here)
}

// sampleRTT folds one measurement into srtt/rttvar and recomputes the RTO
// (RFC 6298).
func (s *Sender) sampleRTT(d sim.Duration) {
	r := d.Seconds()
	if r < 0 {
		return
	}
	if s.srtt < 0 {
		s.srtt = r
		s.rttvar = r / 2
	} else {
		const alpha, beta = 0.125, 0.25
		diff := s.srtt - r
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (1-beta)*s.rttvar + beta*diff
		s.srtt = (1-alpha)*s.srtt + alpha*r
	}
	rto := sim.Seconds(s.srtt + 4*s.rttvar)
	if rto < s.cfg.MinRTO {
		rto = s.cfg.MinRTO
	}
	if rto > s.cfg.MaxRTO {
		rto = s.cfg.MaxRTO
	}
	s.rto = rto
}
