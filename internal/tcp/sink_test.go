package tcp

import (
	"testing"

	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// sinkRig wires a sink on end 2 of a zero-delay pipe with a data-packet
// factory, for white-box delivery-edge-case tests.
func sinkRig(t *testing.T) (*pipe, *Sink, func(seq int64) *packet.Packet) {
	t.Helper()
	p := newPipe(0)
	p.ends[1].RegisterFlow(1, func(*packet.Packet, packet.NodeID) {})
	sink := NewSink(p.ends[2], 1)
	mk := func(seq int64) *packet.Packet {
		return &packet.Packet{
			UID: p.uids.Next(), Kind: packet.KindData, Src: 1, Dst: 2,
			CreatedAt: p.sched.Now(),
			TCP:       &packet.TCPHeader{Flow: 1, Seq: seq},
		}
	}
	return p, sink, mk
}

// TestSinkDuplicateOfBufferedSegment: a retransmission of a segment that
// is buffered out of order (received, but below-sequence holes remain)
// must count as a duplicate, not inflate Distinct.
func TestSinkDuplicateOfBufferedSegment(t *testing.T) {
	_, sink, mk := sinkRig(t)
	sink.receive(mk(0), 1)
	sink.receive(mk(2), 1) // buffered: hole at 1
	sink.receive(mk(2), 1) // duplicate of the buffered copy
	if sink.Stats.Distinct != 2 {
		t.Fatalf("distinct = %d, want 2", sink.Stats.Distinct)
	}
	if sink.Stats.DupArrivals != 1 {
		t.Fatalf("dupArrivals = %d, want 1", sink.Stats.DupArrivals)
	}
	if sink.NextExpected() != 1 {
		t.Fatalf("nextExpected = %d, want 1", sink.NextExpected())
	}
	if sink.Stats.HighestInOrder != 0 {
		t.Fatalf("highestInOrder = %d, want 0", sink.Stats.HighestInOrder)
	}
}

// TestSinkDuplicateBelowWindow: retransmissions of already-consumed
// in-order segments are duplicates too.
func TestSinkDuplicateBelowWindow(t *testing.T) {
	_, sink, mk := sinkRig(t)
	sink.receive(mk(0), 1)
	sink.receive(mk(1), 1)
	sink.receive(mk(0), 1) // stale retransmission
	if sink.Stats.Distinct != 2 || sink.Stats.DupArrivals != 1 {
		t.Fatalf("distinct=%d dup=%d, want 2/1", sink.Stats.Distinct, sink.Stats.DupArrivals)
	}
	if sink.NextExpected() != 2 {
		t.Fatalf("nextExpected = %d, want 2", sink.NextExpected())
	}
}

// TestSinkOverlappingHoleFill: filling the hole drains every contiguous
// buffered segment in one step and the out-of-order buffer empties.
func TestSinkOverlappingHoleFill(t *testing.T) {
	_, sink, mk := sinkRig(t)
	sink.receive(mk(0), 1)
	sink.receive(mk(2), 1)
	sink.receive(mk(3), 1)
	sink.receive(mk(4), 1)
	if sink.NextExpected() != 1 {
		t.Fatalf("nextExpected = %d before hole fill", sink.NextExpected())
	}
	sink.receive(mk(1), 1) // fills the hole: 2,3,4 drain with it
	if sink.NextExpected() != 5 {
		t.Fatalf("nextExpected = %d, want 5", sink.NextExpected())
	}
	if len(sink.outOfOrder) != 0 {
		t.Fatalf("out-of-order buffer holds %d segments after drain", len(sink.outOfOrder))
	}
	if sink.Stats.Distinct != 5 {
		t.Fatalf("distinct = %d, want 5", sink.Stats.Distinct)
	}
	if sink.Stats.HighestInOrder != 4 {
		t.Fatalf("highestInOrder = %d, want 4", sink.Stats.HighestInOrder)
	}
}

// TestSinkOnDeliverFiresOncePerSegment: the delivery observer sees each
// logical segment exactly once, duplicates and reordering notwithstanding.
func TestSinkOnDeliverFiresOncePerSegment(t *testing.T) {
	_, sink, mk := sinkRig(t)
	var seen []int64
	sink.OnDeliver = func(p *packet.Packet) { seen = append(seen, p.TCP.Seq) }
	sink.receive(mk(1), 1)
	sink.receive(mk(1), 1)
	sink.receive(mk(0), 1)
	sink.receive(mk(0), 1)
	want := []int64{1, 0}
	if len(seen) != len(want) {
		t.Fatalf("OnDeliver fired for %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("OnDeliver order %v, want %v", seen, want)
		}
	}
}

// TestSinkDelayCountedOnFirstArrivalOnly: TotalDelay sums the first copy's
// delay; duplicates arriving later must not inflate it.
func TestSinkDelayCountedOnFirstArrivalOnly(t *testing.T) {
	p, sink, mk := sinkRig(t)
	first := mk(0)
	dup := mk(0)
	p.sched.After(10*sim.Millisecond, func() { sink.receive(first, 1) })
	p.sched.After(500*sim.Millisecond, func() { sink.receive(dup, 1) })
	p.sched.Run()
	if sink.Stats.TotalDelay != 10*sim.Millisecond {
		t.Fatalf("totalDelay = %v, want 10ms", sink.Stats.TotalDelay)
	}
	if sink.Stats.LastArrival != sim.Time(500*sim.Millisecond) {
		t.Fatalf("lastArrival = %v", sink.Stats.LastArrival)
	}
}

// TestSinkIgnoresAcksAndNonTCP: pure ACKs and packets without transport
// headers leave every counter untouched.
func TestSinkIgnoresAcksAndNonTCP(t *testing.T) {
	p, sink, _ := sinkRig(t)
	sink.receive(&packet.Packet{
		UID: p.uids.Next(), Kind: packet.KindAck, Src: 1, Dst: 2,
		TCP: &packet.TCPHeader{Flow: 1, Seq: 3, Ack: true},
	}, 1)
	sink.receive(&packet.Packet{
		UID: p.uids.Next(), Kind: packet.KindData, Src: 1, Dst: 2,
	}, 1)
	if sink.Stats.Arrivals != 0 || sink.Stats.AcksSent != 0 {
		t.Fatalf("sink counted non-data traffic: %+v", sink.Stats)
	}
}

// TestSinkMuteSuppressesAcks: a muted sink (CBR mode) counts arrivals but
// never originates acknowledgements.
func TestSinkMuteSuppressesAcks(t *testing.T) {
	p, sink, mk := sinkRig(t)
	var acks int
	p.ends[1].RegisterFlow(1, func(pk *packet.Packet, _ packet.NodeID) { acks++ })
	sink.Mute = true
	sink.receive(mk(0), 1)
	sink.receive(mk(1), 1)
	p.sched.Run()
	if acks != 0 {
		t.Fatalf("muted sink sent %d acks", acks)
	}
	if sink.Stats.AcksSent != 0 {
		t.Fatalf("AcksSent = %d on a muted sink", sink.Stats.AcksSent)
	}
	if sink.Stats.Distinct != 2 || sink.Stats.Arrivals != 2 {
		t.Fatalf("muted sink miscounted: %+v", sink.Stats)
	}
}

// TestSinkAckEchoesRTTSample: acknowledgements echo the segment's SentAt
// so the sender can take RTT samples off the ack path.
func TestSinkAckEchoesRTTSample(t *testing.T) {
	p, _, _ := sinkRig(t)
	var got []sim.Time
	p.ends[1].RegisterFlow(2, func(pk *packet.Packet, _ packet.NodeID) {
		got = append(got, pk.TCP.SentAt)
	})
	sink := NewSink(p.ends[2], 2)
	stamp := sim.Time(1234 * sim.Microsecond)
	sink.receive(&packet.Packet{
		UID: p.uids.Next(), Kind: packet.KindData, Src: 1, Dst: 2,
		TCP: &packet.TCPHeader{Flow: 2, Seq: 0, SentAt: stamp},
	}, 1)
	p.sched.Run()
	if len(got) != 1 || got[0] != stamp {
		t.Fatalf("echoed SentAt = %v, want [%v]", got, stamp)
	}
}
