package tcp

import (
	"testing"

	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// pipe is an in-memory two-endpoint network with configurable one-way
// delay and a programmable drop predicate — enough to exercise the full
// Reno state machine without a radio stack.
type pipe struct {
	sched *sim.Scheduler
	uids  packet.UIDSource
	delay sim.Duration
	// drop is consulted per packet; true discards it.
	drop func(p *packet.Packet) bool

	ends map[packet.NodeID]*pipeEnd
}

type pipeEnd struct {
	p     *pipe
	id    packet.NodeID
	flows map[int]func(*packet.Packet, packet.NodeID)
}

func newPipe(delay sim.Duration) *pipe {
	p := &pipe{
		sched: sim.NewScheduler(),
		delay: delay,
		ends:  map[packet.NodeID]*pipeEnd{},
	}
	for _, id := range []packet.NodeID{1, 2} {
		p.ends[id] = &pipeEnd{p: p, id: id, flows: map[int]func(*packet.Packet, packet.NodeID){}}
	}
	return p
}

func (e *pipeEnd) ID() packet.NodeID         { return e.id }
func (e *pipeEnd) Scheduler() *sim.Scheduler { return e.p.sched }
func (e *pipeEnd) UIDs() *packet.UIDSource   { return &e.p.uids }
func (e *pipeEnd) RegisterFlow(flow int, h func(*packet.Packet, packet.NodeID)) {
	e.flows[flow] = h
}

func (e *pipeEnd) Originate(p *packet.Packet) {
	if e.p.drop != nil && e.p.drop(p) {
		return
	}
	dst := e.p.ends[p.Dst]
	if dst == nil {
		return
	}
	from := e.id
	e.p.sched.After(e.p.delay, func() {
		if h, ok := dst.flows[p.TCP.Flow]; ok {
			h(p, from)
		}
	})
}

// rig10ms builds sender at node 1, sink at node 2, 10ms one-way delay.
func tcpRig(delay sim.Duration) (*pipe, *Sender, *Sink) {
	p := newPipe(delay)
	snd := NewSender(p.ends[1], DefaultConfig(), 1, 2)
	sink := NewSink(p.ends[2], 1)
	return p, snd, sink
}

func TestBulkTransferNoLoss(t *testing.T) {
	p, snd, sink := tcpRig(10 * sim.Millisecond)
	snd.Supply(500)
	snd.Start()
	p.sched.RunUntil(sim.Time(60 * sim.Second))

	if sink.Stats.Distinct != 500 {
		t.Fatalf("distinct = %d, want 500", sink.Stats.Distinct)
	}
	if sink.NextExpected() != 500 {
		t.Fatalf("nextExpected = %d", sink.NextExpected())
	}
	if snd.Stats.Retransmits != 0 {
		t.Fatalf("retransmits = %d on a lossless pipe", snd.Stats.Retransmits)
	}
	if snd.Stats.Timeouts != 0 {
		t.Fatalf("timeouts = %d on a lossless pipe", snd.Stats.Timeouts)
	}
}

func TestSlowStartDoubling(t *testing.T) {
	p, snd, _ := tcpRig(50 * sim.Millisecond)
	snd.Supply(1000)
	snd.Start()
	// After one RTT the first ACK arrives: cwnd 1 -> 2; after two RTTs ~4.
	p.sched.RunUntil(sim.Time(120 * sim.Millisecond)) // just past 1 RTT
	if snd.Cwnd() < 2 {
		t.Fatalf("cwnd after 1 RTT = %v, want >= 2", snd.Cwnd())
	}
	p.sched.RunUntil(sim.Time(230 * sim.Millisecond))
	if snd.Cwnd() < 4 {
		t.Fatalf("cwnd after 2 RTTs = %v, want >= 4", snd.Cwnd())
	}
}

func TestCwndCappedByMaxWindow(t *testing.T) {
	p, snd, _ := tcpRig(5 * sim.Millisecond)
	snd.Supply(1 << 20)
	snd.Start()
	p.sched.RunUntil(sim.Time(30 * sim.Second))
	if w := snd.window(); w > int64(DefaultConfig().MaxWindow) {
		t.Fatalf("window = %d exceeds cap", w)
	}
}

func TestFastRetransmitOnSingleLoss(t *testing.T) {
	p, snd, sink := tcpRig(10 * sim.Millisecond)
	dropped := false
	p.drop = func(pk *packet.Packet) bool {
		if !pk.TCP.Ack && pk.TCP.Seq == 20 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	snd.Supply(200)
	snd.Start()
	p.sched.RunUntil(sim.Time(60 * sim.Second))

	if !dropped {
		t.Fatal("test setup: segment 20 never dropped")
	}
	if sink.Stats.Distinct != 200 {
		t.Fatalf("distinct = %d, want 200", sink.Stats.Distinct)
	}
	if snd.Stats.FastRecoveries == 0 {
		t.Fatal("single loss with a wide window must trigger fast retransmit")
	}
	if snd.Stats.Timeouts != 0 {
		t.Fatalf("timeouts = %d; fast retransmit should have avoided them", snd.Stats.Timeouts)
	}
}

func TestTimeoutRecoversFromBurstLoss(t *testing.T) {
	p, snd, sink := tcpRig(10 * sim.Millisecond)
	// Black-hole everything in a window: like a route break. The outage
	// must start while the transfer is in full swing (it finishes in
	// ~0.5s on this pipe without loss).
	p.drop = func(pk *packet.Packet) bool {
		now := p.sched.Now()
		return now > sim.Time(200*sim.Millisecond) && now < sim.Time(3*sim.Second)
	}
	snd.Supply(500)
	snd.Start()
	p.sched.RunUntil(sim.Time(120 * sim.Second))

	if sink.Stats.Distinct != 500 {
		t.Fatalf("distinct = %d, want 500 after outage", sink.Stats.Distinct)
	}
	if snd.Stats.Timeouts == 0 {
		t.Fatal("an outage must cause RTO timeouts")
	}
	if snd.Cwnd() < 1 {
		t.Fatalf("cwnd = %v fell below 1", snd.Cwnd())
	}
}

func TestExponentialBackoffDuringOutage(t *testing.T) {
	p, snd, _ := tcpRig(10 * sim.Millisecond)
	p.drop = func(pk *packet.Packet) bool { return p.sched.Now() > sim.Time(200*sim.Millisecond) }
	snd.Supply(5000)
	snd.Start()
	p.sched.RunUntil(sim.Time(40 * sim.Second))
	// With min RTO 1s and doubling: 1+2+4+8+16 ≈ 31s -> at most ~6
	// timeouts in ~40s of outage.
	if snd.Stats.Timeouts > 8 {
		t.Fatalf("timeouts = %d; backoff not exponential", snd.Stats.Timeouts)
	}
	if snd.Stats.Timeouts < 3 {
		t.Fatalf("timeouts = %d; timer seems stuck", snd.Stats.Timeouts)
	}
}

func TestRTTEstimateConvergence(t *testing.T) {
	p, snd, _ := tcpRig(25 * sim.Millisecond)
	snd.Supply(300)
	snd.Start()
	p.sched.RunUntil(sim.Time(30 * sim.Second))
	// RTT is exactly 50ms; srtt should be close, and RTO clamped at MinRTO.
	if snd.srtt < 0.045 || snd.srtt > 0.06 {
		t.Fatalf("srtt = %v, want ~0.05", snd.srtt)
	}
	if snd.RTO() != DefaultConfig().MinRTO {
		t.Fatalf("rto = %v, want clamped to MinRTO", snd.RTO())
	}
}

func TestSinkCumulativeAckAfterReordering(t *testing.T) {
	// Deliver 0,2,1 and check ACK values: 0, 0 (dup), 2.
	p := newPipe(0)
	var acks []int64
	p.ends[1].RegisterFlow(1, func(pk *packet.Packet, _ packet.NodeID) {
		acks = append(acks, pk.TCP.Seq)
	})
	sink := NewSink(p.ends[2], 1)
	mk := func(seq int64) *packet.Packet {
		return &packet.Packet{
			UID: p.uids.Next(), Kind: packet.KindData, Src: 1, Dst: 2,
			TCP: &packet.TCPHeader{Flow: 1, Seq: seq},
		}
	}
	sink.receive(mk(0), 1)
	sink.receive(mk(2), 1)
	sink.receive(mk(1), 1)
	p.sched.Run()
	want := []int64{0, 0, 2}
	if len(acks) != 3 {
		t.Fatalf("acks = %v", acks)
	}
	for i := range want {
		if acks[i] != want[i] {
			t.Fatalf("acks = %v, want %v", acks, want)
		}
	}
	if sink.Stats.Distinct != 3 {
		t.Fatalf("distinct = %d", sink.Stats.Distinct)
	}
}

func TestSinkDuplicateCounted(t *testing.T) {
	p := newPipe(0)
	p.ends[1].RegisterFlow(1, func(*packet.Packet, packet.NodeID) {})
	sink := NewSink(p.ends[2], 1)
	mk := func(seq int64) *packet.Packet {
		return &packet.Packet{
			UID: p.uids.Next(), Kind: packet.KindData, Src: 1, Dst: 2,
			TCP: &packet.TCPHeader{Flow: 1, Seq: seq},
		}
	}
	sink.receive(mk(0), 1)
	sink.receive(mk(0), 1)
	if sink.Stats.Distinct != 1 || sink.Stats.DupArrivals != 1 {
		t.Fatalf("distinct=%d dup=%d", sink.Stats.Distinct, sink.Stats.DupArrivals)
	}
	if sink.Stats.Arrivals != 2 {
		t.Fatalf("arrivals=%d", sink.Stats.Arrivals)
	}
}

func TestDelayAccounting(t *testing.T) {
	p, snd, sink := tcpRig(40 * sim.Millisecond)
	snd.Supply(10)
	snd.Start()
	p.sched.RunUntil(sim.Time(10 * sim.Second))
	if sink.Stats.Distinct != 10 {
		t.Fatalf("distinct = %d", sink.Stats.Distinct)
	}
	avg := sink.Stats.TotalDelay.Seconds() / float64(sink.Stats.Distinct)
	if avg < 0.039 || avg > 0.05 {
		t.Fatalf("avg delay = %v, want ~0.04", avg)
	}
}

func TestRetransmitPreservesCreatedAt(t *testing.T) {
	p, snd, sink := tcpRig(10 * sim.Millisecond)
	dropFirst := true
	p.drop = func(pk *packet.Packet) bool {
		if !pk.TCP.Ack && pk.TCP.Seq == 0 && dropFirst {
			dropFirst = false
			return true
		}
		return false
	}
	snd.Supply(5)
	snd.Start()
	p.sched.RunUntil(sim.Time(30 * sim.Second))
	if sink.Stats.Distinct != 5 {
		t.Fatalf("distinct = %d", sink.Stats.Distinct)
	}
	// Segment 0 was lost once; its measured delay must span the original
	// transmission (~RTO 3s), not just the final hop time.
	avg := sink.Stats.TotalDelay.Seconds() / 5
	if avg < 0.1 {
		t.Fatalf("avg delay = %vs; retransmission lost original CreatedAt", avg)
	}
}

func TestSenderStatsConsistency(t *testing.T) {
	p, snd, sink := tcpRig(10 * sim.Millisecond)
	lossToggle := 0
	p.drop = func(pk *packet.Packet) bool {
		if !pk.TCP.Ack {
			lossToggle++
			return lossToggle%17 == 0 // ~6% data loss
		}
		return false
	}
	snd.Supply(300)
	snd.Start()
	p.sched.RunUntil(sim.Time(300 * sim.Second))

	if sink.Stats.Distinct != 300 {
		t.Fatalf("distinct = %d, want 300 despite losses", sink.Stats.Distinct)
	}
	if snd.Stats.Segments != 300+snd.Stats.Retransmits {
		t.Fatalf("segments=%d retransmits=%d distinct=300: inconsistent",
			snd.Stats.Segments, snd.Stats.Retransmits)
	}
	if snd.Stats.Retransmits == 0 {
		t.Fatal("expected some retransmissions at 6% loss")
	}
}

// Property-style invariant scan: run a lossy transfer and assert window
// invariants hold at every event boundary.
func TestRenoInvariantsUnderRandomLoss(t *testing.T) {
	for seed := 0; seed < 5; seed++ {
		p, snd, sink := tcpRig(15 * sim.Millisecond)
		counter := 0
		k := 7 + seed*3
		p.drop = func(pk *packet.Packet) bool {
			counter++
			return counter%k == 0
		}
		snd.Supply(400)
		snd.Start()
		for p.sched.Step() {
			if snd.cwnd < 1 {
				t.Fatalf("seed %d: cwnd fell to %v", seed, snd.cwnd)
			}
			if snd.sndUna > snd.sndNxt {
				t.Fatalf("seed %d: sndUna %d > sndNxt %d", seed, snd.sndUna, snd.sndNxt)
			}
			if snd.ssthresh < 2 {
				t.Fatalf("seed %d: ssthresh %v < 2", seed, snd.ssthresh)
			}
			if p.sched.Now() > sim.Time(600*sim.Second) {
				break
			}
		}
		if sink.Stats.Distinct != 400 {
			t.Fatalf("seed %d: distinct = %d, want 400", seed, sink.Stats.Distinct)
		}
		// Cumulative ACK monotonicity is implied by Distinct==400 plus
		// nextExpected reaching 400.
		if sink.NextExpected() != 400 {
			t.Fatalf("seed %d: nextExpected = %d", seed, sink.NextExpected())
		}
	}
}
