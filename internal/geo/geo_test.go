package geo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDistance(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if d := a.DistanceTo(b); d != 5 {
		t.Fatalf("distance = %v, want 5", d)
	}
	if d := a.DistanceSqTo(b); d != 25 {
		t.Fatalf("distanceSq = %v, want 25", d)
	}
	if d := a.DistanceTo(a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		// Keep coordinates in a sane range to avoid inf overflow.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		a := Point{clamp(ax), clamp(ay)}
		b := Point{clamp(bx), clamp(by)}
		d1 := a.DistanceTo(b)
		d2 := b.DistanceTo(a)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(coords [6]int16) bool {
		a := Point{float64(coords[0]), float64(coords[1])}
		b := Point{float64(coords[2]), float64(coords[3])}
		c := Point{float64(coords[4]), float64(coords[5])}
		return a.DistanceTo(c) <= a.DistanceTo(b)+b.DistanceTo(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLerp(t *testing.T) {
	a := Point{0, 0}
	b := Point{10, 20}
	mid := a.Lerp(b, 0.5)
	if mid.X != 5 || mid.Y != 10 {
		t.Fatalf("midpoint = %v", mid)
	}
	if a.Lerp(b, 0) != a {
		t.Fatal("Lerp(0) != start")
	}
	if a.Lerp(b, 1) != b {
		t.Fatal("Lerp(1) != end")
	}
}

func TestPointAddString(t *testing.T) {
	p := Point{1, 2}.Add(0.5, -0.5)
	if p.X != 1.5 || p.Y != 1.5 {
		t.Fatalf("Add = %v", p)
	}
	if p.String() != "(1.50, 1.50)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestRect(t *testing.T) {
	r := Field(1000, 500)
	if r.Width() != 1000 || r.Height() != 500 {
		t.Fatalf("dims = %v x %v", r.Width(), r.Height())
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{1000, 500}) {
		t.Fatal("boundary not contained")
	}
	if r.Contains(Point{-1, 0}) || r.Contains(Point{0, 501}) {
		t.Fatal("outside point contained")
	}
	c := r.Clamp(Point{-50, 700})
	if c.X != 0 || c.Y != 500 {
		t.Fatalf("clamp = %v", c)
	}
}

func TestClampIdempotentProperty(t *testing.T) {
	r := Field(1000, 1000)
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		c := r.Clamp(Point{x, y})
		return r.Contains(c) && r.Clamp(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGridBasic(t *testing.T) {
	g := NewGrid(Field(1000, 1000), 250)
	g.Update(1, Point{100, 100})
	g.Update(2, Point{110, 100})
	g.Update(3, Point{900, 900})
	got := g.WithinRange(Point{105, 100}, 50, nil)
	if len(got) != 2 {
		t.Fatalf("WithinRange found %v", got)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	p, ok := g.Position(3)
	if !ok || p.X != 900 {
		t.Fatalf("Position(3) = %v %v", p, ok)
	}
}

func TestGridMove(t *testing.T) {
	g := NewGrid(Field(1000, 1000), 100)
	g.Update(1, Point{50, 50})
	g.Update(1, Point{950, 950}) // crosses many cells
	got := g.WithinRange(Point{50, 50}, 60, nil)
	if len(got) != 0 {
		t.Fatalf("stale entry after move: %v", got)
	}
	got = g.WithinRange(Point{950, 950}, 10, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("moved entry not found: %v", got)
	}
}

func TestGridMoveWithinCell(t *testing.T) {
	g := NewGrid(Field(1000, 1000), 500)
	g.Update(1, Point{100, 100})
	g.Update(1, Point{120, 120}) // same cell, exact position must update
	got := g.WithinRange(Point{120, 120}, 1, nil)
	if len(got) != 1 {
		t.Fatalf("exact position not updated: %v", got)
	}
	got = g.WithinRange(Point{100, 100}, 1, nil)
	if len(got) != 0 {
		t.Fatalf("old position still matches: %v", got)
	}
}

func TestGridRemove(t *testing.T) {
	g := NewGrid(Field(100, 100), 10)
	g.Update(7, Point{5, 5})
	g.Remove(7)
	g.Remove(7) // double remove is a no-op
	if g.Len() != 0 {
		t.Fatalf("Len after remove = %d", g.Len())
	}
	if got := g.WithinRange(Point{5, 5}, 50, nil); len(got) != 0 {
		t.Fatalf("removed item found: %v", got)
	}
	if _, ok := g.Position(7); ok {
		t.Fatal("Position returns removed item")
	}
}

func TestGridOutOfBoundsClamped(t *testing.T) {
	g := NewGrid(Field(100, 100), 10)
	g.Update(1, Point{-5, 105}) // clamped to an edge cell, not a panic
	got := g.WithinRange(Point{0, 100}, 10, nil)
	if len(got) != 1 {
		t.Fatalf("edge item not found: %v", got)
	}
}

func TestGridZeroCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero cell size did not panic")
		}
	}()
	NewGrid(Field(10, 10), 0)
}

// Property: grid range query returns exactly the brute-force answer.
func TestGridMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := NewGrid(Field(1000, 1000), 125)
		pts := make(map[int32]Point)
		n := 5 + rng.Intn(100)
		for i := 0; i < n; i++ {
			p := Point{rng.Float64() * 1000, rng.Float64() * 1000}
			pts[int32(i)] = p
			g.Update(int32(i), p)
		}
		// Random moves, including repeated moves of the same ID.
		for i := 0; i < 40; i++ {
			id := int32(rng.Intn(n))
			p := Point{rng.Float64() * 1000, rng.Float64() * 1000}
			pts[id] = p
			g.Update(id, p)
		}
		centre := Point{rng.Float64() * 1000, rng.Float64() * 1000}
		radius := rng.Float64() * 400
		got := g.WithinRange(centre, radius, nil)
		var want []int32
		for id, p := range pts {
			if p.DistanceSqTo(centre) <= radius*radius {
				want = append(want, id)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d items, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func BenchmarkGridWithinRange(b *testing.B) {
	g := NewGrid(Field(1000, 1000), 250)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		g.Update(int32(i), Point{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	buf := make([]int32, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.WithinRange(Point{500, 500}, 250, buf[:0])
	}
}
