// Package geo provides the small amount of 2-D geometry the simulator
// needs: points, rectangles, distances, and a uniform-grid spatial index for
// range queries over node positions.
package geo

import (
	"fmt"
	"math"
)

// Point is a position in metres.
type Point struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance to q in metres.
func (p Point) DistanceTo(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistanceSqTo returns the squared Euclidean distance to q; use it in hot
// paths to avoid the square root when only comparisons are needed.
func (p Point) DistanceSqTo(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns the point translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Lerp returns the point a fraction f of the way from p to q. f outside
// [0,1] extrapolates.
func (p Point) Lerp(q Point, f float64) Point {
	return Point{p.X + (q.X-p.X)*f, p.Y + (q.Y-p.Y)*f}
}

// String formats the point with centimetre precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle [MinX,MaxX] × [MinY,MaxY] in metres.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Field returns the w×h rectangle anchored at the origin, the usual
// simulation field shape (the paper uses 1000 m × 1000 m).
func Field(w, h float64) Rect { return Rect{0, 0, w, h} }

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Clamp returns p constrained to lie within r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}
