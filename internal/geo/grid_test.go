package geo

import (
	"math/rand"
	"sort"
	"testing"
)

// The PHY treats carrier-sense range as inclusive (d² <= r²), so the grid
// must too: an item exactly on the query circle is a hit.
func TestGridWithinRangeInclusiveBoundary(t *testing.T) {
	g := NewGrid(Field(1000, 1000), 250)
	g.Update(1, Point{500, 500})
	g.Update(2, Point{750, 500}) // exactly radius away
	g.Update(3, Point{750.0001, 500})

	got := g.WithinRange(Point{500, 500}, 250, nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("boundary item mishandled: %v", got)
	}
}

func TestGridRemoveAbsent(t *testing.T) {
	g := NewGrid(Field(100, 100), 10)
	g.Remove(42) // never inserted: must be a no-op, not a panic
	g.Update(1, Point{5, 5})
	g.Remove(42)
	if g.Len() != 1 {
		t.Fatalf("Len = %d after removing an absent id", g.Len())
	}
	if got := g.WithinRange(Point{5, 5}, 1, nil); len(got) != 1 {
		t.Fatalf("present item lost: %v", got)
	}
}

// Items crossing a cell boundary in small steps must always be found at
// their current position and never at a stale one.
func TestGridCellBoundaryCrossing(t *testing.T) {
	g := NewGrid(Field(1000, 1000), 100)
	for x := 95.0; x <= 105; x += 1 { // walks across the x=100 cell edge
		g.Update(1, Point{x, 50})
		got := g.WithinRange(Point{x, 50}, 0.5, nil)
		if len(got) != 1 || got[0] != 1 {
			t.Fatalf("item lost at x=%v: %v", x, got)
		}
		if prev := g.WithinRange(Point{x - 10, 50}, 0.5, nil); len(prev) != 0 {
			t.Fatalf("stale position at x=%v: %v", x, prev)
		}
	}
}

// WithinRange must reuse the caller's buffer without allocating once its
// capacity suffices — the PHY calls it on every transmission.
func TestGridWithinRangeReusesBuffer(t *testing.T) {
	g := NewGrid(Field(1000, 1000), 250)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 64; i++ {
		g.Update(int32(i), Point{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	buf := make([]int32, 0, 128)
	allocs := testing.AllocsPerRun(100, func() {
		buf = g.WithinRange(Point{500, 500}, 400, buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("WithinRange allocates %.1f objects/op with a sized buffer", allocs)
	}
	if len(buf) == 0 {
		t.Fatal("query returned nothing")
	}
}

// Property: the grid agrees with a brute-force scan even when items and
// query centres stray (far) outside the indexed bounds. Out-of-bounds items
// clamp into edge cells and the query block clamps monotonically, so
// correctness must not depend on the declared bounds at all.
func TestGridOutOfBoundsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		g := NewGrid(Field(500, 500), 100)
		pts := make(map[int32]Point)
		n := 3 + rng.Intn(60)
		for i := 0; i < n; i++ {
			// Positions in [-1000, 2000): most outside the 500x500 bounds.
			p := Point{rng.Float64()*3000 - 1000, rng.Float64()*3000 - 1000}
			pts[int32(i)] = p
			g.Update(int32(i), p)
		}
		for i := 0; i < 20; i++ { // moves, also out of bounds
			id := int32(rng.Intn(n))
			p := Point{rng.Float64()*3000 - 1000, rng.Float64()*3000 - 1000}
			pts[id] = p
			g.Update(id, p)
		}
		centre := Point{rng.Float64()*3000 - 1000, rng.Float64()*3000 - 1000}
		radius := rng.Float64() * 600
		got := g.WithinRange(centre, radius, nil)
		var want []int32
		for id, p := range pts {
			if p.DistanceSqTo(centre) <= radius*radius {
				want = append(want, id)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v (centre %v r %v)", trial, got, want, centre, radius)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestGridResetReusesStorage(t *testing.T) {
	b := Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	g := NewGrid(b, 100)
	for i := int32(0); i < 50; i++ {
		g.Update(i, Point{X: float64(i) * 17, Y: float64(i) * 13})
	}
	if !g.Reset(b, 100) {
		t.Fatal("same geometry must be reusable")
	}
	if g.Len() != 0 {
		t.Fatalf("reset grid holds %d items", g.Len())
	}
	if got := g.WithinRange(Point{X: 100, Y: 100}, 1000, nil); len(got) != 0 {
		t.Fatalf("reset grid answered %v", got)
	}
	// Refilled, it behaves like a fresh grid.
	g.Update(7, Point{X: 500, Y: 500})
	if got := g.WithinRange(Point{X: 500, Y: 500}, 10, nil); len(got) != 1 || got[0] != 7 {
		t.Fatalf("after reset+update: %v", got)
	}
	// Any geometry change refuses reuse and leaves the grid untouched.
	if g.Reset(Rect{MinX: 0, MinY: 0, MaxX: 2000, MaxY: 1000}, 100) {
		t.Fatal("wider bounds must not be reusable")
	}
	if g.Reset(b, 90) {
		t.Fatal("different cell size must not be reusable")
	}
	if g.Reset(Rect{MinX: 1, MinY: 0, MaxX: 1001, MaxY: 1000}, 100) {
		t.Fatal("shifted origin must not be reusable")
	}
	if got, ok := g.Position(7); !ok || got != (Point{X: 500, Y: 500}) {
		t.Fatal("refused reset must not disturb contents")
	}
}
