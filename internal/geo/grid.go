package geo

import "math"

// Grid is a uniform-grid spatial index mapping integer item IDs to points.
// Cell size should be on the order of the query radius; range queries then
// touch only the 3×3 (or slightly larger) block of cells around the centre
// instead of scanning every item.
//
// The simulator uses it to find the receivers of a radio transmission: all
// nodes within carrier-sense range of a transmitter.
type Grid struct {
	cell   float64
	origin Point
	cols   int
	rows   int
	cells  [][]cellItem  // cell index -> items (id + position)
	where  map[int32]int // item id -> cell index
}

// cellItem stores the position inline with the id so that WithinRange—the
// hot path—never touches a map.
type cellItem struct {
	id int32
	p  Point
}

// gridDims derives the cell-array geometry for the given bounds and cell
// size; NewGrid and Reset must agree on it, so it lives in one place.
func gridDims(bounds Rect, cellSize float64) (cols, rows int) {
	if cellSize <= 0 {
		panic("geo: non-positive cell size")
	}
	cols = max(int(math.Ceil(bounds.Width()/cellSize))+1, 1)
	rows = max(int(math.Ceil(bounds.Height()/cellSize))+1, 1)
	return cols, rows
}

// NewGrid creates an index over the given bounds with the given cell size.
// Items may lie outside the bounds (they are clamped to the edge cells), so
// bounds affect only query efficiency, never correctness; this tolerates
// floating-point drift at field borders and nodes wandering off-field.
func NewGrid(bounds Rect, cellSize float64) *Grid {
	cols, rows := gridDims(bounds, cellSize)
	return &Grid{
		cell:   cellSize,
		origin: Point{bounds.MinX, bounds.MinY},
		cols:   cols,
		rows:   rows,
		cells:  make([][]cellItem, cols*rows),
		where:  make(map[int32]int),
	}
}

func (g *Grid) cellIndex(p Point) int {
	cx := min(max(int((p.X-g.origin.X)/g.cell), 0), g.cols-1)
	cy := min(max(int((p.Y-g.origin.Y)/g.cell), 0), g.rows-1)
	return cy*g.cols + cx
}

// Update inserts the item or moves it to a new position.
func (g *Grid) Update(id int32, p Point) {
	newCell := g.cellIndex(p)
	if old, ok := g.where[id]; ok {
		if old == newCell {
			items := g.cells[old]
			for i := range items {
				if items[i].id == id {
					items[i].p = p
					return
				}
			}
			panic("geo: grid cell missing indexed item")
		}
		g.removeFromCell(id, old)
	}
	g.cells[newCell] = append(g.cells[newCell], cellItem{id, p})
	g.where[id] = newCell
}

// Remove deletes the item; removing an absent item is a no-op.
func (g *Grid) Remove(id int32) {
	cell, ok := g.where[id]
	if !ok {
		return
	}
	g.removeFromCell(id, cell)
	delete(g.where, id)
}

func (g *Grid) removeFromCell(id int32, cell int) {
	items := g.cells[cell]
	for i := range items {
		if items[i].id == id {
			items[i] = items[len(items)-1]
			g.cells[cell] = items[:len(items)-1]
			return
		}
	}
}

// Len returns the number of indexed items.
func (g *Grid) Len() int { return len(g.where) }

// Reset empties the grid for reuse under the given geometry, keeping the
// per-cell item storage and the id map's buckets. It reports false — and
// changes nothing — when the geometry (cell size, origin, or grid
// dimensions) differs from the existing one, in which case the caller must
// allocate a fresh grid. Reusing the storage matters to batch executors
// (experiment sweeps) that rebuild the same field thousands of times.
func (g *Grid) Reset(bounds Rect, cellSize float64) bool {
	cols, rows := gridDims(bounds, cellSize)
	if cellSize != g.cell || cols != g.cols || rows != g.rows ||
		(Point{bounds.MinX, bounds.MinY}) != g.origin {
		return false
	}
	for i := range g.cells {
		g.cells[i] = g.cells[i][:0]
	}
	clear(g.where)
	return true
}

// Position returns the stored position of an item.
func (g *Grid) Position(id int32) (Point, bool) {
	cell, ok := g.where[id]
	if !ok {
		return Point{}, false
	}
	for _, it := range g.cells[cell] {
		if it.id == id {
			return it.p, true
		}
	}
	return Point{}, false
}

// WithinRange appends to dst the IDs of all items within radius of centre
// (inclusive) and returns the extended slice. The caller may pass a reused
// buffer to avoid allocation. Order is unspecified but deterministic for a
// given history of updates.
//
// Both block bounds are clamped into the grid, so a query centred beyond
// the indexed bounds still scans the edge cells where out-of-bounds items
// live: clamping is monotonic, so an item within radius always lands inside
// the scanned block no matter how far either point strays.
func (g *Grid) WithinRange(centre Point, radius float64, dst []int32) []int32 {
	r2 := radius * radius
	minCX := min(max(int((centre.X-radius-g.origin.X)/g.cell), 0), g.cols-1)
	maxCX := min(max(int((centre.X+radius-g.origin.X)/g.cell), 0), g.cols-1)
	minCY := min(max(int((centre.Y-radius-g.origin.Y)/g.cell), 0), g.rows-1)
	maxCY := min(max(int((centre.Y+radius-g.origin.Y)/g.cell), 0), g.rows-1)
	for cy := minCY; cy <= maxCY; cy++ {
		row := g.cells[cy*g.cols+minCX : cy*g.cols+maxCX+1]
		for _, items := range row {
			for _, it := range items {
				if it.p.DistanceSqTo(centre) <= r2 {
					dst = append(dst, it.id)
				}
			}
		}
	}
	return dst
}

// Hit is one WithinRangeHits result: an item id together with the position
// snapshot the grid holds for it. Callers whose items cannot have drifted
// since their last Update (stationary radios) may use P directly and skip a
// second position lookup; for items that do drift, P is the snapshot the
// query radius was inflated against and the caller must re-check exactly.
type Hit struct {
	ID int32
	P  Point
}

// WithinRangeHits is the batch-fill variant of WithinRange: it appends one
// Hit per item within radius of centre (inclusive), carrying the stored
// position snapshot alongside the id so one grid pass yields everything a
// per-transmission receiver batch needs. Order is unspecified but
// deterministic for a given history of updates, exactly like WithinRange.
func (g *Grid) WithinRangeHits(centre Point, radius float64, dst []Hit) []Hit {
	r2 := radius * radius
	minCX := min(max(int((centre.X-radius-g.origin.X)/g.cell), 0), g.cols-1)
	maxCX := min(max(int((centre.X+radius-g.origin.X)/g.cell), 0), g.cols-1)
	minCY := min(max(int((centre.Y-radius-g.origin.Y)/g.cell), 0), g.rows-1)
	maxCY := min(max(int((centre.Y+radius-g.origin.Y)/g.cell), 0), g.rows-1)
	for cy := minCY; cy <= maxCY; cy++ {
		row := g.cells[cy*g.cols+minCX : cy*g.cols+maxCX+1]
		for _, items := range row {
			for _, it := range items {
				if it.p.DistanceSqTo(centre) <= r2 {
					dst = append(dst, Hit{ID: it.id, P: it.p})
				}
			}
		}
	}
	return dst
}
