package geo

import "math"

// Grid is a uniform-grid spatial index mapping integer item IDs to points.
// Cell size should be on the order of the query radius; range queries then
// touch only the 3×3 (or slightly larger) block of cells around the centre
// instead of scanning every item.
//
// The simulator uses it to find the receivers of a radio transmission: all
// nodes within carrier-sense range of a transmitter.
type Grid struct {
	cell   float64
	origin Point
	cols   int
	rows   int
	cells  [][]int32       // cell index -> item ids
	where  map[int32]int   // item id -> cell index
	points map[int32]Point // item id -> exact position
}

// NewGrid creates an index over the given bounds with the given cell size.
// Items may lie slightly outside the bounds (they are clamped to the edge
// cells), which tolerates floating-point drift at field borders.
func NewGrid(bounds Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		panic("geo: non-positive cell size")
	}
	cols := int(math.Ceil(bounds.Width()/cellSize)) + 1
	rows := int(math.Ceil(bounds.Height()/cellSize)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		cell:   cellSize,
		origin: Point{bounds.MinX, bounds.MinY},
		cols:   cols,
		rows:   rows,
		cells:  make([][]int32, cols*rows),
		where:  make(map[int32]int),
		points: make(map[int32]Point),
	}
}

func (g *Grid) cellIndex(p Point) int {
	cx := int((p.X - g.origin.X) / g.cell)
	cy := int((p.Y - g.origin.Y) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Update inserts the item or moves it to a new position.
func (g *Grid) Update(id int32, p Point) {
	newCell := g.cellIndex(p)
	if old, ok := g.where[id]; ok {
		if old == newCell {
			g.points[id] = p
			return
		}
		g.removeFromCell(id, old)
	}
	g.cells[newCell] = append(g.cells[newCell], id)
	g.where[id] = newCell
	g.points[id] = p
}

// Remove deletes the item; removing an absent item is a no-op.
func (g *Grid) Remove(id int32) {
	cell, ok := g.where[id]
	if !ok {
		return
	}
	g.removeFromCell(id, cell)
	delete(g.where, id)
	delete(g.points, id)
}

func (g *Grid) removeFromCell(id int32, cell int) {
	items := g.cells[cell]
	for i, v := range items {
		if v == id {
			items[i] = items[len(items)-1]
			g.cells[cell] = items[:len(items)-1]
			return
		}
	}
}

// Len returns the number of indexed items.
func (g *Grid) Len() int { return len(g.where) }

// Position returns the stored position of an item.
func (g *Grid) Position(id int32) (Point, bool) {
	p, ok := g.points[id]
	return p, ok
}

// WithinRange appends to dst the IDs of all items within radius of centre
// (inclusive) and returns the extended slice. The caller may pass a reused
// buffer to avoid allocation. Order is unspecified but deterministic for a
// given history of updates.
func (g *Grid) WithinRange(centre Point, radius float64, dst []int32) []int32 {
	r2 := radius * radius
	minCX := int((centre.X - radius - g.origin.X) / g.cell)
	maxCX := int((centre.X + radius - g.origin.X) / g.cell)
	minCY := int((centre.Y - radius - g.origin.Y) / g.cell)
	maxCY := int((centre.Y + radius - g.origin.Y) / g.cell)
	if minCX < 0 {
		minCX = 0
	}
	if minCY < 0 {
		minCY = 0
	}
	if maxCX >= g.cols {
		maxCX = g.cols - 1
	}
	if maxCY >= g.rows {
		maxCY = g.rows - 1
	}
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			for _, id := range g.cells[cy*g.cols+cx] {
				if g.points[id].DistanceSqTo(centre) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}
