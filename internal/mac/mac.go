// Package mac implements an IEEE 802.11b DCF MAC: CSMA/CA with physical and
// virtual carrier sense (NAV), slotted binary-exponential backoff, optional
// RTS/CTS for large unicast frames, positive ACKs with retry limits, and a
// drop-tail interface queue.
//
// The paper's evaluation (like ns-2's wireless stack it was run on) relies
// on two MAC behaviours this package reproduces faithfully:
//
//   - contention and collisions on a shared medium, which create the
//     delay/throughput differences between protocols, and
//   - link-failure feedback: when a unicast frame exhausts its retries the
//     routing protocol is notified, which is how DSR/AODV/MTS detect broken
//     links ("the feedback from the MAC layer", §III-E).
//
// Simplification (documented): EIFS after corrupted receptions is not
// modelled; corrupted frames are simply ignored. This slightly favours all
// protocols equally and does not affect their ordering.
package mac

import (
	"mtsim/internal/packet"
	"mtsim/internal/phy"
	"mtsim/internal/sim"
)

// Upper is the interface the MAC reports to (the node's network layer).
type Upper interface {
	// Deliver hands up a received network-layer packet addressed to this
	// node (or broadcast), along with the transmitting neighbour.
	Deliver(p *packet.Packet, from packet.NodeID)
	// LinkFailed reports that a unicast packet could not be delivered to
	// next after exhausting MAC retries.
	LinkFailed(p *packet.Packet, next packet.NodeID)
}

// Config holds the 802.11 timing and policy parameters.
type Config struct {
	SlotTime sim.Duration
	SIFS     sim.Duration
	DIFS     sim.Duration
	// PLCPOverhead is the preamble+header time prepended to every frame.
	PLCPOverhead sim.Duration

	DataRate  float64 // bit/s for unicast data frames
	BasicRate float64 // bit/s for control frames and broadcasts

	CWMin, CWMax    int
	ShortRetryLimit int // attempts for RTS and small data frames
	LongRetryLimit  int // attempts for data frames sent after RTS/CTS

	// RTSThreshold: unicast payloads of at least this many bytes use the
	// RTS/CTS exchange. Set very large to disable RTS/CTS entirely.
	RTSThreshold int

	QueueCap int // interface queue capacity (packets)

	MacHeaderBytes int
	RTSBytes       int
	CTSBytes       int
	AckBytes       int
}

// Default80211b returns the 802.11b parameter set used by the paper's ns-2
// setup: 11 Mb/s data, 2 Mb/s basic rate, long PLCP preamble, 50-packet
// interface queue.
func Default80211b() Config {
	return Config{
		SlotTime:        20 * sim.Microsecond,
		SIFS:            10 * sim.Microsecond,
		DIFS:            50 * sim.Microsecond,
		PLCPOverhead:    192 * sim.Microsecond,
		DataRate:        11e6,
		BasicRate:       2e6,
		CWMin:           31,
		CWMax:           1023,
		ShortRetryLimit: 7,
		LongRetryLimit:  4,
		RTSThreshold:    250,
		QueueCap:        50,
		MacHeaderBytes:  28,
		RTSBytes:        20,
		CTSBytes:        14,
		AckBytes:        14,
	}
}

// maxPropSlack absorbs propagation delay in response timeouts.
const maxPropSlack = 5 * sim.Microsecond

type jobState int

const (
	stIdle jobState = iota
	stContend
	stTxRTS
	stWaitCTS
	stTxData
	stWaitAck
)

// txJob is one queued network packet with its link-layer destination.
type txJob struct {
	pkt  *packet.Packet
	next packet.NodeID
	// frame is the attempt currently on the air (released back to the
	// arena when its tx-done event fires; nil between attempts).
	frame *packet.Frame
	// attempts
	shortRetries int
	longRetries  int
	useRTS       bool
	seq          uint16
}

// Stats counts MAC-level happenings; read by metrics and tests.
type Stats struct {
	FramesSent    [4]uint64 // indexed by packet.FrameKind
	Delivered     uint64
	Duplicates    uint64
	LinkFailures  uint64
	QueueDrops    uint64
	Retries       uint64
	ResponsesSent uint64
}

// Mac is one node's 802.11 DCF instance.
type Mac struct {
	id      packet.NodeID
	sched   *sim.Scheduler
	radio   *phy.Radio
	channel *phy.Channel
	cfg     Config
	up      Upper
	rng     *sim.RNG
	uids    *packet.UIDSource

	queue []*txJob
	cur   *txJob
	state jobState
	cw    int

	backoffSlots int
	backoffStart sim.Time

	difsEvent    sim.TaskHandle
	backoffEvent sim.TaskHandle
	timeoutEvent sim.TaskHandle
	navEvent     sim.TaskHandle

	// ctsJob snapshots the job a post-CTS data transmission was scheduled
	// for, so the SIFS-deferred send can detect job abandonment.
	ctsJob *txJob

	jobPool  sim.Pool[txJob]   // recycled interface-queue jobs
	respPool sim.Pool[respJob] // recycled CTS/ACK response state

	// arena pools packets and frames for the whole run; may be nil
	// (hand-assembled test stacks), in which case every release is a
	// no-op and frames are plain allocations.
	arena *packet.Arena
	// resps tracks scheduled/in-flight CTS-or-ACK responses so Retire can
	// account for their frames at the run horizon.
	resps []*respJob

	nav        sim.Time
	responding int // scheduled or in-flight CTS/ACK responses

	seqCounter uint16
	dupCache   map[packet.NodeID]uint16

	// Tap, when set, sees every successfully decoded frame before address
	// filtering — promiscuous mode (eavesdropper, DSR tap, traces).
	Tap func(f *packet.Frame)
	// OnSend, when set, sees every frame this MAC puts on the air
	// (metrics: control overhead counts per-hop transmissions).
	OnSend func(f *packet.Frame)

	Stats Stats
}

// New creates a MAC bound to a radio on the given channel. The caller must
// register the returned MAC as the radio's listener (the scenario builder
// does this by attaching the radio with the MAC as listener; see node.New).
func New(id packet.NodeID, sched *sim.Scheduler, ch *phy.Channel, cfg Config, up Upper, rng *sim.RNG, uids *packet.UIDSource) *Mac {
	return &Mac{
		id:       id,
		sched:    sched,
		channel:  ch,
		cfg:      cfg,
		up:       up,
		rng:      rng,
		uids:     uids,
		cw:       cfg.CWMin,
		dupCache: make(map[packet.NodeID]uint16),
	}
}

// BindRadio attaches the radio this MAC transmits and receives through.
// Must be called exactly once before the simulation starts.
func (m *Mac) BindRadio(r *phy.Radio) { m.radio = r }

// SetArena binds the run's packet arena. Must be set (if at all) before
// any traffic; the node wires it for scenario-built stacks.
func (m *Mac) SetArena(a *packet.Arena) { m.arena = a }

// propHold is how long released frames and broadcast payloads stay
// quarantined: the upper bound on any arrival still propagating.
func (m *Mac) propHold() sim.Duration { return m.channel.MaxPropDelay() }

// releaseJobFrame retires the frame of the job's just-completed attempt.
func (m *Mac) releaseJobFrame(j *txJob) {
	if j == nil || j.frame == nil {
		return
	}
	m.arena.ReleaseFrameAfter(j.frame, m.propHold())
	j.frame = nil
}

// Timer kinds dispatched through the MAC's sim.Task implementation. All
// MAC timers run as pooled task events: the 802.11 state machine arms and
// revokes timers on every frame, so closure events would dominate the
// simulator's allocation profile.
const (
	macNavExpire = iota
	macDIFSDone
	macBackoffDone
	macCTSTimeout
	macAckTimeout
	macTxDoneRTS
	macTxDoneData
	macTxDoneBroadcast
	macSendAfterCTS
)

// Run implements sim.Task, dispatching the MAC's timer events.
func (m *Mac) Run(arg int) {
	switch arg {
	case macNavExpire:
		m.navEvent = sim.TaskHandle{}
		m.reconsider()
	case macDIFSDone:
		m.difsEvent = sim.TaskHandle{}
		m.backoffStart = m.sched.Now()
		m.backoffEvent = m.sched.AfterTaskCancellable(
			sim.Duration(m.backoffSlots)*m.cfg.SlotTime, m, macBackoffDone)
	case macBackoffDone:
		m.backoffEvent = sim.TaskHandle{}
		m.onBackoffDone()
	case macCTSTimeout:
		m.timeoutEvent = sim.TaskHandle{}
		m.onCTSTimeout()
	case macAckTimeout:
		m.timeoutEvent = sim.TaskHandle{}
		m.onAckTimeout()
	case macTxDoneRTS:
		m.releaseJobFrame(m.cur)
		m.state = stWaitCTS
		timeout := m.cfg.SIFS + m.ctsAirtime() + 2*maxPropSlack + m.cfg.SlotTime
		m.timeoutEvent = m.sched.AfterTaskCancellable(timeout, m, macCTSTimeout)
	case macTxDoneData:
		m.releaseJobFrame(m.cur)
		m.state = stWaitAck
		timeout := m.cfg.SIFS + m.ackAirtime() + 2*maxPropSlack + m.cfg.SlotTime
		m.timeoutEvent = m.sched.AfterTaskCancellable(timeout, m, macAckTimeout)
	case macTxDoneBroadcast:
		if j := m.cur; j != nil {
			// A broadcast has no MAC-ACK: the payload dies with the
			// transmission, but its arrivals are still propagating, so it
			// goes through the quarantine rather than straight to reuse.
			m.releaseJobFrame(j)
			m.arena.ReleaseAfter(j.pkt, m.propHold())
			j.pkt = nil
		}
		m.finishJob()
	case macSendAfterCTS:
		job := m.ctsJob
		m.ctsJob = nil
		if job == nil || m.cur != job {
			return // job was abandoned meanwhile
		}
		m.transmitData(job)
	}
}

// acquireJob takes a txJob from the free list (or allocates one).
func (m *Mac) acquireJob(p *packet.Packet, next packet.NodeID) *txJob {
	j := m.jobPool.Get()
	j.pkt, j.next = p, next
	return j
}

// releaseJob recycles a finished/dropped job. Any snapshot pointer to it is
// cleared first so a recycled struct can never alias a live comparison.
func (m *Mac) releaseJob(j *txJob) {
	if m.ctsJob == j {
		m.ctsJob = nil
	}
	m.jobPool.Put(j)
}

// Retire releases every packet and frame still in the MAC's custody —
// the interface queue, the in-flight job and any scheduled CTS/ACK
// responses — back to the arena. End-of-run accounting only: the MAC must
// not carry traffic afterwards (the next run rebuilds its node).
func (m *Mac) Retire() {
	if j := m.cur; j != nil {
		m.cur = nil
		m.releaseJobFrame(j)
		m.arena.Release(j.pkt)
		m.releaseJob(j)
	}
	for i, j := range m.queue {
		m.arena.Release(j.pkt)
		m.releaseJob(j)
		m.queue[i] = nil
	}
	m.queue = m.queue[:0]
	for len(m.resps) > 0 {
		r := m.resps[0]
		m.arena.ReleaseFrame(r.f)
		m.releaseResp(r) // removes r from m.resps
	}
}

// ID returns the node ID this MAC serves.
func (m *Mac) ID() packet.NodeID { return m.id }

// QueueLen returns the current interface-queue depth (tests, stats).
func (m *Mac) QueueLen() int { return len(m.queue) }
