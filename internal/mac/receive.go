package mac

import (
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// EnergyUp implements phy.Listener: the medium became busy.
func (m *Mac) EnergyUp() {
	if m.state == stContend {
		m.pauseContention()
	}
}

// EnergyDown implements phy.Listener: the medium became idle.
func (m *Mac) EnergyDown() {
	m.reconsider()
}

// setNAV extends the virtual carrier sense horizon and schedules a
// re-evaluation at its expiry.
func (m *Mac) setNAV(until sim.Time) {
	if until <= m.nav {
		return
	}
	m.nav = until
	if m.state == stContend {
		m.pauseContention()
	}
	if m.navEvent.Pending() {
		m.sched.CancelTask(m.navEvent)
	}
	m.navEvent = m.sched.AtTaskCancellable(until, m, macNavExpire)
}

// RxEnd implements phy.Listener: a decodable frame finished arriving.
func (m *Mac) RxEnd(f *packet.Frame, ok bool) {
	if !ok {
		// Corrupted frame: no EIFS modelling (see package comment).
		return
	}
	if m.Tap != nil {
		m.Tap(f)
	}
	if f.TxTo != m.id && f.TxTo != packet.Broadcast {
		// Overheard frame for someone else: honour its NAV.
		if f.NAV > 0 {
			m.setNAV(m.sched.Now().Add(f.NAV))
		}
		return
	}
	switch f.Kind {
	case packet.FrameRTS:
		m.handleRTS(f)
	case packet.FrameCTS:
		m.handleCTS(f)
	case packet.FrameData:
		m.handleData(f)
	case packet.FrameAck:
		m.handleAck(f)
	}
}

func (m *Mac) handleRTS(f *packet.Frame) {
	// Respond only if our virtual carrier sense is clear (802.11 rule);
	// otherwise stay silent and let the requester back off.
	if m.sched.Now() < m.nav || m.responding > 0 {
		return
	}
	nav := f.NAV - m.cfg.SIFS - m.ctsAirtime()
	if nav < 0 {
		nav = 0
	}
	cts := m.arena.NewFrameFrom(packet.Frame{
		UID:    m.uids.Next(),
		Kind:   packet.FrameCTS,
		TxFrom: m.id,
		TxTo:   f.TxFrom,
		NAV:    nav,
	})
	m.respond(cts, m.ctsAirtime())
}

func (m *Mac) handleCTS(f *packet.Frame) {
	if m.state != stWaitCTS || m.cur == nil || f.TxFrom != m.cur.next {
		return
	}
	if m.timeoutEvent.Pending() {
		m.sched.CancelTask(m.timeoutEvent)
		m.timeoutEvent = sim.TaskHandle{}
	}
	m.state = stTxData // committed; a duplicate CTS must not re-trigger
	m.sendDataAfterCTS()
}

func (m *Mac) handleData(f *packet.Frame) {
	if f.IsBroadcast() {
		m.Stats.Delivered++
		if m.up != nil {
			m.up.Deliver(f.Payload, f.TxFrom)
		}
		return
	}
	// Unicast: always ACK; deliver only if not a duplicate retransmission.
	ack := m.arena.NewFrameFrom(packet.Frame{
		UID:    m.uids.Next(),
		Kind:   packet.FrameAck,
		TxFrom: m.id,
		TxTo:   f.TxFrom,
	})
	m.respond(ack, m.ackAirtime())

	if last, seen := m.dupCache[f.TxFrom]; seen && f.Retry && last == f.Seq {
		m.Stats.Duplicates++
		return
	}
	m.dupCache[f.TxFrom] = f.Seq
	m.Stats.Delivered++
	if m.up != nil {
		m.up.Deliver(f.Payload, f.TxFrom)
	}
}

func (m *Mac) handleAck(f *packet.Frame) {
	if m.state != stWaitAck || m.cur == nil || f.TxFrom != m.cur.next {
		return
	}
	if m.timeoutEvent.Pending() {
		m.sched.CancelTask(m.timeoutEvent)
		m.timeoutEvent = sim.TaskHandle{}
	}
	m.finishJob()
}

// respJob is the pooled state of one in-flight CTS/ACK response: the frame
// to send and its airtime, dispatched SIFS after the eliciting frame
// (respSend) and again when the response leaves the air (respDone).
type respJob struct {
	m       *Mac
	f       *packet.Frame
	airtime sim.Duration
}

const (
	respSend = iota
	respDone
)

// Run implements sim.Task.
func (r *respJob) Run(arg int) {
	m := r.m
	switch arg {
	case respSend:
		if m.radio.Transmitting() {
			// We started another transmission at the same instant; the
			// response is lost and the requester will time out. The frame
			// never went on the air, so nobody can be decoding it.
			m.responding--
			m.arena.ReleaseFrame(r.f)
			m.releaseResp(r)
			m.reconsider()
			return
		}
		m.Stats.ResponsesSent++
		m.put(r.f, r.airtime)
		m.sched.AfterTask(r.airtime, r, respDone)
	case respDone:
		m.responding--
		m.arena.ReleaseFrameAfter(r.f, m.propHold())
		m.releaseResp(r)
		m.reconsider()
	}
}

func (m *Mac) releaseResp(r *respJob) {
	for i, q := range m.resps {
		if q == r {
			last := len(m.resps) - 1
			m.resps[i] = m.resps[last]
			m.resps[last] = nil
			m.resps = m.resps[:last]
			break
		}
	}
	m.respPool.Put(r)
}

// respond sends a CTS or ACK SIFS after the eliciting frame, bypassing
// contention as 802.11 prescribes. Contention for our own pending job stays
// paused until the response is on the air and finished.
func (m *Mac) respond(f *packet.Frame, airtime sim.Duration) {
	m.responding++
	if m.state == stContend {
		m.pauseContention()
	}
	r := m.respPool.Get()
	r.m, r.f, r.airtime = m, f, airtime
	m.resps = append(m.resps, r)
	m.sched.AfterTask(m.cfg.SIFS, r, respSend)
}
