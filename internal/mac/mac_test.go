package mac

import (
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/packet"
	"mtsim/internal/phy"
	"mtsim/internal/sim"
)

// upperRec records Upper callbacks for assertions.
type upperRec struct {
	delivered []*packet.Packet
	from      []packet.NodeID
	failed    []*packet.Packet
	failedTo  []packet.NodeID
}

func (u *upperRec) Deliver(p *packet.Packet, from packet.NodeID) {
	u.delivered = append(u.delivered, p)
	u.from = append(u.from, from)
}

func (u *upperRec) LinkFailed(p *packet.Packet, next packet.NodeID) {
	u.failed = append(u.failed, p)
	u.failedTo = append(u.failedTo, next)
}

// rig builds n MAC nodes at the given positions on one channel.
type rig struct {
	sched  *sim.Scheduler
	ch     *phy.Channel
	macs   []*Mac
	uppers []*upperRec
	uids   *packet.UIDSource
}

func newRig(positions []geo.Point, cfg Config) *rig {
	r := &rig{
		sched: sim.NewScheduler(),
		uids:  &packet.UIDSource{},
	}
	r.ch = phy.NewChannel(r.sched, 250, 550)
	master := sim.NewRNG(1234)
	for i, p := range positions {
		up := &upperRec{}
		id := packet.NodeID(i)
		m := New(id, r.sched, r.ch, cfg, up, master.Derive("mac"), r.uids)
		p := p
		radio := r.ch.Attach(id, func(sim.Time) geo.Point { return p }, m)
		m.BindRadio(radio)
		r.macs = append(r.macs, m)
		r.uppers = append(r.uppers, up)
	}
	return r
}

func (r *rig) dataPacket(src, dst packet.NodeID, size int) *packet.Packet {
	return &packet.Packet{
		UID: r.uids.Next(), Kind: packet.KindData, Size: size,
		Src: src, Dst: dst, TTL: 32,
	}
}

func TestUnicastDelivery(t *testing.T) {
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Default80211b())
	p := r.dataPacket(0, 1, 1040)
	r.macs[0].Send(p, 1)
	r.sched.RunUntil(sim.Time(sim.Second))

	up := r.uppers[1]
	if len(up.delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(up.delivered))
	}
	if up.delivered[0] != p || up.from[0] != 0 {
		t.Fatal("wrong packet or sender")
	}
	// 1040 >= RTSThreshold: the full four-way exchange must have happened.
	m0, m1 := r.macs[0], r.macs[1]
	if m0.Stats.FramesSent[packet.FrameRTS] != 1 {
		t.Fatalf("RTS sent = %d", m0.Stats.FramesSent[packet.FrameRTS])
	}
	if m1.Stats.FramesSent[packet.FrameCTS] != 1 {
		t.Fatalf("CTS sent = %d", m1.Stats.FramesSent[packet.FrameCTS])
	}
	if m0.Stats.FramesSent[packet.FrameData] != 1 {
		t.Fatalf("DATA sent = %d", m0.Stats.FramesSent[packet.FrameData])
	}
	if m1.Stats.FramesSent[packet.FrameAck] != 1 {
		t.Fatalf("ACK sent = %d", m1.Stats.FramesSent[packet.FrameAck])
	}
	if m0.Stats.LinkFailures != 0 {
		t.Fatal("spurious link failure")
	}
}

func TestSmallUnicastSkipsRTS(t *testing.T) {
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Default80211b())
	p := r.dataPacket(0, 1, 40) // TCP ACK size, below RTSThreshold
	r.macs[0].Send(p, 1)
	r.sched.RunUntil(sim.Time(sim.Second))

	if len(r.uppers[1].delivered) != 1 {
		t.Fatal("small packet not delivered")
	}
	if r.macs[0].Stats.FramesSent[packet.FrameRTS] != 0 {
		t.Fatal("RTS used below threshold")
	}
	if r.macs[1].Stats.FramesSent[packet.FrameAck] != 1 {
		t.Fatal("unicast data must still be ACKed")
	}
}

func TestBroadcastNoAckNoRetry(t *testing.T) {
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}}, Default80211b())
	p := &packet.Packet{UID: r.uids.Next(), Kind: packet.KindRREQ, Size: 64, Src: 0, Dst: 2, TTL: 32}
	r.macs[0].Send(p, packet.Broadcast)
	r.sched.RunUntil(sim.Time(sim.Second))

	if len(r.uppers[1].delivered) != 1 || len(r.uppers[2].delivered) != 1 {
		t.Fatalf("broadcast delivery: %d, %d", len(r.uppers[1].delivered), len(r.uppers[2].delivered))
	}
	if r.macs[1].Stats.FramesSent[packet.FrameAck] != 0 {
		t.Fatal("broadcast must not be ACKed")
	}
	if r.macs[0].Stats.FramesSent[packet.FrameData] != 1 {
		t.Fatal("broadcast must be sent exactly once")
	}
}

func TestLinkFailureAfterRetries(t *testing.T) {
	// Receiver is out of range: RTS retries exhaust, LinkFailed fires.
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 800, Y: 0}}, Default80211b())
	p := r.dataPacket(0, 1, 1040)
	r.macs[0].Send(p, 1)
	r.sched.RunUntil(sim.Time(5 * sim.Second))

	up := r.uppers[0]
	if len(up.failed) != 1 || up.failed[0] != p || up.failedTo[0] != 1 {
		t.Fatalf("link failure not reported: %d", len(up.failed))
	}
	if got := r.macs[0].Stats.FramesSent[packet.FrameRTS]; got != uint64(Default80211b().ShortRetryLimit) {
		t.Fatalf("RTS attempts = %d, want %d", got, Default80211b().ShortRetryLimit)
	}
	if len(r.uppers[1].delivered) != 0 {
		t.Fatal("out-of-range receiver got the packet")
	}
}

func TestLinkFailureSmallFrame(t *testing.T) {
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 800, Y: 0}}, Default80211b())
	p := r.dataPacket(0, 1, 40)
	r.macs[0].Send(p, 1)
	r.sched.RunUntil(sim.Time(5 * sim.Second))
	if len(r.uppers[0].failed) != 1 {
		t.Fatal("link failure not reported for small frame")
	}
	if got := r.macs[0].Stats.FramesSent[packet.FrameData]; got != uint64(Default80211b().ShortRetryLimit) {
		t.Fatalf("DATA attempts = %d, want short retry limit", got)
	}
}

func TestQueueDropWhenFull(t *testing.T) {
	cfg := Default80211b()
	cfg.QueueCap = 3
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, cfg)
	for i := 0; i < 10; i++ {
		r.macs[0].Send(r.dataPacket(0, 1, 1040), 1)
	}
	// One job is dequeued immediately into the contention pipeline, so at
	// most cap remain queued; the rest are dropped.
	if r.macs[0].Stats.QueueDrops == 0 {
		t.Fatal("no queue drops recorded")
	}
	r.sched.RunUntil(sim.Time(sim.Second))
	delivered := len(r.uppers[1].delivered)
	if delivered+int(r.macs[0].Stats.QueueDrops) != 10 {
		t.Fatalf("delivered %d + dropped %d != 10", delivered, r.macs[0].Stats.QueueDrops)
	}
}

func TestDropWhere(t *testing.T) {
	cfg := Default80211b()
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}}, cfg)
	// Stall the MAC by filling with packets to node 1, then drop them.
	for i := 0; i < 5; i++ {
		r.macs[0].Send(r.dataPacket(0, 1, 1040), 1)
	}
	dropped := r.macs[0].DropWhere(func(p *packet.Packet, next packet.NodeID) bool {
		return next == 1
	})
	if dropped != 4 { // head job already left the queue
		t.Fatalf("dropped %d, want 4", dropped)
	}
	if r.macs[0].QueueLen() != 0 {
		t.Fatalf("queue len = %d", r.macs[0].QueueLen())
	}
}

func TestConcurrentSendersBothDeliver(t *testing.T) {
	// Two senders in range of each other contend for the medium; CSMA must
	// serialise them and both packets arrive.
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 50, Y: 50}}, Default80211b())
	p1 := r.dataPacket(0, 2, 1040)
	p2 := r.dataPacket(1, 2, 1040)
	r.sched.At(0, func() {
		r.macs[0].Send(p1, 2)
		r.macs[1].Send(p2, 2)
	})
	r.sched.RunUntil(sim.Time(sim.Second))

	if len(r.uppers[2].delivered) != 2 {
		t.Fatalf("delivered %d, want 2", len(r.uppers[2].delivered))
	}
}

func TestManyContendersAllDeliver(t *testing.T) {
	// Five stations around a receiver, all in mutual CS range.
	pos := []geo.Point{
		{X: 100, Y: 100}, // receiver
		{X: 0, Y: 100}, {X: 200, Y: 100}, {X: 100, Y: 0}, {X: 100, Y: 200}, {X: 30, Y: 30},
	}
	r := newRig(pos, Default80211b())
	const per = 4
	for s := 1; s <= 5; s++ {
		for k := 0; k < per; k++ {
			p := r.dataPacket(packet.NodeID(s), 0, 1040)
			s := s
			r.sched.At(0, func() { r.macs[s].Send(p, 0) })
		}
	}
	r.sched.RunUntil(sim.Time(2 * sim.Second))
	if got := len(r.uppers[0].delivered); got != 5*per {
		t.Fatalf("delivered %d, want %d", got, 5*per)
	}
}

func TestHiddenTerminalsEventuallyDeliver(t *testing.T) {
	// Classic hidden-terminal: A and C cannot sense each other (1000m apart,
	// CS range 550m) and both send to B in the middle. RTS/CTS plus
	// retries must still get both packets through.
	pos := []geo.Point{{X: 0, Y: 0}, {X: 240, Y: 0}, {X: 480, Y: 0}}
	r := newRig(pos, Default80211b())
	var delivered int
	const per = 5
	for k := 0; k < per; k++ {
		r.macs[0].Send(r.dataPacket(0, 1, 1040), 1)
		r.macs[2].Send(r.dataPacket(2, 1, 1040), 1)
	}
	r.sched.RunUntil(sim.Time(5 * sim.Second))
	delivered = len(r.uppers[1].delivered)
	if delivered != 2*per {
		t.Fatalf("hidden-terminal delivery: %d of %d", delivered, 2*per)
	}
}

func TestPromiscuousTap(t *testing.T) {
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 50, Y: 50}}, Default80211b())
	var tapped []*packet.Frame
	r.macs[2].Tap = func(f *packet.Frame) { tapped = append(tapped, f) }
	r.macs[0].Send(r.dataPacket(0, 1, 1040), 1)
	r.sched.RunUntil(sim.Time(sim.Second))

	// The eavesdropper overhears RTS, CTS, DATA and ACK.
	kinds := map[packet.FrameKind]int{}
	for _, f := range tapped {
		kinds[f.Kind]++
	}
	if kinds[packet.FrameData] != 1 {
		t.Fatalf("tap saw %d data frames, want 1 (tapped: %v)", kinds[packet.FrameData], kinds)
	}
	if kinds[packet.FrameRTS] != 1 || kinds[packet.FrameCTS] != 1 || kinds[packet.FrameAck] != 1 {
		t.Fatalf("tap missed control frames: %v", kinds)
	}
	// Third parties must not deliver overheard unicast upward.
	if len(r.uppers[2].delivered) != 0 {
		t.Fatal("overheard unicast delivered upward")
	}
}

func TestOnSendHook(t *testing.T) {
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Default80211b())
	var sent []packet.FrameKind
	r.macs[0].OnSend = func(f *packet.Frame) { sent = append(sent, f.Kind) }
	r.macs[0].Send(r.dataPacket(0, 1, 1040), 1)
	r.sched.RunUntil(sim.Time(sim.Second))
	if len(sent) != 2 { // RTS + DATA from the sender
		t.Fatalf("OnSend saw %v", sent)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Force the ACK to be lost so the sender retransmits; receiver must
	// deliver the payload only once.
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Default80211b())
	ackDropped := false
	r.ch.DropFrame = func(f *packet.Frame, to packet.NodeID) bool {
		if f.Kind == packet.FrameAck && !ackDropped {
			ackDropped = true
			return true
		}
		return false
	}
	p := r.dataPacket(0, 1, 1040)
	r.macs[0].Send(p, 1)
	r.sched.RunUntil(sim.Time(sim.Second))

	if len(r.uppers[1].delivered) != 1 {
		t.Fatalf("delivered %d, want 1 (dup suppression)", len(r.uppers[1].delivered))
	}
	if r.macs[1].Stats.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", r.macs[1].Stats.Duplicates)
	}
	if !ackDropped {
		t.Fatal("test setup: ACK was never dropped")
	}
}

func TestNAVDefersThirdParty(t *testing.T) {
	// C overhears A's RTS to B and must defer for the whole exchange:
	// C's own transmission attempt must start only after A's ACK.
	// CWMin=0 makes contention deterministic: A's RTS is on the air at
	// 50us and C (queued at 400us) would, without NAV, transmit right in
	// the middle of A's data frame.
	cfg := Default80211b()
	cfg.CWMin = 0
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 100}}, cfg)
	var cSentAt sim.Time
	r.macs[2].OnSend = func(f *packet.Frame) {
		if cSentAt == 0 {
			cSentAt = r.sched.Now()
		}
	}
	var ackAt sim.Time
	r.macs[1].OnSend = func(f *packet.Frame) {
		if f.Kind == packet.FrameAck && ackAt == 0 {
			ackAt = r.sched.Now()
		}
	}
	r.macs[0].Send(r.dataPacket(0, 1, 1040), 1)
	// C tries to send after A's RTS has been overheard.
	r.sched.At(sim.Time(400*sim.Microsecond), func() {
		r.macs[2].Send(r.dataPacket(2, 1, 1040), 1)
	})
	r.sched.RunUntil(sim.Time(sim.Second))

	if ackAt == 0 || cSentAt == 0 {
		t.Fatal("exchange did not complete")
	}
	if cSentAt < ackAt {
		t.Fatalf("third party transmitted at %v before ACK at %v (NAV violated)", cSentAt, ackAt)
	}
}

func TestAirtimeMath(t *testing.T) {
	cfg := Default80211b()
	r := newRig([]geo.Point{{X: 0, Y: 0}}, cfg)
	m := r.macs[0]
	// 1040B payload + 28B MAC header at 11 Mb/s + 192us PLCP.
	want := cfg.PLCPOverhead + sim.Seconds(float64((1040+28)*8)/11e6)
	got := m.dataAirtime(&packet.Packet{Size: 1040}, false)
	if got != want {
		t.Fatalf("data airtime = %v, want %v", got, want)
	}
	if m.ackAirtime() != cfg.PLCPOverhead+sim.Seconds(float64(14*8)/2e6) {
		t.Fatalf("ack airtime = %v", m.ackAirtime())
	}
}

func TestBackoffPausesUnderEnergy(t *testing.T) {
	// While a long foreign transmission occupies the medium, a contender
	// must not transmit.
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}, Default80211b())
	// Node 2 blasts a long broadcast at t=0.
	big := &packet.Packet{UID: r.uids.Next(), Kind: packet.KindData, Size: 10000, Src: 2, Dst: 0}
	r.macs[2].Send(big, packet.Broadcast)
	var sentAt sim.Time
	r.macs[0].OnSend = func(f *packet.Frame) {
		if sentAt == 0 {
			sentAt = r.sched.Now()
		}
	}
	r.sched.At(sim.Time(100*sim.Microsecond), func() {
		r.macs[0].Send(r.dataPacket(0, 1, 40), 1)
	})
	r.sched.RunUntil(sim.Time(sim.Second))

	// The broadcast occupies ~40ms+192us at 2 Mb/s; node 0 must wait.
	busyTill := sim.Seconds(float64((10000+28)*8)/2e6) + 192*sim.Microsecond
	if sentAt == 0 {
		t.Fatal("contender never transmitted")
	}
	if sentAt < sim.Time(busyTill) {
		t.Fatalf("transmitted at %v while medium busy until %v", sentAt, busyTill)
	}
}

func TestDeterministicMACRuns(t *testing.T) {
	run := func() []sim.Time {
		r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}, Default80211b())
		var times []sim.Time
		r.macs[1].OnSend = func(f *packet.Frame) { times = append(times, r.sched.Now()) }
		for i := 0; i < 5; i++ {
			r.macs[0].Send(r.dataPacket(0, 1, 1040), 1)
			r.macs[1].Send(r.dataPacket(1, 2, 1040), 2)
		}
		r.sched.RunUntil(sim.Time(sim.Second))
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timing diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
