package mac

import (
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// Send enqueues a network packet for link-layer transmission to next
// (packet.Broadcast for flooding). If the interface queue is full the packet
// is dropped silently, as in ns-2's drop-tail IFQ — TCP perceives this as
// congestion loss.
func (m *Mac) Send(p *packet.Packet, next packet.NodeID) {
	if len(m.queue) >= m.cfg.QueueCap {
		m.Stats.QueueDrops++
		m.arena.Release(p)
		return
	}
	job := m.acquireJob(p, next)
	if next != packet.Broadcast && p.Size >= m.cfg.RTSThreshold {
		job.useRTS = true
	}
	m.queue = append(m.queue, job)
	m.reconsider()
}

// DropWhere removes queued packets matching pred and returns how many were
// dropped. Routing protocols use it to purge packets addressed to a next
// hop that just failed.
func (m *Mac) DropWhere(pred func(p *packet.Packet, next packet.NodeID) bool) int {
	kept := m.queue[:0]
	dropped := 0
	for _, j := range m.queue {
		if pred(j.pkt, j.next) {
			dropped++
			m.Stats.QueueDrops++
			m.arena.Release(j.pkt)
			m.releaseJob(j)
		} else {
			kept = append(kept, j)
		}
	}
	m.queue = kept
	return dropped
}

// mediumFree reports whether both physical and virtual carrier sense are
// idle and we are not busy responding.
func (m *Mac) mediumFree() bool {
	return !m.radio.Busy() && m.sched.Now() >= m.nav && m.responding == 0
}

// reconsider is the single state-advancing entry point, invoked on every
// transition that could allow or forbid progress: enqueue, energy up/down,
// NAV changes, tx completion, response completion, job completion.
func (m *Mac) reconsider() {
	if m.state == stIdle && m.cur == nil && len(m.queue) > 0 {
		m.cur = m.queue[0]
		m.queue = m.queue[1:]
		m.seqCounter++
		m.cur.seq = m.seqCounter
		m.backoffSlots = m.drawBackoff()
		m.state = stContend
	}
	if m.state != stContend {
		return
	}
	if m.mediumFree() {
		m.resumeContention()
	} else {
		m.pauseContention()
	}
}

func (m *Mac) drawBackoff() int { return m.rng.Intn(m.cw + 1) }

// pauseContention freezes the DIFS wait / backoff countdown, banking fully
// elapsed slots.
func (m *Mac) pauseContention() {
	if m.difsEvent.Pending() {
		m.sched.CancelTask(m.difsEvent)
		m.difsEvent = sim.TaskHandle{}
	}
	if m.backoffEvent.Pending() {
		elapsed := m.sched.Now().Sub(m.backoffStart)
		done := int(elapsed / m.cfg.SlotTime)
		if done > m.backoffSlots {
			done = m.backoffSlots
		}
		m.backoffSlots -= done
		m.sched.CancelTask(m.backoffEvent)
		m.backoffEvent = sim.TaskHandle{}
	}
}

// resumeContention (re)starts the DIFS wait, then counts down the remaining
// backoff slots (macDIFSDone arms the backoff timer; see Mac.Run).
func (m *Mac) resumeContention() {
	if m.difsEvent.Pending() || m.backoffEvent.Pending() {
		return // already counting
	}
	m.difsEvent = m.sched.AfterTaskCancellable(m.cfg.DIFS, m, macDIFSDone)
}

func (m *Mac) onBackoffDone() {
	m.backoffSlots = 0
	job := m.cur
	if job == nil {
		m.state = stIdle
		return
	}
	switch {
	case job.next == packet.Broadcast:
		m.transmitData(job)
	case job.useRTS:
		m.transmitRTS(job)
	default:
		m.transmitData(job)
	}
}

// txTime returns the airtime of a frame of the given size at the given rate.
func (m *Mac) txTime(bytes int, rate float64) sim.Duration {
	return m.cfg.PLCPOverhead + sim.Seconds(float64(bytes*8)/rate)
}

func (m *Mac) dataAirtime(p *packet.Packet, broadcast bool) sim.Duration {
	rate := m.cfg.DataRate
	if broadcast {
		rate = m.cfg.BasicRate
	}
	return m.txTime(m.cfg.MacHeaderBytes+p.Size, rate)
}

func (m *Mac) ctsAirtime() sim.Duration { return m.txTime(m.cfg.CTSBytes, m.cfg.BasicRate) }
func (m *Mac) ackAirtime() sim.Duration { return m.txTime(m.cfg.AckBytes, m.cfg.BasicRate) }

func (m *Mac) put(f *packet.Frame, airtime sim.Duration) {
	if m.OnSend != nil {
		m.OnSend(f)
	}
	m.Stats.FramesSent[f.Kind]++
	m.channel.Transmit(m.radio, f, airtime)
}

func (m *Mac) transmitRTS(job *txJob) {
	m.state = stTxRTS
	dataT := m.dataAirtime(job.pkt, false)
	nav := m.cfg.SIFS + m.ctsAirtime() + m.cfg.SIFS + dataT + m.cfg.SIFS + m.ackAirtime()
	f := m.arena.NewFrameFrom(packet.Frame{
		UID:    m.uids.Next(),
		Kind:   packet.FrameRTS,
		TxFrom: m.id,
		TxTo:   job.next,
		Seq:    job.seq,
		Retry:  job.shortRetries > 0,
		NAV:    nav,
	})
	job.frame = f
	airtime := m.txTime(m.cfg.RTSBytes, m.cfg.BasicRate)
	m.put(f, airtime)
	m.sched.AfterTask(airtime, m, macTxDoneRTS)
}

func (m *Mac) transmitData(job *txJob) {
	m.state = stTxData
	broadcast := job.next == packet.Broadcast
	airtime := m.dataAirtime(job.pkt, broadcast)
	var nav sim.Duration
	if !broadcast {
		nav = m.cfg.SIFS + m.ackAirtime()
	}
	f := m.arena.NewFrameFrom(packet.Frame{
		UID:     m.uids.Next(),
		Kind:    packet.FrameData,
		TxFrom:  m.id,
		TxTo:    job.next,
		Seq:     job.seq,
		Retry:   job.shortRetries > 0 || job.longRetries > 0,
		Payload: job.pkt,
		NAV:     nav,
	})
	job.frame = f
	m.put(f, airtime)
	if broadcast {
		m.sched.AfterTask(airtime, m, macTxDoneBroadcast)
	} else {
		m.sched.AfterTask(airtime, m, macTxDoneData)
	}
}

// sendDataAfterCTS fires SIFS after a CTS is received (see macSendAfterCTS
// in Mac.Run for the deferred body).
func (m *Mac) sendDataAfterCTS() {
	job := m.cur
	if job == nil {
		return
	}
	m.ctsJob = job
	m.sched.AfterTask(m.cfg.SIFS, m, macSendAfterCTS)
}

func (m *Mac) onCTSTimeout() {
	job := m.cur
	if job == nil {
		return
	}
	job.shortRetries++
	m.Stats.Retries++
	if job.shortRetries >= m.cfg.ShortRetryLimit {
		m.failJob()
		return
	}
	m.retryJob()
}

func (m *Mac) onAckTimeout() {
	job := m.cur
	if job == nil {
		return
	}
	limit := m.cfg.ShortRetryLimit
	if job.useRTS {
		job.longRetries++
		limit = m.cfg.LongRetryLimit
		if job.longRetries >= limit {
			m.failJob()
			return
		}
	} else {
		job.shortRetries++
		if job.shortRetries >= limit {
			m.failJob()
			return
		}
	}
	m.Stats.Retries++
	m.retryJob()
}

// retryJob doubles the contention window and re-contends for the medium.
func (m *Mac) retryJob() {
	m.cw = min(2*(m.cw+1)-1, m.cfg.CWMax)
	m.backoffSlots = m.drawBackoff()
	m.state = stContend
	m.reconsider()
}

// finishJob completes the current job successfully and moves on. A
// unicast payload dies here — the MAC-ACK proves every arrival of its
// final data frame has long landed, and receivers only borrow delivered
// packets (they copy to forward), so the storage is free to recycle.
// Broadcast payloads were already released (quarantined) at tx-done.
func (m *Mac) finishJob() {
	job := m.cur
	m.cur = nil
	m.cw = m.cfg.CWMin
	m.state = stIdle
	if job != nil {
		if job.pkt != nil {
			m.arena.ReleaseAfter(job.pkt, m.propHold())
			job.pkt = nil
		}
		m.releaseJob(job)
	}
	m.reconsider()
}

// failJob reports link failure upward and moves on.
func (m *Mac) failJob() {
	job := m.cur
	m.cur = nil
	m.cw = m.cfg.CWMin
	m.state = stIdle
	m.Stats.LinkFailures++
	pkt, next := job.pkt, job.next
	m.releaseJob(job)
	if m.up != nil {
		m.up.LinkFailed(pkt, next)
	}
	m.reconsider()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
