package mac

import (
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

func TestContentionWindowDoublesAndResets(t *testing.T) {
	// Receiver out of range: every RTS retry doubles cw up to the limit,
	// then the failed job resets cw to CWMin.
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 900, Y: 0}}, Default80211b())
	m := r.macs[0]
	m.Send(r.dataPacket(0, 1, 1040), 1)
	r.sched.RunUntil(sim.Time(10 * sim.Second))
	if m.cw != Default80211b().CWMin {
		t.Fatalf("cw after failed job = %d, want reset to CWMin", m.cw)
	}
	if m.Stats.LinkFailures != 1 {
		t.Fatalf("link failures = %d", m.Stats.LinkFailures)
	}
}

func TestSequentialQueueDrain(t *testing.T) {
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Default80211b())
	const n = 20
	for i := 0; i < n; i++ {
		r.macs[0].Send(r.dataPacket(0, 1, 1040), 1)
	}
	r.sched.RunUntil(sim.Time(sim.Second))
	if got := len(r.uppers[1].delivered); got != n {
		t.Fatalf("delivered %d of %d", got, n)
	}
	if r.macs[0].QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", r.macs[0].QueueLen())
	}
}

func TestMutualSimultaneousSends(t *testing.T) {
	// Both stations want to send to each other at the same instant; CSMA
	// must eventually deliver both directions.
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Default80211b())
	r.sched.At(0, func() {
		r.macs[0].Send(r.dataPacket(0, 1, 1040), 1)
		r.macs[1].Send(r.dataPacket(1, 0, 1040), 0)
	})
	r.sched.RunUntil(sim.Time(2 * sim.Second))
	if len(r.uppers[0].delivered) != 1 || len(r.uppers[1].delivered) != 1 {
		t.Fatalf("mutual delivery: %d / %d",
			len(r.uppers[0].delivered), len(r.uppers[1].delivered))
	}
}

func TestDupCacheDistinguishesNewFrames(t *testing.T) {
	// Two DIFFERENT packets must both be delivered even though they come
	// from the same sender back to back (dup suppression must key on the
	// retry flag + sequence, not just the sender).
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Default80211b())
	r.macs[0].Send(r.dataPacket(0, 1, 500), 1)
	r.macs[0].Send(r.dataPacket(0, 1, 500), 1)
	r.sched.RunUntil(sim.Time(sim.Second))
	if len(r.uppers[1].delivered) != 2 {
		t.Fatalf("delivered %d, want 2", len(r.uppers[1].delivered))
	}
	if r.macs[1].Stats.Duplicates != 0 {
		t.Fatalf("false duplicate detection: %d", r.macs[1].Stats.Duplicates)
	}
}

func TestRetryStatsCount(t *testing.T) {
	// Drop the first CTS so exactly one short retry happens.
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, Default80211b())
	dropped := false
	r.ch.DropFrame = func(f *packet.Frame, to packet.NodeID) bool {
		if f.Kind == packet.FrameCTS && !dropped {
			dropped = true
			return true
		}
		return false
	}
	r.macs[0].Send(r.dataPacket(0, 1, 1040), 1)
	r.sched.RunUntil(sim.Time(sim.Second))
	if len(r.uppers[1].delivered) != 1 {
		t.Fatal("not delivered after CTS loss")
	}
	if r.macs[0].Stats.Retries == 0 {
		t.Fatal("retry not counted")
	}
	if r.macs[0].Stats.FramesSent[packet.FrameRTS] != 2 {
		t.Fatalf("RTS count = %d, want 2", r.macs[0].Stats.FramesSent[packet.FrameRTS])
	}
}

func TestBroadcastUsesBasicRate(t *testing.T) {
	cfg := Default80211b()
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}, cfg)
	var start, end sim.Time
	r.macs[0].OnSend = func(f *packet.Frame) { start = r.sched.Now() }
	r.uppersOnDeliver(1, func() { end = r.sched.Now() })

	p := &packet.Packet{UID: r.uids.Next(), Kind: packet.KindRREQ, Size: 64, Src: 0, Dst: 1}
	r.macs[0].Send(p, packet.Broadcast)
	r.sched.RunUntil(sim.Time(sim.Second))

	if start == 0 || end == 0 {
		t.Fatal("broadcast not observed")
	}
	airtime := end - start
	// At the 2 Mb/s basic rate: PLCP 192us + (64+28)*8/2e6 = 560us, plus
	// sub-microsecond propagation.
	want := cfg.PLCPOverhead + sim.Seconds(float64((64+28)*8)/cfg.BasicRate)
	if airtime < sim.Time(want) || airtime > sim.Time(want)+sim.Time(5*sim.Microsecond) {
		t.Fatalf("broadcast airtime = %v, want ~%v", airtime, want)
	}
}

// uppersOnDeliver lets a test observe delivery time on a rig node.
func (r *rig) uppersOnDeliver(i int, fn func()) {
	up := r.uppers[i]
	orig := up
	_ = orig
	r.macs[i].up = &deliverHook{inner: up, fn: fn}
}

type deliverHook struct {
	inner Upper
	fn    func()
}

func (d *deliverHook) Deliver(p *packet.Packet, from packet.NodeID) {
	d.fn()
	d.inner.Deliver(p, from)
}

func (d *deliverHook) LinkFailed(p *packet.Packet, next packet.NodeID) {
	d.inner.LinkFailed(p, next)
}

func TestBackoffBankingAcrossPauses(t *testing.T) {
	// A station that freezes its countdown during foreign traffic must
	// not reset it to the full draw: total idle time spent in backoff is
	// bounded by CWMin slots plus DIFS per resume.
	cfg := Default80211b()
	cfg.CWMin = 15
	r := newRig([]geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}, cfg)

	// Node 2 sends three spaced broadcasts creating busy/idle cycles.
	for i := 0; i < 3; i++ {
		i := i
		r.sched.At(sim.Time(i)*sim.Time(2*sim.Millisecond), func() {
			p := &packet.Packet{UID: r.uids.Next(), Kind: packet.KindData, Size: 1000, Src: 2, Dst: 0}
			r.macs[2].Send(p, packet.Broadcast)
		})
	}
	var sentAt sim.Time
	r.macs[0].OnSend = func(f *packet.Frame) {
		if sentAt == 0 {
			sentAt = r.sched.Now()
		}
	}
	r.sched.At(sim.Time(100*sim.Microsecond), func() {
		r.macs[0].Send(r.dataPacket(0, 1, 40), 1)
	})
	r.sched.RunUntil(sim.Time(sim.Second))
	if sentAt == 0 {
		t.Fatal("never transmitted")
	}
	// Three 4.2ms broadcasts end around 13ms; with banking the station
	// transmits shortly after the last busy period, well before 20ms.
	if sentAt > sim.Time(20*sim.Millisecond) {
		t.Fatalf("transmitted at %v; backoff appears to restart from scratch", sentAt)
	}
}
