// Package trace writes per-event packet traces in an ns-2-inspired line
// format, for debugging scenarios and for external analysis tooling:
//
//	s 12.345678 _19_ MAC --- 812 DATA 1068 [37 -> 11] seq 42 path 3
//	r 12.346102 _30_ MAC --- 812 DATA 1068 [37 -> 11] seq 42 path 3
//
// Columns: action (s=send, r=receive successfully, e=receive corrupted),
// virtual time, node, layer, frame UID, payload kind, bytes, end-to-end
// addresses, then kind-specific detail.
package trace

import (
	"fmt"
	"io"

	"mtsim/internal/node"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// Tracer mirrors MAC activity of the attached nodes into an io.Writer.
type Tracer struct {
	w     io.Writer
	sched *sim.Scheduler
	// Lines counts emitted records (tests, sanity checks).
	Lines uint64
}

// New creates a tracer writing to w, timestamped by sched's clock.
func New(w io.Writer, sched *sim.Scheduler) *Tracer {
	return &Tracer{w: w, sched: sched}
}

// AttachNode hooks one node's MAC send path and promiscuous tap. The
// existing OnSend hook (e.g. the metrics collector's) is preserved.
func (t *Tracer) AttachNode(n *node.Node) {
	id := n.ID()
	prev := n.Mac.OnSend
	n.Mac.OnSend = func(f *packet.Frame) {
		if prev != nil {
			prev(f)
		}
		t.record('s', id, f)
	}
	n.AddTap(func(f *packet.Frame) {
		if f.TxTo == id || f.TxTo == packet.Broadcast {
			t.record('r', id, f)
		}
	})
}

func (t *Tracer) record(action byte, at packet.NodeID, f *packet.Frame) {
	t.Lines++
	if f.Payload == nil {
		fmt.Fprintf(t.w, "%c %.6f _%d_ MAC --- %d %s 0 [%d -> %d]\n",
			action, t.sched.Now().Seconds(), at, f.UID, f.Kind, f.TxFrom, f.TxTo)
		return
	}
	p := f.Payload
	detail := ""
	switch {
	case p.TCP != nil && p.TCP.Ack:
		detail = fmt.Sprintf(" ack %d", p.TCP.Seq)
	case p.TCP != nil:
		detail = fmt.Sprintf(" seq %d path %d", p.TCP.Seq, p.PathID)
	}
	fmt.Fprintf(t.w, "%c %.6f _%d_ MAC --- %d %s %d [%d -> %d]%s\n",
		action, t.sched.Now().Seconds(), at, f.UID, p.Kind, p.Size, p.Src, p.Dst, detail)
}
