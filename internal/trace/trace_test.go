package trace

import (
	"strings"
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/scenario"
	"mtsim/internal/sim"
)

func TestTracerRecordsExchange(t *testing.T) {
	cfg := scenario.DefaultConfig()
	cfg.Protocol = "AODV"
	cfg.Placement = []geo.Point{{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0}}
	cfg.Field = geo.Field(500, 100)
	cfg.Flows = []scenario.FlowSpec{{Src: 0, Dst: 2}}
	cfg.Eavesdropper = 1
	cfg.Duration = 2 * sim.Second
	cfg.TCPStart = sim.Time(100 * sim.Millisecond)

	s, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	tr := New(&buf, s.Sched)
	for _, n := range s.Nodes {
		tr.AttachNode(n)
	}
	s.Run()

	out := buf.String()
	if tr.Lines == 0 || out == "" {
		t.Fatal("tracer produced nothing")
	}
	// The trace must contain sends and receives of broadcasts (RREQ),
	// data, and TCP acks with their details.
	for _, want := range []string{"s ", "r ", "RREQ", "DATA", "seq ", "ack ", "_0_", "_1_", "_2_"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q; head:\n%s", want, head(out, 10))
		}
	}
	// Lines are well-formed: action, time, node.
	for i, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if len(line) < 10 || (line[0] != 's' && line[0] != 'r') {
			t.Fatalf("malformed trace line %d: %q", i, line)
		}
	}
}

func TestTracerPreservesMetricsHook(t *testing.T) {
	cfg := scenario.DefaultConfig()
	cfg.Protocol = "MTS"
	cfg.Placement = []geo.Point{{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0}}
	cfg.Field = geo.Field(500, 100)
	cfg.Flows = []scenario.FlowSpec{{Src: 0, Dst: 2}}
	cfg.Eavesdropper = 1
	cfg.Duration = 2 * sim.Second
	cfg.TCPStart = sim.Time(100 * sim.Millisecond)

	s, err := scenario.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	tr := New(&buf, s.Sched)
	for _, n := range s.Nodes {
		tr.AttachNode(n)
	}
	m := s.Run()
	// Control overhead is still counted by the collector even though the
	// tracer wrapped the hook.
	if m.ControlPkts == 0 {
		t.Fatal("metrics hook lost after tracer attachment")
	}
}

func head(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
