package core

import (
	"sort"

	"mtsim/internal/packet"
	"mtsim/internal/routing"
	"mtsim/internal/sim"
)

// handleData forwards transport packets hop by hop along the entries that
// RREPs installed and checking packets keep refreshing. The packet's PathID
// pins it to one loop-free path; if that path's entry is gone, the freshest
// live entry toward the destination is used instead (and the PathID updated
// so downstream hops stay consistent).
func (r *Router) handleData(p *packet.Packet, from packet.NodeID) {
	self := r.env.ID()
	if p.Dst == self {
		r.noteDataArrival(p)
		r.env.DeliverLocal(p, from)
		return
	}
	if p.TTL <= 1 {
		r.env.NotifyDrop(p, "ttl")
		return
	}
	// Return traffic (TCP ACKs) is source-routed; relay it directly.
	if p.SourceRoute != nil {
		if p.Kind == packet.KindData {
			r.env.NotifyRelay(p)
		}
		r.forwardSourceRouted(p)
		return
	}
	next, chosen, ok := r.liveFwd(p.Dst, p.PathID, p.Trail)
	if !ok {
		r.env.NotifyDrop(p, "no-route")
		r.sendRERR(p)
		return
	}
	if p.Kind == packet.KindData {
		r.env.NotifyRelay(p)
	}
	fwd := r.ar.Copy(p, r.env.UIDs())
	fwd.TTL--
	fwd.PathID = chosen
	fwd.Trail = append(fwd.Trail, self)
	r.env.SendMac(fwd, next)
}

// noteDataArrival updates destination-side session state used by the
// checking timer and by return-traffic path choice.
func (r *Router) noteDataArrival(p *packet.Packet) {
	src := p.Src
	ds := r.dst[src]
	if ds == nil {
		return
	}
	ds.lastData = r.env.Scheduler().Now()
	ds.lastDataPath = p.PathID
	if ds.timer == nil {
		// Data is flowing again after an idle pause: resume checking.
		r.ensureChecking(src)
	}
}

// sendRERR returns a route error to the packet's source along the reversed
// trail the packet actually travelled ("the node generates a route error
// to its upstream node until it reaches the source node", §III-E).
func (r *Router) sendRERR(p *packet.Packet) {
	self := r.env.ID()
	if p.Src == self {
		return
	}
	if len(p.Trail) == 0 {
		return
	}
	// The trail may or may not already end at this node, depending on
	// whether the failure happened before (no-route) or after (MAC
	// feedback on the forwarded copy) we appended ourselves.
	back := make([]packet.NodeID, 0, len(p.Trail)+1)
	if p.Trail[len(p.Trail)-1] != self {
		back = append(back, self)
	}
	for i := len(p.Trail) - 1; i >= 0; i-- {
		back = append(back, p.Trail[i])
	}
	if hasLoop(back) || len(back) < 2 || back[len(back)-1] != p.Src {
		return
	}
	errp := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindRERR,
		Size:    rerrSize,
		Src:     self,
		Dst:     p.Src,
		TTL:     routing.DefaultTTL,
		Routing: &RERR{Dst: p.Dst, PathID: p.PathID},
		SRIndex: 0,
	})
	r.ar.SetSourceRoute(errp, back)
	r.Stats.RERRsSent++
	r.env.SendMac(errp, back[1])
}

func (r *Router) handleRERR(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*RERR)
	if p.Dst != r.env.ID() {
		r.forwardSourceRouted(p)
		return
	}
	// Source: the reported path is dead; fail over to the freshest other
	// live path or re-discover (§III-E).
	r.failPath(h.Dst, h.PathID)
}

// failPath marks a source-side path dead and switches or re-discovers.
func (r *Router) failPath(dst packet.NodeID, pathID int) {
	ss := r.src[dst]
	if ss == nil {
		return
	}
	if sp := ss.paths[pathID]; sp != nil {
		sp.alive = false
	}
	if ss.current != pathID && ss.haveRoute {
		if cur := ss.paths[ss.current]; r.usable(cur) {
			return // current route unaffected
		}
	}
	// Choose the most recently heard usable alternative. Ties at the
	// freshest lastHeard are the rule, not the exception — one checking
	// round's packets come back within the same few microseconds — and the
	// tied paths are exactly as fresh as each other: an equal-cost set. The
	// ECMP hash picks among them (keyed by destination under this node's
	// seed), so concurrent sessions failing over at the same instant spread
	// across the tied paths instead of all piling onto the lowest path ID.
	var bestAt sim.Time
	tied := ss.scratch[:0]
	for id, sp := range ss.paths {
		if !r.usable(sp) {
			continue
		}
		switch {
		case len(tied) == 0 || sp.lastHeard > bestAt:
			bestAt = sp.lastHeard
			tied = append(tied[:0], id)
		case sp.lastHeard == bestAt:
			tied = append(tied, id)
		}
	}
	ss.scratch = tied
	if len(tied) > 0 {
		sort.Ints(tied) // map order must never leak into behaviour
		bestID := tied[r.mp.PickIndex(0, dst, len(tied))]
		if ss.current != bestID {
			r.Stats.Switches++
		}
		ss.current = bestID
		// Diversity exhausted: only one usable path remains. Launch a
		// refresh discovery in the background — the new RREQ's larger
		// broadcast ID makes the destination flush and rebuild its
		// disjoint set from current topology (§III-D) while data keeps
		// flowing on the surviving path.
		usable := 0
		for _, sp := range ss.paths {
			if r.usable(sp) {
				usable++
			}
		}
		if usable <= 1 {
			r.startDiscovery(dst)
		}
		return
	}
	ss.haveRoute = false
	r.startDiscovery(dst)
}

// LinkFailed implements routing.Protocol: MAC retry exhaustion toward
// next. Ownership of p passes back from the MAC: every branch must end
// with the packet re-sent (a fresh copy, original released), re-buffered,
// or released outright.
func (r *Router) LinkFailed(p *packet.Packet, next packet.NodeID) {
	self := r.env.ID()
	r.env.DropQueued(func(q *packet.Packet, n packet.NodeID) bool {
		return n == next && q.Dst == p.Dst
	})

	switch p.Kind {
	case packet.KindCheck:
		r.failCheck(p)
		r.ar.Release(p)
	case packet.KindRREP, packet.KindCheckErr, packet.KindRERR:
		// Control losses are absorbed: discovery retries, the next
		// checking round, or TCP's own timers recover.
		r.ar.Release(p)
	default:
		// Data or ACK.
		if p.SourceRoute != nil {
			// Destination-side return traffic: the stored path failed in
			// the return direction; mark it dead locally if we own it.
			if p.Src == self {
				r.deletePath(self, p.Dst, p.PathID)
			}
			r.ar.Release(p)
			return
		}
		if p.Src == self {
			// Our own packet failed on the first hop.
			r.failPath(p.Dst, p.PathID)
			if ss := r.src[p.Dst]; ss != nil && ss.haveRoute {
				if sp := ss.paths[ss.current]; sp != nil && sp.alive {
					q := r.ar.Copy(p, r.env.UIDs())
					q.PathID = ss.current
					r.ar.StartTrail(q, self)
					r.env.SendMac(q, sp.next)
					r.ar.Release(p)
					return
				}
			}
			r.buffer.Push(p.Dst, p)
			r.startDiscovery(p.Dst)
			return
		}
		// Transit data: invalidate the entry we just used and tell the
		// source so it switches paths. The packet itself is salvaged
		// through another live forward entry when one exists — the
		// forward paths installed by the other checking flows — which
		// keeps TCP's (possibly heavily backed-off) retransmission probe
		// alive instead of losing it one hop past the source.
		if m := r.fwd[p.Dst]; m != nil {
			if e, ok := m[p.PathID]; ok && e.next == next {
				delete(m, p.PathID)
			}
		}
		r.sendRERR(p)
		avoid := make([]packet.NodeID, 0, len(p.Trail)+1)
		avoid = append(avoid, p.Trail...)
		avoid = append(avoid, next)
		if nxt, chosen, ok := r.liveFwd(p.Dst, p.PathID, avoid); ok {
			q := r.ar.Copy(p, r.env.UIDs())
			q.PathID = chosen
			r.env.SendMac(q, nxt)
			r.ar.Release(p)
			return
		}
		r.env.NotifyDrop(p, "link-failure")
		r.ar.Release(p)
	}
}

// --- introspection for tests and tools ---

// CurrentPath returns the source's current path ID and first hop for dst.
func (r *Router) CurrentPath(dst packet.NodeID) (pathID int, next packet.NodeID, ok bool) {
	ss := r.src[dst]
	if ss == nil || !ss.haveRoute {
		return 0, 0, false
	}
	sp := ss.paths[ss.current]
	if !r.usable(sp) {
		return 0, 0, false
	}
	return ss.current, sp.next, true
}

// StoredPaths returns the live paths this node (as a destination) holds for
// the given source.
func (r *Router) StoredPaths(src packet.NodeID) [][]packet.NodeID {
	ds := r.dst[src]
	if ds == nil {
		return nil
	}
	var out [][]packet.NodeID
	for _, sp := range ds.paths {
		if sp.alive {
			out = append(out, packet.CloneRoute(sp.route))
		}
	}
	return out
}

// LivePathCount returns how many live source-side paths exist toward dst.
func (r *Router) LivePathCount(dst packet.NodeID) int {
	ss := r.src[dst]
	if ss == nil {
		return 0
	}
	n := 0
	for _, sp := range ss.paths {
		if r.usable(sp) {
			n++
		}
	}
	return n
}
