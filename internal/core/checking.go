package core

import (
	"mtsim/internal/packet"
	"mtsim/internal/routing"
)

// ensureChecking starts the destination's periodic checking timer for the
// session with src, if not already running (§III-D).
func (r *Router) ensureChecking(src packet.NodeID) {
	ds := r.dst[src]
	if ds == nil || ds.timer != nil {
		return
	}
	// Jitter the first round so concurrent sessions do not synchronise.
	delay := r.cfg.CheckPeriod + r.env.RNG().Jitter(r.cfg.CheckPeriod/4)
	ds.timer = r.env.Scheduler().After(delay, func() { r.checkRound(src) })
}

// checkRound sends one checking packet along every live stored path
// concurrently, then re-arms the timer. "Whenever the five checking packets
// are sent out concurrently, the checking packet ID is increased by one."
func (r *Router) checkRound(src packet.NodeID) {
	ds := r.dst[src]
	if ds == nil {
		return
	}
	ds.timer = nil
	// Stop checking for sessions that have gone quiet.
	if ds.lastData > 0 && r.env.Scheduler().Now().Sub(ds.lastData) > r.cfg.SessionIdle {
		return
	}
	r.checkID++
	alive := 0
	for _, sp := range ds.paths {
		if !sp.alive || len(sp.route) < 2 {
			continue
		}
		alive++
		r.sendCheck(src, sp)
	}
	if alive == 0 {
		// No usable paths left: checking pauses; a new RREQ flood from
		// the source will repopulate the set and restart it.
		return
	}
	ds.timer = r.env.Scheduler().After(r.cfg.CheckPeriod, func() { r.checkRound(src) })
}

func (r *Router) sendCheck(src packet.NodeID, sp *storedPath) {
	travel := reverseRoute(sp.route) // D … S
	h := &Check{
		From:    r.env.ID(),
		To:      src,
		CheckID: r.checkID,
		PathID:  sp.id,
		Route:   travel,
	}
	// SetSourceRoute copies travel into arena-owned storage: the Check
	// header keeps (and shares, across per-hop copies) the original
	// slice, so the route must not be recycled when this packet dies.
	p := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindCheck,
		Size:    checkBase + addrSize*len(travel),
		Src:     r.env.ID(),
		Dst:     src,
		TTL:     routing.DefaultTTL,
		Routing: h,
		SRIndex: 0,
	})
	r.ar.SetSourceRoute(p, travel)
	r.Stats.ChecksSent++
	r.env.SendMac(p, travel[1])
}

func (r *Router) handleCheck(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*Check)
	self := r.env.ID()

	if p.Dst == self {
		// Source side: this path is alive; the first check of a round to
		// arrive marks the currently fastest path (§III-E).
		ss := r.src[h.From]
		if ss == nil {
			ss = r.newSrcState()
			r.src[h.From] = ss
		}
		now := r.env.Scheduler().Now()
		sp := ss.paths[h.PathID]
		if sp == nil {
			sp = &srcPath{}
			ss.paths[h.PathID] = sp
		}
		sp.next = from
		sp.lastCheckID = h.CheckID
		sp.lastHeard = now
		sp.alive = true
		ss.haveRoute = true

		if r.cfg.SwitchOnCheck {
			r.considerSwitch(ss, h.CheckID, h.PathID)
		}
		return
	}
	// Intermediate: cache the checking packet ID as the entry ID toward
	// the checking destination — this constructs the forward path
	// (Fig. 4) — then relay along the source route.
	r.setFwd(h.From, h.PathID, from, h.CheckID)
	r.forwardSourceRouted(p)
}

// considerSwitch applies the §III-E best-route rule with a grace margin:
// the first checking packet of a round nominates its path; if that path is
// already current, the round is settled. Otherwise the switch commits
// after SwitchMargin unless the current path's own checking packet shows
// up in time, in which case the current path is kept.
func (r *Router) considerSwitch(ss *srcState, checkID uint32, pathID int) {
	if routing.SeqNewer(checkID, ss.lastSwitchRound) {
		// First arrival of a new round.
		ss.lastSwitchRound = checkID
		if ss.pendingSwitch != nil {
			r.env.Scheduler().Cancel(ss.pendingSwitch)
			ss.pendingSwitch = nil
		}
		if pathID == ss.current {
			// The current path won the race outright; the aware policy
			// may still move off it when its first hop has grown
			// over-exposed (usage skew beats speed by ≥ AwarePenalty).
			if tgt := r.switchTarget(ss, pathID); tgt != pathID {
				r.switchTo(ss, tgt)
			}
			return
		}
		if r.cfg.SwitchMargin <= 0 {
			r.switchTo(ss, r.switchTarget(ss, pathID))
			return
		}
		ss.pendingSwitch = r.env.Scheduler().After(r.cfg.SwitchMargin, func() {
			ss.pendingSwitch = nil
			// Re-score at fire time: usage counts may have moved during
			// the margin.
			r.switchTo(ss, r.switchTarget(ss, pathID))
		})
		return
	}
	if checkID == ss.lastSwitchRound && pathID == ss.current && ss.pendingSwitch != nil {
		// The current path answered within the margin: keep it.
		r.env.Scheduler().Cancel(ss.pendingSwitch)
		ss.pendingSwitch = nil
	}
}

func (r *Router) switchTo(ss *srcState, pathID int) {
	sp := ss.paths[pathID]
	if !r.usable(sp) {
		return
	}
	if ss.current != pathID {
		r.Stats.Switches++
	}
	ss.current = pathID
}

// failCheck is invoked when the MAC cannot forward a checking packet: a
// checking-error packet returns to the destination along the part of the
// path already traversed, and the destination deletes the path (§III-D).
func (r *Router) failCheck(p *packet.Packet) {
	h := p.Routing.(*Check)
	self := r.env.ID()
	if self == h.From {
		// First hop failed; delete directly.
		r.deletePath(h.From, h.To, h.PathID)
		return
	}
	idx := -1
	for i, n := range h.Route {
		if n == self {
			idx = i
			break
		}
	}
	if idx <= 0 {
		return
	}
	back := reverseRoute(h.Route[:idx+1]) // self … D
	errp := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindCheckErr,
		Size:    checkErrSize,
		Src:     self,
		Dst:     h.From,
		TTL:     routing.DefaultTTL,
		Routing: &CheckErr{PathID: h.PathID, CheckID: h.CheckID},
		SRIndex: 0,
	})
	r.ar.SetSourceRoute(errp, back)
	r.Stats.CheckErrs++
	r.env.SendMac(errp, back[1])
}

func (r *Router) handleCheckErr(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*CheckErr)
	if p.Dst == r.env.ID() {
		// We are the checking destination: delete the failed path.
		for src, ds := range r.dst {
			for _, sp := range ds.paths {
				if sp.id == h.PathID && sp.alive {
					sp.alive = false
					r.Stats.PathsDeleted++
					_ = src
					return
				}
			}
		}
		return
	}
	r.forwardSourceRouted(p)
}

// deletePath marks a stored path dead at this (destination) node.
func (r *Router) deletePath(self, src packet.NodeID, pathID int) {
	ds := r.dst[src]
	if ds == nil {
		return
	}
	for _, sp := range ds.paths {
		if sp.id == pathID && sp.alive {
			sp.alive = false
			r.Stats.PathsDeleted++
			return
		}
	}
}
