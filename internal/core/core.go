// Package core implements MTS (Multipath TCP Security), the routing
// protocol proposed by Li & Kwok in "A New Multipath Routing Approach to
// Enhancing TCP Security in Ad Hoc Wireless Networks" (ICPP Workshops 2005)
// — the paper's primary contribution.
//
// MTS is an on-demand multipath protocol with two distinguishing features
// (§III of the paper):
//
//  1. Adaptive best-route switching. The destination stores up to five
//     disjoint paths discovered by one RREQ flood and periodically sends
//     "checking" packets along all of them. On every checking round the
//     source switches its current route to the path whose checking packet
//     arrived first — the currently fastest path — rather than waiting for
//     the active route to break. A TCP session therefore migrates across
//     paths continuously, which spreads packets over many relays and
//     starves any single eavesdropper (Figs. 5–7).
//
//  2. Immediate first reply. The destination answers the first RREQ copy
//     instantly (no disjointness-collection delay as in SPME/Lee-Lin-Kwok),
//     so TCP starts with minimum latency; additional disjoint paths are
//     collected opportunistically from later copies.
//
// Mechanics reproduced from the paper: intermediate nodes forward only the
// first RREQ copy and never answer from cache (§III-B); disjointness at the
// destination uses the Marina–Das next-hop/last-hop rule (§III-C); checking
// packets carry a checkID cached by intermediate nodes as the freshness
// "entry ID" that builds forward paths (§III-D); checking failures produce
// checking-error packets that make the destination delete the path; a new
// RREQ (larger broadcast ID) flushes all stored paths; MAC-layer feedback
// generates RERRs toward the source, which fails over to another live path
// or re-discovers (§III-E).
package core

import (
	"sort"

	"mtsim/internal/packet"
	"mtsim/internal/routing"
	"mtsim/internal/sim"
)

// Config holds the MTS parameters. Defaults follow the paper; the extra
// knobs exist for the ablation benchmarks.
type Config struct {
	// MaxPaths bounds the disjoint paths stored at the destination
	// ("the number of disjoint paths is not more than five", §III-B).
	MaxPaths int
	// CheckPeriod is the route-checking interval; "typically two to four
	// seconds is acceptable" (§III-D).
	CheckPeriod sim.Duration
	// SwitchOnCheck enables best-route switching at the source (§III-E).
	// Disabling it degrades MTS to a backup-path protocol (ablation).
	SwitchOnCheck bool
	// SwitchMargin is the grace window for the current path in the
	// first-arrival race: if the current path's checking packet arrives
	// within this margin of the round's first, the source keeps it. This
	// suppresses ping-pong switches caused by queueing noise (a TCP
	// killer: every switch reorders packets and triggers spurious fast
	// retransmits) while a genuinely slower or dead current path is still
	// abandoned within one margin.
	SwitchMargin sim.Duration
	// EntryTTL is how long a forwarding entry installed by a checking
	// packet or RREP stays usable without being refreshed.
	EntryTTL sim.Duration
	// SessionIdle stops the destination's checking timer when no data has
	// arrived for this long.
	SessionIdle sim.Duration
	// StaleAfter is how long the source keeps using a path that has not
	// delivered a checking packet (or RREP). Zero derives 2.5×CheckPeriod:
	// two missed checking rounds declare the path dead at the source,
	// mirroring how the destination deletes paths on checking errors.
	StaleAfter sim.Duration

	DiscoveryRetries int
	DiscoveryTimeout sim.Duration
	SendBufCap       int
	SendBufAge       sim.Duration

	// Disperse rotates each outgoing data packet across all currently
	// usable disjoint paths (deterministic round-robin in path-ID order)
	// instead of pinning the flow to the single current best path — the
	// route-dispersal half of the data-shuffling countermeasure
	// (internal/countermeasure). Off reproduces the paper's §III-E
	// single-current-path behaviour exactly.
	Disperse bool
	// AwarePenalty, when positive, enables adversary-aware path
	// selection: a checking round's nominated (fastest) path is re-scored
	// against every usable alternative by the share of this source's data
	// its first hop has already carried, minus AwarePenalty for the
	// nominee; the minimum score wins. Relays that have seen a large
	// share of the flow are thereby avoided using only the source's own
	// forwarding observations — no oracle knowledge of taps. 0 disables
	// (paper behaviour, bit-identical).
	AwarePenalty float64
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		MaxPaths:         5,
		CheckPeriod:      3 * sim.Second,
		SwitchOnCheck:    true,
		SwitchMargin:     25 * sim.Millisecond,
		EntryTTL:         7 * sim.Second, // > 2×CheckPeriod: survives one lost round
		SessionIdle:      30 * sim.Second,
		DiscoveryRetries: 3,
		DiscoveryTimeout: sim.Second,
		SendBufCap:       64,
		SendBufAge:       8 * sim.Second,
	}
}

// Control packet wire sizes (bytes).
const (
	rreqBase     = 16
	rrepBase     = 16
	checkBase    = 16
	checkErrSize = 16
	rerrSize     = 20
	addrSize     = 4
)

// RREQ is the MTS route request: "packet type, source address, destination
// address, broadcast ID, hop count from the source, and list of
// intermediate nodes" (§III-B).
type RREQ struct {
	Orig   packet.NodeID
	Target packet.NodeID
	BID    uint32
	Hops   int
	Record []packet.NodeID // [Orig, n1, ...]; Target appends itself
}

// RREP answers the first RREQ copy immediately: "packet type, source
// address, destination address, route reply ID, hop count, and list of
// intermediate nodes" (§III-B). It is carried back along the reverse path.
type RREP struct {
	Route  []packet.NodeID // full path S … D
	BID    uint32
	PathID int
}

// Check is the route-checking packet: "packet type, checking packet ID,
// hop count, and list of intermediate nodes" (§III-D). It travels D → S
// along one stored disjoint path; intermediate nodes cache CheckID as the
// freshness entry ID toward the destination.
type Check struct {
	From    packet.NodeID // the checking destination (route's D)
	To      packet.NodeID // the session source
	CheckID uint32
	PathID  int
	Route   []packet.NodeID // travel order D … S
}

// CheckErr reports a checking packet that could not be forwarded; it
// returns to the destination, which deletes the failed path (§III-D).
type CheckErr struct {
	PathID  int
	CheckID uint32
}

// RERR reports a data-forwarding failure back to the source, which fails
// over to another checked path or re-discovers (§III-E).
type RERR struct {
	Dst    packet.NodeID // unreachable destination
	PathID int
}

// srcPath is the source's view of one disjoint path.
type srcPath struct {
	next        packet.NodeID // first hop from the source
	lastCheckID uint32
	lastHeard   sim.Time
	alive       bool
}

// srcState is per-destination state at a traffic source.
type srcState struct {
	paths           map[int]*srcPath
	current         int
	haveRoute       bool
	lastSwitchRound uint32
	// pendingSwitch defers a round's switch decision by SwitchMargin so
	// the current path can defend its place (see Config.SwitchMargin).
	pendingSwitch *sim.Event
	// sent counts data packets handed to each first hop (lazily
	// allocated; drives the AwarePenalty usage-skew scores), rotate is
	// the Disperse round-robin cursor, and scratch is the reused backing
	// array for usablePathIDs (dispersal runs per data packet — it must
	// not allocate per send).
	sent      map[packet.NodeID]uint64
	sentTotal uint64
	rotate    int
	scratch   []int
}

// storedPath is the destination's record of one disjoint path.
type storedPath struct {
	id    int
	route []packet.NodeID // S … D
	alive bool
}

// dstState is per-source state at a traffic destination.
type dstState struct {
	bid          uint32
	paths        []*storedPath
	timer        *sim.Event
	lastData     sim.Time
	lastDataPath int
}

// fwdEntry is an intermediate node's forwarding entry toward a destination,
// installed by an RREP or refreshed by checking packets.
type fwdEntry struct {
	next    packet.NodeID
	checkID uint32
	at      sim.Time
}

// Stats counts MTS events for metrics and tests.
type Stats struct {
	Discoveries  uint64
	ChecksSent   uint64
	CheckErrs    uint64
	Switches     uint64
	PathsStored  uint64
	PathsDeleted uint64
	RERRsSent    uint64
	// AwareOverrides counts checking rounds where the usage-skew policy
	// (Config.AwarePenalty) moved the flow off the nominated fastest path
	// onto a less-exposed one.
	AwareOverrides uint64
}

// Router is one node's MTS instance.
type Router struct {
	env   routing.Env
	cfg   Config
	ar    *packet.Arena       // the env's packet arena (nil: plain allocation)
	trust routing.TrustOracle // nil: legacy selection, bit-for-bit

	bid     uint32
	seen    map[seenKey]bool
	buffer  *routing.SendBuffer
	pending map[packet.NodeID]*discovery

	src map[packet.NodeID]*srcState         // keyed by destination
	dst map[packet.NodeID]*dstState         // keyed by source
	fwd map[packet.NodeID]map[int]*fwdEntry // dest -> pathID -> entry

	checkID    uint32 // this node's checking-round counter as a destination
	nextPathID int    // monotone per node; avoids aliasing across flushes

	// mp supplies the ECMP hash used to break failover ties. MTS's usable
	// set is too volatile to cache (paths age out of usability with the
	// checking clock), so only the table's selector is used — PickIndex
	// over the usable paths tied at the freshest lastHeard — never its
	// candidate store. Held rather than recreated so the derived seed
	// follows the Recycler contract like every other piece of state.
	mp *routing.MultiPathTable

	// Free lists for the per-flow state structs and the forwarding layer's
	// inner maps, refilled when the router is recycled across runs. The
	// storedPath route slices are deliberately NOT pooled: the destination
	// shares them into in-flight RREP and Check headers (see sendCheck).
	srcPool    []*srcState
	dstPool    []*dstState
	fwdMapPool []map[int]*fwdEntry
	fePool     []*fwdEntry

	Stats Stats
}

type seenKey struct {
	orig packet.NodeID
	bid  uint32
}

type discovery struct {
	attempts int
	timer    *sim.Event
}

// staleAfter returns the source-side path freshness horizon.
func (r *Router) staleAfter() sim.Duration {
	if r.cfg.StaleAfter > 0 {
		return r.cfg.StaleAfter
	}
	return r.cfg.CheckPeriod*2 + r.cfg.CheckPeriod/2
}

// usable reports whether a source-side path can carry data now: alive and
// recently confirmed by a checking packet or RREP.
func (r *Router) usable(sp *srcPath) bool {
	if sp == nil || !sp.alive {
		return false
	}
	return r.env.Scheduler().Now().Sub(sp.lastHeard) <= r.staleAfter()
}

// usablePathIDs returns every currently usable path's ID in ascending
// order — the deterministic iteration base for dispersal rotation and
// aware re-scoring (map order must never leak into behaviour). The
// returned slice aliases ss.scratch and is valid until the next call.
func (r *Router) usablePathIDs(ss *srcState) []int {
	ids := ss.scratch[:0]
	for id, sp := range ss.paths {
		if r.usable(sp) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	ss.scratch = ids
	return ids
}

// pickDataPath chooses the path for one outgoing data packet: the current
// path under the paper's policy, or — with Config.Disperse — the next
// usable path in a round-robin over ascending path IDs, so consecutive
// segments of the flow ride different disjoint paths and no single tapped
// relay observes a contiguous stretch of the stream. With AwarePenalty
// also set, the rotation becomes usage-balanced: each packet takes the
// usable path whose first hop has carried the fewest of our data packets,
// which keeps exposure even when the usable set churns (a path that was
// briefly alone stops hogging the flow the moment alternatives return).
func (r *Router) pickDataPath(ss *srcState) (int, *srcPath, bool) {
	if r.cfg.Disperse {
		if ids := r.dropDistrusted(ss, r.usablePathIDs(ss)); len(ids) > 0 {
			id := ids[ss.rotate%len(ids)]
			if r.cfg.AwarePenalty > 0 {
				id = ids[0]
				for _, cand := range ids[1:] {
					if ss.sent[ss.paths[cand].next] < ss.sent[ss.paths[id].next] {
						id = cand
					}
				}
			}
			ss.rotate++
			return id, ss.paths[id], true
		}
	}
	sp := ss.paths[ss.current]
	if !r.usable(sp) {
		return 0, nil, false
	}
	// Under the trust defence a current path whose first hop has fallen
	// below the distrust threshold is sidestepped packet-by-packet: the
	// usable alternative with the lowest trust penalty carries the data
	// until the next checking round formally re-elects a path.
	if r.trust != nil && r.trust.Distrusted(sp.next) {
		if alt := r.trustedTarget(ss, ss.current); alt != ss.current {
			return alt, ss.paths[alt], true
		}
	}
	return ss.current, sp, true
}

// dropDistrusted filters a usable-ID set (ascending, scratch-backed) down
// to the paths whose first hop the trust oracle still accepts. When every
// usable path is distrusted the set is returned as filtered anyway only if
// non-empty; an all-distrusted set comes back unchanged — a suspect path
// still beats no path. Compaction is in place, preserving order.
func (r *Router) dropDistrusted(ss *srcState, ids []int) []int {
	if r.trust == nil || len(ids) == 0 {
		return ids
	}
	kept := ids[:0]
	for _, id := range ids {
		if !r.trust.Distrusted(ss.paths[id].next) {
			kept = append(kept, id)
		}
	}
	if len(kept) == 0 {
		return ids
	}
	return kept
}

// trustedTarget returns the usable path with the strictly lowest trust
// penalty when the given path's first hop is distrusted (ascending-ID scan,
// so ties keep the incumbent, then the lowest alternative ID). With a
// trusted first hop — or no better alternative — the incumbent stands.
func (r *Router) trustedTarget(ss *srcState, incumbent int) int {
	inc := ss.paths[incumbent]
	if inc == nil || !r.trust.Distrusted(inc.next) {
		return incumbent
	}
	best, bestCost := incumbent, r.trust.Cost(inc.next)
	for _, id := range r.usablePathIDs(ss) {
		if id == incumbent {
			continue
		}
		if c := r.trust.Cost(ss.paths[id].next); c < bestCost {
			best, bestCost = id, c
		}
	}
	return best
}

// noteDataSend records which first hop carried one of our data packets —
// the observation base for the usage-skew scores. Only kept when the
// aware policy is on, so the paper-configuration hot path stays
// allocation-free.
func (r *Router) noteDataSend(ss *srcState, next packet.NodeID) {
	if r.cfg.AwarePenalty <= 0 {
		return
	}
	if ss.sent == nil {
		ss.sent = make(map[packet.NodeID]uint64)
	}
	ss.sent[next]++
	ss.sentTotal++
}

// switchTarget applies the adversary-aware re-scoring to a checking
// round's nominated (first-arrival) path: every usable path is scored by
// the share of this source's data its first hop has already carried, the
// nominee gets an AwarePenalty head start for being fastest, and the
// minimum score wins (ties in favour of the nominee, then the lower ID).
// With the policy off — or before any data has been sent — the nominee
// wins unconditionally, which is the paper's §III-E rule.
func (r *Router) switchTarget(ss *srcState, nominated int) int {
	// The trust defence vetoes a distrusted nominee outright: being the
	// checking round's first arrival is no credential when the first hop
	// has been caught dropping data. Counted as an aware override — it is
	// the same knob (adversary evidence beats latency) fed by different
	// evidence.
	if r.trust != nil {
		if alt := r.trustedTarget(ss, nominated); alt != nominated {
			r.Stats.AwareOverrides++
			nominated = alt
		}
	}
	if r.cfg.AwarePenalty <= 0 || ss.sentTotal == 0 {
		return nominated
	}
	nom := ss.paths[nominated]
	if !r.usable(nom) {
		return nominated
	}
	share := func(sp *srcPath) float64 {
		return float64(ss.sent[sp.next]) / float64(ss.sentTotal)
	}
	best, bestScore := nominated, share(nom)-r.cfg.AwarePenalty
	for _, id := range r.usablePathIDs(ss) {
		if id == nominated {
			continue
		}
		// Strict improvement only: ties keep the nominee, then the
		// lowest alternative ID (the scan is in ascending ID order).
		if score := share(ss.paths[id]); score < bestScore {
			best, bestScore = id, score
		}
	}
	if best != nominated {
		r.Stats.AwareOverrides++
	}
	return best
}

// recycleKey identifies parked MTS routers in a routing.Recycler.
const recycleKey = "mts"

// New creates an MTS router bound to env, reusing a recycled instance's
// state (maps, per-flow struct pools, send-buffer buckets) when env
// carries a routing.Recycler with one parked.
func New(env routing.Env, cfg Config) *Router {
	if rec := routing.RecyclerOf(env); rec != nil {
		if v := rec.Get(recycleKey); v != nil {
			r := v.(*Router)
			r.rebind(env, cfg)
			return r
		}
	}
	ar := routing.ArenaOf(env)
	return &Router{
		env:     env,
		cfg:     cfg,
		ar:      ar,
		trust:   routing.TrustOf(env),
		seen:    make(map[seenKey]bool),
		pending: make(map[packet.NodeID]*discovery),
		src:     make(map[packet.NodeID]*srcState),
		dst:     make(map[packet.NodeID]*dstState),
		fwd:     make(map[packet.NodeID]map[int]*fwdEntry),
		mp:      routing.NewMultiPathTable(env.ID()),
		buffer: routing.NewSendBuffer(env.Scheduler(), cfg.SendBufCap, cfg.SendBufAge, ar,
			func(p *packet.Packet, reason string) { env.NotifyDrop(p, reason) }),
	}
}

// rebind points a recycled (fully reset) router at the next run's
// environment and parameters.
func (r *Router) rebind(env routing.Env, cfg Config) {
	ar := routing.ArenaOf(env)
	r.env, r.cfg, r.ar = env, cfg, ar
	r.trust = routing.TrustOf(env)
	r.mp.Rebind(env.ID())
	r.buffer.Rebind(env.Scheduler(), cfg.SendBufCap, cfg.SendBufAge, ar,
		func(p *packet.Packet, reason string) { env.NotifyDrop(p, reason) })
}

// RecycleInto implements routing.Recyclable: reset all per-run state,
// refill the struct pools and park the instance. No packets are released
// (the arena's Reset already reclaimed them) and the stored-path route
// slices go to the GC (they may still be aliased by dead headers).
func (r *Router) RecycleInto(rec *routing.Recycler) {
	clear(r.seen)
	clear(r.pending)
	for dst, ss := range r.src {
		clear(ss.paths)
		if ss.sent != nil {
			clear(ss.sent)
		}
		ss.current, ss.haveRoute, ss.lastSwitchRound = 0, false, 0
		ss.pendingSwitch = nil
		ss.sentTotal, ss.rotate = 0, 0
		ss.scratch = ss.scratch[:0]
		r.srcPool = append(r.srcPool, ss)
		delete(r.src, dst)
	}
	for src, ds := range r.dst {
		for i := range ds.paths {
			ds.paths[i] = nil
		}
		*ds = dstState{paths: ds.paths[:0], lastDataPath: -1}
		r.dstPool = append(r.dstPool, ds)
		delete(r.dst, src)
	}
	for dst, m := range r.fwd {
		for id, e := range m {
			*e = fwdEntry{}
			r.fePool = append(r.fePool, e)
			delete(m, id)
		}
		r.fwdMapPool = append(r.fwdMapPool, m)
		delete(r.fwd, dst)
	}
	r.buffer.Recycle()
	r.mp.Recycle()
	r.bid, r.checkID, r.nextPathID = 0, 0, 0
	r.Stats = Stats{}
	r.env = nil
	r.trust = nil
	rec.Put(recycleKey, r)
}

// newSrcState takes a reset srcState from the pool, or allocates one.
func (r *Router) newSrcState() *srcState {
	if n := len(r.srcPool); n > 0 {
		ss := r.srcPool[n-1]
		r.srcPool[n-1] = nil
		r.srcPool = r.srcPool[:n-1]
		return ss
	}
	return &srcState{paths: make(map[int]*srcPath)}
}

// newDstState takes a reset dstState from the pool, or allocates one.
func (r *Router) newDstState() *dstState {
	if n := len(r.dstPool); n > 0 {
		ds := r.dstPool[n-1]
		r.dstPool[n-1] = nil
		r.dstPool = r.dstPool[:n-1]
		return ds
	}
	return &dstState{lastDataPath: -1}
}

// Retire implements routing.Retirer: hand back buffered packets at run end.
func (r *Router) Retire() { r.buffer.Retire() }

// Buffered reports how many data packets are parked in the send buffer
// awaiting discovery (retire-drainage audits).
func (r *Router) Buffered() int { return r.buffer.Size() }

// Name implements routing.Protocol.
func (r *Router) Name() string { return "MTS" }

// Start implements routing.Protocol.
func (r *Router) Start() {}

// Receive implements routing.Protocol.
func (r *Router) Receive(p *packet.Packet, from packet.NodeID) {
	switch p.Kind {
	case packet.KindRREQ:
		r.handleRREQ(p, from)
	case packet.KindRREP:
		r.handleRREP(p, from)
	case packet.KindCheck:
		r.handleCheck(p, from)
	case packet.KindCheckErr:
		r.handleCheckErr(p, from)
	case packet.KindRERR:
		r.handleRERR(p, from)
	default:
		r.handleData(p, from)
	}
}

// setFwd installs/refreshes a forwarding entry toward dst for pathID,
// updating the existing entry in place (no reference to a fwdEntry ever
// outlives the call that read it).
func (r *Router) setFwd(dst packet.NodeID, pathID int, next packet.NodeID, checkID uint32) {
	m := r.fwd[dst]
	if m == nil {
		if n := len(r.fwdMapPool); n > 0 {
			m = r.fwdMapPool[n-1]
			r.fwdMapPool[n-1] = nil
			r.fwdMapPool = r.fwdMapPool[:n-1]
		} else {
			m = make(map[int]*fwdEntry)
		}
		r.fwd[dst] = m
	}
	e := m[pathID]
	if e == nil {
		if n := len(r.fePool); n > 0 {
			e = r.fePool[n-1]
			r.fePool[n-1] = nil
			r.fePool = r.fePool[:n-1]
		} else {
			e = &fwdEntry{}
		}
		m[pathID] = e
	}
	e.next, e.checkID, e.at = next, checkID, r.env.Scheduler().Now()
}

// dropFwd removes one forwarding entry, returning its struct to the pool.
func (r *Router) dropFwd(m map[int]*fwdEntry, id int) {
	if e := m[id]; e != nil {
		*e = fwdEntry{}
		r.fePool = append(r.fePool, e)
	}
	delete(m, id)
}

// liveFwd returns the freshest usable forwarding entry toward dst,
// preferring the requested pathID. Entries whose next hop appears in the
// packet's trail are skipped: falling back across paths must never send a
// packet to a node it already visited (ping-pong loops between the entries
// of different disjoint paths). Stale entries are pruned as a side effect.
func (r *Router) liveFwd(dst packet.NodeID, pathID int, trail []packet.NodeID) (next packet.NodeID, chosen int, ok bool) {
	m := r.fwd[dst]
	if m == nil {
		return 0, 0, false
	}
	visited := func(n packet.NodeID) bool {
		for _, v := range trail {
			if v == n {
				return true
			}
		}
		return false
	}
	now := r.env.Scheduler().Now()
	cutoff := now.Add(-r.cfg.EntryTTL)
	if e, found := m[pathID]; found {
		if e.at >= cutoff {
			if !visited(e.next) {
				return e.next, pathID, true
			}
		} else {
			r.dropFwd(m, pathID)
		}
	}
	bestID := -1
	var best *fwdEntry
	for id, e := range m {
		if e.at < cutoff {
			r.dropFwd(m, id)
			continue
		}
		if visited(e.next) {
			continue
		}
		better := best == nil || e.checkID > best.checkID ||
			(e.checkID == best.checkID && e.at > best.at) ||
			(e.checkID == best.checkID && e.at == best.at && id < bestID)
		if better {
			best, bestID = e, id
		}
	}
	if best == nil {
		return 0, 0, false
	}
	return best.next, bestID, true
}

var (
	_ routing.Protocol   = (*Router)(nil)
	_ routing.Recyclable = (*Router)(nil)
)
