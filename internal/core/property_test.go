package core

import (
	"testing"
	"testing/quick"

	"mtsim/internal/packet"
	"mtsim/internal/routing/routingtest"
	"mtsim/internal/sim"
)

// Property: after feeding any sequence of candidate routes through the
// destination-side disjointness filter, every pair of stored live paths
// differs in both first hop and last hop (the Marina–Das invariant, §III-C).
func TestStoredPathsPairwiseDisjointProperty(t *testing.T) {
	f := func(raw [][4]uint8) bool {
		var uids packet.UIDSource
		sched := sim.NewScheduler()
		e := routingtest.NewEnv(99, sched, &uids)
		r := New(e, DefaultConfig())
		ds := &dstState{lastDataPath: -1}
		r.dst[0] = ds

		for _, q := range raw {
			// Build a candidate route 0 -> a -> b -> 99 with small node
			// IDs to force frequent first/last-hop collisions.
			a := packet.NodeID(q[0]%5 + 1)
			b := packet.NodeID(q[1]%5 + 10)
			route := []packet.NodeID{0, a, b, 99}
			if len(ds.paths) < r.cfg.MaxPaths && r.disjoint(ds, route) {
				r.storePath(ds, route)
			}
		}
		// Check the invariant over live paths.
		live := ds.paths
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				if !live[i].alive || !live[j].alive {
					continue
				}
				ri, rj := live[i].route, live[j].route
				if ri[1] == rj[1] {
					return false // shared first hop
				}
				if ri[len(ri)-2] == rj[len(rj)-2] {
					return false // shared last hop
				}
			}
		}
		return len(live) <= r.cfg.MaxPaths
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: reverseRoute is an involution and preserves multiset.
func TestReverseRouteInvolutionProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		route := make([]packet.NodeID, len(raw))
		for i, v := range raw {
			route[i] = packet.NodeID(v)
		}
		rr := reverseRoute(reverseRoute(route))
		if len(rr) != len(route) {
			return false
		}
		for i := range route {
			if rr[i] != route[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hasLoop detects exactly the routes with repeated nodes.
func TestHasLoopProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		route := make([]packet.NodeID, len(raw))
		seen := map[uint8]bool{}
		dup := false
		for i, v := range raw {
			route[i] = packet.NodeID(v)
			if seen[v] {
				dup = true
			}
			seen[v] = true
		}
		return hasLoop(route) == dup
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
