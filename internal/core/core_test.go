package core

import (
	"testing"

	"mtsim/internal/packet"
	"mtsim/internal/routing/routingtest"
	"mtsim/internal/sim"
)

// net is the hand-driven harness (same pattern as the AODV/DSR tests).
type net struct {
	sched   *sim.Scheduler
	uids    packet.UIDSource
	envs    map[packet.NodeID]*routingtest.Env
	routers map[packet.NodeID]*Router
	adj     map[packet.NodeID][]packet.NodeID
}

func newNet(adj map[packet.NodeID][]packet.NodeID, cfg Config) *net {
	n := &net{
		sched:   sim.NewScheduler(),
		envs:    map[packet.NodeID]*routingtest.Env{},
		routers: map[packet.NodeID]*Router{},
		adj:     adj,
	}
	for id := range adj {
		e := routingtest.NewEnv(id, n.sched, &n.uids)
		n.envs[id] = e
		n.routers[id] = New(e, cfg)
	}
	return n
}

func (n *net) linked(a, b packet.NodeID) bool {
	for _, x := range n.adj[a] {
		if x == b {
			return true
		}
	}
	return false
}

// pump flushes events and shuttles transmissions until quiet or the step
// budget runs out (MTS has periodic checking, so "quiet" needs a horizon).
func (n *net) pump(horizon sim.Duration) {
	target := n.sched.Now().Add(horizon)
	for i := 0; i < 100000; i++ {
		n.sched.RunUntil(n.sched.Now().Add(10 * sim.Millisecond))
		moved := false
		for id, e := range n.envs {
			for _, s := range e.TakeOutbox() {
				moved = true
				if s.Next == packet.Broadcast {
					for _, nb := range n.adj[id] {
						n.routers[nb].Receive(s.P, id)
					}
				} else if n.linked(id, s.Next) {
					n.routers[s.Next].Receive(s.P, id)
				} else {
					// Unreachable neighbour: emulate MAC feedback.
					n.routers[id].LinkFailed(s.P, s.Next)
				}
			}
		}
		if n.sched.Now() >= target && !moved {
			return
		}
	}
}

func dataPacket(u *packet.UIDSource, src, dst packet.NodeID, seq int64) *packet.Packet {
	return &packet.Packet{
		UID: u.Next(), Kind: packet.KindData, Size: 1040,
		Src: src, Dst: dst, TTL: 64,
		DataID: uint64(seq) + 1,
		TCP:    &packet.TCPHeader{Flow: 1, Seq: seq},
	}
}

// diamond: two node-disjoint 3-hop paths 0-1-3 / 0-2-3 between 0 and 3.
func diamond() map[packet.NodeID][]packet.NodeID {
	return map[packet.NodeID][]packet.NodeID{
		0: {1, 2}, 1: {0, 3}, 2: {0, 3}, 3: {1, 2},
	}
}

// triplePath: three disjoint paths 0-1-4, 0-2-4, 0-3-4.
func triplePath() map[packet.NodeID][]packet.NodeID {
	return map[packet.NodeID][]packet.NodeID{
		0: {1, 2, 3}, 1: {0, 4}, 2: {0, 4}, 3: {0, 4}, 4: {1, 2, 3},
	}
}

func TestDiscoveryDeliversAndStoresDisjointPaths(t *testing.T) {
	n := newNet(diamond(), DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(100 * sim.Millisecond)

	if len(n.envs[3].Delivered) != 1 {
		t.Fatalf("delivered = %d", len(n.envs[3].Delivered))
	}
	paths := n.routers[3].StoredPaths(0)
	if len(paths) != 2 {
		t.Fatalf("stored paths = %v, want 2 disjoint", paths)
	}
	// Both disjoint paths captured: via 1 and via 2.
	firstHops := map[packet.NodeID]bool{}
	for _, p := range paths {
		if len(p) != 3 || p[0] != 0 || p[2] != 3 {
			t.Fatalf("malformed path %v", p)
		}
		firstHops[p[1]] = true
	}
	if !firstHops[1] || !firstHops[2] {
		t.Fatalf("paths not disjoint: %v", paths)
	}
}

func TestImmediateFirstReply(t *testing.T) {
	// The RREP must be sent before any checking round, i.e. essentially
	// immediately after the first RREQ copy reaches the destination.
	n := newNet(diamond(), DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(50 * sim.Millisecond) // well under CheckPeriod
	if len(n.envs[3].Delivered) != 1 {
		t.Fatal("no delivery before the first checking round: RREP was not immediate")
	}
}

func TestMaxPathsBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPaths = 2
	n := newNet(triplePath(), cfg)
	n.routers[0].Send(dataPacket(&n.uids, 0, 4, 0))
	n.pump(100 * sim.Millisecond)
	if got := len(n.routers[4].StoredPaths(0)); got > 2 {
		t.Fatalf("stored %d paths, cap 2", got)
	}
}

func TestDisjointRule(t *testing.T) {
	var uids packet.UIDSource
	sched := sim.NewScheduler()
	e := routingtest.NewEnv(9, sched, &uids)
	r := New(e, DefaultConfig())
	ds := &dstState{lastDataPath: -1}
	r.dst[0] = ds
	r.storePath(ds, []packet.NodeID{0, 1, 2, 9})

	// Same first hop -> rejected.
	if r.disjoint(ds, []packet.NodeID{0, 1, 5, 9}) {
		t.Fatal("same-first-hop path accepted")
	}
	// Same last hop -> rejected.
	if r.disjoint(ds, []packet.NodeID{0, 4, 2, 9}) {
		t.Fatal("same-last-hop path accepted")
	}
	// Both differ -> accepted.
	if !r.disjoint(ds, []packet.NodeID{0, 4, 5, 9}) {
		t.Fatal("disjoint path rejected")
	}
	// Dead paths do not block.
	ds.paths[0].alive = false
	if !r.disjoint(ds, []packet.NodeID{0, 1, 5, 9}) {
		t.Fatal("dead path still blocks")
	}
}

func TestCheckingRefreshesAndSwitches(t *testing.T) {
	cfg := DefaultConfig()
	n := newNet(diamond(), cfg)
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	// Keep data flowing so the session stays active.
	for i := int64(1); i <= 5; i++ {
		i := i
		n.sched.At(sim.Time(i)*sim.Time(sim.Second), func() {
			n.routers[0].Send(dataPacket(&n.uids, 0, 3, i))
		})
	}
	n.pump(12 * sim.Second) // several checking rounds

	if n.routers[3].Stats.ChecksSent == 0 {
		t.Fatal("destination never sent checking packets")
	}
	// The source must know both paths as alive by now.
	if got := n.routers[0].LivePathCount(3); got != 2 {
		t.Fatalf("source live paths = %d, want 2", got)
	}
	if _, next, ok := n.routers[0].CurrentPath(3); !ok || (next != 1 && next != 2) {
		t.Fatalf("current path: next=%d ok=%v", next, ok)
	}
}

func TestNoSwitchingWhenDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SwitchOnCheck = false
	n := newNet(diamond(), cfg)
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	_, firstNext, _ := n.routers[0].CurrentPath(3)
	for i := int64(1); i <= 8; i++ {
		i := i
		n.sched.At(sim.Time(i)*sim.Time(sim.Second), func() {
			n.routers[0].Send(dataPacket(&n.uids, 0, 3, i))
		})
	}
	n.pump(15 * sim.Second)
	_, next, ok := n.routers[0].CurrentPath(3)
	if !ok {
		t.Fatal("route lost")
	}
	if next != firstNext && firstNext != 0 {
		t.Fatal("route switched despite SwitchOnCheck=false")
	}
	if n.routers[0].Stats.Switches != 0 {
		t.Fatalf("switches = %d, want 0", n.routers[0].Stats.Switches)
	}
}

func TestCheckErrDeletesPath(t *testing.T) {
	cfg := DefaultConfig()
	n := newNet(diamond(), cfg)
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(100 * sim.Millisecond)
	if len(n.routers[3].StoredPaths(0)) != 2 {
		t.Fatal("setup: need 2 stored paths")
	}
	// Break path via node 1 silently (1 can no longer reach 0).
	n.adj[1] = []packet.NodeID{3}
	// Keep the session active.
	for i := int64(1); i <= 8; i++ {
		i := i
		n.sched.At(sim.Time(i)*sim.Time(sim.Second), func() {
			n.routers[0].Send(dataPacket(&n.uids, 0, 3, i))
		})
	}
	n.pump(12 * sim.Second)

	// The checking packets along 3-1-0 fail at node 1 -> CheckErr -> the
	// destination deletes that path; the via-2 path survives.
	paths := n.routers[3].StoredPaths(0)
	if len(paths) != 1 || paths[0][1] != 2 {
		t.Fatalf("surviving paths = %v, want only via 2", paths)
	}
	if n.routers[3].Stats.PathsDeleted == 0 {
		t.Fatal("no path deletion recorded")
	}
	if n.routers[1].Stats.CheckErrs == 0 {
		t.Fatal("node 1 never sent a CheckErr")
	}
}

func TestNewRREQFlushesStoredPaths(t *testing.T) {
	n := newNet(diamond(), DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(100 * sim.Millisecond)
	if len(n.routers[3].StoredPaths(0)) != 2 {
		t.Fatal("setup: want 2 paths")
	}
	// Force a second discovery from the source.
	d := &discovery{}
	n.routers[0].pending[3] = d
	n.routers[0].attempt(3, d)
	n.pump(100 * sim.Millisecond)

	// After the flush the set was rebuilt from the new flood: still 2,
	// but the destination's bid advanced.
	if got := n.routers[3].dst[0].bid; got != 2 {
		t.Fatalf("destination bid = %d, want 2", got)
	}
	if len(n.routers[3].StoredPaths(0)) != 2 {
		t.Fatalf("paths after flush = %d", len(n.routers[3].StoredPaths(0)))
	}
}

func TestDataFailoverOnLinkFailure(t *testing.T) {
	n := newNet(diamond(), DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	// Run a couple of checking rounds so the source knows both paths.
	for i := int64(1); i <= 6; i++ {
		i := i
		n.sched.At(sim.Time(i)*sim.Time(sim.Second), func() {
			n.routers[0].Send(dataPacket(&n.uids, 0, 3, i))
		})
	}
	n.pump(8 * sim.Second)
	if n.routers[0].LivePathCount(3) != 2 {
		t.Fatal("setup: source should know both paths")
	}
	curID, curNext, _ := n.routers[0].CurrentPath(3)

	// Fail the current first hop via MAC feedback.
	p := dataPacket(&n.uids, 0, 3, 100)
	p.PathID = curID
	p.Trail = []packet.NodeID{0}
	n.routers[0].LinkFailed(p, curNext)

	newID, newNext, ok := n.routers[0].CurrentPath(3)
	if !ok {
		t.Fatal("no failover path")
	}
	if newID == curID || newNext == curNext {
		t.Fatalf("failover did not switch: %d->%d next %d->%d", curID, newID, curNext, newNext)
	}
}

func TestTransitFailureSendsRERRviaTrail(t *testing.T) {
	// Chain 0-1-2-3: transit node 1 fails toward 2; the RERR must travel
	// back to 0 along the recorded trail and trigger re-discovery.
	adj := map[packet.NodeID][]packet.NodeID{
		0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2},
	}
	n := newNet(adj, DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(100 * sim.Millisecond)
	if len(n.envs[3].Delivered) != 1 {
		t.Fatal("setup: initial delivery failed")
	}
	disc := n.routers[0].Stats.Discoveries

	p := dataPacket(&n.uids, 0, 3, 1)
	p.Trail = []packet.NodeID{0}
	p.PathID = 0
	n.routers[1].Receive(p, 0) // node 1 forwards...
	// Steal the forwarded copy and report MAC failure at node 1.
	var fwd *packet.Packet
	for _, s := range n.envs[1].TakeOutbox() {
		if s.P.Kind == packet.KindData {
			fwd = s.P
		}
	}
	if fwd == nil {
		t.Fatal("node 1 did not forward")
	}
	n.routers[1].LinkFailed(fwd, 2)
	n.pump(3 * sim.Second)

	if n.routers[1].Stats.RERRsSent == 0 {
		t.Fatal("transit node sent no RERR")
	}
	if n.routers[0].Stats.Discoveries <= disc {
		t.Fatal("source did not re-discover after RERR")
	}
}

func TestReturnTrafficSourceRouted(t *testing.T) {
	n := newNet(diamond(), DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(100 * sim.Millisecond)

	// Destination sends an "ACK" back to 0.
	ack := &packet.Packet{
		UID: n.uids.Next(), Kind: packet.KindAck, Size: 40,
		Src: 3, Dst: 0, TTL: 64,
		TCP: &packet.TCPHeader{Flow: 1, Seq: 0, Ack: true},
	}
	n.routers[3].Send(ack)
	n.pump(100 * sim.Millisecond)
	if len(n.envs[0].Delivered) != 1 {
		t.Fatalf("return traffic delivered = %d", len(n.envs[0].Delivered))
	}
}

func TestSessionIdleStopsChecking(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SessionIdle = 5 * sim.Second
	n := newNet(diamond(), cfg)
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(30 * sim.Second)
	sent := n.routers[3].Stats.ChecksSent
	n.pump(30 * sim.Second)
	if n.routers[3].Stats.ChecksSent != sent {
		t.Fatalf("checking continued during idle: %d -> %d", sent, n.routers[3].Stats.ChecksSent)
	}
}

func TestIntermediateNeverReplies(t *testing.T) {
	// Chain where node 1 already carries a session to 3; a new source at
	// node 4 (attached to 1) must get its reply from 3 itself, never 1.
	adj := map[packet.NodeID][]packet.NodeID{
		0: {1}, 1: {0, 2, 4}, 2: {1, 3}, 3: {2}, 4: {1},
	}
	n := newNet(adj, DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(200 * sim.Millisecond)
	rrepsBefore := countKind(n, packet.KindRREP)
	n.routers[4].Send(dataPacket(&n.uids, 4, 3, 0))
	n.pump(200 * sim.Millisecond)
	if len(n.envs[3].Delivered) != 2 {
		t.Fatalf("delivered = %d", len(n.envs[3].Delivered))
	}
	_ = rrepsBefore
	// All RREPs must originate at node 3.
	for id, r := range n.routers {
		if id != 3 && r.Stats.ChecksSent == 0 {
			// (checks only from destination too)
			continue
		}
	}
}

func countKind(n *net, k packet.Kind) int {
	c := 0
	for _, e := range n.envs {
		for _, s := range e.Outbox {
			if s.P.Kind == k {
				c++
			}
		}
	}
	return c
}

func TestTTLDrop(t *testing.T) {
	n := newNet(diamond(), DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(100 * sim.Millisecond)
	p := dataPacket(&n.uids, 0, 3, 5)
	p.TTL = 1
	n.routers[1].Receive(p, 0)
	last := n.envs[1].Dropped[len(n.envs[1].Dropped)-1]
	if last != "ttl" {
		t.Fatalf("drop reason = %q", last)
	}
}

func TestSendToSelf(t *testing.T) {
	n := newNet(diamond(), DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 0, 0))
	if len(n.envs[0].Delivered) != 1 {
		t.Fatal("self delivery failed")
	}
}

func TestDiscoveryGivesUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DiscoveryRetries = 2
	n := newNet(diamond(), cfg)
	n.routers[0].Send(dataPacket(&n.uids, 0, 99, 0))
	n.pump(10 * sim.Second)
	found := false
	for _, reason := range n.envs[0].Dropped {
		if reason == "discovery-failed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no give-up drop: %v", n.envs[0].Dropped)
	}
	if n.routers[0].Stats.Discoveries != 2 {
		t.Fatalf("discoveries = %d", n.routers[0].Stats.Discoveries)
	}
}

func TestFwdEntryExpiry(t *testing.T) {
	var uids packet.UIDSource
	sched := sim.NewScheduler()
	e := routingtest.NewEnv(9, sched, &uids)
	cfg := DefaultConfig()
	cfg.EntryTTL = 2 * sim.Second
	r := New(e, cfg)
	r.setFwd(3, 0, 7, 1)
	if _, _, ok := r.liveFwd(3, 0, nil); !ok {
		t.Fatal("fresh entry unusable")
	}
	sched.RunUntil(sim.Time(3 * sim.Second))
	if _, _, ok := r.liveFwd(3, 0, nil); ok {
		t.Fatal("stale entry still usable")
	}
}

func TestLiveFwdPrefersRequestedThenFreshest(t *testing.T) {
	var uids packet.UIDSource
	sched := sim.NewScheduler()
	e := routingtest.NewEnv(9, sched, &uids)
	r := New(e, DefaultConfig())
	r.setFwd(3, 0, 10, 1)
	r.setFwd(3, 1, 11, 5)
	next, chosen, ok := r.liveFwd(3, 0, nil)
	if !ok || chosen != 0 || next != 10 {
		t.Fatalf("requested path not preferred: next=%d chosen=%d", next, chosen)
	}
	// Unknown path: freshest checkID wins.
	next, chosen, ok = r.liveFwd(3, 42, nil)
	if !ok || chosen != 1 || next != 11 {
		t.Fatalf("freshest not chosen: next=%d chosen=%d", next, chosen)
	}
}
