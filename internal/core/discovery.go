package core

import (
	"mtsim/internal/packet"
	"mtsim/internal/routing"
)

// Send implements routing.Protocol: originate an end-to-end packet.
func (r *Router) Send(p *packet.Packet) {
	self := r.env.ID()
	if p.Dst == self {
		r.env.DeliverLocal(p, self)
		r.ar.Release(p)
		return
	}
	// If this node is the destination side of a session with p.Dst (it
	// has stored disjoint paths from p.Dst's discoveries), return traffic
	// (TCP ACKs) is source-routed along a stored path, mirroring how the
	// checking packets themselves travel.
	if ds := r.dst[p.Dst]; ds != nil {
		if route := r.returnRoute(ds); route != nil {
			r.ar.SetSourceRoute(p, route)
			p.SRIndex = 0
			r.env.SendMac(p, route[1])
			return
		}
	}
	ss := r.src[p.Dst]
	if ss != nil && ss.haveRoute {
		if sp := ss.paths[ss.current]; !r.usable(sp) {
			// The current path went quiet (two missed checking rounds):
			// fail over to the freshest checked alternative, or fall
			// through to a fresh discovery.
			r.failPath(p.Dst, ss.current)
		}
		if ss.haveRoute {
			if id, sp, ok := r.pickDataPath(ss); ok {
				p.PathID = id
				r.ar.StartTrail(p, self)
				r.noteDataSend(ss, sp.next)
				r.env.SendMac(p, sp.next)
				return
			}
		}
	}
	r.buffer.Push(p.Dst, p)
	r.startDiscovery(p.Dst)
}

// returnRoute picks the reversed stored path for destination-side traffic:
// the path data most recently arrived on, else any live path.
func (r *Router) returnRoute(ds *dstState) []packet.NodeID {
	var pick *storedPath
	for _, sp := range ds.paths {
		if !sp.alive {
			continue
		}
		if sp.id == ds.lastDataPath {
			pick = sp
			break
		}
		if pick == nil {
			pick = sp
		}
	}
	if pick == nil || len(pick.route) < 2 {
		return nil
	}
	return reverseRoute(pick.route)
}

func (r *Router) startDiscovery(dst packet.NodeID) {
	if _, busy := r.pending[dst]; busy {
		return
	}
	d := &discovery{}
	r.pending[dst] = d
	r.attempt(dst, d)
}

func (r *Router) attempt(dst packet.NodeID, d *discovery) {
	d.attempts++
	r.Stats.Discoveries++
	r.bid++
	self := r.env.ID()
	h := &RREQ{Orig: self, Target: dst, BID: r.bid, Record: []packet.NodeID{self}}
	p := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindRREQ,
		Size:    rreqBase + addrSize,
		Src:     self,
		Dst:     dst,
		TTL:     routing.DefaultTTL,
		Routing: h,
	})
	r.seen[seenKey{self, h.BID}] = true
	// A fresh discovery invalidates what we knew: the RREQ will flush the
	// destination's stored paths, so the old path set must not be reused.
	r.env.SendMac(p, packet.Broadcast)

	timeout := r.cfg.DiscoveryTimeout << (d.attempts - 1)
	d.timer = r.env.Scheduler().After(timeout, func() {
		if ss := r.src[dst]; ss != nil && ss.haveRoute {
			delete(r.pending, dst)
			return
		}
		if d.attempts >= r.cfg.DiscoveryRetries {
			delete(r.pending, dst)
			r.buffer.DropAll(dst)
			return
		}
		r.attempt(dst, d)
	})
}

func (r *Router) handleRREQ(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*RREQ)
	self := r.env.ID()
	if h.Orig == self {
		return
	}
	if h.Target == self {
		r.rreqAtDestination(h, from)
		return
	}
	// Intermediate node: relay only the first copy (§III-B). Even a node
	// holding a fresh route to the target must relay rather than reply.
	key := seenKey{h.Orig, h.BID}
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	for _, n := range h.Record {
		if n == self {
			return
		}
	}
	if p.TTL <= 1 {
		return
	}
	fwd := r.ar.Copy(p, r.env.UIDs())
	fwd.TTL--
	nh := &RREQ{Orig: h.Orig, Target: h.Target, BID: h.BID, Hops: h.Hops + 1,
		Record: append(packet.CloneRoute(h.Record), self)}
	fwd.Routing = nh
	fwd.Size = rreqBase + addrSize*len(nh.Record)
	r.env.SendMacAfter(r.env.RNG().Jitter(routing.MaxBroadcastJitter), fwd, packet.Broadcast)
}

// rreqAtDestination processes every RREQ copy reaching the target: the
// first copy triggers an immediate RREP; later copies are candidate
// disjoint paths (§III-B, §III-C).
func (r *Router) rreqAtDestination(h *RREQ, from packet.NodeID) {
	self := r.env.ID()
	ds := r.dst[h.Orig]
	if ds == nil {
		ds = r.newDstState()
		r.dst[h.Orig] = ds
	}
	route := append(packet.CloneRoute(h.Record), self) // S … D
	if hasLoop(route) {
		return
	}

	if routing.SeqNewer(h.BID, ds.bid) {
		// "When a new RREQ packet (having larger broadcast ID) reaches
		// the destination, all the existing legitimate paths are
		// flushed." (§III-D)
		ds.bid = h.BID
		for i := range ds.paths {
			ds.paths[i] = nil
		}
		ds.paths = ds.paths[:0]
		sp := r.storePath(ds, route)
		r.sendRREP(sp, h)
		r.ensureChecking(h.Orig)
		return
	}
	if h.BID != ds.bid {
		return // stale request from an earlier discovery
	}
	// Later copy of the current request: store if disjoint and room.
	if len(ds.paths) >= r.cfg.MaxPaths {
		return
	}
	if !r.disjoint(ds, route) {
		return
	}
	r.storePath(ds, route)
}

// storePath records a path and returns it.
func (r *Router) storePath(ds *dstState, route []packet.NodeID) *storedPath {
	sp := &storedPath{id: r.nextPathID, route: route, alive: true}
	r.nextPathID++
	ds.paths = append(ds.paths, sp)
	r.Stats.PathsStored++
	return sp
}

// disjoint applies the destination-side Marina–Das rule (§III-C): a
// candidate is accepted only if it differs from every stored live path in
// both its first hop (next hop from the source) and its last hop (the
// neighbour delivering to the destination).
func (r *Router) disjoint(ds *dstState, route []packet.NodeID) bool {
	if len(route) < 2 {
		return false
	}
	first := route[1]
	last := route[len(route)-2]
	for _, sp := range ds.paths {
		if !sp.alive || len(sp.route) < 2 {
			continue
		}
		if sp.route[1] == first || sp.route[len(sp.route)-2] == last {
			return false
		}
	}
	return true
}

// sendRREP unicasts the immediate reply along the reverse path; every relay
// installs a forward entry toward this destination (the reverse-path
// construction of Figs. 1–2).
func (r *Router) sendRREP(sp *storedPath, h *RREQ) {
	back := reverseRoute(sp.route) // D … S
	if len(back) < 2 {
		// Single-hop: deliver state directly to the neighbour source.
		return
	}
	p := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindRREP,
		Size:    rrepBase + addrSize*len(sp.route),
		Src:     r.env.ID(),
		Dst:     h.Orig,
		TTL:     routing.DefaultTTL,
		Routing: &RREP{Route: sp.route, BID: h.BID, PathID: sp.id},
		SRIndex: 0,
	})
	r.ar.SetSourceRoute(p, back)
	r.env.SendMac(p, back[1])
}

func (r *Router) handleRREP(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*RREP)
	self := r.env.ID()
	dest := h.Route[len(h.Route)-1]

	if p.Dst == self {
		// Source: adopt the path.
		ss := r.src[dest]
		if ss == nil {
			ss = r.newSrcState()
			r.src[dest] = ss
		}
		ss.paths[h.PathID] = &srcPath{
			next:      from,
			lastHeard: r.env.Scheduler().Now(),
			alive:     true,
		}
		ss.current = h.PathID
		ss.haveRoute = true
		r.completeDiscovery(dest)
		return
	}
	// Relay: install the forward entry toward the destination via the
	// neighbour the RREP came from (which is one hop closer to it).
	r.setFwd(dest, h.PathID, from, 0)
	r.forwardSourceRouted(p)
}

func (r *Router) completeDiscovery(dst packet.NodeID) {
	if d, ok := r.pending[dst]; ok {
		if d.timer != nil {
			r.env.Scheduler().Cancel(d.timer)
		}
		delete(r.pending, dst)
	}
	ss := r.src[dst]
	if ss == nil || !ss.haveRoute {
		return
	}
	if sp := ss.paths[ss.current]; sp == nil || !sp.alive {
		return
	}
	popped := r.buffer.Pop(dst)
	for i, q := range popped {
		id, sp, ok := r.pickDataPath(ss)
		if !ok {
			// No usable path after all: Pop removed every packet, so
			// everything not yet sent must go back in the buffer or it
			// would leak out of the arena ledger.
			for _, rest := range popped[i:] {
				r.buffer.Push(dst, rest)
			}
			return
		}
		q.PathID = id
		r.ar.StartTrail(q, r.env.ID())
		r.noteDataSend(ss, sp.next)
		r.env.SendMac(q, sp.next)
	}
}

// forwardSourceRouted advances any source-routed MTS packet (RREP, Check,
// CheckErr, RERR, return data) one hop.
func (r *Router) forwardSourceRouted(p *packet.Packet) {
	self := r.env.ID()
	idx := -1
	for i, n := range p.SourceRoute {
		if n == self {
			idx = i
			break
		}
	}
	if idx < 0 || idx+1 >= len(p.SourceRoute) || p.TTL <= 1 {
		r.env.NotifyDrop(p, "bad-source-route")
		return
	}
	fwd := r.ar.Copy(p, r.env.UIDs())
	fwd.TTL--
	fwd.SRIndex = idx + 1
	r.env.SendMac(fwd, p.SourceRoute[idx+1])
}

func hasLoop(r []packet.NodeID) bool {
	seen := make(map[packet.NodeID]bool, len(r))
	for _, n := range r {
		if seen[n] {
			return true
		}
		seen[n] = true
	}
	return false
}

func reverseRoute(r []packet.NodeID) []packet.NodeID {
	out := make([]packet.NodeID, len(r))
	for i, n := range r {
		out[len(r)-1-i] = n
	}
	return out
}
