// Package runcache is a content-addressed on-disk cache of simulation
// results, keyed by a canonical hash of the complete scenario.Config
// (which includes the seed) plus a code-version salt. The simulator is
// deterministic — identical configuration and seed always produce
// identical RunMetrics — so a cached result is not an approximation of a
// re-run, it IS the re-run. The experiment engine consults the cache
// before dispatching each sweep cell, which makes repeated sweeps nearly
// free and turns every completed run into a checkpoint: a killed sweep
// re-invoked with the same cache directory resumes from what is on disk.
//
// # Keying
//
// The key is SHA-256 over a canonical byte encoding of the configuration,
// produced by reflection over scenario.Config: every field — nested
// structs, slices, numeric and string leaves — is folded into the hash
// tagged with its path, so two configs hash equally iff they are equal
// field-for-field. Because the walk is reflective, a newly added Config
// field is automatically part of the key; there is no hand-maintained
// field list to forget to update (the field-sensitivity test in this
// package proves every field perturbs the hash). Fields of a kind the
// encoder does not understand (funcs, maps, channels, pointers) make Key
// fail loudly rather than silently dropping out of the key.
//
// SchemaVersion salts every key. Bump it whenever simulator behaviour
// changes (golden fixtures move), and every stale cache entry misses.
//
// # Layout
//
// Entries live at <dir>/<kk>/<key>.json, where kk is the first two hex
// digits of the key (a fan-out shard keeping directories small). Each
// entry is a JSON document carrying the schema version, the GOARCH it was
// produced on (float metrics are only bit-stable per architecture, exactly
// like the golden fixtures), the key, and the RunMetrics in the same
// encoding the golden fixtures use. Entries are written atomically
// (temp file + rename), so a sweep killed mid-write never leaves a
// half-entry behind — at worst the cell is recomputed.
//
// # Robustness
//
// The store never fails a sweep. A corrupt entry (truncated write on a
// dying disk, editor damage, bit rot) is quarantined: moved aside to
// <dir>/quarantine/ — preserved for post-mortems, never re-served, never
// re-tripped — and the cell recomputes. Entries from another simulator
// version or architecture are NOT corruption: they miss in place,
// untouched, for whoever owns them. Reads that fail for I/O reasons
// degrade to plain misses and are counted. Health reports all three
// counters so callers can surface a sick cache instead of silently
// recomputing forever.
package runcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"

	"mtsim/internal/metrics"
	"mtsim/internal/scenario"
)

// SchemaVersion is the code-version salt folded into every key. Bump it
// whenever a change alters simulation behaviour (the same commit that
// regenerates the golden fixtures), so stale entries can never be served.
const SchemaVersion = "mtsim-run/v4"

// Key returns the content address of a configuration: hex SHA-256 over
// SchemaVersion plus the canonical encoding of every field of cfg
// (the seed included). It errors on configurations containing fields the
// canonical encoder cannot represent.
func Key(cfg scenario.Config) (string, error) {
	return KeySalted(cfg, SchemaVersion)
}

// KeySalted is Key under a caller-chosen version salt (tests; parallel
// cache namespaces).
func KeySalted(cfg scenario.Config, salt string) (string, error) {
	h := sha256.New()
	writeString(h, salt)
	if err := hashValue(h, reflect.ValueOf(cfg), "Config"); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func writeString(h hash.Hash, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

func writeUint64(h hash.Hash, v uint64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], v)
	h.Write(n[:])
}

// hashValue folds one value into the hash, tagged with its field path and
// kind so no two distinct configurations share an encoding.
func hashValue(h hash.Hash, v reflect.Value, path string) error {
	writeString(h, path)
	writeUint64(h, uint64(v.Kind()))
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			writeUint64(h, 1)
		} else {
			writeUint64(h, 0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		writeUint64(h, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		writeUint64(h, v.Uint())
	case reflect.Float32, reflect.Float64:
		writeUint64(h, math.Float64bits(v.Float()))
	case reflect.String:
		writeString(h, v.String())
	case reflect.Slice, reflect.Array:
		writeUint64(h, uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			if err := hashValue(h, v.Index(i), fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
	case reflect.Struct:
		t := v.Type()
		writeUint64(h, uint64(t.NumField()))
		for i := 0; i < t.NumField(); i++ {
			if err := hashValue(h, v.Field(i), path+"."+t.Field(i).Name); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("runcache: cannot canonically encode %s (kind %s) — "+
			"extend the encoder before adding such fields to scenario.Config", path, v.Kind())
	}
	return nil
}

// entry is the on-disk document. Metrics reuse the golden-fixture JSON
// encoding of metrics.RunMetrics; Schema/GOARCH/Key gate staleness.
type entry struct {
	Schema   string              `json:"schema"`
	GOARCH   string              `json:"goarch"`
	Key      string              `json:"key"`
	Protocol string              `json:"protocol"`
	Seed     int64               `json:"seed"`
	Metrics  *metrics.RunMetrics `json:"metrics"`
}

// quarantineDir is the subdirectory corrupt entries are moved into —
// deliberately not a two-hex-digit name, so it can never collide with a
// shard and Len/sweepOrphans skip it by name.
const quarantineDir = "quarantine"

// Health is a snapshot of a store's degradation counters. All zeros is
// a healthy cache; anything else is worth a warning line (the cache
// itself keeps working — misses recompute).
type Health struct {
	// Quarantined counts corrupt entries moved aside to the quarantine
	// directory (preserved for post-mortems, never served again).
	Quarantined int
	// DegradedReads counts lookups that failed for I/O reasons other
	// than absence (permissions, a dying disk) and were served as plain
	// misses.
	DegradedReads int
	// StaleMisses counts lookups that found a valid entry from another
	// schema version or architecture — not corruption, left in place.
	StaleMisses int
}

// Store is a cache rooted at one directory. All methods are safe for
// concurrent use by the sweep's worker goroutines: entries are immutable
// once written, writes are atomic renames, and the health counters are
// mutex-guarded.
type Store struct {
	dir  string
	salt string

	mu     sync.Mutex
	health Health
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*Store, error) {
	return OpenSalted(dir, SchemaVersion)
}

// OpenSalted opens a cache whose keys use the given version salt.
func OpenSalted(dir, salt string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	s := &Store{dir: dir, salt: salt}
	s.sweepOrphans()
	return s, nil
}

// sweepOrphans removes temp files left behind by sweeps killed mid-Put
// (the designed resume workflow), so repeated kill/resume cycles cannot
// litter the shards unboundedly. Any .tmp file predating this Open is
// dead by construction. In the rare cross-process race — another process
// mid-Put while we open the same cache — removing its temp file merely
// fails that one Put (counted, non-fatal), never corrupts an entry.
func (s *Store) sweepOrphans() {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, sh := range shards {
		if !sh.IsDir() || sh.Name() == quarantineDir {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if !f.IsDir() && strings.Contains(f.Name(), ".tmp") {
				os.Remove(filepath.Join(s.dir, sh.Name(), f.Name()))
			}
		}
	}
}

// Dir returns the cache's root directory.
func (s *Store) Dir() string { return s.dir }

// ValidKey reports whether key is a well-formed content address: exactly
// 64 lowercase hex digits, the shape every KeySalted output has. Every
// externally supplied key (fabric HTTP requests, merge sources) must pass
// this gate before it reaches the filesystem — a malformed key is never a
// path (no traversal, no short-key slicing), it is simply not an entry.
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path maps a key to its on-disk location. Callers must have validated
// key (ValidKey) — keys minted by KeySalted always pass.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get returns the cached metrics for cfg, or (nil, false) on any miss:
// absent entry, unreadable or corrupt file, schema or architecture
// mismatch. A miss is never an error — the caller recomputes. Corrupt
// entries are quarantined on sight; I/O failures and stale-version hits
// are counted in Health.
func (s *Store) Get(cfg scenario.Config) (*metrics.RunMetrics, bool) {
	key, err := KeySalted(cfg, s.salt)
	if err != nil {
		return nil, false
	}
	_, e, ok := s.readValidated(key)
	if !ok {
		return nil, false
	}
	return e.Metrics, true
}

// readValidated reads one entry by key and applies the store's full
// validation discipline: corrupt documents are quarantined, entries from
// another schema version or architecture miss in place, I/O failures
// degrade to counted misses. It is the shared core of Get and GetRaw, so
// raw entries served to fabric peers are exactly as trustworthy as
// locally decoded ones.
func (s *Store) readValidated(key string) ([]byte, *entry, bool) {
	if !ValidKey(key) {
		// Not a content address — nothing on disk can be its entry, and
		// it must never be turned into a path (an attacker-shaped key
		// could otherwise traverse, or quarantine-move, arbitrary files).
		return nil, nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			// Read-only or erroring directory: degrade to pass-through —
			// the sweep recomputes, the counter tells the story.
			s.mu.Lock()
			s.health.DegradedReads++
			s.mu.Unlock()
		}
		return nil, nil, false
	}
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		s.quarantine(key)
		return nil, nil, false
	}
	if e.Schema != s.salt || e.GOARCH != runtime.GOARCH {
		// A valid entry from another simulator version or architecture —
		// not corruption; leave it in place for whoever owns it.
		s.mu.Lock()
		s.health.StaleMisses++
		s.mu.Unlock()
		return nil, nil, false
	}
	if e.Key != key || e.Metrics == nil {
		s.quarantine(key)
		return nil, nil, false
	}
	return raw, &e, true
}

// GetRaw returns the raw on-disk document for a key, under the same
// validation, quarantine and staleness rules as Get. It is the read side
// of entry exchange between fabric peers (internal/sweepfabric): the
// document carries its own schema, architecture and key, so the receiver
// can re-validate with PutRaw or DecodeEntry.
func (s *Store) GetRaw(key string) ([]byte, bool) {
	raw, _, ok := s.readValidated(key)
	return raw, ok
}

// PutRaw stores a raw entry document under key after validating that it
// is a well-formed entry for exactly this key, this store's schema
// version and this architecture. Anything else is rejected with an error
// rather than written: a merge or a remote publish can never smuggle a
// stale or foreign result into a serving store.
func (s *Store) PutRaw(key string, doc []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("runcache: %q is not a content address", key)
	}
	var e entry
	if err := json.Unmarshal(doc, &e); err != nil {
		return fmt.Errorf("runcache: invalid entry document for %s: %w", key, err)
	}
	if e.Key != key {
		return fmt.Errorf("runcache: entry key %s does not match %s", e.Key, key)
	}
	if e.Schema != s.salt {
		return fmt.Errorf("runcache: entry schema %q does not match store schema %q", e.Schema, s.salt)
	}
	if e.GOARCH != runtime.GOARCH {
		return fmt.Errorf("runcache: entry arch %q does not match %q", e.GOARCH, runtime.GOARCH)
	}
	if e.Metrics == nil {
		return fmt.Errorf("runcache: entry %s carries no metrics", key)
	}
	return s.writeDoc(key, doc)
}

// DecodeEntry validates a raw entry document fetched from a peer —
// well-formed, keyed wantKey, current SchemaVersion, this architecture —
// and returns its metrics. It is the client-side twin of PutRaw for
// callers that consume remote entries without a local store.
func DecodeEntry(doc []byte, wantKey string) (*metrics.RunMetrics, error) {
	var e entry
	if err := json.Unmarshal(doc, &e); err != nil {
		return nil, fmt.Errorf("runcache: invalid entry document: %w", err)
	}
	if e.Key != wantKey {
		return nil, fmt.Errorf("runcache: entry key %s does not match %s", e.Key, wantKey)
	}
	if e.Schema != SchemaVersion {
		return nil, fmt.Errorf("runcache: entry schema %q does not match %q", e.Schema, SchemaVersion)
	}
	if e.GOARCH != runtime.GOARCH {
		return nil, fmt.Errorf("runcache: entry arch %q does not match %q", e.GOARCH, runtime.GOARCH)
	}
	if e.Metrics == nil {
		return nil, fmt.Errorf("runcache: entry %s carries no metrics", wantKey)
	}
	return e.Metrics, nil
}

// quarantine moves a corrupt entry aside to <dir>/quarantine/<key>.json:
// it stops being served (and stops tripping every future lookup of its
// cell) but is preserved for post-mortems rather than deleted. A failed
// move (read-only cache) counts as a degraded read instead — the lookup
// is still just a miss.
func (s *Store) quarantine(key string) {
	dst := filepath.Join(s.dir, quarantineDir, key+".json")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err == nil {
		if err := os.Rename(s.path(key), dst); err == nil {
			s.mu.Lock()
			s.health.Quarantined++
			s.mu.Unlock()
			return
		}
	}
	s.mu.Lock()
	s.health.DegradedReads++
	s.mu.Unlock()
}

// Health returns a snapshot of the store's degradation counters since
// Open. All zeros means every lookup was a clean hit or a clean miss.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health
}

// EntryPath reports where cfg's entry lives (or would live) on disk —
// the path warnings and post-mortems should name.
func (s *Store) EntryPath(cfg scenario.Config) (string, error) {
	key, err := KeySalted(cfg, s.salt)
	if err != nil {
		return "", err
	}
	return s.path(key), nil
}

// Put stores the metrics of one completed run under cfg's key. The write
// is atomic (temp file + rename into place), so concurrent writers of the
// same key and sweeps killed mid-write both leave a valid store.
func (s *Store) Put(cfg scenario.Config, m *metrics.RunMetrics) error {
	key, err := KeySalted(cfg, s.salt)
	if err != nil {
		return err
	}
	doc, err := json.MarshalIndent(entry{
		Schema:   s.salt,
		GOARCH:   runtime.GOARCH,
		Key:      key,
		Protocol: cfg.Protocol,
		Seed:     cfg.Seed,
		Metrics:  m,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	doc = append(doc, '\n')
	return s.writeDoc(key, doc)
}

// writeDoc atomically writes one entry document into the key's shard
// (temp file + rename), the shared write path of Put and PutRaw.
func (s *Store) writeDoc(key string, doc []byte) error {
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), key+".tmp*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	if _, err := tmp.Write(doc); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	return nil
}

// Len reports the number of live entries on disk (tests, status lines):
// quarantined corpses are not entries and are not counted. It walks the
// shard directories; cost is proportional to the cache size.
func (s *Store) Len() int {
	n := 0
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	for _, sh := range shards {
		if !sh.IsDir() || sh.Name() == quarantineDir {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if filepath.Ext(f.Name()) == ".json" {
				n++
			}
		}
	}
	return n
}

// Keys enumerates the content addresses of every live entry on disk, in
// sorted order (quarantined corpses and temp files excluded). It is the
// discovery side of pull-based sync: a peer lists keys, fetches the ones
// it lacks with GetRaw, and imports them with PutRaw.
func (s *Store) Keys() []string {
	var keys []string
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	for _, sh := range shards {
		if !sh.IsDir() || sh.Name() == quarantineDir {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if filepath.Ext(f.Name()) == ".json" {
				keys = append(keys, strings.TrimSuffix(f.Name(), ".json"))
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// Has reports whether a live entry file exists for key (no document
// validation — a cheap existence probe for merge planning; GetRaw
// validates). Malformed keys are simply absent, never paths.
func (s *Store) Has(key string) bool {
	if !ValidKey(key) {
		return false
	}
	_, err := os.Stat(s.path(key))
	return err == nil
}

// MergeFrom copies into s every entry present in src and absent here —
// the pull-based sync primitive behind distributed sweeps: because
// entries are content-addressed by their full configuration and the
// simulator is deterministic, merging two caches can never conflict,
// only union. Entries src refuses to serve (corrupt, stale schema,
// foreign architecture) are skipped and counted, never imported. The
// first import error aborts the merge with the counts so far.
func (s *Store) MergeFrom(src *Store) (added, skipped int, err error) {
	for _, key := range src.Keys() {
		if s.Has(key) {
			continue
		}
		raw, ok := src.GetRaw(key)
		if !ok {
			skipped++
			continue
		}
		if err := s.PutRaw(key, raw); err != nil {
			return added, skipped, err
		}
		added++
	}
	return added, skipped, nil
}
