// Package runcache is a content-addressed on-disk cache of simulation
// results, keyed by a canonical hash of the complete scenario.Config
// (which includes the seed) plus a code-version salt. The simulator is
// deterministic — identical configuration and seed always produce
// identical RunMetrics — so a cached result is not an approximation of a
// re-run, it IS the re-run. The experiment engine consults the cache
// before dispatching each sweep cell, which makes repeated sweeps nearly
// free and turns every completed run into a checkpoint: a killed sweep
// re-invoked with the same cache directory resumes from what is on disk.
//
// # Keying
//
// The key is SHA-256 over a canonical byte encoding of the configuration,
// produced by reflection over scenario.Config: every field — nested
// structs, slices, numeric and string leaves — is folded into the hash
// tagged with its path, so two configs hash equally iff they are equal
// field-for-field. Because the walk is reflective, a newly added Config
// field is automatically part of the key; there is no hand-maintained
// field list to forget to update (the field-sensitivity test in this
// package proves every field perturbs the hash). Fields of a kind the
// encoder does not understand (funcs, maps, channels, pointers) make Key
// fail loudly rather than silently dropping out of the key.
//
// SchemaVersion salts every key. Bump it whenever simulator behaviour
// changes (golden fixtures move), and every stale cache entry misses.
//
// # Layout
//
// Entries live at <dir>/<kk>/<key>.json, where kk is the first two hex
// digits of the key (a fan-out shard keeping directories small). Each
// entry is a JSON document carrying the schema version, the GOARCH it was
// produced on (float metrics are only bit-stable per architecture, exactly
// like the golden fixtures), the key, and the RunMetrics in the same
// encoding the golden fixtures use. Entries are written atomically
// (temp file + rename), so a sweep killed mid-write never leaves a
// half-entry behind — at worst the cell is recomputed.
//
// # Robustness
//
// The store never fails a sweep. A corrupt entry (truncated write on a
// dying disk, editor damage, bit rot) is quarantined: moved aside to
// <dir>/quarantine/ — preserved for post-mortems, never re-served, never
// re-tripped — and the cell recomputes. Entries from another simulator
// version or architecture are NOT corruption: they miss in place,
// untouched, for whoever owns them. Reads that fail for I/O reasons
// degrade to plain misses and are counted. Health reports all three
// counters so callers can surface a sick cache instead of silently
// recomputing forever.
package runcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"

	"mtsim/internal/metrics"
	"mtsim/internal/scenario"
)

// SchemaVersion is the code-version salt folded into every key. Bump it
// whenever a change alters simulation behaviour (the same commit that
// regenerates the golden fixtures), so stale entries can never be served.
const SchemaVersion = "mtsim-run/v3"

// Key returns the content address of a configuration: hex SHA-256 over
// SchemaVersion plus the canonical encoding of every field of cfg
// (the seed included). It errors on configurations containing fields the
// canonical encoder cannot represent.
func Key(cfg scenario.Config) (string, error) {
	return KeySalted(cfg, SchemaVersion)
}

// KeySalted is Key under a caller-chosen version salt (tests; parallel
// cache namespaces).
func KeySalted(cfg scenario.Config, salt string) (string, error) {
	h := sha256.New()
	writeString(h, salt)
	if err := hashValue(h, reflect.ValueOf(cfg), "Config"); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func writeString(h hash.Hash, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

func writeUint64(h hash.Hash, v uint64) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], v)
	h.Write(n[:])
}

// hashValue folds one value into the hash, tagged with its field path and
// kind so no two distinct configurations share an encoding.
func hashValue(h hash.Hash, v reflect.Value, path string) error {
	writeString(h, path)
	writeUint64(h, uint64(v.Kind()))
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			writeUint64(h, 1)
		} else {
			writeUint64(h, 0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		writeUint64(h, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		writeUint64(h, v.Uint())
	case reflect.Float32, reflect.Float64:
		writeUint64(h, math.Float64bits(v.Float()))
	case reflect.String:
		writeString(h, v.String())
	case reflect.Slice, reflect.Array:
		writeUint64(h, uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			if err := hashValue(h, v.Index(i), fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
	case reflect.Struct:
		t := v.Type()
		writeUint64(h, uint64(t.NumField()))
		for i := 0; i < t.NumField(); i++ {
			if err := hashValue(h, v.Field(i), path+"."+t.Field(i).Name); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("runcache: cannot canonically encode %s (kind %s) — "+
			"extend the encoder before adding such fields to scenario.Config", path, v.Kind())
	}
	return nil
}

// entry is the on-disk document. Metrics reuse the golden-fixture JSON
// encoding of metrics.RunMetrics; Schema/GOARCH/Key gate staleness.
type entry struct {
	Schema   string              `json:"schema"`
	GOARCH   string              `json:"goarch"`
	Key      string              `json:"key"`
	Protocol string              `json:"protocol"`
	Seed     int64               `json:"seed"`
	Metrics  *metrics.RunMetrics `json:"metrics"`
}

// quarantineDir is the subdirectory corrupt entries are moved into —
// deliberately not a two-hex-digit name, so it can never collide with a
// shard and Len/sweepOrphans skip it by name.
const quarantineDir = "quarantine"

// Health is a snapshot of a store's degradation counters. All zeros is
// a healthy cache; anything else is worth a warning line (the cache
// itself keeps working — misses recompute).
type Health struct {
	// Quarantined counts corrupt entries moved aside to the quarantine
	// directory (preserved for post-mortems, never served again).
	Quarantined int
	// DegradedReads counts lookups that failed for I/O reasons other
	// than absence (permissions, a dying disk) and were served as plain
	// misses.
	DegradedReads int
	// StaleMisses counts lookups that found a valid entry from another
	// schema version or architecture — not corruption, left in place.
	StaleMisses int
}

// Store is a cache rooted at one directory. All methods are safe for
// concurrent use by the sweep's worker goroutines: entries are immutable
// once written, writes are atomic renames, and the health counters are
// mutex-guarded.
type Store struct {
	dir  string
	salt string

	mu     sync.Mutex
	health Health
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*Store, error) {
	return OpenSalted(dir, SchemaVersion)
}

// OpenSalted opens a cache whose keys use the given version salt.
func OpenSalted(dir, salt string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	s := &Store{dir: dir, salt: salt}
	s.sweepOrphans()
	return s, nil
}

// sweepOrphans removes temp files left behind by sweeps killed mid-Put
// (the designed resume workflow), so repeated kill/resume cycles cannot
// litter the shards unboundedly. Any .tmp file predating this Open is
// dead by construction. In the rare cross-process race — another process
// mid-Put while we open the same cache — removing its temp file merely
// fails that one Put (counted, non-fatal), never corrupts an entry.
func (s *Store) sweepOrphans() {
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, sh := range shards {
		if !sh.IsDir() || sh.Name() == quarantineDir {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if !f.IsDir() && strings.Contains(f.Name(), ".tmp") {
				os.Remove(filepath.Join(s.dir, sh.Name(), f.Name()))
			}
		}
	}
}

// Dir returns the cache's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get returns the cached metrics for cfg, or (nil, false) on any miss:
// absent entry, unreadable or corrupt file, schema or architecture
// mismatch. A miss is never an error — the caller recomputes. Corrupt
// entries are quarantined on sight; I/O failures and stale-version hits
// are counted in Health.
func (s *Store) Get(cfg scenario.Config) (*metrics.RunMetrics, bool) {
	key, err := KeySalted(cfg, s.salt)
	if err != nil {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			// Read-only or erroring directory: degrade to pass-through —
			// the sweep recomputes, the counter tells the story.
			s.mu.Lock()
			s.health.DegradedReads++
			s.mu.Unlock()
		}
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		s.quarantine(key)
		return nil, false
	}
	if e.Schema != s.salt || e.GOARCH != runtime.GOARCH {
		// A valid entry from another simulator version or architecture —
		// not corruption; leave it in place for whoever owns it.
		s.mu.Lock()
		s.health.StaleMisses++
		s.mu.Unlock()
		return nil, false
	}
	if e.Key != key || e.Metrics == nil {
		s.quarantine(key)
		return nil, false
	}
	return e.Metrics, true
}

// quarantine moves a corrupt entry aside to <dir>/quarantine/<key>.json:
// it stops being served (and stops tripping every future lookup of its
// cell) but is preserved for post-mortems rather than deleted. A failed
// move (read-only cache) counts as a degraded read instead — the lookup
// is still just a miss.
func (s *Store) quarantine(key string) {
	dst := filepath.Join(s.dir, quarantineDir, key+".json")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err == nil {
		if err := os.Rename(s.path(key), dst); err == nil {
			s.mu.Lock()
			s.health.Quarantined++
			s.mu.Unlock()
			return
		}
	}
	s.mu.Lock()
	s.health.DegradedReads++
	s.mu.Unlock()
}

// Health returns a snapshot of the store's degradation counters since
// Open. All zeros means every lookup was a clean hit or a clean miss.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health
}

// EntryPath reports where cfg's entry lives (or would live) on disk —
// the path warnings and post-mortems should name.
func (s *Store) EntryPath(cfg scenario.Config) (string, error) {
	key, err := KeySalted(cfg, s.salt)
	if err != nil {
		return "", err
	}
	return s.path(key), nil
}

// Put stores the metrics of one completed run under cfg's key. The write
// is atomic (temp file + rename into place), so concurrent writers of the
// same key and sweeps killed mid-write both leave a valid store.
func (s *Store) Put(cfg scenario.Config, m *metrics.RunMetrics) error {
	key, err := KeySalted(cfg, s.salt)
	if err != nil {
		return err
	}
	doc, err := json.MarshalIndent(entry{
		Schema:   s.salt,
		GOARCH:   runtime.GOARCH,
		Key:      key,
		Protocol: cfg.Protocol,
		Seed:     cfg.Seed,
		Metrics:  m,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	doc = append(doc, '\n')
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), key+".tmp*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	if _, err := tmp.Write(doc); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	return nil
}

// Len reports the number of live entries on disk (tests, status lines):
// quarantined corpses are not entries and are not counted. It walks the
// shard directories; cost is proportional to the cache size.
func (s *Store) Len() int {
	n := 0
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	for _, sh := range shards {
		if !sh.IsDir() || sh.Name() == quarantineDir {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if filepath.Ext(f.Name()) == ".json" {
				n++
			}
		}
	}
	return n
}
