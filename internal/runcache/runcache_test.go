package runcache

import (
	"crypto/sha256"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/scenario"
	"mtsim/internal/sim"
)

func quickConfig() scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Nodes = 12
	cfg.Duration = 3 * sim.Second
	cfg.TCPStart = sim.Time(sim.Second)
	cfg.Seed = 11
	return cfg
}

func TestKeyDeterministicAndSeedSensitive(t *testing.T) {
	cfg := quickConfig()
	k1, err := Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("key not deterministic: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not hex sha256", k1)
	}
	cfg.Seed++
	k3, _ := Key(cfg)
	if k3 == k1 {
		t.Fatal("seed change did not change the key")
	}
	// The salt is part of the address: a behaviour-version bump must miss.
	k4, _ := KeySalted(quickConfig(), "mtsim-run/v999")
	if k4 == k1 {
		t.Fatal("salt change did not change the key")
	}
}

// mutate perturbs one leaf value in place and returns a human label, or ""
// if the kind is not a leaf (struct — recursed elsewhere).
func mutate(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1.5)
	case reflect.String:
		v.SetString(v.String() + "~mut")
	case reflect.Slice:
		// Appending one zero element changes the encoded length.
		v.Set(reflect.Append(v, reflect.New(v.Type().Elem()).Elem()))
	default:
		return false
	}
	return true
}

// leafPaths recursively enumerates every mutatable leaf of a struct value.
func leafPaths(v reflect.Value, path string, out *[]string) {
	if v.Kind() == reflect.Struct {
		for i := 0; i < v.NumField(); i++ {
			leafPaths(v.Field(i), path+"."+v.Type().Field(i).Name, out)
		}
		return
	}
	*out = append(*out, path)
}

// mutateAt walks to the leaf at the given dotted path and perturbs it.
func mutateAt(root reflect.Value, path string) bool {
	v := root
	for _, part := range strings.Split(path, ".")[1:] {
		v = v.FieldByName(part)
	}
	return mutate(v)
}

// TestEveryConfigFieldChangesKey is the exhaustive field-sensitivity
// guarantee: perturbing ANY leaf field of scenario.Config — including
// every nested protocol/MAC/TCP/adversary knob, present and future —
// must change the content address. Because the leaf enumeration is itself
// reflective, a newly added field shows up here automatically; if the
// canonical encoder cannot represent it, Key errors and this test fails,
// so no field can ever be silently omitted from the cache key.
func TestEveryConfigFieldChangesKey(t *testing.T) {
	base := quickConfig()
	baseKey, err := Key(base)
	if err != nil {
		t.Fatal(err)
	}

	var paths []string
	leafPaths(reflect.ValueOf(base), "Config", &paths)
	if len(paths) < 40 {
		t.Fatalf("only %d leaves enumerated — reflection walk is broken", len(paths))
	}

	for _, path := range paths {
		cfg := quickConfig()
		if !mutateAt(reflect.ValueOf(&cfg).Elem(), path) {
			t.Fatalf("leaf %s has a kind the test cannot mutate — extend mutate()", path)
		}
		k, err := Key(cfg)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if k == baseKey {
			t.Errorf("mutating %s did not change the key — field omitted from hash", path)
		}
	}
}

func TestSliceContentSensitivity(t *testing.T) {
	// Beyond length: element values must be keyed too.
	a := quickConfig()
	a.Flows = []scenario.FlowSpec{{Src: 0, Dst: 1}}
	b := quickConfig()
	b.Flows = []scenario.FlowSpec{{Src: 0, Dst: 2}}
	ka, _ := Key(a)
	kb, _ := Key(b)
	if ka == kb {
		t.Fatal("flow endpoints not keyed")
	}
	c := quickConfig()
	c.Placement = []geo.Point{{X: 1, Y: 2}}
	d := quickConfig()
	d.Placement = []geo.Point{{X: 1, Y: 3}}
	kc, _ := Key(c)
	kd, _ := Key(d)
	if kc == kd {
		t.Fatal("placement coordinates not keyed")
	}
}

// TestCachedMetricsByteIdentical is the cache-correctness contract: what
// comes back from the store must be byte-for-byte the metrics a fresh run
// produces, across every protocol (floats, maps, nested slices included).
func TestCachedMetricsByteIdentical(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, proto := range scenario.AllProtocols() {
		cfg := quickConfig()
		cfg.Protocol = proto
		fresh, err := scenario.RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := store.Get(cfg); ok {
			t.Fatalf("%s: phantom hit on empty cache", proto)
		}
		if err := store.Put(cfg, fresh); err != nil {
			t.Fatal(err)
		}
		cached, ok := store.Get(cfg)
		if !ok {
			t.Fatalf("%s: miss after put", proto)
		}
		want, _ := json.Marshal(fresh)
		got, _ := json.Marshal(cached)
		if string(want) != string(got) {
			t.Fatalf("%s: cached metrics not byte-identical\nfresh:  %s\ncached: %s",
				proto, want, got)
		}
	}
	if store.Len() != len(scenario.AllProtocols()) {
		t.Fatalf("store holds %d entries, want %d", store.Len(), len(scenario.AllProtocols()))
	}
}

func TestCorruptAndMismatchedEntriesMiss(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.Protocol = "MTS"
	m, err := scenario.RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(cfg, m); err != nil {
		t.Fatal(err)
	}
	key, _ := Key(cfg)
	path := filepath.Join(dir, key[:2], key+".json")

	// Truncated JSON: must miss, not error.
	if err := os.WriteFile(path, []byte("{\"schema\": \"mts"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(cfg); ok {
		t.Fatal("corrupt entry served as hit")
	}

	// Entry from a different schema version: must miss.
	other, err := OpenSalted(dir, "mtsim-run/v0-old")
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Put(cfg, m); err != nil {
		t.Fatal(err)
	}
	// other's Put landed under other's key, so store still misses...
	if _, ok := store.Get(cfg); ok {
		t.Fatal("cross-salt hit")
	}
	// ...and even a doc claiming store's path but the wrong schema misses.
	if err := store.Put(cfg, m); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.Replace(string(raw), SchemaVersion, "mtsim-run/v0-old", 1)
	if err := os.WriteFile(path, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(cfg); ok {
		t.Fatal("schema-mismatched entry served as hit")
	}
}

func TestUnsupportedFieldKindFailsLoudly(t *testing.T) {
	// The encoder must reject kinds it cannot canonically represent
	// instead of skipping them (a skipped field would silently alias
	// distinct configurations to one cache entry).
	type bad struct{ M map[string]int }
	h := reflect.ValueOf(bad{M: map[string]int{"x": 1}})
	err := hashValue(sha256.New(), h, "bad")
	if err == nil || !strings.Contains(err.Error(), "cannot canonically encode") {
		t.Fatalf("map field: err = %v", err)
	}
}

func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(shard, "abcdef.tmp123")
	if err := os.WriteFile(orphan, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(shard, "abcdef.json")
	if err := os.WriteFile(keep, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("orphaned temp file survived Open")
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatal("real entry removed by orphan sweep")
	}
}

// TestCorruptEntryQuarantined: a corrupt entry is moved aside on first
// sight — preserved under quarantine/ for post-mortems, excluded from
// Len, never re-tripped — and the slot is immediately writable again.
func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.Protocol = "MTS"
	m, err := scenario.RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(cfg, m); err != nil {
		t.Fatal(err)
	}
	key, _ := Key(cfg)
	path := filepath.Join(dir, key[:2], key+".json")
	garbage := []byte("{\"schema\": truncated mid-wr")
	if err := os.WriteFile(path, garbage, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := store.Get(cfg); ok {
		t.Fatal("corrupt entry served as hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry left in its shard after quarantine")
	}
	corpse := filepath.Join(dir, "quarantine", key+".json")
	kept, err := os.ReadFile(corpse)
	if err != nil {
		t.Fatalf("quarantined corpse missing: %v", err)
	}
	if string(kept) != string(garbage) {
		t.Fatal("quarantine altered the corrupt bytes")
	}
	if h := store.Health(); h.Quarantined != 1 || h.DegradedReads != 0 {
		t.Fatalf("health after quarantine: %+v", h)
	}
	if store.Len() != 0 {
		t.Fatalf("Len counts the quarantined corpse: %d", store.Len())
	}

	// The slot recovers: a fresh Put hits again, the corpse stays put.
	if _, ok := store.Get(cfg); ok {
		t.Fatal("phantom hit after quarantine")
	}
	if err := store.Put(cfg, m); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(cfg); !ok {
		t.Fatal("miss after re-put over a quarantined slot")
	}
	if store.Len() != 1 {
		t.Fatalf("Len = %d after re-put, want 1", store.Len())
	}
	if h := store.Health(); h.Quarantined != 1 {
		t.Fatalf("quarantine count moved without a new corpse: %+v", h)
	}
}

// TestStaleEntryLeftInPlace: entries from another schema version or
// architecture are valid data owned by someone else — they miss without
// being quarantined or touched.
func TestStaleEntryLeftInPlace(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.Protocol = "MTS"
	m, err := scenario.RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(cfg, m); err != nil {
		t.Fatal(err)
	}
	key, _ := Key(cfg)
	path := filepath.Join(dir, key[:2], key+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, doctor := range []func(string) string{
		func(s string) string { return strings.Replace(s, SchemaVersion, "mtsim-run/v0-old", 1) },
		func(s string) string { return strings.Replace(s, runtime.GOARCH, "pdp11", 1) },
	} {
		if err := os.WriteFile(path, []byte(doctor(string(raw))), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := store.Get(cfg); ok {
			t.Fatal("stale entry served as hit")
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("stale entry was moved or removed: %v", err)
		}
	}
	h := store.Health()
	if h.Quarantined != 0 {
		t.Fatalf("stale entries quarantined: %+v", h)
	}
	if h.StaleMisses != 2 {
		t.Fatalf("StaleMisses = %d, want 2", h.StaleMisses)
	}
}

// TestDegradedReadCounted: a lookup that fails for I/O reasons (here the
// entry path is a directory, so reads error without involving
// permissions) degrades to a plain miss and is counted, never fatal.
func TestDegradedReadCounted(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	key, _ := Key(cfg)
	if err := os.MkdirAll(filepath.Join(dir, key[:2], key+".json"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(cfg); ok {
		t.Fatal("unreadable entry served as hit")
	}
	if h := store.Health(); h.DegradedReads != 1 || h.Quarantined != 0 {
		t.Fatalf("health after erroring read: %+v", h)
	}
	// Plain absence is a clean miss, not degradation.
	cfg2 := quickConfig()
	cfg2.Seed = 999
	if _, ok := store.Get(cfg2); ok {
		t.Fatal("phantom hit")
	}
	if h := store.Health(); h.DegradedReads != 1 {
		t.Fatalf("clean miss counted as degraded: %+v", h)
	}
}

// TestEntryPathMatchesLayout pins EntryPath to the on-disk layout Get
// and Put use.
func TestEntryPathMatchesLayout(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	key, _ := Key(cfg)
	p, err := store.EntryPath(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, key[:2], key+".json"); p != want {
		t.Fatalf("EntryPath %q, want %q", p, want)
	}
}
