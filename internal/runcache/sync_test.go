package runcache

// Tests for the entry-exchange surface behind the distributed sweep
// fabric: key enumeration, raw entry read/write with validation, and the
// pull-based merge helper. The invariant under test everywhere: a store
// can only ever import entries it would itself have produced — same key,
// same schema version, same architecture — so merged results are exactly
// as trustworthy as locally computed ones.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"mtsim/internal/scenario"
)

// fillStore simulates n cheap cells into a fresh store and returns their
// keys (sorted) alongside the store.
func fillStore(t *testing.T, dir string, seeds ...int64) (*Store, []string) {
	t.Helper()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, seed := range seeds {
		cfg := quickConfig()
		cfg.Seed = seed
		m, err := scenario.RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(cfg, m); err != nil {
			t.Fatal(err)
		}
		k, err := Key(cfg)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return store, keys
}

func TestKeysEnumeratesLiveEntries(t *testing.T) {
	store, want := fillStore(t, t.TempDir(), 1, 2, 3)
	got := store.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() returned %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys()[%d] = %s, want %s (sorted order)", i, got[i], want[i])
		}
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("Keys() not sorted")
	}
	// Quarantined corpses and temp litter are not entries.
	if err := os.MkdirAll(store.Dir()+"/quarantine", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Dir()+"/quarantine/deadbeef.json", []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n := len(store.Keys()); n != len(want) {
		t.Fatalf("quarantine leaked into Keys(): %d entries", n)
	}
}

func TestGetRawRoundTripsThroughPutRaw(t *testing.T) {
	src, keys := fillStore(t, t.TempDir(), 7)
	key := keys[0]
	raw, ok := src.GetRaw(key)
	if !ok {
		t.Fatal("GetRaw missed a live entry")
	}
	// DecodeEntry validates the document client-side.
	m, err := DecodeEntry(raw, key)
	if err != nil {
		t.Fatalf("DecodeEntry rejected a live entry: %v", err)
	}
	cfg := quickConfig()
	cfg.Seed = 7
	direct, _ := src.Get(cfg)
	w, _ := json.Marshal(direct)
	g, _ := json.Marshal(m)
	if string(w) != string(g) {
		t.Fatal("DecodeEntry metrics differ from Get metrics")
	}
	// And a second store imports it byte-identically.
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.PutRaw(key, raw); err != nil {
		t.Fatalf("PutRaw rejected a valid entry: %v", err)
	}
	got, ok := dst.Get(cfg)
	if !ok {
		t.Fatal("imported entry misses")
	}
	g2, _ := json.Marshal(got)
	if string(w) != string(g2) {
		t.Fatal("imported metrics not byte-identical")
	}
}

func TestPutRawRejectsForeignEntries(t *testing.T) {
	src, keys := fillStore(t, t.TempDir(), 9)
	key := keys[0]
	raw, _ := src.GetRaw(key)
	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"corrupt":   raw[:len(raw)/2],
		"wrong key": raw, // imported under a different key below
	}
	if err := dst.PutRaw(key, cases["corrupt"]); err == nil {
		t.Fatal("PutRaw accepted a torn document")
	}
	other := strings.Repeat("ab", 32)
	if err := dst.PutRaw(other, cases["wrong key"]); err == nil {
		t.Fatal("PutRaw accepted an entry under a mismatched key")
	}
	// Stale schema: rewrite the document under another version.
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatal(err)
	}
	e.Schema = "mtsim-run/v999"
	stale, _ := json.Marshal(e)
	if err := dst.PutRaw(key, stale); err == nil {
		t.Fatal("PutRaw accepted a stale-schema entry")
	}
	e.Schema = SchemaVersion
	e.GOARCH = "not-" + runtime.GOARCH
	foreign, _ := json.Marshal(e)
	if err := dst.PutRaw(key, foreign); err == nil {
		t.Fatal("PutRaw accepted a foreign-architecture entry")
	}
	if dst.Len() != 0 {
		t.Fatalf("rejected imports still left %d entries on disk", dst.Len())
	}
}

func TestMergeFromUnionsStores(t *testing.T) {
	a, _ := fillStore(t, t.TempDir(), 1, 2)
	b, _ := fillStore(t, t.TempDir(), 2, 3)
	added, skipped, err := a.MergeFrom(b)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || skipped != 0 {
		t.Fatalf("merge added %d skipped %d, want 1/0 (only seed 3 was new)", added, skipped)
	}
	if a.Len() != 3 {
		t.Fatalf("merged store has %d entries, want 3", a.Len())
	}
	// Every merged cell now hits in a.
	for _, seed := range []int64{1, 2, 3} {
		cfg := quickConfig()
		cfg.Seed = seed
		if _, ok := a.Get(cfg); !ok {
			t.Fatalf("seed %d misses after merge", seed)
		}
	}
	// Merging again is a no-op: content addressing makes sync idempotent.
	added, skipped, err = a.MergeFrom(b)
	if err != nil || added != 0 || skipped != 0 {
		t.Fatalf("re-merge not a no-op: added=%d skipped=%d err=%v", added, skipped, err)
	}
	// A torn entry in the source is skipped and counted, never imported.
	keysB := b.Keys()
	tornKey := keysB[0]
	raw, _ := b.GetRaw(tornKey)
	if err := os.WriteFile(b.path(tornKey), raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	added, skipped, err = c.MergeFrom(b)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || added != len(keysB)-1 {
		t.Fatalf("torn source entry: added=%d skipped=%d, want %d/1", added, skipped, len(keysB)-1)
	}
}

// TestMalformedKeysNeverReachTheFilesystem pins the fabric-facing trust
// boundary: keys arrive over HTTP from anyone, so anything that is not a
// 64-digit lowercase-hex content address must be a plain miss — never
// sliced (a sub-2-byte key used to panic in path), never joined into a
// path (traversal), and above all never quarantined: readValidated moves
// invalid entries aside with os.Rename, which for a traversal key would
// move an arbitrary reachable *.json file out from under its owner.
func TestMalformedKeysNeverReachTheFilesystem(t *testing.T) {
	parent := t.TempDir()
	store, err := Open(filepath.Join(parent, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	// A victim outside the cache directory whose content fails entry
	// validation — exactly the file the pre-fix quarantine would move.
	victim := filepath.Join(parent, "victim.json")
	if err := os.WriteFile(victim, []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	// filepath.Join(dir, key[:2], key+".json") for this key resolves to
	// parent/victim.json — one level above the cache root.
	traversal := "zz/../../../victim"
	for _, key := range []string{traversal, "", "a", "zz", strings.Repeat("A", 64), strings.Repeat("g", 64)} {
		if store.Has(key) {
			t.Fatalf("Has(%q) = true for a malformed key", key)
		}
		if _, ok := store.GetRaw(key); ok {
			t.Fatalf("GetRaw(%q) served a malformed key", key)
		}
		if _, _, ok := store.readValidated(key); ok {
			t.Fatalf("readValidated(%q) accepted a malformed key", key)
		}
	}
	// The victim was neither served nor quarantined.
	if _, err := os.Stat(victim); err != nil {
		t.Fatalf("victim file disturbed by a traversal lookup: %v", err)
	}
	if _, err := os.Stat(filepath.Join(store.Dir(), quarantineDir)); !os.IsNotExist(err) {
		t.Fatal("a malformed key created the quarantine directory")
	}
	// The write side refuses malformed keys before touching the document.
	if err := store.PutRaw(traversal, []byte(`{}`)); err == nil {
		t.Fatal("PutRaw accepted a traversal key")
	}
	// And real addresses still pass the gate.
	real, err := Key(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !ValidKey(real) {
		t.Fatalf("ValidKey rejected a genuine content address %q", real)
	}
}
