package sweepfabric

// HTTP face of the Board plus the warm query path. The figure endpoint
// is the fabric's reason to exist: it enqueues the figure's grid, waits
// for the fleet to fill the store, then aggregates with the ordinary
// Sweep.Run — all cache hits, byte-identical to a single-process sweep —
// and memoises the rendered text, so a warm re-query is a map lookup.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mtsim/internal/experiment"
	"mtsim/internal/metrics"
	"mtsim/internal/runcache"
	"mtsim/internal/scenario"
	"mtsim/internal/sim"
)

// Server serves the fabric protocol over HTTP: lease endpoints for
// workers, enqueue/wait/entry endpoints for sweep clients, figure
// queries for humans, and health/stats for operators.
type Server struct {
	board *Board
	mux   *http.ServeMux

	// Base is the figure queries' base configuration. Zero-value means
	// scenario.DefaultConfig.
	Base scenario.Config
	// QueryTimeout bounds how long a cold figure query waits for the
	// fleet before returning 503. Zero means DefaultQueryTimeout.
	QueryTimeout time.Duration

	mu       sync.Mutex
	rendered map[string]renderedQuery
	qstats   QueryStats
}

// DefaultQueryTimeout bounds cold figure queries.
const DefaultQueryTimeout = 5 * time.Minute

// QueryStats counts the figure endpoint's activity.
type QueryStats struct {
	Queries    int `json:"queries"`     // figure requests answered 200
	WarmHits   int `json:"warm_hits"`   // served from the rendered-query memo
	StoreOnly  int `json:"store_only"`  // aggregated from the store, zero cells simulated
	ColdCells  int `json:"cold_cells"`  // cells a query had to push through the fleet
	InlineRuns int `json:"inline_runs"` // cells the aggregation pass simulated itself (fallback)
}

type renderedQuery struct {
	body   string
	format string
}

// NewServer wraps a board in the fabric's HTTP API.
func NewServer(b *Board) *Server {
	s := &Server{
		board:    b,
		mux:      http.NewServeMux(),
		rendered: make(map[string]renderedQuery),
	}
	s.mux.HandleFunc("POST /v1/lease", s.handleLease)
	s.mux.HandleFunc("POST /v1/complete", s.handleComplete)
	s.mux.HandleFunc("POST /v1/fail", s.handleFail)
	s.mux.HandleFunc("POST /v1/enqueue", s.handleEnqueue)
	s.mux.HandleFunc("POST /v1/wait", s.handleWait)
	s.mux.HandleFunc("GET /v1/keys", s.handleKeys)
	s.mux.HandleFunc("GET /v1/entry", s.handleEntry)
	s.mux.HandleFunc("GET /v1/figure", s.handleFigure)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Wire bodies for the POST endpoints.
type leaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

type completeRequest struct {
	Worker  string              `json:"worker"`
	LeaseID int64               `json:"lease_id"`
	Cell    experiment.CellJob  `json:"cell"`
	Metrics *metrics.RunMetrics `json:"metrics"`
	Cached  bool                `json:"cached"`
}

type failRequest struct {
	Worker  string             `json:"worker"`
	LeaseID int64              `json:"lease_id"`
	Cell    experiment.CellJob `json:"cell"`
	Error   string             `json:"error"`
}

type enqueueRequest struct {
	Jobs []experiment.CellJob `json:"jobs"`
}

type waitRequest struct {
	Keys      []string `json:"keys"`
	TimeoutMS int64    `json:"timeout_ms"`
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	grant, err := s.board.Lease(req.Worker, req.Max)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, grant)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Metrics == nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("complete without metrics"))
		return
	}
	if err := s.board.Complete(req.Worker, req.LeaseID, req.Cell, req.Metrics, req.Cached); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	var req failRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := s.board.Fail(req.Worker, req.LeaseID, req.Cell, req.Error); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	var req enqueueRequest
	if !readJSON(w, r, &req) {
		return
	}
	sum, err := s.board.Enqueue(req.Jobs)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

func (s *Server) handleWait(w http.ResponseWriter, r *http.Request) {
	var req waitRequest
	if !readJSON(w, r, &req) {
		return
	}
	for _, key := range req.Keys {
		if !runcache.ValidKey(key) {
			// A malformed key can never resolve — waiting on it would
			// block until timeout for a request that is simply wrong.
			httpError(w, http.StatusBadRequest, fmt.Errorf("%q is not a content address", key))
			return
		}
	}
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = DefaultQueryTimeout
	}
	st, err := s.board.WaitFor(r.Context().Done(), req.Keys, timeout)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleKeys(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"keys": s.board.Store().Keys()})
}

func (s *Server) handleEntry(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing key parameter"))
		return
	}
	if !runcache.ValidKey(key) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("%q is not a content address", key))
		return
	}
	doc, ok := s.board.Store().GetRaw(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no entry for key %s", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc) //nolint:errcheck
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	q := s.qstats
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Board   BoardStats      `json:"board"`
		Cache   runcache.Health `json:"cache_health"`
		Entries int             `json:"cache_entries"`
		Queries QueryStats      `json:"queries"`
	}{s.board.Stats(), s.board.Store().Health(), s.board.Store().Len(), q})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"entries": s.board.Store().Len(),
	})
}

// queryKey canonicalises a figure query's parameters so the rendered
// memo is insensitive to parameter order.
func queryKey(q url.Values) string {
	keys := make([]string, 0, len(q))
	for k := range q {
		if k == "timeout" {
			continue // how long to wait doesn't change what's computed
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		vs := append([]string(nil), q[k]...)
		sort.Strings(vs)
		for _, v := range vs {
			// Escape both sides so the separators are unambiguous: a
			// value containing '=' or '&' must not collide with a
			// different query that spells the same bytes structurally.
			b.WriteString(url.QueryEscape(k))
			b.WriteByte('=')
			b.WriteString(url.QueryEscape(v))
			b.WriteByte('&')
		}
	}
	return b.String()
}

// sweepFromQuery builds the aggregation sweep a figure query describes.
// The paper grid is the default; protocols, speeds, reps, seedbase,
// nodes and duration (seconds) override it.
func (s *Server) sweepFromQuery(q url.Values) (experiment.Sweep, error) {
	base := s.Base
	if base.Nodes == 0 {
		base = scenario.DefaultConfig()
	}
	sweep := experiment.PaperSweep(base)
	if v := q.Get("protocols"); v != "" {
		sweep.Protocols = strings.Split(v, ",")
	}
	if v := q.Get("speeds"); v != "" {
		var speeds []float64
		for _, part := range strings.Split(v, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return sweep, fmt.Errorf("bad speed %q: %w", part, err)
			}
			speeds = append(speeds, f)
		}
		sweep.Speeds = speeds
	}
	if v := q.Get("reps"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return sweep, fmt.Errorf("bad reps %q", v)
		}
		sweep.Reps = n
	}
	if v := q.Get("seedbase"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return sweep, fmt.Errorf("bad seedbase %q", v)
		}
		sweep.SeedBase = n
	}
	if v := q.Get("nodes"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			return sweep, fmt.Errorf("bad nodes %q", v)
		}
		sweep.Base.Nodes = n
	}
	if v := q.Get("duration"); v != "" {
		sec, err := strconv.ParseFloat(v, 64)
		if err != nil || sec <= 0 {
			return sweep, fmt.Errorf("bad duration %q (seconds)", v)
		}
		sweep.Base.Duration = sim.Seconds(sec)
	}
	if v := q.Get("tcpstart"); v != "" {
		sec, err := strconv.ParseFloat(v, 64)
		if err != nil || sec < 0 {
			return sweep, fmt.Errorf("bad tcpstart %q (seconds)", v)
		}
		sweep.Base.TCPStart = sim.Time(sim.Seconds(sec))
	}
	return sweep, nil
}

// handleFigure answers a figure/table/CSV query. Cold cells are pushed
// through the board for the worker fleet; the final aggregation is the
// ordinary Sweep.Run over the shared store, so the rendered bytes are
// identical to a single-process sweep's. Headers:
//
//	X-Sweepd-Query:     warm | rendered
//	X-Sweepd-Cached:    cells served from the store without simulation
//	X-Sweepd-Simulated: cells the fleet (or, as fallback, the
//	                    aggregation pass itself) had to simulate
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	figID := q.Get("fig")
	fig, ok := experiment.FigureByID(figID)
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown figure %q (try fig5..fig11 or the adversary/countermeasure figure IDs)", figID))
		return
	}
	format := q.Get("format")
	if format == "" {
		format = "table"
	}
	if format != "table" && format != "csv" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (table or csv)", format))
		return
	}
	qk := queryKey(q)
	s.mu.Lock()
	if rq, ok := s.rendered[qk]; ok {
		s.qstats.Queries++
		s.qstats.WarmHits++
		s.mu.Unlock()
		w.Header().Set("X-Sweepd-Query", "warm")
		w.Header().Set("X-Sweepd-Cached", "all")
		w.Header().Set("X-Sweepd-Simulated", "0")
		w.Header().Set("Content-Type", contentType(rq.format))
		w.Write([]byte(rq.body)) //nolint:errcheck
		return
	}
	s.mu.Unlock()

	sweep, err := s.sweepFromQuery(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	timeout := s.QueryTimeout
	if timeout <= 0 {
		timeout = DefaultQueryTimeout
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q: %w", v, err))
			return
		}
		timeout = d
	}

	jobs := sweep.Jobs()
	sum, err := s.board.Enqueue(jobs)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	cold := sum.Queued + sum.AlreadyPending
	if cold > 0 {
		st, err := s.board.WaitFor(r.Context().Done(), sum.Keys, timeout)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		if len(st.Failed) > 0 {
			writeJSON(w, http.StatusBadGateway, map[string]any{
				"error":  fmt.Sprintf("%d cells failed permanently", len(st.Failed)),
				"failed": st.Failed,
			})
			return
		}
		if st.Remaining > 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error":   fmt.Sprintf("%d cells still cold after %s — are workers connected?", st.Remaining, timeout),
				"pending": st.Remaining,
			})
			return
		}
	}

	// Aggregate through the engine itself: with every cell in the store
	// this is pure cache replay, byte-identical to a local sweep. A
	// miss (e.g. an entry quarantined between wait and read) degrades
	// to inline simulation rather than an error.
	sweep.Cache = s.board.Store()
	res, err := sweep.Run()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	var body string
	if format == "csv" {
		body = res.CSV(fig)
	} else {
		body = res.Table(fig)
	}

	s.mu.Lock()
	s.rendered[qk] = renderedQuery{body: body, format: format}
	s.qstats.Queries++
	s.qstats.ColdCells += cold
	s.qstats.InlineRuns += res.CacheMisses
	if cold == 0 && res.CacheMisses == 0 {
		s.qstats.StoreOnly++
	}
	s.mu.Unlock()

	w.Header().Set("X-Sweepd-Query", "rendered")
	w.Header().Set("X-Sweepd-Cached", strconv.Itoa(res.CacheHits))
	w.Header().Set("X-Sweepd-Simulated", strconv.Itoa(cold+res.CacheMisses))
	w.Header().Set("Content-Type", contentType(format))
	w.Write([]byte(body)) //nolint:errcheck
}

func contentType(format string) string {
	if format == "csv" {
		return "text/csv; charset=utf-8"
	}
	return "text/plain; charset=utf-8"
}
