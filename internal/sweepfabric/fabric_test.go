package sweepfabric

// The fabric's core contract under test: a sweep sharded across workers
// over HTTP reproduces a single-process Sweep.Run byte-for-byte, with
// crash tolerance (dead worker → lease expiry → re-lease → cache hit)
// and a warm query path that simulates nothing.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mtsim/internal/experiment"
	"mtsim/internal/metrics"
	"mtsim/internal/runcache"
	"mtsim/internal/scenario"
	"mtsim/internal/sim"
)

func quickBase() scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Nodes = 20
	cfg.Duration = 5 * sim.Second
	cfg.TCPStart = sim.Time(500 * sim.Millisecond)
	return cfg
}

func quickSweep() experiment.Sweep {
	return experiment.Sweep{
		Base:      quickBase(),
		Protocols: []string{"AODV", "MTS"},
		Speeds:    []float64{2, 10},
		Reps:      2,
		SeedBase:  5,
	}
}

// renderAll renders every paper figure as table+CSV — the byte-equality
// oracle used across these tests.
func renderAll(res *experiment.Result) string {
	var out string
	for _, fig := range experiment.PaperFigures() {
		out += res.Table(fig) + "\n" + res.CSV(fig) + "\n"
	}
	return out
}

// singleProcess runs the reference sweep the classic way.
func singleProcess(t *testing.T, s experiment.Sweep) string {
	t.Helper()
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Cache = store
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return renderAll(res)
}

// TestFabricSweepByteIdenticalOverHTTP shards the sweep across two
// workers talking to the coordinator over real HTTP, then aggregates
// through a tiered remote cache — and the rendered figures must be
// byte-identical to the single-process run.
func TestFabricSweepByteIdenticalOverHTTP(t *testing.T) {
	s := quickSweep()
	want := singleProcess(t, s)

	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	board := NewBoard(store)
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()
	client := NewClient(srv.URL)

	jobs := s.Jobs()
	sum, err := client.Enqueue(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Queued != len(jobs) {
		t.Fatalf("enqueued %d of %d jobs", sum.Queued, len(jobs))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &Worker{
			Coordinator: NewClient(srv.URL),
			Name:        fmt.Sprintf("w%d", i),
			Batch:       2,
			Poll:        10 * time.Millisecond,
			IdleExit:    300 * time.Millisecond,
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}

	st, err := client.Wait(sum.Keys, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.Remaining != 0 || len(st.Failed) != 0 {
		t.Fatalf("wait ended with %d remaining, %d failed", st.Remaining, len(st.Failed))
	}
	wg.Wait()

	// Aggregate client-side through the tiered cache: every cell is a
	// remote hit, zero local simulation.
	local, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Cache = &TieredCache{Local: local, Remote: &RemoteCache{Client: client}}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != 0 {
		t.Fatalf("fabric aggregation simulated %d cells locally", res.CacheMisses)
	}
	if got := renderAll(res); got != want {
		t.Fatalf("fabric sweep diverged from single-process run:\n--- fabric ---\n%s\n--- single ---\n%s", got, want)
	}

	// The remote hits were backfilled into the local tier: a rerun
	// touches only local disk.
	s2 := quickSweep()
	s2.Cache = local
	res2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheMisses != 0 {
		t.Fatalf("local tier missing %d backfilled cells", res2.CacheMisses)
	}
	if got := renderAll(res2); got != want {
		t.Fatal("local-tier replay diverged")
	}

	stats := board.Stats()
	if stats.CellsDone != len(jobs) {
		t.Fatalf("board counted %d done cells, want %d", stats.CellsDone, len(jobs))
	}
	if len(stats.Workers) == 0 {
		t.Fatal("board kept no per-worker stats")
	}
}

// TestDeadWorkerLeaseExpiresAndResumes: a worker claims cells and dies
// without reporting. Its lease expires (driven by an injected clock)
// and a live worker finishes the grid; the aggregates are byte-identical
// to the single-process run.
func TestDeadWorkerLeaseExpiresAndResumes(t *testing.T) {
	s := quickSweep()
	want := singleProcess(t, s)

	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	board := NewBoard(store)
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	board.Now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	board.TTL = time.Minute

	jobs := s.Jobs()
	sum, err := board.Enqueue(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker claims a batch and vanishes.
	grant, err := board.Lease("doomed", 3)
	if err != nil {
		t.Fatal(err)
	}
	if grant.Status != StatusLease || len(grant.Cells) != 3 {
		t.Fatalf("doomed worker got %+v", grant.Status)
	}

	// Before the TTL passes, those cells are invisible to other workers
	// once the rest of the queue drains — drain it now.
	live := &Worker{
		Coordinator: board,
		Name:        "live",
		Batch:       4,
		Poll:        5 * time.Millisecond,
		IdleExit:    100 * time.Millisecond,
	}
	if err := live.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, _ := board.WaitFor(nil, sum.Keys, 10*time.Millisecond)
	if st.Remaining != len(grant.Cells) {
		t.Fatalf("%d cells remaining while the dead worker's lease is live, want %d", st.Remaining, len(grant.Cells))
	}

	// Advance past the TTL: the lease expires, the cells requeue, and a
	// second pass by the live worker completes the grid.
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if err := live.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err = board.WaitFor(nil, sum.Keys, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Remaining != 0 || len(st.Failed) != 0 {
		t.Fatalf("grid not recovered: %d remaining, %d failed", st.Remaining, len(st.Failed))
	}
	if stats := board.Stats(); stats.LeasesExpired == 0 {
		t.Fatal("no lease expired — the test exercised nothing")
	}

	s.Cache = store
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != 0 {
		t.Fatalf("recovered grid still missing %d cells", res.CacheMisses)
	}
	if got := renderAll(res); got != want {
		t.Fatal("post-crash aggregates diverged from single-process run")
	}
}

// TestBoardFailsCellAfterAttemptBudget: a cell that fails on every
// lease is requeued until the board's attempt budget is spent, then
// surfaces as a permanent failure in WaitFor.
func TestBoardFailsCellAfterAttemptBudget(t *testing.T) {
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	board := NewBoard(store)
	board.MaxAttempts = 2

	s := quickSweep()
	jobs := s.Jobs()[:1]
	sum, err := board.Enqueue(jobs)
	if err != nil {
		t.Fatal(err)
	}
	poison := &Worker{
		Coordinator: board,
		Name:        "poison",
		Poll:        time.Millisecond,
		IdleExit:    50 * time.Millisecond,
		Exec: experiment.Executor{
			Runner: func(ctx *scenario.Context, cfg scenario.Config, w experiment.Watchdog) (*metrics.RunMetrics, error) {
				return nil, errors.New("injected: cell always fails")
			},
		},
	}
	if err := poison.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err := board.WaitFor(nil, sum.Keys, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Failed) != 1 {
		t.Fatalf("wait reported %d failures, want 1", len(st.Failed))
	}
	if st.Failed[0].Attempts != 2 {
		t.Fatalf("cell consumed %d board attempts, want 2", st.Failed[0].Attempts)
	}
	stats := board.Stats()
	if stats.CellsFailed != 1 || stats.Requeues != 1 {
		t.Fatalf("stats = %+v, want 1 failed / 1 requeue", stats)
	}
	// A later worker with a healthy runner cannot resurrect it without
	// re-enqueueing — the board answers StatusDone (nothing leasable).
	grant, err := board.Lease("late", 1)
	if err != nil {
		t.Fatal(err)
	}
	if grant.Status != StatusDone {
		t.Fatalf("failed cell still leasable: %+v", grant)
	}
}

// TestFigureQueryWarmPath: the first figure query pushes the grid
// through local workers; the second is served from the rendered memo
// without touching the engine at all.
func TestFigureQueryWarmPath(t *testing.T) {
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	board := NewBoard(store)
	fs := NewServer(board)
	fs.Base = quickBase()
	srv := httptest.NewServer(fs)
	defer srv.Close()

	// A resident worker fleet, as `sweepd serve -local-workers` runs.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{Coordinator: board, Name: "resident", Parallel: 2, Batch: 2, Poll: 5 * time.Millisecond}
	go w.Run(ctx)

	url := srv.URL + "/v1/figure?fig=fig5&protocols=AODV,MTS&speeds=2,10&reps=2&seedbase=5"
	get := func() (*http.Response, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, cold := get()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold query: HTTP %d: %s", resp.StatusCode, cold)
	}
	if resp.Header.Get("X-Sweepd-Query") != "rendered" {
		t.Fatalf("cold query header %q", resp.Header.Get("X-Sweepd-Query"))
	}
	if resp.Header.Get("X-Sweepd-Simulated") == "0" {
		t.Fatal("cold query claims zero simulated cells")
	}

	resp, warm := get()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm query: HTTP %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Sweepd-Query") != "warm" {
		t.Fatalf("warm query not served from memo: %q", resp.Header.Get("X-Sweepd-Query"))
	}
	if resp.Header.Get("X-Sweepd-Simulated") != "0" {
		t.Fatalf("warm query simulated %s cells", resp.Header.Get("X-Sweepd-Simulated"))
	}
	if warm != cold {
		t.Fatal("warm and cold renders differ")
	}

	// And the oracle: the served table is byte-identical to a local
	// sweep's render of fig5.
	s := quickSweep()
	ref, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Cache = ref
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	fig, _ := experiment.FigureByID("fig5")
	if want := res.Table(fig); warm != want {
		t.Fatalf("served table diverged:\n--- served ---\n%s\n--- local ---\n%s", warm, want)
	}

	// Unknown figure IDs are a 400 with guidance, not a silent sweep.
	resp2, err := http.Get(srv.URL + "/v1/figure?fig=fig12")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body) //nolint:errcheck
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown figure: HTTP %d, want 400", resp2.StatusCode)
	}
}

// BenchmarkWarmFigureQuery measures the memoised query path — the
// number PERFORMANCE.md's "Sweep fabric" section reports.
func BenchmarkWarmFigureQuery(b *testing.B) {
	store, err := runcache.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	board := NewBoard(store)
	fs := NewServer(board)
	fs.Base = quickBase()
	srv := httptest.NewServer(fs)
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{Coordinator: board, Name: "resident", Parallel: 2, Batch: 2, Poll: 5 * time.Millisecond}
	go w.Run(ctx)

	url := srv.URL + "/v1/figure?fig=fig5&protocols=AODV,MTS&speeds=2,10&reps=2&seedbase=5"
	warm := func() *http.Response {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp
	}
	if resp := warm(); resp.StatusCode != http.StatusOK {
		b.Fatalf("cold fill failed: HTTP %d", resp.StatusCode)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := warm(); resp.Header.Get("X-Sweepd-Query") != "warm" {
			b.Fatal("query fell off the warm path")
		}
	}
}
