// Package sweepfabric distributes a parameter sweep across processes
// and hosts: a coordinator Board partitions the sweep's cell list into
// time-bounded leases, workers claim leases (in-process or over HTTP),
// simulate each cell through the engine's fault-tolerant Executor, and
// publish results into a shared content-addressed runcache.Store.
//
// The fabric's whole trust argument is determinism plus content
// addressing. A cell's result is a pure function of its configuration
// and seed, and the runcache key is a hash of exactly those inputs
// (salted with the schema version and pinned to GOARCH), so a result
// computed by any worker anywhere is byte-identical to one computed
// locally — remote results need no provenance beyond passing
// runcache validation. That is also why crash tolerance is free:
// a dead worker's lease expires and the cell is simply re-leased;
// if the dead worker had already published some cells, the re-lease
// finds them in the cache and completes instantly. Duplicate
// completions are idempotent for the same reason — both writers
// computed the same bytes.
//
// A fabric sweep reproduces a single-process Sweep.Run byte-for-byte:
// the coordinator enumerates cells with Sweep.Jobs() (the engine's
// exact dispatch grid), workers run them through the same Executor
// attempt path, and the final aggregation IS Sweep.Run over a cache
// holding every cell — identical code path, zero simulation.
package sweepfabric

import (
	"time"

	"mtsim/internal/experiment"
	"mtsim/internal/metrics"
)

// Lease grant statuses (LeaseGrant.Status).
const (
	StatusLease = "lease" // cells granted; simulate and report
	StatusWait  = "wait"  // nothing leasable right now; poll again
	StatusDone  = "done"  // board has no pending or leased cells left
)

// Coordinator is the lease protocol a worker drives. The Board
// implements it directly (in-process workers); Client implements it
// over HTTP (out-of-process workers). All methods are safe for
// concurrent use.
type Coordinator interface {
	// Lease claims up to max cells for the named worker. A StatusWait
	// or StatusDone grant carries no cells.
	Lease(worker string, max int) (LeaseGrant, error)
	// Complete reports a finished cell with its metrics. Completions
	// are accepted even when the lease has expired or belongs to
	// someone else: determinism means any computed result is THE
	// result, so late or duplicate publishes are harmless.
	Complete(worker string, leaseID int64, cell experiment.CellJob, m *metrics.RunMetrics, cached bool) error
	// Fail reports a cell whose attempts (including engine-level
	// retries) were exhausted. The board requeues it until the cell's
	// board-level attempt budget runs out, then marks it failed.
	Fail(worker string, leaseID int64, cell experiment.CellJob, errMsg string) error
}

// LeaseGrant is the coordinator's answer to a lease request.
type LeaseGrant struct {
	Status  string               `json:"status"`
	LeaseID int64                `json:"lease_id,omitempty"`
	Cells   []experiment.CellJob `json:"cells,omitempty"`
	// Keys holds each cell's content address, parallel to Cells, so
	// workers probe their local cache tier without re-hashing.
	Keys []string `json:"keys,omitempty"`
	// RetryAfterMS is the board's poll hint for StatusWait grants.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// RetryAfter is the grant's poll hint as a duration.
func (g LeaseGrant) RetryAfter() time.Duration {
	return time.Duration(g.RetryAfterMS) * time.Millisecond
}

// EnqueueSummary reports what enqueueing a job list changed: content
// addressing dedupes against both the board and the result store, so
// re-enqueueing a half-finished sweep only queues the missing cells.
type EnqueueSummary struct {
	Keys           []string `json:"keys"`            // every job's content address, in job order
	Queued         int      `json:"queued"`          // newly queued for simulation
	AlreadyDone    int      `json:"already_done"`    // present in the result store
	AlreadyPending int      `json:"already_pending"` // queued or leased by an earlier enqueue
	Failed         int      `json:"failed"`          // permanently failed earlier; not re-queued
}

// CellFailure is a permanently failed cell in a WaitStatus.
type CellFailure struct {
	Key      string `json:"key"`
	Err      string `json:"error"`
	Attempts int    `json:"attempts"`
}

// WaitStatus reports how a WaitFor ended: every key resolved
// (Remaining == 0, no Failed), some cells permanently failed, or the
// wait timed out with work still outstanding.
type WaitStatus struct {
	Done      int           `json:"done"`
	Remaining int           `json:"remaining"`
	Failed    []CellFailure `json:"failed,omitempty"`
}

// WorkerStats counts one worker's activity as the board saw it.
type WorkerStats struct {
	Leases    int `json:"leases"`    // lease grants issued to this worker
	Completed int `json:"completed"` // cells it completed (simulated + cached)
	Cached    int `json:"cached"`    // completions it served from a cache tier
	Failed    int `json:"failed"`    // cell failures it reported
}

// BoardStats is the coordinator's counter snapshot, served by
// /v1/stats next to the store's cache health.
type BoardStats struct {
	CellsEnqueued int `json:"cells_enqueued"` // distinct cells ever accepted
	CellsPending  int `json:"cells_pending"`  // queued, not leased
	CellsLeased   int `json:"cells_leased"`   // leased, in flight
	CellsDone     int `json:"cells_done"`
	CellsFailed   int `json:"cells_failed"` // permanently failed
	LeasesIssued  int `json:"leases_issued"`
	LeasesExpired int `json:"leases_expired"` // TTL passed; cells requeued
	Requeues      int `json:"requeues"`       // cells re-queued after a reported failure
	PutErrors     int `json:"put_errors"`     // store writes that failed on Complete

	Workers map[string]*WorkerStats `json:"workers,omitempty"`
}
