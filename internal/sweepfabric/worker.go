package sweepfabric

// Worker: the lease-claiming side of the fabric. Each of a worker's
// Parallel loops owns one reusable scenario.Context and drives leased
// cells through the engine's Executor — the identical attempt path
// (panic isolation, retries, watchdog, journal) a local Sweep.Run uses,
// so a fabric run's failure semantics match a single process's.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mtsim/internal/experiment"
	"mtsim/internal/scenario"
)

// Worker claims leases from a Coordinator and simulates them. Configure
// the fields before Run; the zero value of every optional field is
// usable.
type Worker struct {
	Coordinator Coordinator
	// Name identifies the worker in board stats and journals.
	Name string
	// Parallel is how many lease loops run concurrently, each with its
	// own scenario.Context. Zero or negative means 1.
	Parallel int
	// Batch is how many cells to claim per lease. Zero means 1.
	Batch int
	// Cache is an optional local tier probed before simulating and
	// filled after (usually a *runcache.Store). Cache hits are reported
	// to the coordinator as cached completions.
	Cache experiment.Cache
	// Exec is the engine machinery each cell runs through.
	Exec experiment.Executor
	// Poll bounds the idle sleep between empty lease responses; the
	// board's RetryAfter hint is respected up to this cap. Zero means
	// DefaultWorkerPoll.
	Poll time.Duration
	// IdleExit makes Run return after this long without obtaining any
	// cell (StatusDone grants included). Zero means run until the
	// context is cancelled — the service posture.
	IdleExit time.Duration
	// Throttle sleeps before each simulated (non-cached) cell. Tests
	// and demos use it to hold cells in-flight long enough to kill a
	// worker mid-lease; production leaves it zero.
	Throttle time.Duration
	// OnCell, when set, observes every finished cell.
	OnCell func(key string, cached bool, err error)

	completed atomic.Int64
	cached    atomic.Int64
	failed    atomic.Int64
}

// DefaultWorkerPoll caps the idle sleep between lease polls.
const DefaultWorkerPoll = 250 * time.Millisecond

// Completed reports how many cells this worker finished (simulated or
// cached) since construction.
func (w *Worker) Completed() int64 { return w.completed.Load() }

// CachedHits reports how many finished cells came from the local tier.
func (w *Worker) CachedHits() int64 { return w.cached.Load() }

// FailedCells reports how many cells this worker reported as failed.
func (w *Worker) FailedCells() int64 { return w.failed.Load() }

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return DefaultWorkerPoll
}

func (w *Worker) batch() int {
	if w.Batch > 0 {
		return w.Batch
	}
	return 1
}

// Run claims and simulates cells until the context is cancelled or,
// with IdleExit set, until the coordinator has been out of work for
// that long. Returns nil on idle exit, ctx.Err() on cancellation.
func (w *Worker) Run(ctx context.Context) error {
	if w.Coordinator == nil {
		return fmt.Errorf("sweepfabric: worker %q has no coordinator", w.Name)
	}
	n := w.Parallel
	if n < 1 {
		n = 1
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(loop int) {
			defer wg.Done()
			w.loop(ctx, loop)
		}(i)
	}
	wg.Wait()
	return ctx.Err()
}

// sleep waits d or until the context dies.
func sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// loop is one lease loop: claim, simulate, publish, repeat.
func (w *Worker) loop(ctx context.Context, n int) {
	simCtx := scenario.NewContext()
	name := w.Name
	if w.Parallel > 1 {
		name = fmt.Sprintf("%s/%d", w.Name, n)
	}
	idleSince := time.Now()
	for {
		if ctx.Err() != nil {
			return
		}
		grant, err := w.Coordinator.Lease(name, w.batch())
		if err != nil {
			// Transport trouble reads as idleness: with IdleExit set a
			// worker whose coordinator died drains away instead of
			// spinning forever.
			if w.IdleExit > 0 && time.Since(idleSince) >= w.IdleExit {
				return
			}
			sleep(ctx, w.poll())
			continue
		}
		if grant.Status != StatusLease || len(grant.Cells) == 0 {
			if w.IdleExit > 0 && time.Since(idleSince) >= w.IdleExit {
				return
			}
			d := grant.RetryAfter()
			if d <= 0 || d > w.poll() {
				d = w.poll()
			}
			sleep(ctx, d)
			continue
		}
		idleSince = time.Now()
		for i, cj := range grant.Cells {
			if ctx.Err() != nil {
				return // unfinished cells return via lease expiry
			}
			w.runOne(ctx, &simCtx, name, grant.LeaseID, grant.Keys[i], cj)
		}
	}
}

// runOne takes one leased cell to a completion or failure report.
func (w *Worker) runOne(ctx context.Context, simCtx **scenario.Context, name string, leaseID int64, key string, cj experiment.CellJob) {
	if w.Cache != nil {
		if m, ok := w.Cache.Get(cj.Config); ok {
			w.report(name, key, true, w.Coordinator.Complete(name, leaseID, cj, m, true))
			return
		}
	}
	sleep(ctx, w.Throttle)
	m, _, err := w.Exec.RunCell(simCtx, cj.Key, cj.Config)
	if err != nil {
		w.failed.Add(1)
		ferr := w.Coordinator.Fail(name, leaseID, cj, err.Error())
		if w.OnCell != nil {
			w.OnCell(key, false, err)
		}
		_ = ferr // lease expiry recovers a lost failure report
		return
	}
	if w.Cache != nil {
		w.Cache.Put(cj.Config, m) //nolint:errcheck // local tier is best-effort
	}
	// A lost completion is recovered the same way a dead worker is:
	// the lease expires, the cell is re-leased, and the re-runner (or
	// its cache tier) republishes the identical bytes.
	w.report(name, key, false, w.Coordinator.Complete(name, leaseID, cj, m, false))
}

// report books a completion locally and surfaces it to OnCell.
func (w *Worker) report(name, key string, cached bool, completeErr error) {
	w.completed.Add(1)
	if cached {
		w.cached.Add(1)
	}
	if w.OnCell != nil {
		w.OnCell(key, cached, completeErr)
	}
}
