package sweepfabric

// Regression tests for the fabric's trust and accounting boundaries:
// malformed keys from the network must bounce at the HTTP surface
// without reaching the board's lock or the store's filesystem, stale
// failure reports must not poison re-leased cells, late completions must
// rebalance the done/failed ledger, and the lease leg must never be
// retried at the transport layer.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"mtsim/internal/runcache"
	"mtsim/internal/scenario"
)

// TestMalformedKeysBounceAtTheHTTPBoundary: /v1/wait and /v1/entry are
// the two endpoints that feed client-supplied keys toward the store. A
// key that is not a content address is a 400, and the board stays fully
// responsive afterwards — the pre-fix behaviour was a panic under
// Board.mu that deadlocked every later lease and wait.
func TestMalformedKeysBounceAtTheHTTPBoundary(t *testing.T) {
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	board := NewBoard(store)
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()

	for _, body := range []string{
		`{"keys":["zz"],"timeout_ms":50}`,
		`{"keys":["../../etc/passwd"],"timeout_ms":50}`,
		`{"keys":[""],"timeout_ms":50}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/wait", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("wait on malformed key: HTTP %d, want 400 (body %s)", resp.StatusCode, body)
		}
	}
	for _, key := range []string{"zz", "..%2F..%2Fvictim", strings.Repeat("g", 64)} {
		resp, err := http.Get(srv.URL + "/v1/entry?key=" + key)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("entry %q: HTTP %d, want 400", key, resp.StatusCode)
		}
	}

	// The board's mutex survived every malformed request: leasing and
	// stats still answer (a poisoned lock would hang the test here), and
	// a direct wait on an unknown-but-well-formed key times out cleanly.
	if grant, err := board.Lease("probe", 1); err != nil || grant.Status != StatusDone {
		t.Fatalf("board unresponsive after malformed keys: grant=%+v err=%v", grant, err)
	}
	st, err := board.WaitFor(nil, []string{strings.Repeat("ab", 32)}, 10*time.Millisecond)
	if err != nil || st.Remaining != 1 {
		t.Fatalf("well-formed unknown key: st=%+v err=%v", st, err)
	}
	if stats := board.Stats(); stats.CellsEnqueued != 0 {
		t.Fatalf("malformed requests mutated the ledger: %+v", stats)
	}
}

// TestStaleFailureReportIgnored: a failure filed under an expired lease
// must not count against the cell's attempt budget while a re-lease is
// in flight — pre-fix it could mark the cell permanently failed and
// fail-fast a wait that would have succeeded.
func TestStaleFailureReportIgnored(t *testing.T) {
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	board := NewBoard(store)
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	board.Now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	board.TTL = time.Minute
	board.MaxAttempts = 2

	s := quickSweep()
	jobs := s.Jobs()[:1]
	sum, err := board.Enqueue(jobs)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := board.Lease("slow", 1)
	if err != nil || slow.Status != StatusLease {
		t.Fatalf("first lease: %+v err=%v", slow, err)
	}
	// The slow worker's lease expires; the cell is re-leased elsewhere.
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	fast, err := board.Lease("fast", 1)
	if err != nil || fast.Status != StatusLease {
		t.Fatalf("re-lease after expiry: %+v err=%v", fast, err)
	}
	// The slow worker finally reports its failure under the dead lease.
	// MaxAttempts is 2 and both grants are spent, so pre-fix this marked
	// the cell permanently failed while the fast worker was mid-run.
	if err := board.Fail("slow", slow.LeaseID, jobs[0], "stale: watchdog killed me ages ago"); err != nil {
		t.Fatal(err)
	}
	stats := board.Stats()
	if stats.CellsFailed != 0 || stats.Requeues != 0 {
		t.Fatalf("stale failure report counted: %+v", stats)
	}
	if ws := stats.Workers["slow"]; ws != nil && ws.Failed != 0 {
		t.Fatalf("stale failure booked against worker: %+v", ws)
	}
	// The live run completes normally.
	m, err := scenario.RunOne(jobs[0].Config)
	if err != nil {
		t.Fatal(err)
	}
	if err := board.Complete("fast", fast.LeaseID, jobs[0], m, false); err != nil {
		t.Fatal(err)
	}
	st, err := board.WaitFor(nil, sum.Keys, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || len(st.Failed) != 0 {
		t.Fatalf("cell not cleanly done after stale report: %+v", st)
	}
	// And a failure under the *live* lease still counts.
	if err := board.Fail("fast", fast.LeaseID, jobs[0], "late"); err != nil {
		t.Fatal(err)
	}
	if stats := board.Stats(); stats.CellsFailed != 0 || stats.CellsDone != 1 {
		t.Fatalf("failure report on a done cell mutated the ledger: %+v", stats)
	}
}

// TestLateCompletionResurrectsFailedCell: a completion arriving after
// the board gave up on a cell moves it from the failed column to done —
// pre-fix it incremented CellsDone on top of CellsFailed, so the ledger
// over-counted and idle detection (StatusDone) never triggered.
func TestLateCompletionResurrectsFailedCell(t *testing.T) {
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	board := NewBoard(store)
	board.MaxAttempts = 1

	s := quickSweep()
	jobs := s.Jobs()[:1]
	sum, err := board.Enqueue(jobs)
	if err != nil {
		t.Fatal(err)
	}
	grant, err := board.Lease("w", 1)
	if err != nil || grant.Status != StatusLease {
		t.Fatalf("lease: %+v err=%v", grant, err)
	}
	if err := board.Fail("w", grant.LeaseID, jobs[0], "injected"); err != nil {
		t.Fatal(err)
	}
	if stats := board.Stats(); stats.CellsFailed != 1 {
		t.Fatalf("cell not permanently failed: %+v", stats)
	}
	// A straggler (or a client warming the store) publishes the result.
	m, err := scenario.RunOne(jobs[0].Config)
	if err != nil {
		t.Fatal(err)
	}
	if err := board.Complete("straggler", 0, jobs[0], m, false); err != nil {
		t.Fatal(err)
	}
	stats := board.Stats()
	if stats.CellsDone != 1 || stats.CellsFailed != 0 {
		t.Fatalf("resurrection left the ledger unbalanced: %+v", stats)
	}
	if stats.CellsDone+stats.CellsFailed > stats.CellsEnqueued {
		t.Fatalf("done+failed exceeds enqueued: %+v", stats)
	}
	// Idle detection works again: nothing pending, nothing in flight.
	if grant, err := board.Lease("later", 1); err != nil || grant.Status != StatusDone {
		t.Fatalf("board not idle after resurrection: %+v err=%v", grant, err)
	}
	st, err := board.WaitFor(nil, sum.Keys, time.Second)
	if err != nil || st.Done != 1 || len(st.Failed) != 0 {
		t.Fatalf("wait after resurrection: %+v err=%v", st, err)
	}
}

// TestLeaseNotRetriedOnTransportError: a lost lease-grant response must
// not be retried into a second lease (the first grant's cells would sit
// leased until TTL) — workers treat the error as an idle poll instead.
// Other POST legs keep their retry budget.
func TestLeaseNotRetriedOnTransportError(t *testing.T) {
	var mu sync.Mutex
	hits := make(map[string]int)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits[r.URL.Path]++
		mu.Unlock()
		http.Error(w, `{"error":"injected outage"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()

	client := NewClient(srv.URL)
	client.Retries = 2
	client.Backoff = time.Millisecond

	if _, err := client.Lease("w", 1); err == nil {
		t.Fatal("lease against a 500 server reported success")
	}
	if _, err := client.Enqueue(nil); err == nil {
		t.Fatal("enqueue against a 500 server reported success")
	}
	mu.Lock()
	defer mu.Unlock()
	if hits["/v1/lease"] != 1 {
		t.Fatalf("lease attempted %d times, want exactly 1 (no transport retry)", hits["/v1/lease"])
	}
	if hits["/v1/enqueue"] != 3 {
		t.Fatalf("enqueue attempted %d times, want 3 (retries intact)", hits["/v1/enqueue"])
	}
}

// TestQueryKeyEscapesSeparators: two distinct figure queries must never
// share a rendered-memo key. Pre-fix, a value smuggling '=' and '&'
// bytes collided with the query that spelt the same bytes structurally,
// serving one query's cached body for the other.
func TestQueryKeyEscapesSeparators(t *testing.T) {
	smuggled := url.Values{"fig": {"x"}, "protocols": {"a&z=1"}}
	structural := url.Values{"fig": {"x"}, "protocols": {"a"}, "z": {"1"}}
	if queryKey(smuggled) == queryKey(structural) {
		t.Fatalf("memo key collision: %q", queryKey(smuggled))
	}
	// Order-insensitivity is preserved.
	a := url.Values{"fig": {"x"}, "format": {"csv"}}
	b := url.Values{"format": {"csv"}, "fig": {"x"}}
	if queryKey(a) != queryKey(b) {
		t.Fatal("queryKey became order-sensitive")
	}
	// And the timeout parameter still doesn't shape the key.
	c := url.Values{"fig": {"x"}, "format": {"csv"}, "timeout": {"30s"}}
	if queryKey(a) != queryKey(c) {
		t.Fatal("timeout leaked into the memo key")
	}
}
