package sweepfabric

// The Board is the coordinator's core: an in-memory lease ledger over a
// content-addressed result store. Cells are keyed by their runcache
// address, so the board dedupes work across enqueues, recognises
// already-computed cells instantly, and treats duplicate completions as
// the no-ops determinism makes them.

import (
	"fmt"
	"sync"
	"time"

	"mtsim/internal/experiment"
	"mtsim/internal/metrics"
	"mtsim/internal/runcache"
)

// Cell lifecycle states inside the board.
const (
	statePending = iota // queued, waiting for a lease
	stateLeased         // granted to a worker, TTL running
	stateDone           // result in the store
	stateFailed         // board-level attempt budget exhausted
)

type cell struct {
	job      experiment.CellJob
	state    int
	leaseID  int64  // valid while stateLeased
	attempts int    // lease grants consumed (board-level, on top of engine retries)
	errMsg   string // last failure report
}

type lease struct {
	id       int64
	worker   string
	deadline time.Time
	keys     []string // cells granted under this lease
}

// Board coordinates one shared result store's sweep work. Any number of
// sweeps can enqueue into the same board; cells are deduplicated by
// content address. The zero Board is not usable — construct with
// NewBoard.
type Board struct {
	store *runcache.Store

	// Now is the board's clock, injectable so tests drive lease expiry
	// deterministically. Nil means time.Now.
	Now func() time.Time

	// TTL is how long a lease lives before its cells are reclaimable.
	// Zero means DefaultTTL.
	TTL time.Duration

	// MaxAttempts is how many lease grants a cell may consume before
	// the board marks it permanently failed. Each grant already carries
	// the engine's own retry budget, so this bounds worker-level loss
	// (crashes, lease expiry), not simulation flakiness. Zero means
	// DefaultMaxAttempts.
	MaxAttempts int

	// PollHint is the RetryAfter returned with StatusWait grants.
	// Zero means DefaultPollHint.
	PollHint time.Duration

	mu        sync.Mutex
	cells     map[string]*cell // by content address
	queue     []string         // pending cell keys, FIFO
	leases    map[int64]*lease
	nextLease int64
	stats     BoardStats
	changed   chan struct{} // closed+replaced on every completion/failure
}

// Board tuning defaults.
const (
	DefaultTTL         = 2 * time.Minute
	DefaultMaxAttempts = 3
	DefaultPollHint    = 200 * time.Millisecond
)

// NewBoard builds a coordinator over the given result store.
func NewBoard(store *runcache.Store) *Board {
	return &Board{
		store:   store,
		cells:   make(map[string]*cell),
		leases:  make(map[int64]*lease),
		changed: make(chan struct{}),
	}
}

// Store exposes the board's result store (the query path aggregates
// straight from it).
func (b *Board) Store() *runcache.Store { return b.store }

func (b *Board) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

func (b *Board) ttl() time.Duration {
	if b.TTL > 0 {
		return b.TTL
	}
	return DefaultTTL
}

func (b *Board) maxAttempts() int {
	if b.MaxAttempts > 0 {
		return b.MaxAttempts
	}
	return DefaultMaxAttempts
}

func (b *Board) pollHint() time.Duration {
	if b.PollHint > 0 {
		return b.PollHint
	}
	return DefaultPollHint
}

// broadcastLocked wakes every WaitFor poller. Callers hold b.mu.
func (b *Board) broadcastLocked() {
	close(b.changed)
	b.changed = make(chan struct{})
}

// workerLocked returns the stats row for a worker, creating it on first
// contact. Callers hold b.mu.
func (b *Board) workerLocked(name string) *WorkerStats {
	if b.stats.Workers == nil {
		b.stats.Workers = make(map[string]*WorkerStats)
	}
	ws := b.stats.Workers[name]
	if ws == nil {
		ws = &WorkerStats{}
		b.stats.Workers[name] = ws
	}
	return ws
}

// expireLocked reclaims cells from every lease whose deadline has
// passed. Lazy expiry on the lease/stats paths is enough: expiry only
// matters when someone wants work or numbers. Callers hold b.mu.
func (b *Board) expireLocked(now time.Time) {
	for id, l := range b.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(b.leases, id)
		b.stats.LeasesExpired++
		for _, key := range l.keys {
			c := b.cells[key]
			if c == nil || c.state != stateLeased || c.leaseID != id {
				continue // completed, failed, or re-leased meanwhile
			}
			c.state = statePending
			b.queue = append(b.queue, key)
		}
	}
}

// Enqueue registers a job list. Cells already in the result store are
// counted done without queueing; cells the board already tracks are not
// duplicated. The summary's Keys slice is parallel to jobs, so callers
// wait on exactly what they submitted.
func (b *Board) Enqueue(jobs []experiment.CellJob) (EnqueueSummary, error) {
	var sum EnqueueSummary
	sum.Keys = make([]string, 0, len(jobs))
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, j := range jobs {
		key, err := runcache.Key(j.Config)
		if err != nil {
			return sum, fmt.Errorf("sweepfabric: enqueue %s speed=%g seed=%d: %w",
				j.Key.Protocol, j.Key.Speed, j.Config.Seed, err)
		}
		sum.Keys = append(sum.Keys, key)
		if c, ok := b.cells[key]; ok {
			switch c.state {
			case stateDone:
				sum.AlreadyDone++
			case stateFailed:
				sum.Failed++
			default:
				sum.AlreadyPending++
			}
			continue
		}
		c := &cell{job: j}
		b.cells[key] = c
		b.stats.CellsEnqueued++
		// A validated store hit means the cell is already computed —
		// by a previous sweep, another board, or a merged cache dir.
		if _, ok := b.store.Get(j.Config); ok {
			c.state = stateDone
			b.stats.CellsDone++
			sum.AlreadyDone++
			continue
		}
		c.state = statePending
		b.queue = append(b.queue, key)
		sum.Queued++
	}
	if sum.Queued == 0 && sum.AlreadyDone > 0 {
		// Waiters may already be satisfiable.
		b.broadcastLocked()
	}
	return sum, nil
}

// Lease grants up to max pending cells to the named worker.
func (b *Board) Lease(worker string, max int) (LeaseGrant, error) {
	if max < 1 {
		max = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.expireLocked(now)
	l := &lease{id: b.nextLease + 1, worker: worker, deadline: now.Add(b.ttl())}
	grant := LeaseGrant{Status: StatusLease, LeaseID: l.id}
	for len(b.queue) > 0 && len(grant.Cells) < max {
		key := b.queue[0]
		b.queue = b.queue[1:]
		c := b.cells[key]
		if c == nil || c.state != statePending {
			continue // completed (late publish) or re-leased while queued
		}
		c.state = stateLeased
		c.leaseID = l.id
		c.attempts++
		l.keys = append(l.keys, key)
		grant.Cells = append(grant.Cells, c.job)
		grant.Keys = append(grant.Keys, key)
	}
	if len(grant.Cells) == 0 {
		status := StatusWait
		if b.idleLocked() {
			status = StatusDone
		}
		return LeaseGrant{Status: status, RetryAfterMS: b.pollHint().Milliseconds()}, nil
	}
	b.nextLease = l.id
	b.leases[l.id] = l
	b.stats.LeasesIssued++
	b.workerLocked(worker).Leases++
	return grant, nil
}

// idleLocked reports whether no cell is pending or in flight.
func (b *Board) idleLocked() bool {
	return len(b.queue) == 0 && b.stats.CellsEnqueued == b.stats.CellsDone+b.stats.CellsFailed
}

// Complete publishes a finished cell. The lease may be expired, foreign,
// or absent (leaseID 0 is how cmd/experiments pushes locally computed
// results) — a deterministic result is correct regardless of who
// computed it under which lease, so the only rejection is a store write
// failure, which leaves the cell leased for TTL-driven retry.
func (b *Board) Complete(worker string, leaseID int64, cj experiment.CellJob, m *metrics.RunMetrics, cached bool) error {
	key, err := runcache.Key(cj.Config)
	if err != nil {
		return fmt.Errorf("sweepfabric: complete: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.cells[key]
	if c == nil {
		// Unsolicited result (e.g. a client warming the store). Track it
		// as a done cell so stats and waiters see it.
		c = &cell{job: cj}
		b.cells[key] = c
		b.stats.CellsEnqueued++
	}
	if c.state == stateDone {
		return nil // duplicate publish: same bytes, nothing to do
	}
	if !b.store.Has(key) {
		if err := b.store.Put(cj.Config, m); err != nil {
			b.stats.PutErrors++
			return fmt.Errorf("sweepfabric: store result %s: %w", key[:12], err)
		}
	}
	if c.state == stateFailed {
		// A late completion resurrects a permanently failed cell — the
		// result is just as deterministic as any other. Move it from the
		// failed column to done so the ledger stays balanced
		// (CellsDone+CellsFailed never exceeds CellsEnqueued) and idle
		// detection keeps working.
		b.stats.CellsFailed--
		c.errMsg = ""
	}
	c.state = stateDone
	b.stats.CellsDone++
	ws := b.workerLocked(worker)
	ws.Completed++
	if cached {
		ws.Cached++
	}
	b.broadcastLocked()
	return nil
}

// Fail reports a cell whose lease-holder exhausted the engine's retry
// budget. The cell is requeued until its board-level attempt budget is
// spent, then marked permanently failed. Unlike Complete — where any
// result is THE result — a failure is only meaningful under the lease it
// happened in: a report from an expired or superseded lease is stale and
// must not burn the attempt budget of a re-run still in flight.
func (b *Board) Fail(worker string, leaseID int64, cj experiment.CellJob, errMsg string) error {
	key, err := runcache.Key(cj.Config)
	if err != nil {
		return fmt.Errorf("sweepfabric: fail: %w", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.cells[key]
	if c == nil || c.state != stateLeased || c.leaseID != leaseID {
		return nil // stale report: done, failed, requeued, or re-leased
	}
	b.workerLocked(worker).Failed++
	c.errMsg = errMsg
	if c.attempts >= b.maxAttempts() {
		c.state = stateFailed
		b.stats.CellsFailed++
		b.broadcastLocked()
		return nil
	}
	c.state = statePending
	b.queue = append(b.queue, key)
	b.stats.Requeues++
	return nil
}

// WaitFor blocks until every key is done (or permanently failed), the
// timeout passes, or stop is closed. Keys the board has never seen
// count as done if the result store holds them — a restarted board
// serves previously computed sweeps without re-enqueueing.
func (b *Board) WaitFor(stop <-chan struct{}, keys []string, timeout time.Duration) (WaitStatus, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		st, ch := b.pollStatus(keys)
		if st.Remaining == 0 || len(st.Failed) > 0 {
			return st, nil
		}
		select {
		case <-ch:
		case <-deadline.C:
			return st, nil
		case <-stop:
			return st, fmt.Errorf("sweepfabric: wait cancelled with %d cells outstanding", st.Remaining)
		}
	}
}

// pollStatus takes one locked status snapshot plus the change channel to
// wait on. The deferred unlock matters: keys come straight from clients,
// and a panic anywhere under the lock (today's code validates them, but
// defence belongs here) must not poison b.mu and deadlock the board.
func (b *Board) pollStatus(keys []string) (WaitStatus, chan struct{}) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.expireLocked(b.now())
	return b.statusLocked(keys), b.changed
}

// statusLocked classifies keys into done / failed / remaining. Callers
// hold b.mu.
func (b *Board) statusLocked(keys []string) WaitStatus {
	var st WaitStatus
	for _, key := range keys {
		c := b.cells[key]
		switch {
		case c == nil:
			if b.store.Has(key) {
				st.Done++
			} else {
				st.Remaining++
			}
		case c.state == stateDone:
			st.Done++
		case c.state == stateFailed:
			st.Failed = append(st.Failed, CellFailure{Key: key, Err: c.errMsg, Attempts: c.attempts})
		default:
			st.Remaining++
		}
	}
	return st
}

// Stats snapshots the board's counters (expiring stale leases first so
// the numbers are current).
func (b *Board) Stats() BoardStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.expireLocked(b.now())
	st := b.stats
	st.CellsPending = len(b.queue)
	leased := 0
	for _, c := range b.cells {
		if c.state == stateLeased {
			leased++
		}
	}
	st.CellsLeased = leased
	st.Workers = make(map[string]*WorkerStats, len(b.stats.Workers))
	for name, ws := range b.stats.Workers {
		cp := *ws
		st.Workers[name] = &cp
	}
	return st
}
