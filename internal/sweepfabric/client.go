package sweepfabric

// HTTP client side of the fabric: Client implements Coordinator for
// out-of-process workers and the enqueue/wait/fetch surface for sweep
// clients, with deterministic-friendly retrying (requests are rebuilt
// from bytes each attempt, so a flaky transport costs latency, never
// correctness). RemoteCache and TieredCache adapt the fabric to the
// engine's Cache seam.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"mtsim/internal/experiment"
	"mtsim/internal/metrics"
	"mtsim/internal/runcache"
	"mtsim/internal/scenario"
)

// Client talks to a sweepd coordinator. The zero value is not usable —
// construct with NewClient.
type Client struct {
	// Base is the coordinator's URL, e.g. "http://127.0.0.1:7077".
	Base string
	// HTTP is the transport, injectable so the chaos suite can make it
	// flaky. Nil means a fresh http.Client without a global timeout
	// (long-poll waits outlive any sane fixed timeout).
	HTTP *http.Client
	// Retries is how many times a request is retried after a transport
	// error or 5xx. Zero means DefaultClientRetries; negative disables.
	Retries int
	// Backoff is the base delay between retries, doubling per attempt.
	// Zero means DefaultClientBackoff.
	Backoff time.Duration
}

// Client retry defaults.
const (
	DefaultClientRetries = 3
	DefaultClientBackoff = 50 * time.Millisecond
)

// NewClient builds a coordinator client for the given base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{}
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	if c.Retries < 0 {
		return 0
	}
	return DefaultClientRetries
}

func (c *Client) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return DefaultClientBackoff
}

// apiError is a non-2xx response with the server's error string.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("sweepd: HTTP %d: %s", e.Status, e.Msg)
}

// do runs one JSON request with retries. Transport errors and 5xx
// responses are retried with doubling backoff; 4xx responses are not
// (the request itself is wrong). in == nil sends a GET.
func (c *Client) do(path string, in, out any) error {
	return c.doRetries(path, in, out, c.retries())
}

// doRetries is do with an explicit retry budget (0 = single attempt).
func (c *Client) doRetries(path string, in, out any, retries int) error {
	var body []byte
	method := http.MethodGet
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("sweepd: marshal request: %w", err)
		}
		method = http.MethodPost
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff() << (attempt - 1))
		}
		req, err := http.NewRequest(method, c.Base+path, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("sweepd: build request: %w", err)
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = &apiError{Status: resp.StatusCode, Msg: errString(data)}
			continue
		}
		if resp.StatusCode >= 400 {
			return &apiError{Status: resp.StatusCode, Msg: errString(data)}
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("sweepd: decode %s response: %w", path, err)
			}
		}
		return nil
	}
	return fmt.Errorf("sweepd: %s %s failed after %d attempts: %w", method, path, retries+1, lastErr)
}

func errString(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := strings.TrimSpace(string(data))
	if len(s) > 200 {
		s = s[:200] + "…"
	}
	return s
}

// Lease implements Coordinator over HTTP. Leasing is deliberately NOT
// retried at the transport layer: a grant response lost after the board
// committed it would make the retry claim a second lease and strand the
// first one's cells until TTL expiry. Workers already treat a lease
// error as an idle poll, which costs one poll interval instead.
func (c *Client) Lease(worker string, max int) (LeaseGrant, error) {
	var grant LeaseGrant
	err := c.doRetries("/v1/lease", leaseRequest{Worker: worker, Max: max}, &grant, 0)
	return grant, err
}

// Complete implements Coordinator over HTTP.
func (c *Client) Complete(worker string, leaseID int64, cell experiment.CellJob, m *metrics.RunMetrics, cached bool) error {
	return c.do("/v1/complete", completeRequest{
		Worker: worker, LeaseID: leaseID, Cell: cell, Metrics: m, Cached: cached,
	}, nil)
}

// Fail implements Coordinator over HTTP.
func (c *Client) Fail(worker string, leaseID int64, cell experiment.CellJob, errMsg string) error {
	return c.do("/v1/fail", failRequest{Worker: worker, LeaseID: leaseID, Cell: cell, Error: errMsg}, nil)
}

// Enqueue submits a job list to the coordinator.
func (c *Client) Enqueue(jobs []experiment.CellJob) (EnqueueSummary, error) {
	var sum EnqueueSummary
	err := c.do("/v1/enqueue", enqueueRequest{Jobs: jobs}, &sum)
	return sum, err
}

// Wait blocks until the keys resolve, some fail, or the timeout passes.
func (c *Client) Wait(keys []string, timeout time.Duration) (WaitStatus, error) {
	var st WaitStatus
	err := c.do("/v1/wait", waitRequest{Keys: keys, TimeoutMS: timeout.Milliseconds()}, &st)
	return st, err
}

// Entry fetches one raw store document by content address. The miss
// return is (nil, false, nil): a 404 is an answer, not an error.
func (c *Client) Entry(key string) ([]byte, bool, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/v1/entry?key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, false, nil
	case resp.StatusCode != http.StatusOK:
		return nil, false, &apiError{Status: resp.StatusCode, Msg: errString(data)}
	}
	return data, true, nil
}

// Healthz probes the coordinator once.
func (c *Client) Healthz() error {
	return c.do("/healthz", nil, nil)
}

// WaitReady polls /healthz until the coordinator answers or the timeout
// passes — the standard startup handshake for demo scripts and tests.
func (c *Client) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		if lastErr = c.Healthz(); lastErr == nil {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("sweepd at %s not ready after %s: %w", c.Base, timeout, lastErr)
}

// RemoteCache adapts a coordinator to the engine's Cache seam: Get
// fetches raw entries and validates them client-side (schema version,
// GOARCH, content address — exactly what a local store enforces), Put
// publishes as an unsolicited completion. A sweep pointed at a
// RemoteCache aggregates a remote fleet's results as if they were
// local, because byte-for-byte they are.
type RemoteCache struct {
	Client *Client
}

// Get implements experiment.Cache.
func (rc *RemoteCache) Get(cfg scenario.Config) (*metrics.RunMetrics, bool) {
	key, err := runcache.Key(cfg)
	if err != nil {
		return nil, false
	}
	doc, ok, err := rc.Client.Entry(key)
	if err != nil || !ok {
		return nil, false
	}
	m, err := runcache.DecodeEntry(doc, key)
	if err != nil {
		return nil, false
	}
	return m, true
}

// Put implements experiment.Cache.
func (rc *RemoteCache) Put(cfg scenario.Config, m *metrics.RunMetrics) error {
	return rc.Client.Complete("", 0, experiment.CellJob{
		Key:    experiment.CellKey{Protocol: cfg.Protocol, Speed: cfg.MaxSpeed},
		Config: cfg,
	}, m, false)
}

// TieredCache layers two Cache implementations: a fast local tier
// (usually *runcache.Store) over a remote one (usually *RemoteCache).
// Remote hits are backfilled into the local tier, so a client that
// replays a fabric sweep pays each cell's network fetch once.
type TieredCache struct {
	Local  experiment.Cache
	Remote experiment.Cache
}

// Get implements experiment.Cache.
func (tc *TieredCache) Get(cfg scenario.Config) (*metrics.RunMetrics, bool) {
	if tc.Local != nil {
		if m, ok := tc.Local.Get(cfg); ok {
			return m, true
		}
	}
	if tc.Remote == nil {
		return nil, false
	}
	m, ok := tc.Remote.Get(cfg)
	if !ok {
		return nil, false
	}
	if tc.Local != nil {
		tc.Local.Put(cfg, m) //nolint:errcheck // backfill is best-effort
	}
	return m, true
}

// Put implements experiment.Cache: both tiers, first error wins.
func (tc *TieredCache) Put(cfg scenario.Config, m *metrics.RunMetrics) error {
	var first error
	if tc.Local != nil {
		first = tc.Local.Put(cfg, m)
	}
	if tc.Remote != nil {
		if err := tc.Remote.Put(cfg, m); err != nil && first == nil {
			first = err
		}
	}
	return first
}
