package sweepfabric

// The acceptance test for the fabric's headline claim: a sweep sharded
// across real `sweepd worker` OS processes — one of which is SIGKILLed
// mid-lease — produces figure tables byte-identical to a single-process
// Sweep.Run. The coordinator runs in-test so the board's counters are
// directly assertable; the workers are the separately built binary,
// talking real HTTP.

import (
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"mtsim/internal/runcache"
)

// buildSweepd compiles cmd/sweepd once per test run.
func buildSweepd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sweepd")
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/sweepd")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building sweepd: %v\n%s", err, out)
	}
	return bin
}

// TestWorkerProcessKilledMidLeaseSweepStillByteIdentical: two sweepd
// worker processes share a grid; the first claims every cell in one
// lease (throttled so they stay in flight), is SIGKILLed after its
// first completion, and the second finishes the grid once the dead
// worker's lease expires. The aggregates must match a single-process
// run byte for byte.
func TestWorkerProcessKilledMidLeaseSweepStillByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives OS processes")
	}
	s := quickSweep()
	want := singleProcess(t, s)
	bin := buildSweepd(t)

	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	board := NewBoard(store)
	board.TTL = 1500 * time.Millisecond
	srv := httptest.NewServer(NewServer(board))
	defer srv.Close()

	jobs := s.Jobs()
	sum, err := board.Enqueue(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Worker A claims the whole grid in one lease, throttled so cells
	// are still in flight when it dies.
	doomed := exec.Command(bin, "worker",
		"-coordinator", srv.URL,
		"-name", "proc-doomed",
		"-batch", "16",
		"-throttle", "400ms",
		"-poll", "20ms",
		"-q")
	doomed.Stderr = os.Stderr
	if err := doomed.Start(); err != nil {
		t.Fatal(err)
	}
	defer doomed.Process.Kill() //nolint:errcheck

	// Kill it the moment the board has seen at least one completion
	// while cells are still leased: a genuine mid-lease crash.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := board.Stats()
		if st.CellsDone >= 1 && st.CellsLeased >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("doomed worker never reached mid-lease state: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := doomed.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	doomed.Wait() //nolint:errcheck // SIGKILL: exit status is expected noise
	killedAt := board.Stats()
	if killedAt.CellsLeased == 0 {
		t.Fatal("no cells in flight at kill time — the crash exercised nothing")
	}

	// Worker B inherits the grid: the pending remainder immediately,
	// the dead worker's cells after the lease TTL.
	survivor := exec.Command(bin, "worker",
		"-coordinator", srv.URL,
		"-name", "proc-survivor",
		"-batch", "2",
		"-poll", "20ms",
		"-idle-exit", "5s",
		"-q")
	survivor.Stderr = os.Stderr
	if err := survivor.Start(); err != nil {
		t.Fatal(err)
	}
	defer survivor.Process.Kill() //nolint:errcheck

	st, err := board.WaitFor(nil, sum.Keys, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.Remaining != 0 || len(st.Failed) != 0 {
		t.Fatalf("grid did not recover: %d remaining, %d failed (stats %+v)",
			st.Remaining, len(st.Failed), board.Stats())
	}
	if err := survivor.Wait(); err != nil {
		t.Fatalf("survivor worker exited uncleanly: %v", err)
	}

	stats := board.Stats()
	if stats.LeasesExpired == 0 {
		t.Fatal("the dead worker's lease never expired — recovery path untested")
	}
	if stats.Workers["proc-doomed"] == nil || stats.Workers["proc-survivor"] == nil {
		t.Fatalf("per-worker stats incomplete: %+v", stats.Workers)
	}
	if stats.Workers["proc-survivor"].Completed == 0 {
		t.Fatal("survivor completed nothing — the grid was not re-leased")
	}

	// The recovered store aggregates byte-identically, zero simulation.
	s.Cache = store
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != 0 {
		t.Fatalf("recovered store missing %d cells", res.CacheMisses)
	}
	if got := renderAll(res); got != want {
		t.Fatalf("post-crash fabric sweep diverged from single-process run:\n--- fabric ---\n%s\n--- single ---\n%s", got, want)
	}
}
