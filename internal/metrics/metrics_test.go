package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"mtsim/internal/packet"
)

func TestRelayTableTableIExample(t *testing.T) {
	// Reconstruct the paper's Table I from its β column and verify our
	// Eq. 2–4 pipeline reproduces the printed α, γ and σ.
	c := NewCollector()
	beta := map[packet.NodeID]uint64{
		2: 10581, 3: 283, 17: 1, 21: 3886, 23: 1, 28: 15458, 36: 275, 45: 1,
	}
	for node, b := range beta {
		for i := uint64(0); i < b; i++ {
			c.Relay(node)
		}
	}
	rows, alpha, sigma := c.RelayTable()
	if alpha != 30486 {
		t.Fatalf("α = %d, want 30486 (paper Table I)", alpha)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// Paper: node 28 -> 50.70%, node 2 -> 34.70%, node 21 -> 12.75%.
	byNode := map[packet.NodeID]float64{}
	for _, r := range rows {
		byNode[r.Node] = r.Gamma
	}
	checks := map[packet.NodeID]float64{28: 0.5070, 2: 0.3470, 21: 0.1275, 3: 0.0093}
	for node, want := range checks {
		if math.Abs(byNode[node]-want) > 0.0005 {
			t.Fatalf("γ(%d) = %.4f, want %.4f", node, byNode[node], want)
		}
	}
	// Paper: σ = 19.60%.
	if math.Abs(sigma-0.196) > 0.001 {
		t.Fatalf("σ = %.4f, want 0.196 (paper Table I)", sigma)
	}
}

func TestRelayTableEmpty(t *testing.T) {
	c := NewCollector()
	rows, alpha, sigma := c.RelayTable()
	if len(rows) != 0 || alpha != 0 || sigma != 0 {
		t.Fatal("empty collector produced non-zero table")
	}
	if c.Participating() != 0 || c.MaxBeta() != 0 {
		t.Fatal("empty collector counts")
	}
}

func TestRelayTableSortedAndNormalized(t *testing.T) {
	c := NewCollector()
	c.Relay(9)
	c.Relay(3)
	c.Relay(3)
	c.Relay(7)
	rows, alpha, _ := c.RelayTable()
	if alpha != 4 {
		t.Fatalf("α = %d", alpha)
	}
	if rows[0].Node != 3 || rows[1].Node != 7 || rows[2].Node != 9 {
		t.Fatalf("rows unsorted: %+v", rows)
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.Gamma
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("Σγ = %v", sum)
	}
}

func TestCountersAndDrops(t *testing.T) {
	c := NewCollector()
	c.ControlSend()
	c.ControlSend()
	c.DataSend()
	c.Drop("no-route")
	c.Drop("no-route")
	c.Drop("ttl")
	if c.ControlTx() != 2 || c.DataTx() != 1 {
		t.Fatal("tx counters wrong")
	}
	if c.Drops()["no-route"] != 2 || c.Drops()["ttl"] != 1 {
		t.Fatalf("drops = %v", c.Drops())
	}
}

// Property: for any relay multiset, Σγ = 1, σ ≥ 0, σ ≤ sqrt((N-1))/N·…
// bounded by the maximum possible for N nodes, and MaxBeta is an upper
// bound of every row.
func TestRelayTableProperties(t *testing.T) {
	f := func(counts []uint8) bool {
		c := NewCollector()
		total := uint64(0)
		for i, n := range counts {
			for k := 0; k < int(n); k++ {
				c.Relay(packet.NodeID(i))
			}
			total += uint64(n)
		}
		rows, alpha, sigma := c.RelayTable()
		if alpha != total {
			return false
		}
		if total == 0 {
			return sigma == 0
		}
		sum := 0.0
		for _, r := range rows {
			if r.Beta > c.MaxBeta() {
				return false
			}
			sum += r.Gamma
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// σ of values in [0,1] with mean 1/N is at most sqrt of max
		// spread, certainly < 1.
		return sigma >= 0 && sigma < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	c.Relay(1)
	c.Relay(1)
	c.Relay(2)
	c.ControlSend()
	c.DataSend()
	c.Drop("no-route")
	c.Reset()
	if c.Participating() != 0 || c.MaxBeta() != 0 || c.ControlTx() != 0 || c.DataTx() != 0 {
		t.Fatal("reset collector retains counters")
	}
	if len(c.Drops()) != 0 {
		t.Fatalf("reset collector retains drops: %v", c.Drops())
	}
	rows, alpha, sigma := c.RelayTable()
	if len(rows) != 0 || alpha != 0 || sigma != 0 {
		t.Fatal("reset collector retains relay table")
	}
	// Refilled, it matches a fresh collector.
	c.Relay(3)
	if c.Participating() != 1 || c.MaxBeta() != 1 {
		t.Fatal("collector unusable after reset")
	}
}
