// Package metrics implements the paper's performance metrics (§IV-B):
//
//   - interception ratio Ri = Pe / Pr (Eq. 1), measured for a designated
//     eavesdropping node that promiscuously collects TCP data within radio
//     range;
//   - participating nodes: intermediate nodes that relayed at least one
//     data packet during the session (Fig. 5);
//   - the normalized standard deviation of per-node relay counts
//     (Eqs. 2–4, Table I, Fig. 6): β_i per participating node, α = Σβ_i,
//     γ_i = β_i/α, σ = sqrt(Σ(γ_i − mean γ)² / N);
//   - highest interception ratio: the worst case where the most-used relay
//     is the eavesdropper, max β_i / Pr (Fig. 7);
//   - average end-to-end delay of delivered data (Fig. 8), throughput
//     (Fig. 9), delivery rate (Fig. 10) and control overhead counted as
//     per-hop routing-packet transmissions (Fig. 11).
//
// Counting conventions (documented substitutions — the paper does not pin
// these down): β counts relay events (retransmissions included, as relays
// physically happen). For the random eavesdropper's Ri, Pe counts distinct
// logical data packets (retransmissions carry no new information) and Pr
// counts distinct data packets received by the destination. For the
// worst-case ratio (Fig. 7) the paper sets Pe to the largest β, a count of
// relay events, so Pr there counts arrival events too — both sides of the
// division use the same event semantics.
package metrics

import (
	"sort"

	"mtsim/internal/packet"
	"mtsim/internal/sim"
	"mtsim/internal/stats"
)

// Collector accumulates per-run counters. It is wired into node hooks by
// the scenario builder; one collector serves one simulation run.
type Collector struct {
	relays    map[packet.NodeID]uint64 // β per node
	controlTx uint64
	dataTx    uint64
	drops     map[string]uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		relays: make(map[packet.NodeID]uint64),
		drops:  make(map[string]uint64),
	}
}

// Reset empties the collector for reuse by the next simulation run,
// keeping the map storage. Equivalent to NewCollector for every observer.
func (c *Collector) Reset() {
	clear(c.relays)
	clear(c.drops)
	c.controlTx = 0
	c.dataTx = 0
}

// Relay records that node relayed one data packet (β_i increment).
func (c *Collector) Relay(node packet.NodeID) { c.relays[node]++ }

// ControlSend records one per-hop transmission of a routing packet.
func (c *Collector) ControlSend() { c.controlTx++ }

// DataSend records one per-hop transmission of a transport packet.
func (c *Collector) DataSend() { c.dataTx++ }

// Drop records a routing-layer packet drop with its reason.
func (c *Collector) Drop(reason string) { c.drops[reason]++ }

// RelayRow is one participating node's entry in Table I.
type RelayRow struct {
	Node  packet.NodeID
	Beta  uint64  // received (relayed) packets
	Gamma float64 // normalized share, Eq. 3
}

// RelayTable computes Table I: per-node β and γ, their sum α, and the
// normalized standard deviation σ (Eq. 4). Rows are sorted by node ID.
//
// Note on Eq. 4: the paper prints a population form (divide by N), but the
// σ = 19.60% in its own Table I is only reproducible with the SAMPLE
// standard deviation (divide by N−1) over the table's β column. We follow
// the computed artefact — the sample form — so our Table I output matches
// the paper's numbers exactly (see metrics_test.go).
func (c *Collector) RelayTable() (rows []RelayRow, alpha uint64, sigma float64) {
	for n, b := range c.relays {
		rows = append(rows, RelayRow{Node: n, Beta: b})
		alpha += b
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Node < rows[j].Node })
	if alpha == 0 {
		return rows, 0, 0
	}
	gammas := make([]float64, len(rows))
	for i := range rows {
		rows[i].Gamma = float64(rows[i].Beta) / float64(alpha)
		gammas[i] = rows[i].Gamma
	}
	return rows, alpha, stats.StdDevSample(gammas)
}

// Participating returns the number of nodes that relayed ≥1 data packet.
func (c *Collector) Participating() int { return len(c.relays) }

// MaxBeta returns the highest per-node relay count.
func (c *Collector) MaxBeta() uint64 {
	var m uint64
	for _, b := range c.relays {
		if b > m {
			m = b
		}
	}
	return m
}

// ControlTx returns the total per-hop routing-packet transmissions.
func (c *Collector) ControlTx() uint64 { return c.controlTx }

// DataTx returns the total per-hop transport-packet transmissions.
func (c *Collector) DataTx() uint64 { return c.dataTx }

// Drops returns the per-reason routing drop counters.
func (c *Collector) Drops() map[string]uint64 { return c.drops }

// AdversaryMember is one adversarial vantage point's interception
// accounting within a RunMetrics: the data frames it overheard and the
// distinct logical payloads among them.
type AdversaryMember struct {
	Node     packet.NodeID
	Frames   uint64
	Distinct uint64
}

// RunMetrics is the complete result of one simulation run.
type RunMetrics struct {
	Protocol string
	MaxSpeed float64 // m/s
	Seed     int64
	Duration sim.Duration

	// Security metrics (Figs. 5–7, Table I).
	Participating       int
	RelayStdDev         float64
	HighestInterception float64
	InterceptionRatio   float64
	EavesdropperID      packet.NodeID
	RelayRows           []RelayRow
	Alpha               uint64

	// Adversary metrics (extensions beyond the paper's single random
	// eavesdropper; see internal/adversary). For the legacy model these
	// mirror the single-tap numbers: AdversaryK == 1 and
	// CoalitionDistinct/InterceptionRatio equal the lone eavesdropper's.
	AdversaryModel    string
	AdversaryK        int
	CoalitionDistinct uint64 // union Pe over all vantage points
	CoalitionFrames   uint64 // total overheard data frames, dups included
	AdversaryDropped uint64 // data packets discarded by dropping relays
	// AdversaryAttracted counts data frames addressed TO a compromised
	// vantage point (first transmission attempts, no retries) — the traffic
	// a wormhole or rushing attacker pulled onto itself by winning route
	// discovery, whether or not it then dropped it.
	AdversaryAttracted uint64
	AdversaryMembers   []AdversaryMember

	// Countermeasure metrics (internal/countermeasure): how much of the
	// adversary's union Pe forms contiguous stretches of the flow's byte
	// stream, and the defender's own accounting. Contiguity is measured
	// over consecutive DataIDs (consecutive TCP segments), in two views:
	// the set view ("Run"/"Contig" fields — what the attacker could
	// reassemble offline from everything intercepted, an upper bound) and
	// the stream view ("Stream" fields — what it heard already in
	// consecutive ascending order, the byte stream a tapped relay reads
	// off the air). Data shuffling scrambles the interception order, so
	// it collapses the stream view directly and dents the set view only
	// where dispersal keeps segments out of radio range entirely.
	CountermeasureModel    string
	InterceptedLongestRun  uint64  // set view: longest consecutive-DataID run in union Pe
	InterceptedContigPkts  uint64  // set view: intercepted packets inside runs of length ≥ 2
	InterceptedContigBytes uint64  // InterceptedContigPkts × payload bytes
	InterceptedContigRatio float64 // InterceptedContigPkts / Pe (0 when Pe = 0)
	InterceptedStreamRun   uint64  // stream view: longest in-order consecutive streak
	InterceptedStreamPkts  uint64  // stream view: packets in in-order streaks ≥ 2
	InterceptedStreamBytes uint64  // InterceptedStreamPkts × payload bytes
	InterceptedStreamRatio float64 // InterceptedStreamPkts / Pe (0 when Pe = 0)
	ShuffledSegments       uint64  // segments released in permuted order
	ShuffleBlocks          uint64  // shuffle blocks flushed

	// TCP metrics (Figs. 8–11).
	AvgDelaySec    float64
	ThroughputPps  float64 // distinct data packets delivered per second
	ThroughputKbps float64
	DeliveryRate   float64
	ControlPkts    uint64

	// Diagnostics.
	SegmentsSent uint64
	Retransmits  uint64
	Distinct     uint64
	Arrivals     uint64
	Timeouts     uint64
	EventsRun    uint64
	Extra        map[string]uint64
}
