package packet

import (
	"testing"
	"testing/quick"
)

func TestUIDSourceUnique(t *testing.T) {
	var u UIDSource
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := u.Next()
		if id == 0 {
			t.Fatal("UID 0 allocated; 0 must mean unset")
		}
		if seen[id] {
			t.Fatalf("duplicate UID %d", id)
		}
		seen[id] = true
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindData: "DATA", KindAck: "ACK", KindRREQ: "RREQ",
		KindRREP: "RREP", KindRERR: "RERR", KindCheck: "CHECK",
		KindCheckErr: "CHECKERR",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(k), k.String(), want)
		}
	}
	if Kind(200).String() != "KIND(200)" {
		t.Errorf("unknown kind formatting: %q", Kind(200).String())
	}
}

func TestIsControl(t *testing.T) {
	if KindData.IsControl() || KindAck.IsControl() {
		t.Fatal("transport kinds misclassified as control")
	}
	for _, k := range []Kind{KindRREQ, KindRREP, KindRERR, KindCheck, KindCheckErr} {
		if !k.IsControl() {
			t.Fatalf("%v not classified as control", k)
		}
	}
}

func TestCopyIndependence(t *testing.T) {
	var u UIDSource
	p := &Packet{
		UID:         u.Next(),
		Kind:        KindData,
		Size:        1040,
		Src:         1,
		Dst:         2,
		TTL:         32,
		SourceRoute: []NodeID{1, 5, 2},
		TCP:         &TCPHeader{Flow: 1, Seq: 9},
	}
	q := p.Copy(&u)
	if q.UID == p.UID {
		t.Fatal("copy shares UID")
	}
	q.SourceRoute[1] = 99
	if p.SourceRoute[1] != 5 {
		t.Fatal("copy shares SourceRoute backing array")
	}
	q.TCP.Seq = 42
	if p.TCP.Seq != 9 {
		t.Fatal("copy shares TCP header")
	}
	if q.Size != p.Size || q.Src != p.Src || q.Dst != p.Dst {
		t.Fatal("copy lost fields")
	}
}

func TestCopyNilOptionalFields(t *testing.T) {
	var u UIDSource
	p := &Packet{UID: u.Next(), Kind: KindRERR}
	q := p.Copy(&u)
	if q.SourceRoute != nil || q.TCP != nil {
		t.Fatal("copy invented optional fields")
	}
}

func TestCloneRoute(t *testing.T) {
	if CloneRoute(nil) != nil {
		t.Fatal("CloneRoute(nil) != nil")
	}
	r := []NodeID{1, 2, 3}
	c := CloneRoute(r)
	c[0] = 9
	if r[0] != 1 {
		t.Fatal("CloneRoute shares backing array")
	}
}

func TestFrameString(t *testing.T) {
	f := &Frame{Kind: FrameRTS, TxFrom: 3, TxTo: 4}
	if f.String() != "MAC-RTS 3->4" {
		t.Fatalf("String = %q", f.String())
	}
	var u UIDSource
	df := &Frame{Kind: FrameData, TxFrom: 1, TxTo: Broadcast,
		Payload: &Packet{UID: u.Next(), Kind: KindRREQ, Src: 1, Dst: 5, Size: 32}}
	if !df.IsBroadcast() {
		t.Fatal("broadcast not detected")
	}
	want := "MAC-DATA 1->-1 [RREQ uid=1 1->5 size=32]"
	if df.String() != want {
		t.Fatalf("String = %q, want %q", df.String(), want)
	}
	if FrameKind(9).String() != "FRAME(9)" {
		t.Fatalf("unknown frame kind: %q", FrameKind(9).String())
	}
}

// Property: a chain of copies preserves payload identity fields while
// always producing fresh UIDs.
func TestCopyChainProperty(t *testing.T) {
	f := func(seq int64, flow uint8, hops uint8) bool {
		var u UIDSource
		p := &Packet{
			UID: u.Next(), Kind: KindData, Size: 1040,
			DataID: 77, TCP: &TCPHeader{Flow: int(flow), Seq: seq},
		}
		uids := map[uint64]bool{p.UID: true}
		cur := p
		for i := 0; i < int(hops%16); i++ {
			cur = cur.Copy(&u)
			if uids[cur.UID] {
				return false
			}
			uids[cur.UID] = true
			if cur.DataID != 77 || cur.TCP.Seq != seq || cur.TCP.Flow != int(flow) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
