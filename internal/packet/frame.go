package packet

import (
	"fmt"

	"mtsim/internal/sim"
)

// FrameKind discriminates MAC-layer frame types in the 802.11 DCF exchange.
type FrameKind uint8

// MAC frame kinds.
const (
	FrameData FrameKind = iota // carries a network-layer Packet
	FrameRTS
	FrameCTS
	FrameAck
)

var frameNames = [...]string{"MAC-DATA", "MAC-RTS", "MAC-CTS", "MAC-ACK"}

// String returns the conventional short name of the frame kind.
func (k FrameKind) String() string {
	if int(k) < len(frameNames) {
		return frameNames[k]
	}
	return fmt.Sprintf("FRAME(%d)", uint8(k))
}

// Frame is a MAC-layer frame as seen by the radio channel. TxFrom/TxTo are
// the per-hop addresses; the network-layer endpoints live in Payload.
type Frame struct {
	UID     uint64
	Kind    FrameKind
	TxFrom  NodeID
	TxTo    NodeID // Broadcast for link-layer broadcasts
	Seq     uint16 // MAC sequence number (duplicate detection on retransmit)
	Retry   bool   // set on MAC retransmissions
	Payload *Packet

	// NAV is how long, beyond the end of this frame, the medium will stay
	// reserved for the remainder of the exchange (CTS/DATA/ACK). Stations
	// overhearing the frame defer virtually for this long.
	NAV sim.Duration

	// aflags is the Arena's lifecycle bookkeeping; zero for frames built
	// with plain literals.
	aflags uint8
}

// IsBroadcast reports whether the frame is link-layer broadcast.
func (f *Frame) IsBroadcast() bool { return f.TxTo == Broadcast }

// String summarises the frame for traces and test failures.
func (f *Frame) String() string {
	p := ""
	if f.Payload != nil {
		p = " [" + f.Payload.String() + "]"
	}
	return fmt.Sprintf("%s %d->%d%s", f.Kind, f.TxFrom, f.TxTo, p)
}
