// Package packet defines the simulator's wire formats: network-layer
// packets (TCP segments and routing control messages) and the MAC-layer
// frames that carry them hop by hop. It also provides per-simulation unique
// ID allocation so packets can be tracked across hops, copies, and
// retransmissions.
package packet

import (
	"fmt"

	"mtsim/internal/sim"
)

// NodeID identifies a node. IDs are small non-negative integers assigned by
// the scenario; Broadcast addresses every node in radio range.
type NodeID int32

// Broadcast is the all-nodes link-layer destination.
const Broadcast NodeID = -1

// Kind discriminates network-layer packet types across all protocols.
type Kind uint8

// Packet kinds. The routing kinds are shared by DSR, AODV, SMR and MTS;
// each protocol attaches its own header struct via the Routing field.
const (
	KindData     Kind = iota // TCP data segment
	KindAck                  // TCP acknowledgement
	KindRREQ                 // route request (flooded)
	KindRREP                 // route reply (unicast)
	KindRERR                 // route error (unicast toward source)
	KindCheck                // MTS route-checking packet (destination → source)
	KindCheckErr             // MTS checking-error packet (back toward destination)
)

var kindNames = [...]string{"DATA", "ACK", "RREQ", "RREP", "RERR", "CHECK", "CHECKERR"}

// String returns the conventional short name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("KIND(%d)", uint8(k))
}

// IsControl reports whether the kind is a routing-protocol control packet
// (counted as control overhead, Fig. 11) as opposed to transport traffic.
func (k Kind) IsControl() bool { return k >= KindRREQ }

// Header sizes in bytes, matching the ns-2 conventions the paper's
// simulations used (20-byte IP header, 20-byte TCP header, 1000-byte
// payload).
const (
	IPHeaderBytes  = 20
	TCPHeaderBytes = 20
	DefaultPayload = 1000
)

// TCPHeader carries the transport fields the simulator models. Like ns-2's
// TCP agents, sequence numbers count packets, not bytes.
type TCPHeader struct {
	Flow int   // flow identifier (scenario-assigned)
	Seq  int64 // data: segment number; ack: highest cumulatively received
	Ack  bool  // true for pure acknowledgements
	// SentAt is the transmission time of the segment this header's RTT
	// sample should be measured against (echoed by the sink).
	SentAt sim.Time
}

// Packet is a network-layer packet. Packets delivered by the PHY/MAC must be
// treated as immutable by receivers; to modify and forward, use Copy.
type Packet struct {
	UID  uint64 // unique per allocation (copies get fresh UIDs)
	Kind Kind
	Size int // bytes including network/transport headers

	Src, Dst NodeID // end-to-end endpoints
	TTL      int

	CreatedAt sim.Time // origination time (end-to-end delay measurement)

	// DataID identifies the logical payload: TCP retransmissions of the
	// same segment share a DataID, so the eavesdropper can count distinct
	// intercepted information (Eq. 1) rather than raw frames.
	DataID uint64

	TCP *TCPHeader

	// Routing holds the protocol-specific control header (e.g. *aodv.RREQ).
	Routing any

	// SourceRoute, when non-nil, is the full node list the packet must
	// follow (DSR data, MTS checking packets). SRIndex is the position of
	// the current holder within it.
	SourceRoute []NodeID
	SRIndex     int

	// PathID tags MTS data packets with the source-chosen path so
	// intermediate nodes keep a packet on a single loop-free path.
	PathID int

	// Salvage counts how many times DSR intermediate nodes have re-routed
	// this packet after a link failure; bounded to prevent ping-ponging.
	Salvage uint8

	// Trail accumulates the nodes a hop-by-hop data packet has actually
	// traversed (MTS uses it to route RERRs back to the source; traces and
	// tests use it for path assertions).
	Trail []NodeID

	// aflags is the Arena's lifecycle bookkeeping (ownership of the
	// struct and of the slice/header components, released state). Always
	// zero for packets built with plain literals.
	aflags uint8
}

// Copy returns a shallow copy with a fresh UID and duplicated SourceRoute,
// suitable for modification and forwarding. Routing headers are shared;
// protocols that mutate headers must copy them explicitly (see CloneRoute).
func (p *Packet) Copy(uids *UIDSource) *Packet {
	q := *p
	q.aflags = 0 // a plain copy is not arena storage, whatever p was
	q.UID = uids.Next()
	if p.SourceRoute != nil {
		q.SourceRoute = append([]NodeID(nil), p.SourceRoute...)
	}
	if p.Trail != nil {
		q.Trail = append([]NodeID(nil), p.Trail...)
	}
	if p.TCP != nil {
		h := *p.TCP
		q.TCP = &h
	}
	return &q
}

// String summarises the packet for traces and test failures.
func (p *Packet) String() string {
	return fmt.Sprintf("%s uid=%d %d->%d size=%d", p.Kind, p.UID, p.Src, p.Dst, p.Size)
}

// UIDSource allocates unique packet and frame IDs within one simulation.
type UIDSource struct{ next uint64 }

// Next returns the next unique ID (starting at 1; 0 means "unset").
func (u *UIDSource) Next() uint64 {
	u.next++
	return u.next
}

// CloneRoute duplicates a node list; helper for routing headers that carry
// accumulated route records.
func CloneRoute(r []NodeID) []NodeID {
	if r == nil {
		return nil
	}
	return append([]NodeID(nil), r...)
}
