package packet

import (
	"testing"

	"mtsim/internal/sim"
)

func TestArenaNilIsPlainAllocation(t *testing.T) {
	var a *Arena
	p := a.NewPacketFrom(Packet{Kind: KindData, Src: 1, Dst: 2})
	if p.Kind != KindData || p.Src != 1 {
		t.Fatalf("nil-arena packet wrong: %+v", p)
	}
	var u UIDSource
	q := a.Copy(p, &u)
	if q == p || q.UID != 1 {
		t.Fatalf("nil-arena Copy did not behave like Packet.Copy")
	}
	a.Release(p) // must not panic
	a.Release(q)
	a.ReleaseFrame(a.NewFrame())
	if a.LivePackets() != 0 || a.Stats() != (ArenaStats{}) {
		t.Fatalf("nil arena reported state: %+v", a.Stats())
	}
}

func TestArenaRecyclesPacketStorage(t *testing.T) {
	a := NewArena()
	p := a.NewPacket()
	a.Release(p)
	q := a.NewPacket()
	if q != p {
		t.Fatalf("released packet not recycled")
	}
	if q.UID != 0 || q.Kind != 0 || q.SourceRoute != nil || q.TCP != nil {
		t.Fatalf("recycled packet not zeroed: %+v", q)
	}
	st := a.Stats()
	if st.PacketsAcquired != 2 || st.PacketsReleased != 1 || a.LivePackets() != 1 {
		t.Fatalf("bad accounting: %+v live=%d", st, a.LivePackets())
	}
}

func TestArenaCopyMatchesPlainCopy(t *testing.T) {
	a := NewArena()
	var u1, u2 UIDSource
	src := &Packet{
		UID: u1.Next(), Kind: KindData, Size: 1040, Src: 3, Dst: 9, TTL: 7,
		DataID:      42,
		SourceRoute: []NodeID{3, 4, 9},
		SRIndex:     1,
		Trail:       []NodeID{3, 4},
		TCP:         &TCPHeader{Flow: 1, Seq: 5, SentAt: 17},
		Routing:     "header",
	}
	u2.Next()
	plain := src.Copy(&u1)
	pooled := a.Copy(src, &u2)
	if plain.UID != pooled.UID {
		t.Fatalf("UID mismatch: %d vs %d", plain.UID, pooled.UID)
	}
	if pooled.Kind != plain.Kind || pooled.Size != plain.Size || pooled.DataID != plain.DataID ||
		pooled.SRIndex != plain.SRIndex || *pooled.TCP != *plain.TCP || pooled.Routing != plain.Routing {
		t.Fatalf("pooled copy diverges:\nplain:  %+v\npooled: %+v", plain, pooled)
	}
	if &pooled.SourceRoute[0] == &src.SourceRoute[0] || &pooled.Trail[0] == &src.Trail[0] {
		t.Fatal("pooled copy aliases the source's slices")
	}
	if pooled.TCP == src.TCP {
		t.Fatal("pooled copy shares the source's TCP header")
	}
	for i := range src.SourceRoute {
		if pooled.SourceRoute[i] != src.SourceRoute[i] {
			t.Fatalf("route mismatch at %d", i)
		}
	}
}

// TestArenaSetSourceRouteDoesNotRetainCaller locks the aliasing contract
// that makes slice recycling safe: the caller's slice (which may also
// live inside a retained routing header, like an MTS Check's Route) must
// never enter the free list.
func TestArenaSetSourceRouteDoesNotRetainCaller(t *testing.T) {
	a := NewArena()
	shared := []NodeID{5, 4, 3, 2} // stands in for a header-retained route
	p := a.NewPacket()
	a.SetSourceRoute(p, shared)
	if &p.SourceRoute[0] == &shared[0] {
		t.Fatal("SetSourceRoute retained the caller's slice")
	}
	a.Release(p)
	q := a.NewPacket()
	a.SetSourceRoute(q, []NodeID{9, 8})
	for i, n := range shared {
		if n != []NodeID{5, 4, 3, 2}[i] {
			t.Fatalf("shared route corrupted after recycling: %v", shared)
		}
	}
}

func TestArenaDoubleReleaseDetected(t *testing.T) {
	a := NewArena()
	a.Check = true
	p := a.NewPacket()
	a.Release(p)
	a.Release(p)
	if st := a.Stats(); st.DoubleReleases != 1 || st.PacketsReleased != 1 {
		t.Fatalf("double release not detected: %+v", st)
	}
	f := a.NewFrame()
	a.ReleaseFrame(f)
	a.ReleaseFrame(f)
	if st := a.Stats(); st.DoubleReleases != 2 {
		t.Fatalf("frame double release not detected: %+v", st)
	}
}

func TestArenaForeignReleaseDetected(t *testing.T) {
	a := NewArena()
	a.Release(&Packet{})
	if st := a.Stats(); st.ForeignReleases != 1 || st.PacketsReleased != 0 {
		t.Fatalf("foreign release not detected: %+v", st)
	}
}

func TestArenaPoisonTripsOnWriteAfterRelease(t *testing.T) {
	a := NewArena()
	a.Check = true
	p := a.NewPacket()
	a.Release(p)
	p.UID = 7 // the bug under test: a write through a stale pointer
	_ = a.NewPacket()
	if st := a.Stats(); st.PoisonTrips != 1 {
		t.Fatalf("write-after-release not detected: %+v", st)
	}
}

// TestArenaQuarantineHoldsUntilClockPasses proves a ReleaseAfter object
// is not reused — and not even scrubbed — until the simulation clock
// passes its deadline, which is what keeps in-flight broadcast arrivals
// readable after the transmitting MAC lets go.
func TestArenaQuarantineHoldsUntilClockPasses(t *testing.T) {
	a := NewArena()
	now := sim.Time(0)
	a.SetClock(func() sim.Time { return now })
	p := a.NewPacket()
	p.Kind = KindData
	p.DataID = 99
	a.ReleaseAfter(p, 10)
	if got := a.NewPacket(); got == p {
		t.Fatal("quarantined packet reused before its deadline")
	}
	if p.DataID != 99 {
		t.Fatal("quarantined packet scrubbed while borrowed readers may remain")
	}
	now = 10 // deadline is exclusive: now == readyAt still holds it
	if got := a.NewPacket(); got == p {
		t.Fatal("quarantined packet reused at its deadline")
	}
	now = 11
	if got := a.NewPacket(); got != p {
		t.Fatal("quarantined packet not reclaimed after its deadline")
	}
}

func TestArenaPoolingOffNeverRecycles(t *testing.T) {
	a := NewArena()
	a.Pooling = false
	p := a.NewPacket()
	p.Kind = KindData
	a.Release(p)
	if q := a.NewPacket(); q == p {
		t.Fatal("reference mode recycled storage")
	}
	if st := a.Stats(); st.PacketsAcquired != 2 || st.PacketsReleased != 1 {
		t.Fatalf("reference mode accounting wrong: %+v", st)
	}
}

func TestArenaResetReclaimsEverything(t *testing.T) {
	a := NewArena()
	now := sim.Time(0)
	a.SetClock(func() sim.Time { return now })
	leaked := a.NewPacket()
	a.SetSourceRoute(leaked, []NodeID{1, 2, 3})
	quarantined := a.NewPacket()
	a.ReleaseAfter(quarantined, 100)
	freed := a.NewPacket()
	a.Release(freed)
	f := a.NewFrame()
	_ = f // leaked frame
	a.Reset()
	if st := a.Stats(); st != (ArenaStats{}) {
		t.Fatalf("stats not zeroed: %+v", st)
	}
	// All three packets (and the frame) must be back in circulation.
	seen := map[*Packet]bool{}
	for i := 0; i < 3; i++ {
		seen[a.NewPacket()] = true
	}
	if !seen[leaked] || !seen[quarantined] || !seen[freed] {
		t.Fatal("Reset did not restock all packet storage")
	}
	if a.NewFrame() != f {
		t.Fatal("Reset did not restock frame storage")
	}
}

// FuzzPacketCopy drives both copy implementations with arbitrary packet
// shapes and requires fresh UIDs, equal field values and deep
// SourceRoute/Trail duplication from each.
func FuzzPacketCopy(f *testing.F) {
	f.Add(uint8(0), 3, 2, int64(7), true)
	f.Add(uint8(4), 0, 0, int64(0), false)
	f.Add(uint8(1), 17, 33, int64(-5), true)
	f.Fuzz(func(t *testing.T, kind uint8, routeLen, trailLen int, seq int64, withTCP bool) {
		if routeLen < 0 || routeLen > 64 || trailLen < 0 || trailLen > 64 {
			t.Skip()
		}
		mk := func() *Packet {
			p := &Packet{Kind: Kind(kind), Size: 1040, Src: 1, Dst: 2, TTL: 9, DataID: uint64(seq) + 1}
			for i := 0; i < routeLen; i++ {
				p.SourceRoute = append(p.SourceRoute, NodeID(i))
			}
			for i := 0; i < trailLen; i++ {
				p.Trail = append(p.Trail, NodeID(100+i))
			}
			if withTCP {
				p.TCP = &TCPHeader{Flow: 1, Seq: seq, SentAt: 3}
			}
			return p
		}
		a := NewArena()
		a.Check = true
		var u1, u2 UIDSource
		src := mk()
		plain := src.Copy(&u1)
		pooled := a.Copy(mk(), &u2)

		if plain.UID != 1 || pooled.UID != 1 {
			t.Fatalf("copies must draw fresh UIDs: %d / %d", plain.UID, pooled.UID)
		}
		if (plain.SourceRoute == nil) != (pooled.SourceRoute == nil) ||
			len(plain.SourceRoute) != len(pooled.SourceRoute) ||
			(plain.Trail == nil) != (pooled.Trail == nil) ||
			len(plain.Trail) != len(pooled.Trail) {
			t.Fatalf("slice shape diverges: plain %v/%v pooled %v/%v",
				plain.SourceRoute, plain.Trail, pooled.SourceRoute, pooled.Trail)
		}
		for i := range plain.SourceRoute {
			if plain.SourceRoute[i] != pooled.SourceRoute[i] {
				t.Fatal("route contents diverge")
			}
		}
		if routeLen > 0 && &pooled.SourceRoute[0] == &src.SourceRoute[0] {
			t.Fatal("pooled copy aliases source route")
		}
		if withTCP && (pooled.TCP == nil || *pooled.TCP != *plain.TCP) {
			t.Fatal("TCP header diverges")
		}
	})
}

// FuzzArenaReuse hammers acquire/copy/release cycles (with quarantined
// releases mixed in) and asserts the invariants that make pooling safe:
// every UID is fresh, a recycled packet never aliases a live packet's
// route storage, and the books balance with no double releases.
func FuzzArenaReuse(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, false)
	f.Add([]byte{5, 4, 3, 2, 1, 0, 255, 128, 7, 7, 7}, true)
	f.Add([]byte{2, 2, 2, 9, 9, 9, 1, 0, 1, 0}, false)
	f.Fuzz(func(t *testing.T, ops []byte, pooling bool) {
		a := NewArena()
		a.Check = true
		a.Pooling = pooling
		now := sim.Time(0)
		a.SetClock(func() sim.Time { return now })
		var uids UIDSource
		var live []*Packet
		seenUID := map[uint64]bool{}

		checkFresh := func(p *Packet) {
			if p.UID != 0 && seenUID[p.UID] {
				t.Fatalf("UID %d issued twice", p.UID)
			}
			if p.UID != 0 {
				seenUID[p.UID] = true
			}
		}
		for _, op := range ops {
			now += sim.Time(op % 3)
			switch op % 5 {
			case 0: // originate
				p := a.NewPacketFrom(Packet{UID: uids.Next(), Kind: KindData, Src: 1, Dst: 2})
				a.SetSourceRoute(p, []NodeID{1, NodeID(op), 2})
				checkFresh(p)
				live = append(live, p)
			case 1: // per-hop copy of a live packet
				if len(live) == 0 {
					continue
				}
				p := live[int(op)%len(live)]
				q := a.Copy(p, &uids)
				checkFresh(q)
				if p.SourceRoute != nil && q.SourceRoute != nil &&
					&p.SourceRoute[0] == &q.SourceRoute[0] {
					t.Fatal("copy aliases its source's route")
				}
				live = append(live, q)
			case 2: // release newest
				if len(live) == 0 {
					continue
				}
				p := live[len(live)-1]
				live = live[:len(live)-1]
				a.Release(p)
			case 3: // quarantined release (broadcast-style)
				if len(live) == 0 {
					continue
				}
				p := live[0]
				live = live[1:]
				a.ReleaseAfter(p, sim.Duration(op%7))
			case 4: // trail growth on a live packet
				if len(live) == 0 {
					continue
				}
				a.StartTrail(live[int(op)%len(live)], NodeID(op))
			}
			// No recycled packet may alias a live packet's route slice.
			for i, p := range live {
				if p.SourceRoute == nil {
					continue
				}
				for _, q := range live[i+1:] {
					if q.SourceRoute != nil && &p.SourceRoute[0] == &q.SourceRoute[0] {
						t.Fatal("two live packets share route storage")
					}
				}
			}
		}
		st := a.Stats()
		if st.DoubleReleases != 0 || st.ForeignReleases != 0 || st.PoisonTrips != 0 {
			t.Fatalf("accounting tripped: %+v", st)
		}
		if a.LivePackets() != len(live) {
			t.Fatalf("live accounting: arena says %d, test holds %d", a.LivePackets(), len(live))
		}
	})
}
