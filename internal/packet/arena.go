package packet

import "mtsim/internal/sim"

// Lifecycle flag bits carried (unexported) by every Packet and Frame. The
// flags let an Arena tell its own storage from caller-allocated objects
// and recycle only component slices it handed out itself — a released
// packet whose SourceRoute aliases a routing header (e.g. an MTS Check's
// Route) must never drag that shared memory into the free list.
const (
	flagArena     uint8 = 1 << iota // struct storage belongs to an Arena
	flagReleased                    // released; any further use is a bug
	flagOwnsSR                      // SourceRoute backing array is arena-owned
	flagOwnsTrail                   // Trail backing array is arena-owned
	flagOwnsTCP                     // TCP header struct is arena-owned
)

// Poison values written into released objects (when pooling or Check is
// on): a use-after-release reads deterministic garbage instead of
// plausible stale data, so the determinism suites surface the bug instead
// of silently absorbing it.
const (
	// PoisonUID marks a released packet or frame; a live object can never
	// carry it (UIDSource counts up from 1).
	PoisonUID       = ^uint64(0) - 0xdead
	poisonNode      = NodeID(-0x7ead)
	poisonKind Kind = 0xEE
)

// ArenaStats is the arena's accounting, maintained in every mode.
type ArenaStats struct {
	PacketsAcquired uint64
	PacketsReleased uint64
	FramesAcquired  uint64
	FramesReleased  uint64
	// DoubleReleases counts releases of an already-released object; the
	// object is not recycled a second time, so the free list stays sound,
	// but any non-zero count is a caller bug.
	DoubleReleases uint64
	// ForeignReleases counts releases of objects the arena did not
	// allocate (plain &Packet{} literals); they are left to the GC.
	ForeignReleases uint64
	// PoisonTrips counts free-list objects whose poison marker had been
	// overwritten when they were next acquired — evidence of a write
	// after release. Only detected with Check on.
	PoisonTrips uint64
}

type pktQuar struct {
	p       *Packet
	readyAt sim.Time
}

type frameQuar struct {
	f       *Frame
	readyAt sim.Time
}

// Arena is a run-scoped free-list pool for the data plane: Packet and
// Frame structs, SourceRoute/Trail backing arrays and TCP headers. One
// simulation owns one arena (scenario.Build wires it through every node,
// MAC and transport endpoint); explicit Release calls at the points where
// packets die — delivered, dropped, retry-exhausted, retired at run end —
// feed the free lists, and scenario.Context recycles the whole arena
// across runs like the scheduler and channel scaffolding.
//
// Pooling changes allocation only, never behaviour: a recycled object is
// zeroed before reuse, fresh UIDs come from the same UIDSource calls, and
// no scheduler events are involved (quarantined objects are reclaimed
// lazily on later acquisitions), so same-seed runs are bit-identical with
// the arena on, off (Pooling=false), or absent (nil *Arena: every method
// degrades to plain allocation / no-op, which is what unit tests that
// assemble stacks by hand get).
//
// Not safe for concurrent use; sweep workers each own one via their
// scenario.Context.
type Arena struct {
	// Pooling enables recycling (the default from NewArena). With it off
	// the arena still does full accounting and ownership tracking but
	// never reuses storage — the reference mode the determinism tests
	// compare the pooled path against.
	Pooling bool
	// Check enables the debug accounting mode: released objects are
	// always poisoned and re-acquisitions verify the poison is intact
	// (PoisonTrips). Live/release counters are maintained regardless.
	Check bool

	clock func() sim.Time

	pkts   []*Packet
	frames []*Frame
	routes [][]NodeID
	tcps   []*TCPHeader

	// Quarantine FIFOs: objects whose owner let go while their last
	// transmission was still propagating (broadcast payloads, frames on
	// the air). They count as released immediately but re-enter
	// circulation only once the simulation clock has passed readyAt.
	quarPkts   []pktQuar
	quarFrames []frameQuar

	// Every distinct struct the arena ever allocated, so Reset can
	// restock the free lists even when a run ends with objects still in
	// custody (MAC queues at the horizon). Pooling mode only.
	allPkts   []*Packet
	allFrames []*Frame

	stats ArenaStats
}

// routePoolCap bounds the recycled-slice list so one route-heavy run
// cannot pin unbounded memory for the arena's lifetime.
const routePoolCap = 4096

// NewArena returns an empty arena with pooling enabled.
func NewArena() *Arena { return &Arena{Pooling: true} }

// SetClock gives the arena the simulation clock quarantined releases are
// timed against. Without a clock, ReleaseAfter objects are handed to the
// GC instead of recycled (always safe, just less reuse).
func (a *Arena) SetClock(now func() sim.Time) { a.clock = now }

// Stats returns a copy of the accounting counters.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	return a.stats
}

// LivePackets returns acquired-minus-released packets: zero after a fully
// retired run if and only if no call site leaked.
func (a *Arena) LivePackets() int {
	if a == nil {
		return 0
	}
	return int(a.stats.PacketsAcquired) - int(a.stats.PacketsReleased)
}

// LiveFrames returns acquired-minus-released frames.
func (a *Arena) LiveFrames() int {
	if a == nil {
		return 0
	}
	return int(a.stats.FramesAcquired) - int(a.stats.FramesReleased)
}

// reclaim moves quarantined objects whose hold time has passed back to
// the free lists. Called from the acquisition paths; strictly-greater
// comparison keeps an object out of circulation for the entire timestamp
// its last arrivals fire at.
func (a *Arena) reclaim() {
	if a.clock == nil || (len(a.quarPkts) == 0 && len(a.quarFrames) == 0) {
		return
	}
	now := a.clock()
	i := 0
	for i < len(a.quarPkts) && now > a.quarPkts[i].readyAt {
		a.scrubPacket(a.quarPkts[i].p)
		a.pkts = append(a.pkts, a.quarPkts[i].p)
		a.quarPkts[i].p = nil
		i++
	}
	if i > 0 {
		n := copy(a.quarPkts, a.quarPkts[i:])
		a.quarPkts = a.quarPkts[:n]
	}
	i = 0
	for i < len(a.quarFrames) && now > a.quarFrames[i].readyAt {
		a.scrubFrame(a.quarFrames[i].f)
		a.frames = append(a.frames, a.quarFrames[i].f)
		a.quarFrames[i].f = nil
		i++
	}
	if i > 0 {
		n := copy(a.quarFrames, a.quarFrames[i:])
		a.quarFrames = a.quarFrames[:n]
	}
}

// --- packet acquisition ---

func (a *Arena) getPacket() *Packet {
	a.stats.PacketsAcquired++
	a.reclaim()
	if n := len(a.pkts); n > 0 {
		p := a.pkts[n-1]
		a.pkts[n-1] = nil
		a.pkts = a.pkts[:n-1]
		if a.Check && p.UID != PoisonUID {
			a.stats.PoisonTrips++
		}
		*p = Packet{aflags: flagArena}
		return p
	}
	p := &Packet{aflags: flagArena}
	if a.Pooling {
		a.allPkts = append(a.allPkts, p)
	}
	return p
}

// NewPacket returns a zeroed arena-owned packet (a plain allocation for a
// nil arena).
func (a *Arena) NewPacket() *Packet {
	if a == nil {
		return &Packet{}
	}
	return a.getPacket()
}

// NewPacketFrom copies tmpl into an arena-owned packet. Slices and the
// TCP header carried by tmpl stay caller-owned — they are left alone when
// the packet is released. Use SetSourceRoute / StartTrail / AttachTCP
// afterwards for pooled components.
func (a *Arena) NewPacketFrom(tmpl Packet) *Packet {
	if a == nil {
		p := tmpl
		p.aflags = 0
		return &p
	}
	p := a.getPacket()
	fl := p.aflags
	*p = tmpl
	p.aflags = fl
	return p
}

// Copy is the pooled analogue of Packet.Copy: a shallow copy with a fresh
// UID, deep-copied SourceRoute/Trail (into recycled backing arrays) and a
// pooled TCP header. Routing headers are shared, exactly like Packet.Copy.
func (a *Arena) Copy(p *Packet, uids *UIDSource) *Packet {
	if a == nil {
		return p.Copy(uids)
	}
	q := a.getPacket()
	fl := q.aflags
	*q = *p
	q.aflags = fl
	q.UID = uids.Next()
	if p.SourceRoute != nil {
		if q.SourceRoute = a.cloneRoute(p.SourceRoute); q.SourceRoute != nil {
			q.aflags |= flagOwnsSR
		}
	}
	if p.Trail != nil {
		if q.Trail = a.cloneRoute(p.Trail); q.Trail != nil {
			q.aflags |= flagOwnsTrail
		}
	}
	if p.TCP != nil {
		h := a.getTCP()
		*h = *p.TCP
		q.TCP = h
		q.aflags |= flagOwnsTCP
	}
	return q
}

// SetSourceRoute points p's source route at an arena-owned copy of route,
// recycling any previous arena-owned backing. The caller's slice is never
// retained, so a route aliased into a retained routing header (MTS Check,
// DSR cache entries) stays untouched when p is later released.
func (a *Arena) SetSourceRoute(p *Packet, route []NodeID) {
	if a == nil {
		p.SourceRoute = CloneRoute(route)
		return
	}
	if p.aflags&flagOwnsSR != 0 {
		a.putRoute(p.SourceRoute)
		p.aflags &^= flagOwnsSR
	}
	if p.SourceRoute = a.cloneRoute(route); p.SourceRoute != nil {
		p.aflags |= flagOwnsSR
	}
}

// StartTrail resets p's trail to [first] in arena-owned storage, recycling
// any previous arena-owned backing (the per-data-packet "Trail =
// []NodeID{self}" pattern at MTS origination points).
func (a *Arena) StartTrail(p *Packet, first NodeID) {
	if a == nil {
		p.Trail = []NodeID{first}
		return
	}
	if p.aflags&flagOwnsTrail != 0 {
		a.putRoute(p.Trail)
		p.aflags &^= flagOwnsTrail
	}
	p.Trail = append(a.getRouteBuf(), first)
	p.aflags |= flagOwnsTrail
}

// AttachTCP attaches a zeroed pooled TCP header to p and returns it for
// the caller to fill.
func (a *Arena) AttachTCP(p *Packet) *TCPHeader {
	if a == nil {
		h := &TCPHeader{}
		p.TCP = h
		return h
	}
	h := a.getTCP()
	p.TCP = h
	p.aflags |= flagOwnsTCP
	return h
}

// --- packet release ---

// Release returns a dead packet (and its arena-owned components) to the
// free lists. Safe on nil arenas, nil packets and foreign packets. The
// caller must hold the only live reference: received packets are borrowed
// from the transmitting MAC and must never be released by a receiver.
func (a *Arena) Release(p *Packet) { a.release(p, 0) }

// ReleaseAfter releases p but keeps its storage out of circulation until
// the simulation clock passes now+hold — for packets whose final
// transmission is still propagating to receivers when the owner lets go
// (broadcast payloads; the hold is the channel's maximum propagation
// delay).
func (a *Arena) ReleaseAfter(p *Packet, hold sim.Duration) { a.release(p, hold) }

func (a *Arena) release(p *Packet, hold sim.Duration) {
	if a == nil || p == nil {
		return
	}
	if p.aflags&flagReleased != 0 {
		a.stats.DoubleReleases++
		return
	}
	if p.aflags&flagArena == 0 {
		a.stats.ForeignReleases++
		return
	}
	a.stats.PacketsReleased++
	p.aflags |= flagReleased
	if hold > 0 {
		// The packet's last transmission is still propagating: borrowed
		// readers (arrival events, taps, receivers) will touch it until
		// now+hold, so scrubbing and recycling wait for reclaim.
		if !a.Pooling || a.clock == nil {
			return // accounted; storage goes to the GC
		}
		a.quarPkts = append(a.quarPkts, pktQuar{p: p, readyAt: a.clock().Add(hold)})
		return
	}
	a.scrubPacket(p)
	if a.Pooling {
		a.pkts = append(a.pkts, p)
	}
}

// scrubPacket recycles a dead packet's arena-owned components and poisons
// its fields. Must only run once no borrowed reader can touch p again.
func (a *Arena) scrubPacket(p *Packet) {
	if p.aflags&flagOwnsSR != 0 {
		a.putRoute(p.SourceRoute)
	}
	if p.aflags&flagOwnsTrail != 0 {
		a.putRoute(p.Trail)
	}
	if p.aflags&flagOwnsTCP != 0 {
		a.putTCP(p.TCP)
	}
	if a.Pooling || a.Check {
		poisonPacket(p)
	}
	p.aflags = flagArena | flagReleased
}

func poisonPacket(p *Packet) {
	p.UID = PoisonUID
	p.Kind = poisonKind
	p.Size = -1
	p.Src, p.Dst = poisonNode, poisonNode
	p.TTL = -1
	p.CreatedAt = -1
	p.DataID = PoisonUID
	p.TCP = nil
	p.Routing = nil
	p.SourceRoute = nil
	p.SRIndex = -1
	p.PathID = -1
	p.Trail = nil
}

// --- frames ---

func (a *Arena) getFrame() *Frame {
	a.stats.FramesAcquired++
	a.reclaim()
	if n := len(a.frames); n > 0 {
		f := a.frames[n-1]
		a.frames[n-1] = nil
		a.frames = a.frames[:n-1]
		if a.Check && f.UID != PoisonUID {
			a.stats.PoisonTrips++
		}
		*f = Frame{aflags: flagArena}
		return f
	}
	f := &Frame{aflags: flagArena}
	if a.Pooling {
		a.allFrames = append(a.allFrames, f)
	}
	return f
}

// NewFrame returns a zeroed arena-owned MAC frame.
func (a *Arena) NewFrame() *Frame {
	if a == nil {
		return &Frame{}
	}
	return a.getFrame()
}

// NewFrameFrom copies tmpl into an arena-owned frame.
func (a *Arena) NewFrameFrom(tmpl Frame) *Frame {
	if a == nil {
		f := tmpl
		f.aflags = 0
		return &f
	}
	f := a.getFrame()
	fl := f.aflags
	*f = tmpl
	f.aflags = fl
	return f
}

// ReleaseFrame returns a dead frame to the free list. The payload is not
// touched — it stays owned by the MAC job that is transmitting it.
func (a *Arena) ReleaseFrame(f *Frame) { a.releaseFrame(f, 0) }

// ReleaseFrameAfter releases a frame whose arrivals are still propagating
// (every frame that actually went on the air).
func (a *Arena) ReleaseFrameAfter(f *Frame, hold sim.Duration) { a.releaseFrame(f, hold) }

func (a *Arena) releaseFrame(f *Frame, hold sim.Duration) {
	if a == nil || f == nil {
		return
	}
	if f.aflags&flagReleased != 0 {
		a.stats.DoubleReleases++
		return
	}
	if f.aflags&flagArena == 0 {
		a.stats.ForeignReleases++
		return
	}
	a.stats.FramesReleased++
	f.aflags |= flagReleased
	if hold > 0 {
		// Arrivals of this frame are still in flight; scrub at reclaim.
		if !a.Pooling || a.clock == nil {
			return
		}
		a.quarFrames = append(a.quarFrames, frameQuar{f: f, readyAt: a.clock().Add(hold)})
		return
	}
	a.scrubFrame(f)
	if a.Pooling {
		a.frames = append(a.frames, f)
	}
}

// scrubFrame poisons a dead frame. Must only run once no borrowed reader
// (in-flight arrival, tap) can touch f again. The payload is never
// released here — it stays owned by the MAC job transmitting it.
func (a *Arena) scrubFrame(f *Frame) {
	if a.Pooling || a.Check {
		f.UID = PoisonUID
		f.Kind = FrameKind(0xEE)
		f.TxFrom, f.TxTo = poisonNode, poisonNode
		f.Payload = nil
		f.NAV = -1
	}
	f.aflags = flagArena | flagReleased
}

// --- component free lists ---

func (a *Arena) getRouteBuf() []NodeID {
	if n := len(a.routes); n > 0 {
		buf := a.routes[n-1]
		a.routes[n-1] = nil
		a.routes = a.routes[:n-1]
		return buf[:0]
	}
	return nil
}

// cloneRoute copies src into recycled backing. Like CloneRoute (and
// Packet.Copy) it maps empty input to nil, so pooled and plain copies are
// indistinguishable.
func (a *Arena) cloneRoute(src []NodeID) []NodeID {
	if len(src) == 0 {
		return nil
	}
	return append(a.getRouteBuf(), src...)
}

func (a *Arena) putRoute(buf []NodeID) {
	if !a.Pooling || cap(buf) == 0 || len(a.routes) >= routePoolCap {
		return
	}
	if a.Check {
		for i := range buf {
			buf[i] = poisonNode
		}
	}
	a.routes = append(a.routes, buf[:0])
}

// AcquireRoute copies src into an arena-owned route buffer — the
// control-plane analogue of SetSourceRoute for routes held by router
// state (DSR's route cache, SMR's route sets) rather than by a packet.
// The caller owns the returned slice and must hand it back with
// ReleaseRoute exactly once (on eviction, flush or retire); unlike
// packet components there is no ownership flag, so a double release
// would put the same backing array on the free list twice and alias two
// later acquisitions. Nil arenas degrade to a plain clone.
func (a *Arena) AcquireRoute(src []NodeID) []NodeID {
	if a == nil {
		return CloneRoute(src)
	}
	return a.cloneRoute(src)
}

// ReleaseRoute returns a route buffer obtained from AcquireRoute to the
// free list. The buffer must not be referenced afterwards — in Check
// mode it is poisoned, otherwise it is handed to the next acquirer as-is.
// Safe on nil arenas and nil slices.
func (a *Arena) ReleaseRoute(buf []NodeID) {
	if a == nil {
		return
	}
	a.putRoute(buf)
}

func (a *Arena) getTCP() *TCPHeader {
	if n := len(a.tcps); n > 0 {
		h := a.tcps[n-1]
		a.tcps[n-1] = nil
		a.tcps = a.tcps[:n-1]
		*h = TCPHeader{}
		return h
	}
	return &TCPHeader{}
}

func (a *Arena) putTCP(h *TCPHeader) {
	if !a.Pooling || h == nil || len(a.tcps) >= routePoolCap {
		return
	}
	h.Flow, h.Seq, h.Ack, h.SentAt = -1, -1, false, -1 // poison
	a.tcps = append(a.tcps, h)
}

// Reset retires everything the arena ever allocated — including objects
// still in custody when a run hit its horizon — restocks the free lists
// and zeroes the accounting, ready for the next run. The previous run
// must be dead (the scenario.Context contract). Pooling and Check stick.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.quarPkts = a.quarPkts[:0]
	a.quarFrames = a.quarFrames[:0]
	a.pkts = a.pkts[:0]
	for _, p := range a.allPkts {
		// Ownership bits survive a quarantined release until the scrub,
		// so leaked and quarantined components alike recycle here.
		if p.aflags&flagOwnsSR != 0 {
			a.putRoute(p.SourceRoute)
		}
		if p.aflags&flagOwnsTrail != 0 {
			a.putRoute(p.Trail)
		}
		if p.aflags&flagOwnsTCP != 0 {
			a.putTCP(p.TCP)
		}
		poisonPacket(p)
		p.aflags = flagArena | flagReleased
		a.pkts = append(a.pkts, p)
	}
	a.frames = a.frames[:0]
	for _, f := range a.allFrames {
		f.UID = PoisonUID
		f.Payload = nil
		f.aflags = flagArena | flagReleased
		a.frames = append(a.frames, f)
	}
	a.clock = nil
	a.stats = ArenaStats{}
}
