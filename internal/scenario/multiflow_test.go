package scenario

import (
	"testing"

	"mtsim/internal/sim"
)

// The scenario layer supports multiple concurrent TCP flows; the metrics
// aggregate across them.
func TestTwoFlowsAggregate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = "MTS"
	cfg.Placement = staticChain(4)
	cfg.Field = fieldFor(cfg.Placement)
	cfg.Duration = 20 * sim.Second
	cfg.TCPStart = sim.Time(500 * sim.Millisecond)
	cfg.Flows = []FlowSpec{{Src: 0, Dst: 4}, {Src: 4, Dst: 0}}
	cfg.Eavesdropper = 2

	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	if len(s.Senders) != 2 || len(s.Sinks) != 2 {
		t.Fatalf("endpoints: %d senders, %d sinks", len(s.Senders), len(s.Sinks))
	}
	d0 := s.Sinks[0].Stats.Distinct
	d1 := s.Sinks[1].Stats.Distinct
	if d0 == 0 || d1 == 0 {
		t.Fatalf("flow starvation: %d / %d", d0, d1)
	}
	if m.Distinct != d0+d1 {
		t.Fatalf("aggregate distinct %d != %d + %d", m.Distinct, d0, d1)
	}
	// The middle node relays for both directions.
	if m.Participating < 3 {
		t.Fatalf("participating = %d", m.Participating)
	}
}

func TestFlowsShareMediumFairly(t *testing.T) {
	// Two opposite-direction flows on one chain must both make progress
	// (no starvation through the shared 802.11 medium). Which flow wins a
	// single run is a chaotic coin flip — one early capture snowballs
	// through TCP backoff — so the ratio is asserted over several seeds:
	// per seed each flow must clear a hard progress floor, and across
	// seeds the totals must balance (a systematic bias, unlike per-seed
	// luck, would survive the averaging).
	var t0, t1 float64
	for seed := int64(1); seed <= 4; seed++ {
		cfg := DefaultConfig()
		cfg.Protocol = "AODV"
		cfg.Placement = staticChain(3)
		cfg.Field = fieldFor(cfg.Placement)
		cfg.Duration = 20 * sim.Second
		cfg.TCPStart = sim.Time(500 * sim.Millisecond)
		cfg.Flows = []FlowSpec{{Src: 0, Dst: 3}, {Src: 3, Dst: 0}}
		cfg.Eavesdropper = 1
		cfg.Seed = seed

		s, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		d0 := float64(s.Sinks[0].Stats.Distinct)
		d1 := float64(s.Sinks[1].Stats.Distinct)
		if d0 < 100 || d1 < 100 {
			t.Fatalf("seed %d: starved flow: %v / %v", seed, d0, d1)
		}
		t0 += d0
		t1 += d1
	}
	if ratio := t0 / t1; ratio < 0.33 || ratio > 3 {
		t.Fatalf("systematic unfairness between flows: %v vs %v", t0, t1)
	}
}
