package scenario

import (
	"reflect"
	"testing"

	"mtsim/internal/adversary"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// advChain is the 4-node chain 0-1-2-3 with one flow end to end, so
// adversaries placed on node 1 or 2 are guaranteed to sit on the route.
func advChain(proto string) Config {
	return chainConfig(proto, 3, 20*sim.Second)
}

// TestAdversarySpecZeroIsLegacy: an explicit single-eavesdropper spec and
// the zero spec take the identical code path — bit-identical RunMetrics,
// including the RNG-driven eavesdropper choice.
func TestAdversarySpecZeroIsLegacy(t *testing.T) {
	for _, proto := range []string{"DSR", "MTS"} {
		cfg := determinismConfig(proto, 5)
		legacy, err := RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Adversary = adversary.Spec{Model: adversary.ModelEavesdropper, K: 1}
		explicit, err := RunOne(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, explicit) {
			t.Fatalf("%s: explicit eavesdropper spec diverged from legacy:\n%+v\n%+v",
				proto, *legacy, *explicit)
		}
	}
}

// TestCoalitionK1MatchesLegacyScenario: a random coalition of one picks
// the same node (same derived stream, same draw) and intercepts the same
// packets as the legacy eavesdropper; only the model label differs.
func TestCoalitionK1MatchesLegacyScenario(t *testing.T) {
	cfg := determinismConfig("DSR", 5)
	legacy, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Adversary = adversary.Spec{Model: adversary.ModelCoalition, K: 1}
	coal, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if coal.AdversaryModel != adversary.ModelCoalition || legacy.AdversaryModel != adversary.ModelEavesdropper {
		t.Fatalf("models: %q vs %q", legacy.AdversaryModel, coal.AdversaryModel)
	}
	if coal.EavesdropperID != legacy.EavesdropperID {
		t.Fatalf("k=1 coalition picked node %d, legacy picked %d",
			coal.EavesdropperID, legacy.EavesdropperID)
	}
	if coal.InterceptionRatio != legacy.InterceptionRatio ||
		coal.CoalitionDistinct != legacy.CoalitionDistinct ||
		coal.CoalitionFrames != legacy.CoalitionFrames {
		t.Fatalf("k=1 coalition interception diverged: %v/%d/%d vs %v/%d/%d",
			coal.InterceptionRatio, coal.CoalitionDistinct, coal.CoalitionFrames,
			legacy.InterceptionRatio, legacy.CoalitionDistinct, legacy.CoalitionFrames)
	}
	if coal.EventsRun != legacy.EventsRun {
		t.Fatalf("passive coalition changed the event stream: %d vs %d",
			coal.EventsRun, legacy.EventsRun)
	}
}

// TestAdversaryModelsDeterministic: every model produces bit-identical
// metrics from the same seed (grayhole coin flips and mobile tours come
// from derived streams).
func TestAdversaryModelsDeterministic(t *testing.T) {
	specs := []adversary.Spec{
		{Model: adversary.ModelCoalition, K: 3},
		{Model: adversary.ModelMobile, K: 3, Interval: 2 * sim.Second},
		{Model: adversary.ModelBlackhole, K: 2},
		{Model: adversary.ModelGrayhole, K: 2, DropRate: 0.3},
	}
	for _, spec := range specs {
		t.Run(spec.Label(), func(t *testing.T) {
			cfg := determinismConfig("MTS", 5)
			cfg.Adversary = spec
			a, err := RunOne(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunOne(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed diverged:\n%+v\n%+v", *a, *b)
			}
			if a.AdversaryModel != spec.Model || a.AdversaryK != spec.EffectiveK() {
				t.Fatalf("metrics report %s×%d, want %s", a.AdversaryModel, a.AdversaryK, spec.Label())
			}
			if len(a.AdversaryMembers) != spec.EffectiveK() {
				t.Fatalf("members = %d, want %d", len(a.AdversaryMembers), spec.EffectiveK())
			}
		})
	}
}

// TestBlackholeKillsChainFlow: a blackhole pinned to the only relay chain
// drops every data packet, so nothing is delivered, and the drops are
// visible in the metrics.
func TestBlackholeKillsChainFlow(t *testing.T) {
	cfg := advChain("DSR")
	cfg.Adversary = adversary.Spec{Model: adversary.ModelBlackhole, Nodes: []packet.NodeID{1}}
	m, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.AdversaryDropped == 0 {
		t.Fatal("on-path blackhole dropped nothing")
	}
	if m.Distinct != 0 {
		t.Fatalf("delivered %d packets through a blackhole chain", m.Distinct)
	}
	if m.AdversaryModel != adversary.ModelBlackhole {
		t.Fatalf("model = %q", m.AdversaryModel)
	}
}

// TestGrayholeDegradesChainFlow: a 50% grayhole hurts but TCP's
// retransmissions push some data through — strictly between the blackhole
// and clean runs.
func TestGrayholeDegradesChainFlow(t *testing.T) {
	clean, err := RunOne(advChain("DSR"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := advChain("DSR")
	cfg.Adversary = adversary.Spec{Model: adversary.ModelGrayhole, Nodes: []packet.NodeID{1}, DropRate: 0.5}
	gray, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gray.AdversaryDropped == 0 {
		t.Fatal("on-path grayhole dropped nothing")
	}
	if gray.Distinct == 0 {
		t.Fatal("grayhole behaved like a blackhole: nothing delivered")
	}
	if gray.Distinct >= clean.Distinct {
		t.Fatalf("grayhole did not degrade delivery: %d vs clean %d",
			gray.Distinct, clean.Distinct)
	}
	if gray.Retransmits == 0 {
		t.Fatal("TCP never retransmitted through a 50% grayhole")
	}
}

// TestCoalitionInterceptsMoreThanMember: on a chain where both relays are
// compromised, the union is at least each member's distinct count and the
// coalition fields are wired through to RunMetrics coherently.
func TestCoalitionInterceptsMoreThanMember(t *testing.T) {
	cfg := advChain("DSR")
	cfg.Adversary = adversary.Spec{Model: adversary.ModelCoalition, Nodes: []packet.NodeID{1, 2}}
	m, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.CoalitionDistinct == 0 {
		t.Fatal("on-path coalition heard nothing")
	}
	var sum uint64
	for _, mem := range m.AdversaryMembers {
		if mem.Distinct > m.CoalitionDistinct {
			t.Fatalf("member %d distinct %d exceeds union %d",
				mem.Node, mem.Distinct, m.CoalitionDistinct)
		}
		sum += mem.Distinct
	}
	if m.CoalitionDistinct > sum {
		t.Fatalf("union %d exceeds member sum %d", m.CoalitionDistinct, sum)
	}
	// Both relays see every packet of a 3-hop flow, so Ri ≈ 1.
	if m.InterceptionRatio < 0.9 {
		t.Fatalf("chain coalition Ri = %v, want ≈1", m.InterceptionRatio)
	}
}

// TestMobileEavesdropperScenario: the mobile tap runs end to end, visits
// its tour and reports per-host members.
func TestMobileEavesdropperScenario(t *testing.T) {
	cfg := advChain("DSR")
	cfg.Adversary = adversary.Spec{
		Model:    adversary.ModelMobile,
		Nodes:    []packet.NodeID{1, 2},
		Interval: 5 * sim.Second,
	}
	m, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.AdversaryK != 2 {
		t.Fatalf("k = %d, want 2", m.AdversaryK)
	}
	if m.CoalitionDistinct == 0 {
		t.Fatal("mobile tap on the only chain heard nothing")
	}
	var active int
	for _, mem := range m.AdversaryMembers {
		if mem.Frames > 0 {
			active++
		}
	}
	if active < 2 {
		t.Fatalf("mobile tap collected at only %d of 2 tour hosts", active)
	}
}

// TestAdversaryValidation: scenario-level validation catches bad specs.
func TestAdversaryValidation(t *testing.T) {
	cfg := determinismConfig("DSR", 1)
	cfg.Adversary = adversary.Spec{Model: "quantum"}
	if _, err := Build(cfg); err == nil {
		t.Fatal("unknown adversary model accepted")
	}
	cfg = determinismConfig("DSR", 1)
	cfg.Adversary = adversary.Spec{Model: adversary.ModelCoalition, Nodes: []packet.NodeID{999}}
	if _, err := Build(cfg); err == nil {
		t.Fatal("out-of-range adversary node accepted")
	}
	cfg = determinismConfig("DSR", 1)
	cfg.Adversary = adversary.Spec{Model: adversary.ModelCoalition, K: 500}
	if _, err := Build(cfg); err == nil {
		t.Fatal("coalition larger than the candidate pool accepted")
	}
	cfg = determinismConfig("DSR", 1)
	cfg.Adversary = adversary.Spec{Model: adversary.ModelCoalition, Nodes: []packet.NodeID{2, 2}}
	if _, err := Build(cfg); err == nil {
		t.Fatal("duplicate pinned adversary nodes accepted")
	}
	// A spec that sets a knob without a model must not silently fall back
	// to the passive eavesdropper.
	cfg = determinismConfig("DSR", 1)
	cfg.Adversary = adversary.Spec{DropRate: 0.4}
	if _, err := Build(cfg); err == nil {
		t.Fatal("model-less DropRate spec silently accepted")
	}
}
