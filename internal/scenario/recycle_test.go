package scenario

import (
	"encoding/json"
	"math"
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/packet"
	"mtsim/internal/routing"
	"mtsim/internal/sim"
)

// bufferedRouter is satisfied by all four protocols' routers.
type bufferedRouter interface{ Buffered() int }

// partitionedConfig builds a topology whose flow destination is
// unreachable: node 0 (source) and node 2 (the pinned eavesdropper) sit
// together, node 1 (destination) is far outside radio range. Discovery
// never completes within the horizon, so data packets are still sitting
// in the router's send buffer when the run ends.
func partitionedConfig(proto string) Config {
	cfg := DefaultConfig()
	cfg.Protocol = proto
	cfg.Placement = []geo.Point{{X: 0, Y: 0}, {X: 5000, Y: 5000}, {X: 100, Y: 0}}
	cfg.Flows = []FlowSpec{{Src: 0, Dst: 1}}
	cfg.Eavesdropper = 2
	cfg.Duration = 5 * sim.Second
	cfg.TCPStart = sim.Time(sim.Second)
	cfg.Seed = 11
	return cfg
}

// TestRetireDrainsRouterBuffers is the retire-drainage audit for the
// router-held send buffers (routing.SendBuffer byDst): for every
// protocol, packets that are still buffered awaiting discovery at the
// run horizon must hit the arena ledger exactly once when
// Scenario.Retire drains the node — no leak (a live packet after
// retire), no double release. The context is reused across protocols, so
// the audit also covers buffers that were recycled from a previous run.
func TestRetireDrainsRouterBuffers(t *testing.T) {
	ctx := NewContext()
	ctx.Arena().Check = true
	for _, proto := range AllProtocols() {
		t.Run(proto, func(t *testing.T) {
			s, err := ctx.Build(partitionedConfig(proto))
			if err != nil {
				t.Fatal(err)
			}
			s.Run()
			br, ok := s.Nodes[0].Proto.(bufferedRouter)
			if !ok {
				t.Fatalf("%T does not expose Buffered()", s.Nodes[0].Proto)
			}
			if br.Buffered() == 0 {
				t.Fatal("no packets buffered at the horizon; the audit proved nothing")
			}
			if live := s.Arena.LivePackets(); live == 0 {
				t.Fatal("ledger shows no live packets despite a non-empty send buffer")
			}
			s.Retire()
			assertArenaClean(t, s.Arena)
		})
	}
}

// TestRouterRecyclerReusesInstances proves the control-plane arena
// actually recycles: the routers of a context's second build are the
// very same instances (pointer-identical) as the first run's, taken back
// out of the context's recycler, and a protocol switch does not bleed
// one protocol's parked state into another's.
func TestRouterRecyclerReusesInstances(t *testing.T) {
	cfg := arenaLeakConfig("MTS")
	ctx := NewContext()
	s1, err := ctx.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := make(map[routing.Protocol]bool, len(s1.Nodes))
	for _, nd := range s1.Nodes {
		first[nd.Proto] = true
	}
	s1.Run()
	s1.Retire()

	s2, err := ctx.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range s2.Nodes {
		if !first[nd.Proto] {
			t.Fatalf("node %d: second run allocated a fresh router instead of recycling", i)
		}
	}

	// A different protocol draws from its own (empty) pool: every router
	// is new, none is a recycled MTS instance.
	dsrCfg := arenaLeakConfig("DSR")
	s3, err := ctx.Build(dsrCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, nd := range s3.Nodes {
		if first[nd.Proto] {
			t.Fatalf("node %d: DSR build handed out a parked MTS router", i)
		}
	}
}

// spotCheck1000Config is the acceptance scenario: 1000 nodes at the
// paper's 50-node density (side grows with sqrt(n)), 20 TCP flows, run
// under watchdog defaults (the CLI's unlimited Budget).
func spotCheck1000Config() Config {
	cfg := DefaultConfig()
	cfg.Protocol = "MTS"
	cfg.Nodes = 1000
	side := 1000 * math.Sqrt(1000.0/50.0)
	cfg.Field = geo.Field(side, side)
	cfg.Duration = 4 * sim.Second
	cfg.TCPStart = sim.Time(sim.Second)
	cfg.Seed = 9
	for i := 0; i < 20; i++ {
		cfg.Flows = append(cfg.Flows, FlowSpec{
			Src: packet.NodeID(i), Dst: packet.NodeID(500 + i),
		})
	}
	return cfg
}

// TestArenaSpotCheck1000Nodes is the large-scale leak spot-check: a
// 1000-node, 20-flow run with the full ledger armed must close its books
// at retire — zero live packets, zero double releases, zero foreign
// releases — and a second run on the recycled control plane must produce
// byte-identical metrics (the functional definition of "fully reset
// router state after Retire").
func TestArenaSpotCheck1000Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node spot check skipped in -short mode")
	}
	cfg := spotCheck1000Config()
	ctx := NewContext()
	ctx.Arena().Check = true

	runOnce := func() []byte {
		s, err := ctx.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.RunWatched(Budget{}) // watchdog defaults: unlimited
		if err != nil {
			t.Fatal(err)
		}
		if m.SegmentsSent == 0 {
			t.Fatal("no traffic generated; the spot check proved nothing")
		}
		s.Retire()
		assertArenaClean(t, s.Arena)
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	run1 := runOnce()
	run2 := runOnce()
	if string(run1) != string(run2) {
		t.Errorf("recycled 1000-node run diverges from its first run\nrun1: %s\nrun2: %s", run1, run2)
	}
}
