package scenario

import (
	"testing"

	"mtsim/internal/adversary"
	"mtsim/internal/countermeasure"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// assertArenaClean fails the test unless the scenario's (already retired)
// arena accounts for every packet and frame it ever handed out: zero
// live, zero double releases, zero foreign releases, zero writes after
// release. This is the leak-detecting harness around the packet pool — a
// new call site that forgets its Release (or releases twice) fails here
// with the exact counter that moved.
func assertArenaClean(t *testing.T, a *packet.Arena) {
	t.Helper()
	st := a.Stats()
	if live := a.LivePackets(); live != 0 {
		t.Errorf("leak: %d live packets after retire (acquired %d, released %d)",
			live, st.PacketsAcquired, st.PacketsReleased)
	}
	if live := a.LiveFrames(); live != 0 {
		t.Errorf("leak: %d live frames after retire (acquired %d, released %d)",
			live, st.FramesAcquired, st.FramesReleased)
	}
	if st.DoubleReleases != 0 {
		t.Errorf("%d double releases", st.DoubleReleases)
	}
	if st.ForeignReleases != 0 {
		t.Errorf("%d foreign releases (non-arena packets fed to Release)", st.ForeignReleases)
	}
	if st.PoisonTrips != 0 {
		t.Errorf("%d writes through released packets", st.PoisonTrips)
	}
	if st.PacketsAcquired == 0 {
		t.Error("arena saw no traffic: the scenario is not wired through it")
	}
}

// assertChannelDrained fails the test if the retired scenario's channel
// still tracks arrival batches: Retire must cancel every outstanding
// batched delivery and return the batch buffers to the channel's pool, or
// recycled contexts would replay stale receivers into the next run.
func assertChannelDrained(t *testing.T, s *Scenario) {
	t.Helper()
	if n := s.Channel.InflightBatches(); n != 0 {
		t.Errorf("leak: %d arrival batches still in flight after retire", n)
	}
}

// arenaLeakConfig is a full mobile 50-node run, short enough to grid over
// every protocol × adversary model.
func arenaLeakConfig(proto string) Config {
	cfg := DefaultConfig()
	cfg.Protocol = proto
	cfg.MaxSpeed = 10
	cfg.Duration = 8 * sim.Second
	cfg.TCPStart = sim.Time(2 * sim.Second)
	cfg.Seed = 5
	return cfg
}

// TestArenaLeakAccountingAllProtocols runs every protocol × adversary
// model under the arena's debug mode and demands a clean ledger at run
// end: every acquired packet and frame released exactly once. MAC queues,
// in-flight exchanges, jittered re-broadcasts and send buffers are
// drained by Scenario.Retire; everything else must have hit an explicit
// release point during the run.
func TestArenaLeakAccountingAllProtocols(t *testing.T) {
	adversaries := map[string]adversary.Spec{
		"legacy":    {},
		"coalition": {Model: adversary.ModelCoalition, K: 3},
		"mobile":    {Model: adversary.ModelMobile, K: 3, Interval: 2 * sim.Second},
		"blackhole": {Model: adversary.ModelBlackhole, K: 2},
		"grayhole":  {Model: adversary.ModelGrayhole, K: 2, DropRate: 0.5},
		// The route-discovery attackers hold state of their own: adaptive
		// re-taps on a timer, the wormhole claims control packets into its
		// tunnel (Retire must drain any still in flight at the horizon).
		"adaptive": {Model: adversary.ModelAdaptive, K: 3, Interval: 2 * sim.Second},
		"wormhole": {Model: adversary.ModelWormhole},
		"rushing":  {Model: adversary.ModelRushing, K: 2},
	}
	ctx := NewContext()
	for _, proto := range AllProtocols() {
		for name, spec := range adversaries {
			t.Run(proto+"/"+name, func(t *testing.T) {
				cfg := arenaLeakConfig(proto)
				cfg.Adversary = spec
				s, err := ctx.Build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				s.Arena.Check = true
				m := s.Run()
				if m.SegmentsSent == 0 {
					t.Fatalf("no traffic generated; leak accounting proved nothing")
				}
				s.Retire()
				assertArenaClean(t, s.Arena)
				assertChannelDrained(t, s)
			})
		}
	}
}

// TestArenaLeakAccountingCountermeasures extends the leak suite over the
// defender axis: the shuffler claims packets out of the originate path
// and owns them until Inject or Retire, so every (protocol, defence)
// pairing must still close the arena ledger. Shuffle runs cover the
// claim/inject path on all five protocols; the MTS-only rows cover
// aware-dispersal; the slow-hold row retires a scenario whose shuffle
// blocks are still buffered at the horizon.
func TestArenaLeakAccountingCountermeasures(t *testing.T) {
	cases := []struct {
		name  string
		proto string
		spec  countermeasure.Spec
	}{
		{"dsr/shuffle+aware", "DSR", countermeasure.Spec{Model: countermeasure.ModelShuffleAware}},
		{"aodv/shuffle+aware", "AODV", countermeasure.Spec{Model: countermeasure.ModelShuffleAware}},
		{"mts/shuffle+aware", "MTS", countermeasure.Spec{Model: countermeasure.ModelShuffleAware}},
		{"smr/shuffle+aware", "SMR", countermeasure.Spec{Model: countermeasure.ModelShuffleAware}},
		{"smr-backup/shuffle+aware", "SMR-BACKUP", countermeasure.Spec{Model: countermeasure.ModelShuffleAware}},
		{"mts/shuffle", "MTS", countermeasure.Spec{Model: countermeasure.ModelShuffle}},
		{"mts/aware", "MTS", countermeasure.Spec{Model: countermeasure.ModelAware}},
		// A hold longer than the residual run strands part-filled blocks
		// in the shuffler at the horizon; Retire must release them.
		{"mts/stranded-blocks", "MTS", countermeasure.Spec{
			Model: countermeasure.ModelShuffle, Depth: 64, Hold: 2 * sim.Second}},
		// Trust attaches a monitor to every node (watchdog obligations are
		// plain state, no packet custody) — the ledger must still close on
		// both a source-routed and a table-driven protocol.
		{"dsr/trust", "DSR", countermeasure.Spec{Model: countermeasure.ModelTrust}},
		{"mts/trust", "MTS", countermeasure.Spec{Model: countermeasure.ModelTrust}},
	}
	ctx := NewContext()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := arenaLeakConfig(tc.proto)
			cfg.Adversary = adversary.Spec{Model: adversary.ModelCoalition, K: 2}
			cfg.Countermeasure = tc.spec
			s, err := ctx.Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.Arena.Check = true
			m := s.Run()
			if m.SegmentsSent == 0 {
				t.Fatalf("no traffic generated; leak accounting proved nothing")
			}
			s.Retire()
			assertArenaClean(t, s.Arena)
			assertChannelDrained(t, s)
		})
	}
}

// TestArenaOnOffSameMetrics is the determinism regression through the
// pooled path: the same seed must produce byte-identical RunMetrics with
// recycling on and with the reference no-recycling mode (Pooling=false),
// for every protocol. Any use-after-release, premature reuse or
// pool-induced behaviour change shows up as a metrics diff here.
func TestArenaOnOffSameMetrics(t *testing.T) {
	for _, proto := range AllProtocols() {
		cfg := goldenConfig(proto)
		pooled := metricsJSON(t, cfg, Build)
		reference := metricsJSON(t, cfg, func(c Config) (*Scenario, error) {
			s, err := Build(c)
			if err != nil {
				return nil, err
			}
			s.Arena.Pooling = false // reference mode: account, never reuse
			return s, nil
		})
		if string(pooled) != string(reference) {
			t.Errorf("%s: pooled metrics diverge from reference mode\npooled:    %s\nreference: %s",
				proto, pooled, reference)
		}
	}
}

// TestArenaGridVsLinearThroughPool re-locks the PR 1 grid-vs-linear
// equivalence with the pooled data plane: receiver lookup strategy and
// packet recycling must compose without touching a single metric byte.
func TestArenaGridVsLinearThroughPool(t *testing.T) {
	cfg := goldenConfig("MTS")
	grid := metricsJSON(t, cfg, Build)
	linear := metricsJSON(t, cfg, func(c Config) (*Scenario, error) {
		s, err := Build(c)
		if err != nil {
			return nil, err
		}
		s.Channel.UseLinearScan(true)
		return s, nil
	})
	if string(grid) != string(linear) {
		t.Errorf("grid and linear scans diverge through the pooled path\ngrid:   %s\nlinear: %s", grid, linear)
	}
}

// TestRetireIsIdempotent: a second Retire must find nothing left to
// release (no double releases), so test harnesses can call it defensively.
func TestRetireIsIdempotent(t *testing.T) {
	s, err := Build(arenaLeakConfig("MTS"))
	if err != nil {
		t.Fatal(err)
	}
	s.Arena.Check = true
	s.Run()
	s.Retire()
	s.Retire()
	assertArenaClean(t, s.Arena)
}
