package scenario

import (
	"testing"

	"mtsim/internal/adversary"
	"mtsim/internal/countermeasure"
	"mtsim/internal/geo"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// wormholeChainConfig builds the engineered wormhole stage: an honest
// chain S(0)–A(1)–B(2)–C(3)–D(4) at 200 m spacing, with tunnel endpoint
// W1(5) a direct neighbour of only the source and W2(6) parked next to
// the destination, the two endpoints 800 m apart — far outside radio
// range, linked only by the out-of-band tunnel. The phantom link makes
// S→W1→W2→D look like 3 hops against the honest 4, and — because the
// tunnel carries unicast control across the phantom link — checking
// packets and route replies keep flowing over a path whose middle cannot
// carry a single data frame. That is the wormhole's deceit: the path
// looks fresh forever while every data packet routed into it dies at W1.
func wormholeChainConfig(proto string) Config {
	cfg := DefaultConfig()
	cfg.Protocol = proto
	cfg.Placement = []geo.Point{
		{X: 200, Y: 0},   // 0 S   source
		{X: 400, Y: 0},   // 1 A   honest relay
		{X: 600, Y: 0},   // 2 B   honest relay
		{X: 800, Y: 0},   // 3 C   honest relay
		{X: 1000, Y: 0},  // 4 D   destination
		{X: 100, Y: 170}, // 5 W1  tunnel endpoint, hears only S
		{X: 900, Y: 170}, // 6 W2  tunnel endpoint, hears C and D
	}
	cfg.Field = fieldFor(cfg.Placement)
	cfg.Flows = []FlowSpec{{Src: 0, Dst: 4}}
	cfg.Adversary = adversary.Spec{Model: adversary.ModelWormhole, Nodes: []packet.NodeID{5, 6}}
	cfg.Duration = 30 * sim.Second
	cfg.TCPStart = sim.Time(100 * sim.Millisecond)
	cfg.Seed = 7
	return cfg
}

// TestWormholeNoDuplicateDelivery is the scenario-level half of the
// tunnel's exactly-once property (the unit half lives in
// internal/adversary): a full run whose tunnel demonstrably carried
// control traffic and attracted data must close the arena ledger with
// zero live packets, zero double releases and zero foreign releases —
// a duplicate delivery of a tunnelled clone would surface as a double
// release the moment both recipients hand it back.
func TestWormholeNoDuplicateDelivery(t *testing.T) {
	for _, proto := range []string{"DSR", "MTS"} {
		t.Run(proto, func(t *testing.T) {
			s, err := Build(wormholeChainConfig(proto))
			if err != nil {
				t.Fatal(err)
			}
			s.Arena.Check = true
			m := s.Run()
			w, ok := s.Adversary.(*adversary.Wormhole)
			if !ok {
				t.Fatalf("adversary is %T, want *adversary.Wormhole", s.Adversary)
			}
			if w.Tunnelled() == 0 {
				t.Fatal("tunnel carried nothing; the ledger check proved nothing")
			}
			if m.AdversaryAttracted == 0 {
				t.Fatal("phantom link attracted no data; the topology is not exercising the attack")
			}
			s.Retire()
			assertArenaClean(t, s.Arena)
			assertChannelDrained(t, s)
		})
	}
}

// TestTrustRoutesAroundWormhole is the attacker–defender acceptance
// check, run on MTS because the phantom path's deceit is sharpest there:
// the destination stores both disjoint paths, and the tunnelled checking
// packets arrive faster than any real path's, so the undefended source
// keeps (re-)electing the wormhole path all run long while its data dies
// at W1. The trust defence watches W1 never forward, distrusts it after
// a couple of expired watchdog obligations, and the dropDistrusted /
// switchTarget-veto selection pins the flow to the honest chain.
// Observable: the wormhole attracts strictly less data and delivery
// strictly improves.
func TestTrustRoutesAroundWormhole(t *testing.T) {
	base := wormholeChainConfig("MTS")
	undefended, err := RunOne(base)
	if err != nil {
		t.Fatal(err)
	}
	defended := base
	defended.Countermeasure = countermeasure.Spec{Model: countermeasure.ModelTrust}
	trusted, err := RunOne(defended)
	if err != nil {
		t.Fatal(err)
	}

	if undefended.AdversaryAttracted == 0 {
		t.Fatal("undefended wormhole attracted nothing; baseline proves nothing")
	}
	if trusted.Extra["trustDistrusted"] == 0 {
		t.Fatalf("trust defence never distrusted a link (forwards %d, drops %d)",
			trusted.Extra["trustForwards"], trusted.Extra["trustDrops"])
	}
	if trusted.AdversaryAttracted >= undefended.AdversaryAttracted {
		t.Errorf("trust did not starve the wormhole: attracted %d with trust, %d undefended",
			trusted.AdversaryAttracted, undefended.AdversaryAttracted)
	}
	// The undefended flow is starved outright (the phantom path keeps
	// winning every checking round); the defended flow must recover by a
	// wide margin, not a rounding artefact.
	if trusted.DeliveryRate < undefended.DeliveryRate+0.5 {
		t.Errorf("trust did not recover delivery: %.3f with trust, %.3f undefended",
			trusted.DeliveryRate, undefended.DeliveryRate)
	}
}

// TestRushingSameSeedDeterministic pins the rushing attack's determinism
// contract: the attack rewrites only the attacker's own forwarding delay
// after every protocol RNG draw has already happened, so (a) two
// same-seed rushing runs are byte-identical, and (b) against a passive
// coalition occupying the very same nodes and consuming the very same
// random streams, the rushed timing measurably changes route selection.
func TestRushingSameSeedDeterministic(t *testing.T) {
	cfg := arenaLeakConfig("AODV")
	cfg.Duration = 10 * sim.Second
	cfg.Adversary = adversary.Spec{Model: adversary.ModelRushing, K: 2}

	run1 := metricsJSON(t, cfg, Build)
	run2 := metricsJSON(t, cfg, Build)
	if string(run1) != string(run2) {
		t.Errorf("same-seed rushing runs diverge\nrun1: %s\nrun2: %s", run1, run2)
	}

	passive := cfg
	passive.Adversary = adversary.Spec{Model: adversary.ModelCoalition, K: 2}
	baseline := metricsJSON(t, passive, Build)
	if string(baseline) == string(run1) {
		t.Error("rushing run is byte-identical to the passive coalition on the same nodes — the attack changed nothing")
	}
}

// TestTrustContextReuseBitIdentical locks the trust defence into the
// recycler contract: a context whose routers were parked by a trustless
// run must rebind them to a trust-carrying environment (and back) with
// byte-identical metrics against fresh builds — the observable proof
// that RecycleInto nils the oracle and rebind re-reads routing.TrustOf.
func TestTrustContextReuseBitIdentical(t *testing.T) {
	trustCfg := arenaLeakConfig("DSR")
	trustCfg.Adversary = adversary.Spec{Model: adversary.ModelWormhole}
	trustCfg.Countermeasure = countermeasure.Spec{Model: countermeasure.ModelTrust}
	plainCfg := arenaLeakConfig("DSR")

	freshTrust := metricsJSON(t, trustCfg, Build)
	freshPlain := metricsJSON(t, plainCfg, Build)

	ctx := NewContext()
	// Park the routers with a trustless run first, then alternate: every
	// rebind must pick up (or drop) the oracle with no residue.
	if got := metricsJSON(t, plainCfg, ctx.Build); string(got) != string(freshPlain) {
		t.Fatalf("reused trustless run diverges\nfresh:  %s\nreused: %s", freshPlain, got)
	}
	if got := metricsJSON(t, trustCfg, ctx.Build); string(got) != string(freshTrust) {
		t.Fatalf("trust run on recycled trustless routers diverges\nfresh:  %s\nreused: %s", freshTrust, got)
	}
	if got := metricsJSON(t, plainCfg, ctx.Build); string(got) != string(freshPlain) {
		t.Fatalf("trustless run on recycled trust-run routers diverges — RecycleInto leaked the oracle\nfresh:  %s\nreused: %s", freshPlain, got)
	}
}
