// Package scenario assembles complete simulations from a declarative
// Config: the shared radio channel, mobile nodes with their MACs and
// routing protocols, TCP Reno flows with FTP sources, the eavesdropping
// node, and the metrics collector. The default configuration is the
// paper's §IV-A setup: 50 nodes, 1000 m × 1000 m, random waypoint with 1 s
// pause, IEEE 802.11b, 250 m range, one FTP/TCP flow, 200 s.
package scenario

import (
	"fmt"
	"math"

	"mtsim/internal/adversary"
	"mtsim/internal/app"
	"mtsim/internal/core"
	"mtsim/internal/countermeasure"
	"mtsim/internal/eaves"
	"mtsim/internal/geo"
	"mtsim/internal/mac"
	"mtsim/internal/metrics"
	"mtsim/internal/mobility"
	"mtsim/internal/node"
	"mtsim/internal/packet"
	"mtsim/internal/phy"
	"mtsim/internal/routing"
	"mtsim/internal/routing/aodv"
	"mtsim/internal/routing/dsr"
	"mtsim/internal/routing/smr"
	"mtsim/internal/sim"
	"mtsim/internal/tcp"
)

// FlowSpec names one TCP connection.
type FlowSpec struct {
	Src, Dst packet.NodeID
}

// Config declares one simulation run. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	Protocol string // "DSR", "AODV" or "MTS"

	Nodes    int
	Field    geo.Rect
	RxRange  float64
	CSRange  float64
	MaxSpeed float64 // m/s
	MinSpeed float64
	Pause    sim.Duration

	Duration sim.Duration
	Seed     int64

	TCPStart sim.Time
	Flows    []FlowSpec // empty: one uniformly random distinct pair

	// Traffic selects the workload: "ftp" (default — TCP Reno with an
	// infinite backlog, the paper's workload) or "cbr" (fixed-rate
	// datagrams with no transport feedback, the workload of UDP-based
	// comparisons such as Broch et al., the paper's ref [2]).
	Traffic     string
	CBRInterval sim.Duration // default 50 ms (20 pkt/s)
	CBRSize     int          // payload bytes, default 512

	// Eavesdropper selects the eavesdropping node; RandomEavesdropper
	// picks a random node that is not a flow endpoint. It is the legacy
	// alias for the default Adversary (a single static eavesdropper) and
	// is ignored when Adversary selects a stronger model.
	Eavesdropper packet.NodeID

	// Adversary selects the threat model (internal/adversary): coalition
	// of k colluding eavesdroppers, mobile eavesdropper, or
	// blackhole/grayhole dropping relays. The zero Spec is the paper's
	// single random eavesdropper, honouring Eavesdropper above.
	Adversary adversary.Spec

	// Countermeasure selects the defence (internal/countermeasure): data
	// shuffling at the traffic sources (with per-packet dispersal across
	// MTS's disjoint paths), adversary-aware MTS path selection, or both.
	// The zero Spec is the paper's undefended baseline and perturbs
	// nothing.
	Countermeasure countermeasure.Spec

	MAC  mac.Config
	TCP  tcp.Config
	MTS  core.Config
	AODV aodv.Config
	DSR  dsr.Config
	SMR  smr.Config

	// Placement, when non-nil, pins every node to a static position
	// (len(Placement) overrides Nodes) — used by integration tests and
	// examples with engineered topologies.
	Placement []geo.Point
}

// RandomEavesdropper asks for a random non-endpoint eavesdropper.
const RandomEavesdropper packet.NodeID = -1

// Protocols lists the paper's three protocols. The related-work protocols
// SMR (split multipath) and SMR-BACKUP (Lim's backup-path scheme) are also
// selectable in Config.Protocol for the extension experiments.
func Protocols() []string { return []string{"DSR", "AODV", "MTS"} }

// AllProtocols additionally includes the related-work baselines of §II.
func AllProtocols() []string { return []string{"DSR", "AODV", "MTS", "SMR", "SMR-BACKUP"} }

// DefaultConfig returns the paper's simulation parameters (§IV-A).
func DefaultConfig() Config {
	return Config{
		Protocol:     "MTS",
		Nodes:        50,
		Field:        geo.Field(1000, 1000),
		RxRange:      phy.DefaultRxRange,
		CSRange:      phy.DefaultCSRange,
		MaxSpeed:     10,
		MinSpeed:     0,
		Pause:        sim.Second,
		Duration:     200 * sim.Second,
		Seed:         1,
		TCPStart:     sim.Time(5 * sim.Second),
		Eavesdropper: RandomEavesdropper,
		MAC:          mac.Default80211b(),
		TCP:          tcp.DefaultConfig(),
		MTS:          core.DefaultConfig(),
		AODV:         aodv.DefaultConfig(),
		DSR:          dsr.DefaultConfig(),
		SMR:          smr.DefaultConfig(),
	}
}

// Scenario is a built simulation ready to run.
type Scenario struct {
	Cfg     Config
	Sched   *sim.Scheduler
	Channel *phy.Channel
	Nodes   []*node.Node
	Flows   []FlowSpec
	Senders []*tcp.Sender
	CBRs    []*app.CBR
	Sinks   []*tcp.Sink
	// Adversary is the attached threat model; Eaves is the legacy
	// single-tap view of it (the first coalition member), nil for models
	// that are not eavesdropper coalitions.
	Adversary adversary.Adversary
	Eaves     *eaves.Eavesdropper
	// Countermeasure is the attached defence (countermeasure.None() for
	// the undefended baseline).
	Countermeasure countermeasure.Countermeasure
	Collector      *metrics.Collector
	// Arena is the run-scoped packet/frame pool behind the whole data
	// plane. Tests flip Arena.Check for leak accounting or Arena.Pooling
	// off for the reference (no-recycling) mode before running.
	Arena *packet.Arena
}

// Retire hands every packet still owned by the stack at the run horizon —
// MAC interface queues and in-flight exchanges, pending jittered
// broadcasts, protocol send buffers — back to the arena. With Arena.Check
// on, a retired scenario must account for every packet and frame it ever
// allocated (Arena.LivePackets()==0): that closure is the leak-detecting
// harness. The scenario must not be advanced afterwards.
func (s *Scenario) Retire() {
	if s.Countermeasure != nil {
		// Shuffle buffers hold claimed segments outside any node's
		// custody; release them before the nodes close their books.
		s.Countermeasure.Retire()
	}
	if ret, ok := s.Adversary.(routing.Retirer); ok {
		// Wormhole tunnels hold claimed control packets in flight between
		// their endpoints; same obligation as the shuffle buffers above.
		ret.Retire()
	}
	for _, nd := range s.Nodes {
		nd.Retire()
	}
	// Arrival batches still on the air reference frames the nodes just
	// released; drain them so no retired frame stays reachable through the
	// channel (their events never fire again — the run is dead).
	s.Channel.Retire()
}

// Context is a reusable bundle of the expensive per-run simulation
// scaffolding: the event scheduler (heap storage and pooled task events),
// the radio channel (spatial grid, Radio structs, arrival/reception pools)
// and the metrics collector. A fresh Build allocates all of it from
// scratch; Context.Build resets and reuses it instead, which is what lets
// a sweep worker run thousands of consecutive simulations without
// re-growing megabytes of scaffolding each time.
//
// Reuse changes allocation only, never behaviour: a scenario built through
// a Context is bit-for-bit identical to one built fresh (the golden-metric
// fixtures are verified through both paths). A Context serves one run at a
// time — building the next scenario invalidates the previous one, so keep
// only the returned RunMetrics (which are standalone copies). Not safe for
// concurrent use; give each worker goroutine its own Context.
type Context struct {
	sched     *sim.Scheduler
	ch        *phy.Channel
	collector *metrics.Collector
	nodes     []*node.Node
	rngs      sim.RNGRecycler
	arena     *packet.Arena

	// routers parks the previous run's reset routing-protocol instances
	// (their maps, send-buffer buckets and struct pools) for this run's
	// constructors to take back — the control-plane analogue of the arena.
	routers routing.Recycler
	// Cached per-index RNG derivation labels: the strings are pure
	// functions of the index, so re-running a context re-derives the same
	// streams from the same cached bytes instead of re-Sprintf-ing them.
	placeLabels *sim.LabelCache
	mobLabels   *sim.LabelCache
	nodeLabels  *sim.LabelCache
}

// NewContext returns an empty context; the first Build populates it.
func NewContext() *Context { return &Context{} }

// Arena returns the context's packet arena, allocating it on first call
// so a harness can arm its Check (leak-ledger) mode before the first
// Build. Pooling and Check flags survive the per-run Reset, which is
// what lets a sweep-wide leak assertion cover every run a worker's
// context ever executed.
func (ctx *Context) Arena() *packet.Arena {
	if ctx.arena == nil {
		ctx.arena = packet.NewArena()
	}
	return ctx.arena
}

// prepare hands out the context's scheduler, channel and collector, reset
// to their freshly-constructed state.
func (ctx *Context) prepare(rxRange, csRange float64) (*sim.Scheduler, *phy.Channel, *metrics.Collector) {
	if ctx.sched == nil {
		ctx.sched = sim.NewScheduler()
		ctx.ch = phy.NewChannel(ctx.sched, rxRange, csRange)
		ctx.collector = metrics.NewCollector()
		if ctx.arena == nil { // may have been pre-armed via Arena()
			ctx.arena = packet.NewArena()
		}
	} else {
		ctx.sched.Reset()
		ctx.ch.Reset(rxRange, csRange)
		ctx.collector.Reset()
		// The previous run's packets and frames — including any still in
		// MAC custody at its horizon — restock the free lists.
		ctx.arena.Reset()
	}
	// The previous run is dead by contract, so its RNG sources (~5 KiB of
	// math/rand state each, well over a hundred per scenario) re-seed for
	// this one.
	ctx.rngs.Recycle()
	// Likewise its routers: each parks its fully reset control-plane state
	// (route tables, seen sets, send-buffer buckets) in ctx.routers for
	// this run's protocol constructors to take back. This must happen here
	// — after the arena Reset reclaimed the data plane, and regardless of
	// whether the previous scenario was Retired — and must release no
	// packets (RecycleInto's contract), or the ledger would double-count.
	for _, nd := range ctx.nodes {
		if nd == nil {
			continue
		}
		if rc, ok := nd.Proto.(routing.Recyclable); ok {
			rc.RecycleInto(&ctx.routers)
		}
	}
	return ctx.sched, ctx.ch, ctx.collector
}

// Build wires a scenario reusing the context's scaffolding. The previous
// scenario built from this context becomes invalid.
func (ctx *Context) Build(cfg Config) (*Scenario, error) { return build(ctx, cfg) }

// RunOne builds and runs one configuration on the reused scaffolding.
func (ctx *Context) RunOne(cfg Config) (*metrics.RunMetrics, error) {
	s, err := ctx.Build(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// Build wires a scenario from the configuration.
func Build(cfg Config) (*Scenario, error) { return build(nil, cfg) }

// ctxLabelCaches returns the context's per-index label caches, creating
// them on first use; without a context it returns fresh single-build
// caches (same bytes, no cross-run reuse).
func ctxLabelCaches(ctx *Context) (place, mob, node *sim.LabelCache) {
	if ctx != nil {
		if ctx.placeLabels == nil {
			ctx.placeLabels = sim.NewLabelCache("place")
			ctx.mobLabels = sim.NewLabelCache("mobility")
			ctx.nodeLabels = sim.NewLabelCache("node")
		}
		return ctx.placeLabels, ctx.mobLabels, ctx.nodeLabels
	}
	return sim.NewLabelCache("place"), sim.NewLabelCache("mobility"), sim.NewLabelCache("node")
}

func build(ctx *Context, cfg Config) (*Scenario, error) {
	n := cfg.Nodes
	if cfg.Placement != nil {
		n = len(cfg.Placement)
	}
	if n < 2 {
		return nil, fmt.Errorf("scenario: need at least 2 nodes, have %d", n)
	}
	switch cfg.Protocol {
	case "DSR", "AODV", "MTS", "SMR", "SMR-BACKUP":
	default:
		return nil, fmt.Errorf("scenario: unknown protocol %q", cfg.Protocol)
	}

	// The countermeasure's aware/dispersal halves are MTS path-selection
	// policy, so they ride in through the router configuration; the
	// shuffling half attaches to the source nodes after flows are known.
	cmSpec := cfg.Countermeasure
	if err := cmSpec.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	mtsCfg := cfg.MTS
	if cmSpec.Shuffles() {
		mtsCfg.Disperse = true
	}
	if cmSpec.Aware() {
		mtsCfg.AwarePenalty = cmSpec.EffectivePenalty()
	}
	// The trust defence attaches a monitor to EVERY node (each scores its
	// own neighbours), and must do so before protocols are constructed —
	// routers capture the node's trust oracle at New time. It draws no RNG,
	// so legacy streams are untouched.
	var trustDef *countermeasure.TrustDefence
	if cmSpec.Trusts() {
		trustDef = countermeasure.NewTrustDefence(cmSpec.EffectiveThreshold())
	}

	s := &Scenario{Cfg: cfg}
	if ctx != nil {
		s.Sched, s.Channel, s.Collector = ctx.prepare(cfg.RxRange, cfg.CSRange)
		s.Nodes = ctx.nodes[:0]
		s.Arena = ctx.arena
	} else {
		s.Sched = sim.NewScheduler()
		s.Collector = metrics.NewCollector()
		s.Channel = phy.NewChannel(s.Sched, cfg.RxRange, cfg.CSRange)
		s.Arena = packet.NewArena()
	}
	s.Arena.SetClock(s.Sched.Now)
	// Receiver lookup is grid-indexed; size the index to the mobility field
	// (grown to cover any pinned placements outside it) before radios attach.
	bounds := cfg.Field
	for _, p := range cfg.Placement {
		bounds.MinX = math.Min(bounds.MinX, p.X)
		bounds.MinY = math.Min(bounds.MinY, p.Y)
		bounds.MaxX = math.Max(bounds.MaxX, p.X)
		bounds.MaxY = math.Max(bounds.MaxY, p.Y)
	}
	s.Channel.EnableGrid(bounds, 0)
	var master *sim.RNG
	if ctx != nil {
		master = ctx.rngs.New(cfg.Seed) // derived streams recycle too
	} else {
		master = sim.NewRNG(cfg.Seed)
	}
	uids := &packet.UIDSource{}

	// Per-index derivation labels. Context builds cache them across runs;
	// a fresh build derives from identical strings (LabelCache produces
	// exactly "<prefix>/<i>"), so both paths seed the same streams.
	placeL, mobL, nodeL := ctxLabelCaches(ctx)

	for i := 0; i < n; i++ {
		id := packet.NodeID(i)
		var mob mobility.Model
		if cfg.Placement != nil {
			mob = &mobility.Static{P: cfg.Placement[i]}
		} else if cfg.MaxSpeed <= 0 {
			// Static but randomly placed.
			rng := master.Derive(placeL.Label(i))
			mob = &mobility.Static{P: geo.Point{
				X: rng.Uniform(cfg.Field.MinX, cfg.Field.MaxX),
				Y: rng.Uniform(cfg.Field.MinY, cfg.Field.MaxY),
			}}
		} else {
			mob = mobility.NewRandomWaypoint(cfg.Field, cfg.MinSpeed, cfg.MaxSpeed,
				cfg.Pause, master.Derive(mobL.Label(i)))
		}
		nd := node.New(id, s.Sched, s.Channel, cfg.MAC, mob,
			master.Derive(nodeL.Label(i)), uids)
		nd.SetArena(s.Arena)
		if ctx != nil {
			// Before SetProtocol: the constructor is what takes a parked
			// router back out of the recycler.
			nd.SetStateRecycler(&ctx.routers)
		}
		if trustDef != nil {
			// Also before SetProtocol (see above).
			nd.InstallTrust(trustDef.Attach(id, s.Sched))
		}

		switch cfg.Protocol {
		case "DSR":
			nd.SetProtocol(dsr.New(nd, cfg.DSR))
		case "AODV":
			nd.SetProtocol(aodv.New(nd, cfg.AODV))
		case "MTS":
			nd.SetProtocol(core.New(nd, mtsCfg))
		case "SMR":
			sc := cfg.SMR
			sc.Mode = smr.ModeSplit
			nd.SetProtocol(smr.New(nd, sc))
		case "SMR-BACKUP":
			sc := cfg.SMR
			sc.Mode = smr.ModeBackup
			nd.SetProtocol(smr.New(nd, sc))
		}

		// Metric hooks.
		nd.OnRelay = func(p *packet.Packet) { s.Collector.Relay(id) }
		nd.OnRouteDrop = func(p *packet.Packet, reason string) { s.Collector.Drop(reason) }
		nd.Mac.OnSend = func(f *packet.Frame) {
			if f.Kind != packet.FrameData || f.Payload == nil {
				return
			}
			if f.Payload.Kind.IsControl() {
				s.Collector.ControlSend()
			} else {
				s.Collector.DataSend()
			}
		}
		s.Nodes = append(s.Nodes, nd)
	}

	// Flows.
	flows := cfg.Flows
	if len(flows) == 0 {
		rng := master.Derive("traffic")
		src := packet.NodeID(rng.Intn(n))
		dst := packet.NodeID(rng.Intn(n - 1))
		if dst >= src {
			dst++
		}
		flows = []FlowSpec{{Src: src, Dst: dst}}
	}
	for i, f := range flows {
		if f.Src == f.Dst || int(f.Src) >= n || int(f.Dst) >= n || f.Src < 0 || f.Dst < 0 {
			return nil, fmt.Errorf("scenario: bad flow %d: %d -> %d", i, f.Src, f.Dst)
		}
		switch cfg.Traffic {
		case "", "ftp":
			sender := tcp.NewSender(s.Nodes[f.Src], cfg.TCP, i, f.Dst)
			sink := tcp.NewSink(s.Nodes[f.Dst], i)
			app.NewFTP(sender, cfg.TCPStart).Install(s.Sched)
			s.Senders = append(s.Senders, sender)
			s.Sinks = append(s.Sinks, sink)
		case "cbr":
			interval := cfg.CBRInterval
			if interval <= 0 {
				interval = 50 * sim.Millisecond
			}
			size := cfg.CBRSize
			if size <= 0 {
				size = 512
			}
			src := app.NewCBR(s.Nodes[f.Src], i, f.Dst, size, interval,
				cfg.TCPStart, sim.Time(cfg.Duration))
			src.Install(s.Sched)
			sink := tcp.NewSink(s.Nodes[f.Dst], i)
			sink.Mute = true
			s.CBRs = append(s.CBRs, src)
			s.Sinks = append(s.Sinks, sink)
		default:
			return nil, fmt.Errorf("scenario: unknown traffic type %q", cfg.Traffic)
		}
	}
	s.Flows = flows

	// Adversary. Non-endpoint nodes are the candidate hosts for random
	// placement (an eavesdropper at a flow endpoint would trivially see
	// everything).
	candidates := func() []packet.NodeID {
		endpoints := map[packet.NodeID]bool{}
		for _, f := range flows {
			endpoints[f.Src] = true
			endpoints[f.Dst] = true
		}
		var out []packet.NodeID
		for i := 0; i < n; i++ {
			if !endpoints[packet.NodeID(i)] {
				out = append(out, packet.NodeID(i))
			}
		}
		return out
	}

	spec := cfg.Adversary
	// A spec that sets any non-default knob must go through the full
	// model path (where mismatched knobs are rejected loudly); only the
	// genuinely all-default single eavesdropper takes the legacy route.
	legacy := spec.IsZero() ||
		(spec.Model == adversary.ModelEavesdropper && len(spec.Nodes) == 0 &&
			spec.K <= 1 && spec.Interval == 0 && spec.DropRate == 0)
	var hosts []*node.Node
	var advRNG *sim.RNG
	if legacy {
		// The paper's single eavesdropper, honouring Config.Eavesdropper.
		// This path reproduces the pre-adversary RNG consumption exactly
		// (one "eaves" derivation and one draw, only when random), so
		// legacy scenarios stay bit-identical.
		ev := cfg.Eavesdropper
		if ev == RandomEavesdropper {
			rng := master.Derive("eaves")
			cand := candidates()
			if len(cand) == 0 {
				return nil, fmt.Errorf("scenario: no candidate eavesdropper among %d nodes", n)
			}
			ev = cand[rng.Intn(len(cand))]
		}
		if int(ev) >= n || ev < 0 {
			return nil, fmt.Errorf("scenario: eavesdropper %d out of range", ev)
		}
		spec.Model = adversary.ModelEavesdropper
		hosts = []*node.Node{s.Nodes[ev]}
	} else {
		spec.Model = spec.EffectiveModel()
		advRNG = master.Derive("eaves")
		if len(spec.Nodes) > 0 {
			seen := map[packet.NodeID]bool{}
			for _, id := range spec.Nodes {
				if int(id) >= n || id < 0 {
					return nil, fmt.Errorf("scenario: adversary node %d out of range", id)
				}
				if seen[id] {
					return nil, fmt.Errorf("scenario: duplicate adversary node %d", id)
				}
				seen[id] = true
				hosts = append(hosts, s.Nodes[id])
			}
		} else {
			k := spec.EffectiveK()
			pool := candidates()
			if k > len(pool) {
				return nil, fmt.Errorf("scenario: adversary wants %d nodes, only %d non-endpoints", k, len(pool))
			}
			for i := 0; i < k; i++ {
				j := advRNG.Intn(len(pool))
				hosts = append(hosts, s.Nodes[pool[j]])
				pool[j] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
			}
		}
	}
	adv, err := adversary.Build(spec, hosts, advRNG)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s.Adversary = adv
	if c, ok := adv.(*adversary.Coalition); ok {
		s.Eaves = c.Legacy()
	}

	// Countermeasure. A zero spec derives no RNG stream and attaches
	// nothing, keeping legacy runs bit-identical; shufflers attach to the
	// distinct flow sources in flow order.
	if cmSpec.IsZero() {
		s.Countermeasure = countermeasure.None()
	} else if trustDef != nil {
		// Already attached node-by-node above; Build would reject the model
		// (it has no source-side shuffler to construct).
		s.Countermeasure = trustDef
	} else {
		seenSrc := map[packet.NodeID]bool{}
		var cmHosts []countermeasure.Host
		for _, f := range flows {
			if !seenSrc[f.Src] {
				seenSrc[f.Src] = true
				cmHosts = append(cmHosts, s.Nodes[f.Src])
			}
		}
		var cmRNG *sim.RNG
		if cmSpec.Shuffles() {
			cmRNG = master.Derive("countermeasure")
		}
		cm, err := countermeasure.Build(cmSpec, cmHosts, cmRNG)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		s.Countermeasure = cm
	}

	if ctx != nil {
		// Hand the (possibly re-grown) node backing array back for the next
		// build; the Node structs themselves are per-run. Clear the slack
		// beyond this run's length so a smaller run does not pin a larger
		// previous run's node graphs for the context's lifetime.
		ctx.nodes = s.Nodes
		tail := ctx.nodes[len(ctx.nodes):cap(ctx.nodes)]
		for i := range tail {
			tail[i] = nil
		}
	}
	for _, nd := range s.Nodes {
		nd.Start()
	}
	return s, nil
}

// Run executes the simulation to its horizon and computes the metrics.
func (s *Scenario) Run() *metrics.RunMetrics {
	s.Sched.RunUntil(sim.Time(s.Cfg.Duration))
	return s.Gather()
}

// Gather computes the RunMetrics from the current state (callable mid-run
// for time series).
func (s *Scenario) Gather() *metrics.RunMetrics {
	members := s.Adversary.Members()
	m := &metrics.RunMetrics{
		Protocol:       s.Cfg.Protocol,
		MaxSpeed:       s.Cfg.MaxSpeed,
		Seed:           s.Cfg.Seed,
		Duration:       s.Cfg.Duration,
		EavesdropperID: members[0].Node,
		AdversaryModel: s.Adversary.Model(),
		AdversaryK:     len(members),
		Extra:          map[string]uint64{},
	}
	for _, mem := range members {
		m.AdversaryMembers = append(m.AdversaryMembers, metrics.AdversaryMember{
			Node: mem.Node, Frames: mem.Frames, Distinct: mem.Distinct,
		})
	}

	var distinct, arrivals, segments, retx, timeouts uint64
	var totalDelay sim.Duration
	for i := range s.Sinks {
		distinct += s.Sinks[i].Stats.Distinct
		arrivals += s.Sinks[i].Stats.Arrivals
		totalDelay += s.Sinks[i].Stats.TotalDelay
	}
	for i := range s.Senders {
		segments += s.Senders[i].Stats.Segments
		retx += s.Senders[i].Stats.Retransmits
		timeouts += s.Senders[i].Stats.Timeouts
	}
	for i := range s.CBRs {
		segments += s.CBRs[i].Sent
	}
	m.Distinct = distinct
	m.Arrivals = arrivals
	m.SegmentsSent = segments
	m.Retransmits = retx
	m.Timeouts = timeouts

	m.Participating = s.Collector.Participating()
	m.RelayRows, m.Alpha, m.RelayStdDev = s.Collector.RelayTable()
	if arrivals > 0 {
		m.HighestInterception = float64(s.Collector.MaxBeta()) / float64(arrivals)
	}
	m.InterceptionRatio = s.Adversary.Ratio(distinct)
	m.CoalitionDistinct = s.Adversary.Distinct()
	m.CoalitionFrames = s.Adversary.Frames()
	m.AdversaryDropped = s.Adversary.Dropped()
	m.AdversaryAttracted = s.Adversary.Attracted()

	payload := s.Cfg.TCP.MSS
	if s.Cfg.Traffic == "cbr" {
		if payload = s.Cfg.CBRSize; payload <= 0 {
			payload = 512
		}
	}
	m.CountermeasureModel = s.Countermeasure.Model()
	m.ShuffledSegments = s.Countermeasure.Shuffled()
	m.ShuffleBlocks = s.Countermeasure.Blocks()
	cs := s.Adversary.Contiguity()
	m.InterceptedLongestRun = cs.LongestRun
	m.InterceptedContigPkts = cs.RunPkts
	m.InterceptedContigBytes = cs.RunPkts * uint64(payload)
	m.InterceptedStreamRun = cs.StreamRun
	m.InterceptedStreamPkts = cs.StreamPkts
	m.InterceptedStreamBytes = cs.StreamPkts * uint64(payload)
	if m.CoalitionDistinct > 0 {
		m.InterceptedContigRatio = float64(cs.RunPkts) / float64(m.CoalitionDistinct)
		m.InterceptedStreamRatio = float64(cs.StreamPkts) / float64(m.CoalitionDistinct)
	}

	if distinct > 0 {
		m.AvgDelaySec = totalDelay.Seconds() / float64(distinct)
	}
	active := s.Cfg.Duration - sim.Duration(s.Cfg.TCPStart)
	if active > 0 {
		m.ThroughputPps = float64(distinct) / active.Seconds()
		m.ThroughputKbps = m.ThroughputPps * float64(payload) * 8 / 1000
	}
	if segments > 0 {
		m.DeliveryRate = float64(arrivals) / float64(segments)
	}
	m.ControlPkts = s.Collector.ControlTx()
	m.EventsRun = s.Sched.Executed

	// Protocol-specific diagnostics from the flow endpoints.
	for _, f := range s.Flows {
		switch p := s.Nodes[f.Src].Proto.(type) {
		case *core.Router:
			m.Extra["discoveries"] += p.Stats.Discoveries
			m.Extra["switches"] += p.Stats.Switches
			m.Extra["awareOverrides"] += p.Stats.AwareOverrides
		case *aodv.Router:
			m.Extra["discoveries"] += p.Discoveries
		case *dsr.Router:
			m.Extra["discoveries"] += p.Discoveries
			m.Extra["salvages"] += p.Salvages
		case *smr.Router:
			m.Extra["discoveries"] += p.Discoveries
			m.Extra["splitToggles"] += p.SplitToggles
		}
		if p, ok := s.Nodes[f.Dst].Proto.(*core.Router); ok {
			m.Extra["checks"] += p.Stats.ChecksSent
			m.Extra["pathsStored"] += p.Stats.PathsStored
		}
	}
	if td, ok := s.Countermeasure.(*countermeasure.TrustDefence); ok {
		m.Extra["trustForwards"] = td.Forwards()
		m.Extra["trustDrops"] = td.Drops()
		m.Extra["trustDistrusted"] = td.DistrustedLinks()
	}
	return m
}

// RunOne is the convenience path: build and run a single configuration.
func RunOne(cfg Config) (*metrics.RunMetrics, error) {
	s, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// Sample is one point of a metric time series ("throughput over the
// simulation time", the view behind the paper's Fig. 9 caption).
type Sample struct {
	At sim.Time
	// DistinctDelta is the number of new distinct data packets delivered
	// in the interval ending at At.
	DistinctDelta uint64
	// ThroughputPps is the delivery rate over that interval.
	ThroughputPps float64
	// CumulativeDistinct is the running total.
	CumulativeDistinct uint64
}

// RunSampled executes the simulation, recording a throughput sample every
// interval, and returns the series along with the final metrics.
func (s *Scenario) RunSampled(interval sim.Duration) ([]Sample, *metrics.RunMetrics) {
	if interval <= 0 {
		interval = 10 * sim.Second
	}
	var series []Sample
	var prev uint64
	for t := sim.Time(interval); t <= sim.Time(s.Cfg.Duration); t = t.Add(interval) {
		s.Sched.RunUntil(t)
		var distinct uint64
		for i := range s.Sinks {
			distinct += s.Sinks[i].Stats.Distinct
		}
		series = append(series, Sample{
			At:                 t,
			DistinctDelta:      distinct - prev,
			ThroughputPps:      float64(distinct-prev) / interval.Seconds(),
			CumulativeDistinct: distinct,
		})
		prev = distinct
	}
	s.Sched.RunUntil(sim.Time(s.Cfg.Duration))
	return series, s.Gather()
}
