package scenario

import (
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// Failure injection through the PHY: a chosen link is force-corrupted for
// a window of time mid-run; every protocol must detect the break via MAC
// feedback, reroute (or pause), and recover once the link heals.
func TestLinkOutageRecoveryAllProtocols(t *testing.T) {
	for _, proto := range AllProtocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			// Diamond with two disjoint paths so rerouting is possible.
			cfg := DefaultConfig()
			cfg.Protocol = proto
			cfg.Placement = pointsDiamond()
			cfg.Field = fieldFor(cfg.Placement)
			cfg.Duration = 40 * sim.Second
			cfg.TCPStart = sim.Time(500 * sim.Millisecond)
			cfg.Flows = []FlowSpec{{Src: 0, Dst: 3}}
			cfg.Eavesdropper = 1

			s, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Break every frame in/out of node 1 during [10s, 20s): the
			// short branch dies; only 0-2-3 works.
			s.Channel.DropFrame = func(f *packet.Frame, to packet.NodeID) bool {
				now := s.Sched.Now()
				if now < sim.Time(10*sim.Second) || now >= sim.Time(20*sim.Second) {
					return false
				}
				return f.TxFrom == 1 || to == 1
			}
			m := s.Run()

			if m.Distinct < 500 {
				t.Fatalf("%s: only %d distinct packets; outage not survived", proto, m.Distinct)
			}
			// Traffic flowed after the heal: the last delivery must be in
			// the final quarter of the run.
			if s.Sinks[0].Stats.LastArrival < sim.Time(30*sim.Second) {
				t.Fatalf("%s: last arrival at %v; no recovery after outage",
					proto, s.Sinks[0].Stats.LastArrival)
			}
		})
	}
}

// pointsDiamond: equal-length disjoint branches 0-1-3 and 0-2-3.
func pointsDiamond() []geo.Point {
	return []geo.Point{
		{X: 0, Y: 200}, {X: 150, Y: 350}, {X: 150, Y: 50}, {X: 300, Y: 200},
	}
}
