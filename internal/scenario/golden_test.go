package scenario

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"mtsim/internal/adversary"
	"mtsim/internal/countermeasure"
	"mtsim/internal/metrics"
	"mtsim/internal/sim"
)

// Regenerate the fixtures after an intentional behaviour change with:
//
//	go test ./internal/scenario -run TestGoldenMetrics -update
//
// and commit the diff — it is the reviewable record of what the change did
// to every metric.
var updateGolden = flag.Bool("update", false, "rewrite golden metric fixtures")

// goldenFile pins the architecture the fixture was generated on: Go forbids
// nothing about FMA contraction differing across GOARCH, so float metrics
// are only guaranteed bit-identical on the same architecture.
type goldenFile struct {
	GOARCH  string              `json:"goarch"`
	Metrics *metrics.RunMetrics `json:"metrics"`
}

func goldenConfig(proto string) Config {
	cfg := DefaultConfig()
	cfg.Protocol = proto
	cfg.MaxSpeed = 10
	cfg.Duration = 12 * sim.Second
	cfg.TCPStart = sim.Time(2 * sim.Second)
	// Seed 5 routes the flow over multiple hops for every protocol, so the
	// fixtures lock non-trivial relay tables and interception ratios, not
	// just a direct-neighbour transfer.
	cfg.Seed = 5
	return cfg
}

// goldenCase names one locked fixture: the five plain protocol runs plus
// the defender-vs-attacker MTS trio (coalition baseline, shuffle, aware),
// whose committed numbers are the review artefact for the countermeasure
// subsystem — the shuffle fixture's InterceptedContigBytes against the
// coalition baseline's is the paper-claim evidence.
type goldenCase struct {
	name string
	cfg  Config
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, proto := range AllProtocols() {
		cases = append(cases, goldenCase{strings.ToLower(proto), goldenConfig(proto)})
	}
	coalition := func() Config {
		cfg := goldenConfig("MTS")
		cfg.Adversary = adversary.Spec{Model: adversary.ModelCoalition, K: 2}
		return cfg
	}
	base := coalition()
	shuffle := coalition()
	shuffle.Countermeasure = countermeasure.Spec{Model: countermeasure.ModelShuffle}
	aware := coalition()
	aware.Countermeasure = countermeasure.Spec{Model: countermeasure.ModelAware}
	// The attacker–defender matchups of the co-evolution loop: trust
	// against the route-discovery attacks it was built for, shuffle
	// against the tap that re-positions toward observed traffic.
	trustWormhole := goldenConfig("DSR")
	trustWormhole.Adversary = adversary.Spec{Model: adversary.ModelWormhole}
	trustWormhole.Countermeasure = countermeasure.Spec{Model: countermeasure.ModelTrust}
	trustRushing := goldenConfig("AODV")
	trustRushing.Adversary = adversary.Spec{Model: adversary.ModelRushing, K: 2}
	trustRushing.Countermeasure = countermeasure.Spec{Model: countermeasure.ModelTrust}
	shuffleAdaptive := goldenConfig("MTS")
	shuffleAdaptive.Adversary = adversary.Spec{Model: adversary.ModelAdaptive, Interval: 2 * sim.Second}
	shuffleAdaptive.Countermeasure = countermeasure.Spec{Model: countermeasure.ModelShuffle}
	return append(cases,
		goldenCase{"mts-coalition", base},
		goldenCase{"mts-coalition-shuffle", shuffle},
		goldenCase{"mts-coalition-aware", aware},
		goldenCase{"dsr-wormhole-trust", trustWormhole},
		goldenCase{"aodv-rushing-trust", trustRushing},
		goldenCase{"mts-adaptive-shuffle", shuffleAdaptive},
	)
}

// TestGoldenMetrics locks the complete RunMetrics of one fixed-seed run per
// protocol to committed JSON fixtures. Where TestSameSeedSameMetrics only
// proves a binary agrees with itself, this fails with a readable field/line
// diff when any commit changes any metric of a legacy scenario — the
// regression harness behind the adversary refactor's bit-compatibility
// guarantee.
func TestGoldenMetrics(t *testing.T) {
	// One shared context across all protocols: the fixtures must hold
	// through the sweep engine's per-worker scaffolding reuse, not just
	// through fresh builds (RunOne is checked against the context path in
	// context_test.go).
	ctx := NewContext()
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ctx.Build(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Every golden run doubles as a packet-arena leak check: the
			// fixtures prove pooling changed no metric, and the retired
			// arena's ledger proves no call site leaked or double-freed.
			s.Arena.Check = true
			m := s.Run()
			s.Retire()
			assertArenaClean(t, s.Arena)
			got, err := json.MarshalIndent(goldenFile{GOARCH: runtime.GOARCH, Metrics: m}, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", "golden", tc.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}

			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture %s (generate with -update): %v", path, err)
			}
			var wantFile goldenFile
			if err := json.Unmarshal(want, &wantFile); err != nil {
				t.Fatalf("corrupt fixture %s: %v", path, err)
			}
			if wantFile.GOARCH != runtime.GOARCH {
				t.Skipf("fixture generated on %s, running on %s: float metrics are only bit-stable per architecture",
					wantFile.GOARCH, runtime.GOARCH)
			}
			if diff := diffLines(string(want), string(got)); diff != "" {
				t.Errorf("metrics diverged from %s (regenerate with -update if intended):\n%s",
					path, diff)
			}
		})
	}
}

// diffLines returns a unified-style listing of the lines that differ
// between two texts, or "" when they are identical.
func diffLines(want, got string) string {
	if want == got {
		return ""
	}
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl == gl {
			continue
		}
		if shown == 20 {
			b.WriteString("  ... (more differences elided)\n")
			break
		}
		fmt.Fprintf(&b, "  line %d:\n    -%s\n    +%s\n", i+1, wl, gl)
		shown++
	}
	return b.String()
}
