package scenario

import (
	"fmt"
	"time"

	"mtsim/internal/metrics"
	"mtsim/internal/sim"
)

// Budget bounds one watched run (Scenario.RunWatched): a
// simulated-event budget that catches livelocked simulations (event
// storms that never advance toward the horizon) and a wall-clock budget
// that catches hung ones. The zero Budget is unlimited and RunWatched
// degrades to the plain Run path.
type Budget struct {
	// MaxEvents is the per-run simulated-event budget; 0 is unlimited.
	// It is compared against the scheduler's Executed counter, which a
	// Context resets to zero for every run. Executed counts scheduler
	// dispatches: under batched arrival delivery (the default) one
	// dispatched PHY event serves a whole receiver batch, so the same
	// simulated traffic consumes far fewer budget units than in the
	// unbatched reference mode — budgets tuned before the batching (or
	// against phy.UseUnbatchedArrivals runs) are conservative, never
	// too tight, when reused on the batched path.
	MaxEvents uint64
	// WallClock is the per-run wall-clock budget; 0 is unlimited. It is
	// checked between event chunks, so the effective resolution is one
	// chunk (a few thousand events, microseconds of wall time).
	WallClock time.Duration
}

func (b Budget) unlimited() bool { return b.MaxEvents == 0 && b.WallClock == 0 }

// Abort reasons carried by AbortError.Reason.
const (
	AbortEventBudget = "event-budget"
	AbortWallClock   = "wall-clock"
)

// AbortError reports a run killed by its Budget. The scenario has been
// retired by the time the error is returned — every packet is back in
// the arena and the owning Context can immediately build the next run —
// and the error carries enough attribution (which budget tripped, how
// far the run got) for post-mortems and the sweep engine's journal.
type AbortError struct {
	Reason  string   // AbortEventBudget or AbortWallClock
	Events  uint64   // events executed when the watchdog fired
	SimTime sim.Time // virtual time reached
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("scenario: run killed by %s watchdog after %d events at t=%.3fs",
		e.Reason, e.Events, e.SimTime.Seconds())
}

// watchdogChunk is how many events run between watchdog checks. Small
// enough that a wall-clock deadline is noticed within microseconds of
// real time, large enough that the per-chunk bookkeeping is invisible
// next to event dispatch.
const watchdogChunk = 2048

// RunWatched executes the simulation to its horizon like Run, but under
// a watchdog: the run is sliced into event chunks (bit-identical to an
// unsliced run; see sim.Scheduler.RunUntilBudget) and between chunks the
// budget is checked. A tripped budget kills the run cleanly — the
// scenario is retired, so the arena's books close and a reusing Context
// is immediately safe — and returns an *AbortError attributing the kill.
// The scenario must not be advanced after an abort.
//
// Determinism: a watched run that completes is indistinguishable from
// Run (same events in the same order, same metrics); the wall-clock
// check only ever decides whether to keep going, never what happens
// next. A retry of a killed run under the same configuration and seed
// is therefore byte-identical to a never-killed run.
func (s *Scenario) RunWatched(b Budget) (*metrics.RunMetrics, error) {
	horizon := sim.Time(s.Cfg.Duration)
	if b.unlimited() {
		s.Sched.RunUntil(horizon)
		return s.Gather(), nil
	}
	var deadline time.Time
	if b.WallClock > 0 {
		deadline = time.Now().Add(b.WallClock)
	}
	for {
		chunk := uint64(watchdogChunk)
		if b.MaxEvents > 0 {
			rem := uint64(0)
			if s.Sched.Executed < b.MaxEvents {
				rem = b.MaxEvents - s.Sched.Executed
			}
			if rem < chunk {
				chunk = rem
			}
		}
		if chunk > 0 && s.Sched.RunUntilBudget(horizon, chunk) {
			return s.Gather(), nil
		}
		if b.MaxEvents > 0 && s.Sched.Executed >= b.MaxEvents {
			return nil, s.abort(AbortEventBudget)
		}
		if b.WallClock > 0 && time.Now().After(deadline) {
			return nil, s.abort(AbortWallClock)
		}
	}
}

// abort is the clean mid-run kill: retire the scenario (every packet
// still in any node's custody goes back to the arena, shuffle buffers
// drain first) and attribute the kill. The scheduler still holds pending
// events, but the scenario is dead by contract — a reusing Context
// resets the scheduler, channel and arena before the next build.
func (s *Scenario) abort(reason string) *AbortError {
	err := &AbortError{Reason: reason, Events: s.Sched.Executed, SimTime: s.Sched.Now()}
	s.Retire()
	return err
}
