package scenario

import (
	"testing"

	"mtsim/internal/adversary"
	"mtsim/internal/countermeasure"
	"mtsim/internal/sim"
)

// cmConfig is the defender-vs-attacker scenario the acceptance claim is
// measured on: the paper's 50-node field, MTS, a coalition of two
// colluding taps, 60 simulated seconds (long enough for several checking
// rounds and thousands of segments).
func cmConfig(model string) Config {
	cfg := DefaultConfig()
	cfg.Protocol = "MTS"
	cfg.MaxSpeed = 10
	cfg.Duration = 60 * sim.Second
	cfg.Seed = 7
	cfg.Adversary = adversary.Spec{Model: adversary.ModelCoalition, K: 2}
	if model != "" {
		cfg.Countermeasure = countermeasure.Spec{Model: model}
	}
	return cfg
}

// TestShuffleReducesStreamContiguity is the committed defender-vs-attacker
// claim (mirrored by the golden fixtures mts-coalition.json vs
// mts-coalition-shuffle.json): data shuffling cuts the contiguous byte
// stream the coalition hears to less than half the undefended baseline,
// at equal delivery rate, while still intercepting plenty of packets (the
// defence starves the attacker of contiguity, not the sink of data).
func TestShuffleReducesStreamContiguity(t *testing.T) {
	ctx := NewContext()
	base, err := ctx.RunOne(cmConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	shuf, err := ctx.RunOne(cmConfig(countermeasure.ModelShuffle))
	if err != nil {
		t.Fatal(err)
	}

	if base.CoalitionDistinct == 0 || shuf.CoalitionDistinct == 0 {
		t.Fatalf("coalition intercepted nothing (base Pe=%d, shuffle Pe=%d)",
			base.CoalitionDistinct, shuf.CoalitionDistinct)
	}
	if shuf.ShuffledSegments == 0 || shuf.ShuffleBlocks == 0 {
		t.Fatalf("shuffle run released no permuted segments (%d in %d blocks)",
			shuf.ShuffledSegments, shuf.ShuffleBlocks)
	}
	if base.ShuffledSegments != 0 {
		t.Fatalf("baseline run reports %d shuffled segments", base.ShuffledSegments)
	}
	if shuf.InterceptedStreamBytes*2 >= base.InterceptedStreamBytes {
		t.Errorf("shuffling did not halve the intercepted contiguous bytes: %d vs baseline %d",
			shuf.InterceptedStreamBytes, base.InterceptedStreamBytes)
	}
	if shuf.InterceptedStreamRun*10 >= base.InterceptedStreamRun {
		t.Errorf("longest in-order streak barely moved: %d vs baseline %d",
			shuf.InterceptedStreamRun, base.InterceptedStreamRun)
	}
	// "At equal delivery rate": the defence must not pay for contiguity
	// with reliability.
	if diff := shuf.DeliveryRate - base.DeliveryRate; diff < -0.02 {
		t.Errorf("shuffling cost %.3f delivery rate (%.3f vs %.3f)",
			-diff, shuf.DeliveryRate, base.DeliveryRate)
	}
	if base.InterceptedStreamRatio < 0.9 {
		t.Errorf("undefended stream ratio %.3f — baseline should hand the tap an in-order stream",
			base.InterceptedStreamRatio)
	}
	if shuf.InterceptedStreamRatio > 0.6 {
		t.Errorf("defended stream ratio %.3f — shuffle should fragment the stream", shuf.InterceptedStreamRatio)
	}
}

// TestAwarePolicyActs: the usage-skew policy must observably act (override
// at least one nominated switch) and report its model in the metrics.
func TestAwarePolicyActs(t *testing.T) {
	m, err := RunOne(cmConfig(countermeasure.ModelAware))
	if err != nil {
		t.Fatal(err)
	}
	if m.CountermeasureModel != countermeasure.ModelAware {
		t.Fatalf("metrics label the run %q", m.CountermeasureModel)
	}
	if m.Extra["awareOverrides"] == 0 {
		t.Error("aware policy never overrode a nominated switch in 60 s")
	}
	if m.ShuffledSegments != 0 {
		t.Errorf("aware-only run shuffled %d segments", m.ShuffledSegments)
	}
}

// TestShuffleReassemblyAtSink: end to end, shuffling must be transparent
// to the destination — the sink reassembles the permuted stream back into
// the exact segment sequence, with at most a tail of segments still in
// flight (or in a part-filled block) at the horizon.
func TestShuffleReassemblyAtSink(t *testing.T) {
	cfg := cmConfig(countermeasure.ModelShuffle)
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	if len(s.Sinks) != 1 {
		t.Fatalf("expected 1 sink, have %d", len(s.Sinks))
	}
	sink := s.Sinks[0]
	if sink.Stats.Distinct < 500 {
		t.Fatalf("only %d distinct segments delivered; reassembly proved little", sink.Stats.Distinct)
	}
	// Every distinct arrival below the in-order frontier is reassembled by
	// construction; the gap between Distinct and the frontier is segments
	// stranded out-of-order at the cut. It must be bounded by what can be
	// concurrently in flight (send window + one shuffle block), not grow
	// with the transfer: a hole the sender never repaired would drag the
	// frontier arbitrarily far behind.
	frontier := uint64(sink.Stats.HighestInOrder + 1)
	inFlight := uint64(cfg.TCP.MaxWindow) + 8
	if sink.Stats.Distinct > frontier+inFlight {
		t.Errorf("reassembly frontier %d lags %d distinct arrivals by more than window+block (%d)",
			frontier, sink.Stats.Distinct, inFlight)
	}
	if m.SegmentsSent < m.Distinct {
		t.Errorf("more distinct deliveries (%d) than segments sent (%d)", m.Distinct, m.SegmentsSent)
	}
}

// TestCountermeasureSpecRejected: invalid specs must fail scenario
// construction loudly, like adversary knob mismatches do.
func TestCountermeasureSpecRejected(t *testing.T) {
	bad := []countermeasure.Spec{
		{Model: "jam"},
		{Depth: 4},
		{Model: countermeasure.ModelAware, Depth: 4},
	}
	for _, spec := range bad {
		cfg := DefaultConfig()
		cfg.Duration = sim.Duration(sim.Second)
		cfg.Countermeasure = spec
		if _, err := Build(cfg); err == nil {
			t.Errorf("Build accepted invalid countermeasure spec %+v", spec)
		}
	}
}

// TestCountermeasureDeterminism: a defended run is as deterministic as an
// undefended one — identical config and seed, byte-identical metrics,
// through both the fresh-build and reused-context paths.
func TestCountermeasureDeterminism(t *testing.T) {
	for _, model := range []string{countermeasure.ModelShuffle, countermeasure.ModelShuffleAware} {
		cfg := cmConfig(model)
		cfg.Duration = 20 * sim.Second
		fresh := metricsJSON(t, cfg, Build)
		ctx := NewContext()
		reused := metricsJSON(t, cfg, ctx.Build)
		if string(fresh) != string(reused) {
			t.Errorf("%s: context-built run diverges from fresh build", model)
		}
		again := metricsJSON(t, cfg, Build)
		if string(fresh) != string(again) {
			t.Errorf("%s: same seed, different metrics", model)
		}
	}
}
