package scenario

import (
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// staticChain returns a linear placement with 200m spacing: 0-1-2-...-k,
// only adjacent nodes in the 250m radio range.
func staticChain(k int) []geo.Point {
	pts := make([]geo.Point, k+1)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 200, Y: 0}
	}
	return pts
}

// pointsDiamondUnequal builds two disjoint branches of different length
// between node 0 and node 3: 0-1-3 (2 hops) and 0-4-5-3 (3 hops).
func pointsDiamondUnequal() []geo.Point {
	return []geo.Point{
		{X: 0, Y: 200},   // 0 source
		{X: 150, Y: 350}, // 1 short branch relay
		{X: 800, Y: 800}, // 2 bystander (eavesdropper candidate parking)
		{X: 300, Y: 200}, // 3 destination
		{X: 80, Y: 40},   // 4 long branch relay A
		{X: 250, Y: 20},  // 5 long branch relay B
	}
}

// fieldFor returns a bounding field comfortably containing the points.
func fieldFor(pts []geo.Point) geo.Rect {
	maxX, maxY := 0.0, 0.0
	for _, p := range pts {
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	return geo.Field(maxX+100, maxY+100)
}

// chainConfig builds a short static-chain config for the given protocol.
func chainConfig(proto string, hops int, dur sim.Duration) Config {
	cfg := DefaultConfig()
	cfg.Protocol = proto
	cfg.Placement = staticChain(hops)
	cfg.Field = geo.Field(float64(hops)*200+100, 100)
	cfg.Duration = dur
	cfg.TCPStart = sim.Time(100 * sim.Millisecond)
	cfg.Flows = []FlowSpec{{Src: 0, Dst: packet.NodeID(hops)}}
	cfg.Eavesdropper = 1
	return cfg
}

func TestStaticChainAllProtocols(t *testing.T) {
	for _, proto := range Protocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			cfg := chainConfig(proto, 3, 20*sim.Second)
			m, err := RunOne(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.Distinct < 100 {
				t.Fatalf("%s: only %d distinct packets over 20s on a 3-hop chain", proto, m.Distinct)
			}
			if m.DeliveryRate < 0.9 {
				t.Fatalf("%s: delivery rate %.3f on a static chain", proto, m.DeliveryRate)
			}
			if m.AvgDelaySec <= 0 || m.AvgDelaySec > 1 {
				t.Fatalf("%s: avg delay %.4fs implausible", proto, m.AvgDelaySec)
			}
			// Exactly nodes 1 and 2 relay.
			if m.Participating != 2 {
				t.Fatalf("%s: participating = %d, want 2", proto, m.Participating)
			}
			// Eavesdropper (node 1) is on the only path: intercepts ~everything.
			if m.InterceptionRatio < 0.95 {
				t.Fatalf("%s: interception = %.3f, want ~1 on single path", proto, m.InterceptionRatio)
			}
			if m.ControlPkts == 0 {
				t.Fatalf("%s: zero control packets", proto)
			}
		})
	}
}

func TestStaticDiamondMTSUsesBothPaths(t *testing.T) {
	// Diamond: 0 at left, 3 at right, 1 and 2 as two disjoint relays.
	// Leg length 212m (in range), endpoint separation 300m (out of range),
	// relay separation 300m (out of range): exactly two disjoint paths.
	// MTS's checking/switching should spread traffic over both relays.
	pts := []geo.Point{
		{X: 0, Y: 200}, {X: 150, Y: 350}, {X: 150, Y: 50}, {X: 300, Y: 200},
	}
	cfg := DefaultConfig()
	cfg.Protocol = "MTS"
	cfg.Placement = pts
	cfg.Field = geo.Field(500, 500)
	cfg.Duration = 60 * sim.Second
	cfg.TCPStart = sim.Time(100 * sim.Millisecond)
	cfg.Flows = []FlowSpec{{Src: 0, Dst: 3}}
	cfg.Eavesdropper = 1

	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	if m.DeliveryRate < 0.9 {
		t.Fatalf("delivery = %.3f", m.DeliveryRate)
	}
	if m.Extra["pathsStored"] < 2 {
		t.Fatalf("destination stored %d paths, want 2", m.Extra["pathsStored"])
	}
	if m.Extra["checks"] == 0 {
		t.Fatal("no checking packets sent")
	}
	// Both relays participated (MTS spreads load across disjoint paths).
	if m.Participating != 2 {
		t.Fatalf("participating = %d, want both relays", m.Participating)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := chainConfig("MTS", 3, 10*sim.Second)
	a, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Distinct != b.Distinct || a.Arrivals != b.Arrivals ||
		a.ControlPkts != b.ControlPkts || a.EventsRun != b.EventsRun {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 10 * sim.Second
	cfg.Nodes = 20
	cfg.MaxSpeed = 10
	a, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.EventsRun == b.EventsRun && a.Distinct == b.Distinct {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestMobile50NodeSmoke(t *testing.T) {
	// The paper's full setup at reduced duration: all three protocols
	// must move TCP data end to end under mobility.
	for _, proto := range Protocols() {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Protocol = proto
			cfg.Duration = 30 * sim.Second
			cfg.MaxSpeed = 10
			cfg.Seed = 3
			m, err := RunOne(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.Distinct == 0 {
				t.Fatalf("%s: no data delivered at all under mobility", proto)
			}
			if m.Participating == 0 && m.Distinct == 0 {
				t.Fatalf("%s: dead network", proto)
			}
			t.Logf("%s: distinct=%d delivery=%.3f delay=%.4fs participating=%d control=%d events=%d",
				proto, m.Distinct, m.DeliveryRate, m.AvgDelaySec, m.Participating,
				m.ControlPkts, m.EventsRun)
		})
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Protocol = "OSPF"
	if _, err := Build(cfg); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	cfg = DefaultConfig()
	cfg.Nodes = 1
	if _, err := Build(cfg); err == nil {
		t.Fatal("1-node scenario accepted")
	}
	cfg = DefaultConfig()
	cfg.Flows = []FlowSpec{{Src: 0, Dst: 0}}
	if _, err := Build(cfg); err == nil {
		t.Fatal("self-flow accepted")
	}
	cfg = DefaultConfig()
	cfg.Eavesdropper = 500
	if _, err := Build(cfg); err == nil {
		t.Fatal("out-of-range eavesdropper accepted")
	}
}

func TestRandomFlowAndEavesdropperSelection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = sim.Second
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Flows) != 1 {
		t.Fatalf("flows = %d", len(s.Flows))
	}
	f := s.Flows[0]
	if f.Src == f.Dst {
		t.Fatal("random flow has identical endpoints")
	}
	if s.Eaves.ID == f.Src || s.Eaves.ID == f.Dst {
		t.Fatal("eavesdropper is a flow endpoint")
	}
}

func TestEavesdropperInterceptsOnChain(t *testing.T) {
	cfg := chainConfig("AODV", 3, 10*sim.Second)
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	if s.Eaves.Distinct() == 0 {
		t.Fatal("on-path eavesdropper intercepted nothing")
	}
	if s.Eaves.Frames < s.Eaves.Distinct() {
		t.Fatal("frame count below distinct count")
	}
	if m.InterceptionRatio <= 0 || m.InterceptionRatio > 1.2 {
		t.Fatalf("interception ratio = %.3f out of plausible range", m.InterceptionRatio)
	}
}

func TestOffPathEavesdropperInterceptsNothing(t *testing.T) {
	// Chain with a far-away eavesdropper out of radio range of everyone.
	pts := staticChain(3)
	pts = append(pts, geo.Point{X: 0, Y: 900})
	cfg := chainConfig("AODV", 3, 10*sim.Second)
	cfg.Placement = pts
	cfg.Field = geo.Field(1000, 1000)
	cfg.Eavesdropper = 4
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	if m.InterceptionRatio != 0 {
		t.Fatalf("out-of-range eavesdropper intercepted %.3f", m.InterceptionRatio)
	}
	if m.Distinct == 0 {
		t.Fatal("chain itself failed")
	}
}

func TestRelayTableConsistency(t *testing.T) {
	cfg := chainConfig("DSR", 4, 15*sim.Second)
	m, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	var gammaSum float64
	for _, row := range m.RelayRows {
		sum += row.Beta
		gammaSum += row.Gamma
	}
	if sum != m.Alpha {
		t.Fatalf("Σβ=%d != α=%d", sum, m.Alpha)
	}
	if gammaSum < 0.999 || gammaSum > 1.001 {
		t.Fatalf("Σγ = %v, want 1", gammaSum)
	}
	if m.RelayStdDev < 0 || m.RelayStdDev > 1 {
		t.Fatalf("σ = %v out of range", m.RelayStdDev)
	}
}
