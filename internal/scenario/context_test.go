package scenario

import (
	"encoding/json"
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/sim"
)

// metricsJSON canonicalizes a run's metrics for byte-level comparison.
func metricsJSON(t *testing.T, cfg Config, run func(Config) (*Scenario, error)) []byte {
	t.Helper()
	s, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := s.Run()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestContextReuseBitIdentical drives one Context through every protocol —
// including immediate same-config re-runs — and demands byte-identical
// metrics against fresh Builds. This is the load-bearing guarantee of the
// sweep engine's per-worker context reuse: resetting the scheduler, the
// channel (grid, radios, pools) and the collector must be observationally
// indistinguishable from reallocating them.
func TestContextReuseBitIdentical(t *testing.T) {
	ctx := NewContext()
	for _, proto := range AllProtocols() {
		cfg := goldenConfig(proto)
		fresh := metricsJSON(t, cfg, Build)
		for round := 0; round < 2; round++ {
			reused := metricsJSON(t, cfg, ctx.Build)
			if string(fresh) != string(reused) {
				t.Fatalf("%s round %d: context-reused metrics diverge\nfresh:  %s\nreused: %s",
					proto, round, fresh, reused)
			}
		}
	}
}

// TestContextReuseAcrossShapes re-runs with a different node count, field
// and traffic type between repetitions, so the reused grid geometry and
// node slice must grow and shrink without leaking state across runs.
func TestContextReuseAcrossShapes(t *testing.T) {
	small := DefaultConfig()
	small.Nodes = 10
	small.Duration = 4 * sim.Second
	small.TCPStart = sim.Time(sim.Second)
	small.Seed = 3

	big := DefaultConfig()
	big.Nodes = 60
	big.Field = geo.Field(1200, 800)
	big.Duration = 4 * sim.Second
	big.TCPStart = sim.Time(sim.Second)
	big.Traffic = "cbr"
	big.Seed = 4

	ctx := NewContext()
	for _, cfg := range []Config{small, big, small, big} {
		want := metricsJSON(t, cfg, Build)
		got := metricsJSON(t, cfg, ctx.Build)
		if string(want) != string(got) {
			t.Fatalf("shape %d nodes: reused metrics diverge\nfresh:  %s\nreused: %s",
				cfg.Nodes, want, got)
		}
	}
}
