package scenario

import (
	"testing"

	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

func TestCBRTrafficOnChain(t *testing.T) {
	cfg := chainConfig("AODV", 3, 20*sim.Second)
	cfg.Traffic = "cbr"
	cfg.CBRInterval = 100 * sim.Millisecond // 10 pkt/s
	m, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ~19.9s active at 10 pkt/s; static chain loses almost nothing.
	if m.SegmentsSent < 190 || m.SegmentsSent > 200 {
		t.Fatalf("cbr generated %d packets", m.SegmentsSent)
	}
	if m.DeliveryRate < 0.95 {
		t.Fatalf("cbr delivery = %.3f", m.DeliveryRate)
	}
	// No transport feedback: no TCP acks, no retransmissions.
	if m.Retransmits != 0 || m.Timeouts != 0 {
		t.Fatal("CBR mode ran TCP machinery")
	}
	if m.InterceptionRatio < 0.95 {
		t.Fatalf("on-path eavesdropper interception = %.3f", m.InterceptionRatio)
	}
}

func TestCBRDeliveryExposesLossDirectly(t *testing.T) {
	// Unlike TCP (which retransmits around outages), CBR delivery rate
	// directly reflects black-holed packets during an outage window.
	cfg := chainConfig("DSR", 3, 30*sim.Second)
	cfg.Traffic = "cbr"
	cfg.CBRInterval = 50 * sim.Millisecond
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt everything through node 2 for 10 of 30 seconds: the only
	// path is down for a third of the run.
	s.Channel.DropFrame = func(f *packet.Frame, to packet.NodeID) bool {
		now := s.Sched.Now()
		if now < sim.Time(10*sim.Second) || now >= sim.Time(20*sim.Second) {
			return false
		}
		return f.TxFrom == 2 || to == 2
	}
	m := s.Run()
	if m.DeliveryRate > 0.75 {
		t.Fatalf("delivery = %.3f; a 10s outage on the only path must cost ~1/3", m.DeliveryRate)
	}
	if m.DeliveryRate < 0.3 {
		t.Fatalf("delivery = %.3f; the healthy 20s should still deliver", m.DeliveryRate)
	}
}

func TestUnknownTrafficRejected(t *testing.T) {
	cfg := chainConfig("AODV", 2, 5*sim.Second)
	cfg.Traffic = "quic"
	if _, err := Build(cfg); err == nil {
		t.Fatal("unknown traffic type accepted")
	}
}
