package scenario

import (
	"testing"

	"mtsim/internal/sim"
)

func TestRunSampledSeries(t *testing.T) {
	cfg := chainConfig("MTS", 3, 20*sim.Second)
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series, m := s.RunSampled(5 * sim.Second)
	if len(series) != 4 {
		t.Fatalf("samples = %d, want 4", len(series))
	}
	// Cumulative counts are non-decreasing and end at the final total.
	var prev uint64
	for i, smp := range series {
		if smp.CumulativeDistinct < prev {
			t.Fatalf("sample %d: cumulative decreased", i)
		}
		prev = smp.CumulativeDistinct
		if smp.ThroughputPps < 0 {
			t.Fatalf("sample %d: negative throughput", i)
		}
	}
	if series[len(series)-1].CumulativeDistinct != m.Distinct {
		t.Fatalf("final cumulative %d != metrics distinct %d",
			series[len(series)-1].CumulativeDistinct, m.Distinct)
	}
	// A static chain delivers continuously after TCP start: the later
	// intervals all carry traffic.
	for i := 1; i < len(series); i++ {
		if series[i].DistinctDelta == 0 {
			t.Fatalf("sample %d: no traffic in steady state", i)
		}
	}
}

func TestRunSampledDefaultInterval(t *testing.T) {
	cfg := chainConfig("AODV", 2, 20*sim.Second)
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series, _ := s.RunSampled(0) // defaults to 10s
	if len(series) != 2 {
		t.Fatalf("samples = %d, want 2 at default interval", len(series))
	}
}
