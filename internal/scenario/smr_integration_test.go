package scenario

import (
	"testing"

	"mtsim/internal/sim"
)

// The related-work baselines must run end-to-end over the real stack.
func TestSMRVariantsOnStaticChain(t *testing.T) {
	for _, proto := range []string{"SMR", "SMR-BACKUP"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			cfg := chainConfig(proto, 3, 15*sim.Second)
			m, err := RunOne(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.Distinct < 100 {
				t.Fatalf("%s delivered only %d packets on a static chain", proto, m.Distinct)
			}
			if m.DeliveryRate < 0.9 {
				t.Fatalf("%s delivery = %.3f", proto, m.DeliveryRate)
			}
		})
	}
}

// Lim et al. (ICC 2003), the result the paper's §II leans on: TCP over
// concurrently split multipath performs worse than using one path at a
// time, because out-of-order arrivals trigger unnecessary congestion
// control. A diamond with one longer branch makes the reordering visible.
func TestSplitMultipathHurtsTCP(t *testing.T) {
	// 0 -> {1} -> 3 (2 hops) and 0 -> {4,5} -> 3 (3 hops): unequal-delay
	// disjoint branches.
	cfg := DefaultConfig()
	cfg.Placement = pointsDiamondUnequal()
	cfg.Field = fieldFor(cfg.Placement)
	cfg.Duration = 40 * sim.Second
	cfg.TCPStart = sim.Time(500 * sim.Millisecond)
	cfg.Flows = []FlowSpec{{Src: 0, Dst: 3}}
	cfg.Eavesdropper = 1

	run := func(proto string) float64 {
		c := cfg
		c.Protocol = proto
		m, err := RunOne(c)
		if err != nil {
			t.Fatal(err)
		}
		return m.ThroughputPps
	}
	split := run("SMR")
	backup := run("SMR-BACKUP")
	if split >= backup {
		t.Fatalf("split multipath (%.1f pkt/s) should underperform single-path backup (%.1f pkt/s) for TCP",
			split, backup)
	}
}
