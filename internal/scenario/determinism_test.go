package scenario

import (
	"reflect"
	"testing"

	"mtsim/internal/adversary"
	"mtsim/internal/sim"
)

func determinismConfig(proto string, seed int64) Config {
	cfg := DefaultConfig()
	cfg.Protocol = proto
	cfg.MaxSpeed = 10
	cfg.Duration = 15 * sim.Second
	cfg.TCPStart = sim.Time(2 * sim.Second)
	cfg.Seed = seed
	return cfg
}

// TestGridMatchesLinearScan proves the spatial-index receiver lookup is
// observably identical to the exhaustive scan it replaced: one full
// scenario per paper protocol, run both ways from the same seed, must
// produce byte-for-byte identical metrics (deliveries, delays, relay
// tables, event counts — everything).
func TestGridMatchesLinearScan(t *testing.T) {
	for _, proto := range []string{"DSR", "AODV", "MTS"} {
		t.Run(proto, func(t *testing.T) {
			grid, err := Build(determinismConfig(proto, 7))
			if err != nil {
				t.Fatal(err)
			}
			mGrid := grid.Run()

			linear, err := Build(determinismConfig(proto, 7))
			if err != nil {
				t.Fatal(err)
			}
			linear.Channel.UseLinearScan(true)
			mLinear := linear.Run()

			if !reflect.DeepEqual(mGrid, mLinear) {
				t.Fatalf("grid and linear-scan runs diverged:\ngrid:   %+v\nlinear: %+v",
					*mGrid, *mLinear)
			}
			if mGrid.EventsRun == 0 || mGrid.SegmentsSent == 0 {
				t.Fatalf("degenerate run: %+v", *mGrid)
			}
		})
	}
}

// TestBatchedMatchesUnbatchedArrivals proves the batched arrival delivery
// (two scheduler events per transmission walking a receiver batch) is
// observably identical to the historical per-receiver scheme (2·k events)
// it replaced: every protocol × adversary model, run both ways from the
// same seed, must agree on every metric except EventsRun — the event
// count is the one number the batching legitimately changes, so it is
// compared by inequality (batched must run fewer events) and excluded
// from the byte-for-byte check.
func TestBatchedMatchesUnbatchedArrivals(t *testing.T) {
	adversaries := []struct {
		name string
		spec adversary.Spec
	}{
		{"legacy", adversary.Spec{}},
		{"coalition", adversary.Spec{Model: adversary.ModelCoalition, K: 3}},
		{"mobile", adversary.Spec{Model: adversary.ModelMobile, K: 3, Interval: 2 * sim.Second}},
		{"blackhole", adversary.Spec{Model: adversary.ModelBlackhole, K: 2}},
		{"grayhole", adversary.Spec{Model: adversary.ModelGrayhole, K: 2, DropRate: 0.5}},
	}
	for _, proto := range AllProtocols() {
		for _, adv := range adversaries {
			t.Run(proto+"/"+adv.name, func(t *testing.T) {
				cfg := determinismConfig(proto, 7)
				cfg.Duration = 8 * sim.Second
				cfg.Adversary = adv.spec

				batched, err := Build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				mBatched := batched.Run()

				unbatched, err := Build(cfg)
				if err != nil {
					t.Fatal(err)
				}
				unbatched.Channel.UseUnbatchedArrivals(true)
				mUnbatched := unbatched.Run()

				if mBatched.EventsRun >= mUnbatched.EventsRun {
					t.Fatalf("batching did not reduce the event count: %d batched vs %d unbatched",
						mBatched.EventsRun, mUnbatched.EventsRun)
				}
				normA, normB := *mBatched, *mUnbatched
				normA.EventsRun, normB.EventsRun = 0, 0
				if !reflect.DeepEqual(&normA, &normB) {
					t.Fatalf("batched and unbatched runs diverged:\nbatched:   %+v\nunbatched: %+v",
						normA, normB)
				}
				if mBatched.SegmentsSent == 0 {
					t.Fatalf("degenerate run: %+v", *mBatched)
				}
			})
		}
	}
}

// TestSameSeedSameMetrics is the plain determinism property: identical
// configuration twice in fresh processes of the same binary must agree on
// every metric.
func TestSameSeedSameMetrics(t *testing.T) {
	for _, proto := range []string{"DSR", "AODV", "MTS"} {
		a, err := RunOne(determinismConfig(proto, 3))
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunOne(determinismConfig(proto, 3))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed diverged:\n%+v\n%+v", proto, *a, *b)
		}
	}
}
