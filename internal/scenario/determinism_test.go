package scenario

import (
	"reflect"
	"testing"

	"mtsim/internal/sim"
)

func determinismConfig(proto string, seed int64) Config {
	cfg := DefaultConfig()
	cfg.Protocol = proto
	cfg.MaxSpeed = 10
	cfg.Duration = 15 * sim.Second
	cfg.TCPStart = sim.Time(2 * sim.Second)
	cfg.Seed = seed
	return cfg
}

// TestGridMatchesLinearScan proves the spatial-index receiver lookup is
// observably identical to the exhaustive scan it replaced: one full
// scenario per paper protocol, run both ways from the same seed, must
// produce byte-for-byte identical metrics (deliveries, delays, relay
// tables, event counts — everything).
func TestGridMatchesLinearScan(t *testing.T) {
	for _, proto := range []string{"DSR", "AODV", "MTS"} {
		t.Run(proto, func(t *testing.T) {
			grid, err := Build(determinismConfig(proto, 7))
			if err != nil {
				t.Fatal(err)
			}
			mGrid := grid.Run()

			linear, err := Build(determinismConfig(proto, 7))
			if err != nil {
				t.Fatal(err)
			}
			linear.Channel.UseLinearScan(true)
			mLinear := linear.Run()

			if !reflect.DeepEqual(mGrid, mLinear) {
				t.Fatalf("grid and linear-scan runs diverged:\ngrid:   %+v\nlinear: %+v",
					*mGrid, *mLinear)
			}
			if mGrid.EventsRun == 0 || mGrid.SegmentsSent == 0 {
				t.Fatalf("degenerate run: %+v", *mGrid)
			}
		})
	}
}

// TestSameSeedSameMetrics is the plain determinism property: identical
// configuration twice in fresh processes of the same binary must agree on
// every metric.
func TestSameSeedSameMetrics(t *testing.T) {
	for _, proto := range []string{"DSR", "AODV", "MTS"} {
		a, err := RunOne(determinismConfig(proto, 3))
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunOne(determinismConfig(proto, 3))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed diverged:\n%+v\n%+v", proto, *a, *b)
		}
	}
}
