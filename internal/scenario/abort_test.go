package scenario

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"mtsim/internal/sim"
)

// abortTestConfig is a busy run (tens of thousands of events): big
// enough that a small event budget reliably trips mid-flight, small
// enough to grid over in tests.
func abortTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 3 * sim.Second
	cfg.TCPStart = sim.Time(500 * sim.Millisecond)
	cfg.Seed = 5
	return cfg
}

// TestRunWatchedUnlimitedMatchesRun: a watched run whose budgets never
// trip is bit-identical to a plain Run — chunked execution must not
// perturb a single metric. Both arrival-delivery modes are covered: a
// chunk boundary can fall between a batched first-bit and last-bit event
// exactly as it could between two per-receiver events, and neither
// granularity may leak into the metrics.
func TestRunWatchedUnlimitedMatchesRun(t *testing.T) {
	for _, unbatched := range []bool{false, true} {
		for _, b := range []Budget{
			{},
			{MaxEvents: 1 << 62},
			{WallClock: time.Hour},
			{MaxEvents: 1 << 62, WallClock: time.Hour},
		} {
			cfg := abortTestConfig()
			ref, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref.Channel.UseUnbatchedArrivals(unbatched)
			plain := ref.Run()

			s, err := Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.Channel.UseUnbatchedArrivals(unbatched)
			watched, werr := s.RunWatched(b)
			if werr != nil {
				t.Fatalf("budget %+v tripped on a healthy run: %v", b, werr)
			}
			want, _ := json.Marshal(plain)
			got, _ := json.Marshal(watched)
			if string(want) != string(got) {
				t.Fatalf("unbatched=%v budget %+v: watched run differs from plain run\nplain:   %s\nwatched: %s",
					unbatched, b, want, got)
			}
		}
	}
}

// TestEventBudgetKillsMidRun: an exhausted event budget aborts the run
// with attribution, retires the arena ledger cleanly mid-flight, and
// leaves the Context reusable — the very next run on the same context is
// bit-identical to a fresh one.
func TestEventBudgetKillsMidRun(t *testing.T) {
	cfg := abortTestConfig()
	ctx := NewContext()
	ctx.Arena().Check = true

	s, err := ctx.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 2000
	m, err := s.RunWatched(Budget{MaxEvents: budget})
	if err == nil {
		t.Fatalf("2000-event budget did not trip (run has far more events); metrics=%v", m)
	}
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("abort returned %T, want *AbortError: %v", err, err)
	}
	if ae.Reason != AbortEventBudget {
		t.Fatalf("reason %q, want %q", ae.Reason, AbortEventBudget)
	}
	if ae.Events != budget {
		t.Fatalf("killed after %d events, budget was %d", ae.Events, budget)
	}
	if ae.SimTime <= 0 || ae.SimTime >= sim.Time(cfg.Duration) {
		t.Fatalf("kill at t=%v, want strictly inside the run", ae.SimTime)
	}
	// The mid-run abort retired the scenario: the arena accounts for
	// every packet and frame it handed out, with no double or foreign
	// releases — the "kills the cell cleanly" guarantee.
	assertArenaClean(t, s.Arena)

	// And the context is immediately reusable: the next run on it matches
	// a fresh-context run byte for byte.
	clean, err := ctx.RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(fresh)
	got, _ := json.Marshal(clean)
	if string(want) != string(got) {
		t.Fatalf("run after mid-run abort differs from fresh run\nfresh: %s\nafter: %s", want, got)
	}
	if st := ctx.Arena().Stats(); st.DoubleReleases != 0 || st.ForeignReleases != 0 || st.PoisonTrips != 0 {
		t.Fatalf("arena ledger dirtied across abort+reuse: %+v", st)
	}
}

// TestWallClockKillsMidRun: a wall-clock deadline that has effectively
// already passed kills the run at the first between-chunk check.
func TestWallClockKillsMidRun(t *testing.T) {
	cfg := abortTestConfig()
	s, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunWatched(Budget{WallClock: time.Nanosecond})
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("1ns wall budget did not abort: %v", err)
	}
	if ae.Reason != AbortWallClock {
		t.Fatalf("reason %q, want %q", ae.Reason, AbortWallClock)
	}
	if ae.Events == 0 {
		t.Fatal("watchdog fired before running a single chunk")
	}
}

// TestAbortErrorMessageAttributes pins the attribution format the sweep
// journal and failed-cell summaries rely on.
func TestAbortErrorMessageAttributes(t *testing.T) {
	e := &AbortError{Reason: AbortEventBudget, Events: 123, SimTime: sim.Time(2 * sim.Second)}
	msg := e.Error()
	for _, want := range []string{"event-budget", "123", "2.000s"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("abort message %q missing %q", msg, want)
		}
	}
}
