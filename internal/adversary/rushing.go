package adversary

import (
	"mtsim/internal/eaves"
	"mtsim/internal/node"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// Rushing is k compromised relays mounting AODVSEC's rushing attack on
// route discovery: every protocol jitters its route-request re-broadcasts
// (routing.MaxBroadcastJitter) to avoid synchronized collisions, and
// duplicate suppression means only the FIRST copy of a flood a node hears
// is processed — so a relay that re-broadcasts instantly wins the race at
// all of its neighbours, and the discovered routes disproportionately run
// through it. The rushers then simply sit on-path and collect.
//
// The attack rewrites only the attacker's own forwarding delay through
// the node.RouteJitter hook; the protocol has already drawn its jitter
// from its RNG by then, so every random stream in the run is consumed
// identically with or without the attack — same-seed runs stay
// bit-identical in schedule structure, differing only in behaviour
// (TestRushingSameSeedDeterministic pins this).
type rushFilter struct{}

// FilterRoute implements node.RouteFilter: rushing never claims packets.
func (rushFilter) FilterRoute(*packet.Packet, packet.NodeID) bool { return false }

// RouteJitter implements node.RouteFilter: flooded route requests go out
// immediately; other control traffic (replies, errors) keeps its timing.
func (rushFilter) RouteJitter(p *packet.Packet, d sim.Duration) sim.Duration {
	if p.Kind == packet.KindRREQ {
		return 0
	}
	return d
}

// Rushing is the attached rushing attack; interception accounting is the
// insiders' pooled union, like Dropper, plus the attracted-frame count.
type Rushing struct {
	members   []*eaves.Eavesdropper
	union     map[uint64]bool
	stream    eaves.StreamTracker
	attracted uint64
}

// NewRushing compromises the given relays with jitter-stripping route
// forwarding and insider taps.
func NewRushing(hosts []*node.Node) *Rushing {
	r := &Rushing{union: make(map[uint64]bool)}
	for _, h := range hosts {
		r.members = append(r.members, eaves.AttachShared(h, r.union, &r.stream))
		self := h.ID()
		h.AddTap(func(fr *packet.Frame) {
			if fr.Kind == packet.FrameData && fr.TxTo == self && !fr.Retry &&
				fr.Payload != nil && fr.Payload.Kind == packet.KindData {
				r.attracted++
			}
		})
		h.InstallRouteFilter(rushFilter{})
	}
	return r
}

// Model implements Adversary.
func (r *Rushing) Model() string { return ModelRushing }

// Members implements Adversary.
func (r *Rushing) Members() []Member {
	out := make([]Member, len(r.members))
	for i, m := range r.members {
		out[i] = Member{Node: m.ID, Frames: m.Frames, Distinct: m.Distinct()}
	}
	return out
}

// Distinct implements Adversary: the union Pe over all rushers.
func (r *Rushing) Distinct() uint64 { return uint64(len(r.union)) }

// Frames implements Adversary.
func (r *Rushing) Frames() uint64 {
	var total uint64
	for _, m := range r.members {
		total += m.Frames
	}
	return total
}

// Ratio implements Adversary.
func (r *Rushing) Ratio(pr uint64) float64 { return ratio(r.Distinct(), pr) }

// Dropped implements Adversary: rushers forward faithfully — dropping
// would evict them from the routes they rushed to join.
func (r *Rushing) Dropped() uint64 { return 0 }

// Attracted implements Adversary.
func (r *Rushing) Attracted() uint64 { return r.attracted }

// Contiguity implements Adversary over the rushers' pooled union.
func (r *Rushing) Contiguity() eaves.ContigStats { return eaves.Stats(r.union, &r.stream) }

var _ Adversary = (*Rushing)(nil)
