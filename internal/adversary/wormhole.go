package adversary

import (
	"mtsim/internal/eaves"
	"mtsim/internal/node"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// TunnelDelay is the wormhole's out-of-band latency: far below one radio
// hop's jitter + contention, so tunnelled route requests always beat the
// legitimate multi-hop flood and the phantom link looks like the best
// path to every discovery protocol.
const TunnelDelay = 1 * sim.Millisecond

// Wormhole is a pair of colluding relays joined by an out-of-band tunnel
// (AODVSEC's wormhole attack). Each endpoint relays honestly on the air,
// but additionally teleports its outgoing route-discovery control traffic
// to the far endpoint: a tunnelled RREQ re-broadcast arrives at the peer
// carrying a record that ends at the near endpoint, so when the peer
// processes and re-floods it the discovered route contains the phantom
// one-hop link near→far — typically far shorter than any real path, so
// sources prefer it. Replies and other unicast control addressed across
// the phantom link are tunnelled too (the endpoints are usually out of
// radio range of each other). Data is NOT tunnelled: packets routed into
// the wormhole die at the near endpoint when its MAC cannot reach the
// phantom next hop — the classic wormhole-then-drop denial, observable by
// upstream watchdogs precisely because the DATA frame never airs.
//
// The tunnel works through the node.RouteFilter hook, so the data-plane
// arena contract is untouched: each tunnelled clone is delivered to the
// peer exactly once (borrowed, per the receive convention) and released
// exactly once, and Retire drains clones still in flight when a run ends.
type Wormhole struct {
	ends    [2]*node.Node
	members []*eaves.Eavesdropper
	union   map[uint64]bool
	stream  eaves.StreamTracker

	pend       []*tunnelled
	attracted  uint64
	tunnelledN uint64
}

// tunnelled is one control packet in tunnel flight: the wormhole owns it
// until the far endpoint's Deliver runs (or Retire drains it).
type tunnelled struct {
	w    *Wormhole
	from int // index of the sending endpoint
	p    *packet.Packet
	h    sim.TaskHandle
}

// Run implements sim.Task: hand the packet to the far endpoint as if it
// had arrived from the near one, then release it — receivers borrow.
func (t *tunnelled) Run(int) {
	w, from, p := t.w, t.from, t.p
	w.forget(t)
	dst := w.ends[1-from]
	dst.Deliver(p, w.ends[from].ID())
	dst.Arena().Release(p)
}

func (w *Wormhole) forget(t *tunnelled) {
	for i, q := range w.pend {
		if q == t {
			last := len(w.pend) - 1
			w.pend[i] = w.pend[last]
			w.pend[last] = nil
			w.pend = w.pend[:last]
			break
		}
	}
}

// endpointFilter adapts one endpoint to node.RouteFilter.
type endpointFilter struct {
	w   *Wormhole
	idx int
}

// FilterRoute implements node.RouteFilter. Broadcast control (RREQ
// floods) is cloned into the tunnel and still aired locally — the
// endpoint keeps behaving like an honest relay. Unicast control whose
// next hop is the far endpoint exists only because of the phantom link,
// so it is claimed outright and tunnelled; letting the MAC try would just
// burn retries against an out-of-range peer.
func (f *endpointFilter) FilterRoute(p *packet.Packet, next packet.NodeID) bool {
	return f.w.filter(f.idx, p, next)
}

// RouteJitter implements node.RouteFilter: wormholes do not touch timing.
func (f *endpointFilter) RouteJitter(_ *packet.Packet, d sim.Duration) sim.Duration { return d }

// NewWormhole joins two compromised relays with a control-plane tunnel.
// Both endpoints also collect whatever data they overhear (insider taps),
// and count the data frames neighbours address to them — the attracted
// traffic the phantom link pulls in.
func NewWormhole(a, b *node.Node) *Wormhole {
	w := &Wormhole{ends: [2]*node.Node{a, b}, union: make(map[uint64]bool)}
	for i, h := range w.ends {
		w.members = append(w.members, eaves.AttachShared(h, w.union, &w.stream))
		self := h.ID()
		h.AddTap(func(fr *packet.Frame) {
			if fr.Kind == packet.FrameData && fr.TxTo == self && !fr.Retry &&
				fr.Payload != nil && fr.Payload.Kind == packet.KindData {
				w.attracted++
			}
		})
		h.InstallRouteFilter(&endpointFilter{w: w, idx: i})
	}
	return w
}

func (w *Wormhole) filter(from int, p *packet.Packet, next packet.NodeID) bool {
	src, dst := w.ends[from], w.ends[1-from]
	switch next {
	case packet.Broadcast:
		clone := src.Arena().Copy(p, src.UIDs())
		w.tunnel(from, clone)
		return false // the original still floods locally
	case dst.ID():
		w.tunnel(from, p)
		return true // claimed: crosses the phantom link out of band
	default:
		return false
	}
}

func (w *Wormhole) tunnel(from int, p *packet.Packet) {
	t := &tunnelled{w: w, from: from, p: p}
	t.h = w.ends[from].Scheduler().AfterTaskCancellable(TunnelDelay, t, 0)
	w.pend = append(w.pend, t)
	w.tunnelledN++
}

// Retire drains the tunnel: clones still in flight when the run ends are
// cancelled and handed back to the arena, closing the leak-accounting
// books (mirrors node.Retire's pending-send drainage).
func (w *Wormhole) Retire() {
	sched := w.ends[0].Scheduler()
	for len(w.pend) > 0 {
		t := w.pend[0]
		sched.CancelTask(t.h)
		w.ends[t.from].Arena().Release(t.p)
		w.forget(t)
	}
}

// Tunnelled returns how many control packets entered the tunnel (tests).
func (w *Wormhole) Tunnelled() uint64 { return w.tunnelledN }

// Model implements Adversary.
func (w *Wormhole) Model() string { return ModelWormhole }

// Members implements Adversary.
func (w *Wormhole) Members() []Member {
	out := make([]Member, len(w.members))
	for i, m := range w.members {
		out[i] = Member{Node: m.ID, Frames: m.Frames, Distinct: m.Distinct()}
	}
	return out
}

// Distinct implements Adversary: the union Pe over both endpoints.
func (w *Wormhole) Distinct() uint64 { return uint64(len(w.union)) }

// Frames implements Adversary.
func (w *Wormhole) Frames() uint64 {
	var total uint64
	for _, m := range w.members {
		total += m.Frames
	}
	return total
}

// Ratio implements Adversary.
func (w *Wormhole) Ratio(pr uint64) float64 { return ratio(w.Distinct(), pr) }

// Dropped implements Adversary: the wormhole never touches data packets
// itself — attracted data dies on the phantom link by radio physics, and
// is accounted as MAC loss, not an adversary drop.
func (w *Wormhole) Dropped() uint64 { return 0 }

// Attracted implements Adversary.
func (w *Wormhole) Attracted() uint64 { return w.attracted }

// Contiguity implements Adversary over the endpoints' pooled union.
func (w *Wormhole) Contiguity() eaves.ContigStats { return eaves.Stats(w.union, &w.stream) }

var _ Adversary = (*Wormhole)(nil)
