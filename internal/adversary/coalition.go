package adversary

import (
	"mtsim/internal/eaves"
	"mtsim/internal/node"
)

// Coalition is k colluding static eavesdroppers ("Shuffling"'s cooperating
// interceptors): each member taps its own host exactly like the paper's
// lone eavesdropper, and the members pool everything they hear, so the
// coalition's Pe is the union of distinct DataIDs over all members. A
// coalition of one is the paper's model, bit-for-bit.
type Coalition struct {
	model   string
	members []*eaves.Eavesdropper
	union   map[uint64]bool
	stream  eaves.StreamTracker
}

// NewCoalition attaches one eavesdropper per host, all sharing a union
// set and a stream-contiguity tracker over union-new interceptions.
// model is recorded verbatim (ModelEavesdropper for k=1 compat,
// ModelCoalition otherwise).
func NewCoalition(model string, hosts []*node.Node) *Coalition {
	c := &Coalition{model: model, union: make(map[uint64]bool)}
	for _, h := range hosts {
		c.members = append(c.members, eaves.AttachShared(h, c.union, &c.stream))
	}
	return c
}

// Legacy returns the first member as a plain *eaves.Eavesdropper, the view
// pre-adversary code (Scenario.Eaves) exposes for single-tap scenarios.
func (c *Coalition) Legacy() *eaves.Eavesdropper {
	if len(c.members) == 0 {
		return nil
	}
	return c.members[0]
}

// Model implements Adversary.
func (c *Coalition) Model() string { return c.model }

// Members implements Adversary.
func (c *Coalition) Members() []Member {
	out := make([]Member, len(c.members))
	for i, m := range c.members {
		out[i] = Member{Node: m.ID, Frames: m.Frames, Distinct: m.Distinct()}
	}
	return out
}

// Distinct implements Adversary: the union Pe.
func (c *Coalition) Distinct() uint64 { return uint64(len(c.union)) }

// Frames implements Adversary.
func (c *Coalition) Frames() uint64 {
	var total uint64
	for _, m := range c.members {
		total += m.Frames
	}
	return total
}

// Ratio implements Adversary.
func (c *Coalition) Ratio(pr uint64) float64 { return ratio(c.Distinct(), pr) }

// Dropped implements Adversary: coalitions are purely passive.
func (c *Coalition) Dropped() uint64 { return 0 }

// Attracted implements Adversary: passive taps do not divert routes.
func (c *Coalition) Attracted() uint64 { return 0 }

// Contiguity implements Adversary over the pooled union.
func (c *Coalition) Contiguity() eaves.ContigStats { return eaves.Stats(c.union, &c.stream) }

var _ Adversary = (*Coalition)(nil)
