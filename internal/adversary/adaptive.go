package adversary

import (
	"mtsim/internal/eaves"
	"mtsim/internal/node"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// Adaptive is a single eavesdropper that re-taps toward the traffic: like
// Mobile it holds one active vantage point among K candidate hosts, but
// instead of touring blindly it monitors channel activity at every
// candidate and, every Interval, moves to whichever candidate overheard
// the most data frames since the last move. Against a dispersing
// multipath protocol this chases the busiest path; against shuffling it
// chases wherever the buffered bursts land. It collects only at the
// active vantage point — the others are passive activity counters
// (an attacker can measure channel occupancy at a position it is not
// exfiltrating from).
//
// Determinism: the candidate order (the tie-break and fallback tour) is
// the ONLY randomness — exactly one rng.Perm(len(hosts)) at construction,
// zero draws afterwards. The re-tap decision itself is a pure argmax over
// observed counts (ties to the earlier tour position), so same-seed runs
// re-tap identically. TestAdaptiveRNGDraws pins this draw count.
type Adaptive struct {
	hosts    []*node.Node
	interval sim.Duration

	active  int // index into hosts of the current vantage point
	recent  []uint64
	moves   uint64
	perHost []Member
	union   map[uint64]bool
	stream  eaves.StreamTracker
	frames  uint64
}

// NewAdaptive attaches an adaptive eavesdropper over the given candidate
// hosts, re-evaluating its vantage point every interval. rng orders the
// candidates (nil keeps the given order); it is consulted exactly once,
// for the Perm, and never again.
func NewAdaptive(hosts []*node.Node, interval sim.Duration, rng *sim.RNG) *Adaptive {
	if rng != nil {
		perm := rng.Perm(len(hosts))
		shuffled := make([]*node.Node, len(hosts))
		for i, j := range perm {
			shuffled[i] = hosts[j]
		}
		hosts = shuffled
	}
	a := &Adaptive{
		hosts:    hosts,
		interval: interval,
		recent:   make([]uint64, len(hosts)),
		perHost:  make([]Member, len(hosts)),
		union:    make(map[uint64]bool),
	}
	for i, h := range hosts {
		a.perHost[i].Node = h.ID()
		idx := i
		h.AddTap(func(f *packet.Frame) { a.tap(idx, f) })
	}
	sched := hosts[0].Scheduler()
	var move func()
	move = func() {
		a.retap()
		sched.After(a.interval, move)
	}
	sched.After(interval, move)
	return a
}

// retap moves the active vantage point to the candidate that overheard
// the most data frames since the previous move (ties and an all-quiet
// field fall back to the next tour position), then resets the counters so
// the next decision reflects only fresh evidence.
func (a *Adaptive) retap() {
	a.moves++
	best, bestCount := (a.active+1)%len(a.hosts), uint64(0)
	for i, c := range a.recent {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	a.active = best
	for i := range a.recent {
		a.recent[i] = 0
	}
}

func (a *Adaptive) tap(host int, f *packet.Frame) {
	if !eaves.Counts(f) {
		return
	}
	a.recent[host]++
	if host != a.active {
		return
	}
	a.frames++
	a.perHost[host].Frames++
	id := f.Payload.DataID
	if !a.union[id] {
		a.union[id] = true
		a.stream.Note(id)
		a.perHost[host].Distinct++
	}
}

// Active returns the node currently tapped (tests, demos).
func (a *Adaptive) Active() packet.NodeID { return a.hosts[a.active].ID() }

// Moves returns how many re-tap decisions have fired (tests).
func (a *Adaptive) Moves() uint64 { return a.moves }

// Model implements Adversary.
func (a *Adaptive) Model() string { return ModelAdaptive }

// Members implements Adversary: per-candidate accounting in tour order.
// Distinct counts payloads first heard at that host while it was active,
// so members sum exactly to the union.
func (a *Adaptive) Members() []Member {
	return append([]Member(nil), a.perHost...)
}

// Distinct implements Adversary.
func (a *Adaptive) Distinct() uint64 { return uint64(len(a.union)) }

// Frames implements Adversary.
func (a *Adaptive) Frames() uint64 { return a.frames }

// Ratio implements Adversary.
func (a *Adaptive) Ratio(pr uint64) float64 { return ratio(a.Distinct(), pr) }

// Dropped implements Adversary: adaptive eavesdropping is passive.
func (a *Adaptive) Dropped() uint64 { return 0 }

// Attracted implements Adversary: it chases traffic, it does not divert it.
func (a *Adaptive) Attracted() uint64 { return 0 }

// Contiguity implements Adversary over the whole-run union.
func (a *Adaptive) Contiguity() eaves.ContigStats { return eaves.Stats(a.union, &a.stream) }

var _ Adversary = (*Adaptive)(nil)
