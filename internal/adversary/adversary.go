// Package adversary generalizes the paper's single eavesdropping node
// (§IV-B) into a pluggable threat-model subsystem. The paper measures the
// interception ratio Ri = Pe/Pr against one randomly placed passive tap,
// but its threat model worries about stronger opponents: related work
// assumes cooperating interceptors (Shuffling) and insider packet-dropping
// relays (AODVSEC's blackhole/grayhole). This package models them:
//
//   - Coalition: k colluding eavesdroppers whose Pe is the union of
//     distinct DataIDs intercepted by any member;
//   - Mobile: one eavesdropper that re-taps a different node every
//     Interval, sweeping its vantage point across the field;
//   - Dropper (blackhole/grayhole): compromised relays that participate in
//     routing but silently drop the data packets they are asked to
//     forward — always (blackhole) or with probability DropRate
//     (grayhole) — while still collecting what they overhear.
//
// All models are passive with respect to the random streams of legitimate
// traffic: taps never touch protocol RNGs or timers, so attaching an
// adversary perturbs nothing but what it is modelled to perturb (droppers
// remove frames from the air; pure eavesdroppers change no bit of the
// run). A Coalition of k=1 reproduces the legacy internal/eaves numbers
// bit-for-bit.
package adversary

import (
	"fmt"

	"mtsim/internal/eaves"
	"mtsim/internal/node"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// Model names accepted in Spec.Model.
const (
	// ModelEavesdropper is the paper's §IV-B adversary: one static
	// passive tap. It is the default and what the legacy
	// Config.Eavesdropper field selects.
	ModelEavesdropper = "eavesdropper"
	// ModelCoalition is k colluding static taps sharing what they hear.
	ModelCoalition = "coalition"
	// ModelMobile is one tap that moves to a new host every Interval.
	ModelMobile = "mobile"
	// ModelBlackhole is k compromised relays dropping all forwarded data.
	ModelBlackhole = "blackhole"
	// ModelGrayhole is k compromised relays dropping forwarded data with
	// probability DropRate.
	ModelGrayhole = "grayhole"
	// ModelAdaptive is one tap that re-taps every Interval toward whichever
	// vantage point has recently overheard the most traffic, instead of
	// touring blindly.
	ModelAdaptive = "adaptive"
	// ModelWormhole is a pair of colluding relays joined by an out-of-band
	// tunnel that teleports route-discovery control traffic between them,
	// advertising a phantom one-hop link that attracts routes (AODVSEC's
	// wormhole attack).
	ModelWormhole = "wormhole"
	// ModelRushing is k compromised relays that strip the broadcast jitter
	// from the route-request floods they forward, winning the duplicate-
	// suppression race so discovered routes run through them (AODVSEC's
	// rushing attack).
	ModelRushing = "rushing"
)

// Models lists every selectable adversary model.
func Models() []string {
	return []string{ModelEavesdropper, ModelCoalition, ModelMobile, ModelBlackhole, ModelGrayhole,
		ModelAdaptive, ModelWormhole, ModelRushing}
}

// Spec declares an adversary in a scenario configuration. The zero Spec
// means "the paper's default": a single random eavesdropper.
type Spec struct {
	// Model selects the adversary class; empty means ModelEavesdropper.
	Model string
	// K is the number of vantage points: coalition members, hosts on a
	// mobile eavesdropper's tour, or compromised relays. 0 means 1.
	K int
	// Nodes pins the compromised nodes explicitly (len overrides K); for
	// ModelMobile it also fixes the tour order. Empty picks K random
	// nodes that are not flow endpoints.
	Nodes []packet.NodeID
	// Interval is the mobile eavesdropper's re-tap period; 0 means 10 s.
	Interval sim.Duration
	// DropRate is the grayhole's per-packet drop probability; 0 means 0.5.
	// Blackholes always drop.
	DropRate float64
}

// IsZero reports whether the spec is the all-default legacy adversary.
func (s Spec) IsZero() bool {
	return s.Model == "" && s.K == 0 && len(s.Nodes) == 0 &&
		s.Interval == 0 && s.DropRate == 0
}

// EffectiveK returns the number of vantage points the spec asks for. A
// wormhole is always a pair of tunnel endpoints.
func (s Spec) EffectiveK() int {
	if len(s.Nodes) > 0 {
		return len(s.Nodes)
	}
	if s.K <= 0 {
		if s.Model == ModelWormhole {
			return 2
		}
		return 1
	}
	return s.K
}

// EffectiveModel resolves an empty Model the same way everywhere (labels,
// Build, scenario wiring): one vantage point defaults to the paper's
// eavesdropper, several imply a coalition.
func (s Spec) EffectiveModel() string {
	if s.Model != "" {
		return s.Model
	}
	if s.EffectiveK() > 1 {
		return ModelCoalition
	}
	return ModelEavesdropper
}

// Label is the spec's canonical sweep-axis identity, "model×k"
// (e.g. "coalition×4"), with explicitly-set tuning knobs appended
// ("grayhole×2@p0.3", "mobile×3@5s") so differently-tuned specs never
// collapse into one aggregation cell. It names cells and table rows.
func (s Spec) Label() string {
	lbl := fmt.Sprintf("%s×%d", s.EffectiveModel(), s.EffectiveK())
	if s.DropRate > 0 {
		lbl += fmt.Sprintf("@p%g", s.DropRate)
	}
	if s.Interval > 0 {
		lbl += fmt.Sprintf("@%gs", s.Interval.Seconds())
	}
	return lbl
}

// Member is one vantage point's interception accounting: the frames it
// overheard and the distinct logical payloads (DataIDs) among them.
type Member struct {
	Node     packet.NodeID
	Frames   uint64
	Distinct uint64
}

// Adversary is one attached threat model, reporting per-run metrics after
// the simulation has run.
type Adversary interface {
	// Model returns the model name (ModelCoalition etc.).
	Model() string
	// Members returns the per-vantage-point accounting, in attach order
	// (for ModelMobile, tour order).
	Members() []Member
	// Distinct returns the coalition Pe: the number of distinct data
	// packets intercepted by at least one vantage point.
	Distinct() uint64
	// Frames returns the total overheard data frames over all members,
	// retransmissions included.
	Frames() uint64
	// Ratio returns the interception ratio Ri = Pe/Pr (Eq. 1) for the
	// union Pe, given the distinct packets the destination received.
	Ratio(pr uint64) float64
	// Dropped returns the data packets adversarial relays discarded
	// (0 for purely passive models).
	Dropped() uint64
	// Attracted returns the data frames neighbours addressed *to* a
	// compromised vantage point — traffic the attack pulled onto itself
	// (route-attraction attacks: wormhole, rushing; 0 for models that do
	// not manipulate discovery). First transmission attempts only; MAC
	// retries are not re-counted.
	Attracted() uint64
	// Contiguity reports both contiguity views of the union Pe: the set
	// view (longest reassemblable run of consecutive DataIDs and the
	// packets inside such runs) and the stream view (how much arrived
	// already in consecutive order). See eaves.ContigStats.
	Contiguity() eaves.ContigStats
}

// ratio is the shared Ri implementation: Pe/Pr with the degenerate cases
// (nothing delivered, or no vantage points) defined as 0.
func ratio(pe, pr uint64) float64 {
	if pr == 0 {
		return 0
	}
	return float64(pe) / float64(pr)
}

// Build attaches the spec's adversary model to the given host nodes
// (already selected by the scenario builder; len(hosts) == EffectiveK).
// rng drives model-internal randomness only — a mobile adversary's tour
// order, a grayhole's coin flips — and must be a stream independent of the
// legitimate stack's streams so that adding an adversary does not perturb
// mobility, traffic or protocol behaviour. It may be nil for models that
// need no randomness.
func Build(spec Spec, hosts []*node.Node, rng *sim.RNG) (Adversary, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("adversary: no host nodes")
	}
	model := spec.EffectiveModel()
	// Reject knobs the selected model would silently ignore — a grayhole
	// experiment mistyped as a coalition must fail loudly, not report
	// clean-network numbers.
	if spec.DropRate != 0 && model != ModelGrayhole {
		return nil, fmt.Errorf("adversary: DropRate applies to %q only, not %q", ModelGrayhole, model)
	}
	if spec.Interval != 0 && model != ModelMobile && model != ModelAdaptive {
		return nil, fmt.Errorf("adversary: Interval applies to %q or %q only, not %q", ModelMobile, ModelAdaptive, model)
	}
	switch model {
	case ModelEavesdropper:
		if len(hosts) != 1 {
			return nil, fmt.Errorf("adversary: model %q wants exactly 1 node, have %d", model, len(hosts))
		}
		return NewCoalition(model, hosts), nil
	case ModelCoalition:
		return NewCoalition(model, hosts), nil
	case ModelMobile:
		interval := spec.Interval
		if interval <= 0 {
			interval = 10 * sim.Second
		}
		// An explicitly pinned tour is honoured in the declared order;
		// only randomly selected hosts get a shuffled tour.
		tourRNG := rng
		if len(spec.Nodes) > 0 {
			tourRNG = nil
		}
		return NewMobile(hosts, interval, tourRNG), nil
	case ModelBlackhole:
		return NewDropper(model, hosts, 1, nil), nil
	case ModelGrayhole:
		rate := spec.DropRate
		if rate <= 0 {
			rate = 0.5
		}
		return NewDropper(model, hosts, rate, rng), nil
	case ModelAdaptive:
		interval := spec.Interval
		if interval <= 0 {
			interval = 10 * sim.Second
		}
		tourRNG := rng
		if len(spec.Nodes) > 0 {
			tourRNG = nil
		}
		return NewAdaptive(hosts, interval, tourRNG), nil
	case ModelWormhole:
		if len(hosts) != 2 {
			return nil, fmt.Errorf("adversary: model %q wants exactly 2 endpoints, have %d", model, len(hosts))
		}
		return NewWormhole(hosts[0], hosts[1]), nil
	case ModelRushing:
		return NewRushing(hosts), nil
	default:
		return nil, fmt.Errorf("adversary: unknown model %q", spec.Model)
	}
}
