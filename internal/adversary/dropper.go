package adversary

import (
	"mtsim/internal/eaves"
	"mtsim/internal/node"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// Dropper is a set of compromised relays (AODVSEC's insider threat): they
// take part in route discovery like honest nodes — so routes form through
// them — but silently discard the data packets they are asked to forward.
// A blackhole (rate 1) drops everything; a grayhole drops each forwarded
// data packet with probability rate, which is much harder to distinguish
// from ordinary wireless loss. Being insiders, they also collect every
// data packet they overhear, so the coalition interception metrics apply.
type Dropper struct {
	model   string
	members []*eaves.Eavesdropper
	union   map[uint64]bool
	stream  eaves.StreamTracker
	rate    float64
	rng     *sim.RNG
	dropped uint64
}

// NewDropper compromises the given hosts. rate is the per-packet drop
// probability (1 for a blackhole); rng supplies the grayhole's coin flips
// and may be nil when rate >= 1.
func NewDropper(model string, hosts []*node.Node, rate float64, rng *sim.RNG) *Dropper {
	d := &Dropper{
		model: model,
		union: make(map[uint64]bool),
		rate:  rate,
		rng:   rng,
	}
	for _, h := range hosts {
		d.members = append(d.members, eaves.AttachShared(h, d.union, &d.stream))
		host := h
		h.DropFilter = func(p *packet.Packet, next packet.NodeID) bool {
			return d.shouldDrop(host.ID(), p)
		}
	}
	return d
}

// shouldDrop implements the insider policy: only transit data packets are
// dropped. Packets the relay originates itself, and all routing control
// traffic, pass through — a dropper that broke discovery would never be
// routed through in the first place.
func (d *Dropper) shouldDrop(self packet.NodeID, p *packet.Packet) bool {
	if p.Kind != packet.KindData || p.DataID == 0 || p.Src == self {
		return false
	}
	if d.rate < 1 && d.rng != nil && d.rng.Float64() >= d.rate {
		return false
	}
	d.dropped++
	return true
}

// Model implements Adversary.
func (d *Dropper) Model() string { return d.model }

// Members implements Adversary.
func (d *Dropper) Members() []Member {
	out := make([]Member, len(d.members))
	for i, m := range d.members {
		out[i] = Member{Node: m.ID, Frames: m.Frames, Distinct: m.Distinct()}
	}
	return out
}

// Distinct implements Adversary: the union Pe over all compromised relays.
func (d *Dropper) Distinct() uint64 { return uint64(len(d.union)) }

// Frames implements Adversary.
func (d *Dropper) Frames() uint64 {
	var total uint64
	for _, m := range d.members {
		total += m.Frames
	}
	return total
}

// Ratio implements Adversary.
func (d *Dropper) Ratio(pr uint64) float64 { return ratio(d.Distinct(), pr) }

// Dropped implements Adversary.
func (d *Dropper) Dropped() uint64 { return d.dropped }

// Attracted implements Adversary: droppers accept whatever routes form
// through them rather than manipulating discovery.
func (d *Dropper) Attracted() uint64 { return 0 }

// Contiguity implements Adversary over the insiders' pooled union.
func (d *Dropper) Contiguity() eaves.ContigStats { return eaves.Stats(d.union, &d.stream) }

var _ Adversary = (*Dropper)(nil)
