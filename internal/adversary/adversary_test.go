package adversary

import (
	"fmt"
	"testing"

	"mtsim/internal/eaves"
	"mtsim/internal/geo"
	"mtsim/internal/mac"
	"mtsim/internal/mobility"
	"mtsim/internal/node"
	"mtsim/internal/packet"
	"mtsim/internal/phy"
	"mtsim/internal/sim"
)

type nullProto struct{}

func (nullProto) Name() string                             { return "NULL" }
func (nullProto) Start()                                   {}
func (nullProto) Send(*packet.Packet)                      {}
func (nullProto) Receive(*packet.Packet, packet.NodeID)    {}
func (nullProto) LinkFailed(*packet.Packet, packet.NodeID) {}

// buildNet places nodes at the given points on a 250 m-range channel, so
// tests control exactly which taps overhear which transmissions.
func buildNet(t *testing.T, pts []geo.Point) (*sim.Scheduler, []*node.Node, *packet.UIDSource) {
	t.Helper()
	sched := sim.NewScheduler()
	ch := phy.NewChannel(sched, 250, 550)
	uids := &packet.UIDSource{}
	rng := sim.NewRNG(9)
	var nodes []*node.Node
	for i, p := range pts {
		n := node.New(packet.NodeID(i), sched, ch, mac.Default80211b(),
			&mobility.Static{P: p}, rng.Derive(fmt.Sprintf("n%d", i)), uids)
		n.SetProtocol(nullProto{})
		nodes = append(nodes, n)
	}
	return sched, nodes, uids
}

func dataPkt(uids *packet.UIDSource, src packet.NodeID, dataID uint64) *packet.Packet {
	return &packet.Packet{
		UID: uids.Next(), Kind: packet.KindData, Size: 1040,
		Src: src, Dst: src + 1, TTL: 8, DataID: dataID,
		TCP: &packet.TCPHeader{Flow: 1},
	}
}

// line is a 5-node chain at 200 m spacing: with 250 m range each node hears
// only its immediate neighbours, so taps at different positions intercept
// overlapping but unequal subsets of the traffic.
func line() []geo.Point {
	return []geo.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}, {X: 800}}
}

// TestCoalitionUnionBounds is the core accounting property: the union Pe
// is at least the best single member and at most the sum of all members,
// over pseudo-random traffic the members partially share.
func TestCoalitionUnionBounds(t *testing.T) {
	sched, nodes, uids := buildNet(t, line())
	c := NewCoalition(ModelCoalition, []*node.Node{nodes[1], nodes[3]})

	// Node 0's packets reach only member 1; node 2's reach both members;
	// node 4's reach only member 3. DataIDs overlap across senders.
	rng := sim.NewRNG(1234)
	for i := 0; i < 200; i++ {
		src := packet.NodeID(2 * rng.Intn(3)) // 0, 2 or 4
		id := uint64(1 + rng.Intn(60))
		nodes[src].SendMac(dataPkt(uids, src, id), src+1)
	}
	sched.RunUntil(sim.Time(20 * sim.Second))

	members := c.Members()
	if len(members) != 2 {
		t.Fatalf("members = %d, want 2", len(members))
	}
	var max, sum, frames uint64
	for _, m := range members {
		if m.Distinct > max {
			max = m.Distinct
		}
		sum += m.Distinct
		frames += m.Frames
		if m.Distinct == 0 {
			t.Fatalf("member %d heard nothing — topology broken", m.Node)
		}
	}
	union := c.Distinct()
	if union < max {
		t.Fatalf("union %d < max member %d", union, max)
	}
	if union > sum {
		t.Fatalf("union %d > sum of members %d", union, sum)
	}
	if max == sum {
		t.Fatal("members heard identical traffic — test exercises nothing")
	}
	if c.Frames() != frames {
		t.Fatalf("coalition frames %d != sum of member frames %d", c.Frames(), frames)
	}
	if c.Dropped() != 0 {
		t.Fatal("passive coalition reported drops")
	}
}

// TestCoalitionK1MatchesLegacy attaches the legacy lone eavesdropper and a
// k=1 coalition to the same node: every counter and ratio must agree
// bit-for-bit on identical overheard traffic.
func TestCoalitionK1MatchesLegacy(t *testing.T) {
	sched, nodes, uids := buildNet(t, line())
	legacy := eaves.Attach(nodes[1])
	c := NewCoalition(ModelEavesdropper, []*node.Node{nodes[1]})

	rng := sim.NewRNG(77)
	for i := 0; i < 120; i++ {
		id := uint64(1 + rng.Intn(40))
		nodes[0].SendMac(dataPkt(uids, 0, id), 1)
		if i%3 == 0 { // retransmission of the same payload
			nodes[0].SendMac(dataPkt(uids, 0, id), 1)
		}
	}
	sched.RunUntil(sim.Time(30 * sim.Second))

	if legacy.Frames == 0 {
		t.Fatal("no traffic overheard")
	}
	if c.Frames() != legacy.Frames {
		t.Fatalf("frames: coalition %d, legacy %d", c.Frames(), legacy.Frames)
	}
	if c.Distinct() != legacy.Distinct() {
		t.Fatalf("distinct: coalition %d, legacy %d", c.Distinct(), legacy.Distinct())
	}
	for _, pr := range []uint64{0, 1, 7, legacy.Distinct(), 100000} {
		if c.Ratio(pr) != legacy.Ratio(pr) {
			t.Fatalf("ratio(%d): coalition %v, legacy %v", pr, c.Ratio(pr), legacy.Ratio(pr))
		}
	}
	m := c.Members()[0]
	if m.Node != legacy.ID || m.Frames != legacy.Frames || m.Distinct != legacy.Distinct() {
		t.Fatalf("member view %+v disagrees with legacy (%d, %d, %d)",
			m, legacy.ID, legacy.Frames, legacy.Distinct())
	}
	if c.Legacy() != c.members[0] {
		t.Fatal("Legacy() is not the first member")
	}
}

// TestRatioEdgeCases: Ri is defined as 0 when nothing was delivered
// (pr == 0) and for an empty (k=0) coalition.
func TestRatioEdgeCases(t *testing.T) {
	_, nodes, uids := buildNet(t, line())
	c := NewCoalition(ModelCoalition, []*node.Node{nodes[1]})
	if got := c.Ratio(0); got != 0 {
		t.Fatalf("ratio with pr=0 = %v, want 0", got)
	}

	empty := NewCoalition(ModelCoalition, nil)
	if empty.Distinct() != 0 || empty.Frames() != 0 {
		t.Fatal("empty coalition has non-zero counters")
	}
	if got := empty.Ratio(10); got != 0 {
		t.Fatalf("empty coalition ratio = %v, want 0", got)
	}
	if empty.Legacy() != nil {
		t.Fatal("empty coalition Legacy() != nil")
	}
	if len(empty.Members()) != 0 {
		t.Fatal("empty coalition has members")
	}
	_ = uids
}

// TestMobileTourAccounting: only the active vantage point collects, the
// tour advances every interval, and member Distinct (first-heard
// attribution) sums exactly to the union.
func TestMobileTourAccounting(t *testing.T) {
	sched, nodes, uids := buildNet(t, line())
	// nil rng keeps the declared tour order: node 1, then node 3.
	m := NewMobile([]*node.Node{nodes[1], nodes[3]}, 5*sim.Second, nil)
	if m.Active() != 1 {
		t.Fatalf("initial vantage = %d, want 1", m.Active())
	}

	// Phase 1 (t<5s): node 0 transmits; only host 1 is in range AND active.
	for i := uint64(1); i <= 10; i++ {
		nodes[0].SendMac(dataPkt(uids, 0, i), 1)
	}
	sched.RunUntil(sim.Time(4 * sim.Second))
	if m.Distinct() != 10 {
		t.Fatalf("phase 1 distinct = %d, want 10", m.Distinct())
	}

	// Cross the 5 s boundary: the tap moves to node 3.
	sched.RunUntil(sim.Time(6 * sim.Second))
	if m.Active() != 3 {
		t.Fatalf("vantage after move = %d, want 3", m.Active())
	}

	// Phase 2: node 0 transmits again — host 1 overhears but is no longer
	// active, so nothing is counted; node 4 transmits — host 3 counts.
	for i := uint64(11); i <= 15; i++ {
		nodes[0].SendMac(dataPkt(uids, 0, i), 1)
	}
	for i := uint64(14); i <= 20; i++ { // overlaps phase-2 range, new to the union
		nodes[4].SendMac(dataPkt(uids, 4, i), 3)
	}
	sched.RunUntil(sim.Time(9 * sim.Second))

	members := m.Members()
	if members[0].Distinct != 10 {
		t.Fatalf("member 1 distinct = %d, want 10 (inactive tap must not count)", members[0].Distinct)
	}
	if members[1].Distinct != 7 {
		t.Fatalf("member 3 distinct = %d, want 7", members[1].Distinct)
	}
	if m.Distinct() != members[0].Distinct+members[1].Distinct {
		t.Fatalf("union %d != sum of first-heard members %d+%d",
			m.Distinct(), members[0].Distinct, members[1].Distinct)
	}

	// The tour wraps: after another interval the tap is back on node 1.
	sched.RunUntil(sim.Time(11 * sim.Second))
	if m.Active() != 1 {
		t.Fatalf("vantage after wrap = %d, want 1", m.Active())
	}
}

// TestDropperPolicy: a blackhole discards transit data only — its own
// originations and control traffic pass — and a grayhole drops a fraction.
func TestDropperPolicy(t *testing.T) {
	sched, nodes, uids := buildNet(t, line())
	d := NewDropper(ModelBlackhole, []*node.Node{nodes[1]}, 1, nil)

	// Transit data (originated elsewhere): dropped silently.
	for i := uint64(1); i <= 5; i++ {
		nodes[1].SendMac(dataPkt(uids, 0, i), 2)
	}
	// Own origination: passes.
	nodes[1].SendMac(dataPkt(uids, 1, 100), 2)
	// Routing control: passes.
	nodes[1].SendMac(&packet.Packet{
		UID: uids.Next(), Kind: packet.KindRREQ, Size: 64, Src: 0, Dst: 4, TTL: 8,
	}, packet.Broadcast)
	sched.RunUntil(sim.Time(5 * sim.Second))

	if d.Dropped() != 5 {
		t.Fatalf("dropped = %d, want 5 (transit data only)", d.Dropped())
	}
	if nodes[1].Mac.Stats.FramesSent[packet.FrameData] != 2 {
		t.Fatalf("frames sent = %d, want 2 (own data + RREQ)",
			nodes[1].Mac.Stats.FramesSent[packet.FrameData])
	}

	// Grayhole at rate 0.5: over many transit packets it drops some but
	// not all (the exact count is pinned by the seeded RNG).
	sched2, nodes2, uids2 := buildNet(t, line())
	g := NewDropper(ModelGrayhole, []*node.Node{nodes2[1]}, 0.5, sim.NewRNG(42))
	const total = 200
	for i := uint64(1); i <= total; i++ {
		nodes2[1].SendMac(dataPkt(uids2, 0, i), 2)
	}
	sched2.RunUntil(sim.Time(60 * sim.Second))
	if g.Dropped() == 0 || g.Dropped() == total {
		t.Fatalf("grayhole dropped %d of %d, want a strict fraction", g.Dropped(), total)
	}
}

// TestSpecDefaults pins the Spec helpers the sweep axis builds on.
func TestSpecDefaults(t *testing.T) {
	if !(Spec{}).IsZero() {
		t.Fatal("zero spec not IsZero")
	}
	if (Spec{K: 2}).IsZero() {
		t.Fatal("K=2 spec claims IsZero")
	}
	cases := []struct {
		spec Spec
		k    int
		lbl  string
	}{
		{Spec{}, 1, "eavesdropper×1"},
		// A model-less multi-vantage spec resolves to a coalition
		// everywhere (label, Build, scenario wiring).
		{Spec{K: 2}, 2, "coalition×2"},
		{Spec{Model: ModelCoalition, K: 4}, 4, "coalition×4"},
		{Spec{Model: ModelMobile}, 1, "mobile×1"},
		{Spec{Model: ModelGrayhole, Nodes: []packet.NodeID{3, 5}}, 2, "grayhole×2"},
		// Tuning knobs appear in the label so differently-tuned specs
		// never share an aggregation cell.
		{Spec{Model: ModelGrayhole, K: 2, DropRate: 0.3}, 2, "grayhole×2@p0.3"},
		{Spec{Model: ModelMobile, K: 3, Interval: 5 * sim.Second}, 3, "mobile×3@5s"},
	}
	for _, c := range cases {
		if got := c.spec.EffectiveK(); got != c.k {
			t.Fatalf("%+v EffectiveK = %d, want %d", c.spec, got, c.k)
		}
		if got := c.spec.Label(); got != c.lbl {
			t.Fatalf("%+v Label = %q, want %q", c.spec, got, c.lbl)
		}
	}
	if len(Models()) != 8 {
		t.Fatalf("models = %v", Models())
	}
}

// TestBuildValidation: unknown models and empty host sets are rejected;
// every known model builds.
func TestBuildValidation(t *testing.T) {
	_, nodes, _ := buildNet(t, line())
	if _, err := Build(Spec{Model: "quantum"}, nodes[1:2], nil); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := Build(Spec{}, nil, nil); err == nil {
		t.Fatal("empty host set accepted")
	}
	if _, err := Build(Spec{Model: ModelEavesdropper}, nodes[1:3], nil); err == nil {
		t.Fatal("eavesdropper with 2 hosts accepted")
	}
	if _, err := Build(Spec{Model: ModelCoalition, DropRate: 0.4}, nodes[1:3], nil); err == nil {
		t.Fatal("DropRate on a passive coalition accepted")
	}
	if _, err := Build(Spec{Model: ModelBlackhole, Interval: sim.Second}, nodes[1:2], nil); err == nil {
		t.Fatal("Interval on a static blackhole accepted")
	}
	rng := sim.NewRNG(1)
	for _, model := range Models() {
		hosts := nodes[1:2]
		if model == ModelCoalition || model == ModelMobile || model == ModelWormhole {
			hosts = nodes[1:3]
		}
		adv, err := Build(Spec{Model: model}, hosts, rng)
		if err != nil {
			t.Fatalf("model %s: %v", model, err)
		}
		if adv.Model() != model {
			t.Fatalf("model %s reported as %s", model, adv.Model())
		}
		if len(adv.Members()) != len(hosts) {
			t.Fatalf("model %s members = %d, want %d", model, len(adv.Members()), len(hosts))
		}
	}
}
