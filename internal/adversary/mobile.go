package adversary

import (
	"mtsim/internal/eaves"
	"mtsim/internal/node"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// Mobile is a single eavesdropper that moves: every Interval it abandons
// its current vantage point and taps the next host on its tour, modelling
// an attacker that physically roams the field re-tapping whatever node it
// is near. Only the currently active vantage point collects; the union
// accumulates across the whole tour.
type Mobile struct {
	hosts    []*node.Node
	interval sim.Duration

	active  int // index into hosts of the current vantage point
	perHost []Member
	union   map[uint64]bool
	stream  eaves.StreamTracker
	frames  uint64
}

// NewMobile attaches a mobile eavesdropper touring the given hosts in a
// random order (drawn from rng; nil keeps the given order), re-tapping
// every interval. The tour wraps around when it reaches the end.
func NewMobile(hosts []*node.Node, interval sim.Duration, rng *sim.RNG) *Mobile {
	if rng != nil {
		perm := rng.Perm(len(hosts))
		shuffled := make([]*node.Node, len(hosts))
		for i, j := range perm {
			shuffled[i] = hosts[j]
		}
		hosts = shuffled
	}
	m := &Mobile{
		hosts:    hosts,
		interval: interval,
		perHost:  make([]Member, len(hosts)),
		union:    make(map[uint64]bool),
	}
	for i, h := range hosts {
		m.perHost[i].Node = h.ID()
		idx := i
		h.AddTap(func(f *packet.Frame) { m.tap(idx, f) })
	}
	sched := hosts[0].Scheduler()
	var move func()
	move = func() {
		m.active = (m.active + 1) % len(m.hosts)
		sched.After(m.interval, move)
	}
	sched.After(interval, move)
	return m
}

func (m *Mobile) tap(host int, f *packet.Frame) {
	if host != m.active || !eaves.Counts(f) {
		return
	}
	m.frames++
	m.perHost[host].Frames++
	id := f.Payload.DataID
	if !m.union[id] {
		m.union[id] = true
		m.stream.Note(id)
		m.perHost[host].Distinct++
	}
}

// Active returns the node currently tapped (tests, demos).
func (m *Mobile) Active() packet.NodeID { return m.hosts[m.active].ID() }

// Model implements Adversary.
func (m *Mobile) Model() string { return ModelMobile }

// Members implements Adversary: per-visited-host accounting in tour order.
// Distinct here counts payloads first heard at that host, so members sum
// exactly to the union.
func (m *Mobile) Members() []Member {
	return append([]Member(nil), m.perHost...)
}

// Distinct implements Adversary.
func (m *Mobile) Distinct() uint64 { return uint64(len(m.union)) }

// Frames implements Adversary.
func (m *Mobile) Frames() uint64 { return m.frames }

// Ratio implements Adversary.
func (m *Mobile) Ratio(pr uint64) float64 { return ratio(m.Distinct(), pr) }

// Dropped implements Adversary: mobile eavesdropping is passive.
func (m *Mobile) Dropped() uint64 { return 0 }

// Attracted implements Adversary: mobile eavesdropping is passive.
func (m *Mobile) Attracted() uint64 { return 0 }

// Contiguity implements Adversary over the whole-tour union.
func (m *Mobile) Contiguity() eaves.ContigStats { return eaves.Stats(m.union, &m.stream) }

var _ Adversary = (*Mobile)(nil)
