package adversary

import (
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/node"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// TestAdaptiveRNGDraws pins the adaptive eavesdropper's documented RNG
// budget: exactly one Perm(len(hosts)) at construction and zero draws
// afterwards, no matter how many re-tap decisions fire. A reference
// stream with the same seed, advanced by exactly that one draw, must stay
// position-identical to the adversary's stream — before the run and after
// several re-tap intervals. Any hidden draw (a tie-break, a jittered
// timer) desynchronises the streams and fails the second loop.
func TestAdaptiveRNGDraws(t *testing.T) {
	sched, nodes, uids := buildNet(t, line())
	rng := sim.NewRNG(42)
	adv := NewAdaptive([]*node.Node{nodes[1], nodes[2], nodes[3]}, 2*sim.Second, rng)

	ref := sim.NewRNG(42)
	ref.Perm(3) // the one constructor draw
	for i := 0; i < 32; i++ {
		if got, want := rng.Intn(1<<30), ref.Intn(1<<30); got != want {
			t.Fatalf("draw %d after construction: %d != reference %d — constructor consumed more than one Perm", i, got, want)
		}
	}

	// Feed traffic so re-taps have evidence to chase, then run through
	// several intervals: the argmax decision must be RNG-free.
	for i := uint64(1); i <= 20; i++ {
		nodes[0].SendMac(dataPkt(uids, 0, i), 1)
	}
	sched.RunUntil(sim.Time(9 * sim.Second))
	if adv.Moves() < 4 {
		t.Fatalf("only %d re-tap decisions in 9s at a 2s interval", adv.Moves())
	}
	for i := 0; i < 32; i++ {
		if got, want := rng.Intn(1<<30), ref.Intn(1<<30); got != want {
			t.Fatalf("draw %d after %d re-taps: %d != reference %d — retap consumed RNG", i, adv.Moves(), got, want)
		}
	}

	// A nil rng keeps the declared candidate order (EffectiveModel wiring
	// relies on this for pinned tours).
	_, nodes2, _ := buildNet(t, line())
	quiet := NewAdaptive([]*node.Node{nodes2[3], nodes2[1]}, 2*sim.Second, nil)
	if quiet.Active() != 3 {
		t.Fatalf("nil-rng initial vantage = %d, want declared first host 3", quiet.Active())
	}
}

// countProto counts Receive calls per DataID, keyed by upstream hop —
// the far-endpoint probe for the tunnel's exactly-once delivery property.
type countProto struct {
	recv map[uint64]int
	from map[uint64]packet.NodeID
}

func newCountProto() *countProto {
	return &countProto{recv: make(map[uint64]int), from: make(map[uint64]packet.NodeID)}
}

func (c *countProto) Name() string        { return "COUNT" }
func (c *countProto) Start()              {}
func (c *countProto) Send(*packet.Packet) {}
func (c *countProto) Receive(p *packet.Packet, from packet.NodeID) {
	c.recv[p.DataID]++
	c.from[p.DataID] = from
}
func (c *countProto) LinkFailed(*packet.Packet, packet.NodeID) {}

// TestWormholeTunnelExactlyOnce is the tunnel's arena-ledger property:
// every control packet entering the tunnel is delivered to the far
// endpoint exactly once and released exactly once — broadcast floods are
// cloned (the original still airs locally), claimed unicast crosses out
// of band, and Retire drains clones still in flight without a delivery.
func TestWormholeTunnelExactlyOnce(t *testing.T) {
	// W1 at x=0 with an honest neighbour at x=200; W2 at x=1000 — far
	// outside the 250 m radio range of both, reachable only via tunnel.
	sched, nodes, uids := buildNet(t, []geo.Point{{X: 0}, {X: 200}, {X: 1000}})
	ar := packet.NewArena()
	ar.Check = true
	for _, n := range nodes {
		n.SetArena(ar)
	}
	neighbour, far := newCountProto(), newCountProto()
	nodes[1].SetProtocol(neighbour)
	nodes[2].SetProtocol(far)
	w := NewWormhole(nodes[0], nodes[2])

	// Broadcast control: tunnelled as a clone AND flooded locally.
	for i := uint64(1); i <= 5; i++ {
		nodes[0].SendMac(ar.NewPacketFrom(packet.Packet{
			UID: uids.Next(), Kind: packet.KindRREQ, Size: 64,
			Src: 0, Dst: 2, TTL: 8, DataID: i,
		}), packet.Broadcast)
	}
	// Unicast control across the phantom link: claimed outright.
	nodes[0].SendMac(ar.NewPacketFrom(packet.Packet{
		UID: uids.Next(), Kind: packet.KindRREP, Size: 64,
		Src: 0, Dst: 2, TTL: 8, DataID: 100,
	}), 2)
	sched.RunUntil(sim.Time(2 * sim.Second))

	for i := uint64(1); i <= 5; i++ {
		if got := far.recv[i]; got != 1 {
			t.Fatalf("far endpoint received broadcast %d %d times, want exactly 1", i, got)
		}
		if from := far.from[i]; from != 0 {
			t.Fatalf("tunnelled broadcast %d attributed to hop %d, want near endpoint 0", i, from)
		}
		if got := neighbour.recv[i]; got != 1 {
			t.Fatalf("local flood of broadcast %d reached the honest neighbour %d times, want 1 (tunnel must not suppress the original)", i, got)
		}
	}
	if got := far.recv[100]; got != 1 {
		t.Fatalf("phantom-link unicast received %d times, want exactly 1", got)
	}
	if got := neighbour.recv[100]; got != 0 {
		t.Fatalf("claimed unicast aired locally (%d receives at the neighbour)", got)
	}
	if got := w.Tunnelled(); got != 6 {
		t.Fatalf("Tunnelled() = %d, want 6", got)
	}

	// A clone still in tunnel flight at run end is drained by Retire,
	// never delivered, and the ledger closes with every counter at zero.
	nodes[0].SendMac(ar.NewPacketFrom(packet.Packet{
		UID: uids.Next(), Kind: packet.KindRREQ, Size: 64,
		Src: 0, Dst: 2, TTL: 8, DataID: 200,
	}), packet.Broadcast)
	w.Retire()
	sched.RunUntil(sim.Time(4 * sim.Second)) // the local flood still airs
	if got := far.recv[200]; got != 0 {
		t.Fatalf("drained clone was delivered %d times", got)
	}
	if got := neighbour.recv[200]; got != 1 {
		t.Fatalf("local flood after tunnel drain reached the neighbour %d times, want 1", got)
	}
	for _, n := range nodes {
		n.Retire()
	}
	st := ar.Stats()
	if live := ar.LivePackets(); live != 0 {
		t.Fatalf("leak: %d live packets (acquired %d, released %d)", live, st.PacketsAcquired, st.PacketsReleased)
	}
	if st.DoubleReleases != 0 {
		t.Fatalf("%d double releases — a tunnel clone was released twice", st.DoubleReleases)
	}
	if st.ForeignReleases != 0 {
		t.Fatalf("%d foreign releases", st.ForeignReleases)
	}
	if st.PoisonTrips != 0 {
		t.Fatalf("%d writes through released packets", st.PoisonTrips)
	}
}

// TestRushingFilterPolicy pins the rushing attack's narrow footprint:
// route-request jitter collapses to zero, every other kind keeps its
// timing, and the filter never claims a packet (timing is the whole
// attack — ownership transfers would change arena accounting).
func TestRushingFilterPolicy(t *testing.T) {
	var f rushFilter
	rreq := &packet.Packet{Kind: packet.KindRREQ}
	if d := f.RouteJitter(rreq, 10*sim.Millisecond); d != 0 {
		t.Fatalf("RREQ jitter = %v, want 0 (rushed)", d)
	}
	for _, k := range []packet.Kind{packet.KindRREP, packet.KindRERR, packet.KindCheck, packet.KindData} {
		p := &packet.Packet{Kind: k}
		if d := f.RouteJitter(p, 10*sim.Millisecond); d != 10*sim.Millisecond {
			t.Fatalf("kind %v jitter rewritten to %v, want untouched", k, d)
		}
		if f.FilterRoute(p, 1) {
			t.Fatalf("rushing claimed a %v packet", k)
		}
	}
	if f.FilterRoute(rreq, packet.Broadcast) {
		t.Fatal("rushing claimed an RREQ")
	}
}
