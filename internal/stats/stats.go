// Package stats provides the small statistical helpers shared by the
// metrics collector and the experiment harness: means, population standard
// deviation (the paper's Eq. 4 uses /N, not /(N-1)), and normal-theory
// confidence intervals across repetitions.
package stats

import "math"

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDevPop returns the population standard deviation (divide by N),
// matching Eq. 4 of the paper.
func StdDevPop(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// StdDevSample returns the sample standard deviation (divide by N-1); used
// for confidence intervals across repetitions.
func StdDevSample(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// CI95 returns the half-width of a 95% normal-theory confidence interval
// for the mean of xs.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDevSample(xs) / math.Sqrt(float64(len(xs)))
}

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm). The experiment engine folds each completed run's metric into
// one of these instead of retaining every RunMetrics, so a sweep's memory
// footprint is O(cells), not O(runs). The zero value is an empty
// accumulator.
type Welford struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 with no observations, matching Mean).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.mean
}

// StdDevSample returns the sample standard deviation (0 for n < 2,
// matching StdDevSample).
func (w *Welford) StdDevSample() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// CI95 returns the half-width of a 95% normal-theory confidence interval
// for the mean (0 for n < 2, matching CI95).
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * w.StdDevSample() / math.Sqrt(float64(w.n))
}

// MinMax returns the extrema (0,0 for an empty slice).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
