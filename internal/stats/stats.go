// Package stats provides the small statistical helpers shared by the
// metrics collector and the experiment harness: means, population standard
// deviation (the paper's Eq. 4 uses /N, not /(N-1)), and normal-theory
// confidence intervals across repetitions.
package stats

import "math"

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDevPop returns the population standard deviation (divide by N),
// matching Eq. 4 of the paper.
func StdDevPop(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// StdDevSample returns the sample standard deviation (divide by N-1); used
// for confidence intervals across repetitions.
func StdDevSample(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// CI95 returns the half-width of a 95% normal-theory confidence interval
// for the mean of xs.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDevSample(xs) / math.Sqrt(float64(len(xs)))
}

// MinMax returns the extrema (0,0 for an empty slice).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
