package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if !almostEq(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean")
	}
}

func TestStdDevPop(t *testing.T) {
	// Known example: {2,4,4,4,5,5,7,9} has population stddev 2.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(StdDevPop(xs), 2) {
		t.Fatalf("pop stddev = %v", StdDevPop(xs))
	}
	if StdDevPop(nil) != 0 {
		t.Fatal("empty")
	}
	if !almostEq(StdDevPop([]float64{5}), 0) {
		t.Fatal("singleton")
	}
}

func TestStdDevSample(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 2 * math.Sqrt(8.0/7.0)
	if !almostEq(StdDevSample(xs), want) {
		t.Fatalf("sample stddev = %v want %v", StdDevSample(xs), want)
	}
	if StdDevSample([]float64{1}) != 0 {
		t.Fatal("singleton sample stddev")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	if CI95(xs) != 0 {
		t.Fatal("constant data must have zero CI")
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("singleton CI")
	}
	if CI95([]float64{1, 3}) <= 0 {
		t.Fatal("CI must be positive for varying data")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax = %v %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty minmax")
	}
}

// Property: population stddev is translation-invariant and scales with |c|.
func TestStdDevProperties(t *testing.T) {
	f := func(raw []int8, shift int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) + float64(shift)
		}
		return math.Abs(StdDevPop(xs)-StdDevPop(ys)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: stddev is non-negative and zero for constant slices.
func TestStdDevNonNegative(t *testing.T) {
	f := func(raw []int8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return StdDevPop(xs) >= 0 && StdDevSample(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
