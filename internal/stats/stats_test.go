package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if !almostEq(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean")
	}
}

func TestStdDevPop(t *testing.T) {
	// Known example: {2,4,4,4,5,5,7,9} has population stddev 2.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(StdDevPop(xs), 2) {
		t.Fatalf("pop stddev = %v", StdDevPop(xs))
	}
	if StdDevPop(nil) != 0 {
		t.Fatal("empty")
	}
	if !almostEq(StdDevPop([]float64{5}), 0) {
		t.Fatal("singleton")
	}
}

func TestStdDevSample(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 2 * math.Sqrt(8.0/7.0)
	if !almostEq(StdDevSample(xs), want) {
		t.Fatalf("sample stddev = %v want %v", StdDevSample(xs), want)
	}
	if StdDevSample([]float64{1}) != 0 {
		t.Fatal("singleton sample stddev")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	if CI95(xs) != 0 {
		t.Fatal("constant data must have zero CI")
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("singleton CI")
	}
	if CI95([]float64{1, 3}) <= 0 {
		t.Fatal("CI must be positive for varying data")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax = %v %v", lo, hi)
	}
	lo, hi = MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Fatal("empty minmax")
	}
}

// Property: population stddev is translation-invariant and scales with |c|.
func TestStdDevProperties(t *testing.T) {
	f := func(raw []int8, shift int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ys[i] = float64(v) + float64(shift)
		}
		return math.Abs(StdDevPop(xs)-StdDevPop(ys)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: stddev is non-negative and zero for constant slices.
func TestStdDevNonNegative(t *testing.T) {
	f := func(raw []int8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		return StdDevPop(xs) >= 0 && StdDevSample(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCasesEmptyAndSingleton(t *testing.T) {
	// n = 0: every estimator is defined as 0, never NaN.
	if Mean(nil) != 0 || StdDevPop(nil) != 0 || StdDevSample(nil) != 0 || CI95(nil) != 0 {
		t.Fatal("n=0 estimators must be 0")
	}
	if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
		t.Fatal("n=0 MinMax must be (0,0)")
	}
	// n = 1: a single repetition has no spread estimate; CI95 must be 0
	// (not NaN from a 0/0), so single-rep sweep tables stay printable.
	one := []float64{42}
	if CI95(one) != 0 || StdDevSample(one) != 0 {
		t.Fatalf("n=1: CI95=%v sd=%v, want 0", CI95(one), StdDevSample(one))
	}
	if Mean(one) != 42 {
		t.Fatal("n=1 mean")
	}
}

func TestNaNPropagation(t *testing.T) {
	// A NaN observation must poison the aggregate, not vanish into a
	// plausible-looking number: silently averaging around a NaN metric
	// would hide a broken metric extractor.
	xs := []float64{1, math.NaN(), 3}
	if !math.IsNaN(Mean(xs)) {
		t.Fatal("mean must propagate NaN")
	}
	if !math.IsNaN(StdDevPop(xs)) || !math.IsNaN(StdDevSample(xs)) {
		t.Fatal("stddev must propagate NaN")
	}
	if !math.IsNaN(CI95(xs)) {
		t.Fatal("CI95 must propagate NaN")
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.CI95()) {
		t.Fatal("Welford must propagate NaN")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	cases := [][]float64{
		{},
		{7},
		{1, 2},
		{2, 4, 4, 4, 5, 5, 7, 9},
		{1e9, 1e9 + 1, 1e9 + 2, 1e9 + 3}, // catastrophic-cancellation regime
		{-5, 0, 5, 2.5, -2.5},
	}
	for _, xs := range cases {
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		if w.N() != len(xs) {
			t.Fatalf("N=%d want %d", w.N(), len(xs))
		}
		if !almostEq(w.Mean(), Mean(xs)) {
			t.Fatalf("%v: Welford mean %v, batch %v", xs, w.Mean(), Mean(xs))
		}
		if !almostEq(w.StdDevSample(), StdDevSample(xs)) {
			t.Fatalf("%v: Welford sd %v, batch %v", xs, w.StdDevSample(), StdDevSample(xs))
		}
		if !almostEq(w.CI95(), CI95(xs)) {
			t.Fatalf("%v: Welford CI %v, batch %v", xs, w.CI95(), CI95(xs))
		}
	}
}

func TestWelfordProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		return math.Abs(w.Mean()-Mean(xs)) < 1e-6*(1+math.Abs(Mean(xs))) &&
			math.Abs(w.CI95()-CI95(xs)) < 1e-6*(1+CI95(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
