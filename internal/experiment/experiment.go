// Package experiment runs the paper's evaluation: parameter sweeps over
// protocol × MAXSPEED × adversary × repetition, executed by a sweep engine
// on a worker pool (one goroutine per independent simulation — the
// simulator itself is single-threaded and deterministic), aggregated into
// the series behind each figure and rendered as aligned text/CSV/markdown
// tables.
//
// The engine is built for sweep-scale throughput:
//
//   - Each grid cell is looked up in an optional content-addressed result
//     cache (internal/runcache) before dispatch and persisted after
//     completion, so repeated sweeps skip identical cells and an
//     interrupted sweep resumes from the completed runs on disk.
//   - Each worker owns one reusable scenario.Context, so consecutive runs
//     reset the expensive simulation scaffolding (scheduler heap, event
//     pools, spatial grid, radios) instead of reallocating it.
//   - The first simulation error cancels all outstanding work (with the
//     failing cell named in the error) instead of silently finishing the
//     rest of the grid.
//   - With DiscardRuns set, every completed run is immediately distilled
//     into per-figure streaming aggregates and the full RunMetrics are
//     dropped on the spot, so a sweep's memory footprint is O(cells), not
//     O(runs × nodes).
package experiment

import (
	"fmt"
	"strings"

	"mtsim/internal/adversary"
	"mtsim/internal/countermeasure"
	"mtsim/internal/metrics"
	"mtsim/internal/scenario"
	"mtsim/internal/stats"
)

// Sweep declares a protocol × speed × adversary × repetition grid over a
// base configuration.
type Sweep struct {
	Base      scenario.Config
	Protocols []string
	Speeds    []float64 // MAXSPEED values (m/s)
	Reps      int
	SeedBase  int64
	// Adversaries is the optional threat-model axis (model × k). Empty
	// runs the base configuration's adversary and leaves the cell keys'
	// Adversary field blank, preserving the paper's plain sweep.
	Adversaries []adversary.Spec
	// Countermeasures is the optional defender axis (none / shuffle /
	// aware / shuffle+aware). Empty runs the base configuration's
	// countermeasure and leaves the cell keys' Countermeasure field
	// blank. Crossed with Adversaries it forms the defender-vs-attacker
	// grid behind experiments -only countermeasure.
	Countermeasures []countermeasure.Spec
	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int
	// Cache, when non-nil, short-circuits every grid cell whose result is
	// already stored (the run is skipped entirely, its cached metrics are
	// aggregated as if just computed) and persists every newly computed
	// result. Because the store is content-addressed by the full
	// configuration and seed, this doubles as checkpoint/restore: a killed
	// sweep re-run with the same cache resumes after its completed cells.
	// *runcache.Store is the on-disk implementation; the interface exists
	// for fault injection and future remote stores.
	Cache Cache
	// Retry bounds how often a failed cell is re-attempted (same
	// configuration and seed — the simulator's determinism makes a retry
	// byte-identical to a clean run). The zero value means one attempt.
	Retry RetryPolicy
	// Watchdog is the per-run deadline pair (simulated-event budget and
	// wall clock) applied to every simulated cell. The zero value is
	// unlimited.
	Watchdog Watchdog
	// KeepGoing degrades gracefully instead of cancelling on the first
	// ultimately-failed cell: the failure (with its attempt history) is
	// recorded in Result.Failed and the rest of the grid completes.
	KeepGoing bool
	// Journal, when non-nil, receives one JSONL record per attempt (and
	// per cache hit) — the sweep's append-only flake history.
	Journal *Journal
	// Runner, when non-nil, replaces DefaultRunner for every cell attempt
	// — the seam internal/faultinject injects chaos through.
	Runner Runner
	// DiscardRuns drops each RunMetrics once it has been distilled into
	// the streaming per-figure aggregates (and, if enabled, the cache).
	// Result.Runs stays empty; Table, CSV, AdversaryTable and
	// AdversaryCSV keep working from the aggregates, but Mean, CI and
	// Series with a custom metric extractor have nothing to consult. Use
	// it for grids large enough that retaining every run matters.
	DiscardRuns bool
	// OnRun, when set, is called after each completed run — including
	// cache hits — for progress reporting. It may be called from multiple
	// goroutines and must be safe for concurrent use.
	OnRun func(m *metrics.RunMetrics)
}

// PaperSweep returns the paper's §IV-A evaluation grid over the given base
// configuration: DSR/AODV/MTS at MAXSPEED ∈ {2,5,10,15,20} m/s, 5
// repetitions.
func PaperSweep(base scenario.Config) Sweep {
	return Sweep{
		Base:      base,
		Protocols: []string{"DSR", "AODV", "MTS"},
		Speeds:    []float64{2, 5, 10, 15, 20},
		Reps:      5,
		SeedBase:  1,
	}
}

// CellKey identifies one aggregation cell. Adversary is the
// adversary.Spec label ("coalition×4") and Countermeasure the
// countermeasure.Spec label ("shuffle×8"); each stays "" when the sweep
// has no such axis.
type CellKey struct {
	Protocol       string
	Speed          float64
	Adversary      string
	Countermeasure string
}

// Result holds the outcome of a sweep: every run indexed by cell (unless
// the sweep discarded them) plus per-cell streaming aggregates of every
// built-in figure metric, and the cache accounting.
type Result struct {
	Sweep Sweep
	// Runs maps each cell to its repetitions, sorted by seed. Empty when
	// Sweep.DiscardRuns distilled the runs into aggregates instead.
	Runs map[CellKey][]*metrics.RunMetrics
	// aggs holds one Welford accumulator per (cell, figure ID) for
	// DiscardRuns sweeps (empty otherwise — retained runs serve the
	// renderers directly), folded in seed order so the aggregates are
	// bit-identical no matter in which order the parallel workers
	// finished.
	aggs map[CellKey]map[string]*stats.Welford
	// CacheHits and CacheMisses count cells served from / missing in the
	// sweep's cache (both 0 when no cache was attached). CachePutErrs
	// counts results that ran fine but could not be persisted (the sweep
	// itself is not failed for a sick cache); CacheFirstPutErr retains the
	// first such error so the summary can name the path and cause instead
	// of only a count.
	CacheHits        int
	CacheMisses      int
	CachePutErrs     int
	CacheFirstPutErr error
	// Failed records every run of a KeepGoing sweep that failed all its
	// attempts, sorted by cell then seed. Empty on a clean sweep (and
	// always empty without KeepGoing — there the first failure cancels the
	// sweep and is returned as the error instead).
	Failed []FailedCell
	// okReps and failed count surviving / ultimately-failed repetitions
	// per cell, so the renderers can mark degraded cells instead of
	// printing misleading zeros.
	okReps map[CellKey]int
	failed map[CellKey]int
}

// advAxis returns the effective adversary axis: the declared Adversaries,
// or a single entry reproducing the base configuration's adversary under
// the blank label when no axis was declared. Axis entries whose canonical
// labels collide (e.g. two pinned-node variants of the same model × k)
// are disambiguated with a "#n" suffix so no two cells ever merge.
func (s Sweep) advAxis() ([]adversary.Spec, []string) {
	if len(s.Adversaries) == 0 {
		return []adversary.Spec{s.Base.Adversary}, []string{""}
	}
	labels := make([]string, len(s.Adversaries))
	counts := make(map[string]int, len(s.Adversaries))
	for i, a := range s.Adversaries {
		l := a.Label()
		counts[l]++
		if c := counts[l]; c > 1 {
			l = fmt.Sprintf("%s#%d", l, c)
		}
		labels[i] = l
	}
	return s.Adversaries, labels
}

// cmAxis is advAxis's defender twin: the declared Countermeasures, or a
// single entry reproducing the base configuration's countermeasure under
// the blank label, with the same collision-suffix discipline.
func (s Sweep) cmAxis() ([]countermeasure.Spec, []string) {
	if len(s.Countermeasures) == 0 {
		return []countermeasure.Spec{s.Base.Countermeasure}, []string{""}
	}
	labels := make([]string, len(s.Countermeasures))
	counts := make(map[string]int, len(s.Countermeasures))
	for i, c := range s.Countermeasures {
		l := c.Label()
		counts[l]++
		if n := counts[l]; n > 1 {
			l = fmt.Sprintf("%s#%d", l, n)
		}
		labels[i] = l
	}
	return s.Countermeasures, labels
}

// AdversaryLabels returns the adversary axis's canonical cell labels in
// axis order — Spec labels plus the "#n" collision suffixes the engine
// keys cells with. Renderers taking a label parameter (CountermeasureTable
// and friends) must be fed these, not re-derived Spec.Label()s, or a
// sweep with colliding specs would query cells that do not exist.
func (s Sweep) AdversaryLabels() []string {
	_, labels := s.advAxis()
	return labels
}

// CountermeasureLabels is AdversaryLabels for the defender axis.
func (s Sweep) CountermeasureLabels() []string {
	_, labels := s.cmAxis()
	return labels
}

// allFigures returns every built-in figure definition; the engine distills
// each completed run into one value per entry.
func allFigures() []Figure {
	figs := append(PaperFigures(), AdversaryFigures()...)
	return append(figs, CountermeasureFigures()...)
}

// runRecord is the distilled form of one completed run: just its seed (the
// deterministic fold order) and one value per built-in figure.
type runRecord struct {
	seed int64
	vals []float64
}

// Mean returns the mean of metric over a cell's repetitions. It consults
// the retained runs, so it reports 0 after a DiscardRuns sweep — use the
// figure-based renderers (Table, CSV, FigMean) there.
func (r *Result) Mean(key CellKey, metric func(*metrics.RunMetrics) float64) float64 {
	return stats.Mean(r.values(key, metric))
}

// CI returns the 95% confidence half-width of metric over a cell (0 after
// a DiscardRuns sweep, like Mean).
func (r *Result) CI(key CellKey, metric func(*metrics.RunMetrics) float64) float64 {
	return stats.CI95(r.values(key, metric))
}

func (r *Result) values(key CellKey, metric func(*metrics.RunMetrics) float64) []float64 {
	runs := r.Runs[key]
	out := make([]float64, 0, len(runs))
	for _, m := range runs {
		out = append(out, metric(m))
	}
	return out
}

// FigMean and FigCI report one built-in figure's aggregate for a cell from
// the streaming accumulators, which survive DiscardRuns.
func (r *Result) FigMean(key CellKey, fig Figure) float64 {
	m, _ := r.figMeanCI(key, fig)
	return m
}

// FigCI is the 95% confidence half-width companion of FigMean.
func (r *Result) FigCI(key CellKey, fig Figure) float64 {
	_, ci := r.figMeanCI(key, fig)
	return ci
}

// figMeanCI serves the table renderers: the retained runs when the sweep
// kept them — fig.Metric is always honoured there, even for a
// caller-customised Figure that reuses a built-in ID — and the per-figure
// streaming aggregate (keyed by fig.ID, built-in figures only) after a
// DiscardRuns sweep.
func (r *Result) figMeanCI(key CellKey, fig Figure) (mean, ci float64) {
	if runs := r.Runs[key]; len(runs) > 0 {
		vals := r.values(key, fig.Metric)
		return stats.Mean(vals), stats.CI95(vals)
	}
	if agg := r.aggs[key]; agg != nil {
		if w, ok := agg[fig.ID]; ok {
			return w.Mean(), w.CI95()
		}
	}
	return 0, 0
}

// cellText renders one 20-character table cell: mean ± CI for a healthy
// cell, a FAILED marker when every repetition of the cell failed (a zero
// there would read as a measurement), and a trailing "!" when some
// repetitions are missing so the mean rests on fewer runs than its
// neighbours. Clean sweeps render byte-identically to the pre-failure
// engine.
func (r *Result) cellText(key CellKey, fig Figure) string {
	if r.cellAllFailed(key) {
		return fmt.Sprintf("%20s", "FAILED")
	}
	mean, ci := r.figMeanCI(key, fig)
	if r.failed[key] > 0 {
		return fmt.Sprintf("%12.4f ±%5.3f!", mean, ci)
	}
	return fmt.Sprintf("%13.4f ±%5.3f", mean, ci)
}

// cellCSV is cellText for the CSV renderers: empty mean/ci fields for an
// all-failed cell (parsers see missing data, not zeros), normal fields
// otherwise.
func (r *Result) cellCSV(key CellKey, fig Figure) string {
	if r.cellAllFailed(key) {
		return ",,"
	}
	mean, ci := r.figMeanCI(key, fig)
	return fmt.Sprintf(",%.6f,%.6f", mean, ci)
}

// defaultAdversary returns the Adversary label figure tables aggregate
// over: blank for a plain paper sweep, otherwise the first axis entry's
// label. It must come from advAxis — the single place labels are derived,
// collision suffixes included — or tables could aggregate a cell key that
// was never produced.
func (r *Result) defaultAdversary() string {
	_, labels := r.Sweep.advAxis()
	return labels[0]
}

// defaultCountermeasure is defaultAdversary's defender twin: the
// Countermeasure label single-axis renderers aggregate over.
func (r *Result) defaultCountermeasure() string {
	_, labels := r.Sweep.cmAxis()
	return labels[0]
}

// Series returns the per-speed means for one protocol, in Speeds order.
// Like Mean, it needs retained runs (custom extractors cannot be served
// from the per-figure aggregates).
func (r *Result) Series(proto string, metric func(*metrics.RunMetrics) float64) []float64 {
	out := make([]float64, 0, len(r.Sweep.Speeds))
	for _, v := range r.Sweep.Speeds {
		out = append(out, r.Mean(CellKey{Protocol: proto, Speed: v, Adversary: r.defaultAdversary(), Countermeasure: r.defaultCountermeasure()}, metric))
	}
	return out
}

// Table renders the figure data as an aligned text table: one row per
// speed, one column per protocol, mean ± 95% CI.
func (r *Result) Table(fig Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s", fig.ID, fig.Title)
	if fig.Unit != "" {
		fmt.Fprintf(&b, " (%s)", fig.Unit)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-14s", "maxspeed(m/s)")
	for _, p := range r.Sweep.Protocols {
		fmt.Fprintf(&b, "%20s", p)
	}
	b.WriteString("\n")
	for _, v := range r.Sweep.Speeds {
		fmt.Fprintf(&b, "%-14g", v)
		for _, p := range r.Sweep.Protocols {
			key := CellKey{Protocol: p, Speed: v, Adversary: r.defaultAdversary(), Countermeasure: r.defaultCountermeasure()}
			b.WriteString(r.cellText(key, fig))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the figure data as CSV (speed, then mean and ci per
// protocol).
func (r *Result) CSV(fig Figure) string {
	var b strings.Builder
	b.WriteString("maxspeed")
	for _, p := range r.Sweep.Protocols {
		fmt.Fprintf(&b, ",%s_mean,%s_ci95", p, p)
	}
	b.WriteString("\n")
	for _, v := range r.Sweep.Speeds {
		fmt.Fprintf(&b, "%g", v)
		for _, p := range r.Sweep.Protocols {
			key := CellKey{Protocol: p, Speed: v, Adversary: r.defaultAdversary(), Countermeasure: r.defaultCountermeasure()}
			b.WriteString(r.cellCSV(key, fig))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// AdversaryTable renders one metric of the adversary axis at a fixed
// MAXSPEED as an aligned text table: one row per adversary (model × k, in
// axis order), one column per protocol, mean ± 95% CI — the
// Ri-vs-coalition-size view the paper's Fig. 7 generalizes to.
func (r *Result) AdversaryTable(fig Figure, speed float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s", fig.ID, fig.Title)
	if fig.Unit != "" {
		fmt.Fprintf(&b, " (%s)", fig.Unit)
	}
	fmt.Fprintf(&b, " at %g m/s\n", speed)
	fmt.Fprintf(&b, "%-18s", "adversary")
	for _, p := range r.Sweep.Protocols {
		fmt.Fprintf(&b, "%20s", p)
	}
	b.WriteString("\n")
	specs, labels := r.Sweep.advAxis()
	for i := range specs {
		fmt.Fprintf(&b, "%-18s", labels[i])
		for _, p := range r.Sweep.Protocols {
			key := CellKey{Protocol: p, Speed: speed, Adversary: labels[i], Countermeasure: r.defaultCountermeasure()}
			b.WriteString(r.cellText(key, fig))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CountermeasureTable renders one metric of the defender axis at a fixed
// MAXSPEED under one adversary label as an aligned text table: one row
// per countermeasure (in axis order), one column per protocol, mean ± 95%
// CI — the defender-vs-attacker view (how much does each defence claw
// back from this adversary).
func (r *Result) CountermeasureTable(fig Figure, speed float64, advLabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s", fig.ID, fig.Title)
	if fig.Unit != "" {
		fmt.Fprintf(&b, " (%s)", fig.Unit)
	}
	fmt.Fprintf(&b, " at %g m/s vs %s\n", speed, advOrBase(advLabel))
	fmt.Fprintf(&b, "%-20s", "countermeasure")
	for _, p := range r.Sweep.Protocols {
		fmt.Fprintf(&b, "%20s", p)
	}
	b.WriteString("\n")
	specs, labels := r.Sweep.cmAxis()
	for i := range specs {
		fmt.Fprintf(&b, "%-20s", cmOrBase(labels[i]))
		for _, p := range r.Sweep.Protocols {
			key := CellKey{Protocol: p, Speed: speed, Adversary: advLabel, Countermeasure: labels[i]}
			b.WriteString(r.cellText(key, fig))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CountermeasureCSV renders the defender axis at a fixed MAXSPEED and
// adversary label as CSV (countermeasure label, then mean and ci per
// protocol).
func (r *Result) CountermeasureCSV(fig Figure, speed float64, advLabel string) string {
	var b strings.Builder
	b.WriteString("countermeasure")
	for _, p := range r.Sweep.Protocols {
		fmt.Fprintf(&b, ",%s_mean,%s_ci95", p, p)
	}
	b.WriteString("\n")
	specs, labels := r.Sweep.cmAxis()
	for i := range specs {
		b.WriteString(cmOrBase(labels[i]))
		for _, p := range r.Sweep.Protocols {
			key := CellKey{Protocol: p, Speed: speed, Adversary: advLabel, Countermeasure: labels[i]}
			b.WriteString(r.cellCSV(key, fig))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// advOrBase and cmOrBase render the blank no-axis label readably.
func advOrBase(label string) string {
	if label == "" {
		return "base adversary"
	}
	return label
}

func cmOrBase(label string) string {
	if label == "" {
		return "base"
	}
	return label
}

// AdversaryCSV renders the adversary axis at a fixed MAXSPEED as CSV
// (adversary label, then mean and ci per protocol).
func (r *Result) AdversaryCSV(fig Figure, speed float64) string {
	var b strings.Builder
	b.WriteString("adversary")
	for _, p := range r.Sweep.Protocols {
		fmt.Fprintf(&b, ",%s_mean,%s_ci95", p, p)
	}
	b.WriteString("\n")
	specs, labels := r.Sweep.advAxis()
	for i := range specs {
		b.WriteString(labels[i])
		for _, p := range r.Sweep.Protocols {
			key := CellKey{Protocol: p, Speed: speed, Adversary: labels[i], Countermeasure: r.defaultCountermeasure()}
			b.WriteString(r.cellCSV(key, fig))
		}
		b.WriteString("\n")
	}
	return b.String()
}
