// Package experiment runs the paper's evaluation: parameter sweeps over
// protocol × MAXSPEED × adversary × repetition, executed on a worker pool
// (one goroutine per independent simulation — the simulator itself is
// single-threaded and deterministic), aggregated into the series behind
// each figure and rendered as aligned text/CSV/markdown tables.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"mtsim/internal/adversary"
	"mtsim/internal/metrics"
	"mtsim/internal/scenario"
	"mtsim/internal/stats"
)

// Sweep declares a protocol × speed × adversary × repetition grid over a
// base configuration.
type Sweep struct {
	Base      scenario.Config
	Protocols []string
	Speeds    []float64 // MAXSPEED values (m/s)
	Reps      int
	SeedBase  int64
	// Adversaries is the optional threat-model axis (model × k). Empty
	// runs the base configuration's adversary and leaves the cell keys'
	// Adversary field blank, preserving the paper's plain sweep.
	Adversaries []adversary.Spec
	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	Parallelism int
	// OnRun, when set, is called after each completed run (progress
	// reporting). It may be called from multiple goroutines and must be
	// safe for concurrent use.
	OnRun func(m *metrics.RunMetrics)
}

// PaperSweep returns the paper's §IV-A evaluation grid over the given base
// configuration: DSR/AODV/MTS at MAXSPEED ∈ {2,5,10,15,20} m/s, 5
// repetitions.
func PaperSweep(base scenario.Config) Sweep {
	return Sweep{
		Base:      base,
		Protocols: []string{"DSR", "AODV", "MTS"},
		Speeds:    []float64{2, 5, 10, 15, 20},
		Reps:      5,
		SeedBase:  1,
	}
}

// CellKey identifies one aggregation cell. Adversary is the Spec label
// ("coalition×4"); it stays "" when the sweep has no adversary axis.
type CellKey struct {
	Protocol  string
	Speed     float64
	Adversary string
}

// Result holds every run of a sweep, indexed by cell.
type Result struct {
	Sweep Sweep
	Runs  map[CellKey][]*metrics.RunMetrics
}

// advAxis returns the effective adversary axis: the declared Adversaries,
// or a single entry reproducing the base configuration's adversary under
// the blank label when no axis was declared. Axis entries whose canonical
// labels collide (e.g. two pinned-node variants of the same model × k)
// are disambiguated with a "#n" suffix so no two cells ever merge.
func (s Sweep) advAxis() ([]adversary.Spec, []string) {
	if len(s.Adversaries) == 0 {
		return []adversary.Spec{s.Base.Adversary}, []string{""}
	}
	labels := make([]string, len(s.Adversaries))
	counts := make(map[string]int, len(s.Adversaries))
	for i, a := range s.Adversaries {
		l := a.Label()
		counts[l]++
		if c := counts[l]; c > 1 {
			l = fmt.Sprintf("%s#%d", l, c)
		}
		labels[i] = l
	}
	return s.Adversaries, labels
}

// Run executes the sweep. Repetition r uses seed SeedBase+r for every
// protocol, speed and adversary, pairing the comparisons: identical
// mobility and traffic endpoints across protocols and threat models.
func (s Sweep) Run() (*Result, error) {
	type job struct {
		key  CellKey
		adv  adversary.Spec
		seed int64
	}
	specs, labels := s.advAxis()
	var jobs []job
	for _, p := range s.Protocols {
		for _, v := range s.Speeds {
			for a := range specs {
				for r := 0; r < s.Reps; r++ {
					jobs = append(jobs, job{
						key:  CellKey{Protocol: p, Speed: v, Adversary: labels[a]},
						adv:  specs[a],
						seed: s.SeedBase + int64(r),
					})
				}
			}
		}
	}

	workers := s.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	res := &Result{Sweep: s, Runs: make(map[CellKey][]*metrics.RunMetrics)}
	var mu sync.Mutex
	var firstErr error
	jobCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				cfg := s.Base
				cfg.Protocol = j.key.Protocol
				cfg.MaxSpeed = j.key.Speed
				cfg.Adversary = j.adv
				cfg.Seed = j.seed
				m, err := scenario.RunOne(cfg)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("%s speed=%g adversary=%q seed=%d: %w",
							j.key.Protocol, j.key.Speed, j.key.Adversary, j.seed, err)
					}
				} else {
					res.Runs[j.key] = append(res.Runs[j.key], m)
				}
				mu.Unlock()
				if err == nil && s.OnRun != nil {
					s.OnRun(m)
				}
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// Deterministic ordering inside each cell regardless of completion
	// order.
	for _, runs := range res.Runs {
		sort.Slice(runs, func(i, j int) bool { return runs[i].Seed < runs[j].Seed })
	}
	return res, nil
}

// Mean returns the mean of metric over a cell's repetitions.
func (r *Result) Mean(key CellKey, metric func(*metrics.RunMetrics) float64) float64 {
	return stats.Mean(r.values(key, metric))
}

// CI returns the 95% confidence half-width of metric over a cell.
func (r *Result) CI(key CellKey, metric func(*metrics.RunMetrics) float64) float64 {
	return stats.CI95(r.values(key, metric))
}

func (r *Result) values(key CellKey, metric func(*metrics.RunMetrics) float64) []float64 {
	runs := r.Runs[key]
	out := make([]float64, 0, len(runs))
	for _, m := range runs {
		out = append(out, metric(m))
	}
	return out
}

// defaultAdversary returns the Adversary label figure tables aggregate
// over: blank for a plain paper sweep, otherwise the first axis entry.
func (r *Result) defaultAdversary() string {
	if len(r.Sweep.Adversaries) == 0 {
		return ""
	}
	return r.Sweep.Adversaries[0].Label()
}

// Series returns the per-speed means for one protocol, in Speeds order.
func (r *Result) Series(proto string, metric func(*metrics.RunMetrics) float64) []float64 {
	out := make([]float64, 0, len(r.Sweep.Speeds))
	for _, v := range r.Sweep.Speeds {
		out = append(out, r.Mean(CellKey{Protocol: proto, Speed: v, Adversary: r.defaultAdversary()}, metric))
	}
	return out
}

// Table renders the figure data as an aligned text table: one row per
// speed, one column per protocol, mean ± 95% CI.
func (r *Result) Table(fig Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s", fig.ID, fig.Title)
	if fig.Unit != "" {
		fmt.Fprintf(&b, " (%s)", fig.Unit)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-14s", "maxspeed(m/s)")
	for _, p := range r.Sweep.Protocols {
		fmt.Fprintf(&b, "%20s", p)
	}
	b.WriteString("\n")
	for _, v := range r.Sweep.Speeds {
		fmt.Fprintf(&b, "%-14g", v)
		for _, p := range r.Sweep.Protocols {
			key := CellKey{Protocol: p, Speed: v, Adversary: r.defaultAdversary()}
			fmt.Fprintf(&b, "%13.4f ±%5.3f", r.Mean(key, fig.Metric), r.CI(key, fig.Metric))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the figure data as CSV (speed, then mean and ci per
// protocol).
func (r *Result) CSV(fig Figure) string {
	var b strings.Builder
	b.WriteString("maxspeed")
	for _, p := range r.Sweep.Protocols {
		fmt.Fprintf(&b, ",%s_mean,%s_ci95", p, p)
	}
	b.WriteString("\n")
	for _, v := range r.Sweep.Speeds {
		fmt.Fprintf(&b, "%g", v)
		for _, p := range r.Sweep.Protocols {
			key := CellKey{Protocol: p, Speed: v, Adversary: r.defaultAdversary()}
			fmt.Fprintf(&b, ",%.6f,%.6f", r.Mean(key, fig.Metric), r.CI(key, fig.Metric))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// AdversaryTable renders one metric of the adversary axis at a fixed
// MAXSPEED as an aligned text table: one row per adversary (model × k, in
// axis order), one column per protocol, mean ± 95% CI — the
// Ri-vs-coalition-size view the paper's Fig. 7 generalizes to.
func (r *Result) AdversaryTable(fig Figure, speed float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s", fig.ID, fig.Title)
	if fig.Unit != "" {
		fmt.Fprintf(&b, " (%s)", fig.Unit)
	}
	fmt.Fprintf(&b, " at %g m/s\n", speed)
	fmt.Fprintf(&b, "%-18s", "adversary")
	for _, p := range r.Sweep.Protocols {
		fmt.Fprintf(&b, "%20s", p)
	}
	b.WriteString("\n")
	specs, labels := r.Sweep.advAxis()
	for i := range specs {
		fmt.Fprintf(&b, "%-18s", labels[i])
		for _, p := range r.Sweep.Protocols {
			key := CellKey{Protocol: p, Speed: speed, Adversary: labels[i]}
			fmt.Fprintf(&b, "%13.4f ±%5.3f", r.Mean(key, fig.Metric), r.CI(key, fig.Metric))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// AdversaryCSV renders the adversary axis at a fixed MAXSPEED as CSV
// (adversary label, then mean and ci per protocol).
func (r *Result) AdversaryCSV(fig Figure, speed float64) string {
	var b strings.Builder
	b.WriteString("adversary")
	for _, p := range r.Sweep.Protocols {
		fmt.Fprintf(&b, ",%s_mean,%s_ci95", p, p)
	}
	b.WriteString("\n")
	specs, labels := r.Sweep.advAxis()
	for i := range specs {
		b.WriteString(labels[i])
		for _, p := range r.Sweep.Protocols {
			key := CellKey{Protocol: p, Speed: speed, Adversary: labels[i]}
			fmt.Fprintf(&b, ",%.6f,%.6f", r.Mean(key, fig.Metric), r.CI(key, fig.Metric))
		}
		b.WriteString("\n")
	}
	return b.String()
}
