package experiment

// This file closes the attacker–defender loop: an iterated best-response
// harness that alternates attacker and defender moves over the sweep
// engine until the strategy pair stops moving. Each move evaluates one
// row (every attacker against the incumbent defender) or one column (every
// defender against the incumbent attacker) of the payoff matrix through
// cache-backed Sweep.Run calls, so revisited cells cost nothing and two
// same-seed harness runs produce bit-identical payoff tables — the
// property TestCoevolutionConverges pins.

import (
	"fmt"
	"sort"
	"strings"

	"mtsim/internal/adversary"
	"mtsim/internal/countermeasure"
	"mtsim/internal/scenario"
)

// Payoff is one cell of the attacker × defender payoff matrix: the three
// committed components plus the scalar the players optimise. Score is the
// DEFENDER's utility (delivery minus interceptable contiguity); the
// attacker minimises it, the defender maximises it.
type Payoff struct {
	Delivery       float64 // mean delivery rate over the cell's repetitions
	Intercept      float64 // mean in-order intercepted stream ratio
	ThroughputKbps float64 // mean goodput
	Score          float64 // Delivery − Intercept, the defender's utility
}

// Move is one best-response step in the co-evolution history.
type Move struct {
	Round  int    // 1-based round the move happened in
	Player string // "attacker" or "defender"
	From   int    // strategy index before the move
	To     int    // strategy index after (== From when the player stood)
}

// Coevolution declares an iterated best-response game between an attacker
// choosing among Attackers and a defender choosing among Defenders, played
// over the simulator at one protocol and speed. The zero value is not
// usable; Attackers and Defenders must each name at least one strategy
// (index 0 is both players' opening strategy, so list the status quo —
// the lone eavesdropper, the undefended baseline — first).
type Coevolution struct {
	Base      scenario.Config
	Protocol  string  // "" means Base.Protocol
	Speed     float64 // 0 means Base.MaxSpeed
	Attackers []adversary.Spec
	Defenders []countermeasure.Spec
	Reps      int   // repetitions per cell (≥1)
	SeedBase  int64 // repetition r uses SeedBase+r, like Sweep
	// MaxRounds bounds the best-response iterations (default 8). A game
	// whose best responses cycle stops here with Converged=false.
	MaxRounds int
	// Tolerance is the strict score improvement a player needs before
	// abandoning its incumbent strategy; 0 means any improvement. It is
	// the float-noise guard that keeps near-tied strategies from
	// oscillating forever.
	Tolerance float64

	// Sweep plumbing, passed through to every evaluation sweep. The Cache
	// is what makes iteration affordable: a cell revisited in a later
	// round is a hit, not a re-simulation.
	Parallelism int
	Cache       Cache
	Retry       RetryPolicy
	Watchdog    Watchdog
	Journal     *Journal
	Runner      Runner
}

// CoevolutionResult is the completed game: the equilibrium (or the state
// at MaxRounds), every payoff cell evaluated along the way, and the move
// history.
type CoevolutionResult struct {
	Attacker  int  // equilibrium attacker strategy index
	Defender  int  // equilibrium defender strategy index
	Rounds    int  // best-response rounds played
	Converged bool // true: neither player moved in the final round

	// AttackerLabels and DefenderLabels are the canonical axis labels, in
	// strategy order (collision-suffixed like the sweep engine's).
	AttackerLabels []string
	DefenderLabels []string
	// Payoffs holds every evaluated cell keyed by [attacker, defender]
	// strategy index. Cells never visited by a best-response move are
	// absent.
	Payoffs map[[2]int]*Payoff
	Moves   []Move
}

// axisLabels derives canonical labels with the engine's collision-suffix
// discipline (advAxis/cmAxis) so two identically-labelled specs still get
// distinct columns in the payoff table.
func axisLabels(labels []string) []string {
	out := make([]string, len(labels))
	counts := make(map[string]int, len(labels))
	for i, l := range labels {
		counts[l]++
		if c := counts[l]; c > 1 {
			l = fmt.Sprintf("%s#%d", l, c)
		}
		out[i] = l
	}
	return out
}

func (c Coevolution) protocol() string {
	if c.Protocol != "" {
		return c.Protocol
	}
	return c.Base.Protocol
}

func (c Coevolution) speed() float64 {
	if c.Speed != 0 {
		return c.Speed
	}
	return c.Base.MaxSpeed
}

func (c Coevolution) maxRounds() int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return 8
}

// sweepFor builds the one-move evaluation sweep: the given attacker and
// defender strategy subsets at the game's single protocol and speed, with
// all the fault-tolerance plumbing passed through.
func (c Coevolution) sweepFor(atts []adversary.Spec, defs []countermeasure.Spec) Sweep {
	return Sweep{
		Base:            c.Base,
		Protocols:       []string{c.protocol()},
		Speeds:          []float64{c.speed()},
		Reps:            c.Reps,
		SeedBase:        c.SeedBase,
		Adversaries:     atts,
		Countermeasures: defs,
		Parallelism:     c.Parallelism,
		Cache:           c.Cache,
		Retry:           c.Retry,
		Watchdog:        c.Watchdog,
		Journal:         c.Journal,
		Runner:          c.Runner,
	}
}

// payoffAt distills one evaluated cell into its Payoff.
func payoffAt(res *Result, key CellKey) *Payoff {
	runs := res.Runs[key]
	p := &Payoff{}
	if len(runs) == 0 {
		return p
	}
	for _, m := range runs {
		p.Delivery += m.DeliveryRate
		p.Intercept += m.InterceptedStreamRatio
		p.ThroughputKbps += m.ThroughputKbps
	}
	n := float64(len(runs))
	p.Delivery /= n
	p.Intercept /= n
	p.ThroughputKbps /= n
	p.Score = p.Delivery - p.Intercept
	return p
}

// evalRow evaluates every attacker against defender di; evalCol evaluates
// every defender against attacker ai. Both return payoffs in strategy
// order and record them in the result's matrix.
func (c Coevolution) evalRow(res *CoevolutionResult, di int) ([]*Payoff, error) {
	sw := c.sweepFor(c.Attackers, c.Defenders[di:di+1])
	r, err := sw.Run()
	if err != nil {
		return nil, err
	}
	advLabels := sw.AdversaryLabels()
	cmLabel := sw.CountermeasureLabels()[0]
	out := make([]*Payoff, len(c.Attackers))
	for ai := range c.Attackers {
		key := CellKey{Protocol: c.protocol(), Speed: c.speed(), Adversary: advLabels[ai], Countermeasure: cmLabel}
		out[ai] = payoffAt(r, key)
		res.Payoffs[[2]int{ai, di}] = out[ai]
	}
	return out, nil
}

func (c Coevolution) evalCol(res *CoevolutionResult, ai int) ([]*Payoff, error) {
	sw := c.sweepFor(c.Attackers[ai:ai+1], c.Defenders)
	r, err := sw.Run()
	if err != nil {
		return nil, err
	}
	advLabel := sw.AdversaryLabels()[0]
	cmLabels := sw.CountermeasureLabels()
	out := make([]*Payoff, len(c.Defenders))
	for di := range c.Defenders {
		key := CellKey{Protocol: c.protocol(), Speed: c.speed(), Adversary: advLabel, Countermeasure: cmLabels[di]}
		out[di] = payoffAt(r, key)
		res.Payoffs[[2]int{ai, di}] = out[di]
	}
	return out, nil
}

// bestResponse scans candidate payoffs in ascending strategy order and
// returns the index the player should hold next: the extremal strategy
// (minimising for the attacker, maximising for the defender), but only if
// it beats the incumbent's payoff by strictly more than Tolerance —
// otherwise the incumbent stands. Ascending scan with strict comparison
// makes ties deterministic (lowest index wins).
func (c Coevolution) bestResponse(scores []*Payoff, incumbent int, maximise bool) int {
	best := 0
	for i := 1; i < len(scores); i++ {
		if maximise {
			if scores[i].Score > scores[best].Score {
				best = i
			}
		} else if scores[i].Score < scores[best].Score {
			best = i
		}
	}
	gain := scores[best].Score - scores[incumbent].Score
	if !maximise {
		gain = -gain
	}
	if best != incumbent && gain > c.Tolerance {
		return best
	}
	return incumbent
}

// Run plays the game: each round the attacker best-responds to the
// incumbent defender, then the defender best-responds to the (possibly
// new) attacker. The game ends when a full round moves neither player —
// a pure-strategy fixed point of the empirical payoff matrix — or at
// MaxRounds. Determinism end to end: the simulator is deterministic, the
// scan orders are fixed, and no wall clock or RNG is consulted, so two
// same-seed games produce identical results byte for byte.
func (c Coevolution) Run() (*CoevolutionResult, error) {
	if len(c.Attackers) == 0 || len(c.Defenders) == 0 {
		return nil, fmt.Errorf("coevolution: need at least one attacker and one defender strategy")
	}
	if c.Reps < 1 {
		return nil, fmt.Errorf("coevolution: Reps must be >= 1")
	}
	attLabels := make([]string, len(c.Attackers))
	for i, a := range c.Attackers {
		attLabels[i] = a.Label()
	}
	defLabels := make([]string, len(c.Defenders))
	for i, d := range c.Defenders {
		defLabels[i] = d.Label()
	}
	res := &CoevolutionResult{
		AttackerLabels: axisLabels(attLabels),
		DefenderLabels: axisLabels(defLabels),
		Payoffs:        map[[2]int]*Payoff{},
	}
	ai, di := 0, 0
	for round := 1; round <= c.maxRounds(); round++ {
		res.Rounds = round
		prevA, prevD := ai, di

		row, err := c.evalRow(res, di)
		if err != nil {
			return nil, fmt.Errorf("coevolution round %d (attacker move): %w", round, err)
		}
		next := c.bestResponse(row, ai, false)
		res.Moves = append(res.Moves, Move{Round: round, Player: "attacker", From: ai, To: next})
		ai = next

		col, err := c.evalCol(res, ai)
		if err != nil {
			return nil, fmt.Errorf("coevolution round %d (defender move): %w", round, err)
		}
		next = c.bestResponse(col, di, true)
		res.Moves = append(res.Moves, Move{Round: round, Player: "defender", From: di, To: next})
		di = next

		if ai == prevA && di == prevD {
			res.Converged = true
			break
		}
	}
	res.Attacker, res.Defender = ai, di
	return res, nil
}

// PayoffTable renders the evaluated payoff matrix as an aligned text
// table: one row per attacker, one column per defender, the defender's
// score (delivery − intercepted contiguity) in each evaluated cell, a dot
// for never-visited cells, and a star on the equilibrium. Deterministic
// byte-for-byte for a deterministic game.
func (r *CoevolutionResult) PayoffTable() string {
	var b strings.Builder
	state := "stopped at round limit"
	if r.Converged {
		state = fmt.Sprintf("converged in %d round(s)", r.Rounds)
	}
	fmt.Fprintf(&b, "coevolution — defender score (delivery − intercepted contiguity), %s\n", state)
	fmt.Fprintf(&b, "equilibrium: attacker=%s defender=%s\n",
		r.AttackerLabels[r.Attacker], cmOrBase(r.DefenderLabels[r.Defender]))
	fmt.Fprintf(&b, "%-20s", "attacker \\ defender")
	for _, d := range r.DefenderLabels {
		fmt.Fprintf(&b, "%16s", cmOrBase(d))
	}
	b.WriteString("\n")
	for ai, a := range r.AttackerLabels {
		fmt.Fprintf(&b, "%-20s", a)
		for di := range r.DefenderLabels {
			if p, ok := r.Payoffs[[2]int{ai, di}]; ok {
				mark := " "
				if ai == r.Attacker && di == r.Defender {
					mark = "*"
				}
				fmt.Fprintf(&b, "%15.4f%s", p.Score, mark)
			} else {
				fmt.Fprintf(&b, "%15s ", "·")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PayoffCSV renders every evaluated cell with its three payoff components,
// sorted by (attacker, defender) strategy index.
func (r *CoevolutionResult) PayoffCSV() string {
	cells := make([][2]int, 0, len(r.Payoffs))
	for k := range r.Payoffs {
		cells = append(cells, k)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i][0] != cells[j][0] {
			return cells[i][0] < cells[j][0]
		}
		return cells[i][1] < cells[j][1]
	})
	var b strings.Builder
	b.WriteString("attacker,defender,delivery,intercepted_stream_ratio,throughput_kbps,score\n")
	for _, k := range cells {
		p := r.Payoffs[k]
		fmt.Fprintf(&b, "%s,%s,%.6f,%.6f,%.6f,%.6f\n",
			r.AttackerLabels[k[0]], cmOrBase(r.DefenderLabels[k[1]]),
			p.Delivery, p.Intercept, p.ThroughputKbps, p.Score)
	}
	return b.String()
}

// History renders the move sequence one line per move.
func (r *CoevolutionResult) History() string {
	var b strings.Builder
	for _, m := range r.Moves {
		label := func(i int) string {
			if m.Player == "attacker" {
				return r.AttackerLabels[i]
			}
			return cmOrBase(r.DefenderLabels[i])
		}
		action := "stands on " + label(m.To)
		if m.From != m.To {
			action = fmt.Sprintf("switches %s -> %s", label(m.From), label(m.To))
		}
		fmt.Fprintf(&b, "round %d: %s %s\n", m.Round, m.Player, action)
	}
	return b.String()
}
