package experiment

import (
	"strings"
	"sync/atomic"
	"testing"

	"mtsim/internal/adversary"
	"mtsim/internal/countermeasure"
	"mtsim/internal/metrics"
	"mtsim/internal/runcache"
	"mtsim/internal/scenario"
	"mtsim/internal/sim"
)

// coevBase is the 50-node golden-scenario field at a short horizon: big
// enough to be connected (smaller defaults routinely partition at these
// seeds) so the payoff components are non-degenerate, short enough that a
// whole game stays in test budget.
func coevBase() scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Duration = 8 * sim.Second
	cfg.TCPStart = sim.Time(2 * sim.Second)
	return cfg
}

func coevGame(t *testing.T, cache Cache) Coevolution {
	t.Helper()
	return Coevolution{
		Base:     coevBase(),
		Protocol: "MTS",
		Speed:    10,
		Attackers: []adversary.Spec{
			{Model: adversary.ModelEavesdropper},
			{Model: adversary.ModelWormhole},
			{Model: adversary.ModelRushing, K: 2},
		},
		Defenders: []countermeasure.Spec{
			{},
			{Model: countermeasure.ModelShuffle},
			{Model: countermeasure.ModelTrust},
		},
		Reps:     1,
		SeedBase: 5,
		Cache:    cache,
	}
}

// TestCoevolutionConverges is the harness acceptance check: the iterated
// best-response game reaches a pure-strategy fixed point within the round
// budget, records a coherent move history, and — because the simulator,
// the scan orders and the cache are all deterministic — two same-seed
// games render byte-identical payoff tables and CSVs.
func TestCoevolutionConverges(t *testing.T) {
	cacheDir := t.TempDir()
	play := func(dir string) *CoevolutionResult {
		store, err := runcache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		res, err := coevGame(t, store).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res := play(cacheDir)
	if !res.Converged {
		t.Fatalf("game did not converge in %d rounds:\n%s", res.Rounds, res.PayoffTable())
	}
	if res.Rounds < 1 || res.Rounds > 8 {
		t.Fatalf("implausible round count %d", res.Rounds)
	}
	if res.Attacker < 0 || res.Attacker >= 3 || res.Defender < 0 || res.Defender >= 3 {
		t.Fatalf("equilibrium indices out of range: (%d, %d)", res.Attacker, res.Defender)
	}
	// Every round logs exactly one attacker and one defender move, and the
	// final round moves neither (the convergence definition).
	if len(res.Moves) != 2*res.Rounds {
		t.Fatalf("%d moves over %d rounds", len(res.Moves), res.Rounds)
	}
	last2 := res.Moves[len(res.Moves)-2:]
	for _, m := range last2 {
		if m.From != m.To {
			t.Fatalf("final round still moved %s: %+v", m.Player, m)
		}
	}
	// The equilibrium cell was evaluated and starred in the table.
	if _, ok := res.Payoffs[[2]int{res.Attacker, res.Defender}]; !ok {
		t.Fatal("equilibrium cell missing from the payoff matrix")
	}
	table := res.PayoffTable()
	if !strings.Contains(table, "*") || !strings.Contains(table, "converged") {
		t.Fatalf("payoff table lacks equilibrium mark:\n%s", table)
	}
	csv := res.PayoffCSV()
	if !strings.HasPrefix(csv, "attacker,defender,delivery,intercepted_stream_ratio,throughput_kbps,score\n") {
		t.Fatalf("payoff CSV header:\n%s", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 1+len(res.Payoffs) {
		t.Fatalf("payoff CSV rows do not match evaluated cells:\n%s", csv)
	}

	// Same-seed replay, fresh cache directory: bit-identical game.
	res2 := play(t.TempDir())
	if got, want := res2.PayoffTable(), table; got != want {
		t.Errorf("same-seed payoff tables diverge:\n--- run1\n%s\n--- run2\n%s", want, got)
	}
	if got, want := res2.PayoffCSV(), csv; got != want {
		t.Errorf("same-seed payoff CSVs diverge:\n--- run1\n%s\n--- run2\n%s", want, got)
	}
	if got, want := res2.History(), res.History(); got != want {
		t.Errorf("same-seed move histories diverge:\n--- run1\n%s\n--- run2\n%s", want, got)
	}

	// Replaying over the FIRST game's warm cache must also be identical —
	// and free: every cell the game revisits is a hit, zero simulations.
	var simulated int64
	warm := coevGame(t, mustOpen(t, cacheDir))
	warm.Runner = func(ctx *scenario.Context, cfg scenario.Config, w Watchdog) (*metrics.RunMetrics, error) {
		atomic.AddInt64(&simulated, 1)
		return DefaultRunner(ctx, cfg, w)
	}
	res3, err := warm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if simulated != 0 {
		t.Errorf("warm-cache replay re-simulated %d cells", simulated)
	}
	if res3.PayoffTable() != table {
		t.Errorf("warm-cache replay diverges from the original game")
	}
}

func mustOpen(t *testing.T, dir string) *runcache.Store {
	t.Helper()
	store, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// TestCoevolutionValidation: degenerate games are rejected loudly.
func TestCoevolutionValidation(t *testing.T) {
	c := Coevolution{Base: coevBase(), Protocol: "MTS", Reps: 1}
	if _, err := c.Run(); err == nil {
		t.Fatal("empty strategy sets accepted")
	}
	c.Attackers = []adversary.Spec{{}}
	c.Defenders = []countermeasure.Spec{{}}
	c.Reps = 0
	if _, err := c.Run(); err == nil {
		t.Fatal("Reps=0 accepted")
	}
}

// BenchmarkPayoffTable renders the payoff table and CSV from a pre-built
// result — the reporting hot path the coevolution CLI hits after every
// game (CI asserts this benchmark stays in the bench manifest).
func BenchmarkPayoffTable(b *testing.B) {
	res := &CoevolutionResult{
		Attacker:       1,
		Defender:       2,
		Rounds:         3,
		Converged:      true,
		AttackerLabels: []string{"eavesdropper×1", "wormhole×2", "rushing×2", "adaptive×3"},
		DefenderLabels: []string{"", "shuffle×8", "trust", "shuffle+aware×8"},
		Payoffs:        map[[2]int]*Payoff{},
	}
	for ai := 0; ai < 4; ai++ {
		for di := 0; di < 4; di++ {
			res.Payoffs[[2]int{ai, di}] = &Payoff{
				Delivery:       0.9 - 0.1*float64(ai),
				Intercept:      0.2 * float64(di),
				ThroughputKbps: 120 + float64(ai*di),
				Score:          0.9 - 0.1*float64(ai) - 0.2*float64(di),
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(res.PayoffTable()) == 0 || len(res.PayoffCSV()) == 0 {
			b.Fatal("empty render")
		}
	}
}
