package experiment

import (
	"strings"
	"sync/atomic"
	"testing"

	"mtsim/internal/adversary"
	"mtsim/internal/countermeasure"
	"mtsim/internal/geo"
	"mtsim/internal/metrics"
	"mtsim/internal/packet"
	"mtsim/internal/scenario"
	"mtsim/internal/sim"
)

// quickBase returns a small fast base config for harness tests.
func quickBase() scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Nodes = 20
	cfg.Duration = 5 * sim.Second
	cfg.TCPStart = sim.Time(500 * sim.Millisecond)
	return cfg
}

func TestSweepRunsAllCells(t *testing.T) {
	s := Sweep{
		Base:      quickBase(),
		Protocols: []string{"AODV", "MTS"},
		Speeds:    []float64{2, 10},
		Reps:      2,
		SeedBase:  1,
	}
	var count int64
	s.OnRun = func(*metrics.RunMetrics) { atomic.AddInt64(&count, 1) }
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("ran %d simulations, want 8", count)
	}
	for _, p := range s.Protocols {
		for _, v := range s.Speeds {
			runs := res.Runs[CellKey{Protocol: p, Speed: v}]
			if len(runs) != 2 {
				t.Fatalf("cell %s/%g has %d runs", p, v, len(runs))
			}
			if runs[0].Seed >= runs[1].Seed {
				t.Fatal("runs not sorted by seed")
			}
		}
	}
}

func TestSweepPairing(t *testing.T) {
	// Same repetition index ⇒ same seed across protocols, so mobility and
	// endpoints are identical (paired comparison).
	s := Sweep{
		Base:      quickBase(),
		Protocols: []string{"AODV", "MTS"},
		Speeds:    []float64{5},
		Reps:      2,
		SeedBase:  7,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	a := res.Runs[CellKey{Protocol: "AODV", Speed: 5}]
	b := res.Runs[CellKey{Protocol: "MTS", Speed: 5}]
	for i := range a {
		if a[i].Seed != b[i].Seed {
			t.Fatalf("rep %d seeds differ: %d vs %d", i, a[i].Seed, b[i].Seed)
		}
		if a[i].EavesdropperID != b[i].EavesdropperID {
			t.Fatalf("rep %d eavesdropper differs: %d vs %d",
				i, a[i].EavesdropperID, b[i].EavesdropperID)
		}
	}
}

func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	mk := func(par int) *Result {
		s := Sweep{
			Base:        quickBase(),
			Protocols:   []string{"MTS"},
			Speeds:      []float64{5, 15},
			Reps:        2,
			SeedBase:    3,
			Parallelism: par,
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := mk(1)
	parallel := mk(4)
	for key, runs := range serial.Runs {
		pruns := parallel.Runs[key]
		for i := range runs {
			if runs[i].Distinct != pruns[i].Distinct || runs[i].EventsRun != pruns[i].EventsRun {
				t.Fatalf("cell %v run %d differs between serial and parallel execution", key, i)
			}
		}
	}
}

func TestSweepAdversaryAxis(t *testing.T) {
	s := Sweep{
		Base:      quickBase(),
		Protocols: []string{"MTS"},
		Speeds:    []float64{10},
		Reps:      2,
		SeedBase:  1,
		Adversaries: []adversary.Spec{
			{Model: adversary.ModelEavesdropper},
			{Model: adversary.ModelCoalition, K: 2},
			{Model: adversary.ModelCoalition, K: 4},
		},
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("cells = %d, want one per adversary", len(res.Runs))
	}
	for _, spec := range s.Adversaries {
		key := CellKey{Protocol: "MTS", Speed: 10, Adversary: spec.Label()}
		runs := res.Runs[key]
		if len(runs) != 2 {
			t.Fatalf("cell %v has %d runs, want 2", key, len(runs))
		}
		for _, m := range runs {
			if m.AdversaryK != spec.EffectiveK() {
				t.Fatalf("cell %v ran with k=%d", key, m.AdversaryK)
			}
		}
	}
	// Same seed ⇒ same mobility and endpoints across the axis: the k=1
	// coalition cell and the legacy cell must agree on the union Pe
	// after the k-distinct selection draws the same first node.
	e1 := res.Runs[CellKey{Protocol: "MTS", Speed: 10, Adversary: "eavesdropper×1"}]
	c2 := res.Runs[CellKey{Protocol: "MTS", Speed: 10, Adversary: "coalition×2"}]
	for i := range e1 {
		if e1[i].Seed != c2[i].Seed {
			t.Fatal("adversary axis broke seed pairing")
		}
		// A 2-coalition including more vantage points never hears less.
		if c2[i].CoalitionDistinct < e1[i].CoalitionDistinct {
			t.Fatalf("rep %d: coalition×2 union %d < single tap %d",
				i, c2[i].CoalitionDistinct, e1[i].CoalitionDistinct)
		}
	}

	// The adversary table renders one row per axis entry.
	fig, ok := FigureByID("advRi")
	if !ok {
		t.Fatal("advRi figure missing")
	}
	table := res.AdversaryTable(fig, 10)
	for _, want := range []string{"eavesdropper×1", "coalition×2", "coalition×4", "MTS"} {
		if !strings.Contains(table, want) {
			t.Fatalf("adversary table missing %q:\n%s", want, table)
		}
	}
	csv := res.AdversaryCSV(fig, 10)
	if !strings.HasPrefix(csv, "adversary,MTS_mean,MTS_ci95") {
		t.Fatalf("adversary csv header:\n%s", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 4 {
		t.Fatalf("adversary csv rows:\n%s", csv)
	}
}

func TestSweepCountermeasureAxis(t *testing.T) {
	// The golden-fixture scenario rather than quickBase: the full 50-node
	// field at seed 5 reliably routes the flow through relays the
	// coalition overhears, so the undefended cell has non-zero contiguity
	// for the comparison below.
	base := scenario.DefaultConfig()
	base.Duration = 12 * sim.Second
	base.TCPStart = sim.Time(2 * sim.Second)
	s := Sweep{
		Base:      base,
		Protocols: []string{"MTS"},
		Speeds:    []float64{10},
		Reps:      2,
		SeedBase:  5,
		Adversaries: []adversary.Spec{
			{Model: adversary.ModelCoalition, K: 2},
		},
		Countermeasures: []countermeasure.Spec{
			{},
			{Model: countermeasure.ModelShuffle},
			{Model: countermeasure.ModelShuffleAware},
		},
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("cells = %d, want one per countermeasure", len(res.Runs))
	}
	advLabel := s.Adversaries[0].Label()
	for _, spec := range s.Countermeasures {
		key := CellKey{Protocol: "MTS", Speed: 10, Adversary: advLabel, Countermeasure: spec.Label()}
		runs := res.Runs[key]
		if len(runs) != 2 {
			t.Fatalf("cell %v has %d runs, want 2", key, len(runs))
		}
		for _, m := range runs {
			if m.CountermeasureModel != spec.EffectiveModel() {
				t.Fatalf("cell %v run reports model %q", key, m.CountermeasureModel)
			}
			if spec.Shuffles() && m.ShuffledSegments == 0 {
				t.Fatalf("cell %v shuffled nothing", key)
			}
		}
	}
	// Defender rows render for every countermeasure figure, and the
	// shuffle rows move the contiguity metric.
	fig, ok := FigureByID("cmStreamBytes")
	if !ok {
		t.Fatal("cmStreamBytes figure missing")
	}
	table := res.CountermeasureTable(fig, 10, advLabel)
	for _, want := range []string{"none", "shuffle×8", "shuffle+aware×8"} {
		if !strings.Contains(table, want) {
			t.Fatalf("countermeasure table lacks row %q:\n%s", want, table)
		}
	}
	csv := res.CountermeasureCSV(fig, 10, advLabel)
	if !strings.HasPrefix(csv, "countermeasure,MTS_mean,MTS_ci95\n") {
		t.Fatalf("countermeasure CSV header malformed:\n%s", csv)
	}
	baseKey := CellKey{Protocol: "MTS", Speed: 10, Adversary: advLabel, Countermeasure: "none"}
	shufKey := CellKey{Protocol: "MTS", Speed: 10, Adversary: advLabel, Countermeasure: "shuffle×8"}
	if res.FigMean(baseKey, fig) == 0 {
		t.Fatal("undefended cell intercepted no contiguous bytes; comparison proves nothing")
	}
	if res.FigMean(shufKey, fig) >= res.FigMean(baseKey, fig) {
		t.Errorf("shuffle cell mean contiguous bytes %.0f not below baseline %.0f",
			res.FigMean(shufKey, fig), res.FigMean(baseKey, fig))
	}
}

// TestCountermeasureFiguresComplete: every countermeasure figure must be
// resolvable by ID and carry a metric extractor.
func TestCountermeasureFiguresComplete(t *testing.T) {
	figs := CountermeasureFigures()
	if len(figs) == 0 {
		t.Fatal("no countermeasure figures")
	}
	for _, f := range figs {
		got, ok := FigureByID(f.ID)
		if !ok {
			t.Errorf("FigureByID(%q) missed", f.ID)
		}
		if got.Metric == nil {
			t.Errorf("figure %s has no metric", f.ID)
		}
	}
}

func TestAdvAxisDisambiguatesCollidingLabels(t *testing.T) {
	s := Sweep{
		Adversaries: []adversary.Spec{
			{Model: adversary.ModelCoalition, K: 2},
			{Model: adversary.ModelCoalition, Nodes: []packet.NodeID{1, 2}}, // same canonical label
			{Model: adversary.ModelMobile, K: 2},
		},
	}
	_, labels := s.advAxis()
	want := []string{"coalition×2", "coalition×2#2", "mobile×2"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestAdversaryFiguresComplete(t *testing.T) {
	for _, f := range AdversaryFigures() {
		if f.ID == "" || f.Metric == nil || f.Title == "" || f.Expect == "" {
			t.Fatalf("incomplete adversary figure %+v", f)
		}
		got, ok := FigureByID(f.ID)
		if !ok || got.Title != f.Title {
			t.Fatalf("FigureByID cannot find %q", f.ID)
		}
	}
}

func TestSweepErrorPropagates(t *testing.T) {
	base := quickBase()
	base.Flows = []scenario.FlowSpec{{Src: 0, Dst: 0}} // invalid
	s := Sweep{Base: base, Protocols: []string{"MTS"}, Speeds: []float64{5}, Reps: 1}
	if _, err := s.Run(); err == nil {
		t.Fatal("invalid config did not propagate an error")
	}
}

func TestTableAndCSVRendering(t *testing.T) {
	s := Sweep{
		Base:      quickBase(),
		Protocols: []string{"AODV", "MTS"},
		Speeds:    []float64{2, 10},
		Reps:      2,
		SeedBase:  1,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	fig, ok := FigureByID("fig10")
	if !ok {
		t.Fatal("fig10 missing")
	}
	table := res.Table(fig)
	if !strings.Contains(table, "fig10") || !strings.Contains(table, "AODV") {
		t.Fatalf("table rendering:\n%s", table)
	}
	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 2+len(s.Speeds) {
		t.Fatalf("table has %d lines:\n%s", len(lines), table)
	}
	csv := res.CSV(fig)
	if !strings.HasPrefix(csv, "maxspeed,AODV_mean,AODV_ci95,MTS_mean,MTS_ci95") {
		t.Fatalf("csv header:\n%s", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 1+len(s.Speeds) {
		t.Fatalf("csv rows:\n%s", csv)
	}
}

func TestPaperFiguresComplete(t *testing.T) {
	figs := PaperFigures()
	if len(figs) != 7 {
		t.Fatalf("figures = %d, want 7 (Figs. 5-11)", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if f.Metric == nil || f.Title == "" || f.Expect == "" {
			t.Fatalf("incomplete figure %q", f.ID)
		}
		if seen[f.ID] {
			t.Fatalf("duplicate figure id %q", f.ID)
		}
		seen[f.ID] = true
	}
	for _, id := range []string{"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
		if !seen[id] {
			t.Fatalf("missing %s", id)
		}
	}
	if _, ok := FigureByID("fig99"); ok {
		t.Fatal("phantom figure found")
	}
}

func TestTable1Rendering(t *testing.T) {
	base := quickBase()
	// Static chain so the participating set is predictable.
	base.Placement = []geo.Point{{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0}, {X: 600, Y: 0}}
	base.Field = geo.Field(700, 100)
	base.Flows = []scenario.FlowSpec{{Src: 0, Dst: 3}}
	base.Eavesdropper = 1
	base.Duration = 10 * sim.Second
	out, err := Table1(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table I", "β", "γ", "α", "σ", "%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesOrder(t *testing.T) {
	s := Sweep{
		Base:      quickBase(),
		Protocols: []string{"MTS"},
		Speeds:    []float64{2, 10, 20},
		Reps:      1,
		SeedBase:  1,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	series := res.Series("MTS", func(m *metrics.RunMetrics) float64 { return m.MaxSpeed })
	want := []float64{2, 10, 20}
	for i := range want {
		if series[i] != want[i] {
			t.Fatalf("series order: %v", series)
		}
	}
	_ = packet.NodeID(0)
}
