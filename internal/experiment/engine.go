package experiment

// This file is the fault-tolerance layer of the sweep engine: per-cell
// panic isolation, deterministic retries under a RetryPolicy, the run
// watchdog, KeepGoing degradation with per-cell failure records, and the
// append-only JSONL attempt journal. The simulator is deterministic, so
// a retry of a failed cell under the same configuration and seed is
// byte-identical to a never-failed run — fault tolerance here costs zero
// correctness, and internal/faultinject proves it with a seeded chaos
// suite.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"mtsim/internal/metrics"
	"mtsim/internal/scenario"
	"mtsim/internal/stats"
)

// RetryPolicy bounds the attempts the engine makes on a failed cell.
// Because the simulator is deterministic, retries re-run the exact same
// configuration and seed: they exist to absorb environmental failures
// (a hung machine tripping the watchdog, a worker panic from a resource
// edge, injected chaos), never to change results. The zero policy means
// one attempt — no retries — which is the pre-fault-tolerance behaviour.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per cell (first try
	// included); values below 1 mean 1.
	MaxAttempts int
	// Backoff is the delay before the second attempt; each further
	// attempt doubles it (capped exponential, no jitter — the backoff
	// sequence is as deterministic as the runs themselves). Zero means
	// immediate retries.
	Backoff time.Duration
	// MaxBackoff caps the doubling; 0 means uncapped.
	MaxBackoff time.Duration
	// Sleep, when set, replaces time.Sleep for the backoff waits (tests
	// and chaos suites substitute a recorder or a no-op). It may be
	// called from multiple worker goroutines.
	Sleep func(time.Duration)
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the backoff before the attempt following the given
// number of failures (1 failure → Backoff, 2 → 2×Backoff, …, capped).
func (p RetryPolicy) Delay(failures int) time.Duration {
	if p.Backoff <= 0 || failures < 1 {
		return 0
	}
	d := p.Backoff
	for i := 1; i < failures; i++ {
		d *= 2
		if d <= 0 { // overflow
			d = 1<<63 - 1
			break
		}
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

func (p RetryPolicy) sleep(failures int) {
	d := p.Delay(failures)
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Watchdog is the per-run deadline pair the engine applies to every
// simulated cell: a simulated-event budget that catches livelocked runs
// and a wall-clock budget that catches hung ones. A tripped watchdog
// kills the cell cleanly (the scenario is retired mid-run, the worker's
// context stays reusable) and counts as a failed attempt with kind
// KindTimeout. The zero Watchdog is unlimited.
type Watchdog struct {
	MaxEvents uint64        // simulated-event budget per run; 0 = unlimited
	WallClock time.Duration // wall-clock budget per run; 0 = unlimited
}

// Runner executes one cell attempt on a worker's reusable context. It is
// the engine's injection seam: internal/faultinject wraps the default
// runner to panic, error, or squeeze the watchdog budget on selected
// cells. A Runner must honour the watchdog (DefaultRunner does) and must
// leave the context reusable on every non-panic return.
type Runner func(ctx *scenario.Context, cfg scenario.Config, w Watchdog) (*metrics.RunMetrics, error)

// DefaultRunner builds cfg on the context, runs it under the watchdog,
// and retires the scenario so the arena's books are closed whether the
// run completed or was killed.
func DefaultRunner(ctx *scenario.Context, cfg scenario.Config, w Watchdog) (*metrics.RunMetrics, error) {
	s, err := ctx.Build(cfg)
	if err != nil {
		return nil, err
	}
	m, err := s.RunWatched(scenario.Budget{MaxEvents: w.MaxEvents, WallClock: w.WallClock})
	if err != nil {
		return nil, err // RunWatched already retired the scenario
	}
	s.Retire()
	return m, nil
}

// Cache is the engine-facing slice of runcache.Store: result lookup
// before dispatch, persistence after completion. It is an interface so
// fault injection (and future remote stores) can stand in for the
// on-disk implementation; *runcache.Store satisfies it. Implementations
// must be safe for concurrent use by the sweep's workers.
type Cache interface {
	Get(cfg scenario.Config) (*metrics.RunMetrics, bool)
	Put(cfg scenario.Config, m *metrics.RunMetrics) error
}

// Attempt failure kinds (Attempt.Kind, AttemptRecord.Outcome).
const (
	KindError   = "error"   // the runner returned an ordinary error
	KindPanic   = "panic"   // the runner panicked; recovered and isolated
	KindTimeout = "timeout" // the run watchdog killed the cell
)

// PanicError is a recovered per-cell panic: the panic value plus the
// stack at the point of the panic, attributed to the cell by the
// surrounding engine error. Isolating panics this way keeps one
// poisoned cell from killing a multi-hour sweep.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// errKind classifies a failed attempt for records and the journal.
func errKind(err error) string {
	var pe *PanicError
	if errors.As(err, &pe) {
		return KindPanic
	}
	var ae *scenario.AbortError
	if errors.As(err, &ae) {
		return KindTimeout
	}
	return KindError
}

// Attempt is one failed try at a cell, retained in FailedCell.Attempts
// as the cell's flake history.
type Attempt struct {
	Attempt int    `json:"attempt"` // 1-based
	Kind    string `json:"kind"`    // KindError, KindPanic or KindTimeout
	Err     string `json:"error"`
}

// FailedCell records one run that failed every attempt of a KeepGoing
// sweep: its cell, seed, the full attempt history, and the final
// cell-attributed error.
type FailedCell struct {
	Key      CellKey
	Seed     int64
	Attempts []Attempt
	Err      error
}

// AttemptRecord is one line of the JSONL attempt journal: every attempt
// of every simulated cell (successes included) plus cache hits, with the
// cell flattened for easy post-mortem filtering. Wall time and event
// counts are observability data, not results — they never feed the
// aggregates, so journal contents do not perturb determinism.
type AttemptRecord struct {
	Protocol       string  `json:"protocol"`
	Speed          float64 `json:"speed"`
	Adversary      string  `json:"adversary,omitempty"`
	Countermeasure string  `json:"countermeasure,omitempty"`
	Seed           int64   `json:"seed"`
	Attempt        int     `json:"attempt"` // 0 for cache hits
	Outcome        string  `json:"outcome"` // "ok", "cache-hit", KindError, KindPanic, KindTimeout
	Error          string  `json:"error,omitempty"`
	Events         uint64  `json:"events,omitempty"` // simulated events (successful runs)
	WallMS         float64 `json:"wall_ms"`
}

// Journal is an append-only JSONL log of sweep attempts, safe for
// concurrent use by the workers. Writes are best-effort — a sick journal
// never fails a sweep — with the first write error retained for
// inspection via Err.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer
	n   int
	err error
}

// NewJournal wraps an existing writer (a buffer in tests, a pipe to a
// log shipper) as an attempt journal.
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// OpenJournal opens (creating if needed) an append-mode journal file.
// Append mode means repeated sweeps over the same journal accumulate —
// the flake history of a grid spans invocations.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{w: f, c: f}, nil
}

// Record appends one attempt line. A record that cannot be marshalled
// (NaN speeds are the realistic case — encoding/json rejects them) is
// dropped like any other failed write: counted against Err, never
// against the sweep.
func (j *Journal) Record(rec AttemptRecord) {
	if j == nil {
		return
	}
	doc, err := json.Marshal(rec)
	if err != nil {
		j.mu.Lock()
		if j.err == nil {
			j.err = fmt.Errorf("journal: marshal: %w", err)
		}
		j.mu.Unlock()
		return
	}
	doc = append(doc, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, werr := j.w.Write(doc); werr != nil {
		if j.err == nil {
			j.err = werr
		}
		return
	}
	j.n++
}

// Records reports how many lines were successfully appended.
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Err returns the first write error, if any (best-effort logging: the
// sweep itself never fails for a sick journal).
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close closes the underlying file when the journal owns one.
func (j *Journal) Close() error {
	if j == nil || j.c == nil {
		return nil
	}
	return j.c.Close()
}

// CellJob is one grid cell as the fabric ships it around: the
// aggregation key plus the complete configuration (seed included). The
// configuration is plain data — it survives a JSON round trip with its
// content address (runcache.Key) unchanged, which is what lets a
// coordinator lease cells to workers on other processes and hosts.
type CellJob struct {
	Key    CellKey         `json:"key"`
	Config scenario.Config `json:"config"`
}

// job is CellJob's internal shorthand in the worker-pool plumbing.
type job struct {
	key CellKey
	cfg scenario.Config
}

// Jobs enumerates the sweep's full grid in the engine's deterministic
// dispatch order — protocol × speed × adversary × countermeasure ×
// repetition, repetition r seeded SeedBase+r. It is the job source a
// distributed coordinator (internal/sweepfabric) partitions into leases:
// Run dispatches exactly these cells, so a fabric that completes them
// all lets Run aggregate entirely from cache.
func (s Sweep) Jobs() []CellJob {
	specs, labels := s.advAxis()
	cmSpecs, cmLabels := s.cmAxis()
	var jobs []CellJob
	for _, p := range s.Protocols {
		for _, v := range s.Speeds {
			for a := range specs {
				for c := range cmSpecs {
					for r := 0; r < s.Reps; r++ {
						cfg := s.Base
						cfg.Protocol = p
						cfg.MaxSpeed = v
						cfg.Adversary = specs[a]
						cfg.Countermeasure = cmSpecs[c]
						cfg.Seed = s.SeedBase + int64(r)
						jobs = append(jobs, CellJob{
							Key:    CellKey{Protocol: p, Speed: v, Adversary: labels[a], Countermeasure: cmLabels[c]},
							Config: cfg,
						})
					}
				}
			}
		}
	}
	return jobs
}

// Executor is the engine's per-cell fault-tolerance machinery — panic
// isolation, deterministic retries, the run watchdog, attempt journal —
// factored out of Sweep so out-of-process workers (internal/sweepfabric)
// run leased cells through exactly the attempt path a local sweep uses.
// The zero Executor runs each cell once with DefaultRunner, unwatched.
type Executor struct {
	Runner   Runner
	Retry    RetryPolicy
	Watchdog Watchdog
	Journal  *Journal
}

// executor bundles the sweep's fault-tolerance knobs for its workers.
func (s Sweep) executor() Executor {
	return Executor{Runner: s.Runner, Retry: s.Retry, Watchdog: s.Watchdog, Journal: s.Journal}
}

// journalAttempt writes one attempt (or cache hit) to the journal, if any.
func (e Executor) journalAttempt(j job, attempt int, outcome, errMsg string, events uint64, wall time.Duration) {
	if e.Journal == nil {
		return
	}
	e.Journal.Record(AttemptRecord{
		Protocol:       j.key.Protocol,
		Speed:          j.key.Speed,
		Adversary:      j.key.Adversary,
		Countermeasure: j.key.Countermeasure,
		Seed:           j.cfg.Seed,
		Attempt:        attempt,
		Outcome:        outcome,
		Error:          errMsg,
		Events:         events,
		WallMS:         float64(wall) / float64(time.Millisecond),
	})
}

// cellError attributes a cell's final error with everything a post-mortem
// needs: protocol, speed, both axis labels, seed, and the attempt count.
func cellError(j job, err error, attempts int) error {
	base := fmt.Errorf("%s speed=%g adversary=%q countermeasure=%q seed=%d: %w",
		j.key.Protocol, j.key.Speed, j.key.Adversary, j.key.Countermeasure, j.cfg.Seed, err)
	if attempts > 1 {
		return fmt.Errorf("%w (after %d attempts)", base, attempts)
	}
	return base
}

// attempt executes one try of a cell with panic isolation: a panic
// anywhere in the simulator unwinds to here and becomes a *PanicError
// instead of killing the worker (and with it the whole sweep).
func (e Executor) attempt(ctx *scenario.Context, cfg scenario.Config) (m *metrics.RunMetrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	run := e.Runner
	if run == nil {
		run = DefaultRunner
	}
	return run(ctx, cfg, e.Watchdog)
}

// attemptEvents reports how many simulated events a failed attempt
// executed before dying: watchdog kills carry the count in their
// *scenario.AbortError, so livelock post-mortems in the journal see how
// far the run got instead of a flat zero.
func attemptEvents(err error) uint64 {
	var ae *scenario.AbortError
	if errors.As(err, &ae) {
		return ae.Events
	}
	return 0
}

// RunCell drives one cell through the retry policy. The context pointer
// is replaced with a fresh one after a panic — a panic unwound the
// simulator mid-run, so the reusable scaffolding is in an unknown state
// and must not serve another run. Retries use the identical
// configuration and seed: determinism makes retry ≡ fresh run.
func (e Executor) RunCell(ctxp **scenario.Context, key CellKey, cfg scenario.Config) (*metrics.RunMetrics, []Attempt, error) {
	return e.runCell(ctxp, job{key: key, cfg: cfg})
}

func (e Executor) runCell(ctxp **scenario.Context, j job) (*metrics.RunMetrics, []Attempt, error) {
	max := e.Retry.attempts()
	var attempts []Attempt
	var lastErr error
	for a := 1; a <= max; a++ {
		start := time.Now()
		m, err := e.attempt(*ctxp, j.cfg)
		if err == nil {
			e.journalAttempt(j, a, "ok", "", m.EventsRun, time.Since(start))
			return m, attempts, nil
		}
		kind := errKind(err)
		e.journalAttempt(j, a, kind, err.Error(), attemptEvents(err), time.Since(start))
		lastErr = err
		attempts = append(attempts, Attempt{Attempt: a, Kind: kind, Err: err.Error()})
		if kind == KindPanic {
			*ctxp = scenario.NewContext()
		}
		if a < max {
			e.Retry.sleep(a)
		}
	}
	return nil, attempts, cellError(j, lastErr, len(attempts))
}

// Run executes the sweep. Repetition r uses seed SeedBase+r for every
// protocol, speed and adversary, pairing the comparisons: identical
// mobility and traffic endpoints across protocols and threat models.
//
// Cells present in Sweep.Cache are served without simulating; the rest
// are dispatched to a worker pool where each worker reuses one
// scenario.Context across its runs. Each cell runs under the engine's
// fault-tolerance layer: panics are isolated into cell-attributed
// errors, failed cells are retried under Sweep.Retry (same seed — the
// simulator's determinism makes a retry byte-identical to a clean run),
// and the Watchdog kills livelocked or hung runs cleanly. Without
// KeepGoing the first ultimately-failed cell cancels all outstanding
// jobs and is returned with its attribution; with KeepGoing the sweep
// degrades gracefully instead, recording every ultimately-failed cell
// (with its attempt history) in Result.Failed while the rest of the
// grid completes.
func (s Sweep) Run() (*Result, error) {
	exec := s.executor()
	figs := allFigures()
	res := &Result{
		Sweep:  s,
		Runs:   make(map[CellKey][]*metrics.RunMetrics),
		aggs:   make(map[CellKey]map[string]*stats.Welford),
		okReps: make(map[CellKey]int),
		failed: make(map[CellKey]int),
	}
	recs := make(map[CellKey][]runRecord)
	record := func(key CellKey, m *metrics.RunMetrics) {
		res.okReps[key]++
		if !s.DiscardRuns {
			// Retained runs serve the renderers directly; distilling would
			// be dead weight.
			res.Runs[key] = append(res.Runs[key], m)
			return
		}
		rec := runRecord{seed: m.Seed, vals: make([]float64, len(figs))}
		for i := range figs {
			rec.vals[i] = figs[i].Metric(m)
		}
		recs[key] = append(recs[key], rec)
	}

	// Enumerate the grid, serving cache hits inline and collecting the
	// cells that actually need simulating.
	var jobs []job
	for _, cj := range s.Jobs() {
		key, cfg := cj.Key, cj.Config
		if s.Cache != nil {
			if m, ok := s.Cache.Get(cfg); ok {
				res.CacheHits++
				record(key, m)
				exec.journalAttempt(job{key: key, cfg: cfg}, 0, "cache-hit", "", m.EventsRun, 0)
				if s.OnRun != nil {
					s.OnRun(m)
				}
				continue
			}
			res.CacheMisses++
		}
		jobs = append(jobs, job{key: key, cfg: cfg})
	}

	workers := s.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		mu       sync.Mutex
		firstErr error
	)
	done := make(chan struct{})
	var abortOnce sync.Once
	abort := func() { abortOnce.Do(func() { close(done) }) }
	jobCh := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reusable simulation context per worker: consecutive runs
			// reset the scheduler/channel/collector instead of reallocating
			// them (bit-identical results; see scenario.Context). runCell
			// replaces it with a fresh one if a panic poisons it.
			ctx := scenario.NewContext()
			for j := range jobCh {
				select {
				case <-done:
					continue // sweep aborted: drain without simulating
				default:
				}
				m, attempts, err := exec.runCell(&ctx, j)
				if err != nil {
					if s.KeepGoing {
						mu.Lock()
						res.Failed = append(res.Failed, FailedCell{
							Key: j.key, Seed: j.cfg.Seed, Attempts: attempts, Err: err,
						})
						mu.Unlock()
						continue
					}
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					abort()
					continue
				}
				if s.Cache != nil {
					if perr := s.Cache.Put(j.cfg, m); perr != nil {
						mu.Lock()
						res.CachePutErrs++
						if res.CacheFirstPutErr == nil {
							res.CacheFirstPutErr = perr
						}
						mu.Unlock()
					}
				}
				mu.Lock()
				record(j.key, m)
				mu.Unlock()
				if s.OnRun != nil {
					s.OnRun(m)
				}
			}
		}()
	}
	// Feed until done: an abort stops the feeder, so outstanding jobs are
	// cancelled instead of the grid silently running to completion.
feed:
	for _, j := range jobs {
		select {
		case jobCh <- j:
		case <-done:
			break feed
		}
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// Deterministic ordering regardless of worker completion order: runs
	// sorted by seed, aggregates folded in seed order, failures sorted by
	// cell then seed.
	sort.Slice(res.Failed, func(i, j int) bool { return lessFailed(res.Failed[i], res.Failed[j]) })
	for _, f := range res.Failed {
		res.failed[f.Key]++
	}
	for _, runs := range res.Runs {
		sort.Slice(runs, func(i, j int) bool { return runs[i].Seed < runs[j].Seed })
	}
	for key, rs := range recs {
		sort.Slice(rs, func(i, j int) bool { return rs[i].seed < rs[j].seed })
		agg := make(map[string]*stats.Welford, len(figs))
		for i := range figs {
			w := &stats.Welford{}
			for _, rec := range rs {
				w.Add(rec.vals[i])
			}
			agg[figs[i].ID] = w
		}
		res.aggs[key] = agg
	}
	return res, nil
}

func lessFailed(a, b FailedCell) bool {
	if a.Key.Protocol != b.Key.Protocol {
		return a.Key.Protocol < b.Key.Protocol
	}
	if a.Key.Speed != b.Key.Speed {
		return a.Key.Speed < b.Key.Speed
	}
	if a.Key.Adversary != b.Key.Adversary {
		return a.Key.Adversary < b.Key.Adversary
	}
	if a.Key.Countermeasure != b.Key.Countermeasure {
		return a.Key.Countermeasure < b.Key.Countermeasure
	}
	return a.Seed < b.Seed
}

// FailedReps reports how many repetitions of a cell ultimately failed
// (0 for a clean cell).
func (r *Result) FailedReps(key CellKey) int { return r.failed[key] }

// cellAllFailed reports a cell with failures and no surviving runs — the
// renderers mark it instead of printing a misleading zero.
func (r *Result) cellAllFailed(key CellKey) bool {
	return r.failed[key] > 0 && r.okReps[key] == 0
}

// FailedSummary renders the ultimately-failed cells as an aligned table
// (cell, seed, attempts, final error), or "" when nothing failed — the
// post-mortem view cmd/experiments prints before exiting non-zero.
func (r *Result) FailedSummary() string {
	if len(r.Failed) == 0 {
		return ""
	}
	var b strings.Builder
	total := 0
	for _, n := range r.okReps {
		total += n
	}
	fmt.Fprintf(&b, "FAILED CELLS — %d of %d runs failed every attempt\n",
		len(r.Failed), total+len(r.Failed))
	fmt.Fprintf(&b, "%-10s %-8s %-18s %-16s %-6s %-9s %s\n",
		"protocol", "speed", "adversary", "countermeasure", "seed", "attempts", "final error")
	for _, f := range r.Failed {
		fmt.Fprintf(&b, "%-10s %-8g %-18s %-16s %-6d %-9d %s\n",
			f.Key.Protocol, f.Key.Speed, advOrBase(f.Key.Adversary), cmOrBase(f.Key.Countermeasure),
			f.Seed, len(f.Attempts), f.Err)
	}
	return b.String()
}
