package experiment

// Regression tests for the engine's observability contracts: the journal
// surfaces marshal failures through Err() (first-write-error retention),
// watchdog-killed attempts journal how far the run got, and Jobs()
// enumerates exactly the grid Run dispatches.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"mtsim/internal/runcache"
	"mtsim/internal/scenario"
)

// TestJournalErrSurfacesMarshalFailure: a record json.Marshal rejects
// (NaN speed is the realistic producer) must set the journal's first
// write error instead of vanishing silently.
func TestJournalErrSurfacesMarshalFailure(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Record(AttemptRecord{Protocol: "MTS", Speed: math.NaN(), Outcome: "ok"})
	if err := j.Err(); err == nil {
		t.Fatal("Journal.Err() is nil after a failed marshal — the first-write-error contract is broken")
	} else if !strings.Contains(err.Error(), "marshal") {
		t.Fatalf("journal error does not attribute the marshal failure: %v", err)
	}
	if j.Records() != 0 || buf.Len() != 0 {
		t.Fatalf("failed marshal still wrote %d records (%d bytes)", j.Records(), buf.Len())
	}
	// The FIRST error is retained: a later, different failure must not
	// overwrite it.
	first := j.Err()
	j.Record(AttemptRecord{Speed: math.Inf(1)})
	if j.Err() != first {
		t.Fatalf("first write error not retained: %v replaced %v", j.Err(), first)
	}
	// And a healthy record afterwards still appends (best-effort logging).
	j.Record(AttemptRecord{Protocol: "MTS", Speed: 10, Outcome: "ok"})
	if j.Records() != 1 {
		t.Fatalf("healthy record after a marshal failure not appended: %d records", j.Records())
	}
}

// TestWatchdogKillJournalsEventCount: an attempt the watchdog killed
// must journal the executed event count carried by scenario.AbortError,
// not a flat zero — livelock post-mortems need to see how far runs got.
func TestWatchdogKillJournalsEventCount(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickBase()
	cfg.Protocol = "MTS"
	cfg.Seed = 1
	// quickBase runs ~22 events at this seed; a 10-event budget reliably
	// trips mid-run (matching the chaos suite's squeezed budgets).
	const budget = 10
	exec := Executor{
		Watchdog: Watchdog{MaxEvents: budget},
		Journal:  NewJournal(&buf),
	}
	ctx := scenario.NewContext()
	_, attempts, err := exec.RunCell(&ctx, CellKey{Protocol: "MTS", Speed: cfg.MaxSpeed}, cfg)
	if err == nil {
		t.Fatalf("a %d-event budget did not kill the run", budget)
	}
	if len(attempts) != 1 || attempts[0].Kind != KindTimeout {
		t.Fatalf("attempts = %+v, want one KindTimeout", attempts)
	}
	sc := bufio.NewScanner(&buf)
	var recs []AttemptRecord
	for sc.Scan() {
		var r AttemptRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("journal line does not parse: %v", err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 1 {
		t.Fatalf("journal holds %d records, want 1", len(recs))
	}
	if recs[0].Outcome != KindTimeout {
		t.Fatalf("journalled outcome %q, want %q", recs[0].Outcome, KindTimeout)
	}
	if recs[0].Events == 0 {
		t.Fatal("watchdog-killed attempt journalled Events: 0 — AbortError.Events was dropped")
	}
	if recs[0].Events != budget {
		t.Fatalf("journalled %d events, want the tripped budget %d", recs[0].Events, budget)
	}
}

// TestJobsMatchesRunDispatch: Jobs() must enumerate exactly the grid Run
// executes — same cells, same order, same seeds — and every job's config
// must survive a JSON round trip with its content address unchanged
// (the property that lets a coordinator lease cells across processes).
func TestJobsMatchesRunDispatch(t *testing.T) {
	s := Sweep{
		Base:      quickBase(),
		Protocols: []string{"AODV", "MTS"},
		Speeds:    []float64{2, 10},
		Reps:      2,
		SeedBase:  5,
	}
	jobs := s.Jobs()
	want := len(s.Protocols) * len(s.Speeds) * s.Reps
	if len(jobs) != want {
		t.Fatalf("Jobs() enumerated %d cells, want %d", len(jobs), want)
	}
	seen := map[CellKey]int{}
	for _, cj := range jobs {
		seen[cj.Key]++
		if cj.Config.Protocol != cj.Key.Protocol || cj.Config.MaxSpeed != cj.Key.Speed {
			t.Fatalf("job key %+v does not match its config (%s @ %g)",
				cj.Key, cj.Config.Protocol, cj.Config.MaxSpeed)
		}
		if cj.Config.Seed < s.SeedBase || cj.Config.Seed >= s.SeedBase+int64(s.Reps) {
			t.Fatalf("job seed %d outside [%d, %d)", cj.Config.Seed, s.SeedBase, s.SeedBase+int64(s.Reps))
		}
		k1, err := runcache.Key(cj.Config)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(cj)
		if err != nil {
			t.Fatal(err)
		}
		var back CellJob
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		k2, err := runcache.Key(back.Config)
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Fatalf("cell %+v: content address drifted across JSON round trip", cj.Key)
		}
	}
	for key, n := range seen {
		if n != s.Reps {
			t.Fatalf("cell %+v enumerated %d times, want %d reps", key, n, s.Reps)
		}
	}
	// A sweep whose cache is prefilled from Jobs() simulates nothing:
	// Run dispatches exactly this enumeration.
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Cache = store
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s2 := s
	res, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != 0 || res.CacheHits != len(jobs) {
		t.Fatalf("warm rerun over Jobs()-filled cache: %d hits %d misses, want %d/0",
			res.CacheHits, res.CacheMisses, len(jobs))
	}
}
