package experiment

import (
	"encoding/json"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"mtsim/internal/adversary"
	"mtsim/internal/metrics"
	"mtsim/internal/packet"
	"mtsim/internal/runcache"
)

func cachedSweep(t *testing.T, dir string) Sweep {
	t.Helper()
	store, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return Sweep{
		Base:      quickBase(),
		Protocols: []string{"AODV", "MTS"},
		Speeds:    []float64{2, 10},
		Reps:      2,
		SeedBase:  1,
		Cache:     store,
	}
}

// TestSweepWarmCacheRunsNothing is the headline cache guarantee: the
// second identical sweep simulates zero cells, and its Result — every
// retained run, every rendered table — is byte-identical to the cold one.
func TestSweepWarmCacheRunsNothing(t *testing.T) {
	dir := t.TempDir()
	s := cachedSweep(t, dir)
	cold, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := len(s.Protocols) * len(s.Speeds) * s.Reps
	if cold.CacheHits != 0 || cold.CacheMisses != total {
		t.Fatalf("cold run: hits=%d misses=%d, want 0/%d", cold.CacheHits, cold.CacheMisses, total)
	}
	if cold.CachePutErrs != 0 {
		t.Fatalf("cold run failed %d cache writes", cold.CachePutErrs)
	}

	s2 := cachedSweep(t, dir)
	var simulated int64
	s2.OnRun = func(*metrics.RunMetrics) { atomic.AddInt64(&simulated, 1) }
	warm, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != total || warm.CacheMisses != 0 {
		t.Fatalf("warm run: hits=%d misses=%d, want %d/0", warm.CacheHits, warm.CacheMisses, total)
	}
	// OnRun still fires for every cell (progress contract), just without
	// simulating.
	if simulated != int64(total) {
		t.Fatalf("OnRun fired %d times, want %d", simulated, total)
	}

	for key, runs := range cold.Runs {
		wruns := warm.Runs[key]
		if len(wruns) != len(runs) {
			t.Fatalf("cell %v: %d cold vs %d warm runs", key, len(runs), len(wruns))
		}
		for i := range runs {
			want, _ := json.Marshal(runs[i])
			got, _ := json.Marshal(wruns[i])
			if string(want) != string(got) {
				t.Fatalf("cell %v rep %d: cached metrics differ\ncold: %s\nwarm: %s",
					key, i, want, got)
			}
		}
	}
	for _, fig := range allFigures() {
		if cold.Table(fig) != warm.Table(fig) {
			t.Fatalf("%s: warm table differs\ncold:\n%s\nwarm:\n%s",
				fig.ID, cold.Table(fig), warm.Table(fig))
		}
		if cold.CSV(fig) != warm.CSV(fig) {
			t.Fatalf("%s: warm CSV differs", fig.ID)
		}
	}
}

// TestSweepResumesFromPartialCache models an interrupted sweep: a smaller
// sweep fills part of the grid, then the full sweep only simulates the
// remainder (the unit of checkpointing is the completed run).
func TestSweepResumesFromPartialCache(t *testing.T) {
	dir := t.TempDir()
	partial := cachedSweep(t, dir)
	partial.Speeds = []float64{2} // "killed" after the first speed column
	if _, err := partial.Run(); err != nil {
		t.Fatal(err)
	}

	full := cachedSweep(t, dir)
	res, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	done := len(full.Protocols) * 1 * full.Reps
	total := len(full.Protocols) * len(full.Speeds) * full.Reps
	if res.CacheHits != done || res.CacheMisses != total-done {
		t.Fatalf("resume: hits=%d misses=%d, want %d/%d", res.CacheHits, res.CacheMisses, done, total-done)
	}
	// And the resumed result matches a cache-less run exactly.
	plain := cachedSweep(t, t.TempDir())
	plain.Cache = nil
	want, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	for key, runs := range want.Runs {
		for i := range runs {
			w, _ := json.Marshal(runs[i])
			g, _ := json.Marshal(res.Runs[key][i])
			if string(w) != string(g) {
				t.Fatalf("cell %v rep %d: resumed sweep differs from plain sweep", key, i)
			}
		}
	}
}

// TestSweepCancelsOnFirstError: a failing cell must cancel the rest of the
// grid (not silently run it) and surface its cell attribution.
func TestSweepCancelsOnFirstError(t *testing.T) {
	s := Sweep{
		Base:        quickBase(),
		Protocols:   []string{"BOGUS", "MTS"}, // the bad protocol fails first
		Speeds:      []float64{2, 5, 10, 15, 20},
		Reps:        4,
		SeedBase:    1,
		Parallelism: 2,
	}
	var ran int64
	s.OnRun = func(*metrics.RunMetrics) { atomic.AddInt64(&ran, 1) }
	_, err := s.Run()
	if err == nil {
		t.Fatal("sweep with a failing protocol reported success")
	}
	for _, want := range []string{"BOGUS", "speed=2", "seed="} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error lost cell attribution (%q missing): %v", want, err)
		}
	}
	total := int64(len(s.Protocols) * len(s.Speeds) * s.Reps)
	// All 40 cells would have run under the old drain-everything behaviour;
	// with cancellation at most the in-flight window completes.
	if ran > 4 {
		t.Fatalf("%d of %d cells ran after the first error", ran, total)
	}
}

// TestDiscardRunsKeepsTables: with DiscardRuns the engine retains no
// RunMetrics, yet every figure table/CSV renders identically to the
// retained-runs sweep (same values, same fold order).
func TestDiscardRunsKeepsTables(t *testing.T) {
	mk := func(discard bool) *Result {
		s := Sweep{
			Base:      quickBase(),
			Protocols: []string{"AODV", "MTS"},
			Speeds:    []float64{2, 10},
			Reps:      3,
			SeedBase:  1,
			Adversaries: []adversary.Spec{
				{Model: adversary.ModelEavesdropper},
				{Model: adversary.ModelCoalition, K: 2},
			},
			DiscardRuns: discard,
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	kept := mk(false)
	lean := mk(true)
	if len(lean.Runs) != 0 {
		t.Fatalf("DiscardRuns retained %d cells of RunMetrics", len(lean.Runs))
	}
	if len(kept.Runs) == 0 {
		t.Fatal("control sweep retained nothing")
	}
	for _, fig := range allFigures() {
		if kept.Table(fig) != lean.Table(fig) {
			t.Fatalf("%s: DiscardRuns table differs\nkept:\n%s\nlean:\n%s",
				fig.ID, kept.Table(fig), lean.Table(fig))
		}
		if kept.AdversaryCSV(fig, 10) != lean.AdversaryCSV(fig, 10) {
			t.Fatalf("%s: DiscardRuns adversary CSV differs", fig.ID)
		}
	}
	// The aggregates agree with a direct computation over retained runs.
	key := CellKey{Protocol: "MTS", Speed: 10, Adversary: "eavesdropper×1"}
	fig, _ := FigureByID("fig9")
	want := kept.Mean(key, fig.Metric)
	if got := lean.FigMean(key, fig); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("FigMean=%v, runs-based mean=%v", got, want)
	}
}

// TestDefaultAdversaryMatchesAxisLabels is the label-drift regression: the
// label figure tables aggregate over must be exactly advAxis's first
// label, including for axes whose entries have colliding canonical labels,
// so Table/Series can never address an empty phantom cell.
func TestDefaultAdversaryMatchesAxisLabels(t *testing.T) {
	cases := []Sweep{
		{}, // plain paper sweep: blank label
		{Adversaries: []adversary.Spec{{Model: adversary.ModelCoalition, K: 2}}},
		{Adversaries: []adversary.Spec{ // colliding canonical labels
			{Model: adversary.ModelCoalition, K: 2},
			{Model: adversary.ModelCoalition, Nodes: []packet.NodeID{1, 2}},
		}},
	}
	for i, s := range cases {
		r := &Result{Sweep: s}
		_, labels := s.advAxis()
		if got := r.defaultAdversary(); got != labels[0] {
			t.Fatalf("case %d: defaultAdversary %q, axis label %q", i, got, labels[0])
		}
	}
}

// TestSeriesAggregatesARealCell pins Series/Table to cells the sweep
// actually produced when the axis disambiguates colliding labels.
func TestSeriesAggregatesARealCell(t *testing.T) {
	s := Sweep{
		Base:      quickBase(),
		Protocols: []string{"MTS"},
		Speeds:    []float64{10},
		Reps:      1,
		SeedBase:  1,
		Adversaries: []adversary.Spec{
			{Model: adversary.ModelCoalition, K: 2},
			{Model: adversary.ModelCoalition, Nodes: []packet.NodeID{3, 4}},
		},
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	series := res.Series("MTS", func(m *metrics.RunMetrics) float64 { return float64(m.AdversaryK) })
	if len(series) != 1 || series[0] != 2 {
		t.Fatalf("series aggregated a phantom cell: %v", series)
	}
	fig, _ := FigureByID("fig9")
	if res.FigMean(CellKey{Protocol: "MTS", Speed: 10, Adversary: res.defaultAdversary()}, fig) == 0 &&
		res.Mean(CellKey{Protocol: "MTS", Speed: 10, Adversary: res.defaultAdversary()}, fig.Metric) == 0 {
		t.Log("note: zero throughput cell (acceptable for tiny sweeps), label addressing still verified above")
	}
}

// TestCustomFigureMetricHonoured: a caller-customised Figure that reuses a
// built-in ID must be rendered from its own Metric on a retained-runs
// sweep, not silently served the built-in metric's aggregate.
func TestCustomFigureMetricHonoured(t *testing.T) {
	s := Sweep{
		Base:      quickBase(),
		Protocols: []string{"MTS"},
		Speeds:    []float64{10},
		Reps:      2,
		SeedBase:  1,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	fig, _ := FigureByID("fig5")
	fig.Metric = func(*metrics.RunMetrics) float64 { return 1234.5 }
	key := CellKey{Protocol: "MTS", Speed: 10}
	if got := res.FigMean(key, fig); got != 1234.5 {
		t.Fatalf("custom Figure metric ignored: got %v, want 1234.5", got)
	}
}
