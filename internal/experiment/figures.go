package experiment

import (
	"fmt"
	"strings"

	"mtsim/internal/metrics"
	"mtsim/internal/scenario"
)

// Figure describes one of the paper's evaluation figures: which metric it
// plots and what qualitative shape the paper reports.
type Figure struct {
	ID     string
	Title  string
	Unit   string
	Metric func(*metrics.RunMetrics) float64
	// Expect documents the paper's qualitative result for EXPERIMENTS.md.
	Expect string
}

// PaperFigures returns the definitions of Figs. 5–11 in paper order.
func PaperFigures() []Figure {
	return []Figure{
		{
			ID:     "fig5",
			Title:  "Number of participating nodes",
			Unit:   "nodes",
			Metric: func(m *metrics.RunMetrics) float64 { return float64(m.Participating) },
			Expect: "MTS highest at every speed (source keeps switching across disjoint paths); DSR and AODV lower.",
		},
		{
			ID:     "fig6",
			Title:  "Standard deviation of number of relayed packets (normalized, Eq. 4)",
			Unit:   "σ of γ",
			Metric: func(m *metrics.RunMetrics) float64 { return m.RelayStdDev },
			Expect: "MTS lowest: relaying is spread evenly, no single node dominates.",
		},
		{
			ID:     "fig7",
			Title:  "Highest interception ratio (worst-case eavesdropper, max β / Pr)",
			Unit:   "ratio",
			Metric: func(m *metrics.RunMetrics) float64 { return m.HighestInterception },
			Expect: "MTS lowest: the most-used relay sees the smallest share of traffic.",
		},
		{
			ID:     "fig8",
			Title:  "Average end-to-end delay",
			Unit:   "s",
			Metric: func(m *metrics.RunMetrics) float64 { return m.AvgDelaySec },
			Expect: "MTS lowest (always rides the currently fastest path); DSR < AODV at low speed (cache hits).",
		},
		{
			ID:     "fig9",
			Title:  "Average TCP throughput",
			Unit:   "pkt/s",
			Metric: func(m *metrics.RunMetrics) float64 { return m.ThroughputPps },
			Expect: "MTS highest; DSR degrades as speed grows (stale caches idle the connection).",
		},
		{
			ID:     "fig10",
			Title:  "Average rate of successful delivery",
			Unit:   "fraction",
			Metric: func(m *metrics.RunMetrics) float64 { return m.DeliveryRate },
			Expect: "DSR drops sharply with speed; AODV and MTS stay roughly flat.",
		},
		{
			ID:     "fig11",
			Title:  "Control overhead (routing packet transmissions)",
			Unit:   "packets",
			Metric: func(m *metrics.RunMetrics) float64 { return float64(m.ControlPkts) },
			Expect: "MTS highest (periodic checking packets); DSR lowest (cache idleness).",
		},
	}
}

// AdversaryFigures returns the extension figures for the adversary sweep
// (internal/adversary): how interception and delivery respond as the
// threat model strengthens from the paper's lone eavesdropper to
// coalitions, mobile taps and dropping relays.
func AdversaryFigures() []Figure {
	return []Figure{
		{
			ID:     "advRi",
			Title:  "Coalition interception ratio (union Pe / Pr, Eq. 1 generalized)",
			Unit:   "ratio",
			Metric: func(m *metrics.RunMetrics) float64 { return m.InterceptionRatio },
			Expect: "Grows with coalition size k for every protocol; MTS lowest at each k (paths disjoint, no tap sees much).",
		},
		{
			ID:     "advPe",
			Title:  "Distinct data packets intercepted (union Pe)",
			Unit:   "packets",
			Metric: func(m *metrics.RunMetrics) float64 { return float64(m.CoalitionDistinct) },
			Expect: "Union grows sublinearly in k: colluding taps overhear overlapping traffic.",
		},
		{
			ID:     "advDrop",
			Title:  "Data packets dropped by adversarial relays",
			Unit:   "packets",
			Metric: func(m *metrics.RunMetrics) float64 { return float64(m.AdversaryDropped) },
			Expect: "Zero for passive models; blackholes drop more than grayholes at equal k.",
		},
		{
			ID:     "advDeliv",
			Title:  "Delivery rate under adversary",
			Unit:   "fraction",
			Metric: func(m *metrics.RunMetrics) float64 { return m.DeliveryRate },
			Expect: "Dropping relays depress delivery; multipath protocols route around them faster.",
		},
	}
}

// CountermeasureFigures returns the defender-side extension figures
// (internal/countermeasure): how much of the intercepted stream remains
// reassemblable once data shuffling fragments it, and what the defences
// cost. Together with advRi/advDeliv they form the defender-vs-attacker
// grid of experiments -only countermeasure.
func CountermeasureFigures() []Figure {
	return []Figure{
		{
			ID:     "cmStreamRun",
			Title:  "Longest in-order intercepted streak",
			Unit:   "packets",
			Metric: func(m *metrics.RunMetrics) float64 { return float64(m.InterceptedStreamRun) },
			Expect: "Shuffling collapses streaks toward the block size's reciprocal; undefended TCP streams for hundreds of packets.",
		},
		{
			ID:     "cmStreamBytes",
			Title:  "Intercepted contiguous bytes as heard (in-order streaks ≥ 2 × payload)",
			Unit:   "bytes",
			Metric: func(m *metrics.RunMetrics) float64 { return float64(m.InterceptedStreamBytes) },
			Expect: "Shuffling lowest at equal delivery rate — the committed defender-vs-attacker claim.",
		},
		{
			ID:     "cmStreamRatio",
			Title:  "Stream contiguity ratio (in-order intercepted packets / Pe)",
			Unit:   "fraction",
			Metric: func(m *metrics.RunMetrics) float64 { return m.InterceptedStreamRatio },
			Expect: "Near 1 undefended (TCP emits in order); drops sharply under shuffle.",
		},
		{
			ID:     "cmReasmRun",
			Title:  "Longest reassemblable run (set view, offline reordering allowed)",
			Unit:   "packets",
			Metric: func(m *metrics.RunMetrics) float64 { return float64(m.InterceptedLongestRun) },
			Expect: "Moves only where dispersal keeps whole segments out of the taps' radio range.",
		},
		{
			ID:     "cmShuffled",
			Title:  "Segments released in permuted order",
			Unit:   "packets",
			Metric: func(m *metrics.RunMetrics) float64 { return float64(m.ShuffledSegments) },
			Expect: "Zero for none/aware; tracks SegmentsSent for shuffle models.",
		},
	}
}

// FigureByID finds a figure definition, searching the paper's figures and
// the adversary/countermeasure extension figures.
func FigureByID(id string) (Figure, bool) {
	for _, f := range PaperFigures() {
		if f.ID == id {
			return f, true
		}
	}
	for _, f := range AdversaryFigures() {
		if f.ID == id {
			return f, true
		}
	}
	for _, f := range CountermeasureFigures() {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

// Table1 runs the paper's Table I demonstration: one DSR scenario, the
// per-participating-node relay counts, their normalization, and σ.
func Table1(base scenario.Config, seed int64) (string, error) {
	cfg := base
	cfg.Protocol = "DSR"
	cfg.Seed = seed
	m, err := scenario.RunOne(cfg)
	if err != nil {
		return "", err
	}
	return RenderTable1(m), nil
}

// RenderTable1 formats a run's relay table in the layout of Table I.
func RenderTable1(m *metrics.RunMetrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — Normalization of the received packets in the participating nodes (%s, maxspeed=%g m/s, seed=%d)\n",
		m.Protocol, m.MaxSpeed, m.Seed)
	fmt.Fprintf(&b, "%-8s%12s%12s\n", "Node ID", "β", "γ")
	for _, row := range m.RelayRows {
		fmt.Fprintf(&b, "%-8d%12d%11.5f%%\n", row.Node, row.Beta, row.Gamma*100)
	}
	fmt.Fprintf(&b, "%-8s%12d\n", "α", m.Alpha)
	fmt.Fprintf(&b, "%-8s%11.2f%%\n", "σ", m.RelayStdDev*100)
	return b.String()
}
