package experiment

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unicode/utf8"

	"mtsim/internal/metrics"
	"mtsim/internal/packet"
	"mtsim/internal/scenario"
)

// requireArenaClean fails the test unless the arena's books are closed:
// every packet and frame released exactly once, no ledger violations.
func requireArenaClean(t *testing.T, a *packet.Arena, who string) {
	t.Helper()
	st := a.Stats()
	if live := a.LivePackets(); live != 0 {
		t.Errorf("%s: %d live packets after sweep (stats %+v)", who, live, st)
	}
	if live := a.LiveFrames(); live != 0 {
		t.Errorf("%s: %d live frames after sweep", who, live)
	}
	if st.DoubleReleases != 0 || st.ForeignReleases != 0 || st.PoisonTrips != 0 {
		t.Errorf("%s: dirty arena ledger: %+v", who, st)
	}
}

// TestRetryPolicyDelay pins the deterministic capped-exponential backoff
// schedule.
func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{Backoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}
	for failures, want := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		4: 400 * time.Millisecond, // capped
	} {
		if got := p.Delay(failures); got != want {
			t.Errorf("Delay(%d) = %v, want %v", failures, got, want)
		}
	}
	if got := (RetryPolicy{}).Delay(3); got != 0 {
		t.Errorf("zero policy Delay = %v, want 0", got)
	}
	if got := (RetryPolicy{}).attempts(); got != 1 {
		t.Errorf("zero policy attempts = %d, want 1", got)
	}
	if got := (RetryPolicy{MaxAttempts: 4}).attempts(); got != 4 {
		t.Errorf("attempts = %d, want 4", got)
	}
}

// TestSweepCancelRetiresWorkerState covers the first-error cancellation
// path end to end: an injected failing cell cancels outstanding jobs,
// the returned error names the cell, and every worker context the sweep
// ever used retired its packets cleanly (arenas armed in Check mode via
// the Runner seam).
func TestSweepCancelRetiresWorkerState(t *testing.T) {
	var (
		mu     sync.Mutex
		arenas []*packet.Arena
		seen   = map[*scenario.Context]bool{}
	)
	s := Sweep{
		Base:        quickBase(),
		Protocols:   []string{"AODV", "MTS"},
		Speeds:      []float64{2, 5, 10, 15, 20},
		Reps:        4,
		SeedBase:    1,
		Parallelism: 2,
		Runner: func(ctx *scenario.Context, cfg scenario.Config, w Watchdog) (*metrics.RunMetrics, error) {
			mu.Lock()
			if !seen[ctx] {
				seen[ctx] = true
				a := ctx.Arena()
				a.Check = true
				arenas = append(arenas, a)
			}
			mu.Unlock()
			if cfg.Protocol == "AODV" && cfg.MaxSpeed == 5 && cfg.Seed == 2 {
				return nil, errors.New("injected cell failure")
			}
			return DefaultRunner(ctx, cfg, w)
		},
	}
	var ran int64
	s.OnRun = func(*metrics.RunMetrics) { atomic.AddInt64(&ran, 1) }
	_, err := s.Run()
	if err == nil {
		t.Fatal("sweep with an injected failing cell reported success")
	}
	for _, want := range []string{"AODV", "speed=5", "seed=2", "injected cell failure"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error lost cell attribution (%q missing): %v", want, err)
		}
	}
	total := int64(len(s.Protocols) * len(s.Speeds) * s.Reps)
	if ran >= total {
		t.Fatalf("all %d cells ran despite cancellation", total)
	}
	if len(arenas) == 0 {
		t.Fatal("runner seam never saw a worker context")
	}
	for i, a := range arenas {
		requireArenaClean(t, a, fmt.Sprintf("worker %d", i))
	}
}

// TestRetryRecoversPanickingCell: a cell that panics on its first two
// attempts and succeeds on the third yields a clean sweep whose rendered
// results are byte-identical to a never-faulted sweep — panic isolation
// plus deterministic retry costs zero correctness. The backoff schedule
// and the replaced worker context are asserted along the way.
func TestRetryRecoversPanickingCell(t *testing.T) {
	mk := func() Sweep {
		return Sweep{
			Base:      quickBase(),
			Protocols: []string{"AODV", "MTS"},
			Speeds:    []float64{2, 10},
			Reps:      2,
			SeedBase:  1,
		}
	}
	clean, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}

	var (
		mu       sync.Mutex
		panics   int
		delays   []time.Duration
		contexts = map[*scenario.Context]bool{}
	)
	s := mk()
	s.Retry = RetryPolicy{
		MaxAttempts: 3,
		Backoff:     time.Millisecond,
		Sleep: func(d time.Duration) {
			mu.Lock()
			delays = append(delays, d)
			mu.Unlock()
		},
	}
	var journal bytes.Buffer
	s.Journal = NewJournal(&journal)
	s.Runner = func(ctx *scenario.Context, cfg scenario.Config, w Watchdog) (*metrics.RunMetrics, error) {
		mu.Lock()
		contexts[ctx] = true
		inject := cfg.Protocol == "MTS" && cfg.MaxSpeed == 10 && cfg.Seed == 1 && panics < 2
		if inject {
			panics++
		}
		mu.Unlock()
		if inject {
			panic("injected mid-run panic")
		}
		return DefaultRunner(ctx, cfg, w)
	}
	faulted, err := s.Run()
	if err != nil {
		t.Fatalf("retries did not recover the panicking cell: %v", err)
	}
	if panics != 2 {
		t.Fatalf("injected %d panics, want 2", panics)
	}
	if want := []time.Duration{time.Millisecond, 2 * time.Millisecond}; len(delays) != 2 || delays[0] != want[0] || delays[1] != want[1] {
		t.Fatalf("backoff delays %v, want %v", delays, want)
	}
	// A panic poisons the worker's reusable context, so the engine must
	// have handed the runner a replacement at least once.
	if len(contexts) < 2 {
		t.Fatalf("engine reused a context across a panic (saw %d distinct contexts)", len(contexts))
	}
	if len(faulted.Failed) != 0 {
		t.Fatalf("recovered sweep still recorded failures: %v", faulted.Failed)
	}
	for _, fig := range allFigures() {
		if clean.Table(fig) != faulted.Table(fig) {
			t.Fatalf("%s: sweep with recovered panics differs from clean sweep\nclean:\n%s\nfaulted:\n%s",
				fig.ID, clean.Table(fig), faulted.Table(fig))
		}
		if clean.CSV(fig) != faulted.CSV(fig) {
			t.Fatalf("%s: CSV differs after recovered panics", fig.ID)
		}
	}
	// The journal holds the flake history: two panic attempts then an ok.
	var kinds []string
	for _, line := range strings.Split(strings.TrimSpace(journal.String()), "\n") {
		var rec AttemptRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		if rec.Protocol == "MTS" && rec.Speed == 10 && rec.Seed == 1 {
			kinds = append(kinds, fmt.Sprintf("%d:%s", rec.Attempt, rec.Outcome))
		}
	}
	if want := []string{"1:panic", "2:panic", "3:ok"}; strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("journal attempt history %v, want %v", kinds, want)
	}
	if s.Journal.Err() != nil {
		t.Fatalf("journal write error: %v", s.Journal.Err())
	}
}

// TestKeepGoingRecordsFailures: with KeepGoing a sweep with failing
// cells completes the healthy grid, records each ultimately-failed run
// with its attempt history, marks degraded cells in the renderers, and
// summarises the damage.
func TestKeepGoingRecordsFailures(t *testing.T) {
	s := Sweep{
		Base:      quickBase(),
		Protocols: []string{"AODV", "MTS"},
		Speeds:    []float64{2, 10},
		Reps:      2,
		SeedBase:  1,
		KeepGoing: true,
		Runner: func(ctx *scenario.Context, cfg scenario.Config, w Watchdog) (*metrics.RunMetrics, error) {
			// Every rep of (AODV, 2) fails — an all-failed cell; one rep of
			// (MTS, 10) fails — a degraded cell.
			if cfg.Protocol == "AODV" && cfg.MaxSpeed == 2 {
				return nil, errors.New("injected total failure")
			}
			if cfg.Protocol == "MTS" && cfg.MaxSpeed == 10 && cfg.Seed == 1 {
				return nil, errors.New("injected partial failure")
			}
			return DefaultRunner(ctx, cfg, w)
		},
	}
	var ran int64
	s.OnRun = func(*metrics.RunMetrics) { atomic.AddInt64(&ran, 1) }
	res, err := s.Run()
	if err != nil {
		t.Fatalf("KeepGoing sweep returned an error: %v", err)
	}
	total := int64(len(s.Protocols) * len(s.Speeds) * s.Reps)
	if ran != total-3 {
		t.Fatalf("healthy cells run: %d, want %d", ran, total-3)
	}
	if len(res.Failed) != 3 {
		t.Fatalf("recorded %d failed runs, want 3: %+v", len(res.Failed), res.Failed)
	}
	// Sorted by cell then seed, each with its attempt history and a
	// cell-attributed error.
	f := res.Failed[0]
	if f.Key.Protocol != "AODV" || f.Key.Speed != 2 || f.Seed != 1 {
		t.Fatalf("failures not sorted by cell then seed: first is %+v", f)
	}
	if len(f.Attempts) != 1 || f.Attempts[0].Kind != KindError {
		t.Fatalf("attempt history %+v, want one %q attempt", f.Attempts, KindError)
	}
	if !strings.Contains(f.Err.Error(), "AODV speed=2") || !strings.Contains(f.Err.Error(), "injected total failure") {
		t.Fatalf("failed cell error lost attribution: %v", f.Err)
	}
	allFailedKey := CellKey{Protocol: "AODV", Speed: 2}
	degradedKey := CellKey{Protocol: "MTS", Speed: 10}
	if res.FailedReps(allFailedKey) != 2 || res.FailedReps(degradedKey) != 1 {
		t.Fatalf("FailedReps: all=%d degraded=%d, want 2/1",
			res.FailedReps(allFailedKey), res.FailedReps(degradedKey))
	}

	fig := allFigures()[0]
	table := res.Table(fig)
	if !strings.Contains(table, "FAILED") {
		t.Fatalf("table does not mark the all-failed cell:\n%s", table)
	}
	if !strings.Contains(table, "!") {
		t.Fatalf("table does not mark the degraded cell:\n%s", table)
	}
	// Every rendered row stays column-aligned despite the markers (rune
	// width — "±" is multi-byte).
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	for i := 2; i < len(lines); i++ {
		if got, want := utf8.RuneCountInString(lines[i]), utf8.RuneCountInString(lines[1]); got != want {
			t.Fatalf("row %d width %d != header width %d:\n%s", i, got, want, table)
		}
	}
	csv := res.CSV(fig)
	for _, line := range strings.Split(csv, "\n") {
		if strings.HasPrefix(line, "2,") {
			if !strings.HasPrefix(line, "2,,,") {
				t.Fatalf("all-failed cell not blanked in CSV row %q", line)
			}
		}
	}

	sum := res.FailedSummary()
	for _, want := range []string{"FAILED CELLS", "AODV", "MTS", "injected total failure", "seed"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("failed summary missing %q:\n%s", want, sum)
		}
	}
	clean := Sweep{Base: quickBase(), Protocols: []string{"MTS"}, Speeds: []float64{2}, Reps: 1, SeedBase: 1}
	cres, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cres.FailedSummary() != "" {
		t.Fatalf("clean sweep rendered a failure summary: %q", cres.FailedSummary())
	}
}

// TestWatchdogEventBudget: the sweep-level watchdog kills livelocked
// runs via the real mid-run abort path and records them as timeouts;
// retries re-kill deterministically, so the attempt history shows every
// try.
func TestWatchdogEventBudget(t *testing.T) {
	s := Sweep{
		Base:      quickBase(),
		Protocols: []string{"MTS"},
		Speeds:    []float64{10},
		Reps:      1,
		SeedBase:  1,
		KeepGoing: true,
		Watchdog:  Watchdog{MaxEvents: 10},
		Retry:     RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}},
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("KeepGoing watchdog sweep errored: %v", err)
	}
	if len(res.Failed) != 1 {
		t.Fatalf("recorded %d failures, want 1", len(res.Failed))
	}
	f := res.Failed[0]
	if len(f.Attempts) != 2 {
		t.Fatalf("watchdog kill retried %d times, want 2 attempts", len(f.Attempts))
	}
	for _, a := range f.Attempts {
		if a.Kind != KindTimeout {
			t.Fatalf("attempt kind %q, want %q (%+v)", a.Kind, KindTimeout, a)
		}
	}
	if !strings.Contains(f.Err.Error(), "event-budget") || !strings.Contains(f.Err.Error(), "after 2 attempts") {
		t.Fatalf("timeout error lost attribution: %v", f.Err)
	}
	var ae *scenario.AbortError
	if !errors.As(f.Err, &ae) {
		t.Fatalf("failed cell error does not unwrap to *scenario.AbortError: %v", f.Err)
	}
}

// erringCache is a Cache whose writes always fail — the sick-disk case
// the sweep must survive while still naming the first cause.
type erringCache struct{ calls int64 }

func (c *erringCache) Get(scenario.Config) (*metrics.RunMetrics, bool) { return nil, false }
func (c *erringCache) Put(scenario.Config, *metrics.RunMetrics) error {
	atomic.AddInt64(&c.calls, 1)
	return errors.New("write /bogus/cache/ab/deadbeef.json: read-only file system")
}

// TestCachePutErrSurfaced: a sweep over a cache that cannot persist
// still succeeds, counts every failed write, and retains the first
// error's path and cause for the summary (instead of only a count).
func TestCachePutErrSurfaced(t *testing.T) {
	cache := &erringCache{}
	s := Sweep{
		Base:      quickBase(),
		Protocols: []string{"MTS"},
		Speeds:    []float64{2, 10},
		Reps:      2,
		SeedBase:  1,
		Cache:     cache,
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("sweep failed for a sick cache: %v", err)
	}
	total := len(s.Protocols) * len(s.Speeds) * s.Reps
	if res.CachePutErrs != total {
		t.Fatalf("CachePutErrs = %d, want %d", res.CachePutErrs, total)
	}
	if res.CacheFirstPutErr == nil || !strings.Contains(res.CacheFirstPutErr.Error(), "/bogus/cache/ab/deadbeef.json") {
		t.Fatalf("first put error lost its path: %v", res.CacheFirstPutErr)
	}
	if res.CacheMisses != total {
		t.Fatalf("CacheMisses = %d, want %d", res.CacheMisses, total)
	}
}

// TestJournalRecordsCacheHits: warm-cache cells appear in the journal as
// attempt-0 cache hits, so the journal is a complete account of where
// every cell's metrics came from.
func TestJournalRecordsCacheHits(t *testing.T) {
	dir := t.TempDir()
	cold := cachedSweep(t, dir)
	if _, err := cold.Run(); err != nil {
		t.Fatal(err)
	}
	warm := cachedSweep(t, dir)
	var buf bytes.Buffer
	warm.Journal = NewJournal(&buf)
	if _, err := warm.Run(); err != nil {
		t.Fatal(err)
	}
	total := len(warm.Protocols) * len(warm.Speeds) * warm.Reps
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != total {
		t.Fatalf("journal has %d lines, want %d", len(lines), total)
	}
	for _, line := range lines {
		var rec AttemptRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		if rec.Outcome != "cache-hit" || rec.Attempt != 0 {
			t.Fatalf("warm-cache journal record %+v, want attempt-0 cache-hit", rec)
		}
		if rec.Protocol == "" || rec.Seed == 0 {
			t.Fatalf("journal record lost its cell: %+v", rec)
		}
	}
	if warm.Journal.Records() != total {
		t.Fatalf("Records() = %d, want %d", warm.Journal.Records(), total)
	}
}

// TestOpenJournalAppends: OpenJournal is append-mode, so consecutive
// sweeps over the same path accumulate one flake history.
func TestOpenJournalAppends(t *testing.T) {
	path := t.TempDir() + "/attempts.jsonl"
	for i := 0; i < 2; i++ {
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		j.Record(AttemptRecord{Protocol: "MTS", Seed: int64(i + 1), Attempt: 1, Outcome: "ok"})
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal has %d lines after two appends, want 2", len(lines))
	}
	var rec AttemptRecord
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Seed != 2 {
		t.Fatalf("second line seed %d, want 2", rec.Seed)
	}
}
