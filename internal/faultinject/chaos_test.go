package faultinject

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mtsim/internal/adversary"
	"mtsim/internal/countermeasure"
	"mtsim/internal/experiment"
	"mtsim/internal/runcache"
	"mtsim/internal/scenario"
	"mtsim/internal/sim"
)

func chaosBase() scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Nodes = 20
	cfg.Duration = 5 * sim.Second
	cfg.TCPStart = sim.Time(500 * sim.Millisecond)
	return cfg
}

func chaosSweep() experiment.Sweep {
	return experiment.Sweep{
		Base:      chaosBase(),
		Protocols: []string{"AODV", "MTS"},
		Speeds:    []float64{2, 10},
		Reps:      2,
		SeedBase:  1,
	}
}

// chaosJournal returns the journal the chaos suite writes its attempt
// history to: a file under $CHAOS_JOURNAL_DIR when the CI chaos lane
// sets it (uploaded as a build artifact), an in-memory buffer otherwise.
// The journal is append-mode, so repeated invocations (the chaos lane
// runs the suite plain and again under -race) accumulate one history;
// the read-back closure returns only the lines this invocation wrote.
func chaosJournal(t *testing.T, name string) (*experiment.Journal, func() string) {
	t.Helper()
	if dir := os.Getenv("CHAOS_JOURNAL_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		var start int64
		if fi, err := os.Stat(path); err == nil {
			start = fi.Size()
		}
		j, err := experiment.OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { j.Close() })
		return j, func() string {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			return string(data[start:])
		}
	}
	var buf bytes.Buffer
	return experiment.NewJournal(&buf), buf.String
}

// TestChaosSweepBitIdentical is the suite's headline property: a sweep
// under seeded faults at every seam — panicking cells, runs livelocked
// into the watchdog, erroring and torn cache writes — aggregates
// bit-identically to the fault-free sweep, because retries re-run
// deterministic cells and the cache degrades instead of lying. A second
// sweep over the same (now partially torn) cache then quarantines the
// corruption and still agrees.
func TestChaosSweepBitIdentical(t *testing.T) {
	clean, err := chaosSweep().Run()
	if err != nil {
		t.Fatal(err)
	}

	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	flaky := &FlakyCache{
		Store:  store,
		Faults: CacheFaults{Seed: 7, PutErrRate: 0.4, TearRate: 0.4, GetErrRate: 0.3},
	}
	// Seed 11 assigns this grid two panicking cells, two erroring cells,
	// two livelocked cells and leaves two healthy — every fault kind
	// exercised in one sweep.
	inj := New(Plan{
		Seed:            11,
		PanicRate:       0.3,
		ErrorRate:       0.3,
		SlowRate:        0.3,
		FailuresPerCell: 2,
	})
	s := chaosSweep()
	s.Cache = flaky
	s.Runner = inj.Runner(nil)
	s.KeepGoing = true
	s.Retry = experiment.RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond, Sleep: func(time.Duration) {}}
	journal, readJournal := chaosJournal(t, "chaos-attempts.jsonl")
	s.Journal = journal

	faulted, err := s.Run()
	if err != nil {
		t.Fatalf("chaos sweep errored despite retries: %v", err)
	}
	panics, errs, slows := inj.Counts()
	if panics == 0 || errs == 0 || slows == 0 {
		t.Fatalf("chaos plan missed a fault kind (%d panics, %d errors, %d slow runs) — re-pick the seed",
			panics, errs, slows)
	}
	t.Logf("injected faults: %d panics, %d errors, %d slow runs", panics, errs, slows)
	if len(faulted.Failed) != 0 {
		t.Fatalf("retries did not absorb every injected fault: %+v", faulted.Failed)
	}
	for _, fig := range experiment.PaperFigures() {
		if clean.Table(fig) != faulted.Table(fig) {
			t.Fatalf("%s: chaos sweep differs from fault-free sweep\nclean:\n%s\nchaos:\n%s",
				fig.ID, clean.Table(fig), faulted.Table(fig))
		}
		if clean.CSV(fig) != faulted.CSV(fig) {
			t.Fatalf("%s: chaos CSV differs", fig.ID)
		}
	}

	// The journal recorded every injected fault as a failed attempt.
	var injectedLines, okLines int
	for _, line := range strings.Split(strings.TrimSpace(readJournal()), "\n") {
		var rec experiment.AttemptRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		switch rec.Outcome {
		case "ok", "cache-hit":
			okLines++
		default:
			injectedLines++
		}
	}
	if injectedLines != panics+errs+slows {
		t.Fatalf("journal shows %d failed attempts, injector says %d", injectedLines, panics+errs+slows)
	}
	total := len(s.Protocols) * len(s.Speeds) * s.Reps
	if okLines != total {
		t.Fatalf("journal shows %d successful cells, want %d", okLines, total)
	}

	// Round two over the same store: torn entries are quarantined (real
	// corrupt bytes caught by runcache), erroring reads degrade, and the
	// recomputed sweep still agrees bit-for-bit.
	_, tears, _ := flaky.Counts()
	if tears == 0 {
		t.Fatal("no torn cache writes injected — raise TearRate or change the seed")
	}
	s2 := chaosSweep()
	s2.Cache = store // the bare store this time: every surviving entry is served
	warm, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if h := store.Health(); h.Quarantined != tears {
		t.Fatalf("quarantined %d entries, injected %d torn writes (health %+v)", h.Quarantined, tears, h)
	}
	for _, fig := range experiment.PaperFigures() {
		if clean.Table(fig) != warm.Table(fig) {
			t.Fatalf("%s: post-quarantine sweep differs from fault-free sweep", fig.ID)
		}
	}
}

// TestRetryBitIdentical is the per-cell version of the headline
// property: a cell that fails N times under injected faults and then
// succeeds yields RunMetrics byte-identical to a never-faulted run.
func TestRetryBitIdentical(t *testing.T) {
	cfg := chaosBase()
	cfg.Protocol = "MTS"
	cfg.MaxSpeed = 10
	cfg.Seed = 3
	want, err := scenario.RunOne(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, plan := range []Plan{
		{Seed: 1, ErrorRate: 1, FailuresPerCell: 2},
		{Seed: 1, PanicRate: 1, FailuresPerCell: 2},
		{Seed: 1, SlowRate: 1, FailuresPerCell: 2, SlowEvents: 8},
	} {
		inj := New(plan)
		s := experiment.Sweep{
			Base:      chaosBase(),
			Protocols: []string{"MTS"},
			Speeds:    []float64{10},
			Reps:      1,
			SeedBase:  3,
			Runner:    inj.Runner(nil),
			Retry:     experiment.RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}},
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("plan %+v: retries did not recover: %v", plan, err)
		}
		panics, errs, slows := inj.Counts()
		if panics+errs+slows != 2 {
			t.Fatalf("plan %+v: injected %d faults, want 2", plan, panics+errs+slows)
		}
		runs := res.Runs[experiment.CellKey{Protocol: "MTS", Speed: 10}]
		if len(runs) != 1 {
			t.Fatalf("plan %+v: %d runs retained, want 1", plan, len(runs))
		}
		w, _ := json.Marshal(want)
		g, _ := json.Marshal(runs[0])
		if string(w) != string(g) {
			t.Fatalf("plan %+v: metrics after %d failed attempts differ from never-faulted run\nwant: %s\ngot:  %s",
				plan, 2, w, g)
		}
	}
}

// TestChaosWithoutRetriesRecordsFailures: with a single attempt the same
// plan's faults become Result.Failed entries whose kinds match what was
// injected — the graceful-degradation path under chaos.
func TestChaosWithoutRetriesRecordsFailures(t *testing.T) {
	inj := New(Plan{Seed: 7, PanicRate: 0.3, ErrorRate: 0.3, SlowRate: 0.3})
	s := chaosSweep()
	s.Runner = inj.Runner(nil)
	s.KeepGoing = true
	res, err := s.Run()
	if err != nil {
		t.Fatalf("KeepGoing chaos sweep errored: %v", err)
	}
	panics, errs, slows := inj.Counts()
	if got := len(res.Failed); got != panics+errs+slows {
		t.Fatalf("%d failed cells recorded, injector faulted %d", got, panics+errs+slows)
	}
	var kinds = map[string]int{}
	for _, f := range res.Failed {
		if len(f.Attempts) != 1 {
			t.Fatalf("single-attempt sweep recorded %d attempts: %+v", len(f.Attempts), f)
		}
		kinds[f.Attempts[0].Kind]++
	}
	if kinds[experiment.KindPanic] != panics || kinds[experiment.KindError] != errs || kinds[experiment.KindTimeout] != slows {
		t.Fatalf("failure kinds %v, injected %d/%d/%d", kinds, panics, errs, slows)
	}
}

// TestFaultSelectionDeterministic: the same plan faults the same cells
// with the same kinds, run after run — chaos is reproducible by seed.
func TestFaultSelectionDeterministic(t *testing.T) {
	p := Plan{Seed: 42, PanicRate: 0.3, ErrorRate: 0.3, SlowRate: 0.3}
	var kinds []string
	for round := 0; round < 2; round++ {
		var got []string
		for seed := int64(1); seed <= 16; seed++ {
			cfg := chaosBase()
			cfg.Protocol = "MTS"
			cfg.MaxSpeed = 10
			cfg.Seed = seed
			got = append(got, p.faultKind(cfg))
		}
		if round == 0 {
			kinds = got
			continue
		}
		if strings.Join(got, ",") != strings.Join(kinds, ",") {
			t.Fatalf("fault selection drifted between rounds:\n%v\n%v", kinds, got)
		}
	}
	other := Plan{Seed: 43, PanicRate: 0.3, ErrorRate: 0.3, SlowRate: 0.3}
	var differs bool
	for seed := int64(1); seed <= 16; seed++ {
		cfg := chaosBase()
		cfg.Protocol = "MTS"
		cfg.MaxSpeed = 10
		cfg.Seed = seed
		if other.faultKind(cfg) != kinds[seed-1] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different chaos seeds selected identical faults for 16 cells")
	}
}

// chaosGame is the co-evolution loop over the chaos grid: two
// route-discovery attackers against the defence built for them, small
// enough that a full game (plus retried faults) stays in chaos-lane
// budget.
func chaosGame() experiment.Coevolution {
	return experiment.Coevolution{
		Base:     chaosBase(),
		Protocol: "MTS",
		Speed:    10,
		Attackers: []adversary.Spec{
			{Model: adversary.ModelEavesdropper},
			{Model: adversary.ModelWormhole},
		},
		Defenders: []countermeasure.Spec{
			{},
			{Model: countermeasure.ModelTrust},
		},
		Reps:     1,
		SeedBase: 3,
	}
}

// TestChaosCoevolutionBitIdentical extends the headline property to the
// attacker–defender loop: a game whose cell evaluations panic, error and
// tear cache writes under seeded chaos must converge to the same
// equilibrium with a byte-identical payoff table, CSV and move history as
// the fault-free game — the best-response scan never sees a faulted
// number because retries re-run deterministic cells and the cache
// degrades instead of lying.
func TestChaosCoevolutionBitIdentical(t *testing.T) {
	clean, err := chaosGame().Run()
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Converged {
		t.Fatalf("fault-free game did not converge:\n%s", clean.PayoffTable())
	}

	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	flaky := &FlakyCache{
		Store:  store,
		Faults: CacheFaults{Seed: 5, PutErrRate: 0.4, TearRate: 0.4, GetErrRate: 0.3},
	}
	inj := New(Plan{
		Seed:            5,
		PanicRate:       0.35,
		ErrorRate:       0.35,
		SlowRate:        0.3,
		FailuresPerCell: 2,
	})
	g := chaosGame()
	g.Cache = flaky
	g.Runner = inj.Runner(nil)
	g.Retry = experiment.RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond, Sleep: func(time.Duration) {}}
	faulted, err := g.Run()
	if err != nil {
		t.Fatalf("chaos game errored despite retries: %v", err)
	}

	panics, errs, slows := inj.Counts()
	if panics+errs+slows == 0 {
		t.Fatal("chaos plan faulted no cell of this game — re-pick the seed")
	}
	putErrs, tears, getErrs := flaky.Counts()
	t.Logf("injected: %d panics, %d errors, %d slow runs; cache: %d put errors, %d torn writes, %d read misses",
		panics, errs, slows, putErrs, tears, getErrs)
	if putErrs+tears+getErrs == 0 {
		t.Fatal("cache chaos missed every cell — re-pick the seed")
	}

	if got, want := faulted.PayoffTable(), clean.PayoffTable(); got != want {
		t.Errorf("chaos game's payoff table differs from the fault-free game\nclean:\n%s\nchaos:\n%s", want, got)
	}
	if got, want := faulted.PayoffCSV(), clean.PayoffCSV(); got != want {
		t.Errorf("chaos game's payoff CSV differs from the fault-free game")
	}
	if got, want := faulted.History(), clean.History(); got != want {
		t.Errorf("chaos game's move history differs\nclean:\n%s\nchaos:\n%s", want, got)
	}
	if faulted.Attacker != clean.Attacker || faulted.Defender != clean.Defender {
		t.Errorf("chaos equilibrium (%d,%d) differs from clean (%d,%d)",
			faulted.Attacker, faulted.Defender, clean.Attacker, clean.Defender)
	}
}
