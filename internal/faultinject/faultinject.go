// Package faultinject is the seeded, deterministic chaos harness for the
// sweep engine: it wraps the engine's Runner and Cache seams to make
// selected cells panic, error out, or livelock into the watchdog, and to
// tear or fail cache I/O — all chosen by hashing the cell's full
// configuration under a chaos seed, so the same Plan faults the same
// cells on every machine and every run. Faults are transient by design
// (a faulted cell heals after FailuresPerCell attempts), which is what
// lets the chaos suite assert the headline robustness property: a sweep
// under injected faults, with retries enabled, aggregates bit-identical
// to the fault-free sweep. The injectors fabricate nothing — an injected
// "slow run" squeezes the real watchdog's event budget so the genuine
// mid-run kill-and-retire path is exercised, and a torn cache entry is
// real corrupt bytes on disk for runcache's quarantine to catch.
package faultinject

import (
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"mtsim/internal/experiment"
	"mtsim/internal/metrics"
	"mtsim/internal/runcache"
	"mtsim/internal/scenario"
)

// Plan declares which faults to inject and how often. Rates are
// per-cell probabilities in [0,1]; a cell's fate is a pure function of
// its configuration and Seed, so a Plan names a reproducible chaos
// universe, not a dice roll.
type Plan struct {
	// Seed selects the chaos universe: it salts every per-cell draw.
	Seed int64
	// PanicRate, ErrorRate and SlowRate are the per-cell probabilities
	// of the three fault kinds. A cell is assigned at most one kind,
	// checked in that order.
	PanicRate float64
	ErrorRate float64
	SlowRate  float64
	// SlowEvents is the event budget an injected slow run is squeezed
	// to (the real watchdog then kills the real run mid-flight). Values
	// below 1 mean 8 — low enough to trip even the smallest chaos cell
	// now that batched PHY delivery collapses each transmission's 2·k
	// arrival events into two.
	SlowEvents uint64
	// FailuresPerCell is how many leading attempts of a faulted cell
	// fail before it heals; values below 1 mean 1. A retry policy with
	// MaxAttempts > FailuresPerCell therefore absorbs every fault.
	FailuresPerCell int
}

func (p Plan) failures() int {
	if p.FailuresPerCell < 1 {
		return 1
	}
	return p.FailuresPerCell
}

func (p Plan) slowEvents() uint64 {
	if p.SlowEvents < 1 {
		return 8
	}
	return p.SlowEvents
}

// draw maps (cfg, which, Seed) to a uniform value in [0,1): the first 64
// bits of the cell's content hash under a chaos-scoped salt. Unhashable
// configurations draw 1 (never faulted) — the engine will surface the
// real error instead.
func (p Plan) draw(cfg scenario.Config, which string) float64 {
	key, err := runcache.KeySalted(cfg, fmt.Sprintf("faultinject/%s/%d", which, p.Seed))
	if err != nil {
		return 1
	}
	v, err := strconv.ParseUint(key[:16], 16, 64)
	if err != nil {
		return 1
	}
	return float64(v>>11) / float64(uint64(1)<<53)
}

// faultKind assigns a cell its fault, or "" for a healthy cell.
func (p Plan) faultKind(cfg scenario.Config) string {
	if p.draw(cfg, "panic") < p.PanicRate {
		return experiment.KindPanic
	}
	if p.draw(cfg, "error") < p.ErrorRate {
		return experiment.KindError
	}
	if p.draw(cfg, "slow") < p.SlowRate {
		return experiment.KindTimeout
	}
	return ""
}

// Injector applies a Plan at the engine's Runner seam, tracking per-cell
// attempt counts (so faults heal after FailuresPerCell tries) and how
// many of each fault kind it actually injected. One Injector covers one
// sweep; build a fresh one per sweep so healing starts over.
type Injector struct {
	Plan Plan

	mu       sync.Mutex
	attempts map[string]int
	panics   int
	errors   int
	slows    int
}

// New returns an Injector for the given plan.
func New(p Plan) *Injector {
	return &Injector{Plan: p, attempts: make(map[string]int)}
}

// Counts reports how many faults of each kind were injected so far.
func (in *Injector) Counts() (panics, errs, slows int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.panics, in.errors, in.slows
}

// Runner wraps next (DefaultRunner when nil) with the plan's faults:
// assign Injector.Runner(nil) to Sweep.Runner and the chaos applies to
// every simulated cell attempt.
func (in *Injector) Runner(next experiment.Runner) experiment.Runner {
	if next == nil {
		next = experiment.DefaultRunner
	}
	return func(ctx *scenario.Context, cfg scenario.Config, w experiment.Watchdog) (*metrics.RunMetrics, error) {
		kind := in.Plan.faultKind(cfg)
		if kind == "" {
			return next(ctx, cfg, w)
		}
		cell, err := runcache.KeySalted(cfg, "faultinject/cell")
		if err != nil {
			return next(ctx, cfg, w)
		}
		in.mu.Lock()
		n := in.attempts[cell]
		in.attempts[cell] = n + 1
		healed := n >= in.Plan.failures()
		if !healed {
			switch kind {
			case experiment.KindPanic:
				in.panics++
			case experiment.KindError:
				in.errors++
			default:
				in.slows++
			}
		}
		in.mu.Unlock()
		if healed {
			return next(ctx, cfg, w)
		}
		switch kind {
		case experiment.KindPanic:
			panic(fmt.Sprintf("faultinject: injected panic (cell %s)", cell[:8]))
		case experiment.KindError:
			return nil, fmt.Errorf("faultinject: injected error (cell %s)", cell[:8])
		default:
			// A "slow" run is the real simulation squeezed under a tiny
			// event budget: the genuine watchdog kills it mid-run through
			// the genuine retire path. Nothing is faked.
			sw := w
			sw.MaxEvents = in.Plan.slowEvents()
			return next(ctx, cfg, sw)
		}
	}
}

// FlakyTransport is the chaos harness's HTTP face: an http.RoundTripper
// that drops a seeded fraction of requests before they reach the wire,
// so the sweep fabric's lease/complete/fail paths (internal/sweepfabric)
// are exercised under transport loss. Whether request n is dropped is a
// pure splitmix draw on (Seed, n) — the failure SET is reproducible,
// though which logical operation lands on which sequence number depends
// on goroutine scheduling. That is exactly the property the chaos suite
// needs: the fabric must produce byte-identical aggregates no matter
// which requests die, because client retries, lease expiry and
// content-addressed idempotent completion each recover a lost leg.
type FlakyTransport struct {
	// Next performs the surviving requests; nil means
	// http.DefaultTransport.
	Next http.RoundTripper
	// Seed selects the chaos universe for the drop draws.
	Seed int64
	// Rate is the per-request drop probability in [0,1].
	Rate float64

	seq     atomic.Uint64
	dropped atomic.Int64
}

// RoundTrip implements http.RoundTripper.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	n := t.seq.Add(1)
	if splitmixDraw(uint64(t.Seed), n) < t.Rate {
		t.dropped.Add(1)
		return nil, fmt.Errorf("faultinject: injected transport failure (request %d: %s %s)",
			n, req.Method, req.URL.Path)
	}
	next := t.Next
	if next == nil {
		next = http.DefaultTransport
	}
	return next.RoundTrip(req)
}

// Dropped reports how many requests the transport has killed.
func (t *FlakyTransport) Dropped() int64 { return t.dropped.Load() }

// splitmixDraw maps (seed, n) to a uniform value in [0,1) via the
// splitmix64 finalizer — the same generator the simulator's RNG tree
// uses for stream splitting.
func splitmixDraw(seed, n uint64) float64 {
	z := seed + n*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(uint64(1)<<53)
}

// CacheFaults declares deterministic cache-I/O chaos, drawn per cell
// exactly like Plan's rates.
type CacheFaults struct {
	Seed int64
	// PutErrRate: Put fails with an injected error, nothing written —
	// the erroring-directory case.
	PutErrRate float64
	// TearRate: Put succeeds, then the entry's bytes are truncated
	// mid-document — the torn-write case runcache must quarantine on the
	// next read.
	TearRate float64
	// GetErrRate: Get degrades to a forced miss — the unreadable-entry
	// case; the sweep recomputes.
	GetErrRate float64
}

// FlakyCache wraps a real on-disk store with CacheFaults. It satisfies
// experiment.Cache, so it drops into Sweep.Cache unchanged.
type FlakyCache struct {
	Store  *runcache.Store
	Faults CacheFaults

	mu      sync.Mutex
	putErrs int
	tears   int
	getErrs int
}

func (c *FlakyCache) draw(cfg scenario.Config, which string) float64 {
	return Plan{Seed: c.Faults.Seed}.draw(cfg, "cache-"+which)
}

// Counts reports how many cache faults of each kind were injected.
func (c *FlakyCache) Counts() (putErrs, tears, getErrs int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.putErrs, c.tears, c.getErrs
}

// Get serves the underlying store, except for cells drawn as erroring
// reads, which miss.
func (c *FlakyCache) Get(cfg scenario.Config) (*metrics.RunMetrics, bool) {
	if c.draw(cfg, "get") < c.Faults.GetErrRate {
		c.mu.Lock()
		c.getErrs++
		c.mu.Unlock()
		return nil, false
	}
	return c.Store.Get(cfg)
}

// Put writes through to the underlying store, then injects the cell's
// cache fault: an outright error, or a torn entry (real truncated bytes
// at the entry's real path).
func (c *FlakyCache) Put(cfg scenario.Config, m *metrics.RunMetrics) error {
	if c.draw(cfg, "put") < c.Faults.PutErrRate {
		c.mu.Lock()
		c.putErrs++
		c.mu.Unlock()
		path, _ := c.Store.EntryPath(cfg)
		return fmt.Errorf("faultinject: injected put error for %s", path)
	}
	if err := c.Store.Put(cfg, m); err != nil {
		return err
	}
	if c.draw(cfg, "tear") < c.Faults.TearRate {
		if path, err := c.Store.EntryPath(cfg); err == nil {
			if raw, err := os.ReadFile(path); err == nil && len(raw) > 2 {
				if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err == nil {
					c.mu.Lock()
					c.tears++
					c.mu.Unlock()
				}
			}
		}
	}
	return nil
}
