package faultinject

// HTTP chaos: the sweep fabric's lease/complete/fail legs run under a
// flaky transport, and the final aggregates must still be byte-identical
// to a fault-free single-process sweep. Three mechanisms carry the
// recovery — client-side retries absorb most drops, lease expiry
// reclaims cells whose completion report died outright, and
// content-addressed idempotent completion makes the resulting duplicate
// computations harmless.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mtsim/internal/experiment"
	"mtsim/internal/runcache"
	"mtsim/internal/sweepfabric"
)

// renderFigures is the byte-equality oracle shared with the sweepfabric
// suite: every paper figure as table + CSV.
func renderFigures(res *experiment.Result) string {
	var out string
	for _, fig := range experiment.PaperFigures() {
		out += res.Table(fig) + "\n" + res.CSV(fig) + "\n"
	}
	return out
}

// TestFabricSweepUnderFlakyTransportBitIdentical shards a sweep across
// two workers whose every HTTP request may be dropped, and asserts the
// fabric converges to the fault-free single-process bytes.
func TestFabricSweepUnderFlakyTransportBitIdentical(t *testing.T) {
	s := chaosSweep()

	// Fault-free reference.
	refStore, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ref := s
	ref.Cache = refStore
	refRes, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := renderFigures(refRes)

	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	board := sweepfabric.NewBoard(store)
	// A short TTL so cells whose completion report was eaten by the
	// transport are re-leased within the test's patience.
	board.TTL = 500 * time.Millisecond
	srv := httptest.NewServer(sweepfabric.NewServer(board))
	defer srv.Close()

	jobs := s.Jobs()
	sum, err := board.Enqueue(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Two workers, each behind its own flaky transport. Aggressive
	// client retries stay OFF the fast path here on purpose: one retry
	// round at minimal backoff pushes recovery onto the lease-expiry
	// path more often.
	flaky := make([]*FlakyTransport, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := range flaky {
		flaky[i] = &FlakyTransport{Seed: int64(40 + i), Rate: 0.25}
		client := sweepfabric.NewClient(srv.URL)
		client.HTTP = &http.Client{Transport: flaky[i]}
		client.Retries = 1
		client.Backoff = time.Millisecond
		w := &sweepfabric.Worker{
			Coordinator: client,
			Name:        fmt.Sprintf("flaky%d", i),
			Batch:       2,
			Poll:        10 * time.Millisecond,
			IdleExit:    2 * time.Second,
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }() //nolint:errcheck
	}

	st, err := board.WaitFor(nil, sum.Keys, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.Remaining != 0 || len(st.Failed) != 0 {
		t.Fatalf("fabric did not converge under transport chaos: %d remaining, %d failed (stats %+v)",
			st.Remaining, len(st.Failed), board.Stats())
	}
	cancel()
	wg.Wait()

	var dropped int64
	for _, ft := range flaky {
		dropped += ft.Dropped()
	}
	if dropped == 0 {
		t.Fatal("the flaky transports dropped nothing — the chaos was a no-op")
	}
	t.Logf("transport chaos: %d requests dropped, board stats %+v", dropped, board.Stats())

	s.Cache = store
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheMisses != 0 {
		t.Fatalf("store missing %d cells after convergence", res.CacheMisses)
	}
	if got := renderFigures(res); got != want {
		t.Fatalf("transport chaos changed the bytes:\n--- chaos ---\n%s\n--- clean ---\n%s", got, want)
	}
}

// TestFlakyTransportDeterministicDrops pins the injector's contract:
// the set of dropped sequence numbers is a pure function of the seed.
func TestFlakyTransportDeterministicDrops(t *testing.T) {
	drops := func(seed int64) []uint64 {
		var out []uint64
		for n := uint64(1); n <= 1000; n++ {
			if splitmixDraw(uint64(seed), n) < 0.25 {
				out = append(out, n)
			}
		}
		return out
	}
	a, b := drops(7), drops(7)
	if len(a) == 0 {
		t.Fatal("seed 7 at rate 0.25 drops nothing in 1000 draws — the draw is broken")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("drop set not reproducible across calls")
		}
	}
	if c := drops(8); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical drop sets")
		}
	}
	// And the sequence counter feeds the draw: rate ~0.25 should land
	// in a loose band, not at the extremes.
	if n := len(a); n < 150 || n > 350 {
		t.Fatalf("drop rate off the rails: %d/1000 at rate 0.25", n)
	}
}
