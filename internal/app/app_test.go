package app

import (
	"testing"

	"mtsim/internal/packet"
	"mtsim/internal/sim"
	"mtsim/internal/tcp"
)

// fakeNet satisfies tcp.Network/CBRNetwork, recording originations.
type fakeNet struct {
	id    packet.NodeID
	sched *sim.Scheduler
	uids  packet.UIDSource
	sent  []*packet.Packet
	flows map[int]func(*packet.Packet, packet.NodeID)
}

func newFakeNet(id packet.NodeID) *fakeNet {
	return &fakeNet{
		id:    id,
		sched: sim.NewScheduler(),
		flows: map[int]func(*packet.Packet, packet.NodeID){},
	}
}

func (f *fakeNet) ID() packet.NodeID         { return f.id }
func (f *fakeNet) Scheduler() *sim.Scheduler { return f.sched }
func (f *fakeNet) UIDs() *packet.UIDSource   { return &f.uids }
func (f *fakeNet) RegisterFlow(flow int, h func(*packet.Packet, packet.NodeID)) {
	f.flows[flow] = h
}
func (f *fakeNet) Originate(p *packet.Packet) { f.sent = append(f.sent, p) }

func TestFTPStartsAtConfiguredTime(t *testing.T) {
	net := newFakeNet(1)
	snd := tcp.NewSender(net, tcp.DefaultConfig(), 1, 2)
	NewFTP(snd, sim.Time(3*sim.Second)).Install(net.sched)

	net.sched.RunUntil(sim.Time(2 * sim.Second))
	if len(net.sent) != 0 {
		t.Fatalf("FTP sent %d packets before start time", len(net.sent))
	}
	net.sched.RunUntil(sim.Time(4 * sim.Second))
	if len(net.sent) == 0 {
		t.Fatal("FTP sent nothing after start time")
	}
	// Initial window is 1 segment.
	if len(net.sent) != 1 {
		t.Fatalf("initial burst = %d, want 1 (cwnd=1)", len(net.sent))
	}
}

func TestCBRRate(t *testing.T) {
	net := newFakeNet(1)
	cbr := NewCBR(net, 2, 5, 512, 100*sim.Millisecond,
		sim.Time(sim.Second), sim.Time(3*sim.Second))
	cbr.Install(net.sched)
	net.sched.RunUntil(sim.Time(10 * sim.Second))

	// Active window [1s, 3s) at 10 pkt/s => 20 packets.
	if cbr.Sent != 20 {
		t.Fatalf("CBR sent %d, want 20", cbr.Sent)
	}
	if len(net.sent) != 20 {
		t.Fatalf("originations = %d", len(net.sent))
	}
	p := net.sent[0]
	if p.Size != packet.IPHeaderBytes+512 || p.Dst != 5 || p.Kind != packet.KindData {
		t.Fatalf("CBR packet malformed: %+v", p)
	}
	if p.DataID == 0 {
		t.Fatal("CBR packets must carry DataID for interception counting")
	}
	// Sequence numbers increase.
	if net.sent[1].TCP.Seq != net.sent[0].TCP.Seq+1 {
		t.Fatal("CBR seq not increasing")
	}
}

func TestCBRStopsAtStopTime(t *testing.T) {
	net := newFakeNet(1)
	cbr := NewCBR(net, 1, 2, 100, 50*sim.Millisecond, 0, sim.Time(sim.Second))
	cbr.Install(net.sched)
	net.sched.RunUntil(sim.Time(5 * sim.Second))
	if net.sched.Len() != 0 {
		t.Fatal("CBR left pending timers after stop")
	}
	if cbr.Sent == 0 || cbr.Sent > 21 {
		t.Fatalf("CBR sent %d in 1s at 20 pkt/s", cbr.Sent)
	}
}
