// Package app provides application-level traffic sources. The paper's
// workload is FTP over TCP Reno (an infinite backlog); a CBR/UDP-style
// source is included for MAC/routing tests and extensions.
package app

import (
	"mtsim/internal/packet"
	"mtsim/internal/sim"
	"mtsim/internal/tcp"
)

// FTP drives a TCP sender with an unlimited backlog, starting at a
// configurable time.
type FTP struct {
	Sender  *tcp.Sender
	StartAt sim.Time
}

// NewFTP attaches an infinite file transfer to the given sender.
func NewFTP(sender *tcp.Sender, startAt sim.Time) *FTP {
	return &FTP{Sender: sender, StartAt: startAt}
}

// Install schedules the transfer start on the scheduler.
func (f *FTP) Install(sched *sim.Scheduler) {
	sched.At(f.StartAt, func() {
		f.Sender.Supply(1 << 40) // effectively infinite
		f.Sender.Start()
	})
}

// CBRNetwork is the node interface a CBR source needs.
type CBRNetwork interface {
	ID() packet.NodeID
	Scheduler() *sim.Scheduler
	UIDs() *packet.UIDSource
	Originate(p *packet.Packet)
}

// CBR emits fixed-size datagrams at a constant rate (no transport layer,
// no reliability) — useful for stressing routing without TCP dynamics.
type CBR struct {
	net      CBRNetwork
	ar       *packet.Arena // resolved once from net; nil means plain allocation
	dst      packet.NodeID
	flow     int
	size     int
	interval sim.Duration
	startAt  sim.Time
	stopAt   sim.Time
	seq      int64

	Sent uint64
}

// NewCBR creates a CBR source of `size`-byte payloads every interval,
// active in [startAt, stopAt).
func NewCBR(net CBRNetwork, flow int, dst packet.NodeID, size int, interval sim.Duration, startAt, stopAt sim.Time) *CBR {
	c := &CBR{
		net: net, dst: dst, flow: flow, size: size,
		interval: interval, startAt: startAt, stopAt: stopAt,
	}
	// Resolve the node's packet arena once (node.SetArena precedes source
	// attachment); plain test networks stay on ordinary allocation.
	if carrier, ok := net.(interface{ Arena() *packet.Arena }); ok {
		c.ar = carrier.Arena()
	}
	return c
}

// Install schedules the source.
func (c *CBR) Install(sched *sim.Scheduler) {
	sched.At(c.startAt, c.tick)
}

func (c *CBR) tick() {
	sched := c.net.Scheduler()
	if sched.Now() >= c.stopAt {
		return
	}
	now := sched.Now()
	p := c.ar.NewPacketFrom(packet.Packet{
		UID:       c.net.UIDs().Next(),
		Kind:      packet.KindData,
		Size:      packet.IPHeaderBytes + c.size,
		Src:       c.net.ID(),
		Dst:       c.dst,
		TTL:       64,
		CreatedAt: now,
		DataID:    uint64(c.seq) + 1,
	})
	h := c.ar.AttachTCP(p)
	h.Flow, h.Seq, h.SentAt = c.flow, c.seq, now
	c.seq++
	c.Sent++
	c.net.Originate(p)
	sched.After(c.interval, c.tick)
}
