package eaves

import (
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/mac"
	"mtsim/internal/mobility"
	"mtsim/internal/node"
	"mtsim/internal/packet"
	"mtsim/internal/phy"
	"mtsim/internal/sim"
)

// nullUpper satisfies mac.Upper for a bare node.
type nullProto struct{}

func (nullProto) Name() string                             { return "NULL" }
func (nullProto) Start()                                   {}
func (nullProto) Send(*packet.Packet)                      {}
func (nullProto) Receive(*packet.Packet, packet.NodeID)    {}
func (nullProto) LinkFailed(*packet.Packet, packet.NodeID) {}

func buildNet(t *testing.T) (*sim.Scheduler, []*node.Node, *packet.UIDSource) {
	t.Helper()
	sched := sim.NewScheduler()
	ch := phy.NewChannel(sched, 250, 550)
	uids := &packet.UIDSource{}
	rng := sim.NewRNG(9)
	pts := []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 100}}
	var nodes []*node.Node
	for i, p := range pts {
		n := node.New(packet.NodeID(i), sched, ch, mac.Default80211b(),
			&mobility.Static{P: p}, rng.Derive("n"), uids)
		n.SetProtocol(nullProto{})
		nodes = append(nodes, n)
	}
	return sched, nodes, uids
}

func dataPkt(uids *packet.UIDSource, dataID uint64) *packet.Packet {
	return &packet.Packet{
		UID: uids.Next(), Kind: packet.KindData, Size: 1040,
		Src: 0, Dst: 1, TTL: 8, DataID: dataID,
		TCP: &packet.TCPHeader{Flow: 1},
	}
}

func TestEavesdropperCountsDistinctAndFrames(t *testing.T) {
	sched, nodes, uids := buildNet(t)
	ev := Attach(nodes[2]) // bystander in range of the 0->1 link
	nodes[0].SendMac(dataPkt(uids, 1), 1)
	nodes[0].SendMac(dataPkt(uids, 2), 1)
	nodes[0].SendMac(dataPkt(uids, 2), 1) // retransmission of payload 2
	sched.RunUntil(sim.Time(sim.Second))

	if ev.Frames != 3 {
		t.Fatalf("frames = %d, want 3", ev.Frames)
	}
	if ev.Distinct() != 2 {
		t.Fatalf("distinct = %d, want 2", ev.Distinct())
	}
}

func TestEavesdropperIgnoresControlAndAcks(t *testing.T) {
	sched, nodes, uids := buildNet(t)
	ev := Attach(nodes[2])
	// Routing control packet.
	nodes[0].SendMac(&packet.Packet{
		UID: uids.Next(), Kind: packet.KindRREQ, Size: 64, Src: 0, Dst: 1, TTL: 8,
	}, packet.Broadcast)
	// TCP ACK.
	nodes[0].SendMac(&packet.Packet{
		UID: uids.Next(), Kind: packet.KindAck, Size: 40, Src: 0, Dst: 1, TTL: 8,
		TCP: &packet.TCPHeader{Flow: 1, Ack: true},
	}, 1)
	// Data without DataID (not transport payload).
	nodes[0].SendMac(&packet.Packet{
		UID: uids.Next(), Kind: packet.KindData, Size: 500, Src: 0, Dst: 1, TTL: 8,
	}, 1)
	sched.RunUntil(sim.Time(sim.Second))

	if ev.Frames != 0 || ev.Distinct() != 0 {
		t.Fatalf("eavesdropper counted non-payload traffic: frames=%d distinct=%d",
			ev.Frames, ev.Distinct())
	}
}

func TestEavesdropperRatio(t *testing.T) {
	sched, nodes, uids := buildNet(t)
	ev := Attach(nodes[2])
	for i := uint64(1); i <= 4; i++ {
		nodes[0].SendMac(dataPkt(uids, i), 1)
	}
	sched.RunUntil(sim.Time(sim.Second))
	if got := ev.Ratio(8); got != 0.5 {
		t.Fatalf("ratio = %v, want 0.5", got)
	}
	if got := ev.Ratio(0); got != 0 {
		t.Fatalf("ratio with Pr=0 = %v, want 0", got)
	}
}

func TestEavesdropperSeesRelayedTraffic(t *testing.T) {
	// The eavesdropper also counts packets addressed to itself (it relays
	// like any legitimate node, §IV-B).
	sched, nodes, uids := buildNet(t)
	ev := Attach(nodes[2])
	p := dataPkt(uids, 42)
	p.Dst = 2
	nodes[0].SendMac(p, 2)
	sched.RunUntil(sim.Time(sim.Second))
	if ev.Distinct() != 1 {
		t.Fatal("packet addressed to eavesdropper not counted")
	}
}
