package eaves

import (
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/mac"
	"mtsim/internal/mobility"
	"mtsim/internal/node"
	"mtsim/internal/packet"
	"mtsim/internal/phy"
	"mtsim/internal/sim"
)

// nullUpper satisfies mac.Upper for a bare node.
type nullProto struct{}

func (nullProto) Name() string                             { return "NULL" }
func (nullProto) Start()                                   {}
func (nullProto) Send(*packet.Packet)                      {}
func (nullProto) Receive(*packet.Packet, packet.NodeID)    {}
func (nullProto) LinkFailed(*packet.Packet, packet.NodeID) {}

func buildNet(t *testing.T) (*sim.Scheduler, []*node.Node, *packet.UIDSource) {
	t.Helper()
	sched := sim.NewScheduler()
	ch := phy.NewChannel(sched, 250, 550)
	uids := &packet.UIDSource{}
	rng := sim.NewRNG(9)
	pts := []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 100}}
	var nodes []*node.Node
	for i, p := range pts {
		n := node.New(packet.NodeID(i), sched, ch, mac.Default80211b(),
			&mobility.Static{P: p}, rng.Derive("n"), uids)
		n.SetProtocol(nullProto{})
		nodes = append(nodes, n)
	}
	return sched, nodes, uids
}

func dataPkt(uids *packet.UIDSource, dataID uint64) *packet.Packet {
	return &packet.Packet{
		UID: uids.Next(), Kind: packet.KindData, Size: 1040,
		Src: 0, Dst: 1, TTL: 8, DataID: dataID,
		TCP: &packet.TCPHeader{Flow: 1},
	}
}

func TestEavesdropperCountsDistinctAndFrames(t *testing.T) {
	sched, nodes, uids := buildNet(t)
	ev := Attach(nodes[2]) // bystander in range of the 0->1 link
	nodes[0].SendMac(dataPkt(uids, 1), 1)
	nodes[0].SendMac(dataPkt(uids, 2), 1)
	nodes[0].SendMac(dataPkt(uids, 2), 1) // retransmission of payload 2
	sched.RunUntil(sim.Time(sim.Second))

	if ev.Frames != 3 {
		t.Fatalf("frames = %d, want 3", ev.Frames)
	}
	if ev.Distinct() != 2 {
		t.Fatalf("distinct = %d, want 2", ev.Distinct())
	}
}

func TestEavesdropperIgnoresControlAndAcks(t *testing.T) {
	sched, nodes, uids := buildNet(t)
	ev := Attach(nodes[2])
	// Routing control packet.
	nodes[0].SendMac(&packet.Packet{
		UID: uids.Next(), Kind: packet.KindRREQ, Size: 64, Src: 0, Dst: 1, TTL: 8,
	}, packet.Broadcast)
	// TCP ACK.
	nodes[0].SendMac(&packet.Packet{
		UID: uids.Next(), Kind: packet.KindAck, Size: 40, Src: 0, Dst: 1, TTL: 8,
		TCP: &packet.TCPHeader{Flow: 1, Ack: true},
	}, 1)
	// Data without DataID (not transport payload).
	nodes[0].SendMac(&packet.Packet{
		UID: uids.Next(), Kind: packet.KindData, Size: 500, Src: 0, Dst: 1, TTL: 8,
	}, 1)
	sched.RunUntil(sim.Time(sim.Second))

	if ev.Frames != 0 || ev.Distinct() != 0 {
		t.Fatalf("eavesdropper counted non-payload traffic: frames=%d distinct=%d",
			ev.Frames, ev.Distinct())
	}
}

func TestEavesdropperRatio(t *testing.T) {
	sched, nodes, uids := buildNet(t)
	ev := Attach(nodes[2])
	for i := uint64(1); i <= 4; i++ {
		nodes[0].SendMac(dataPkt(uids, i), 1)
	}
	sched.RunUntil(sim.Time(sim.Second))
	if got := ev.Ratio(8); got != 0.5 {
		t.Fatalf("ratio = %v, want 0.5", got)
	}
	if got := ev.Ratio(0); got != 0 {
		t.Fatalf("ratio with Pr=0 = %v, want 0", got)
	}
}

func TestEavesdropperSeesRelayedTraffic(t *testing.T) {
	// The eavesdropper also counts packets addressed to itself (it relays
	// like any legitimate node, §IV-B).
	sched, nodes, uids := buildNet(t)
	ev := Attach(nodes[2])
	p := dataPkt(uids, 42)
	p.Dst = 2
	nodes[0].SendMac(p, 2)
	sched.RunUntil(sim.Time(sim.Second))
	if ev.Distinct() != 1 {
		t.Fatal("packet addressed to eavesdropper not counted")
	}
}

func TestContiguitySetView(t *testing.T) {
	set := func(ids ...uint64) map[uint64]bool {
		m := map[uint64]bool{}
		for _, id := range ids {
			m[id] = true
		}
		return m
	}
	cases := []struct {
		name            string
		seen            map[uint64]bool
		longest, contig uint64
	}{
		{"empty", set(), 0, 0},
		{"singleton", set(5), 1, 0},
		{"isolated", set(1, 3, 5, 9), 1, 0},
		{"one-run", set(4, 5, 6, 7), 4, 4},
		{"two-runs", set(1, 2, 10, 11, 12, 20), 3, 5},
		{"from-one", set(1, 2, 3), 3, 3},
	}
	for _, tc := range cases {
		longest, contig := Contiguity(tc.seen)
		if longest != tc.longest || contig != tc.contig {
			t.Errorf("%s: Contiguity = (%d, %d), want (%d, %d)",
				tc.name, longest, contig, tc.longest, tc.contig)
		}
	}
}

func TestStreamTrackerInOrderView(t *testing.T) {
	var tr StreamTracker
	// Heard: 1,2,3 (streak 3), then 7, then 8 (streak 2), then 5 (break:
	// 5 is not 8+1 even though the set now holds 1,2,3,5,7,8).
	for _, id := range []uint64{1, 2, 3, 7, 8, 5} {
		tr.Note(id)
	}
	if tr.Longest != 3 {
		t.Errorf("Longest = %d, want 3", tr.Longest)
	}
	if tr.Contig != 5 { // 1,2,3 and 7,8
		t.Errorf("Contig = %d, want 5", tr.Contig)
	}
	// A permuted stream yields no streaks at all.
	var perm StreamTracker
	for _, id := range []uint64{4, 1, 3, 6, 2, 5} {
		perm.Note(id)
	}
	if perm.Longest != 1 || perm.Contig != 0 {
		t.Errorf("permuted stream: Longest=%d Contig=%d, want 1, 0", perm.Longest, perm.Contig)
	}
	// Stats folds both views.
	seen := map[uint64]bool{1: true, 2: true, 3: true}
	cs := Stats(seen, &tr)
	if cs.LongestRun != 3 || cs.RunPkts != 3 || cs.StreamRun != 3 || cs.StreamPkts != 5 {
		t.Errorf("Stats = %+v", cs)
	}
	if cs := Stats(seen, nil); cs.StreamRun != 0 || cs.StreamPkts != 0 {
		t.Errorf("nil tracker leaked stream stats: %+v", cs)
	}
}
