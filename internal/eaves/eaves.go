// Package eaves implements the paper's eavesdropping node (§IV-B): a
// randomly selected intermediate node that "performs the same procedures as
// other legitimate nodes to relay packets but also collects unauthorized
// data within its radio range". It taps the node's MAC promiscuously and
// records every TCP data packet it can decode — whether addressed to it,
// relayed through it, or merely overheard.
package eaves

import (
	"mtsim/internal/node"
	"mtsim/internal/packet"
)

// Eavesdropper counts the data packets one node can intercept.
type Eavesdropper struct {
	ID packet.NodeID

	seen  map[uint64]bool // distinct logical payloads (DataID)
	union map[uint64]bool // shared coalition union, nil for a lone tap

	// Frames counts every overheard data frame, including duplicates and
	// retransmissions.
	Frames uint64
}

// Attach installs an eavesdropper tap on the given node.
func Attach(n *node.Node) *Eavesdropper {
	return AttachShared(n, nil)
}

// AttachShared installs an eavesdropper tap that additionally records every
// intercepted DataID into union, a set shared by colluding eavesdroppers:
// the coalition's Pe is the union of distinct payloads over all members
// (internal/adversary). A nil union makes it a lone tap, exactly Attach.
func AttachShared(n *node.Node, union map[uint64]bool) *Eavesdropper {
	e := &Eavesdropper{
		ID:    n.ID(),
		seen:  make(map[uint64]bool),
		union: union,
	}
	n.AddTap(e.tap)
	return e
}

// Counts reports whether an overheard frame carries interceptable payload:
// a transport data packet with a logical DataID. Control packets, TCP ACKs
// and MAC-level RTS/CTS/ACK frames carry no application information.
func Counts(f *packet.Frame) bool {
	if f.Kind != packet.FrameData || f.Payload == nil {
		return false
	}
	p := f.Payload
	return p.Kind == packet.KindData && p.DataID != 0
}

func (e *Eavesdropper) tap(f *packet.Frame) {
	if !Counts(f) {
		return
	}
	e.Frames++
	e.seen[f.Payload.DataID] = true
	if e.union != nil {
		e.union[f.Payload.DataID] = true
	}
}

// Distinct returns Pe: the number of distinct data packets intercepted.
func (e *Eavesdropper) Distinct() uint64 { return uint64(len(e.seen)) }

// Ratio returns the interception ratio Ri = Pe / Pr (Eq. 1) given the
// number of distinct packets that arrived at the destination.
func (e *Eavesdropper) Ratio(pr uint64) float64 {
	if pr == 0 {
		return 0
	}
	return float64(e.Distinct()) / float64(pr)
}
