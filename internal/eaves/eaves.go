// Package eaves implements the paper's eavesdropping node (§IV-B): a
// randomly selected intermediate node that "performs the same procedures as
// other legitimate nodes to relay packets but also collects unauthorized
// data within its radio range". It taps the node's MAC promiscuously and
// records every TCP data packet it can decode — whether addressed to it,
// relayed through it, or merely overheard.
package eaves

import (
	"mtsim/internal/node"
	"mtsim/internal/packet"
)

// Eavesdropper counts the data packets one node can intercept.
type Eavesdropper struct {
	ID packet.NodeID

	seen   map[uint64]bool // distinct logical payloads (DataID)
	union  map[uint64]bool // shared coalition union, nil for a lone tap
	stream *StreamTracker  // shared in-order contiguity view, may be nil

	// Frames counts every overheard data frame, including duplicates and
	// retransmissions.
	Frames uint64
}

// Attach installs an eavesdropper tap on the given node.
func Attach(n *node.Node) *Eavesdropper {
	return AttachShared(n, nil, nil)
}

// AttachShared installs an eavesdropper tap that additionally records every
// intercepted DataID into union, a set shared by colluding eavesdroppers:
// the coalition's Pe is the union of distinct payloads over all members
// (internal/adversary). stream, when non-nil, observes the same
// interception sequence (first hearings of union-new payloads, in
// interception order) for the in-order contiguity metrics. A nil union
// makes it a lone tap, exactly Attach.
func AttachShared(n *node.Node, union map[uint64]bool, stream *StreamTracker) *Eavesdropper {
	e := &Eavesdropper{
		ID:     n.ID(),
		seen:   make(map[uint64]bool),
		union:  union,
		stream: stream,
	}
	n.AddTap(e.tap)
	return e
}

// Counts reports whether an overheard frame carries interceptable payload:
// a transport data packet with a logical DataID. Control packets, TCP ACKs
// and MAC-level RTS/CTS/ACK frames carry no application information.
func Counts(f *packet.Frame) bool {
	if f.Kind != packet.FrameData || f.Payload == nil {
		return false
	}
	p := f.Payload
	return p.Kind == packet.KindData && p.DataID != 0
}

func (e *Eavesdropper) tap(f *packet.Frame) {
	if !Counts(f) {
		return
	}
	e.Frames++
	id := f.Payload.DataID
	if e.union != nil {
		if !e.union[id] {
			e.union[id] = true
			if e.stream != nil {
				e.stream.Note(id)
			}
		}
	} else if !e.seen[id] && e.stream != nil {
		e.stream.Note(id)
	}
	e.seen[id] = true
}

// Distinct returns Pe: the number of distinct data packets intercepted.
func (e *Eavesdropper) Distinct() uint64 { return uint64(len(e.seen)) }

// Contiguity analyses this tap's intercepted set; see the package-level
// Contiguity.
func (e *Eavesdropper) Contiguity() (longest, contiguous uint64) {
	return Contiguity(e.seen)
}

// ContigStats summarises both contiguity views of an interception: the
// set view (what the attacker could reassemble from everything it ever
// intercepted, in any order — an upper bound on recoverable stream spans)
// and the stream view (how much arrived already in consecutive order —
// what a tapped relay reads off the air without reassembly buffering).
// Data shuffling attacks the stream view directly — block permutation
// scrambles the interception order — and the set view only where
// dispersal keeps whole segments out of the tap's radio range.
type ContigStats struct {
	LongestRun uint64 // longest run of consecutive DataIDs in the set
	RunPkts    uint64 // packets in set runs of length ≥ 2
	StreamRun  uint64 // longest streak heard in consecutive ascending order
	StreamPkts uint64 // packets in such in-order streaks of length ≥ 2
}

// StreamTracker accumulates the stream view online: Note is called once
// per first interception of each distinct DataID, in interception order,
// and extends or breaks the current in-order consecutive streak.
type StreamTracker struct {
	last   uint64
	streak uint64
	// Longest is the longest in-order consecutive streak observed.
	Longest uint64
	// Contig counts packets inside in-order streaks of length ≥ 2.
	Contig uint64
}

// Note observes the next first-time-intercepted DataID.
func (t *StreamTracker) Note(id uint64) {
	if t.streak > 0 && id == t.last+1 {
		t.streak++
		if t.streak == 2 {
			t.Contig += 2
		} else {
			t.Contig++
		}
	} else {
		t.streak = 1
	}
	t.last = id
	if t.streak > t.Longest {
		t.Longest = t.streak
	}
}

// Stats folds the set view of seen together with a tracker's stream view.
// A nil tracker contributes zeros.
func Stats(seen map[uint64]bool, stream *StreamTracker) ContigStats {
	longest, contig := Contiguity(seen)
	cs := ContigStats{LongestRun: longest, RunPkts: contig}
	if stream != nil {
		cs.StreamRun = stream.Longest
		cs.StreamPkts = stream.Contig
	}
	return cs
}

// Contiguity measures how much of an intercepted DataID set an attacker
// could reassemble into an unbroken byte stream: the length of the longest
// run of consecutive DataIDs, and the total number of IDs belonging to any
// run of length ≥ 2 (isolated packets reveal a segment, not a stream).
// TCP assigns consecutive DataIDs to consecutive segments, so runs in ID
// space are contiguous spans of the flow's payload. This is the metric the
// data-shuffling countermeasure (internal/countermeasure) attacks: it
// leaves Pe roughly unchanged but fragments the runs.
func Contiguity(seen map[uint64]bool) (longest, contiguous uint64) {
	for id := range seen {
		if id > 0 && seen[id-1] {
			continue // not the start of a maximal run
		}
		n := uint64(1)
		for seen[id+n] {
			n++
		}
		if n > longest {
			longest = n
		}
		if n >= 2 {
			contiguous += n
		}
	}
	return longest, contiguous
}

// Ratio returns the interception ratio Ri = Pe / Pr (Eq. 1) given the
// number of distinct packets that arrived at the destination.
func (e *Eavesdropper) Ratio(pr uint64) float64 {
	if pr == 0 {
		return 0
	}
	return float64(e.Distinct()) / float64(pr)
}
