// Package eaves implements the paper's eavesdropping node (§IV-B): a
// randomly selected intermediate node that "performs the same procedures as
// other legitimate nodes to relay packets but also collects unauthorized
// data within its radio range". It taps the node's MAC promiscuously and
// records every TCP data packet it can decode — whether addressed to it,
// relayed through it, or merely overheard.
package eaves

import (
	"mtsim/internal/node"
	"mtsim/internal/packet"
)

// Eavesdropper counts the data packets one node can intercept.
type Eavesdropper struct {
	ID packet.NodeID

	seen map[uint64]bool // distinct logical payloads (DataID)

	// Frames counts every overheard data frame, including duplicates and
	// retransmissions.
	Frames uint64
}

// Attach installs an eavesdropper tap on the given node.
func Attach(n *node.Node) *Eavesdropper {
	e := &Eavesdropper{
		ID:   n.ID(),
		seen: make(map[uint64]bool),
	}
	n.AddTap(e.tap)
	return e
}

func (e *Eavesdropper) tap(f *packet.Frame) {
	if f.Kind != packet.FrameData || f.Payload == nil {
		return
	}
	p := f.Payload
	if p.Kind != packet.KindData || p.DataID == 0 {
		return
	}
	e.Frames++
	e.seen[p.DataID] = true
}

// Distinct returns Pe: the number of distinct data packets intercepted.
func (e *Eavesdropper) Distinct() uint64 { return uint64(len(e.seen)) }

// Ratio returns the interception ratio Ri = Pe / Pr (Eq. 1) given the
// number of distinct packets that arrived at the destination.
func (e *Eavesdropper) Ratio(pr uint64) float64 {
	if pr == 0 {
		return 0
	}
	return float64(e.Distinct()) / float64(pr)
}
