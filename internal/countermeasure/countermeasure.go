// Package countermeasure is the defender-side mirror of
// internal/adversary: pluggable countermeasures that reduce what an
// eavesdropping adversary can reconstruct from the traffic it intercepts.
// Where the adversary subsystem generalizes the paper's lone tap into
// coalitions, mobile taps and dropping relays, this package models the two
// defences the related work proposes on top of multipath routing:
//
//   - Data shuffling (the Shuffling baseline of PAPERS.md, arXiv
//     1307.4076): outgoing TCP segments are buffered into small blocks at
//     the source and released in a permuted order drawn from a
//     deterministic per-node RNG; combined with per-packet dispersal
//     across MTS's disjoint paths (core.Config.Disperse), a tapped relay
//     no longer observes a contiguous byte stream — the intercepted
//     DataIDs fragment into short runs the attacker cannot reassemble.
//     Measured by the intercepted-contiguity metrics in
//     metrics.RunMetrics (InterceptedLongestRun and friends).
//
//   - Adversary-aware MTS (in the spirit of security-aware routing, arXiv
//     1609.02288): a path-selection policy that penalises routes through
//     relays that have already carried a large share of this source's
//     data (core.Config.AwarePenalty). The heuristic uses only the
//     source's own forwarding observations — no oracle knowledge of where
//     the taps sit — and caps the worst-case single-relay exposure
//     (Fig. 7's highest interception ratio).
//
// Invariants: the zero Spec attaches nothing, derives no RNG stream and
// perturbs no bit of a legacy run. Shuffling never creates or destroys
// packets — it releases exactly the segments it claimed, a permutation
// per block (property-tested) — and every segment still buffered at the
// run horizon is handed back to the arena by Retire, keeping the
// leak-accounting ledger closed.
package countermeasure

import (
	"fmt"

	"mtsim/internal/sim"
)

// Model names accepted in Spec.Model.
const (
	// ModelNone is the explicit no-countermeasure baseline (what the zero
	// Spec and the paper's scenarios run).
	ModelNone = "none"
	// ModelShuffle is data shuffling: permuted block release at the
	// source plus per-packet dispersal across MTS's disjoint paths.
	ModelShuffle = "shuffle"
	// ModelAware is adversary-aware MTS path selection: checking-round
	// switches are re-scored by each path's observed forwarding share.
	ModelAware = "aware"
	// ModelShuffleAware combines both defences.
	ModelShuffleAware = "shuffle+aware"
	// ModelTrust is trust-scored path selection (the trust-based secure
	// multipath defence of arXiv 2006.01404): every node keeps
	// per-neighbour trust scores fed by forwarding evidence — watchdog
	// overhearing, MAC link failures — and all four protocols fold the
	// scores into path selection as a trust-weighted cost, routing around
	// low-trust links (wormhole endpoints, rushers that turn dropper,
	// black/grayholes).
	ModelTrust = "trust"
)

// Models lists every selectable countermeasure model.
func Models() []string {
	return []string{ModelNone, ModelShuffle, ModelAware, ModelShuffleAware, ModelTrust}
}

// Spec declares a countermeasure in a scenario configuration. The zero
// Spec means "no countermeasure" — the paper's undefended baseline.
type Spec struct {
	// Model selects the defence; empty means ModelNone.
	Model string
	// Depth is the shuffle block size in segments; 0 means 8.
	Depth int
	// Hold is how long a partial shuffle block waits for more segments
	// before being flushed anyway; 0 means 25 ms.
	Hold sim.Duration
	// Penalty is the aware policy's usage-skew weight: the nominated
	// (fastest) path loses a switch only to a path whose first-hop
	// forwarding share is more than Penalty lower. 0 means 0.15.
	Penalty float64
	// Threshold is the trust model's distrust cutoff: a neighbour whose
	// score falls below it is routed around when an alternative exists.
	// 0 means 0.35.
	Threshold float64
}

// IsZero reports whether the spec is the all-default no-countermeasure
// baseline.
func (s Spec) IsZero() bool {
	return s.Model == "" && s.Depth == 0 && s.Hold == 0 && s.Penalty == 0 &&
		s.Threshold == 0
}

// EffectiveModel resolves an empty Model to ModelNone.
func (s Spec) EffectiveModel() string {
	if s.Model == "" {
		return ModelNone
	}
	return s.Model
}

// Shuffles reports whether the spec asks for data shuffling.
func (s Spec) Shuffles() bool {
	m := s.EffectiveModel()
	return m == ModelShuffle || m == ModelShuffleAware
}

// Aware reports whether the spec asks for adversary-aware path selection.
func (s Spec) Aware() bool {
	m := s.EffectiveModel()
	return m == ModelAware || m == ModelShuffleAware
}

// Trusts reports whether the spec asks for trust-scored path selection.
func (s Spec) Trusts() bool { return s.EffectiveModel() == ModelTrust }

// EffectiveDepth returns the shuffle block size the spec asks for.
func (s Spec) EffectiveDepth() int {
	if s.Depth <= 0 {
		return 8
	}
	return s.Depth
}

// EffectiveHold returns the partial-block flush timeout.
func (s Spec) EffectiveHold() sim.Duration {
	if s.Hold <= 0 {
		return 25 * sim.Millisecond
	}
	return s.Hold
}

// EffectivePenalty returns the aware policy's usage-skew weight.
func (s Spec) EffectivePenalty() float64 {
	if s.Penalty <= 0 {
		return 0.15
	}
	return s.Penalty
}

// EffectiveThreshold returns the trust model's distrust cutoff.
func (s Spec) EffectiveThreshold() float64 {
	if s.Threshold <= 0 {
		return 0.35
	}
	return s.Threshold
}

// Validate rejects knobs the selected model would silently ignore — a
// shuffle experiment mistyped as "aware" must fail loudly, not report
// undefended contiguity numbers (the same contract adversary.Build
// enforces for DropRate/Interval).
func (s Spec) Validate() error {
	if s.Threshold != 0 && s.EffectiveModel() != ModelTrust {
		return fmt.Errorf("countermeasure: Threshold applies to %q only, not %q",
			ModelTrust, s.EffectiveModel())
	}
	switch m := s.EffectiveModel(); m {
	case ModelNone:
		if s.Depth != 0 || s.Hold != 0 || s.Penalty != 0 {
			return fmt.Errorf("countermeasure: model %q takes no tuning knobs", m)
		}
	case ModelShuffle:
		if s.Penalty != 0 {
			return fmt.Errorf("countermeasure: Penalty applies to %q/%q only, not %q",
				ModelAware, ModelShuffleAware, m)
		}
	case ModelAware:
		if s.Depth != 0 || s.Hold != 0 {
			return fmt.Errorf("countermeasure: Depth/Hold apply to %q/%q only, not %q",
				ModelShuffle, ModelShuffleAware, m)
		}
	case ModelShuffleAware:
	case ModelTrust:
		if s.Depth != 0 || s.Hold != 0 || s.Penalty != 0 {
			return fmt.Errorf("countermeasure: model %q takes only the Threshold knob", m)
		}
	default:
		return fmt.Errorf("countermeasure: unknown model %q", s.Model)
	}
	return nil
}

// Label is the spec's canonical sweep-axis identity: "none", "shuffle×8"
// (model × block depth), "aware@p0.15", "shuffle+aware×8@p0.15" —
// explicitly set knobs appended so differently tuned specs never collapse
// into one aggregation cell. It names cells and table rows.
func (s Spec) Label() string {
	m := s.EffectiveModel()
	lbl := m
	if s.Shuffles() {
		lbl += fmt.Sprintf("×%d", s.EffectiveDepth())
		if s.Hold > 0 {
			lbl += fmt.Sprintf("@%gms", s.Hold.Seconds()*1000)
		}
	}
	if s.Aware() && s.Penalty > 0 {
		lbl += fmt.Sprintf("@p%g", s.Penalty)
	}
	if s.Trusts() && s.Threshold > 0 {
		lbl += fmt.Sprintf("@t%g", s.Threshold)
	}
	return lbl
}

// Countermeasure is one attached defence, reporting per-run accounting
// after the simulation has run. The aware policy's effect is counted by
// the MTS router itself (core.Stats.AwareOverrides); this interface
// carries the shuffling side, which lives outside the routing protocol.
type Countermeasure interface {
	// Model returns the model name (ModelShuffle etc.).
	Model() string
	// Shuffled returns the number of segments released in permuted order.
	Shuffled() uint64
	// Blocks returns the number of shuffle blocks flushed.
	Blocks() uint64
	// Retire hands every segment still buffered at the run horizon back
	// to the arena (leak accounting; see packet.Arena). Idempotent.
	Retire()
}

// Passive is a countermeasure with no shuffling machinery outside the
// routing protocol: the explicit ModelNone baseline, or ModelAware, whose
// whole effect lives in the MTS router's path selection. It still carries
// the model name so run metrics label the cell correctly.
type Passive struct{ model string }

// None is the no-countermeasure baseline.
func None() Passive { return Passive{model: ModelNone} }

// Model implements Countermeasure.
func (p Passive) Model() string {
	if p.model == "" {
		return ModelNone
	}
	return p.model
}

// Shuffled implements Countermeasure.
func (Passive) Shuffled() uint64 { return 0 }

// Blocks implements Countermeasure.
func (Passive) Blocks() uint64 { return 0 }

// Retire implements Countermeasure.
func (Passive) Retire() {}

// Build attaches the spec's defence to the given traffic source nodes
// (already selected by the scenario builder: the distinct flow sources).
// rng is the countermeasure's own derived stream — per-node shuffle
// streams are derived from it by stable labels, so attaching a defender
// perturbs nothing but what it is modelled to perturb. It may be nil for
// models that need no randomness (aware-only, none).
//
// Note the aware half of a spec is not built here: it is a path-selection
// policy inside the MTS router, enabled by the scenario builder through
// core.Config.AwarePenalty. Build wires what lives outside the protocol.
func Build(spec Spec, sources []Host, rng *sim.RNG) (Countermeasure, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Trusts() {
		// Trust wants a table on EVERY node, not just the traffic sources;
		// the scenario builder attaches it via NewTrustDefence.
		return nil, fmt.Errorf("countermeasure: model %q is built with NewTrustDefence, not Build", ModelTrust)
	}
	if !spec.Shuffles() {
		return Passive{model: spec.EffectiveModel()}, nil
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("countermeasure: no traffic source nodes to shuffle at")
	}
	if rng == nil {
		return nil, fmt.Errorf("countermeasure: model %q needs an RNG stream", spec.EffectiveModel())
	}
	s := &Shuffling{model: spec.EffectiveModel()}
	for _, h := range sources {
		sh := NewShuffler(h, rng.Derive(fmt.Sprintf("shuffle/%d", h.ID())),
			spec.EffectiveDepth(), spec.EffectiveHold())
		s.shufflers = append(s.shufflers, sh)
	}
	return s, nil
}

// Shuffling is the built data-shuffling defence: one Shuffler per traffic
// source node (plus, for MTS, the dispersal the scenario builder enables
// in the router configuration).
type Shuffling struct {
	model     string
	shufflers []*Shuffler
}

// Model implements Countermeasure.
func (s *Shuffling) Model() string { return s.model }

// Shuffled implements Countermeasure.
func (s *Shuffling) Shuffled() uint64 {
	var n uint64
	for _, sh := range s.shufflers {
		n += sh.Shuffled
	}
	return n
}

// Blocks implements Countermeasure.
func (s *Shuffling) Blocks() uint64 {
	var n uint64
	for _, sh := range s.shufflers {
		n += sh.Blocks
	}
	return n
}

// Retire implements Countermeasure.
func (s *Shuffling) Retire() {
	for _, sh := range s.shufflers {
		sh.Retire()
	}
}

var (
	_ Countermeasure = Passive{}
	_ Countermeasure = (*Shuffling)(nil)
)
