package countermeasure

import (
	"testing"

	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// fakeHost is a minimal Host: a scheduler, an arena, and a log of the
// packets the shuffler injected, in order.
type fakeHost struct {
	id       packet.NodeID
	sched    *sim.Scheduler
	arena    *packet.Arena
	filter   func(p *packet.Packet) bool
	injected []*packet.Packet
}

func newFakeHost() *fakeHost {
	a := packet.NewArena()
	a.Check = true
	return &fakeHost{id: 1, sched: sim.NewScheduler(), arena: a}
}

func (h *fakeHost) ID() packet.NodeID         { return h.id }
func (h *fakeHost) Scheduler() *sim.Scheduler { return h.sched }
func (h *fakeHost) Arena() *packet.Arena      { return h.arena }
func (h *fakeHost) Inject(p *packet.Packet)   { h.injected = append(h.injected, p) }
func (h *fakeHost) InstallOriginateFilter(f func(p *packet.Packet) bool) {
	h.filter = f
}

// originate pushes one data segment with the given DataID through the
// installed filter, as node.Originate would.
func (h *fakeHost) originate(t *testing.T, uids *packet.UIDSource, dataID uint64) *packet.Packet {
	t.Helper()
	p := h.arena.NewPacketFrom(packet.Packet{
		UID: uids.Next(), Kind: packet.KindData, Src: h.id, Dst: 2, TTL: 64, DataID: dataID,
	})
	if !h.filter(p) {
		t.Fatalf("shuffler declined data segment DataID=%d", dataID)
	}
	return p
}

func buildShuffler(t *testing.T, h *fakeHost, depth int, hold sim.Duration, seed int64) *Shuffler {
	t.Helper()
	return NewShuffler(h, sim.NewRNG(seed), depth, hold)
}

// TestShuffleIsPermutation is the no-loss/no-duplication property: every
// segment claimed by the shuffler is injected exactly once, blocks are
// permutations of their inputs, the order genuinely changes, and the same
// seed reproduces the same order.
func TestShuffleIsPermutation(t *testing.T) {
	run := func(seed int64) ([]uint64, *fakeHost) {
		h := newFakeHost()
		sh := buildShuffler(t, h, 8, 25*sim.Millisecond, seed)
		uids := &packet.UIDSource{}
		const n = 100
		for id := uint64(1); id <= n; id++ {
			h.originate(t, uids, id)
		}
		// Flush the trailing partial block via the hold timer.
		h.sched.RunUntil(sim.Time(sim.Second))
		if sh.Pending() != 0 {
			t.Fatalf("%d segments still buffered after hold expiry", sh.Pending())
		}
		var order []uint64
		for _, p := range h.injected {
			order = append(order, p.DataID)
		}
		return order, h
	}

	order, h := run(42)
	if len(order) != 100 {
		t.Fatalf("injected %d of 100 segments", len(order))
	}
	seen := map[uint64]bool{}
	for _, id := range order {
		if seen[id] {
			t.Fatalf("DataID %d injected twice", id)
		}
		seen[id] = true
	}
	for id := uint64(1); id <= 100; id++ {
		if !seen[id] {
			t.Fatalf("DataID %d lost", id)
		}
	}
	// Blocks preserve membership: block b holds exactly IDs (8b, 8b+8].
	for b := 0; b < 12; b++ {
		blockSet := map[uint64]bool{}
		for _, id := range order[b*8 : b*8+8] {
			blockSet[id] = true
		}
		for id := uint64(b*8 + 1); id <= uint64(b*8+8); id++ {
			if !blockSet[id] {
				t.Fatalf("block %d does not contain DataID %d: %v", b, id, order[b*8:b*8+8])
			}
		}
	}
	// The order must actually change somewhere (a 100-segment identity
	// permutation has probability (1/8!)^12).
	identity := true
	for i, id := range order {
		if id != uint64(i+1) {
			identity = false
			break
		}
	}
	if identity {
		t.Fatal("shuffler released every block in identity order")
	}
	// Determinism: same seed, same permutation.
	again, _ := run(42)
	for i := range order {
		if order[i] != again[i] {
			t.Fatalf("same seed diverged at position %d: %d vs %d", i, order[i], again[i])
		}
	}
	// All injected; nothing retained: the ledger closes without Retire.
	for _, p := range h.injected {
		h.arena.Release(p)
	}
	if live := h.arena.LivePackets(); live != 0 {
		t.Fatalf("%d packets live after releasing all injected", live)
	}
}

// TestShuffleHoldFlushesPartialBlock: a trickling sender (fewer segments
// than the block depth) waits at most hold before its block is released.
func TestShuffleHoldFlushesPartialBlock(t *testing.T) {
	h := newFakeHost()
	sh := buildShuffler(t, h, 8, 25*sim.Millisecond, 1)
	uids := &packet.UIDSource{}
	h.originate(t, uids, 1)
	h.originate(t, uids, 2)
	if len(h.injected) != 0 {
		t.Fatalf("partial block released early: %d injected", len(h.injected))
	}
	h.sched.RunUntil(sim.Time(24 * sim.Millisecond))
	if len(h.injected) != 0 {
		t.Fatalf("block released before hold expired")
	}
	h.sched.RunUntil(sim.Time(26 * sim.Millisecond))
	if len(h.injected) != 2 || sh.Pending() != 0 {
		t.Fatalf("hold flush released %d segments, %d pending", len(h.injected), sh.Pending())
	}
}

// TestShuffleRetireReleasesBuffered: segments stranded in a partial block
// at the run horizon are handed back to the arena — the countermeasure's
// entry in the leak-accounting contract.
func TestShuffleRetireReleasesBuffered(t *testing.T) {
	h := newFakeHost()
	sh := buildShuffler(t, h, 8, sim.Second, 1)
	uids := &packet.UIDSource{}
	for id := uint64(1); id <= 3; id++ {
		h.originate(t, uids, id)
	}
	sh.Retire()
	if sh.Pending() != 0 {
		t.Fatalf("%d segments still buffered after Retire", sh.Pending())
	}
	st := h.arena.Stats()
	if live := h.arena.LivePackets(); live != 0 {
		t.Fatalf("leak: %d live packets after Retire (acquired %d released %d)",
			live, st.PacketsAcquired, st.PacketsReleased)
	}
	if st.DoubleReleases != 0 {
		t.Fatalf("%d double releases", st.DoubleReleases)
	}
	// Retire is idempotent.
	sh.Retire()
	if st := h.arena.Stats(); st.DoubleReleases != 0 {
		t.Fatalf("second Retire double-released: %d", st.DoubleReleases)
	}
}

// TestFilterPassesNonData: ACKs, control packets and transit traffic must
// flow straight through to the routing protocol.
func TestFilterPassesNonData(t *testing.T) {
	h := newFakeHost()
	buildShuffler(t, h, 8, 25*sim.Millisecond, 1)
	uids := &packet.UIDSource{}
	cases := []packet.Packet{
		{UID: uids.Next(), Kind: packet.KindAck, Src: h.id, Dst: 2},                 // ACK
		{UID: uids.Next(), Kind: packet.KindRREQ, Src: h.id, Dst: 2},                // control
		{UID: uids.Next(), Kind: packet.KindData, Src: 9, Dst: 2, DataID: 7},        // transit
		{UID: uids.Next(), Kind: packet.KindData, Src: h.id, Dst: 2 /* DataID 0 */}, // no payload ID
	}
	for i := range cases {
		p := h.arena.NewPacketFrom(cases[i])
		if h.filter(p) {
			t.Fatalf("case %d (%s) was claimed by the shuffler", i, p.Kind)
		}
		h.arena.Release(p)
	}
}

func TestSpecValidateAndLabel(t *testing.T) {
	good := []Spec{
		{},
		{Model: ModelShuffle, Depth: 4, Hold: 10 * sim.Millisecond},
		{Model: ModelAware, Penalty: 0.3},
		{Model: ModelShuffleAware, Depth: 16, Penalty: 0.1},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	bad := []Spec{
		{Model: "jam"},                      // unknown model
		{Depth: 4},                          // knob on the zero model
		{Model: ModelAware, Depth: 4},       // shuffle knob on aware
		{Model: ModelShuffle, Penalty: 0.2}, // aware knob on shuffle
		{Model: ModelNone, Hold: sim.Second},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid spec", s)
		}
	}
	labels := map[string]Spec{
		"none":                 {},
		"shuffle×8":            {Model: ModelShuffle},
		"shuffle×4@10ms":       {Model: ModelShuffle, Depth: 4, Hold: 10 * sim.Millisecond},
		"aware":                {Model: ModelAware},
		"aware@p0.3":           {Model: ModelAware, Penalty: 0.3},
		"shuffle+aware×8@p0.1": {Model: ModelShuffleAware, Penalty: 0.1},
	}
	for want, s := range labels {
		if got := s.Label(); got != want {
			t.Errorf("Label(%+v) = %q, want %q", s, got, want)
		}
	}
}

func TestBuildModels(t *testing.T) {
	h := newFakeHost()
	cm, err := Build(Spec{Model: ModelAware}, []Host{h}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Model() != ModelAware {
		t.Fatalf("aware build reports model %q", cm.Model())
	}
	if h.filter != nil {
		t.Fatal("aware-only build installed an originate filter")
	}
	if _, err := Build(Spec{Model: ModelShuffle}, []Host{h}, nil); err == nil {
		t.Fatal("shuffle build without an RNG must fail")
	}
	if _, err := Build(Spec{Model: ModelShuffle}, nil, sim.NewRNG(1)); err == nil {
		t.Fatal("shuffle build without sources must fail")
	}
	cm, err = Build(Spec{Model: ModelShuffleAware}, []Host{h}, sim.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if cm.Model() != ModelShuffleAware || h.filter == nil {
		t.Fatalf("shuffle+aware build: model %q, filter installed: %v", cm.Model(), h.filter != nil)
	}
}
