package countermeasure

import (
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// Host is the slice of a node a shuffler needs: identity, timers, the
// arena for retiring buffered segments, and the two ends of the originate
// hook — the filter through which it claims outgoing segments and Inject,
// through which it releases them to the routing protocol. node.Node
// implements it; tests use lightweight fakes.
type Host interface {
	ID() packet.NodeID
	Scheduler() *sim.Scheduler
	Arena() *packet.Arena
	// Inject hands a packet to the routing protocol, bypassing the
	// originate filter.
	Inject(p *packet.Packet)
	// InstallOriginateFilter routes every locally originated packet
	// through f; f returning true claims the packet.
	InstallOriginateFilter(f func(p *packet.Packet) bool)
}

// Shuffler buffers the data segments one source node originates and
// releases them in blocks whose internal order is a random permutation
// drawn from its own deterministic stream. A block flushes when it
// reaches depth segments or when the oldest buffered segment has waited
// hold — whichever comes first — so a trickling sender (TCP at cwnd 1)
// pays at most hold of extra latency while a burst is permuted whole.
//
// Ownership: between Filter and the flush the shuffler owns the buffered
// packets; flushing transfers them to the routing protocol one by one (a
// permutation — never a copy, a drop or a duplicate), and Retire releases
// whatever the run horizon stranded in the buffer back to the arena.
type Shuffler struct {
	host  Host
	ar    *packet.Arena
	rng   *sim.RNG
	depth int
	hold  sim.Duration

	buf   []*packet.Packet
	timer *sim.Event

	// Shuffled counts segments released in permuted order; Blocks counts
	// flushes (full and timer-forced).
	Shuffled uint64
	Blocks   uint64
}

// NewShuffler attaches a shuffler to the host's originate path.
func NewShuffler(h Host, rng *sim.RNG, depth int, hold sim.Duration) *Shuffler {
	if depth < 1 {
		depth = 1
	}
	s := &Shuffler{host: h, ar: h.Arena(), rng: rng, depth: depth, hold: hold}
	h.InstallOriginateFilter(s.Filter)
	return s
}

// Filter implements the originate hook: transport data segments that this
// node itself originates are claimed into the current block; everything
// else (ACKs, control, transit traffic) passes straight through.
func (s *Shuffler) Filter(p *packet.Packet) bool {
	if p.Kind != packet.KindData || p.DataID == 0 || p.Src != s.host.ID() {
		return false
	}
	s.buf = append(s.buf, p)
	if len(s.buf) >= s.depth {
		s.flush()
		return true
	}
	if s.timer == nil && s.hold > 0 {
		s.timer = s.host.Scheduler().After(s.hold, s.onHold)
	}
	return true
}

func (s *Shuffler) onHold() {
	s.timer = nil
	if len(s.buf) > 0 {
		s.flush()
	}
}

// flush releases the buffered block in a permuted order. The permutation
// is drawn fresh per block, so even a repeating block size never settles
// into a fixed interleaving an observer could invert.
func (s *Shuffler) flush() {
	if s.timer != nil {
		s.host.Scheduler().Cancel(s.timer)
		s.timer = nil
	}
	block := s.buf
	s.buf = nil // reentrant originations open a fresh block
	s.Blocks++
	for _, i := range s.rng.Perm(len(block)) {
		s.Shuffled++
		s.host.Inject(block[i])
	}
	// Reuse the block's backing array (cleared, so it does not pin
	// released packets) unless a reentrant origination already replaced it.
	for i := range block {
		block[i] = nil
	}
	if s.buf == nil {
		s.buf = block[:0]
	}
}

// Pending returns the number of segments currently buffered (tests).
func (s *Shuffler) Pending() int { return len(s.buf) }

// Retire hands every still-buffered segment back to the arena and stops
// the hold timer; the shuffler must not see traffic afterwards. This is
// the countermeasure's explicit release point in the leak-accounting
// contract: segments claimed from Originate either re-enter the stack via
// Inject or die here.
func (s *Shuffler) Retire() {
	if s.timer != nil {
		s.host.Scheduler().Cancel(s.timer)
		s.timer = nil
	}
	for i, p := range s.buf {
		s.ar.Release(p)
		s.buf[i] = nil
	}
	s.buf = s.buf[:0]
}
