package countermeasure

import (
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// WatchdogTimeout is how long a neighbour is given to re-air a data
// packet it accepted for forwarding before the obligation counts as a
// drop. Generous relative to MAC contention + queueing under load, so an
// honest but busy relay is not falsely accused; a wormhole endpoint or
// blackhole NEVER airs the frame, so it accumulates expiries regardless.
const WatchdogTimeout = 500 * sim.Millisecond

// trustCostWeight scales distrust into path-selection cost: a neighbour
// with score s adds (1-s)*trustCostWeight to any path through it, in
// hop-count units. 8 means a fully distrusted hop outweighs an 8-hop
// detour — comfortably more than the shortcut a field-spanning phantom
// wormhole link offers.
const trustCostWeight = 8.0

// maxPendingObligations bounds the per-neighbour watchdog queue; the
// oldest obligation is force-expired (counted as a drop) when a new send
// would overflow it. A neighbour that is 64 unforwarded packets behind
// has earned the penalty either way.
const maxPendingObligations = 64

// obligation is one unfulfilled forwarding promise: the neighbour
// accepted a data packet at deadline-WatchdogTimeout and has not been
// overheard re-airing it yet.
type obligation struct {
	dataID   uint64
	deadline sim.Time
}

// score is the per-neighbour trust ledger. The trust value is the
// Laplace-smoothed forwarding rate (1+forwards)/(1+forwards+drops): a
// fresh neighbour starts fully trusted at 1, a consistent dropper decays
// toward 0, and evidence in both directions moves it monotonically.
type score struct {
	forwards uint64
	drops    uint64
	pend     []obligation
}

func (sc *score) value() float64 {
	return float64(1+sc.forwards) / float64(1+sc.forwards+sc.drops)
}

// expire folds every obligation past now into the drop count. Called
// lazily from the evidence and query paths — the table schedules no
// events of its own, so attaching it perturbs no event ordering.
func (sc *score) expire(now sim.Time) {
	kept := sc.pend[:0]
	for _, ob := range sc.pend {
		if ob.deadline <= now {
			sc.drops++
		} else {
			kept = append(kept, ob)
		}
	}
	sc.pend = kept
}

// TrustTable is one node's per-neighbour trust state: a
// routing.TrustOracle fed by the three kinds of forwarding evidence the
// node can observe first-hand, with no oracle knowledge of who is
// compromised:
//
//   - watchdog sends: handing a unicast data packet to the MAC opens an
//     obligation on the next hop (node.TrustMonitor.NoteSend);
//   - promiscuous confirmation: overhearing the neighbour re-air that
//     DataID closes the obligation as a forward (TapFrame — sound because
//     RTS/CTS means a DATA frame only airs when the next hop actually
//     answered, so a relay whose "next hop" is a phantom link never airs);
//   - MAC feedback: retry exhaustion toward the neighbour counts as a
//     drop immediately (NoteLinkFailure, the same MAC path NotifyDrop
//     rides for routing-layer drops).
//
// The table draws no RNG stream and schedules no events (obligations
// expire lazily at evidence/query time), so a trust-defended run differs
// from an undefended one only through the path choices the scores change.
type TrustTable struct {
	self      packet.NodeID
	sched     *sim.Scheduler
	threshold float64
	scores    map[packet.NodeID]*score
}

// NewTrustTable builds an empty table for one node.
func NewTrustTable(self packet.NodeID, sched *sim.Scheduler, threshold float64) *TrustTable {
	return &TrustTable{
		self:      self,
		sched:     sched,
		threshold: threshold,
		scores:    make(map[packet.NodeID]*score),
	}
}

func (t *TrustTable) score(id packet.NodeID) *score {
	sc := t.scores[id]
	if sc == nil {
		sc = &score{}
		t.scores[id] = sc
	}
	return sc
}

// NoteSend implements node.TrustMonitor: opens a watchdog obligation on
// next, unless next is the packet's final destination (destinations
// consume, they owe no re-air).
func (t *TrustTable) NoteSend(p *packet.Packet, next packet.NodeID) {
	if next == p.Dst || p.DataID == 0 {
		return
	}
	now := t.sched.Now()
	sc := t.score(next)
	sc.expire(now)
	if len(sc.pend) >= maxPendingObligations {
		sc.drops++
		sc.pend = sc.pend[1:]
	}
	sc.pend = append(sc.pend, obligation{dataID: p.DataID, deadline: now + sim.Time(WatchdogTimeout)})
}

// NoteLinkFailure implements node.TrustMonitor.
func (t *TrustTable) NoteLinkFailure(next packet.NodeID) {
	t.score(next).drops++
}

// TapFrame is the watchdog ear (node.FrameTap, wired by InstallTrust):
// overhearing a neighbour transmit a data frame closes any matching
// obligation as a confirmed forward.
func (t *TrustTable) TapFrame(f *packet.Frame) {
	if f.Kind != packet.FrameData || f.Payload == nil ||
		f.Payload.Kind != packet.KindData || f.Payload.DataID == 0 {
		return
	}
	sc := t.scores[f.TxFrom]
	if sc == nil || len(sc.pend) == 0 {
		return
	}
	id := f.Payload.DataID
	for i, ob := range sc.pend {
		if ob.dataID == id {
			sc.pend = append(sc.pend[:i], sc.pend[i+1:]...)
			sc.forwards++
			return
		}
	}
}

// Score returns the neighbour's current trust value in [0,1], after
// lazily expiring overdue obligations.
func (t *TrustTable) Score(neighbour packet.NodeID) float64 {
	sc := t.scores[neighbour]
	if sc == nil {
		return 1
	}
	sc.expire(t.sched.Now())
	return sc.value()
}

// Distrusted implements routing.TrustOracle.
func (t *TrustTable) Distrusted(neighbour packet.NodeID) bool {
	return t.Score(neighbour) < t.threshold
}

// Cost implements routing.TrustOracle: (1-score)·weight, in hop units.
func (t *TrustTable) Cost(neighbour packet.NodeID) float64 {
	return (1 - t.Score(neighbour)) * trustCostWeight
}

// evidence sums the table's ledger (defence accounting).
func (t *TrustTable) evidence() (forwards, drops uint64, distrusted int) {
	now := t.sched.Now()
	for _, sc := range t.scores {
		sc.expire(now)
		forwards += sc.forwards
		drops += sc.drops
		if sc.value() < t.threshold {
			distrusted++
		}
	}
	return
}

// TrustDefence is the built trust countermeasure: one table per node,
// aggregated for run accounting. It holds no packets, so Retire has
// nothing to drain — it exists to satisfy the Countermeasure lifecycle
// and to stop the tables at the run horizon.
type TrustDefence struct {
	threshold float64
	tables    []*TrustTable
}

// NewTrustDefence starts an empty defence with the given distrust cutoff.
func NewTrustDefence(threshold float64) *TrustDefence {
	return &TrustDefence{threshold: threshold}
}

// Attach creates (and registers) one node's trust table; the scenario
// builder installs the returned table on the node (node.InstallTrust).
func (d *TrustDefence) Attach(self packet.NodeID, sched *sim.Scheduler) *TrustTable {
	tbl := NewTrustTable(self, sched, d.threshold)
	d.tables = append(d.tables, tbl)
	return tbl
}

// Model implements Countermeasure.
func (d *TrustDefence) Model() string { return ModelTrust }

// Shuffled implements Countermeasure: trust reorders nothing.
func (d *TrustDefence) Shuffled() uint64 { return 0 }

// Blocks implements Countermeasure.
func (d *TrustDefence) Blocks() uint64 { return 0 }

// Retire implements Countermeasure: the tables hold no packets.
func (d *TrustDefence) Retire() {}

// Forwards returns the total confirmed-forward evidence across all nodes.
func (d *TrustDefence) Forwards() uint64 {
	var n uint64
	for _, t := range d.tables {
		f, _, _ := t.evidence()
		n += f
	}
	return n
}

// Drops returns the total drop evidence (expired watchdog obligations +
// link failures) across all nodes.
func (d *TrustDefence) Drops() uint64 {
	var n uint64
	for _, t := range d.tables {
		_, dr, _ := t.evidence()
		n += dr
	}
	return n
}

// DistrustedLinks returns how many (observer, neighbour) pairs sit below
// the distrust threshold at the run horizon.
func (d *TrustDefence) DistrustedLinks() uint64 {
	var n uint64
	for _, t := range d.tables {
		_, _, dist := t.evidence()
		n += uint64(dist)
	}
	return n
}

var _ Countermeasure = (*TrustDefence)(nil)
