package aodv

import (
	"testing"

	"mtsim/internal/packet"
	"mtsim/internal/routing"
	"mtsim/internal/routing/routingtest"
	"mtsim/internal/sim"
)

// net is a hand-driven network of AODV routers over fake envs: every
// recorded transmission is forwarded to its addressee(s) according to an
// adjacency map, after running the scheduler to flush jitters.
type net struct {
	sched   *sim.Scheduler
	uids    packet.UIDSource
	envs    map[packet.NodeID]*routingtest.Env
	routers map[packet.NodeID]*Router
	adj     map[packet.NodeID][]packet.NodeID
}

func newNet(adj map[packet.NodeID][]packet.NodeID) *net {
	n := &net{
		sched:   sim.NewScheduler(),
		envs:    map[packet.NodeID]*routingtest.Env{},
		routers: map[packet.NodeID]*Router{},
		adj:     adj,
	}
	for id := range adj {
		e := routingtest.NewEnv(id, n.sched, &n.uids)
		n.envs[id] = e
		n.routers[id] = New(e, DefaultConfig())
	}
	return n
}

// pump repeatedly flushes scheduler events and delivers outboxes until the
// network is quiet.
func (n *net) pump() {
	for i := 0; i < 10000; i++ {
		n.sched.RunUntil(n.sched.Now().Add(50 * sim.Millisecond))
		moved := false
		for id, e := range n.envs {
			for _, s := range e.TakeOutbox() {
				moved = true
				if s.Next == packet.Broadcast {
					for _, nb := range n.adj[id] {
						n.routers[nb].Receive(s.P, id)
					}
				} else {
					if n.linked(id, s.Next) {
						n.routers[s.Next].Receive(s.P, id)
					}
				}
			}
		}
		if !moved && n.sched.Len() == 0 {
			return
		}
	}
}

func (n *net) linked(a, b packet.NodeID) bool {
	for _, x := range n.adj[a] {
		if x == b {
			return true
		}
	}
	return false
}

func dataPacket(u *packet.UIDSource, src, dst packet.NodeID) *packet.Packet {
	return &packet.Packet{
		UID: u.Next(), Kind: packet.KindData, Size: 1040,
		Src: src, Dst: dst, TTL: 64,
		TCP: &packet.TCPHeader{Flow: 1, Seq: 0},
	}
}

// chain builds 0-1-2-...-k.
func chain(k int) map[packet.NodeID][]packet.NodeID {
	adj := map[packet.NodeID][]packet.NodeID{}
	for i := 0; i <= k; i++ {
		id := packet.NodeID(i)
		if i > 0 {
			adj[id] = append(adj[id], packet.NodeID(i-1))
		}
		if i < k {
			adj[id] = append(adj[id], packet.NodeID(i+1))
		}
	}
	return adj
}

func TestDiscoveryAndDeliveryOverChain(t *testing.T) {
	n := newNet(chain(4))
	p := dataPacket(&n.uids, 0, 4)
	n.routers[0].Send(p)
	n.pump()

	if len(n.envs[4].Delivered) != 1 {
		t.Fatalf("delivered = %d, want 1", len(n.envs[4].Delivered))
	}
	// Forward route installed at the source.
	next, hops, ok := n.routers[0].RouteTo(4)
	if !ok || next != 1 || hops != 4 {
		t.Fatalf("route at source: next=%d hops=%d ok=%v", next, hops, ok)
	}
	// Intermediates relayed the data packet exactly once each.
	for _, id := range []packet.NodeID{1, 2, 3} {
		if len(n.envs[id].Relayed) != 1 {
			t.Fatalf("node %d relays = %d", id, len(n.envs[id].Relayed))
		}
	}
}

func TestReverseRouteInstalled(t *testing.T) {
	n := newNet(chain(3))
	n.routers[0].Send(dataPacket(&n.uids, 0, 3))
	n.pump()
	// The destination must have a route back to the source from the RREQ.
	next, _, ok := n.routers[3].RouteTo(0)
	if !ok || next != 2 {
		t.Fatalf("reverse route at destination: next=%d ok=%v", next, ok)
	}
}

func TestNoDuplicateRREQFlood(t *testing.T) {
	// Ring topology: 0-1-2-3-0. Each node must rebroadcast a given RREQ
	// at most once despite receiving multiple copies.
	adj := map[packet.NodeID][]packet.NodeID{
		0: {1, 3}, 1: {0, 2}, 2: {1, 3}, 3: {2, 0},
	}
	n := newNet(adj)
	// Track RREQ broadcasts per node per request ID while pumping: the
	// origin may legitimately issue several ring attempts (distinct BIDs),
	// but nobody may rebroadcast the same (orig, BID) twice.
	type bcast struct {
		node packet.NodeID
		bid  uint32
	}
	rreqs := map[bcast]int{}
	n.routers[0].Send(dataPacket(&n.uids, 0, 2))
	for i := 0; i < 200; i++ {
		n.sched.RunUntil(n.sched.Now().Add(50 * sim.Millisecond))
		moved := false
		for id, e := range n.envs {
			for _, s := range e.TakeOutbox() {
				moved = true
				if s.P.Kind == packet.KindRREQ {
					rreqs[bcast{id, s.P.Routing.(*RREQ).BID}]++
				}
				if s.Next == packet.Broadcast {
					for _, nb := range n.adj[id] {
						n.routers[nb].Receive(s.P, id)
					}
				} else if n.linked(id, s.Next) {
					n.routers[s.Next].Receive(s.P, id)
				}
			}
		}
		if !moved && n.sched.Len() == 0 {
			break
		}
	}
	for key, c := range rreqs {
		if c > 1 {
			t.Fatalf("node %d rebroadcast RREQ bid=%d %d times", key.node, key.bid, c)
		}
	}
	if len(n.envs[2].Delivered) != 1 {
		t.Fatalf("delivered = %d", len(n.envs[2].Delivered))
	}
}

func TestIntermediateReplyFromFreshRoute(t *testing.T) {
	n := newNet(chain(4))
	// First discovery populates routes along the chain.
	n.routers[0].Send(dataPacket(&n.uids, 0, 4))
	n.pump()
	// Now node 1 wants to reach 4: node 2 (or 1's own table) can answer
	// without the RREQ reaching 4. Count RREQ receptions at node 4.
	before := n.routers[4].Discoveries
	n.routers[1].Send(dataPacket(&n.uids, 1, 4))
	n.pump()
	if len(n.envs[4].Delivered) != 2 {
		t.Fatalf("delivered = %d, want 2", len(n.envs[4].Delivered))
	}
	_ = before
}

func TestLinkFailureInvalidatesAndRediscovers(t *testing.T) {
	n := newNet(chain(3))
	n.routers[0].Send(dataPacket(&n.uids, 0, 3))
	n.pump()
	if len(n.envs[3].Delivered) != 1 {
		t.Fatal("initial delivery failed")
	}

	// Break 1-2: remove adjacency both ways, then have node 1 report a
	// MAC failure for a transit packet.
	n.adj[1] = []packet.NodeID{0}
	n.adj[2] = []packet.NodeID{3}
	transit := dataPacket(&n.uids, 0, 3)
	n.routers[1].LinkFailed(transit, 2)

	if _, _, ok := n.routers[1].RouteTo(3); ok {
		t.Fatal("route via broken link still valid")
	}
	n.pump() // RERR propagates to 0
	if _, _, ok := n.routers[0].RouteTo(3); ok {
		t.Fatal("source still has route via broken link after RERR")
	}
}

func TestSourceLinkFailureRequeuesAndRetries(t *testing.T) {
	// Two-hop network where destination moves away: source MAC reports
	// failure, packet must be buffered and re-discovered via new path.
	adj := map[packet.NodeID][]packet.NodeID{
		0: {1, 2}, 1: {0, 3}, 2: {0, 3}, 3: {1, 2},
	}
	n := newNet(adj)
	n.routers[0].Send(dataPacket(&n.uids, 0, 3))
	n.pump()
	if len(n.envs[3].Delivered) != 1 {
		t.Fatal("initial delivery failed")
	}
	next1, _, _ := n.routers[0].RouteTo(3)

	// Break the link used; keep the alternative.
	if next1 == 1 {
		n.adj[0] = []packet.NodeID{2}
		n.adj[1] = []packet.NodeID{3}
	} else {
		n.adj[0] = []packet.NodeID{1}
		n.adj[2] = []packet.NodeID{3}
	}
	p := dataPacket(&n.uids, 0, 3)
	n.routers[0].LinkFailed(p, next1) // MAC feedback for own packet
	n.pump()

	if len(n.envs[3].Delivered) != 2 {
		t.Fatalf("delivered = %d, want 2 after reroute", len(n.envs[3].Delivered))
	}
	next2, _, ok := n.routers[0].RouteTo(3)
	if !ok || next2 == next1 {
		t.Fatalf("expected different next hop, got %d (ok=%v)", next2, ok)
	}
}

func TestDiscoveryGivesUpAndDropsBuffered(t *testing.T) {
	// Destination 9 does not exist / unreachable.
	n := newNet(chain(2))
	p := dataPacket(&n.uids, 0, 9)
	n.routers[0].Send(p)
	// Let all retries elapse: 1s + 2s + 4s plus slack.
	for i := 0; i < 200; i++ {
		n.pump()
		n.sched.RunUntil(n.sched.Now().Add(100 * sim.Millisecond))
	}
	found := false
	for _, r := range n.envs[0].Dropped {
		if r == "discovery-failed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("buffered packet not dropped after failed discovery: %v", n.envs[0].Dropped)
	}
	// Expanding ring: TTL 1,3,5,7 then NetDiameter plus RREQRetries
	// backed-off full floods = 4 + 1 + 2 attempts.
	if want := uint64(7); n.routers[0].Discoveries != want {
		t.Fatalf("discoveries = %d, want %d", n.routers[0].Discoveries, want)
	}
}

func TestSeqNewerWraparound(t *testing.T) {
	if !routing.SeqNewer(1, 0) {
		t.Fatal("1 should be newer than 0")
	}
	if routing.SeqNewer(0, 1) {
		t.Fatal("0 newer than 1?")
	}
	// Wraparound: 2^31 apart flips the comparison.
	if !routing.SeqNewer(5, 0xFFFFFFFF) {
		t.Fatal("wraparound comparison failed")
	}
}

func TestUpdatePrefersFresherSeq(t *testing.T) {
	sched := sim.NewScheduler()
	var uids packet.UIDSource
	e := routingtest.NewEnv(0, sched, &uids)
	r := New(e, DefaultConfig())

	r.update(5, 1, 3, 10, true)
	// Older seq must not replace.
	r.update(5, 2, 1, 9, true)
	next, hops, _ := r.RouteTo(5)
	if next != 1 || hops != 3 {
		t.Fatalf("stale update accepted: next=%d hops=%d", next, hops)
	}
	// Same seq, shorter path replaces.
	r.update(5, 3, 2, 10, true)
	next, hops, _ = r.RouteTo(5)
	if next != 3 || hops != 2 {
		t.Fatalf("shorter same-seq update rejected: next=%d hops=%d", next, hops)
	}
	// Newer seq always replaces, even if longer.
	r.update(5, 4, 7, 11, true)
	next, hops, _ = r.RouteTo(5)
	if next != 4 || hops != 7 {
		t.Fatalf("fresher update rejected: next=%d hops=%d", next, hops)
	}
}

func TestRouteExpiry(t *testing.T) {
	sched := sim.NewScheduler()
	var uids packet.UIDSource
	e := routingtest.NewEnv(0, sched, &uids)
	r := New(e, DefaultConfig())
	r.update(5, 1, 2, 1, true)
	if _, _, ok := r.RouteTo(5); !ok {
		t.Fatal("fresh route invalid")
	}
	sched.RunUntil(sim.Time(DefaultConfig().ActiveRouteTimeout) + sim.Time(sim.Second))
	if _, _, ok := r.RouteTo(5); ok {
		t.Fatal("expired route still valid")
	}
}

func TestTTLExhaustedDataDropped(t *testing.T) {
	n := newNet(chain(2))
	n.routers[0].Send(dataPacket(&n.uids, 0, 2))
	n.pump()
	p := dataPacket(&n.uids, 0, 2)
	p.TTL = 1
	n.routers[1].Receive(p, 0) // intermediate with TTL 1 must drop
	if len(n.envs[1].Dropped) == 0 || n.envs[1].Dropped[len(n.envs[1].Dropped)-1] != "ttl" {
		t.Fatalf("TTL drop not recorded: %v", n.envs[1].Dropped)
	}
}

func TestSendToSelfDeliversLocally(t *testing.T) {
	n := newNet(chain(1))
	p := dataPacket(&n.uids, 0, 0)
	n.routers[0].Send(p)
	if len(n.envs[0].Delivered) != 1 {
		t.Fatal("self-addressed packet not delivered locally")
	}
}
