// Package aodv implements the Ad hoc On-demand Distance Vector routing
// protocol (Perkins, Royer & Das) as one of the paper's two baselines:
// on-demand route discovery by flooded RREQs, destination sequence numbers
// for loop freedom and freshness, hop-by-hop forwarding tables built by
// RREPs, and broadcast RERRs driven by MAC-layer link-failure feedback.
// Hello beacons are not used — link breakage detection comes from the MAC,
// matching the paper's setup (§III-E).
package aodv

import (
	"mtsim/internal/packet"
	"mtsim/internal/routing"
	"mtsim/internal/sim"
)

// Config holds AODV parameters following draft-ietf-manet-aodv-10 (the
// paper's reference [15]) with ns-2 conventions.
type Config struct {
	ActiveRouteTimeout sim.Duration
	// RREQRetries counts full-diameter attempts after the expanding ring
	// reaches NetDiameter (RREQ_RETRIES in the draft).
	RREQRetries int
	SendBufCap  int
	SendBufAge  sim.Duration
	// AllowIntermediateReply lets intermediate nodes answer RREQs from
	// fresh-enough cached routes (standard AODV behaviour).
	AllowIntermediateReply bool

	// Expanding-ring search (draft §8.4). Disable to flood network-wide
	// immediately (ablation).
	ExpandingRing     bool
	TTLStart          int
	TTLIncrement      int
	TTLThreshold      int
	NetDiameter       int
	NodeTraversalTime sim.Duration
}

// DefaultConfig returns the parameter set used in the experiments
// (draft-10 defaults: TTL_START 1, TTL_INCREMENT 2, TTL_THRESHOLD 7,
// NET_DIAMETER 35, NODE_TRAVERSAL_TIME 40 ms, RREQ_RETRIES 2).
func DefaultConfig() Config {
	return Config{
		ActiveRouteTimeout:     10 * sim.Second,
		RREQRetries:            2,
		SendBufCap:             64,
		SendBufAge:             8 * sim.Second,
		AllowIntermediateReply: true,
		ExpandingRing:          true,
		TTLStart:               1,
		TTLIncrement:           2,
		TTLThreshold:           7,
		NetDiameter:            35,
		NodeTraversalTime:      40 * sim.Millisecond,
	}
}

// ringTraversalTime is the draft's RING_TRAVERSAL_TIME: how long to wait
// for a reply from a TTL-bounded flood (TIMEOUT_BUFFER = 2).
func (c Config) ringTraversalTime(ttl int) sim.Duration {
	return 2 * c.NodeTraversalTime * sim.Duration(ttl+2)
}

// Control packet wire sizes (bytes), matching ns-2's AODV packet formats.
const (
	rreqBytes = 48
	rrepBytes = 44
	rerrBase  = 20
	rerrPer   = 8
)

// RREQ is the route-request header.
type RREQ struct {
	Orig           packet.NodeID
	OrigSeq        uint32
	BID            uint32
	Target         packet.NodeID
	TargetSeq      uint32
	TargetSeqKnown bool
	Hops           int
}

// RREP is the route-reply header, travelling replier → originator.
type RREP struct {
	Orig      packet.NodeID // RREQ originator (discovery requester)
	Target    packet.NodeID // destination the route leads to
	TargetSeq uint32
	Hops      int // distance from the replier to Target
}

// RERR lists destinations that became unreachable through the sender.
type RERR struct {
	Unreachable []Unreachable
}

// Unreachable is one RERR entry.
type Unreachable struct {
	Dst packet.NodeID
	Seq uint32
}

type routeEntry struct {
	next     packet.NodeID
	hops     int
	seq      uint32
	validSeq bool
	valid    bool
	expiry   sim.Time
}

type discovery struct {
	ttl        int // current ring TTL
	fullFloods int // attempts at NetDiameter TTL
	timer      *sim.Event
}

// Router is one node's AODV instance.
type Router struct {
	env   routing.Env
	cfg   Config
	ar    *packet.Arena // the env's packet arena (nil: plain allocation)
	trust routing.TrustOracle // nil: legacy behaviour, bit-for-bit

	seq uint32
	bid uint32

	table   map[packet.NodeID]*routeEntry
	seen    map[rreqKey]bool
	pending map[packet.NodeID]*discovery
	buffer  *routing.SendBuffer

	// mp remembers, per destination, the next hops of route offers that
	// were exactly as fresh and exactly as short as the installed route —
	// the alternatives plain AODV throws away. On link failure a surviving
	// equal-cost next hop repairs the entry in place instead of
	// invalidating it, skipping the RERR and the rediscovery flood.
	// Candidates are NodeIDs, so they never go stale by index; freshness
	// staleness is handled by invalidating the set whenever the installed
	// route's sequence number moves.
	mp *routing.MultiPathTable

	// entryPool recycles routeEntry structs across runs of a reused
	// context (the table is cleared at recycle, not reallocated).
	entryPool []*routeEntry

	// Stats
	Discoveries uint64
	RERRsSent   uint64
	Repairs     uint64 // link failures absorbed by an equal-cost next hop
}

type rreqKey struct {
	orig packet.NodeID
	bid  uint32
}

// recycleKey identifies parked AODV routers in a routing.Recycler.
const recycleKey = "aodv"

// New creates an AODV router bound to env, reusing a recycled instance's
// state (table/seen/pending buckets, entry pool, send-buffer buckets)
// when env carries a routing.Recycler with one parked.
func New(env routing.Env, cfg Config) *Router {
	if rec := routing.RecyclerOf(env); rec != nil {
		if v := rec.Get(recycleKey); v != nil {
			r := v.(*Router)
			r.rebind(env, cfg)
			return r
		}
	}
	ar := routing.ArenaOf(env)
	return &Router{
		env:     env,
		cfg:     cfg,
		ar:      ar,
		trust:   routing.TrustOf(env),
		table:   make(map[packet.NodeID]*routeEntry),
		seen:    make(map[rreqKey]bool),
		pending: make(map[packet.NodeID]*discovery),
		mp:      routing.NewMultiPathTable(env.ID()),
		buffer: routing.NewSendBuffer(env.Scheduler(), cfg.SendBufCap, cfg.SendBufAge, ar,
			func(p *packet.Packet, reason string) { env.NotifyDrop(p, reason) }),
	}
}

// rebind points a recycled (fully reset) router at the next run's
// environment and parameters.
func (r *Router) rebind(env routing.Env, cfg Config) {
	ar := routing.ArenaOf(env)
	r.env, r.cfg, r.ar = env, cfg, ar
	r.trust = routing.TrustOf(env)
	r.mp.Rebind(env.ID())
	r.buffer.Rebind(env.Scheduler(), cfg.SendBufCap, cfg.SendBufAge, ar,
		func(p *packet.Packet, reason string) { env.NotifyDrop(p, reason) })
}

// RecycleInto implements routing.Recyclable: reset all per-run state and
// park the instance. Route entries return to the entry pool; no packets
// are released (the arena's Reset already reclaimed them).
func (r *Router) RecycleInto(rec *routing.Recycler) {
	for dst, e := range r.table {
		*e = routeEntry{}
		r.entryPool = append(r.entryPool, e)
		delete(r.table, dst)
	}
	clear(r.seen)
	clear(r.pending)
	r.buffer.Recycle()
	r.mp.Recycle()
	r.seq, r.bid = 0, 0
	r.Discoveries, r.RERRsSent, r.Repairs = 0, 0, 0
	r.env = nil
	r.trust = nil
	rec.Put(recycleKey, r)
}

// newEntry takes a zeroed routeEntry from the pool, or allocates one.
func (r *Router) newEntry() *routeEntry {
	if n := len(r.entryPool); n > 0 {
		e := r.entryPool[n-1]
		r.entryPool[n-1] = nil
		r.entryPool = r.entryPool[:n-1]
		return e
	}
	return &routeEntry{}
}

// Retire implements routing.Retirer: hand back buffered packets at run end.
func (r *Router) Retire() { r.buffer.Retire() }

// Name implements routing.Protocol.
func (r *Router) Name() string { return "AODV" }

// Start implements routing.Protocol. AODV is purely reactive; nothing to do.
func (r *Router) Start() {}

// route returns a live entry for dst, treating expired entries as invalid.
func (r *Router) route(dst packet.NodeID) *routeEntry {
	e := r.table[dst]
	if e == nil || !e.valid || e.expiry < r.env.Scheduler().Now() {
		return nil
	}
	return e
}

// touch refreshes the lifetime of a route in active use.
func (r *Router) touch(e *routeEntry) {
	exp := r.env.Scheduler().Now().Add(r.cfg.ActiveRouteTimeout)
	if exp > e.expiry {
		e.expiry = exp
	}
}

// update installs or refreshes a route if the new information is fresher
// (higher sequence number) or equally fresh but shorter — the AODV
// loop-freedom rule.
//
// With the trust defence active, an offer through a low-trust neighbour
// is inflated by the neighbour's distrust penalty before it competes, so
// equally fresh routes through clean neighbours win even at more real
// hops. Inflation only ever *increases* this node's stored (and onward
// advertised) distance, so AODV's strictly-decreasing-distance loop
// invariant is preserved.
func (r *Router) update(dst, next packet.NodeID, hops int, seq uint32, validSeq bool) *routeEntry {
	if r.trust != nil {
		hops += int(r.trust.Cost(next) + 0.5)
	}
	e := r.table[dst]
	if e == nil {
		e = r.newEntry()
		r.table[dst] = e
	}
	accept := !e.valid ||
		(validSeq && e.validSeq && routing.SeqNewer(seq, e.seq)) ||
		(validSeq && !e.validSeq) ||
		(validSeq == e.validSeq && seq == e.seq && hops < e.hops) ||
		(!validSeq && !e.validSeq)
	if !accept {
		// A rejected offer that matches the installed route's freshness and
		// length exactly is an equal-cost alternative: remember its next hop
		// for in-place repair when the installed one breaks. Equal sequence
		// number plus equal hop count preserves AODV's distance invariant,
		// so switching to it later cannot form a loop.
		if validSeq && e.validSeq && seq == e.seq && hops == e.hops && next != e.next {
			r.mp.Register(dst, int32(hops), int32(next))
		}
		return e
	}
	// Freshness moved (or the entry was dead): every remembered alternative
	// predates this sequence number and must go. An equally fresh but
	// shorter route keeps the set only notionally — Register's lower cost
	// resets it below.
	if !e.valid || !validSeq || !e.validSeq || seq != e.seq {
		r.mp.InvalidateDst(dst)
	}
	e.next = next
	e.hops = hops
	e.seq = seq
	e.validSeq = validSeq
	e.valid = true
	r.mp.Register(dst, int32(hops), int32(next))
	r.touch(e)
	return e
}

// Send implements routing.Protocol: originate an end-to-end packet.
func (r *Router) Send(p *packet.Packet) {
	if p.Dst == r.env.ID() {
		r.env.DeliverLocal(p, r.env.ID())
		r.ar.Release(p)
		return
	}
	if e := r.route(p.Dst); e != nil {
		r.touch(e)
		r.env.SendMac(p, e.next)
		return
	}
	r.buffer.Push(p.Dst, p)
	r.startDiscovery(p.Dst)
}

func (r *Router) startDiscovery(dst packet.NodeID) {
	if _, busy := r.pending[dst]; busy {
		return
	}
	d := &discovery{ttl: r.initialTTL(dst)}
	r.pending[dst] = d
	r.attempt(dst, d)
}

// initialTTL starts the expanding ring at TTL_START, or at the last known
// hop count plus TTL_INCREMENT when the route just broke (draft §8.4).
func (r *Router) initialTTL(dst packet.NodeID) int {
	if !r.cfg.ExpandingRing {
		return r.cfg.NetDiameter
	}
	ttl := r.cfg.TTLStart
	if e := r.table[dst]; e != nil && e.hops > 0 && e.hops+r.cfg.TTLIncrement < r.cfg.TTLThreshold {
		ttl = e.hops + r.cfg.TTLIncrement
	}
	return ttl
}

func (r *Router) attempt(dst packet.NodeID, d *discovery) {
	r.Discoveries++
	r.seq++
	r.bid++
	h := &RREQ{
		Orig:    r.env.ID(),
		OrigSeq: r.seq,
		BID:     r.bid,
		Target:  dst,
	}
	if e := r.table[dst]; e != nil && e.validSeq {
		h.TargetSeq = e.seq
		h.TargetSeqKnown = true
	}
	p := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindRREQ,
		Size:    rreqBytes,
		Src:     r.env.ID(),
		Dst:     dst,
		TTL:     d.ttl,
		Routing: h,
	})
	r.seen[rreqKey{h.Orig, h.BID}] = true
	r.env.SendMac(p, packet.Broadcast)

	timeout := r.cfg.ringTraversalTime(d.ttl)
	if d.ttl >= r.cfg.NetDiameter {
		// Full-diameter attempts back off exponentially (draft §8.3).
		timeout <<= d.fullFloods
	}
	d.timer = r.env.Scheduler().After(timeout, func() {
		if r.route(dst) != nil {
			delete(r.pending, dst)
			return
		}
		if d.ttl >= r.cfg.NetDiameter {
			d.fullFloods++
			if d.fullFloods > r.cfg.RREQRetries {
				delete(r.pending, dst)
				r.buffer.DropAll(dst)
				return
			}
		} else if d.ttl >= r.cfg.TTLThreshold {
			d.ttl = r.cfg.NetDiameter
		} else {
			d.ttl += r.cfg.TTLIncrement
		}
		r.attempt(dst, d)
	})
}

// Receive implements routing.Protocol.
func (r *Router) Receive(p *packet.Packet, from packet.NodeID) {
	switch p.Kind {
	case packet.KindRREQ:
		r.handleRREQ(p, from)
	case packet.KindRREP:
		r.handleRREP(p, from)
	case packet.KindRERR:
		r.handleRERR(p, from)
	default:
		r.handleData(p, from)
	}
}

func (r *Router) handleRREQ(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*RREQ)
	if h.Orig == r.env.ID() {
		return
	}
	key := rreqKey{h.Orig, h.BID}
	if r.seen[key] {
		// A duplicate copy is not relayed, but it is free topology
		// intelligence: a neighbour rebroadcasting the same flood at the
		// same hop count sits at the same distance from the originator
		// as our installed reverse next hop — an equal-cost alternative
		// under exactly the invariant update's harvest uses. Duplicates
		// are where such alternatives actually surface (the first copy
		// installs the route; later copies arrive via other neighbours),
		// so without this the multipath table would hold only the
		// installed next hop. Offer it to the table only: the route
		// table, relaying decision and RNG streams are untouched.
		if e := r.route(h.Orig); e != nil && e.validSeq &&
			e.seq == h.OrigSeq && e.hops == h.Hops+1 && from != e.next {
			r.mp.Register(h.Orig, int32(e.hops), int32(from))
		}
		return
	}
	r.seen[key] = true

	// Reverse route to the originator through the neighbour we heard.
	r.update(h.Orig, from, h.Hops+1, h.OrigSeq, true)

	if h.Target == r.env.ID() {
		// AODV: the destination ensures its sequence number is at least
		// the one the requester asked about, then replies.
		if h.TargetSeqKnown && routing.SeqNewer(h.TargetSeq, r.seq) {
			r.seq = h.TargetSeq
		}
		r.seq++
		r.sendRREP(h.Orig, r.env.ID(), r.seq, 0, from)
		return
	}

	if r.cfg.AllowIntermediateReply {
		if e := r.route(h.Target); e != nil && e.validSeq &&
			(!h.TargetSeqKnown || !routing.SeqNewer(h.TargetSeq, e.seq)) {
			r.sendRREP(h.Orig, h.Target, e.seq, e.hops, from)
			return
		}
	}

	if p.TTL <= 1 {
		return
	}
	fwd := r.ar.Copy(p, r.env.UIDs())
	fwd.TTL--
	nh := *h
	nh.Hops++
	fwd.Routing = &nh
	// Jitter de-synchronises neighbours that all heard the same copy.
	r.env.SendMacAfter(r.env.RNG().Jitter(routing.MaxBroadcastJitter), fwd, packet.Broadcast)
}

func (r *Router) sendRREP(orig, target packet.NodeID, targetSeq uint32, hops int, via packet.NodeID) {
	h := &RREP{Orig: orig, Target: target, TargetSeq: targetSeq, Hops: hops}
	p := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindRREP,
		Size:    rrepBytes,
		Src:     r.env.ID(),
		Dst:     orig,
		TTL:     routing.DefaultTTL,
		Routing: h,
	})
	r.env.SendMac(p, via)
}

func (r *Router) handleRREP(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*RREP)
	// Forward route to the target through the neighbour that relayed the
	// reply.
	r.update(h.Target, from, h.Hops+1, h.TargetSeq, true)

	if h.Orig == r.env.ID() {
		r.completeDiscovery(h.Target)
		return
	}
	e := r.route(h.Orig)
	if e == nil {
		return // reverse route evaporated; reply is lost
	}
	r.touch(e)
	fwd := r.ar.Copy(p, r.env.UIDs())
	fwd.TTL--
	nh := *h
	nh.Hops++
	fwd.Routing = &nh
	if fwd.TTL > 0 {
		r.env.SendMac(fwd, e.next)
	} else {
		r.ar.Release(fwd)
	}
}

func (r *Router) completeDiscovery(dst packet.NodeID) {
	if d, ok := r.pending[dst]; ok {
		if d.timer != nil {
			r.env.Scheduler().Cancel(d.timer)
		}
		delete(r.pending, dst)
	}
	e := r.route(dst)
	if e == nil {
		return
	}
	for _, q := range r.buffer.Pop(dst) {
		r.touch(e)
		r.env.SendMac(q, e.next)
	}
}

func (r *Router) handleRERR(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*RERR)
	var propagate []Unreachable
	for _, u := range h.Unreachable {
		e := r.table[u.Dst]
		if e != nil && e.valid && e.next == from {
			e.valid = false
			e.seq = u.Seq
			e.validSeq = true
			// The RERR carries a newer sequence number, so every remembered
			// equal-cost next hop for this destination is now stale.
			r.mp.InvalidateDst(u.Dst)
			propagate = append(propagate, u)
		}
	}
	if len(propagate) > 0 {
		r.broadcastRERR(propagate)
	}
}

func (r *Router) broadcastRERR(list []Unreachable) {
	h := &RERR{Unreachable: list}
	p := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindRERR,
		Size:    rerrBase + rerrPer*len(list),
		Src:     r.env.ID(),
		Dst:     packet.Broadcast,
		TTL:     1,
		Routing: h,
	})
	r.RERRsSent++
	r.env.SendMac(p, packet.Broadcast)
}

func (r *Router) handleData(p *packet.Packet, from packet.NodeID) {
	if p.Dst == r.env.ID() {
		r.env.DeliverLocal(p, from)
		return
	}
	if p.TTL <= 1 {
		r.env.NotifyDrop(p, "ttl")
		return
	}
	e := r.route(p.Dst)
	if e == nil {
		// No route at an intermediate node: report back so upstream
		// nodes and the source stop using us.
		r.env.NotifyDrop(p, "no-route")
		r.broadcastRERR([]Unreachable{{Dst: p.Dst, Seq: r.seqFor(p.Dst)}})
		return
	}
	if p.Kind == packet.KindData {
		r.env.NotifyRelay(p)
	}
	r.touch(e)
	// Refresh the reverse route too: ACKs will flow back.
	if re := r.route(p.Src); re != nil {
		r.touch(re)
	}
	fwd := r.ar.Copy(p, r.env.UIDs())
	fwd.TTL--
	r.env.SendMac(fwd, e.next)
}

func (r *Router) seqFor(dst packet.NodeID) uint32 {
	if e := r.table[dst]; e != nil {
		return e.seq + 1
	}
	return 0
}

// LinkFailed implements routing.Protocol: MAC retry exhaustion toward next.
func (r *Router) LinkFailed(p *packet.Packet, next packet.NodeID) {
	// The failed neighbour is no longer a candidate for anything.
	r.mp.DropCandidate(int32(next))
	flow := routing.FlowKey(p)
	var lost []Unreachable
	for dst, e := range r.table {
		if e.valid && e.next == next {
			// Repair in place from a surviving equal-cost next hop: same
			// sequence number, same hop count, so the entry stays exactly as
			// fresh and the distance invariant holds — no RERR, no flood.
			if alt, ok := r.mp.Select(flow, dst); ok {
				e.next = packet.NodeID(alt)
				r.touch(e)
				r.Repairs++
				continue
			}
			e.valid = false
			e.seq++
			e.validSeq = true
			lost = append(lost, Unreachable{Dst: dst, Seq: e.seq})
		}
	}
	r.env.DropQueued(func(_ *packet.Packet, n packet.NodeID) bool { return n == next })

	if len(lost) > 0 {
		r.broadcastRERR(lost)
	}

	// A packet whose route was just repaired in place rides the surviving
	// equal-cost next hop immediately; otherwise a data packet from this
	// very node restarts discovery and transit packets are dropped (no
	// flooding local repair — documented simplification). Ownership of p
	// passed back from the MAC: every branch re-sends, re-buffers or
	// releases it.
	if p.Kind == packet.KindData || p.Kind == packet.KindAck {
		if e := r.route(p.Dst); e != nil {
			// Repaired above: the packet must ride the surviving next hop
			// now — no RREP is coming, so the send buffer would never drain.
			r.touch(e)
			r.env.SendMac(p, e.next)
			return
		}
		if p.Src == r.env.ID() {
			r.buffer.Push(p.Dst, p)
			r.startDiscovery(p.Dst)
			return
		}
		r.env.NotifyDrop(p, "link-failure")
	}
	r.ar.Release(p)
}

// Buffered reports how many data packets are parked in the send buffer
// awaiting discovery (retire-drainage audits).
func (r *Router) Buffered() int { return r.buffer.Size() }

// MultiPath exposes the router's equal-cost table (tests, stats).
func (r *Router) MultiPath() *routing.MultiPathTable { return r.mp }

// RouteTo exposes the current next hop for tests and visualisation.
func (r *Router) RouteTo(dst packet.NodeID) (next packet.NodeID, hops int, ok bool) {
	e := r.route(dst)
	if e == nil {
		return 0, 0, false
	}
	return e.next, e.hops, true
}

var (
	_ routing.Protocol   = (*Router)(nil)
	_ routing.Recyclable = (*Router)(nil)
)
