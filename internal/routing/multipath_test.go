package routing

import (
	"reflect"
	"testing"

	"mtsim/internal/packet"
)

// TestMultiPathSelectDeterministic: two tables bound to the same owner and
// fed the same registration sequence must produce identical selections for
// every (flow, dst) — the hash consumes no RNG stream, so the pick is a
// pure function of (owner, flow, dst, candidate set).
func TestMultiPathSelectDeterministic(t *testing.T) {
	build := func() *MultiPathTable {
		mp := NewMultiPathTable(7)
		for dst := packet.NodeID(1); dst <= 8; dst++ {
			for c := int32(10); c < 14; c++ {
				mp.Register(dst, 3, c)
			}
		}
		return mp
	}
	a, b := build(), build()
	for flow := uint64(0); flow < 64; flow++ {
		for dst := packet.NodeID(1); dst <= 8; dst++ {
			ca, oka := a.Select(flow, dst)
			cb, okb := b.Select(flow, dst)
			if !oka || !okb || ca != cb {
				t.Fatalf("flow %d dst %d: selections diverged: (%d,%v) vs (%d,%v)",
					flow, dst, ca, oka, cb, okb)
			}
		}
	}
	// Re-selecting the same (flow, dst) must be stable over time.
	first, _ := a.Select(5, 3)
	for i := 0; i < 10; i++ {
		if c, _ := a.Select(5, 3); c != first {
			t.Fatalf("selection for a fixed (flow, dst) drifted: %d then %d", first, c)
		}
	}
}

// TestMultiPathSpreadsFlows: with several candidates registered, distinct
// flows must not all collapse onto one member — otherwise the table adds
// bookkeeping without the ECMP fan-out it exists for.
func TestMultiPathSpreadsFlows(t *testing.T) {
	mp := NewMultiPathTable(3)
	for c := int32(0); c < 4; c++ {
		mp.Register(9, 2, c)
	}
	used := map[int32]bool{}
	for flow := uint64(0); flow < 256; flow++ {
		c, ok := mp.Select(flow, 9)
		if !ok {
			t.Fatal("unexpected miss")
		}
		used[c] = true
	}
	if len(used) < 2 {
		t.Fatalf("256 flows all hashed to one candidate of 4: %v", used)
	}
}

// TestMultiPathRegisterCostSemantics: strictly lower cost replaces the
// set, higher cost is ignored, equal cost appends with dedup, and
// registration order is preserved.
func TestMultiPathRegisterCostSemantics(t *testing.T) {
	mp := NewMultiPathTable(1)
	mp.Register(5, 4, 100)
	mp.Register(5, 4, 101)
	mp.Register(5, 4, 100) // duplicate: ignored
	mp.Register(5, 9, 102) // worse cost: ignored
	if cands, cost := mp.Candidates(5); cost != 4 || !reflect.DeepEqual(cands, []int32{100, 101}) {
		t.Fatalf("equal/worse registration wrong: cost %d cands %v", cost, cands)
	}
	mp.Register(5, 2, 103) // better cost: resets the set
	if cands, cost := mp.Candidates(5); cost != 2 || !reflect.DeepEqual(cands, []int32{103}) {
		t.Fatalf("lower-cost reset wrong: cost %d cands %v", cost, cands)
	}
}

// TestMultiPathInvalidation covers the explicit invalidation contract:
// per-destination drops, full drops, and candidate removal on link
// failure, with the stats counters moving accordingly.
func TestMultiPathInvalidation(t *testing.T) {
	mp := NewMultiPathTable(2)
	mp.Register(1, 3, 10)
	mp.Register(1, 3, 11)
	mp.Register(2, 5, 10)
	mp.Register(3, 4, 12)

	mp.InvalidateDst(3)
	if mp.Ready(3) {
		t.Fatal("dst 3 still ready after InvalidateDst")
	}
	if _, ok := mp.Select(0, 3); ok {
		t.Fatal("Select hit an invalidated destination")
	}
	if mp.Misses == 0 {
		t.Fatal("miss not counted")
	}

	// Losing next hop 10 must strip it everywhere: dst 1 survives on its
	// remaining candidate, dst 2 (only candidate 10) disappears entirely.
	mp.DropCandidate(10)
	if cands, _ := mp.Candidates(1); !reflect.DeepEqual(cands, []int32{11}) {
		t.Fatalf("dst 1 after DropCandidate: %v", cands)
	}
	if mp.Ready(2) {
		t.Fatal("dst 2 still ready after its only candidate dropped")
	}
	if mp.Invalidations < 3 {
		t.Fatalf("invalidation counter %d, want >= 3", mp.Invalidations)
	}

	mp.InvalidateAll()
	if mp.Ready(1) {
		t.Fatal("dst 1 still ready after InvalidateAll")
	}
}

// TestMultiPathSelectWhere: the filtered variant keeps hash affinity when
// the first pick passes and walks the set in order when it does not.
func TestMultiPathSelectWhere(t *testing.T) {
	mp := NewMultiPathTable(4)
	for c := int32(20); c < 24; c++ {
		mp.Register(6, 1, c)
	}
	unfiltered, _ := mp.Select(17, 6)
	if c, ok := mp.SelectWhere(17, 6, func(int32) bool { return true }); !ok || c != unfiltered {
		t.Fatalf("permissive SelectWhere diverged from Select: %d vs %d", c, unfiltered)
	}
	// Reject the hashed pick: the walk must land on a different survivor.
	c, ok := mp.SelectWhere(17, 6, func(c int32) bool { return c != unfiltered })
	if !ok || c == unfiltered {
		t.Fatalf("SelectWhere did not walk past a rejected candidate: (%d, %v)", c, ok)
	}
	if _, ok := mp.SelectWhere(17, 6, func(int32) bool { return false }); ok {
		t.Fatal("SelectWhere reported a hit with every candidate rejected")
	}
}

// TestMultiPathRecycleRebind: under the PR 7 contract a recycled table
// rebound to a new owner must be indistinguishable from a freshly built
// one — empty, zeroed stats, and the new owner's hash stream.
func TestMultiPathRecycleRebind(t *testing.T) {
	mp := NewMultiPathTable(11)
	for dst := packet.NodeID(1); dst <= 4; dst++ {
		mp.Register(dst, 2, int32(dst))
		mp.Select(0, dst)
	}
	mp.InvalidateDst(2)
	mp.Recycle()
	mp.Rebind(29)

	if mp.Hits != 0 || mp.Misses != 0 || mp.Invalidations != 0 {
		t.Fatalf("stats survived Recycle: %d/%d/%d", mp.Hits, mp.Misses, mp.Invalidations)
	}
	fresh := NewMultiPathTable(29)
	for dst := packet.NodeID(1); dst <= 4; dst++ {
		if mp.Ready(dst) {
			t.Fatalf("dst %d still ready after Recycle", dst)
		}
		for c := int32(40); c < 44; c++ {
			mp.Register(dst, 1, c)
			fresh.Register(dst, 1, c)
		}
	}
	for flow := uint64(0); flow < 64; flow++ {
		for dst := packet.NodeID(1); dst <= 4; dst++ {
			a, _ := mp.Select(flow, dst)
			b, _ := fresh.Select(flow, dst)
			if a != b {
				t.Fatalf("recycled table diverged from fresh (flow %d dst %d): %d vs %d",
					flow, dst, a, b)
			}
		}
	}
}

// TestMultiPathOwnerChangesStream: different owners must hash the same
// (flow, dst) differently somewhere — otherwise every node in the network
// would make correlated ECMP choices and load would not spread.
func TestMultiPathOwnerChangesStream(t *testing.T) {
	a, b := NewMultiPathTable(1), NewMultiPathTable(2)
	diverged := false
	for flow := uint64(0); flow < 64 && !diverged; flow++ {
		diverged = a.PickIndex(flow, 9, 8) != b.PickIndex(flow, 9, 8)
	}
	if !diverged {
		t.Fatal("owners 1 and 2 produced identical pick streams over 64 flows")
	}
}

// TestPickIndexBounds: the raw primitive must stay in [0, n) for awkward
// inputs (flow 0, huge flows, n = 1).
func TestPickIndexBounds(t *testing.T) {
	mp := NewMultiPathTable(5)
	for _, flow := range []uint64{0, 1, ^uint64(0), 0x9E3779B97F4A7C15} {
		for n := 1; n <= 7; n++ {
			if got := mp.PickIndex(flow, 3, n); got < 0 || got >= n {
				t.Fatalf("PickIndex(%d, 3, %d) = %d out of range", flow, n, got)
			}
		}
	}
}

// TestFlowKey: TCP packets key on the flow id (retransmissions of one
// flow stay pinned together); non-TCP packets fall back to src/dst.
func TestFlowKey(t *testing.T) {
	tcp := &packet.Packet{Src: 1, Dst: 2, TCP: &packet.TCPHeader{Flow: 4}}
	tcpSameFlow := &packet.Packet{Src: 9, Dst: 8, TCP: &packet.TCPHeader{Flow: 4}}
	if FlowKey(tcp) != FlowKey(tcpSameFlow) {
		t.Fatal("same TCP flow keyed differently")
	}
	ctl := &packet.Packet{Src: 1, Dst: 2}
	ctlOther := &packet.Packet{Src: 1, Dst: 3}
	if FlowKey(ctl) == FlowKey(ctlOther) {
		t.Fatal("distinct control src/dst pairs collided")
	}
	tcpOther := &packet.Packet{Src: 1, Dst: 2, TCP: &packet.TCPHeader{Flow: 5}}
	if FlowKey(tcp) == FlowKey(tcpOther) {
		t.Fatal("distinct TCP flows between the same endpoints collided")
	}
}
