// Package routing defines the interface between a node and its routing
// protocol, plus helpers shared by all protocol implementations (send
// buffers for packets awaiting route discovery, sequence-number comparison,
// broadcast jitter conventions).
//
// Three protocols implement Protocol: DSR and AODV (the paper's baselines,
// internal/routing/dsr and internal/routing/aodv) and MTS (the paper's
// contribution, internal/core).
package routing

import (
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// Env is the node-side environment a protocol instance operates in. It is
// implemented by node.Node.
type Env interface {
	// ID returns the host node's address.
	ID() packet.NodeID
	// Scheduler returns the simulation scheduler for timers.
	Scheduler() *sim.Scheduler
	// RNG returns the protocol's random stream (jitter etc.).
	RNG() *sim.RNG
	// UIDs allocates packet UIDs.
	UIDs() *packet.UIDSource
	// SendMac queues p for link-layer transmission to next
	// (packet.Broadcast floods to all neighbours).
	SendMac(p *packet.Packet, next packet.NodeID)
	// SendMacAfter is SendMac deferred by d — the jittered re-broadcast
	// every protocol applies to flooded packets. Ownership of p passes to
	// the environment immediately, so a run that ends before the jitter
	// fires can still account for (and retire) the packet.
	SendMacAfter(d sim.Duration, p *packet.Packet, next packet.NodeID)
	// DropQueued removes packets matching pred from the interface queue,
	// returning the number removed (used after link failures).
	DropQueued(pred func(p *packet.Packet, next packet.NodeID) bool) int
	// DeliverLocal hands a packet that reached its final destination to
	// the transport layer.
	DeliverLocal(p *packet.Packet, from packet.NodeID)
	// NotifyRelay records that this node relayed a data packet (the
	// per-node β counts behind Table I / Figs. 5–7).
	NotifyRelay(p *packet.Packet)
	// NotifyDrop records a data packet dropped by the routing layer
	// (no route, buffer overflow, TTL exhausted).
	NotifyDrop(p *packet.Packet, reason string)
}

// Protocol is a routing protocol instance bound to one node.
type Protocol interface {
	// Name returns the protocol's short name ("DSR", "AODV", "MTS").
	Name() string
	// Start is called once at simulation start, before any traffic.
	Start()
	// Send originates an end-to-end packet from this node.
	Send(p *packet.Packet)
	// Receive handles a packet handed up by the MAC: protocol control, or
	// data to be delivered locally or forwarded.
	Receive(p *packet.Packet, from packet.NodeID)
	// LinkFailed is the MAC's retry-exhaustion feedback for a unicast
	// packet that could not reach next.
	LinkFailed(p *packet.Packet, next packet.NodeID)
}

// ArenaCarrier is implemented by environments that own a packet arena
// (node.Node). Protocols acquire and release packets through the carried
// arena; plain test environments without one fall back to ordinary
// allocation via the nil-arena methods.
type ArenaCarrier interface {
	Arena() *packet.Arena
}

// ArenaOf resolves env's packet arena, or nil when env does not carry one.
func ArenaOf(env Env) *packet.Arena {
	if c, ok := env.(ArenaCarrier); ok {
		return c.Arena()
	}
	return nil
}

// Retirer is implemented by protocols that can hand back packets still in
// their custody (send buffers) when a run ends; the node calls it from
// Retire so the arena's leak accounting closes out.
type Retirer interface {
	Retire()
}

// TrustOracle scores next-hop neighbours from forwarding evidence (the
// trust countermeasure, internal/countermeasure). Protocols consult it at
// path-selection time; a nil oracle means every neighbour is fully
// trusted and selection behaves exactly as before the oracle existed.
type TrustOracle interface {
	// Distrusted reports whether the neighbour's score has fallen below
	// the distrust threshold — paths through it should be avoided when an
	// alternative exists.
	Distrusted(neighbour packet.NodeID) bool
	// Cost returns an additive path-cost penalty for routing through the
	// neighbour: 0 for a fully trusted hop, growing as evidence of
	// dropped traffic accumulates. Deterministic (pure function of the
	// evidence seen so far).
	Cost(neighbour packet.NodeID) float64
}

// TrustCarrier is implemented by environments that carry a trust oracle
// (node.Node when the trust countermeasure is active).
type TrustCarrier interface {
	Trust() TrustOracle
}

// TrustOf resolves env's trust oracle, or nil when env does not carry one
// (the common, undefended case).
func TrustOf(env Env) TrustOracle {
	if c, ok := env.(TrustCarrier); ok {
		return c.Trust()
	}
	return nil
}

// TrustCost scores a complete source route under a trust oracle: its hop
// count plus the oracle's penalty for every intermediate relay (the
// endpoints do not forward). Shared by the source-routed protocols'
// trusted path selection.
func TrustCost(oracle TrustOracle, route []packet.NodeID) float64 {
	cost := float64(len(route))
	if len(route) < 2 {
		return cost
	}
	for _, hop := range route[1 : len(route)-1] {
		cost += oracle.Cost(hop)
	}
	return cost
}

// SeqNewer reports whether sequence number a is fresher than b using
// signed 32-bit wraparound comparison (AODV-style).
func SeqNewer(a, b uint32) bool { return int32(a-b) > 0 }

// MaxBroadcastJitter is the upper bound of the random delay protocols add
// before re-broadcasting flooded packets, avoiding synchronized collisions
// among neighbours that received the same broadcast simultaneously.
const MaxBroadcastJitter = 10 * sim.Millisecond

// DefaultTTL is the initial TTL for originated packets.
const DefaultTTL = 32
