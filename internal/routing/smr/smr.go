// Package smr implements Split Multipath Routing (Lee & Gerla, ICC 2001)
// — the multipath protocol the paper's related-work section (§II) builds
// its motivation on. SMR discovers two maximally disjoint routes per
// destination:
//
//   - intermediate nodes re-broadcast duplicate RREQs that arrived over a
//     different incoming link with a hop count no larger than the first
//     copy (instead of dropping all duplicates), so disjoint route
//     records reach the destination;
//   - the destination replies immediately to the minimum-delay (first)
//     RREQ, then waits a short window, selects the arrived route that is
//     maximally node-disjoint from the first, and sends a second RREP;
//   - the source uses both routes.
//
// Two data-plane modes reproduce the two schemes the paper discusses:
//
//   - ModeSplit (SMR proper): data packets alternate over both routes
//     per packet. Lim et al. (ICC 2003) showed this hurts TCP — the
//     reordering triggers unnecessary congestion control — which is the
//     result the paper cites to argue for MTS's one-active-route design.
//   - ModeBackup (Lim's backup-path scheme): one route is primary, the
//     second is a standby used only after the primary breaks.
package smr

import (
	"mtsim/internal/packet"
	"mtsim/internal/routing"
	"mtsim/internal/sim"
)

// Mode selects the data-plane policy over the two discovered routes.
type Mode int

// Data-plane modes.
const (
	ModeSplit  Mode = iota // alternate packets across both routes (SMR)
	ModeBackup             // primary + standby (Lim's backup scheme)
)

// Config holds SMR parameters.
type Config struct {
	Mode Mode
	// SelectWait is how long the destination collects RREQ copies before
	// choosing the maximally disjoint second route.
	SelectWait       sim.Duration
	DiscoveryRetries int
	DiscoveryTimeout sim.Duration
	SendBufCap       int
	SendBufAge       sim.Duration
}

// DefaultConfig returns SMR defaults (split mode, 100 ms selection window).
func DefaultConfig() Config {
	return Config{
		Mode:             ModeSplit,
		SelectWait:       100 * sim.Millisecond,
		DiscoveryRetries: 3,
		DiscoveryTimeout: sim.Second,
		SendBufCap:       64,
		SendBufAge:       8 * sim.Second,
	}
}

// Control packet sizes (bytes).
const (
	rreqBase = 16
	rrepBase = 16
	rerrSize = 24
	addrSize = 4
)

// RREQ is the SMR route request with its accumulated route record.
type RREQ struct {
	Orig   packet.NodeID
	Target packet.NodeID
	ID     uint32
	Record []packet.NodeID // traversed nodes, starting with Orig
}

// RREP carries one complete route back to the originator.
type RREP struct {
	Route []packet.NodeID // Orig … Target
	Index int             // 0 = first (min delay), 1 = disjoint second
	ID    uint32
}

// RERR reports a broken link to the source of a failed packet.
type RERR struct {
	From, To packet.NodeID
	ID       uint32 // discovery the broken route belonged to
}

// rreqSeen is the per-request forwarding state of an intermediate node.
type rreqSeen struct {
	firstFrom packet.NodeID
	firstHops int
	count     int
}

// collectState is the destination's per-request selection window.
type collectState struct {
	id      uint32
	first   []packet.NodeID
	others  [][]packet.NodeID
	timer   *sim.Event
	replied bool
}

type discovery struct {
	attempts int
	timer    *sim.Event
}

// Router is one node's SMR instance.
type Router struct {
	env   routing.Env
	cfg   Config
	ar    *packet.Arena // the env's packet arena (nil: plain allocation)
	trust routing.TrustOracle // nil: legacy selection, bit-for-bit

	reqID   uint32
	seen    map[seenKey]*rreqSeen
	collect map[packet.NodeID]*collectState // by originator
	pending map[packet.NodeID]*discovery
	buffer  *routing.SendBuffer

	// routes[dst] holds up to two active source routes. The route slices
	// are arena-owned (AcquireRoute) — they are private copies, never
	// shared into routing headers, released exactly once when a route is
	// dropped, its set replaced, or the router retired/recycled. The
	// collectState routes are deliberately NOT arena-owned: the selection
	// window shares them into in-flight RREP headers.
	routes map[packet.NodeID]*routeSet

	// rsPool recycles empty routeSet structs across runs.
	rsPool []*routeSet

	// mp hash-pins flows to a route when a set's primary and standby are
	// equally long (ModeBackup): instead of every flow riding routes[0],
	// each flow sticks to one of the equal-cost pair, halving what a single
	// link failure takes down. Candidates are indices into rs.routes, so
	// every set mutation invalidates that destination. Split mode keeps its
	// per-packet round-robin — alternation is the scheme's defining (and
	// deliberately TCP-hostile) behaviour.
	mp *routing.MultiPathTable

	// Stats
	Discoveries  uint64
	SecondRoutes uint64
	SplitToggles uint64
}

type routeSet struct {
	id     uint32 // discovery the routes belong to
	routes [][]packet.NodeID
	next   int // round-robin pointer (split mode)
}

type seenKey struct {
	orig packet.NodeID
	id   uint32
}

// recycleKey identifies parked SMR routers in a routing.Recycler.
const recycleKey = "smr"

// New creates an SMR router bound to env, reusing a recycled instance's
// state when env carries a routing.Recycler with one parked.
func New(env routing.Env, cfg Config) *Router {
	if rec := routing.RecyclerOf(env); rec != nil {
		if v := rec.Get(recycleKey); v != nil {
			r := v.(*Router)
			r.rebind(env, cfg)
			return r
		}
	}
	ar := routing.ArenaOf(env)
	return &Router{
		env:     env,
		cfg:     cfg,
		ar:      ar,
		trust:   routing.TrustOf(env),
		seen:    make(map[seenKey]*rreqSeen),
		collect: make(map[packet.NodeID]*collectState),
		pending: make(map[packet.NodeID]*discovery),
		routes:  make(map[packet.NodeID]*routeSet),
		mp:      routing.NewMultiPathTable(env.ID()),
		buffer: routing.NewSendBuffer(env.Scheduler(), cfg.SendBufCap, cfg.SendBufAge, ar,
			func(p *packet.Packet, reason string) { env.NotifyDrop(p, reason) }),
	}
}

// rebind points a recycled (fully reset) router at the next run's
// environment and parameters.
func (r *Router) rebind(env routing.Env, cfg Config) {
	ar := routing.ArenaOf(env)
	r.env, r.cfg, r.ar = env, cfg, ar
	r.trust = routing.TrustOf(env)
	r.mp.Rebind(env.ID())
	r.buffer.Rebind(env.Scheduler(), cfg.SendBufCap, cfg.SendBufAge, ar,
		func(p *packet.Packet, reason string) { env.NotifyDrop(p, reason) })
}

// RecycleInto implements routing.Recyclable: reset all per-run state and
// park the instance. Arena-owned route-set buffers are released (the
// route free list survives arena Reset); packets are not (the arena's
// Reset already reclaimed them).
func (r *Router) RecycleInto(rec *routing.Recycler) {
	r.drainRoutes()
	r.buffer.Recycle()
	r.mp.Recycle()
	clear(r.seen)
	clear(r.collect)
	clear(r.pending)
	r.reqID = 0
	r.Discoveries, r.SecondRoutes, r.SplitToggles = 0, 0, 0
	r.env = nil
	r.trust = nil
	rec.Put(recycleKey, r)
}

// drainRoutes releases every route-set buffer to the arena and parks the
// emptied routeSet structs for reuse. Idempotent.
func (r *Router) drainRoutes() {
	for dst, rs := range r.routes {
		r.emptyRouteSet(rs)
		rs.id = 0
		r.rsPool = append(r.rsPool, rs)
		delete(r.routes, dst)
	}
	r.mp.InvalidateAll()
}

// emptyRouteSet releases rs's routes and resets its round-robin pointer.
func (r *Router) emptyRouteSet(rs *routeSet) {
	for i, route := range rs.routes {
		r.ar.ReleaseRoute(route)
		rs.routes[i] = nil
	}
	rs.routes = rs.routes[:0]
	rs.next = 0
}

// newRouteSet takes an empty routeSet from the pool, or allocates one.
func (r *Router) newRouteSet(id uint32) *routeSet {
	if n := len(r.rsPool); n > 0 {
		rs := r.rsPool[n-1]
		r.rsPool[n-1] = nil
		r.rsPool = r.rsPool[:n-1]
		rs.id = id
		return rs
	}
	return &routeSet{id: id}
}

// Retire implements routing.Retirer: hand back buffered packets and the
// route sets' arena-owned buffers at run end.
func (r *Router) Retire() {
	r.buffer.Retire()
	r.drainRoutes()
}

// Name implements routing.Protocol.
func (r *Router) Name() string { return "SMR" }

// Start implements routing.Protocol.
func (r *Router) Start() {}

// Send implements routing.Protocol.
func (r *Router) Send(p *packet.Packet) {
	self := r.env.ID()
	if p.Dst == self {
		r.env.DeliverLocal(p, self)
		r.ar.Release(p)
		return
	}
	if rs := r.routes[p.Dst]; rs != nil && len(rs.routes) > 0 {
		route := r.pickRoute(p.Dst, rs, routing.FlowKey(p))
		r.ar.SetSourceRoute(p, route)
		p.SRIndex = 0
		r.env.SendMac(p, route[1])
		return
	}
	r.buffer.Push(p.Dst, p)
	r.startDiscovery(p.Dst)
}

// pickRoute applies the data-plane mode. In backup mode a pair of equally
// long routes is a genuine equal-cost set, so the flow's hash picks the
// route — each flow stays pinned to one of the two (no reordering), while
// different flows spread across both. An unequal pair keeps strict
// primary/standby semantics.
func (r *Router) pickRoute(dst packet.NodeID, rs *routeSet, flow uint64) []packet.NodeID {
	// Trust defence: both modes collapse to the route with the lowest
	// trust-weighted cost (hop count plus per-relay distrust penalty) —
	// a split that keeps feeding a distrusted relay half the stream would
	// defeat the defence, so trusted selection supersedes alternation.
	if r.trust != nil && len(rs.routes) > 1 {
		best, bestCost := rs.routes[0], routing.TrustCost(r.trust, rs.routes[0])
		for _, route := range rs.routes[1:] {
			if c := routing.TrustCost(r.trust, route); c < bestCost {
				best, bestCost = route, c
			}
		}
		return best
	}
	if r.cfg.Mode == ModeBackup || len(rs.routes) == 1 {
		if len(rs.routes) > 1 && len(rs.routes[1]) == len(rs.routes[0]) {
			if !r.mp.Ready(dst) {
				for i, route := range rs.routes {
					r.mp.Register(dst, int32(len(route)), int32(i))
				}
			}
			if idx, ok := r.mp.Select(flow, dst); ok {
				return rs.routes[idx]
			}
		}
		return rs.routes[0]
	}
	route := rs.routes[rs.next%len(rs.routes)]
	rs.next++
	r.SplitToggles++
	return route
}

func (r *Router) startDiscovery(dst packet.NodeID) {
	if _, busy := r.pending[dst]; busy {
		return
	}
	d := &discovery{}
	r.pending[dst] = d
	r.attempt(dst, d)
}

func (r *Router) attempt(dst packet.NodeID, d *discovery) {
	d.attempts++
	r.Discoveries++
	r.reqID++
	self := r.env.ID()
	h := &RREQ{Orig: self, Target: dst, ID: r.reqID, Record: []packet.NodeID{self}}
	p := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindRREQ,
		Size:    rreqBase + addrSize,
		Src:     self,
		Dst:     dst,
		TTL:     routing.DefaultTTL,
		Routing: h,
	})
	r.seen[seenKey{self, h.ID}] = &rreqSeen{firstFrom: self, count: 1}
	r.env.SendMac(p, packet.Broadcast)

	timeout := r.cfg.DiscoveryTimeout << (d.attempts - 1)
	d.timer = r.env.Scheduler().After(timeout, func() {
		if rs := r.routes[dst]; rs != nil && len(rs.routes) > 0 {
			delete(r.pending, dst)
			return
		}
		if d.attempts >= r.cfg.DiscoveryRetries {
			delete(r.pending, dst)
			r.buffer.DropAll(dst)
			return
		}
		r.attempt(dst, d)
	})
}

// Receive implements routing.Protocol.
func (r *Router) Receive(p *packet.Packet, from packet.NodeID) {
	switch p.Kind {
	case packet.KindRREQ:
		r.handleRREQ(p, from)
	case packet.KindRREP:
		r.handleRREP(p, from)
	case packet.KindRERR:
		r.handleRERR(p, from)
	default:
		r.handleData(p, from)
	}
}

// handleRREQ applies SMR's duplicate-forwarding rule.
func (r *Router) handleRREQ(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*RREQ)
	self := r.env.ID()
	if h.Orig == self {
		return
	}
	for _, n := range h.Record {
		if n == self {
			return
		}
	}
	if h.Target == self {
		r.rreqAtDestination(h)
		return
	}
	key := seenKey{h.Orig, h.ID}
	st := r.seen[key]
	hops := len(h.Record)
	switch {
	case st == nil:
		r.seen[key] = &rreqSeen{firstFrom: from, firstHops: hops, count: 1}
	case from != st.firstFrom && hops <= st.firstHops && st.count < 3:
		// SMR rule: forward duplicates from a different incoming link
		// with no larger hop count (bounded to keep the flood finite).
		st.count++
	default:
		return
	}
	if p.TTL <= 1 {
		return
	}
	fwd := r.ar.Copy(p, r.env.UIDs())
	fwd.TTL--
	nh := &RREQ{Orig: h.Orig, Target: h.Target, ID: h.ID,
		Record: append(packet.CloneRoute(h.Record), self)}
	fwd.Routing = nh
	fwd.Size = rreqBase + addrSize*len(nh.Record)
	r.env.SendMacAfter(r.env.RNG().Jitter(routing.MaxBroadcastJitter), fwd, packet.Broadcast)
}

// rreqAtDestination replies to the first copy immediately and opens the
// selection window for the maximally disjoint second route.
func (r *Router) rreqAtDestination(h *RREQ) {
	self := r.env.ID()
	route := append(packet.CloneRoute(h.Record), self)
	cs := r.collect[h.Orig]
	if cs == nil || cs.id != h.ID {
		if cs != nil && cs.timer != nil {
			r.env.Scheduler().Cancel(cs.timer)
		}
		cs = &collectState{id: h.ID, first: route, replied: true}
		r.collect[h.Orig] = cs
		r.sendRREP(route, 0, h.ID)
		cs.timer = r.env.Scheduler().After(r.cfg.SelectWait, func() {
			cs.timer = nil
			r.selectSecond(h.Orig, cs)
		})
		return
	}
	cs.others = append(cs.others, route)
}

// selectSecond picks the route maximally disjoint from the first (ties:
// shortest, then earliest) and sends the second RREP.
func (r *Router) selectSecond(orig packet.NodeID, cs *collectState) {
	var best []packet.NodeID
	bestOverlap := 1 << 30
	for _, cand := range cs.others {
		ov := overlap(cs.first, cand)
		if ov < bestOverlap || (ov == bestOverlap && best != nil && len(cand) < len(best)) {
			best, bestOverlap = cand, ov
		}
	}
	if best == nil {
		return
	}
	r.SecondRoutes++
	r.sendRREP(best, 1, cs.id)
}

// overlap counts shared intermediate nodes between two routes.
func overlap(a, b []packet.NodeID) int {
	if len(a) < 3 || len(b) < 3 {
		return 0
	}
	set := make(map[packet.NodeID]bool, len(a))
	for _, n := range a[1 : len(a)-1] {
		set[n] = true
	}
	c := 0
	for _, n := range b[1 : len(b)-1] {
		if set[n] {
			c++
		}
	}
	return c
}

func (r *Router) sendRREP(route []packet.NodeID, index int, id uint32) {
	back := reverseRoute(route)
	if len(back) < 2 {
		return
	}
	p := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindRREP,
		Size:    rrepBase + addrSize*len(route),
		Src:     r.env.ID(),
		Dst:     route[0],
		TTL:     routing.DefaultTTL,
		Routing: &RREP{Route: route, Index: index, ID: id},
		SRIndex: 0,
	})
	r.ar.SetSourceRoute(p, back)
	r.env.SendMac(p, back[1])
}

func (r *Router) handleRREP(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*RREP)
	self := r.env.ID()
	if p.Dst != self {
		r.forwardSourceRouted(p)
		return
	}
	dst := h.Route[len(h.Route)-1]
	rs := r.routes[dst]
	if rs == nil {
		rs = r.newRouteSet(h.ID)
		r.routes[dst] = rs
	} else if rs.id != h.ID {
		// A newer discovery supersedes the set: release the stale routes
		// and reuse the struct.
		r.emptyRouteSet(rs)
		rs.id = h.ID
		r.mp.InvalidateDst(dst)
	}
	for _, existing := range rs.routes {
		if equalRoute(existing, h.Route) {
			return
		}
	}
	if len(rs.routes) < 2 {
		rs.routes = append(rs.routes, r.ar.AcquireRoute(h.Route))
		r.mp.InvalidateDst(dst)
	}
	r.completeDiscovery(dst)
}

func (r *Router) completeDiscovery(dst packet.NodeID) {
	if d, ok := r.pending[dst]; ok {
		if d.timer != nil {
			r.env.Scheduler().Cancel(d.timer)
		}
		delete(r.pending, dst)
	}
	rs := r.routes[dst]
	if rs == nil || len(rs.routes) == 0 {
		return
	}
	for _, q := range r.buffer.Pop(dst) {
		route := r.pickRoute(dst, rs, routing.FlowKey(q))
		r.ar.SetSourceRoute(q, route)
		q.SRIndex = 0
		r.env.SendMac(q, route[1])
	}
}

func (r *Router) handleRERR(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*RERR)
	self := r.env.ID()
	r.dropRoutesVia(h.From, h.To)
	if p.Dst == self {
		return
	}
	r.forwardSourceRouted(p)
}

// dropRoutesVia removes routes using the broken link from every route
// set, releasing the dropped buffers back to the arena.
func (r *Router) dropRoutesVia(a, b packet.NodeID) {
	for dst, rs := range r.routes {
		kept := rs.routes[:0]
		for _, route := range rs.routes {
			if containsLink(route, a, b) {
				r.ar.ReleaseRoute(route)
			} else {
				kept = append(kept, route)
			}
		}
		for i := len(kept); i < len(rs.routes); i++ {
			rs.routes[i] = nil
		}
		if len(kept) != len(rs.routes) {
			r.mp.InvalidateDst(dst) // indices shifted (or the set emptied)
		}
		rs.routes = kept
		if len(rs.routes) == 0 {
			rs.next = 0
			rs.id = 0
			r.rsPool = append(r.rsPool, rs)
			delete(r.routes, dst)
		}
	}
}

func (r *Router) handleData(p *packet.Packet, from packet.NodeID) {
	self := r.env.ID()
	if p.Dst == self {
		r.env.DeliverLocal(p, from)
		return
	}
	if p.SourceRoute == nil || p.TTL <= 1 {
		r.env.NotifyDrop(p, "no-source-route")
		return
	}
	if p.Kind == packet.KindData {
		r.env.NotifyRelay(p)
	}
	r.forwardSourceRouted(p)
}

func (r *Router) forwardSourceRouted(p *packet.Packet) {
	self := r.env.ID()
	idx := -1
	for i, n := range p.SourceRoute {
		if n == self {
			idx = i
			break
		}
	}
	if idx < 0 || idx+1 >= len(p.SourceRoute) {
		r.env.NotifyDrop(p, "bad-source-route")
		return
	}
	fwd := r.ar.Copy(p, r.env.UIDs())
	fwd.TTL--
	fwd.SRIndex = idx + 1
	r.env.SendMac(fwd, p.SourceRoute[idx+1])
}

// LinkFailed implements routing.Protocol.
func (r *Router) LinkFailed(p *packet.Packet, next packet.NodeID) {
	self := r.env.ID()
	r.dropRoutesVia(self, next)
	r.env.DropQueued(func(_ *packet.Packet, n packet.NodeID) bool { return n == next })

	if p.Src != self && p.SourceRoute != nil && p.Kind != packet.KindRERR {
		r.sendRERR(p, self, next)
	}
	if p.Kind == packet.KindRERR || p.Kind == packet.KindRREP {
		r.ar.Release(p)
		return
	}
	if p.Src == self {
		// Use the surviving route, or rediscover (SMR re-floods when the
		// route set is exhausted).
		if rs := r.routes[p.Dst]; rs != nil && len(rs.routes) > 0 {
			route := r.pickRoute(p.Dst, rs, routing.FlowKey(p))
			q := r.ar.Copy(p, r.env.UIDs())
			r.ar.SetSourceRoute(q, route)
			q.SRIndex = 0
			r.env.SendMac(q, route[1])
			r.ar.Release(p)
			return
		}
		r.buffer.Push(p.Dst, p)
		r.startDiscovery(p.Dst)
		return
	}
	r.env.NotifyDrop(p, "link-failure")
	r.ar.Release(p)
}

func (r *Router) sendRERR(p *packet.Packet, from, to packet.NodeID) {
	self := r.env.ID()
	idx := -1
	for i, n := range p.SourceRoute {
		if n == self {
			idx = i
			break
		}
	}
	if idx <= 0 {
		return
	}
	back := reverseRoute(p.SourceRoute[:idx+1])
	err := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindRERR,
		Size:    rerrSize,
		Src:     self,
		Dst:     p.Src,
		TTL:     routing.DefaultTTL,
		Routing: &RERR{From: from, To: to},
		SRIndex: 0,
	})
	r.ar.SetSourceRoute(err, back)
	r.env.SendMac(err, back[1])
}

// Buffered reports how many data packets are parked in the send buffer
// awaiting discovery (retire-drainage audits).
func (r *Router) Buffered() int { return r.buffer.Size() }

// MultiPath exposes the router's equal-cost table (tests, stats).
func (r *Router) MultiPath() *routing.MultiPathTable { return r.mp }

// RouteCount returns the number of active routes toward dst (tests).
func (r *Router) RouteCount(dst packet.NodeID) int {
	if rs := r.routes[dst]; rs != nil {
		return len(rs.routes)
	}
	return 0
}

// Routes returns copies of the active routes toward dst (tests).
func (r *Router) Routes(dst packet.NodeID) [][]packet.NodeID {
	rs := r.routes[dst]
	if rs == nil {
		return nil
	}
	out := make([][]packet.NodeID, 0, len(rs.routes))
	for _, route := range rs.routes {
		out = append(out, packet.CloneRoute(route))
	}
	return out
}

func containsLink(r []packet.NodeID, a, b packet.NodeID) bool {
	for i := 0; i+1 < len(r); i++ {
		if (r[i] == a && r[i+1] == b) || (r[i] == b && r[i+1] == a) {
			return true
		}
	}
	return false
}

func equalRoute(a, b []packet.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func reverseRoute(r []packet.NodeID) []packet.NodeID {
	out := make([]packet.NodeID, len(r))
	for i, n := range r {
		out[len(r)-1-i] = n
	}
	return out
}

var (
	_ routing.Protocol   = (*Router)(nil)
	_ routing.Recyclable = (*Router)(nil)
)
