package smr

import (
	"testing"

	"mtsim/internal/packet"
	"mtsim/internal/routing/routingtest"
	"mtsim/internal/sim"
)

// net mirrors the hand-driven harness used by the other protocol tests.
type net struct {
	sched   *sim.Scheduler
	uids    packet.UIDSource
	envs    map[packet.NodeID]*routingtest.Env
	routers map[packet.NodeID]*Router
	adj     map[packet.NodeID][]packet.NodeID
}

func newNet(adj map[packet.NodeID][]packet.NodeID, cfg Config) *net {
	n := &net{
		sched:   sim.NewScheduler(),
		envs:    map[packet.NodeID]*routingtest.Env{},
		routers: map[packet.NodeID]*Router{},
		adj:     adj,
	}
	for id := range adj {
		e := routingtest.NewEnv(id, n.sched, &n.uids)
		n.envs[id] = e
		n.routers[id] = New(e, cfg)
	}
	return n
}

func (n *net) linked(a, b packet.NodeID) bool {
	for _, x := range n.adj[a] {
		if x == b {
			return true
		}
	}
	return false
}

func (n *net) pump(horizon sim.Duration) {
	target := n.sched.Now().Add(horizon)
	for i := 0; i < 100000; i++ {
		n.sched.RunUntil(n.sched.Now().Add(10 * sim.Millisecond))
		moved := false
		for id, e := range n.envs {
			for _, s := range e.TakeOutbox() {
				moved = true
				if s.Next == packet.Broadcast {
					for _, nb := range n.adj[id] {
						n.routers[nb].Receive(s.P, id)
					}
				} else if n.linked(id, s.Next) {
					n.routers[s.Next].Receive(s.P, id)
				} else {
					n.routers[id].LinkFailed(s.P, s.Next)
				}
			}
		}
		if n.sched.Now() >= target && !moved {
			return
		}
	}
}

func dataPacket(u *packet.UIDSource, src, dst packet.NodeID, seq int64) *packet.Packet {
	return &packet.Packet{
		UID: u.Next(), Kind: packet.KindData, Size: 1040,
		Src: src, Dst: dst, TTL: 64,
		TCP: &packet.TCPHeader{Flow: 1, Seq: seq},
	}
}

// diamond: two disjoint 2-hop paths between 0 and 3.
func diamond() map[packet.NodeID][]packet.NodeID {
	return map[packet.NodeID][]packet.NodeID{
		0: {1, 2}, 1: {0, 3}, 2: {0, 3}, 3: {1, 2},
	}
}

func TestDiscoversTwoDisjointRoutes(t *testing.T) {
	n := newNet(diamond(), DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(500 * sim.Millisecond)

	if len(n.envs[3].Delivered) != 1 {
		t.Fatalf("delivered = %d", len(n.envs[3].Delivered))
	}
	routes := n.routers[0].Routes(3)
	if len(routes) != 2 {
		t.Fatalf("routes = %v, want 2", routes)
	}
	if routes[0][1] == routes[1][1] {
		t.Fatalf("routes share first hop: %v", routes)
	}
	if n.routers[3].SecondRoutes != 1 {
		t.Fatalf("second-route selections = %d", n.routers[3].SecondRoutes)
	}
}

func TestSplitModeAlternatesRoutes(t *testing.T) {
	n := newNet(diamond(), DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(500 * sim.Millisecond)
	// Send several packets; both relays must see traffic.
	for i := int64(1); i <= 8; i++ {
		n.routers[0].Send(dataPacket(&n.uids, 0, 3, i))
	}
	n.pump(100 * sim.Millisecond)
	if len(n.envs[1].Relayed) == 0 || len(n.envs[2].Relayed) == 0 {
		t.Fatalf("split mode did not use both relays: %d / %d",
			len(n.envs[1].Relayed), len(n.envs[2].Relayed))
	}
	if len(n.envs[3].Delivered) != 9 {
		t.Fatalf("delivered = %d", len(n.envs[3].Delivered))
	}
}

// TestBackupModePinsFlow: backup mode never alternates a flow across
// routes per packet (the reordering TCP killer split mode exists to
// demonstrate). With an equal-length pair the ECMP hash pins the flow to
// one of the two; the only packet allowed on the other relay is the first
// one, which drained from the send buffer while just one route was known.
func TestBackupModePinsFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeBackup
	n := newNet(diamond(), cfg)
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(500 * sim.Millisecond)
	for i := int64(1); i <= 8; i++ {
		n.routers[0].Send(dataPacket(&n.uids, 0, 3, i))
	}
	n.pump(100 * sim.Millisecond)
	used1, used2 := len(n.envs[1].Relayed), len(n.envs[2].Relayed)
	if min(used1, used2) > 1 {
		t.Fatalf("backup mode alternated one flow across relays: %d / %d", used1, used2)
	}
	if used1+used2 != 9 {
		t.Fatalf("relays = %d, want 9", used1+used2)
	}
}

func TestBackupModeFailsOver(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeBackup
	n := newNet(diamond(), cfg)
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(500 * sim.Millisecond)
	routes := n.routers[0].Routes(3)
	if len(routes) != 2 {
		t.Fatal("setup: want 2 routes")
	}
	primary := routes[0][1]

	// Break the primary link; MAC feedback fails the next packet over it.
	p := dataPacket(&n.uids, 0, 3, 1)
	p.SourceRoute = packet.CloneRoute(routes[0])
	n.routers[0].LinkFailed(p, primary)
	n.pump(100 * sim.Millisecond)

	if got := n.routers[0].RouteCount(3); got != 1 {
		t.Fatalf("routes after failure = %d, want 1", got)
	}
	if len(n.envs[3].Delivered) != 2 {
		t.Fatalf("failed-over packet not delivered: %d", len(n.envs[3].Delivered))
	}
	newRoutes := n.routers[0].Routes(3)
	if newRoutes[0][1] == primary {
		t.Fatal("failover still uses the broken first hop")
	}
}

func TestRediscoverWhenBothRoutesGone(t *testing.T) {
	n := newNet(diamond(), DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 3, 0))
	n.pump(500 * sim.Millisecond)
	before := n.routers[0].Discoveries

	// Kill both routes.
	routes := n.routers[0].Routes(3)
	for _, route := range routes {
		p := dataPacket(&n.uids, 0, 3, 9)
		p.SourceRoute = packet.CloneRoute(route)
		n.routers[0].LinkFailed(p, route[1])
	}
	n.pump(2 * sim.Second)

	if n.routers[0].Discoveries <= before {
		t.Fatal("no rediscovery after losing both routes")
	}
	if len(n.envs[3].Delivered) < 2 {
		t.Fatalf("delivered = %d; rediscovery did not deliver buffered data",
			len(n.envs[3].Delivered))
	}
}

func TestOverlapMetric(t *testing.T) {
	a := []packet.NodeID{0, 1, 2, 9}
	if overlap(a, []packet.NodeID{0, 3, 4, 9}) != 0 {
		t.Fatal("disjoint routes show overlap")
	}
	if overlap(a, []packet.NodeID{0, 1, 5, 9}) != 1 {
		t.Fatal("shared node not counted")
	}
	if overlap(a, []packet.NodeID{0, 2, 1, 9}) != 2 {
		t.Fatal("two shared nodes not counted")
	}
	if overlap([]packet.NodeID{0, 9}, a) != 0 {
		t.Fatal("trivial route overlap")
	}
}

func TestDuplicateForwardingRule(t *testing.T) {
	// Topology where the second RREQ copy arrives at node 2 via a
	// different link with EQUAL hop count: node 2 must forward both.
	//     0 - 1 - 2 - 5
	//      \_ 3 _/
	adj := map[packet.NodeID][]packet.NodeID{
		0: {1, 3}, 1: {0, 2}, 3: {0, 2}, 2: {1, 3, 5}, 5: {2},
	}
	n := newNet(adj, DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 5, 0))
	n.pump(500 * sim.Millisecond)
	if len(n.envs[5].Delivered) != 1 {
		t.Fatalf("delivered = %d", len(n.envs[5].Delivered))
	}
	// Destination 5 hangs off node 2 only, so both discovered routes pass
	// through 2 — but the duplicate-forwarding rule must have let copies
	// through (seen state at 2 recorded more than one copy).
	st := n.routers[2].seen[seenKey{0, 1}]
	if st == nil || st.count < 2 {
		t.Fatalf("duplicate RREQ not forwarded: %+v", st)
	}
}

func TestSendToSelf(t *testing.T) {
	n := newNet(diamond(), DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 0, 0))
	if len(n.envs[0].Delivered) != 1 {
		t.Fatal("self delivery failed")
	}
}
