package routing

import (
	"testing"
	"testing/quick"

	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

func mkPkt(u *packet.UIDSource) *packet.Packet {
	return &packet.Packet{UID: u.Next(), Kind: packet.KindData, Size: 1040}
}

func TestSendBufferPushPop(t *testing.T) {
	sched := sim.NewScheduler()
	var uids packet.UIDSource
	b := NewSendBuffer(sched, 4, 8*sim.Second, nil, nil)
	p1, p2 := mkPkt(&uids), mkPkt(&uids)
	b.Push(5, p1)
	b.Push(5, p2)
	if b.Len(5) != 2 {
		t.Fatalf("len = %d", b.Len(5))
	}
	got := b.Pop(5)
	if len(got) != 2 || got[0] != p1 || got[1] != p2 {
		t.Fatalf("pop = %v", got)
	}
	if b.Len(5) != 0 {
		t.Fatal("buffer not emptied")
	}
}

func TestSendBufferOverflowEvictsOldest(t *testing.T) {
	sched := sim.NewScheduler()
	var uids packet.UIDSource
	var drops []string
	b := NewSendBuffer(sched, 2, 8*sim.Second, nil, func(p *packet.Packet, r string) {
		drops = append(drops, r)
	})
	p1, p2, p3 := mkPkt(&uids), mkPkt(&uids), mkPkt(&uids)
	b.Push(1, p1)
	b.Push(1, p2)
	b.Push(1, p3) // evicts p1
	got := b.Pop(1)
	if len(got) != 2 || got[0] != p2 || got[1] != p3 {
		t.Fatalf("pop after overflow = %v", got)
	}
	if len(drops) != 1 || drops[0] != "sendbuf-overflow" {
		t.Fatalf("drops = %v", drops)
	}
}

func TestSendBufferExpiry(t *testing.T) {
	sched := sim.NewScheduler()
	var uids packet.UIDSource
	var drops int
	b := NewSendBuffer(sched, 8, 2*sim.Second, nil, func(*packet.Packet, string) { drops++ })
	b.Push(1, mkPkt(&uids))
	sched.RunUntil(sim.Time(3 * sim.Second))
	b.Push(1, mkPkt(&uids)) // triggers expiry scan
	got := b.Pop(1)
	if len(got) != 1 {
		t.Fatalf("fresh packets = %d, want 1", len(got))
	}
	if drops != 1 {
		t.Fatalf("expired drops = %d", drops)
	}
}

func TestSendBufferDropAll(t *testing.T) {
	sched := sim.NewScheduler()
	var uids packet.UIDSource
	var drops int
	b := NewSendBuffer(sched, 8, 8*sim.Second, nil, func(*packet.Packet, string) { drops++ })
	b.Push(1, mkPkt(&uids))
	b.Push(1, mkPkt(&uids))
	b.DropAll(1)
	if drops != 2 || b.Len(1) != 0 {
		t.Fatalf("drops=%d len=%d", drops, b.Len(1))
	}
}

func TestSendBufferPerDestinationIsolation(t *testing.T) {
	sched := sim.NewScheduler()
	var uids packet.UIDSource
	b := NewSendBuffer(sched, 2, 8*sim.Second, nil, nil)
	b.Push(1, mkPkt(&uids))
	b.Push(2, mkPkt(&uids))
	b.Push(2, mkPkt(&uids))
	if b.Len(1) != 1 || b.Len(2) != 2 {
		t.Fatalf("lens: %d, %d", b.Len(1), b.Len(2))
	}
	b.DropAll(2)
	if b.Len(1) != 1 {
		t.Fatal("DropAll leaked across destinations")
	}
}

// Property: SeqNewer defines a strict half-plane ordering: for any a!=b
// exactly one of SeqNewer(a,b) / SeqNewer(b,a) holds unless they are
// exactly 2^31 apart.
func TestSeqNewerAntisymmetryProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		if a == b {
			return !SeqNewer(a, b) && !SeqNewer(b, a)
		}
		if a-b == 1<<31 {
			return true // boundary: both directions agree by convention
		}
		return SeqNewer(a, b) != SeqNewer(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeqNewerSuccessorProperty(t *testing.T) {
	f := func(a uint32) bool { return SeqNewer(a+1, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
