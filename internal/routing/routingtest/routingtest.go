// Package routingtest provides a fake routing.Env for white-box protocol
// unit tests: it records MAC sends and local deliveries and lets tests
// shuttle packets between protocol instances by hand, without a radio
// stack. Integration tests over the real PHY/MAC live in internal/scenario.
package routingtest

import (
	"mtsim/internal/packet"
	"mtsim/internal/routing"
	"mtsim/internal/sim"
)

// Sent is one recorded link-layer transmission.
type Sent struct {
	P    *packet.Packet
	Next packet.NodeID
}

// Env is a recording fake of routing.Env.
type Env struct {
	Node  packet.NodeID
	Sched *sim.Scheduler
	Rng   *sim.RNG
	Uids  *packet.UIDSource
	// Pool, when set, is handed to protocols as the environment's packet
	// arena; nil (the default) means plain allocation everywhere.
	Pool *packet.Arena

	Outbox    []Sent
	Delivered []*packet.Packet
	Relayed   []*packet.Packet
	Dropped   []string
}

// NewEnv creates a fake environment for the given node ID. Multiple Envs
// may share a scheduler and UID source to emulate a network.
func NewEnv(id packet.NodeID, sched *sim.Scheduler, uids *packet.UIDSource) *Env {
	return &Env{
		Node:  id,
		Sched: sched,
		Rng:   sim.NewRNG(sim.DeriveSeed(42, "env")).Derive(string(rune(id))),
		Uids:  uids,
	}
}

// ID implements routing.Env.
func (e *Env) ID() packet.NodeID { return e.Node }

// Scheduler implements routing.Env.
func (e *Env) Scheduler() *sim.Scheduler { return e.Sched }

// RNG implements routing.Env.
func (e *Env) RNG() *sim.RNG { return e.Rng }

// UIDs implements routing.Env.
func (e *Env) UIDs() *packet.UIDSource { return e.Uids }

// Arena implements routing.ArenaCarrier.
func (e *Env) Arena() *packet.Arena { return e.Pool }

// SendMac implements routing.Env by recording the transmission.
func (e *Env) SendMac(p *packet.Packet, next packet.NodeID) {
	e.Outbox = append(e.Outbox, Sent{P: p, Next: next})
}

// SendMacAfter implements routing.Env: the send is recorded when the
// shared scheduler reaches now+d.
func (e *Env) SendMacAfter(d sim.Duration, p *packet.Packet, next packet.NodeID) {
	e.Sched.After(d, func() { e.SendMac(p, next) })
}

// DropQueued implements routing.Env (the fake has no queue).
func (e *Env) DropQueued(func(p *packet.Packet, next packet.NodeID) bool) int { return 0 }

// DeliverLocal implements routing.Env.
func (e *Env) DeliverLocal(p *packet.Packet, _ packet.NodeID) {
	e.Delivered = append(e.Delivered, p)
}

// NotifyRelay implements routing.Env.
func (e *Env) NotifyRelay(p *packet.Packet) { e.Relayed = append(e.Relayed, p) }

// NotifyDrop implements routing.Env.
func (e *Env) NotifyDrop(_ *packet.Packet, reason string) {
	e.Dropped = append(e.Dropped, reason)
}

// TakeOutbox returns and clears the recorded transmissions.
func (e *Env) TakeOutbox() []Sent {
	out := e.Outbox
	e.Outbox = nil
	return out
}

var _ routing.Env = (*Env)(nil)
