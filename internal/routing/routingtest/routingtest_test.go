package routingtest

import (
	"testing"

	"mtsim/internal/packet"
	"mtsim/internal/routing"
	"mtsim/internal/routing/aodv"
	"mtsim/internal/sim"
)

func newTestEnv(t *testing.T) *Env {
	t.Helper()
	sched := sim.NewScheduler()
	uids := &packet.UIDSource{}
	return NewEnv(3, sched, uids)
}

func dataPkt(uids *packet.UIDSource, src, dst packet.NodeID) *packet.Packet {
	return &packet.Packet{
		UID: uids.Next(), Kind: packet.KindData, Size: 1040,
		Src: src, Dst: dst, TTL: routing.DefaultTTL, DataID: 1,
	}
}

func TestEnvIdentity(t *testing.T) {
	sched := sim.NewScheduler()
	uids := &packet.UIDSource{}
	e := NewEnv(7, sched, uids)
	if e.ID() != 7 {
		t.Fatalf("ID = %d, want 7", e.ID())
	}
	if e.Scheduler() != sched {
		t.Fatal("Scheduler not the shared scheduler")
	}
	if e.UIDs() != uids {
		t.Fatal("UIDs not the shared source")
	}
	if e.RNG() == nil {
		t.Fatal("RNG is nil")
	}
	// Envs with the same ID must draw identical streams (reproducible
	// white-box tests); different IDs must diverge.
	same := NewEnv(7, sched, uids)
	other := NewEnv(8, sched, uids)
	a, b, c := e.RNG().Int63(), same.RNG().Int63(), other.RNG().Int63()
	if a != b {
		t.Fatalf("same-ID envs drew %d and %d", a, b)
	}
	if a == c {
		t.Fatal("different-ID envs share a stream")
	}
}

func TestEnvRecordsSends(t *testing.T) {
	e := newTestEnv(t)
	p1 := dataPkt(e.Uids, 3, 9)
	p2 := dataPkt(e.Uids, 3, 9)
	e.SendMac(p1, 5)
	e.SendMac(p2, packet.Broadcast)

	if len(e.Outbox) != 2 {
		t.Fatalf("outbox = %d entries, want 2", len(e.Outbox))
	}
	if e.Outbox[0].P != p1 || e.Outbox[0].Next != 5 {
		t.Fatalf("first send recorded as %+v", e.Outbox[0])
	}
	if e.Outbox[1].Next != packet.Broadcast {
		t.Fatalf("broadcast next recorded as %d", e.Outbox[1].Next)
	}

	taken := e.TakeOutbox()
	if len(taken) != 2 {
		t.Fatalf("TakeOutbox returned %d entries", len(taken))
	}
	if len(e.Outbox) != 0 {
		t.Fatal("TakeOutbox did not clear the outbox")
	}
	if again := e.TakeOutbox(); len(again) != 0 {
		t.Fatal("second TakeOutbox not empty")
	}
}

func TestEnvRecordsDeliveryRelayDrop(t *testing.T) {
	e := newTestEnv(t)
	p := dataPkt(e.Uids, 1, 3)
	e.DeliverLocal(p, 2)
	e.NotifyRelay(p)
	e.NotifyRelay(p)
	e.NotifyDrop(p, "no-route")
	e.NotifyDrop(p, "ttl")

	if len(e.Delivered) != 1 || e.Delivered[0] != p {
		t.Fatalf("delivered = %v", e.Delivered)
	}
	if len(e.Relayed) != 2 {
		t.Fatalf("relayed = %d, want 2", len(e.Relayed))
	}
	if len(e.Dropped) != 2 || e.Dropped[0] != "no-route" || e.Dropped[1] != "ttl" {
		t.Fatalf("dropped = %v", e.Dropped)
	}
}

func TestEnvDropQueuedIsEmpty(t *testing.T) {
	e := newTestEnv(t)
	n := e.DropQueued(func(*packet.Packet, packet.NodeID) bool { return true })
	if n != 0 {
		t.Fatalf("fake queue dropped %d packets", n)
	}
}

// TestEnvDrivesRealProtocol is the integration smoke: a real routing
// protocol bound to the fake env originates a packet with no route and the
// env records the resulting RREQ flood — the workflow every protocol
// white-box test builds on.
func TestEnvDrivesRealProtocol(t *testing.T) {
	e := newTestEnv(t)
	r := aodv.New(e, aodv.DefaultConfig())
	r.Start()
	r.Send(dataPkt(e.Uids, e.Node, 9))
	e.Sched.RunUntil(sim.Time(sim.Second))

	sent := e.TakeOutbox()
	if len(sent) == 0 {
		t.Fatal("no route discovery traffic recorded")
	}
	foundRREQ := false
	for _, s := range sent {
		if s.P.Kind == packet.KindRREQ && s.Next == packet.Broadcast {
			foundRREQ = true
		}
	}
	if !foundRREQ {
		t.Fatalf("no broadcast RREQ among %d sends", len(sent))
	}
}

// The fake must keep satisfying the real interface.
func TestEnvImplementsRoutingEnv(t *testing.T) {
	var _ routing.Env = newTestEnv(t)
}
