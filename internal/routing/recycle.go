package routing

// Recycler is a per-context free list of protocol router instances: the
// control-plane analogue of the packet arena and sim.RNGRecycler. A
// router's per-run state — route tables, seen sets, discovery maps, the
// send buffer's byDst map — is megabytes of map buckets across a large
// scenario, reallocated on every Context re-run without it. Protocols
// that implement Recyclable park themselves here between runs (fully
// reset, holding no packets and no arena-owned routes) and their New
// constructors take a parked instance back instead of allocating.
//
// Instances are keyed by protocol name, so a sweep that alternates
// protocols keeps one pool per protocol. Like the arena, a Recycler
// serves one run at a time and is not safe for concurrent use; each
// sweep worker's scenario.Context owns its own.
type Recycler struct {
	lists map[string][]any
}

// Put parks a reset router instance under key for the next run.
func (r *Recycler) Put(key string, v any) {
	if r.lists == nil {
		r.lists = make(map[string][]any)
	}
	r.lists[key] = append(r.lists[key], v)
}

// Get removes and returns a parked instance for key, or nil if none.
func (r *Recycler) Get(key string) any {
	l := r.lists[key]
	if n := len(l); n > 0 {
		v := l[n-1]
		l[n-1] = nil
		r.lists[key] = l[:n-1]
		return v
	}
	return nil
}

// Len reports the number of parked instances for key (tests/stats).
func (r *Recycler) Len(key string) int { return len(r.lists[key]) }

// RecyclerCarrier is implemented by environments that own a router-state
// recycler (node.Node wired through a reused scenario.Context). Protocol
// constructors resolve it like the arena: present, they rebind a parked
// instance; absent, they allocate fresh state as always.
type RecyclerCarrier interface {
	StateRecycler() *Recycler
}

// RecyclerOf resolves env's recycler, or nil when env does not carry one.
func RecyclerOf(env Env) *Recycler {
	if c, ok := env.(RecyclerCarrier); ok {
		return c.StateRecycler()
	}
	return nil
}

// Recyclable is implemented by protocols whose per-run state can be
// reclaimed across runs. RecycleInto must leave the instance equivalent
// to a freshly constructed one — maps cleared (buckets kept), counters
// zeroed, arena-owned route buffers released, no packet references — and
// park it in rec. It is called by the owning Context after the run is
// dead (never mid-run), on retired and non-retired scenarios alike, so
// it must not release packets: the arena's Reset has already reclaimed
// the data plane, and a second release would be counted as a double.
type Recyclable interface {
	RecycleInto(rec *Recycler)
}
