package dsr

import (
	"testing"

	"mtsim/internal/packet"
)

// route returns a plain copy for comparisons.
func route(ids ...packet.NodeID) []packet.NodeID { return ids }

func sameRoute(a, b []packet.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCacheEvictionDoesNotAliasSurvivors is the aliasing regression for
// the arena-backed route cache: evicting one cached route releases its
// buffer (which Check mode poisons and the next Add reuses), and a route
// that survives the eviction of its cache neighbour must keep its own
// bytes — any exactly-once violation shows up as a survivor reading
// poison or the newcomer's values.
func TestCacheEvictionDoesNotAliasSurvivors(t *testing.T) {
	ar := packet.NewArena()
	ar.Check = true
	c := newRouteCache(0, 1, 2, ar)

	if !c.Add(route(0, 1, 2)) {
		t.Fatal("add [0 1 2]")
	}
	if !c.Add(route(0, 3, 4)) {
		t.Fatal("add [0 3 4]")
	}
	// A third destination overflows global=2: FIFO evicts [0 1 2], whose
	// poisoned buffer is immediately reacquired for the newcomer.
	if !c.Add(route(0, 5, 6)) {
		t.Fatal("add [0 5 6]")
	}
	if got := c.Get(4); !sameRoute(got, route(0, 3, 4)) {
		t.Fatalf("survivor corrupted by FIFO eviction: Get(4) = %v", got)
	}
	if got := c.Get(6); !sameRoute(got, route(0, 5, 6)) {
		t.Fatalf("newcomer corrupted: Get(6) = %v", got)
	}

	// Replace-worst for dst 6 (perDst=1): the shorter [0 6] releases
	// [0 5 6] in place; the unrelated survivor must again keep its bytes.
	if !c.Add(route(0, 6)) {
		t.Fatal("replace-worst [0 6]")
	}
	if got := c.Get(6); !sameRoute(got, route(0, 6)) {
		t.Fatalf("replace-worst stored wrong route: Get(6) = %v", got)
	}
	if got := c.Get(4); !sameRoute(got, route(0, 3, 4)) {
		t.Fatalf("survivor corrupted by replace-worst: Get(4) = %v", got)
	}

	// RemoveLink releases exactly the routes using the link.
	if removed := c.RemoveLink(0, 3); removed != 1 {
		t.Fatalf("RemoveLink(0,3) removed %d routes, want 1", removed)
	}
	if got := c.Get(6); !sameRoute(got, route(0, 6)) {
		t.Fatalf("survivor corrupted by RemoveLink: Get(6) = %v", got)
	}

	// Drain is idempotent and leaves the cache empty.
	c.Drain()
	c.Drain()
	if c.Len() != 0 {
		t.Fatalf("cache not empty after Drain: %d routes", c.Len())
	}
	if got := c.Get(6); got != nil {
		t.Fatalf("Get after Drain returned %v", got)
	}
}

// TestCacheAddCopiesCallerSlice: Add must copy the candidate path, so a
// caller reusing its scratch buffer (the router's pathBuf) cannot mutate
// cached state afterwards.
func TestCacheAddCopiesCallerSlice(t *testing.T) {
	ar := packet.NewArena()
	c := newRouteCache(0, 4, 16, ar)
	scratch := route(0, 7, 8)
	if !c.Add(scratch) {
		t.Fatal("add scratch")
	}
	scratch[1], scratch[2] = 90, 91 // caller reuses its buffer
	if got := c.Get(8); !sameRoute(got, route(0, 7, 8)) {
		t.Fatalf("cache aliases caller scratch: Get(8) = %v", got)
	}
}
