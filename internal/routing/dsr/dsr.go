// Package dsr implements the Dynamic Source Routing protocol (Johnson &
// Maltz) as the paper's second baseline. Characteristics that matter for
// the paper's comparison and are reproduced here:
//
//   - aggressive route caching with no expiry, including learning routes
//     from forwarded packets and from promiscuously overheard source routes
//     (the MAC tap), which gives DSR its low overhead and low delay at low
//     speeds — and its collapsing delivery rate at high speeds (Fig. 10),
//     when cached routes go stale faster than errors purge them;
//   - replies from cache by intermediate nodes;
//   - source routes carried in every data packet;
//   - route errors unicast back to the source along the failed packet's
//     reversed prefix, plus packet salvaging from the local cache.
package dsr

import (
	"mtsim/internal/packet"
	"mtsim/internal/routing"
	"mtsim/internal/sim"
)

// Config holds DSR parameters.
type Config struct {
	CachePerDst      int
	CacheGlobal      int
	MaxSalvage       uint8
	ReplyFromCache   bool
	Snoop            bool // promiscuous source-route snooping via the MAC tap
	DiscoveryRetries int
	BackoffInit      sim.Duration
	BackoffMax       sim.Duration
	SendBufCap       int
	SendBufAge       sim.Duration
}

// DefaultConfig returns the parameter set used in the experiments.
func DefaultConfig() Config {
	return Config{
		CachePerDst:      4,
		CacheGlobal:      64,
		MaxSalvage:       1,
		ReplyFromCache:   true,
		Snoop:            true,
		DiscoveryRetries: 8,
		BackoffInit:      500 * sim.Millisecond,
		BackoffMax:       10 * sim.Second,
		SendBufCap:       64,
		SendBufAge:       8 * sim.Second,
	}
}

// Control packet wire sizes (bytes): base plus 4 per address in the route.
const (
	rreqBase = 16
	rrepBase = 16
	rerrSize = 24
	addrSize = 4
)

// RREQ is the DSR route-request header with its accumulated route record.
type RREQ struct {
	Orig   packet.NodeID
	Target packet.NodeID
	ID     uint32
	Record []packet.NodeID // nodes traversed so far, starting with Orig
}

// RREP carries a complete route Orig → Target back to the originator.
type RREP struct {
	Route []packet.NodeID
}

// RERR reports a broken link From→To back to the source of the failed
// packet.
type RERR struct {
	From, To packet.NodeID
}

type discovery struct {
	attempts int
	timer    *sim.Event
}

// Router is one node's DSR instance.
type Router struct {
	env   routing.Env
	cfg   Config
	ar    *packet.Arena // the env's packet arena (nil: plain allocation)
	trust routing.TrustOracle // nil: legacy selection, bit-for-bit

	cache   *routeCache
	reqID   uint32
	seen    map[seenKey]bool
	pending map[packet.NodeID]*discovery
	buffer  *routing.SendBuffer

	// pathBuf is scratch for assembling candidate cache routes ([self,
	// tail...]); routeCache.Add copies, so the scratch never escapes.
	pathBuf []packet.NodeID

	// Stats
	Discoveries   uint64
	CacheReplies  uint64
	Salvages      uint64
	SnoopedRoutes uint64
}

type seenKey struct {
	orig packet.NodeID
	id   uint32
}

// recycleKey identifies parked DSR routers in a routing.Recycler.
const recycleKey = "dsr"

// New creates a DSR router bound to env, reusing a recycled instance's
// state (maps, cache storage, send-buffer buckets) when env carries a
// routing.Recycler with one parked.
func New(env routing.Env, cfg Config) *Router {
	if rec := routing.RecyclerOf(env); rec != nil {
		if v := rec.Get(recycleKey); v != nil {
			r := v.(*Router)
			r.rebind(env, cfg)
			return r
		}
	}
	ar := routing.ArenaOf(env)
	return &Router{
		env:     env,
		cfg:     cfg,
		ar:      ar,
		trust:   routing.TrustOf(env),
		cache:   newRouteCache(env.ID(), cfg.CachePerDst, cfg.CacheGlobal, ar),
		seen:    make(map[seenKey]bool),
		pending: make(map[packet.NodeID]*discovery),
		buffer: routing.NewSendBuffer(env.Scheduler(), cfg.SendBufCap, cfg.SendBufAge, ar,
			func(p *packet.Packet, reason string) { env.NotifyDrop(p, reason) }),
	}
}

// rebind points a recycled (fully reset) router at the next run's
// environment and parameters.
func (r *Router) rebind(env routing.Env, cfg Config) {
	ar := routing.ArenaOf(env)
	r.env, r.cfg, r.ar = env, cfg, ar
	r.trust = routing.TrustOf(env)
	r.cache.rebind(env.ID(), cfg.CachePerDst, cfg.CacheGlobal, ar)
	r.buffer.Rebind(env.Scheduler(), cfg.SendBufCap, cfg.SendBufAge, ar,
		func(p *packet.Packet, reason string) { env.NotifyDrop(p, reason) })
}

// RecycleInto implements routing.Recyclable: reset all per-run state and
// park the instance. Packets are not released here (the arena's Reset
// already reclaimed them); the cache's route buffers are, because the
// route free list survives Reset.
func (r *Router) RecycleInto(rec *routing.Recycler) {
	r.cache.Drain()
	r.cache.mp.Recycle()
	r.buffer.Recycle()
	clear(r.seen)
	clear(r.pending)
	r.reqID = 0
	r.pathBuf = r.pathBuf[:0]
	r.Discoveries, r.CacheReplies, r.Salvages, r.SnoopedRoutes = 0, 0, 0, 0
	r.env = nil
	r.trust = nil
	rec.Put(recycleKey, r)
}

// Retire implements routing.Retirer: hand back buffered packets and the
// cache's arena-owned routes at run end.
func (r *Router) Retire() {
	r.buffer.Retire()
	r.cache.Drain()
}

// Name implements routing.Protocol.
func (r *Router) Name() string { return "DSR" }

// Start implements routing.Protocol.
func (r *Router) Start() {}

// Send implements routing.Protocol: originate an end-to-end packet.
func (r *Router) Send(p *packet.Packet) {
	self := r.env.ID()
	if p.Dst == self {
		r.env.DeliverLocal(p, self)
		r.ar.Release(p)
		return
	}
	if route := r.pickRoute(p.Dst, routing.FlowKey(p)); route != nil {
		r.sendAlong(p, route)
		return
	}
	r.buffer.Push(p.Dst, p)
	r.startDiscovery(p.Dst)
}

// pickRoute selects the route for one of this node's own packets: the
// legacy ECMP hash-spread among equal-shortest routes, or — when the
// trust defence is active — the lowest trust-weighted cost route, so
// traffic routes around neighbours observed dropping (wormhole endpoints,
// black/grayholes).
func (r *Router) pickRoute(dst packet.NodeID, flow uint64) []packet.NodeID {
	if r.trust == nil {
		return r.cache.GetForFlow(dst, flow)
	}
	return r.cache.GetTrusted(dst, r.trust)
}

// sendAlong stamps the source route onto p and transmits to the first hop.
func (r *Router) sendAlong(p *packet.Packet, route []packet.NodeID) {
	r.ar.SetSourceRoute(p, route)
	p.SRIndex = 0
	r.env.SendMac(p, route[1])
}

func (r *Router) startDiscovery(dst packet.NodeID) {
	if _, busy := r.pending[dst]; busy {
		return
	}
	d := &discovery{}
	r.pending[dst] = d
	r.attempt(dst, d)
}

func (r *Router) attempt(dst packet.NodeID, d *discovery) {
	d.attempts++
	r.Discoveries++
	r.reqID++
	self := r.env.ID()
	h := &RREQ{Orig: self, Target: dst, ID: r.reqID, Record: []packet.NodeID{self}}
	p := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindRREQ,
		Size:    rreqBase + addrSize,
		Src:     self,
		Dst:     dst,
		TTL:     routing.DefaultTTL,
		Routing: h,
	})
	r.seen[seenKey{self, h.ID}] = true
	r.env.SendMac(p, packet.Broadcast)

	backoff := r.cfg.BackoffInit << (d.attempts - 1)
	if backoff > r.cfg.BackoffMax {
		backoff = r.cfg.BackoffMax
	}
	d.timer = r.env.Scheduler().After(backoff, func() {
		if r.cache.Get(dst) != nil {
			delete(r.pending, dst)
			return
		}
		if d.attempts >= r.cfg.DiscoveryRetries {
			delete(r.pending, dst)
			r.buffer.DropAll(dst)
			return
		}
		r.attempt(dst, d)
	})
}

// completeDiscovery flushes buffered traffic once a route exists.
func (r *Router) completeDiscovery(dst packet.NodeID) {
	if d, ok := r.pending[dst]; ok {
		if d.timer != nil {
			r.env.Scheduler().Cancel(d.timer)
		}
		delete(r.pending, dst)
	}
	if r.cache.Get(dst) == nil {
		return
	}
	// Per-packet lookup: equally short routes spread across the buffered
	// flows instead of all draining down one.
	for _, q := range r.buffer.Pop(dst) {
		r.sendAlong(q, r.pickRoute(dst, routing.FlowKey(q)))
	}
}

// Receive implements routing.Protocol.
func (r *Router) Receive(p *packet.Packet, from packet.NodeID) {
	switch p.Kind {
	case packet.KindRREQ:
		r.handleRREQ(p, from)
	case packet.KindRREP:
		r.handleRREP(p, from)
	case packet.KindRERR:
		r.handleRERR(p, from)
	default:
		r.handleData(p, from)
	}
}

func (r *Router) handleRREQ(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*RREQ)
	self := r.env.ID()
	if h.Orig == self {
		return
	}
	for _, n := range h.Record {
		if n == self {
			return // already on this request's path
		}
	}
	key := seenKey{h.Orig, h.ID}
	if r.seen[key] {
		return
	}
	r.seen[key] = true

	// Learn the reverse route from the accumulated record:
	// [self, prev, ..., n1, orig].
	r.cache.Add(r.scratchSelfPlusReversed(h.Record))

	if h.Target == self {
		route := append(packet.CloneRoute(h.Record), self)
		r.sendRREP(route)
		return
	}

	if r.cfg.ReplyFromCache {
		if cached := r.cache.Get(h.Target); cached != nil {
			prefix := append(packet.CloneRoute(h.Record), self)
			if full := concatenate(prefix, cached); full != nil {
				r.CacheReplies++
				r.sendRREP(full)
				return
			}
		}
	}

	if p.TTL <= 1 {
		return
	}
	fwd := r.ar.Copy(p, r.env.UIDs())
	fwd.TTL--
	nh := &RREQ{Orig: h.Orig, Target: h.Target, ID: h.ID,
		Record: append(packet.CloneRoute(h.Record), self)}
	fwd.Routing = nh
	fwd.Size = rreqBase + addrSize*len(nh.Record)
	r.env.SendMacAfter(r.env.RNG().Jitter(routing.MaxBroadcastJitter), fwd, packet.Broadcast)
}

// sendRREP unicasts a reply carrying the full route back to its origin
// (route[0]) along the reversed route.
func (r *Router) sendRREP(route []packet.NodeID) {
	self := r.env.ID()
	back := reverseRoute(route)
	// Trim the reversed route so it starts at self (the replier may be an
	// intermediate node replying from cache).
	start := -1
	for i, n := range back {
		if n == self {
			start = i
			break
		}
	}
	if start < 0 {
		return
	}
	back = back[start:]
	if len(back) < 2 {
		return
	}
	p := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindRREP,
		Size:    rrepBase + addrSize*len(route),
		Src:     self,
		Dst:     back[len(back)-1],
		TTL:     routing.DefaultTTL,
		Routing: &RREP{Route: route},
		SRIndex: 0,
	})
	r.ar.SetSourceRoute(p, back)
	r.env.SendMac(p, back[1])
}

func (r *Router) handleRREP(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*RREP)
	self := r.env.ID()
	// Every node relaying or receiving a reply learns the carried route
	// segments relative to itself.
	r.learnFromRoute(h.Route)

	if p.Dst == self {
		r.completeDiscovery(h.Route[len(h.Route)-1])
		return
	}
	r.forwardSourceRouted(p)
}

func (r *Router) handleRERR(p *packet.Packet, from packet.NodeID) {
	h := p.Routing.(*RERR)
	r.cache.RemoveLink(h.From, h.To)
	if p.Dst == r.env.ID() {
		return
	}
	r.forwardSourceRouted(p)
}

func (r *Router) handleData(p *packet.Packet, from packet.NodeID) {
	self := r.env.ID()
	if p.Dst == self {
		if p.SourceRoute != nil {
			r.learnFromRoute(p.SourceRoute)
		}
		r.env.DeliverLocal(p, from)
		return
	}
	if p.SourceRoute == nil || p.TTL <= 1 {
		r.env.NotifyDrop(p, "no-source-route")
		return
	}
	if p.Kind == packet.KindData {
		r.env.NotifyRelay(p)
	}
	r.learnFromRoute(p.SourceRoute)
	r.forwardSourceRouted(p)
}

// forwardSourceRouted advances a packet along its embedded route.
func (r *Router) forwardSourceRouted(p *packet.Packet) {
	self := r.env.ID()
	idx := -1
	for i, n := range p.SourceRoute {
		if n == self {
			idx = i
			break
		}
	}
	if idx < 0 || idx+1 >= len(p.SourceRoute) {
		r.env.NotifyDrop(p, "bad-source-route")
		return
	}
	fwd := r.ar.Copy(p, r.env.UIDs())
	fwd.TTL--
	fwd.SRIndex = idx + 1
	r.env.SendMac(fwd, p.SourceRoute[idx+1])
}

// learnFromRoute caches the sub-routes this node can extract from a full
// route it participates in: the suffix ahead of it and the reversed prefix
// behind it.
func (r *Router) learnFromRoute(route []packet.NodeID) {
	self := r.env.ID()
	for i, n := range route {
		if n != self {
			continue
		}
		if i+1 < len(route) {
			r.cache.Add(route[i:]) // Add copies; aliasing the header is fine
		}
		if i > 0 {
			// [self, route[i-1], ..., route[0]] — route[i] is self.
			r.cache.Add(r.scratchSelfPlusReversed(route[:i]))
		}
		return
	}
}

// scratchSelfPlus fills the router's scratch path with [self, tail...].
// Valid until the next scratch call; routeCache.Add copies it.
func (r *Router) scratchSelfPlus(tail []packet.NodeID) []packet.NodeID {
	r.pathBuf = append(r.pathBuf[:0], r.env.ID())
	r.pathBuf = append(r.pathBuf, tail...)
	return r.pathBuf
}

// scratchSelfPlusReversed fills the scratch path with [self, seg reversed].
func (r *Router) scratchSelfPlusReversed(seg []packet.NodeID) []packet.NodeID {
	r.pathBuf = append(r.pathBuf[:0], r.env.ID())
	for i := len(seg) - 1; i >= 0; i-- {
		r.pathBuf = append(r.pathBuf, seg[i])
	}
	return r.pathBuf
}

// TapFrame implements node.FrameTap: promiscuous snooping. An overheard
// source-routed packet tells us the transmitter (a neighbour, since we
// decoded its frame) can reach everything on the remainder of its route —
// and, reversed, everything back to the route's origin.
func (r *Router) TapFrame(f *packet.Frame) {
	if !r.cfg.Snoop || f.Kind != packet.FrameData || f.Payload == nil {
		return
	}
	p := f.Payload
	if p.SourceRoute == nil || f.TxFrom == r.env.ID() || f.TxTo == r.env.ID() {
		return
	}
	route := p.SourceRoute
	txIdx := -1
	for i, n := range route {
		if n == f.TxFrom {
			txIdx = i
			break
		}
	}
	if txIdx < 0 {
		return
	}
	if suffix := route[txIdx:]; len(suffix) >= 2 {
		if r.cache.Add(r.scratchSelfPlus(suffix)) {
			r.SnoopedRoutes++
		}
	}
	if txIdx >= 1 {
		if r.cache.Add(r.scratchSelfPlusReversed(route[:txIdx+1])) {
			r.SnoopedRoutes++
		}
	}
}

// LinkFailed implements routing.Protocol: MAC retry exhaustion toward
// next. Ownership of p passes back from the MAC: every branch re-sends
// it, re-buffers it, or releases it.
func (r *Router) LinkFailed(p *packet.Packet, next packet.NodeID) {
	self := r.env.ID()
	r.cache.RemoveLink(self, next)
	r.env.DropQueued(func(_ *packet.Packet, n packet.NodeID) bool { return n == next })

	// Tell the packet's source about the broken link (unless we are it).
	if p.Src != self && p.SourceRoute != nil {
		r.sendRERR(p, self, next)
	}

	switch {
	case p.Kind == packet.KindRERR, p.Kind == packet.KindRREP:
		r.ar.Release(p) // control packets are not salvaged
	case p.Src == self:
		// Our own packet: retry via another cached route or rediscover.
		// GetForFlow re-hashes over whatever survived RemoveLink, so a flow
		// whose pinned route just broke lands on a surviving equal-cost one.
		if route := r.pickRoute(p.Dst, routing.FlowKey(p)); route != nil {
			r.sendAlong(p, route)
			return
		}
		r.buffer.Push(p.Dst, p)
		r.startDiscovery(p.Dst)
	default:
		r.salvage(p, next)
	}
}

// sendRERR unicasts a route error to p's source along the reversed prefix
// of p's source route.
func (r *Router) sendRERR(p *packet.Packet, from, to packet.NodeID) {
	self := r.env.ID()
	idx := -1
	for i, n := range p.SourceRoute {
		if n == self {
			idx = i
			break
		}
	}
	if idx <= 0 {
		return
	}
	back := reverseRoute(p.SourceRoute[:idx+1])
	err := r.ar.NewPacketFrom(packet.Packet{
		UID:     r.env.UIDs().Next(),
		Kind:    packet.KindRERR,
		Size:    rerrSize,
		Src:     self,
		Dst:     p.Src,
		TTL:     routing.DefaultTTL,
		Routing: &RERR{From: from, To: to},
		SRIndex: 0,
	})
	r.ar.SetSourceRoute(err, back)
	r.env.SendMac(err, back[1])
}

// salvage re-routes a transit packet around a failed link using the local
// cache, bounded by MaxSalvage.
func (r *Router) salvage(p *packet.Packet, failedNext packet.NodeID) {
	if p.Salvage >= r.cfg.MaxSalvage {
		r.env.NotifyDrop(p, "salvage-limit")
		r.ar.Release(p)
		return
	}
	route := r.cache.GetAvoidingLink(p.Dst, r.env.ID(), failedNext)
	if route == nil {
		r.env.NotifyDrop(p, "link-failure")
		r.ar.Release(p)
		return
	}
	r.Salvages++
	fwd := r.ar.Copy(p, r.env.UIDs())
	fwd.Salvage++
	r.ar.SetSourceRoute(fwd, route)
	fwd.SRIndex = 0
	r.env.SendMac(fwd, route[1])
	r.ar.Release(p)
}

// Buffered reports how many data packets are parked in the send buffer
// awaiting discovery (retire-drainage audits).
func (r *Router) Buffered() int { return r.buffer.Size() }

// CacheLen exposes the number of cached routes (tests).
func (r *Router) CacheLen() int { return r.cache.Len() }

// HasRoute reports whether a route to dst is cached (tests).
func (r *Router) HasRoute(dst packet.NodeID) bool { return r.cache.Get(dst) != nil }

// MultiPath exposes the cache's ECMP table (tests, stats harvesting).
func (r *Router) MultiPath() *routing.MultiPathTable { return r.cache.mp }

var (
	_ routing.Protocol   = (*Router)(nil)
	_ routing.Recyclable = (*Router)(nil)
)
