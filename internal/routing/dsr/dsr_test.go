package dsr

import (
	"testing"
	"testing/quick"

	"mtsim/internal/packet"
	"mtsim/internal/routing/routingtest"
	"mtsim/internal/sim"
)

// net mirrors the hand-driven harness used by the AODV tests.
type net struct {
	sched   *sim.Scheduler
	uids    packet.UIDSource
	envs    map[packet.NodeID]*routingtest.Env
	routers map[packet.NodeID]*Router
	adj     map[packet.NodeID][]packet.NodeID
}

func newNet(adj map[packet.NodeID][]packet.NodeID, cfg Config) *net {
	n := &net{
		sched:   sim.NewScheduler(),
		envs:    map[packet.NodeID]*routingtest.Env{},
		routers: map[packet.NodeID]*Router{},
		adj:     adj,
	}
	for id := range adj {
		e := routingtest.NewEnv(id, n.sched, &n.uids)
		n.envs[id] = e
		n.routers[id] = New(e, cfg)
	}
	return n
}

func (n *net) linked(a, b packet.NodeID) bool {
	for _, x := range n.adj[a] {
		if x == b {
			return true
		}
	}
	return false
}

func (n *net) pump() {
	for i := 0; i < 10000; i++ {
		n.sched.RunUntil(n.sched.Now().Add(50 * sim.Millisecond))
		moved := false
		for id, e := range n.envs {
			for _, s := range e.TakeOutbox() {
				moved = true
				if s.Next == packet.Broadcast {
					for _, nb := range n.adj[id] {
						n.routers[nb].Receive(s.P, id)
					}
				} else if n.linked(id, s.Next) {
					n.routers[s.Next].Receive(s.P, id)
				}
			}
		}
		if !moved && n.sched.Len() == 0 {
			return
		}
	}
}

func chain(k int) map[packet.NodeID][]packet.NodeID {
	adj := map[packet.NodeID][]packet.NodeID{}
	for i := 0; i <= k; i++ {
		id := packet.NodeID(i)
		if i > 0 {
			adj[id] = append(adj[id], packet.NodeID(i-1))
		}
		if i < k {
			adj[id] = append(adj[id], packet.NodeID(i+1))
		}
	}
	return adj
}

func dataPacket(u *packet.UIDSource, src, dst packet.NodeID) *packet.Packet {
	return &packet.Packet{
		UID: u.Next(), Kind: packet.KindData, Size: 1040,
		Src: src, Dst: dst, TTL: 64,
		TCP: &packet.TCPHeader{Flow: 1, Seq: 0},
	}
}

func TestDiscoveryAndSourceRoutedDelivery(t *testing.T) {
	n := newNet(chain(4), DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 4))
	n.pump()

	if len(n.envs[4].Delivered) != 1 {
		t.Fatalf("delivered = %d", len(n.envs[4].Delivered))
	}
	got := n.envs[4].Delivered[0]
	want := []packet.NodeID{0, 1, 2, 3, 4}
	if len(got.SourceRoute) != len(want) {
		t.Fatalf("source route = %v", got.SourceRoute)
	}
	for i := range want {
		if got.SourceRoute[i] != want[i] {
			t.Fatalf("source route = %v, want %v", got.SourceRoute, want)
		}
	}
	for _, id := range []packet.NodeID{1, 2, 3} {
		if len(n.envs[id].Relayed) != 1 {
			t.Fatalf("node %d relays = %d", id, len(n.envs[id].Relayed))
		}
	}
}

func TestDestinationLearnsReverseRoute(t *testing.T) {
	n := newNet(chain(3), DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 3))
	n.pump()
	if !n.routers[3].HasRoute(0) {
		t.Fatal("destination has no reverse route for ACK traffic")
	}
	// And it can send without a fresh discovery.
	before := n.routers[3].Discoveries
	n.routers[3].Send(dataPacket(&n.uids, 3, 0))
	n.pump()
	if n.routers[3].Discoveries != before {
		t.Fatal("reverse traffic triggered a discovery despite cached route")
	}
	if len(n.envs[0].Delivered) != 1 {
		t.Fatal("reverse packet not delivered")
	}
}

func TestReplyFromCache(t *testing.T) {
	// Chain 0-1-2-3-4 with a fresh leaf 5 attached to node 1. After the
	// chain has carried traffic, node 1 holds a cached route to 4 and can
	// answer 5's request without the RREQ reaching the destination.
	adj := chain(4)
	adj[5] = []packet.NodeID{1}
	adj[1] = append(adj[1], 5)
	n := newNet(adj, DefaultConfig())
	n.routers[0].Send(dataPacket(&n.uids, 0, 4))
	n.pump()
	if !n.routers[1].HasRoute(4) {
		t.Fatal("intermediate did not learn route from forwarding")
	}
	n.routers[5].Send(dataPacket(&n.uids, 5, 4))
	n.pump()
	if len(n.envs[4].Delivered) != 2 {
		t.Fatalf("delivered = %d", len(n.envs[4].Delivered))
	}
	if !n.routers[5].HasRoute(4) {
		t.Fatal("requester cached nothing")
	}
	cacheReplies := uint64(0)
	for _, r := range n.routers {
		cacheReplies += r.CacheReplies
	}
	if cacheReplies == 0 {
		t.Fatal("no cache reply happened")
	}
}

func TestStaleCacheReplyMisroutesUntilRERR(t *testing.T) {
	// This is the DSR pathology the paper leans on: node 2 holds a stale
	// cached route and hands it out; data following it fails and a RERR
	// must clean up.
	cfg := DefaultConfig()
	n := newNet(chain(4), cfg)
	n.routers[0].Send(dataPacket(&n.uids, 0, 4))
	n.pump()

	// Break link 3-4 *silently* (mobility): caches still contain it.
	n.adj[3] = []packet.NodeID{2}
	n.adj[4] = nil

	// Node 3 reports MAC failure when the next data packet arrives.
	p2 := dataPacket(&n.uids, 0, 4)
	n.routers[0].Send(p2)
	n.pump()
	// The packet reached node 3 and failed there; simulate MAC feedback.
	n.routers[3].LinkFailed(p2, 4)
	n.pump()

	if n.routers[3].HasRoute(4) {
		t.Fatal("node 3 cache still holds broken link")
	}
	if n.routers[0].HasRoute(4) {
		t.Fatal("source cache not cleaned by RERR")
	}
}

func TestSalvageUsesAlternateRoute(t *testing.T) {
	// Diamond: 0-1-3 and 0-2-3; node 1 can salvage via... actually give
	// node 1 a cached alternate 1-0-2-3? No: salvage must avoid the failed
	// link 1-3. Build: 0-1-3, 1-2, 2-3. Node 1 learns 1-2-3 via a separate
	// exchange, then salvages 0's packet when 1-3 breaks.
	adj := map[packet.NodeID][]packet.NodeID{
		0: {1}, 1: {0, 2, 3}, 2: {1, 3}, 3: {1, 2},
	}
	cfg := DefaultConfig()
	n := newNet(adj, cfg)
	// Prime 1's cache with 1-2-3 (discovery from 1 with link 1-3 down).
	n.adj[1] = []packet.NodeID{0, 2}
	n.adj[3] = []packet.NodeID{2}
	n.routers[1].Send(dataPacket(&n.uids, 1, 3))
	n.pump()
	if !n.routers[1].HasRoute(3) {
		t.Fatal("setup: node 1 lacks route via 2")
	}
	// Restore 1-3, let 0 discover 0-1-3 (shortest wins).
	n.adj[1] = []packet.NodeID{0, 2, 3}
	n.adj[3] = []packet.NodeID{1, 2}
	n.routers[0].Send(dataPacket(&n.uids, 0, 3))
	n.pump()
	delivered := len(n.envs[3].Delivered)

	// Break 1-3 silently; next packet fails at node 1 and is salvaged
	// via 1-2-3.
	n.adj[1] = []packet.NodeID{0, 2}
	n.adj[3] = []packet.NodeID{2}
	p := dataPacket(&n.uids, 0, 3)
	n.routers[0].Send(p)
	n.pump() // p reaches node 1, then its MAC would fail toward 3
	n.routers[1].LinkFailed(p, 3)
	n.pump()

	if len(n.envs[3].Delivered) != delivered+2 {
		t.Fatalf("delivered = %d, want %d (incl. salvaged)", len(n.envs[3].Delivered), delivered+2)
	}
	if n.routers[1].Salvages != 1 {
		t.Fatalf("salvages = %d", n.routers[1].Salvages)
	}
}

func TestSalvageLimit(t *testing.T) {
	sched := sim.NewScheduler()
	var uids packet.UIDSource
	e := routingtest.NewEnv(1, sched, &uids)
	cfg := DefaultConfig()
	r := New(e, cfg)
	// Cache an alternate route so salvage is possible in principle.
	r.cache.Add([]packet.NodeID{1, 2, 3})
	p := dataPacket(&uids, 0, 3)
	p.SourceRoute = []packet.NodeID{0, 1, 5, 3}
	p.Salvage = cfg.MaxSalvage // already at the limit
	r.LinkFailed(p, 5)
	found := false
	for _, reason := range e.Dropped {
		if reason == "salvage-limit" {
			found = true
		}
	}
	if !found {
		t.Fatalf("over-limit salvage not dropped: %v", e.Dropped)
	}
}

func TestSnoopLearnsOverheardRoutes(t *testing.T) {
	sched := sim.NewScheduler()
	var uids packet.UIDSource
	e := routingtest.NewEnv(9, sched, &uids)
	r := New(e, DefaultConfig())
	// Node 9 overhears node 2 forwarding a packet with route 0-1-2-3-4.
	p := dataPacket(&uids, 0, 4)
	p.SourceRoute = []packet.NodeID{0, 1, 2, 3, 4}
	f := &packet.Frame{Kind: packet.FrameData, TxFrom: 2, TxTo: 3, Payload: p}
	r.TapFrame(f)

	if !r.HasRoute(4) {
		t.Fatal("snoop did not learn forward route to 4")
	}
	if !r.HasRoute(0) {
		t.Fatal("snoop did not learn reverse route to 0")
	}
	if r.SnoopedRoutes != 2 {
		t.Fatalf("snooped = %d", r.SnoopedRoutes)
	}
}

func TestSnoopDisabled(t *testing.T) {
	sched := sim.NewScheduler()
	var uids packet.UIDSource
	e := routingtest.NewEnv(9, sched, &uids)
	cfg := DefaultConfig()
	cfg.Snoop = false
	r := New(e, cfg)
	p := dataPacket(&uids, 0, 4)
	p.SourceRoute = []packet.NodeID{0, 1, 2, 3, 4}
	r.TapFrame(&packet.Frame{Kind: packet.FrameData, TxFrom: 2, TxTo: 3, Payload: p})
	if r.CacheLen() != 0 {
		t.Fatal("snooping happened despite cfg.Snoop=false")
	}
}

func TestDiscoveryGivesUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DiscoveryRetries = 2
	n := newNet(chain(1), cfg)
	n.routers[0].Send(dataPacket(&n.uids, 0, 9))
	for i := 0; i < 100; i++ {
		n.pump()
		n.sched.RunUntil(n.sched.Now().Add(200 * sim.Millisecond))
	}
	found := false
	for _, reason := range n.envs[0].Dropped {
		if reason == "discovery-failed" || reason == "sendbuf-timeout" {
			found = true
		}
	}
	if !found {
		t.Fatalf("undeliverable packet never dropped: %v", n.envs[0].Dropped)
	}
}

// --- cache unit tests ---

func TestCacheAddGet(t *testing.T) {
	c := newRouteCache(0, 2, 16, nil)
	if !c.Add([]packet.NodeID{0, 1, 2}) {
		t.Fatal("add failed")
	}
	if c.Add([]packet.NodeID{0, 1, 2}) {
		t.Fatal("duplicate accepted")
	}
	if c.Add([]packet.NodeID{1, 2, 3}) {
		t.Fatal("foreign-origin route accepted")
	}
	if c.Add([]packet.NodeID{0, 1, 1, 2}) {
		t.Fatal("looping route accepted")
	}
	if got := c.Get(2); len(got) != 3 {
		t.Fatalf("get = %v", got)
	}
	if c.Get(9) != nil {
		t.Fatal("phantom route")
	}
}

func TestCacheShortestWins(t *testing.T) {
	c := newRouteCache(0, 4, 16, nil)
	c.Add([]packet.NodeID{0, 1, 2, 3})
	c.Add([]packet.NodeID{0, 4, 3})
	if got := c.Get(3); len(got) != 3 {
		t.Fatalf("shortest = %v", got)
	}
}

func TestCachePerDstReplacement(t *testing.T) {
	c := newRouteCache(0, 2, 16, nil)
	c.Add([]packet.NodeID{0, 1, 2, 3, 9})
	c.Add([]packet.NodeID{0, 4, 5, 9})
	// Full for dst 9; a longer route is rejected…
	if c.Add([]packet.NodeID{0, 1, 2, 3, 4, 5, 9}) {
		t.Fatal("longer route accepted when full")
	}
	// …but a shorter one replaces the longest.
	if !c.Add([]packet.NodeID{0, 6, 9}) {
		t.Fatal("shorter route rejected when full")
	}
	if got := c.Get(9); len(got) != 3 {
		t.Fatalf("get = %v", got)
	}
}

func TestCacheRemoveLink(t *testing.T) {
	c := newRouteCache(0, 4, 16, nil)
	c.Add([]packet.NodeID{0, 1, 2, 3})
	c.Add([]packet.NodeID{0, 4, 3})
	removed := c.RemoveLink(1, 2)
	if removed != 1 {
		t.Fatalf("removed = %d", removed)
	}
	if got := c.Get(3); len(got) != 3 {
		t.Fatalf("surviving route = %v", got)
	}
	// Reverse direction also matches.
	c.Add([]packet.NodeID{0, 2, 1, 5})
	if c.RemoveLink(1, 2) != 1 {
		t.Fatal("reverse link not matched")
	}
}

func TestCacheGetAvoidingLink(t *testing.T) {
	c := newRouteCache(1, 4, 16, nil)
	c.Add([]packet.NodeID{1, 3, 4})
	c.Add([]packet.NodeID{1, 2, 4})
	r := c.GetAvoidingLink(4, 1, 3)
	if r == nil || r[1] != 2 {
		t.Fatalf("avoiding route = %v", r)
	}
	if c.GetAvoidingLink(4, 1, 3) == nil {
		t.Fatal("no route avoiding link")
	}
	c.RemoveLink(1, 2)
	if c.GetAvoidingLink(4, 1, 3) != nil {
		t.Fatal("route via avoided link returned")
	}
}

// Property: concatenate never produces loops and always starts/ends right.
func TestConcatenateProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		prefix := make([]packet.NodeID, 0, len(a))
		for _, v := range a {
			prefix = append(prefix, packet.NodeID(v%16))
		}
		suffix := make([]packet.NodeID, 0, len(b)+1)
		suffix = append(suffix, prefix[len(prefix)-1]) // join point
		for _, v := range b {
			suffix = append(suffix, packet.NodeID(v%16))
		}
		out := concatenate(prefix, suffix)
		if out == nil {
			return true
		}
		if hasLoop(out) {
			return false
		}
		return out[0] == prefix[0] && out[len(out)-1] == suffix[len(suffix)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReverseRouteProperty(t *testing.T) {
	f := func(a []uint8) bool {
		r := make([]packet.NodeID, len(a))
		for i, v := range a {
			r[i] = packet.NodeID(v)
		}
		rr := reverseRoute(reverseRoute(r))
		return equalRoute(r, rr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
