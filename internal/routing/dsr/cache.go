package dsr

import (
	"mtsim/internal/packet"
	"mtsim/internal/routing"
)

// routeCache stores complete source routes (each beginning at the owning
// node) with per-destination and global capacity bounds. Basic DSR routes
// never expire — they live until a route error removes a link they use.
// That is precisely the staleness the paper's Fig. 10 exposes at high
// speeds.
//
// Stored routes live in arena-owned buffers (packet.Arena.AcquireRoute):
// Add copies the candidate path, so callers may pass scratch or slices
// aliasing routing headers, and every eviction — capacity replacement,
// FIFO overflow, RemoveLink, Drain — releases the evicted buffer back to
// the arena exactly once. Cached routes are never shared into routing
// headers (RREPs carry their own freshly built routes), which is what
// makes the mid-run release safe.
type routeCache struct {
	owner  packet.NodeID
	perDst int
	global int
	ar     *packet.Arena // nil: plain allocation, evictions go to the GC
	routes [][]packet.NodeID

	// mp caches, per destination, the indices of all equally short routes
	// so GetForFlow can hash-pick among them without rescanning. Candidates
	// are indices into routes, so any mutation that can shift indices
	// (FIFO eviction, RemoveLink compaction) invalidates everything, and a
	// per-destination mutation (Add) invalidates that destination.
	mp *routing.MultiPathTable
}

func newRouteCache(owner packet.NodeID, perDst, global int, ar *packet.Arena) *routeCache {
	return &routeCache{owner: owner, perDst: perDst, global: global, ar: ar,
		mp: routing.NewMultiPathTable(owner)}
}

// rebind re-parameterises a recycled cache for the next run. The cache
// must be empty (Drain first).
func (c *routeCache) rebind(owner packet.NodeID, perDst, global int, ar *packet.Arena) {
	c.owner, c.perDst, c.global, c.ar = owner, perDst, global, ar
	c.mp.Rebind(owner)
}

// Drain releases every cached route back to the arena and empties the
// cache. Idempotent; called at retire and at context recycling.
func (c *routeCache) Drain() {
	for i, r := range c.routes {
		c.ar.ReleaseRoute(r)
		c.routes[i] = nil
	}
	c.routes = c.routes[:0]
	c.mp.InvalidateAll()
}

// Add caches a full path [owner, ..., dst], copying it into arena-owned
// storage (the caller keeps its slice). Paths with loops, foreign
// origins or trivial length are rejected. Returns true if stored.
func (c *routeCache) Add(path []packet.NodeID) bool {
	if len(path) < 2 || path[0] != c.owner {
		return false
	}
	if hasLoop(path) {
		return false
	}
	dst := path[len(path)-1]
	count := 0
	for _, r := range c.routes {
		if equalRoute(r, path) {
			return false // already cached
		}
		if r[len(r)-1] == dst {
			count++
		}
	}
	if count >= c.perDst {
		// Replace the longest existing route for dst if the new one is
		// shorter; otherwise reject.
		worst, worstLen := -1, len(path)
		for i, r := range c.routes {
			if r[len(r)-1] == dst && len(r) > worstLen {
				worst, worstLen = i, len(r)
			}
		}
		if worst < 0 {
			return false
		}
		c.ar.ReleaseRoute(c.routes[worst])
		c.routes[worst] = c.ar.AcquireRoute(path)
		c.mp.InvalidateDst(dst)
		return true
	}
	if len(c.routes) >= c.global {
		// FIFO eviction of the oldest route shifts every index.
		c.ar.ReleaseRoute(c.routes[0])
		c.routes[0] = nil
		c.routes = c.routes[1:]
		c.mp.InvalidateAll()
	}
	c.routes = append(c.routes, c.ar.AcquireRoute(path))
	c.mp.InvalidateDst(dst)
	return true
}

// Get returns the shortest cached route to dst (nil if none). The returned
// slice must not be mutated or retained across cache mutations by the
// caller — the next Add or RemoveLink may recycle its backing array.
func (c *routeCache) Get(dst packet.NodeID) []packet.NodeID {
	var best []packet.NodeID
	for _, r := range c.routes {
		if r[len(r)-1] == dst && (best == nil || len(r) < len(best)) {
			best = r
		}
	}
	return best
}

// GetForFlow is Get with ECMP spread: when several equally short routes
// to dst are cached, the flow's hash picks one, so each flow sticks to a
// single shortest route while different flows fan out across all of
// them. Registration is lazy — the first lookup after an invalidation
// rescans the cache and registers every equal-shortest index. The
// returned slice obeys Get's aliasing rules.
func (c *routeCache) GetForFlow(dst packet.NodeID, flow uint64) []packet.NodeID {
	if !c.mp.Ready(dst) {
		for i, r := range c.routes {
			if r[len(r)-1] == dst {
				c.mp.Register(dst, int32(len(r)), int32(i))
			}
		}
	}
	idx, ok := c.mp.Select(flow, dst)
	if !ok {
		return nil
	}
	return c.routes[idx]
}

// GetTrusted returns the cached route to dst minimising trust-weighted
// cost: hop count plus the oracle's per-relay distrust penalty summed
// over the route's intermediate nodes. Strictly-first minimum wins, so
// selection is deterministic in cache order. The returned slice obeys
// Get's aliasing rules.
func (c *routeCache) GetTrusted(dst packet.NodeID, oracle routing.TrustOracle) []packet.NodeID {
	var best []packet.NodeID
	bestCost := 0.0
	for _, r := range c.routes {
		if r[len(r)-1] != dst {
			continue
		}
		cost := routing.TrustCost(oracle, r)
		if best == nil || cost < bestCost {
			best, bestCost = r, cost
		}
	}
	return best
}

// GetAvoidingLink returns the shortest route to dst that does not traverse
// the directed link a→b (nor b→a); used for salvaging.
func (c *routeCache) GetAvoidingLink(dst, a, b packet.NodeID) []packet.NodeID {
	var best []packet.NodeID
	for _, r := range c.routes {
		if r[len(r)-1] != dst || containsLink(r, a, b) {
			continue
		}
		if best == nil || len(r) < len(best) {
			best = r
		}
	}
	return best
}

// RemoveLink drops every cached route using the link in either direction
// and returns how many were removed.
func (c *routeCache) RemoveLink(a, b packet.NodeID) int {
	kept := c.routes[:0]
	removed := 0
	for _, r := range c.routes {
		if containsLink(r, a, b) {
			c.ar.ReleaseRoute(r)
			removed++
		} else {
			kept = append(kept, r)
		}
	}
	// Clear the tail so released buffers are not still reachable from the
	// cache's backing array.
	for i := len(kept); i < len(c.routes); i++ {
		c.routes[i] = nil
	}
	c.routes = kept
	if removed > 0 {
		c.mp.InvalidateAll() // compaction shifted the surviving indices
	}
	return removed
}

// Len returns the number of cached routes (tests).
func (c *routeCache) Len() int { return len(c.routes) }

func containsLink(r []packet.NodeID, a, b packet.NodeID) bool {
	for i := 0; i+1 < len(r); i++ {
		if (r[i] == a && r[i+1] == b) || (r[i] == b && r[i+1] == a) {
			return true
		}
	}
	return false
}

func equalRoute(a, b []packet.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hasLoop(r []packet.NodeID) bool {
	seen := make(map[packet.NodeID]bool, len(r))
	for _, n := range r {
		if seen[n] {
			return true
		}
		seen[n] = true
	}
	return false
}

// concatenate joins prefix (ending at x) and suffix (starting at x) into a
// single loop-free route, or nil if the result would contain a loop.
func concatenate(prefix, suffix []packet.NodeID) []packet.NodeID {
	if len(prefix) == 0 || len(suffix) == 0 || prefix[len(prefix)-1] != suffix[0] {
		return nil
	}
	out := make([]packet.NodeID, 0, len(prefix)+len(suffix)-1)
	out = append(out, prefix...)
	out = append(out, suffix[1:]...)
	if hasLoop(out) {
		return nil
	}
	return out
}

// reverseRoute returns a reversed copy.
func reverseRoute(r []packet.NodeID) []packet.NodeID {
	out := make([]packet.NodeID, len(r))
	for i, n := range r {
		out[len(r)-1-i] = n
	}
	return out
}
