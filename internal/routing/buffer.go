package routing

import (
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// SendBuffer holds data packets awaiting route discovery, per destination,
// with a capacity bound and an age limit — the analogue of ns-2's send
// buffer. All three protocols use one. The buffer owns its packets: every
// eviction releases the packet back to the arena after notifying onDrop,
// so protocols cannot forget the release and leak.
type SendBuffer struct {
	cap    int
	maxAge sim.Duration
	sched  *sim.Scheduler
	ar     *packet.Arena
	onDrop func(p *packet.Packet, reason string)

	byDst map[packet.NodeID][]buffered
}

type buffered struct {
	p  *packet.Packet
	at sim.Time
}

// NewSendBuffer creates a buffer holding at most capacity packets per
// destination, each for at most maxAge. ar (may be nil) receives evicted
// packets' storage; onDrop (may be nil) is told about evictions first.
func NewSendBuffer(sched *sim.Scheduler, capacity int, maxAge sim.Duration, ar *packet.Arena, onDrop func(*packet.Packet, string)) *SendBuffer {
	return &SendBuffer{
		cap:    capacity,
		maxAge: maxAge,
		sched:  sched,
		ar:     ar,
		onDrop: onDrop,
		byDst:  make(map[packet.NodeID][]buffered),
	}
}

// Push buffers p for dst, evicting the oldest packet if full.
func (b *SendBuffer) Push(dst packet.NodeID, p *packet.Packet) {
	q := b.byDst[dst]
	q = b.expire(q)
	if len(q) >= b.cap {
		b.drop(q[0].p, "sendbuf-overflow")
		q = q[1:]
	}
	b.byDst[dst] = append(q, buffered{p: p, at: b.sched.Now()})
}

// Pop removes and returns all still-fresh packets buffered for dst.
func (b *SendBuffer) Pop(dst packet.NodeID) []*packet.Packet {
	q := b.expire(b.byDst[dst])
	delete(b.byDst, dst)
	out := make([]*packet.Packet, 0, len(q))
	for _, e := range q {
		out = append(out, e.p)
	}
	return out
}

// DropAll discards everything buffered for dst (discovery given up).
func (b *SendBuffer) DropAll(dst packet.NodeID) {
	for _, e := range b.byDst[dst] {
		b.drop(e.p, "discovery-failed")
	}
	delete(b.byDst, dst)
}

// Retire releases every buffered packet back to the arena and empties the
// buffer. End-of-run accounting only: unlike DropAll it emits no drop
// notifications (the metrics were already gathered).
func (b *SendBuffer) Retire() {
	for dst, q := range b.byDst {
		for _, e := range q {
			b.ar.Release(e.p)
		}
		delete(b.byDst, dst)
	}
}

// Len returns the number of packets buffered for dst.
func (b *SendBuffer) Len(dst packet.NodeID) int { return len(b.byDst[dst]) }

// Size returns the total number of buffered packets across destinations
// (retire-drainage audits).
func (b *SendBuffer) Size() int {
	n := 0
	for _, q := range b.byDst {
		n += len(q)
	}
	return n
}

// Rebind points a recycled buffer at the next run's scheduler, limits,
// arena and drop hook, keeping the byDst map's buckets. The buffer must
// be empty (Retire or Recycle first).
func (b *SendBuffer) Rebind(sched *sim.Scheduler, capacity int, maxAge sim.Duration, ar *packet.Arena, onDrop func(*packet.Packet, string)) {
	b.cap = capacity
	b.maxAge = maxAge
	b.sched = sched
	b.ar = ar
	b.onDrop = onDrop
}

// Recycle empties the buffer without releasing anything: the run is dead
// and the arena's Reset already reclaimed every packet, so releasing
// here would double-count. Retire (mid-lifecycle drainage) releases;
// Recycle (post-mortem state reclamation) only forgets.
func (b *SendBuffer) Recycle() {
	clear(b.byDst)
}

func (b *SendBuffer) expire(q []buffered) []buffered {
	cutoff := b.sched.Now().Add(-b.maxAge)
	i := 0
	for i < len(q) && q[i].at < cutoff {
		b.drop(q[i].p, "sendbuf-timeout")
		i++
	}
	return q[i:]
}

func (b *SendBuffer) drop(p *packet.Packet, reason string) {
	if b.onDrop != nil {
		b.onDrop(p, reason)
	}
	b.ar.Release(p)
}
