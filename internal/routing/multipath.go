package routing

import "mtsim/internal/packet"

// MultiPathTable is an ECMP-style equal-cost next-hop cache. Protocols
// that hold several routes of the same cost to one destination — SMR
// route sets, the DSR route cache, AODV's equally fresh alternate next
// hops, MTS's equally fresh usable paths — register the candidates here
// (keyed by destination) and pick one with a deterministic seeded hash of
// (flow, destination). Hashing pins each flow to one member of the
// equal-cost set without consuming any RNG stream (the seed is a pure
// function of the owning node's ID), spreads different flows across the
// set, and — because the selection is recomputed from whatever candidates
// survive — turns a link failure into a re-hash instead of a
// rediscovery.
//
// Candidates are opaque int32 handles owned by the protocol: route-cache
// indices for DSR/SMR, neighbour NodeIDs for AODV. The table never
// stores routes or packets, so it has no arena interaction; under the PR 7
// Recycler contract the owning router calls Recycle in its RecycleInto
// (buckets and candidate-slice capacity kept, stats zeroed) and Rebind
// when a recycled router is bound to its next run's node.
//
// Invalidation is explicit and the protocol's responsibility: any
// mutation that moves or removes candidates (cache eviction, RemoveLink,
// route install) must call InvalidateDst or InvalidateAll before the next
// Select, or Select would return a stale handle. The table is
// deliberately dumb about this — it cannot know what a handle means.
type MultiPathTable struct {
	seed    uint64
	entries map[packet.NodeID]*mpEntry
	spare   []*mpEntry

	// Stats: Select outcomes and explicit invalidations.
	Hits, Misses, Invalidations uint64
}

type mpEntry struct {
	cost  int32
	cands []int32
}

// NewMultiPathTable returns a table whose hash seed is derived from the
// owning node's ID — deterministic across runs and independent of every
// RNG stream, so attaching or consulting the table can never perturb a
// seeded simulation's random sequences.
func NewMultiPathTable(owner packet.NodeID) *MultiPathTable {
	t := &MultiPathTable{entries: make(map[packet.NodeID]*mpEntry)}
	t.Rebind(owner)
	return t
}

// Rebind re-derives the seed for a new owning node (recycled routers).
// The table must be empty (Recycle first).
func (t *MultiPathTable) Rebind(owner packet.NodeID) {
	t.seed = splitmix64(uint64(uint32(owner)) + 0x6D74732D65636D70) // "mts-ecmp"
}

// Recycle empties the table for the next run, keeping the map's buckets
// and the candidate slices' capacity, and zeroes the stats. Implements
// the router-side share of the routing.Recyclable contract.
func (t *MultiPathTable) Recycle() {
	for dst, e := range t.entries {
		t.park(e)
		delete(t.entries, dst)
	}
	t.Hits, t.Misses, t.Invalidations = 0, 0, 0
}

func (t *MultiPathTable) park(e *mpEntry) {
	e.cost = 0
	e.cands = e.cands[:0]
	t.spare = append(t.spare, e)
}

func (t *MultiPathTable) take() *mpEntry {
	if n := len(t.spare); n > 0 {
		e := t.spare[n-1]
		t.spare[n-1] = nil
		t.spare = t.spare[:n-1]
		return e
	}
	return &mpEntry{}
}

// Ready reports whether dst has a registered candidate set — the
// protocol's cue to (re)register after an invalidation before selecting.
func (t *MultiPathTable) Ready(dst packet.NodeID) bool {
	e := t.entries[dst]
	return e != nil && len(e.cands) > 0
}

// Register adds a candidate for dst at the given cost. A strictly lower
// cost replaces the whole set (ECMP keeps only the minimum), a higher
// cost is ignored, and an equal cost appends unless the candidate is
// already present. Registration order is preserved, so for a fixed
// candidate sequence the set — and therefore every Select — is
// deterministic.
func (t *MultiPathTable) Register(dst packet.NodeID, cost, cand int32) {
	e := t.entries[dst]
	if e == nil {
		e = t.take()
		e.cost = cost
		t.entries[dst] = e
	}
	switch {
	case len(e.cands) == 0:
		e.cost = cost
	case cost > e.cost:
		return
	case cost < e.cost:
		e.cost = cost
		e.cands = e.cands[:0]
	}
	for _, c := range e.cands {
		if c == cand {
			return
		}
	}
	e.cands = append(e.cands, cand)
}

// Select hash-picks one of dst's equal-cost candidates for the flow.
// Reports false (a miss) when dst has no registered candidates.
func (t *MultiPathTable) Select(flow uint64, dst packet.NodeID) (int32, bool) {
	e := t.entries[dst]
	if e == nil || len(e.cands) == 0 {
		t.Misses++
		return 0, false
	}
	t.Hits++
	return e.cands[t.PickIndex(flow, dst, len(e.cands))], true
}

// SelectWhere is Select restricted to candidates accepted by ok: it
// starts at the hash-picked position and walks the set in order until a
// candidate passes, so flows keep their hash affinity whenever their
// first choice is acceptable. Reports false when no candidate passes.
func (t *MultiPathTable) SelectWhere(flow uint64, dst packet.NodeID, ok func(int32) bool) (int32, bool) {
	e := t.entries[dst]
	if e == nil || len(e.cands) == 0 {
		t.Misses++
		return 0, false
	}
	n := len(e.cands)
	start := t.PickIndex(flow, dst, n)
	for i := 0; i < n; i++ {
		if c := e.cands[(start+i)%n]; ok(c) {
			t.Hits++
			return c, true
		}
	}
	t.Misses++
	return 0, false
}

// Candidates returns dst's current equal-cost set and its cost (tests
// and introspection). The slice is the table's own storage — read only,
// valid until the next mutation.
func (t *MultiPathTable) Candidates(dst packet.NodeID) ([]int32, int32) {
	e := t.entries[dst]
	if e == nil {
		return nil, 0
	}
	return e.cands, e.cost
}

// InvalidateDst drops dst's candidate set (route install, per-dst cache
// mutation).
func (t *MultiPathTable) InvalidateDst(dst packet.NodeID) {
	if e := t.entries[dst]; e != nil {
		t.park(e)
		delete(t.entries, dst)
		t.Invalidations++
	}
}

// InvalidateAll drops every candidate set (index-shifting cache
// compaction, eviction).
func (t *MultiPathTable) InvalidateAll() {
	for dst, e := range t.entries {
		t.park(e)
		delete(t.entries, dst)
		t.Invalidations++
	}
}

// DropCandidate removes one candidate from every destination's set
// (a failed next-hop neighbour). Destinations left with no candidates
// are dropped entirely.
func (t *MultiPathTable) DropCandidate(cand int32) {
	for dst, e := range t.entries {
		kept := e.cands[:0]
		for _, c := range e.cands {
			if c != cand {
				kept = append(kept, c)
			}
		}
		if len(kept) != len(e.cands) {
			t.Invalidations++
		}
		e.cands = kept
		if len(e.cands) == 0 {
			t.park(e)
			delete(t.entries, dst)
		}
	}
}

// PickIndex hash-picks an index in [0, n) for (flow, dst) under the
// table's seed — the raw selection primitive for protocols whose
// candidate sets are too volatile to cache (MTS's usable-path sets age
// with the checking clock). Counts neither hit nor miss. n must be > 0.
func (t *MultiPathTable) PickIndex(flow uint64, dst packet.NodeID, n int) int {
	x := t.seed ^ splitmix64(flow*0x9E3779B97F4A7C15) ^ splitmix64(uint64(uint32(dst)))
	return int(splitmix64(x) % uint64(n))
}

// splitmix64 is the finalising mix of the SplitMix64 generator: a cheap,
// well-distributed 64-bit permutation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// FlowKey derives the ECMP flow discriminator for a packet: the TCP flow
// id when the packet carries one, otherwise a mix of source and
// destination, so control traffic still spreads deterministically.
func FlowKey(p *packet.Packet) uint64 {
	if p.TCP != nil {
		return uint64(p.TCP.Flow) + 1
	}
	return uint64(uint32(p.Src))<<32 | uint64(uint32(p.Dst))
}
