// Package phy models the shared wireless medium: a unit-disc radio channel
// with configurable receive and carrier-sense ranges, signal propagation
// delay, half-duplex radios, and a receiver-side collision model.
//
// Model (documented substitution for ns-2's two-ray ground propagation):
//
//   - A frame is decodable by radios within RxRange of the transmitter at
//     the moment transmission starts (positions change negligibly during a
//     frame's ~1 ms airtime).
//   - Radios within CSRange sense energy (physical carrier sense) but
//     cannot decode beyond RxRange.
//   - Two frames overlapping in time at a receiver, both within RxRange,
//     corrupt each other (no capture effect). Energy from the
//     (RxRange, CSRange] ring defers transmitters but does not corrupt.
//   - A radio that is transmitting cannot receive (half duplex).
//   - All receivers of one transmission share a single propagation delay:
//     the distance of the farthest carrier-sensing radio over PropSpeed
//     (so it is still bounded by MaxPropDelay). Per-receiver delays would
//     differ by under 2 µs across a 550 m neighbourhood — an order of
//     magnitude below the 20 µs slot time that quantises every MAC
//     decision — and a common delay lets the channel deliver a whole
//     neighbourhood with two scheduler events instead of 2·k (see
//     "Arrival batching" below and docs/PAPER_MAP.md for the divergence
//     note).
//
// # Arrival batching
//
// Transmit resolves its audience once and records every receiver's view —
// decodability and the forced-corruption verdict — in a pooled per-
// transmission arrival batch. Two scheduler events per transmission (one
// batched first-bit, one batched last-bit) then walk the batch in radio-ID
// order, so the scheduler's heap sees ~k× fewer inserts than the one-
// event-pair-per-receiver scheme this replaces. The reference mode behind
// UseUnbatchedArrivals schedules the historical 2·k individual events over
// the same precomputed batch; because all first-bit events share one
// timestamp and consecutive insertion sequences (and likewise the
// last-bit events), the two modes dispatch in exactly the same order and
// are byte-identical — that equivalence is what the property tests pin.
//
// # Receiver lookup
//
// Transmit resolves its audience through a uniform-grid spatial index
// (geo.Grid) instead of scanning every attached radio, so the cost of one
// transmission scales with the neighbourhood size, not the population. The
// grid holds a position snapshot per radio; snapshots of moving radios are
// refreshed lazily on a coarse epoch chosen so that the possible drift
// since the last refresh stays below a slack margin, and every query is
// inflated by that margin. Candidates returned by the grid are then
// distance-checked against their exact current positions, so the delivered
// receiver set is bit-for-bit identical to a full scan (the linear
// reference path is kept, behind UseLinearScan, for equivalence tests).
package phy

import (
	"cmp"
	"math"
	"slices"

	"mtsim/internal/geo"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// Listener is the MAC-side interface a Radio reports to.
type Listener interface {
	// EnergyUp is called when the number of in-CS-range transmissions
	// rises from zero: the medium became busy.
	EnergyUp()
	// EnergyDown is called when the medium becomes idle again.
	EnergyDown()
	// RxEnd delivers a frame whose last bit has arrived. ok is false if
	// the frame was corrupted by a collision. Every decodable frame is
	// delivered (even corrupted ones) so the MAC can apply EIFS rules.
	RxEnd(f *packet.Frame, ok bool)
}

// Radio is one node's attachment to the channel.
type Radio struct {
	ID  packet.NodeID
	pos func(sim.Time) geo.Point
	lis Listener
	ch  *Channel
	idx int32 // index in ch.radios; doubles as the spatial-grid id

	// maxSpeed bounds how fast the radio can move (m/s); it controls how
	// stale the radio's grid snapshot may become. +Inf means unknown
	// (raw Attach), which forces exact per-transmit snapshot refresh.
	maxSpeed float64

	// Position memo: pos(t) is pure in t for a fixed trajectory, and many
	// queries land on the same timestamp (every receiver check of one
	// transmission), so one evaluation per (radio, time) suffices.
	posKnown bool
	posTime  sim.Time
	posCache geo.Point

	transmitting bool
	energy       int // count of in-CS-range transmissions currently on air

	// current decode in progress (nil if none)
	rx *reception

	// Stats
	FramesSent     uint64
	FramesDecoded  uint64
	FramesCollided uint64
}

type reception struct {
	frame    *packet.Frame
	collided bool
}

// positionAt returns the radio's position at t, memoised per timestamp.
func (r *Radio) positionAt(t sim.Time) geo.Point {
	if !r.posKnown || r.posTime != t {
		r.posCache = r.pos(t)
		r.posTime = t
		r.posKnown = true
	}
	return r.posCache
}

// SetMaxSpeed declares an upper bound on the radio's movement speed in
// m/s. 0 marks the radio stationary (its grid snapshot is never refreshed);
// any finite bound lets the channel refresh snapshots on a coarse epoch
// instead of at every transmission. Radios attach with an unknown (+Inf)
// bound, which is always safe.
func (r *Radio) SetMaxSpeed(v float64) {
	if v < 0 {
		panic("phy: negative max speed")
	}
	r.maxSpeed = v
	r.ch.policyDirty = true
	// Re-snapshot immediately: a radio leaving the movers set (v == 0)
	// would otherwise freeze a stale snapshot while the query slack
	// computed for it drops, silently shrinking its receivable range.
	if r.ch.grid != nil {
		r.ch.grid.Update(r.idx, r.positionAt(r.ch.sched.Now()))
	}
}

// Run implements sim.Task: the radio's transmission-complete event.
func (r *Radio) Run(arg int) {
	if arg == radioTxDone {
		r.transmitting = false
	}
}

const radioTxDone = 0

// Task args for the batched arrival events. Args ≥ unbatchedArgBase encode
// a per-receiver event for the UseUnbatchedArrivals reference mode:
// arg = unbatchedArgBase + 2*index + phase (phase 0 first bit, 1 last bit).
const (
	batchStartArg    = 0
	batchEndArg      = 1
	unbatchedArgBase = 2
)

// batchRx is one receiver's precomputed view inside an arrivalBatch: the
// radio, whether the frame is decodable at its position, and the DropFrame
// verdict. All of it is fixed at transmit time — range is evaluated when
// the first bit leaves the antenna, matching the model note above.
type batchRx struct {
	rcv       *Radio
	decodable bool
	drop      bool
}

// arrivalBatch carries one transmission's whole audience. It is the Task
// behind both delivery modes: batched (two events walk rx in order) and
// unbatched reference (2·len(rx) events index into rx one receiver at a
// time). A batch stays on the channel's in-flight list from Transmit until
// its last-bit delivery has run — or until Reset/Retire drains it — and
// then parks on the free list with its receiver slice's capacity kept.
// Batches reference the frame but never own it; frame release stays with
// the MAC's quarantine (the batch's own lifetime is bounded by
// MaxPropDelay + airtime, inside the quarantine hold).
type arrivalBatch struct {
	ch    *Channel
	frame *packet.Frame
	rx    []batchRx
	live  int // outstanding last-bit events (1 batched, len(rx) unbatched)
	idx   int // position in ch.inflight (swap-remove bookkeeping)
}

// Run implements sim.Task.
func (b *arrivalBatch) Run(arg int) {
	ch := b.ch
	switch arg {
	case batchStartArg:
		for i := range b.rx {
			e := &b.rx[i]
			ch.arriveStart(e.rcv, b.frame, e.decodable, e.drop)
		}
	case batchEndArg:
		for i := range b.rx {
			e := &b.rx[i]
			ch.arriveEnd(e.rcv, b.frame, e.decodable)
		}
		ch.parkBatch(b)
	default:
		i, phase := (arg-unbatchedArgBase)/2, (arg-unbatchedArgBase)%2
		e := &b.rx[i]
		if phase == 0 {
			ch.arriveStart(e.rcv, b.frame, e.decodable, e.drop)
			return
		}
		ch.arriveEnd(e.rcv, b.frame, e.decodable)
		b.live--
		if b.live == 0 {
			ch.parkBatch(b)
		}
	}
}

// Channel is the shared medium connecting all radios.
type Channel struct {
	sched   *sim.Scheduler
	radios  []*Radio
	RxRange float64 // metres, decodable
	CSRange float64 // metres, senseable
	// PropSpeed is the signal propagation speed in metres/second.
	PropSpeed float64
	// DropFrame, when non-nil, is consulted once per decodable receiver at
	// transmit time (when the arrival batch is filled); returning true
	// force-corrupts that delivery. Used by tests to inject losses on
	// specific links.
	DropFrame func(f *packet.Frame, to packet.NodeID) bool

	// Spatial index over radio position snapshots.
	grid        *geo.Grid
	spareGrid   *geo.Grid // previous run's grid, reusable by EnableGrid
	hits        []geo.Hit // reusable WithinRangeHits buffer
	spare       []*Radio  // recycled Radio structs (Reset → Attach)
	movers      []*Radio  // radios whose snapshots go stale (maxSpeed > 0)
	policyDirty bool      // movers/epoch need recomputation
	slackBudget float64   // max tolerated snapshot drift, metres
	slack       float64   // current query-radius inflation
	epoch       sim.Duration
	nextRefresh sim.Time
	exact       bool // refresh every transmit (some radio has unknown speed)

	// linear switches Transmit to the O(N) scan over all radios — the
	// reference implementation the grid path must match bit-for-bit.
	linear bool
	// unbatched switches delivery to 2·k individual arrival events over
	// the same precomputed batch — the reference for the batched path.
	unbatched bool

	inflight  []*arrivalBatch     // batches with deliveries still scheduled
	batchFree []*arrivalBatch     // parked batches (receiver slices kept)
	recPool   sim.Pool[reception] // recycled receptions (decode state)
}

// DefaultRxRange and DefaultCSRange follow the paper (250 m transmission
// range) and the ns-2 default carrier-sense ratio (2.2x).
const (
	DefaultRxRange   = 250.0
	DefaultCSRange   = 550.0
	defaultPropSpeed = 3e8
)

// NewChannel creates an empty channel.
func NewChannel(sched *sim.Scheduler, rxRange, csRange float64) *Channel {
	if csRange < rxRange {
		csRange = rxRange
	}
	return &Channel{
		sched:     sched,
		RxRange:   rxRange,
		CSRange:   csRange,
		PropSpeed: defaultPropSpeed,
	}
}

// Reset detaches every radio and restores the channel to its
// NewChannel(sched, rxRange, csRange) state while keeping the expensive
// reusable storage: the spatial grid (reused when the next EnableGrid asks
// for the same geometry), the receiver scratch buffer, the arrival-batch
// and reception pools, and the Radio structs themselves (recycled through
// the next Attach calls). Arrival batches still in flight are drained
// first — their scheduled events must never fire again (the caller resets
// the scheduler alongside, as scenario.Context does), and draining drops
// the frame references so no retired frame stays reachable through the
// channel. A reset channel behaves bit-for-bit like a fresh one; it exists
// so batch executors (scenario.Context) can run thousands of simulations
// without rebuilding the medium each time.
func (c *Channel) Reset(rxRange, csRange float64) {
	if csRange < rxRange {
		csRange = rxRange
	}
	c.drainBatches()
	c.RxRange = rxRange
	c.CSRange = csRange
	c.PropSpeed = defaultPropSpeed
	c.DropFrame = nil
	if c.grid != nil {
		// Park the index: it must not be consulted while it still holds the
		// previous run's snapshots, but EnableGrid can reclaim its storage.
		c.spareGrid, c.grid = c.grid, nil
	}
	for i, r := range c.radios {
		*r = Radio{}
		c.spare = append(c.spare, r)
		c.radios[i] = nil
	}
	c.radios = c.radios[:0]
	for i := range c.movers {
		c.movers[i] = nil
	}
	c.movers = c.movers[:0]
	c.policyDirty = true
	c.slackBudget = 0
	c.slack = 0
	c.epoch = 0
	c.nextRefresh = 0
	c.exact = false
	c.linear = false
	c.unbatched = false
}

// Retire drains any in-flight arrival batches at run end, dropping their
// frame references and parking them for reuse. It must only be called once
// the run is dead: the batches' scheduled events are assumed never to fire
// again (the owning scenario resets the scheduler before any reuse).
// Idempotent.
func (c *Channel) Retire() { c.drainBatches() }

// drainBatches force-parks every in-flight batch.
func (c *Channel) drainBatches() {
	for len(c.inflight) > 0 {
		c.parkBatch(c.inflight[len(c.inflight)-1])
	}
}

// getBatch takes a parked batch (or allocates one) and tracks it in flight.
func (c *Channel) getBatch() *arrivalBatch {
	var b *arrivalBatch
	if n := len(c.batchFree); n > 0 {
		b = c.batchFree[n-1]
		c.batchFree[n-1] = nil
		c.batchFree = c.batchFree[:n-1]
	} else {
		b = &arrivalBatch{}
	}
	b.ch = c
	b.idx = len(c.inflight)
	c.inflight = append(c.inflight, b)
	return b
}

// parkBatch removes a batch from the in-flight list (swap-remove), clears
// its frame and receiver references, and returns it to the free list with
// the receiver slice's capacity intact.
func (c *Channel) parkBatch(b *arrivalBatch) {
	last := len(c.inflight) - 1
	c.inflight[b.idx] = c.inflight[last]
	c.inflight[b.idx].idx = b.idx
	c.inflight[last] = nil
	c.inflight = c.inflight[:last]
	b.frame = nil
	b.live = 0
	for i := range b.rx {
		b.rx[i] = batchRx{}
	}
	b.rx = b.rx[:0]
	c.batchFree = append(c.batchFree, b)
}

// InflightBatches reports how many arrival batches are currently on the
// air (leak audits and tests).
func (c *Channel) InflightBatches() int { return len(c.inflight) }

// EnableGrid builds the receiver-lookup index over the given field. Call it
// before attaching radios (scenario builders) for a well-sized grid;
// channels that never call it self-configure from the radios' positions at
// the first transmission. cellSize <= 0 picks the carrier-sense range,
// which makes a range query touch a 3×3 cell block.
func (c *Channel) EnableGrid(bounds geo.Rect, cellSize float64) {
	if cellSize <= 0 {
		cellSize = c.CSRange
	}
	if cellSize <= 0 {
		// Degenerate zero-range channels must still build and run (nothing
		// will ever be in range); any positive cell size works.
		cellSize = 1
	}
	switch {
	case c.grid != nil && c.grid.Reset(bounds, cellSize):
		// Re-index in place below.
	case c.spareGrid != nil && c.spareGrid.Reset(bounds, cellSize):
		c.grid, c.spareGrid = c.spareGrid, nil
	default:
		c.grid = geo.NewGrid(bounds, cellSize)
	}
	now := c.sched.Now()
	for _, r := range c.radios {
		c.grid.Update(r.idx, r.positionAt(now))
	}
	c.policyDirty = true
}

// UseLinearScan switches Transmit between the grid-indexed receiver lookup
// (default) and the exhaustive scan over all attached radios. The two are
// observably identical; the linear path exists as the reference for
// equivalence and determinism tests.
func (c *Channel) UseLinearScan(on bool) { c.linear = on }

// UseUnbatchedArrivals switches delivery between the batched scheme
// (default: two scheduler events walk the whole arrival batch) and the
// reference scheme that schedules an individual first-bit and last-bit
// event per receiver over the same precomputed batch. The two are
// byte-identical — same timestamps, same dispatch order — and the
// unbatched path exists, like UseLinearScan, purely as the reference for
// equivalence tests.
func (c *Channel) UseUnbatchedArrivals(on bool) { c.unbatched = on }

// Attach registers a radio for a node whose position over time is given by
// pos. The listener (the node's MAC) must be set before any transmission
// can reach the radio.
func (c *Channel) Attach(id packet.NodeID, pos func(sim.Time) geo.Point, lis Listener) *Radio {
	var r *Radio
	if n := len(c.spare); n > 0 {
		r = c.spare[n-1]
		c.spare[n-1] = nil
		c.spare = c.spare[:n-1]
	} else {
		r = &Radio{}
	}
	*r = Radio{
		ID:       id,
		pos:      pos,
		lis:      lis,
		ch:       c,
		idx:      int32(len(c.radios)),
		maxSpeed: math.Inf(1),
	}
	c.radios = append(c.radios, r)
	if c.grid != nil {
		c.grid.Update(r.idx, r.positionAt(c.sched.Now()))
	}
	c.policyDirty = true
	return r
}

// Radios returns all attached radios (scenario introspection).
func (c *Channel) Radios() []*Radio { return c.radios }

// PositionOf returns the current position of a radio.
func (c *Channel) PositionOf(r *Radio) geo.Point { return r.positionAt(c.sched.Now()) }

// Busy reports whether the radio currently senses energy or is transmitting;
// exposed for the MAC's carrier-sense checks.
func (r *Radio) Busy() bool { return r.energy > 0 || r.transmitting }

// Transmitting reports whether the radio is currently sending.
func (r *Radio) Transmitting() bool { return r.transmitting }

// recomputePolicy derives the snapshot-refresh schedule from the attached
// radios' speed bounds: stationary radios are never refreshed, bounded
// radios on an epoch sized so drift stays under slackBudget, and any radio
// with an unknown bound forces exact (per-transmit) refresh.
func (c *Channel) recomputePolicy() {
	c.policyDirty = false
	c.movers = c.movers[:0]
	maxKnown := 0.0
	c.exact = false
	for _, r := range c.radios {
		if r.maxSpeed == 0 {
			continue
		}
		c.movers = append(c.movers, r)
		if math.IsInf(r.maxSpeed, 1) {
			c.exact = true
		} else if r.maxSpeed > maxKnown {
			maxKnown = r.maxSpeed
		}
	}
	if c.slackBudget <= 0 {
		c.slackBudget = 0.1 * c.CSRange
	}
	switch {
	case c.exact || maxKnown == 0:
		// Exact refresh (or nothing moves): queries need no inflation.
		c.slack = 0
		c.epoch = 0
	default:
		c.slack = c.slackBudget
		c.epoch = sim.Seconds(c.slackBudget / maxKnown)
	}
	c.nextRefresh = c.sched.Now() // force a refresh at the next transmit
}

// refreshMovers re-snapshots every non-stationary radio into the grid.
func (c *Channel) refreshMovers(now sim.Time) {
	for _, r := range c.movers {
		c.grid.Update(r.idx, r.positionAt(now))
	}
}

// autoGrid self-configures the index for channels built without EnableGrid
// (unit tests, ad-hoc topologies): bounds from the radios' current
// positions. Radios may later wander outside; the grid clamps them to edge
// cells, which affects only query cost, never the result.
func (c *Channel) autoGrid(now sim.Time) {
	if len(c.radios) == 0 {
		c.EnableGrid(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0)
		return
	}
	p0 := c.radios[0].positionAt(now)
	b := geo.Rect{MinX: p0.X, MinY: p0.Y, MaxX: p0.X, MaxY: p0.Y}
	for _, r := range c.radios[1:] {
		p := r.positionAt(now)
		b.MinX = math.Min(b.MinX, p.X)
		b.MinY = math.Min(b.MinY, p.Y)
		b.MaxX = math.Max(b.MaxX, p.X)
		b.MaxY = math.Max(b.MaxY, p.Y)
	}
	c.EnableGrid(b, c.CSRange)
}

// Transmit puts a frame on the air for the given airtime. The caller (MAC)
// is responsible for medium-access rules; the channel only models physics.
// The sender's own listener receives no callbacks for its own frame; the MAC
// schedules its own tx-done event.
func (c *Channel) Transmit(tx *Radio, f *packet.Frame, airtime sim.Duration) {
	now := c.sched.Now()
	tx.transmitting = true
	tx.FramesSent++

	// Transmitting corrupts any decode in progress at the sender
	// (half duplex).
	if tx.rx != nil {
		tx.rx.collided = true
	}

	txPos := tx.positionAt(now)
	cs2 := c.CSRange * c.CSRange
	rx2 := c.RxRange * c.RxRange

	b := c.getBatch()
	b.frame = f
	maxD2 := 0.0

	if c.linear {
		for _, rcv := range c.radios {
			if rcv == tx {
				continue
			}
			maxD2 = c.appendRx(b, rcv, rcv.positionAt(now), txPos, f, cs2, rx2, maxD2)
		}
	} else {
		if c.grid == nil {
			c.autoGrid(now)
		}
		if c.policyDirty {
			c.recomputePolicy()
		}
		if c.exact || now >= c.nextRefresh {
			c.refreshMovers(now)
			if !c.exact {
				c.nextRefresh = now.Add(c.epoch)
			}
		}
		c.hits = c.grid.WithinRangeHits(txPos, c.CSRange+c.slack, c.hits[:0])
		// Candidate order must match the linear scan (= attach order): the
		// scheduler breaks timestamp ties by insertion sequence, and the
		// batch delivers in fill order, so the order receivers enter the
		// batch is observable.
		slices.SortFunc(c.hits, func(a, b geo.Hit) int { return cmp.Compare(a.ID, b.ID) })
		for _, h := range c.hits {
			rcv := c.radios[h.ID]
			if rcv == tx {
				continue
			}
			p := h.P
			if rcv.maxSpeed != 0 {
				// The snapshot may lag a mover by up to the slack margin;
				// re-check against the exact current position. Stationary
				// radios' snapshots are exact, so the grid pass already
				// produced their position (the batch-fill payoff).
				p = rcv.positionAt(now)
			}
			maxD2 = c.appendRx(b, rcv, p, txPos, f, cs2, rx2, maxD2)
		}
	}

	if len(b.rx) == 0 {
		c.parkBatch(b) // empty neighbourhood: no events at all
	} else {
		prop := sim.Duration(0)
		if c.PropSpeed > 0 {
			prop = sim.Seconds(math.Sqrt(maxD2) / c.PropSpeed)
		}
		if c.unbatched {
			b.live = len(b.rx)
			for i := range b.rx {
				c.sched.AfterTask(prop, b, unbatchedArgBase+2*i)
				c.sched.AfterTask(prop+airtime, b, unbatchedArgBase+2*i+1)
			}
		} else {
			b.live = 1
			c.sched.AfterTask(prop, b, batchStartArg)
			c.sched.AfterTask(prop+airtime, b, batchEndArg)
		}
	}

	c.sched.AfterTask(airtime, tx, radioTxDone)
}

// appendRx distance-checks one candidate receiver at position p against
// the transmitter's exact position and, if in carrier-sense range, appends
// its precomputed view to the batch. Returns the running maximum squared
// distance over all in-CS receivers — the batch's common propagation
// distance.
func (c *Channel) appendRx(b *arrivalBatch, rcv *Radio, p, txPos geo.Point, f *packet.Frame, cs2, rx2, maxD2 float64) float64 {
	d2 := p.DistanceSqTo(txPos)
	if d2 > cs2 {
		return maxD2
	}
	decodable := d2 <= rx2
	b.rx = append(b.rx, batchRx{
		rcv:       rcv,
		decodable: decodable,
		drop:      decodable && c.DropFrame != nil && c.DropFrame(f, rcv.ID),
	})
	return math.Max(maxD2, d2)
}

func (c *Channel) arriveStart(rcv *Radio, f *packet.Frame, decodable, drop bool) {
	rcv.energy++
	if rcv.energy == 1 && rcv.lis != nil {
		rcv.lis.EnergyUp()
	}
	if !decodable {
		return
	}
	if rcv.transmitting {
		return // half duplex: cannot begin decode while sending
	}
	if rcv.rx != nil {
		// Overlapping decodable frames: both are lost.
		rcv.rx.collided = true
		rcv.FramesCollided++
		return
	}
	rx := c.recPool.Get()
	rx.frame = f
	rx.collided = drop
	rcv.rx = rx
}

func (c *Channel) arriveEnd(rcv *Radio, f *packet.Frame, decodable bool) {
	rcv.energy--
	if decodable && rcv.rx != nil && rcv.rx.frame == f {
		rx := rcv.rx
		rcv.rx = nil
		ok := !rx.collided
		c.recPool.Put(rx)
		if ok {
			rcv.FramesDecoded++
		} else {
			rcv.FramesCollided++
		}
		if rcv.lis != nil {
			rcv.lis.RxEnd(f, ok)
		}
	}
	if rcv.energy == 0 && rcv.lis != nil {
		rcv.lis.EnergyDown()
	}
}

// MaxPropDelay bounds the propagation delay of any delivery this channel
// can schedule (the carrier-sense range at the propagation speed). The
// MAC uses it as the quarantine hold when releasing frames and broadcast
// payloads whose arrivals may still be in flight.
func (c *Channel) MaxPropDelay() sim.Duration {
	if c.PropSpeed <= 0 {
		return 0
	}
	return sim.Seconds(c.CSRange / c.PropSpeed)
}

// InRange reports whether two radios can currently decode each other's
// frames; used by scenario builders and tests for connectivity checks.
func (c *Channel) InRange(a, b *Radio) bool {
	now := c.sched.Now()
	return a.positionAt(now).DistanceSqTo(b.positionAt(now)) <= c.RxRange*c.RxRange
}
