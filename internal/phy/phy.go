// Package phy models the shared wireless medium: a unit-disc radio channel
// with configurable receive and carrier-sense ranges, signal propagation
// delay, half-duplex radios, and a receiver-side collision model.
//
// Model (documented substitution for ns-2's two-ray ground propagation):
//
//   - A frame is decodable by radios within RxRange of the transmitter at
//     the moment transmission starts (positions change negligibly during a
//     frame's ~1 ms airtime).
//   - Radios within CSRange sense energy (physical carrier sense) but
//     cannot decode beyond RxRange.
//   - Two frames overlapping in time at a receiver, both within RxRange,
//     corrupt each other (no capture effect). Energy from the
//     (RxRange, CSRange] ring defers transmitters but does not corrupt.
//   - A radio that is transmitting cannot receive (half duplex).
package phy

import (
	"math"

	"mtsim/internal/geo"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// Listener is the MAC-side interface a Radio reports to.
type Listener interface {
	// EnergyUp is called when the number of in-CS-range transmissions
	// rises from zero: the medium became busy.
	EnergyUp()
	// EnergyDown is called when the medium becomes idle again.
	EnergyDown()
	// RxEnd delivers a frame whose last bit has arrived. ok is false if
	// the frame was corrupted by a collision. Every decodable frame is
	// delivered (even corrupted ones) so the MAC can apply EIFS rules.
	RxEnd(f *packet.Frame, ok bool)
}

// Radio is one node's attachment to the channel.
type Radio struct {
	ID  packet.NodeID
	pos func(sim.Time) geo.Point
	lis Listener
	ch  *Channel

	transmitting bool
	energy       int // count of in-CS-range transmissions currently on air

	// current decode in progress (nil if none)
	rx *reception

	// Stats
	FramesSent     uint64
	FramesDecoded  uint64
	FramesCollided uint64
}

type reception struct {
	frame    *packet.Frame
	collided bool
}

// Channel is the shared medium connecting all radios.
type Channel struct {
	sched   *sim.Scheduler
	radios  []*Radio
	RxRange float64 // metres, decodable
	CSRange float64 // metres, senseable
	// PropSpeed is the signal propagation speed in metres/second.
	PropSpeed float64
	// DropFrame, when non-nil, is consulted for every decodable frame
	// arrival; returning true force-corrupts that delivery. Used by tests
	// to inject losses on specific links.
	DropFrame func(f *packet.Frame, to packet.NodeID) bool
}

// DefaultRxRange and DefaultCSRange follow the paper (250 m transmission
// range) and the ns-2 default carrier-sense ratio (2.2x).
const (
	DefaultRxRange   = 250.0
	DefaultCSRange   = 550.0
	defaultPropSpeed = 3e8
)

// NewChannel creates an empty channel.
func NewChannel(sched *sim.Scheduler, rxRange, csRange float64) *Channel {
	if csRange < rxRange {
		csRange = rxRange
	}
	return &Channel{
		sched:     sched,
		RxRange:   rxRange,
		CSRange:   csRange,
		PropSpeed: defaultPropSpeed,
	}
}

// Attach registers a radio for a node whose position over time is given by
// pos. The listener (the node's MAC) must be set before any transmission
// can reach the radio.
func (c *Channel) Attach(id packet.NodeID, pos func(sim.Time) geo.Point, lis Listener) *Radio {
	r := &Radio{ID: id, pos: pos, lis: lis, ch: c}
	c.radios = append(c.radios, r)
	return r
}

// Radios returns all attached radios (scenario introspection).
func (c *Channel) Radios() []*Radio { return c.radios }

// PositionOf returns the current position of a radio.
func (c *Channel) PositionOf(r *Radio) geo.Point { return r.pos(c.sched.Now()) }

// Busy reports whether the radio currently senses energy or is transmitting;
// exposed for the MAC's carrier-sense checks.
func (r *Radio) Busy() bool { return r.energy > 0 || r.transmitting }

// Transmitting reports whether the radio is currently sending.
func (r *Radio) Transmitting() bool { return r.transmitting }

// Transmit puts a frame on the air for the given airtime. The caller (MAC)
// is responsible for medium-access rules; the channel only models physics.
// The sender's own listener receives no callbacks for its own frame; the MAC
// schedules its own tx-done event.
func (c *Channel) Transmit(tx *Radio, f *packet.Frame, airtime sim.Duration) {
	now := c.sched.Now()
	tx.transmitting = true
	tx.FramesSent++

	// Transmitting corrupts any decode in progress at the sender
	// (half duplex).
	if tx.rx != nil {
		tx.rx.collided = true
	}

	txPos := tx.pos(now)
	cs2 := c.CSRange * c.CSRange
	rx2 := c.RxRange * c.RxRange

	for _, rcv := range c.radios {
		if rcv == tx {
			continue
		}
		d2 := rcv.pos(now).DistanceSqTo(txPos)
		if d2 > cs2 {
			continue
		}
		decodable := d2 <= rx2
		prop := sim.Duration(0)
		if c.PropSpeed > 0 {
			prop = sim.Seconds(math.Sqrt(d2) / c.PropSpeed)
		}
		rcv := rcv
		c.sched.After(prop, func() { c.arriveStart(rcv, f, decodable) })
		c.sched.After(prop+airtime, func() { c.arriveEnd(rcv, f, decodable) })
	}

	c.sched.After(airtime, func() { tx.transmitting = false })
}

func (c *Channel) arriveStart(rcv *Radio, f *packet.Frame, decodable bool) {
	rcv.energy++
	if rcv.energy == 1 && rcv.lis != nil {
		rcv.lis.EnergyUp()
	}
	if !decodable {
		return
	}
	if rcv.transmitting {
		return // half duplex: cannot begin decode while sending
	}
	if rcv.rx != nil {
		// Overlapping decodable frames: both are lost.
		rcv.rx.collided = true
		rcv.FramesCollided++
		return
	}
	rx := &reception{frame: f}
	if c.DropFrame != nil && c.DropFrame(f, rcv.ID) {
		rx.collided = true
	}
	rcv.rx = rx
}

func (c *Channel) arriveEnd(rcv *Radio, f *packet.Frame, decodable bool) {
	rcv.energy--
	if decodable && rcv.rx != nil && rcv.rx.frame == f {
		rx := rcv.rx
		rcv.rx = nil
		ok := !rx.collided
		if ok {
			rcv.FramesDecoded++
		} else {
			rcv.FramesCollided++
		}
		if rcv.lis != nil {
			rcv.lis.RxEnd(f, ok)
		}
	}
	if rcv.energy == 0 && rcv.lis != nil {
		rcv.lis.EnergyDown()
	}
}

// InRange reports whether two radios can currently decode each other's
// frames; used by scenario builders and tests for connectivity checks.
func (c *Channel) InRange(a, b *Radio) bool {
	now := c.sched.Now()
	return a.pos(now).DistanceSqTo(b.pos(now)) <= c.RxRange*c.RxRange
}
