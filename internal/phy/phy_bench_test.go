package phy

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// buildField attaches n stationary radios uniformly over a field sized for
// the paper's default density (50 nodes per 1000x1000 m).
func buildField(s *sim.Scheduler, n int, linear bool) (*Channel, []*Radio) {
	// Constant density (the paper's 50 nodes per 1000x1000 m): area grows
	// linearly with the population, so neighbourhood size stays fixed and
	// the linear-vs-grid gap isolates the receiver-lookup cost.
	side := 1000.0 * math.Sqrt(float64(n)/50.0)
	c := NewChannel(s, DefaultRxRange, DefaultCSRange)
	c.EnableGrid(geo.Field(side, side), 0)
	c.UseLinearScan(linear)
	rng := rand.New(rand.NewSource(42))
	radios := make([]*Radio, n)
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*side, rng.Float64()*side
		// Slow drift with a declared speed bound: position evaluation costs
		// an interpolation (like the real waypoint model) and the channel
		// exercises its epoch-refresh path instead of the static fast path.
		pos := func(t sim.Time) geo.Point {
			return geo.Point{X: x + t.Seconds()*1e-4, Y: y}
		}
		radios[i] = c.Attach(packet.NodeID(i), pos, nil)
		radios[i].SetMaxSpeed(0.001)
	}
	return c, radios
}

// BenchmarkPhyBroadcast measures one transmission end to end: receiver
// lookup plus scheduling and dispatching every arrival event. grid=false is
// the O(N) reference scan the spatial index replaced.
func BenchmarkPhyBroadcast(b *testing.B) {
	for _, n := range []int{50, 100, 200, 400, 1000} {
		for _, linear := range []bool{false, true} {
			mode := "grid"
			if linear {
				mode = "linear"
			}
			b.Run(fmt.Sprintf("nodes=%d/%s", n, mode), func(b *testing.B) {
				s := sim.NewScheduler()
				c, radios := buildField(s, n, linear)
				f := &packet.Frame{UID: 1, Kind: packet.FrameData, TxFrom: 0, TxTo: packet.Broadcast}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Transmit(radios[i%n], f, sim.Millisecond)
					s.Run()
				}
			})
		}
	}
}

// BenchmarkTransmitBatch isolates the arrival-batching win: one broadcast
// end to end, batched (two scheduler events walking the receiver batch)
// vs the unbatched reference (2·k per-receiver events). events/op is the
// scheduler pressure per broadcast — the heap inserts and siftdowns the
// batching removes; ns/op and allocs/op show what that buys.
func BenchmarkTransmitBatch(b *testing.B) {
	for _, n := range []int{50, 100, 400, 1000} {
		for _, unbatched := range []bool{false, true} {
			mode := "batched"
			if unbatched {
				mode = "unbatched"
			}
			b.Run(fmt.Sprintf("nodes=%d/%s", n, mode), func(b *testing.B) {
				s := sim.NewScheduler()
				c, radios := buildField(s, n, false)
				c.UseUnbatchedArrivals(unbatched)
				f := &packet.Frame{UID: 1, Kind: packet.FrameData, TxFrom: 0, TxTo: packet.Broadcast}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Transmit(radios[i%n], f, sim.Millisecond)
					s.Run()
				}
				b.ReportMetric(float64(s.Executed)/float64(b.N), "events/op")
			})
		}
	}
}

// TestPhyBroadcastSteadyStateAllocs locks in the tentpole's allocation
// behaviour: after warm-up, a full transmit/deliver cycle performs no heap
// allocations (pooled events, pooled arrivals, pooled receptions, reused
// query scratch).
func TestPhyBroadcastSteadyStateAllocs(t *testing.T) {
	s := sim.NewScheduler()
	c, radios := buildField(s, 60, false)
	f := &packet.Frame{UID: 1, Kind: packet.FrameData, TxFrom: 0, TxTo: packet.Broadcast}
	for i := 0; i < 10; i++ { // warm the pools across every sender
		c.Transmit(radios[i], f, sim.Millisecond)
		s.Run()
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		c.Transmit(radios[i%60], f, sim.Millisecond)
		s.Run()
		i++
	})
	if allocs != 0 {
		t.Fatalf("transmit hot path allocates %.2f objects/op, want 0", allocs)
	}
}
