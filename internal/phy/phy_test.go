package phy

import (
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/packet"
	"mtsim/internal/sim"
)

// recorder is a test Listener capturing callbacks.
type recorder struct {
	ups, downs int
	frames     []*packet.Frame
	oks        []bool
}

func (r *recorder) EnergyUp()   { r.ups++ }
func (r *recorder) EnergyDown() { r.downs++ }
func (r *recorder) RxEnd(f *packet.Frame, ok bool) {
	r.frames = append(r.frames, f)
	r.oks = append(r.oks, ok)
}

func fixed(x, y float64) func(sim.Time) geo.Point {
	return func(sim.Time) geo.Point { return geo.Point{X: x, Y: y} }
}

func testFrame(from, to packet.NodeID) *packet.Frame {
	return &packet.Frame{UID: 1, Kind: packet.FrameData, TxFrom: from, TxTo: to}
}

func TestDeliveryWithinRange(t *testing.T) {
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	a := c.Attach(0, fixed(0, 0), &recorder{})
	rb := &recorder{}
	c.Attach(1, fixed(200, 0), rb)

	c.Transmit(a, testFrame(0, 1), sim.Millisecond)
	s.Run()

	if len(rb.frames) != 1 || !rb.oks[0] {
		t.Fatalf("frames=%d oks=%v", len(rb.frames), rb.oks)
	}
	if rb.ups != 1 || rb.downs != 1 {
		t.Fatalf("energy transitions: up=%d down=%d", rb.ups, rb.downs)
	}
	if a.FramesSent != 1 {
		t.Fatalf("sender stats: %d", a.FramesSent)
	}
}

func TestNoDeliveryBeyondRxRange(t *testing.T) {
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	a := c.Attach(0, fixed(0, 0), &recorder{})
	rb := &recorder{}
	c.Attach(1, fixed(400, 0), rb) // in CS ring, beyond RX

	c.Transmit(a, testFrame(0, 1), sim.Millisecond)
	s.Run()

	if len(rb.frames) != 0 {
		t.Fatal("decoded beyond RX range")
	}
	if rb.ups != 1 || rb.downs != 1 {
		t.Fatalf("CS ring should sense energy: up=%d down=%d", rb.ups, rb.downs)
	}
}

func TestNoEnergyBeyondCSRange(t *testing.T) {
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	a := c.Attach(0, fixed(0, 0), &recorder{})
	rb := &recorder{}
	c.Attach(1, fixed(600, 0), rb)

	c.Transmit(a, testFrame(0, 1), sim.Millisecond)
	s.Run()

	if rb.ups != 0 || len(rb.frames) != 0 {
		t.Fatal("activity sensed beyond CS range")
	}
}

func TestCollisionCorruptsBoth(t *testing.T) {
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	// Two senders both in range of the victim; they can't hear each other
	// is irrelevant here — the channel doesn't enforce MAC rules.
	a := c.Attach(0, fixed(0, 0), &recorder{})
	b := c.Attach(1, fixed(400, 0), &recorder{})
	victim := &recorder{}
	c.Attach(2, fixed(200, 0), victim)

	s.At(0, func() { c.Transmit(a, testFrame(0, 2), sim.Millisecond) })
	s.At(sim.Time(100*sim.Microsecond), func() {
		c.Transmit(b, testFrame(1, 2), sim.Millisecond)
	})
	s.Run()

	// The first frame is delivered corrupted; the second one never began
	// decoding (receiver was mid-decode) so it is not delivered at all.
	if len(victim.frames) != 1 {
		t.Fatalf("deliveries = %d, want 1 (the corrupted first frame)", len(victim.frames))
	}
	if victim.oks[0] {
		t.Fatal("overlapping frames not corrupted")
	}
}

func TestNoCollisionWhenSequential(t *testing.T) {
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	a := c.Attach(0, fixed(0, 0), &recorder{})
	victim := &recorder{}
	c.Attach(1, fixed(100, 0), victim)

	s.At(0, func() { c.Transmit(a, testFrame(0, 1), sim.Millisecond) })
	s.At(sim.Time(2*sim.Millisecond), func() {
		c.Transmit(a, testFrame(0, 1), sim.Millisecond)
	})
	s.Run()

	if len(victim.frames) != 2 || !victim.oks[0] || !victim.oks[1] {
		t.Fatalf("sequential frames corrupted: %v", victim.oks)
	}
	if victim.ups != 2 || victim.downs != 2 {
		t.Fatalf("energy transitions: %d/%d", victim.ups, victim.downs)
	}
}

func TestHalfDuplexNoDecodeWhileTransmitting(t *testing.T) {
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	a := c.Attach(0, fixed(0, 0), &recorder{})
	rb := &recorder{}
	b := c.Attach(1, fixed(100, 0), rb)

	// b starts transmitting first; a's frame arrives while b is sending.
	s.At(0, func() { c.Transmit(b, testFrame(1, 0), 2*sim.Millisecond) })
	s.At(sim.Time(500*sim.Microsecond), func() {
		c.Transmit(a, testFrame(0, 1), sim.Millisecond)
	})
	s.Run()

	if len(rb.frames) != 0 {
		t.Fatal("decoded a frame while transmitting (half duplex violated)")
	}
}

func TestTransmitCorruptsOwnDecode(t *testing.T) {
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	a := c.Attach(0, fixed(0, 0), &recorder{})
	rb := &recorder{}
	b := c.Attach(1, fixed(100, 0), rb)

	// a's frame is arriving at b; midway through, b transmits.
	s.At(0, func() { c.Transmit(a, testFrame(0, 1), 2*sim.Millisecond) })
	s.At(sim.Time(sim.Millisecond), func() {
		c.Transmit(b, testFrame(1, 0), 100*sim.Microsecond)
	})
	s.Run()

	if len(rb.frames) != 1 || rb.oks[0] {
		t.Fatalf("decode-in-progress must be corrupted by own tx: frames=%d oks=%v",
			len(rb.frames), rb.oks)
	}
}

func TestPromiscuousDelivery(t *testing.T) {
	// Frames are delivered to ALL radios in range, not just the addressee;
	// MAC-level filtering happens above. This is what the eavesdropper and
	// NAV depend on.
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	a := c.Attach(0, fixed(0, 0), &recorder{})
	eaves := &recorder{}
	c.Attach(2, fixed(0, 200), eaves)

	c.Transmit(a, testFrame(0, 1), sim.Millisecond)
	s.Run()

	if len(eaves.frames) != 1 || !eaves.oks[0] {
		t.Fatal("third party did not overhear the frame")
	}
}

func TestCommonPropagationDelay(t *testing.T) {
	// One transmission delivers to its whole neighbourhood at a single
	// propagation delay — the farthest carrier-sensing radio's distance
	// over PropSpeed — and walks the receivers in radio-ID order.
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	a := c.Attach(0, fixed(0, 0), &recorder{})
	var order []packet.NodeID
	var nearAt, farAt sim.Time
	near := &hookListener{onRx: func() { nearAt = s.Now(); order = append(order, 1) }}
	far := &hookListener{onRx: func() { farAt = s.Now(); order = append(order, 2) }}
	c.Attach(1, fixed(10, 0), near)
	c.Attach(2, fixed(249, 0), far)

	c.Transmit(a, testFrame(0, packet.Broadcast), sim.Millisecond)
	s.Run()

	want := sim.Time(0).Add(sim.Millisecond + sim.Seconds(249.0/c.PropSpeed))
	if nearAt != want || farAt != want {
		t.Fatalf("deliveries at %v and %v, want common %v", nearAt, farAt, want)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order %v, want radio-ID order [1 2]", order)
	}
}

type hookListener struct{ onRx func() }

func (h *hookListener) EnergyUp()                      {}
func (h *hookListener) EnergyDown()                    {}
func (h *hookListener) RxEnd(f *packet.Frame, ok bool) { h.onRx() }

func TestDropFrameInjection(t *testing.T) {
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	a := c.Attach(0, fixed(0, 0), &recorder{})
	rb := &recorder{}
	c.Attach(1, fixed(100, 0), rb)
	c.DropFrame = func(f *packet.Frame, to packet.NodeID) bool { return to == 1 }

	c.Transmit(a, testFrame(0, 1), sim.Millisecond)
	s.Run()

	if len(rb.frames) != 1 || rb.oks[0] {
		t.Fatal("injected drop did not corrupt the frame")
	}
}

func TestInRange(t *testing.T) {
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	a := c.Attach(0, fixed(0, 0), nil)
	b := c.Attach(1, fixed(250, 0), nil)
	d := c.Attach(2, fixed(251, 0), nil)
	if !c.InRange(a, b) {
		t.Fatal("exact range boundary should be in range")
	}
	if c.InRange(a, d) {
		t.Fatal("251m should be out of range")
	}
}

func TestCSRangeClampedToRxRange(t *testing.T) {
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 100) // nonsensical: CS < RX, must be clamped
	if c.CSRange < c.RxRange {
		t.Fatalf("CSRange=%v < RxRange=%v", c.CSRange, c.RxRange)
	}
	_ = s
}

func TestBusyReflectsEnergy(t *testing.T) {
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	a := c.Attach(0, fixed(0, 0), &recorder{})
	b := c.Attach(1, fixed(100, 0), &recorder{})

	c.Transmit(a, testFrame(0, 1), sim.Millisecond)
	if !a.Transmitting() || !a.Busy() {
		t.Fatal("sender not busy during tx")
	}
	// After propagation delay, b senses energy.
	s.RunUntil(sim.Time(500 * sim.Microsecond))
	if !b.Busy() {
		t.Fatal("receiver not busy mid-frame")
	}
	s.Run()
	if a.Busy() || b.Busy() {
		t.Fatal("radios busy after frame end")
	}
}

func TestZeroRangeChannelStillRuns(t *testing.T) {
	// A degenerate zero-range channel must build its grid and run (nothing
	// is ever in range) rather than panic on a zero cell size.
	s := sim.NewScheduler()
	c := NewChannel(s, 0, 0)
	a := c.Attach(0, fixed(0, 0), &recorder{})
	rb := &recorder{}
	c.Attach(1, fixed(1, 0), rb)
	c.EnableGrid(geo.Field(10, 10), 0)
	c.Transmit(a, testFrame(0, 1), sim.Millisecond)
	s.Run()
	if len(rb.frames) != 0 || rb.ups != 0 {
		t.Fatalf("zero-range channel delivered: frames=%d ups=%d", len(rb.frames), rb.ups)
	}
}

func TestMovingNodeOutOfRangeNotReached(t *testing.T) {
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	a := c.Attach(0, fixed(0, 0), &recorder{})
	rb := &recorder{}
	// Node starts far away and "teleports" close only after the frame
	// was sent — range is evaluated at transmission start.
	pos := func(t sim.Time) geo.Point {
		if t < sim.Time(sim.Millisecond) {
			return geo.Point{X: 1000, Y: 0}
		}
		return geo.Point{X: 10, Y: 0}
	}
	c.Attach(1, pos, rb)

	s.At(0, func() { c.Transmit(a, testFrame(0, 1), sim.Millisecond) })
	s.Run()
	if len(rb.frames) != 0 {
		t.Fatal("frame reached a node that was out of range at tx start")
	}
}

func TestChannelResetBehavesLikeFresh(t *testing.T) {
	// The same two-node exchange, run on a fresh channel and on a channel
	// that already lived through a different topology and was Reset, must
	// be observably identical — Reset is the contract scenario.Context
	// leans on for bit-identical batch reuse.
	run := func(s *sim.Scheduler, c *Channel) (frames int, ok bool, sent uint64) {
		a := c.Attach(0, fixed(0, 0), &recorder{})
		rb := &recorder{}
		c.Attach(1, fixed(200, 0), rb)
		c.Transmit(a, testFrame(0, 1), sim.Millisecond)
		s.Run()
		return len(rb.frames), len(rb.oks) > 0 && rb.oks[0], a.FramesSent
	}

	sFresh := sim.NewScheduler()
	cFresh := NewChannel(sFresh, 250, 550)
	cFresh.EnableGrid(geo.Rect{MaxX: 1000, MaxY: 1000}, 0)
	wantFrames, wantOK, wantSent := run(sFresh, cFresh)

	s := sim.NewScheduler()
	c := NewChannel(s, 100, 100) // different ranges on purpose
	c.EnableGrid(geo.Rect{MaxX: 1000, MaxY: 1000}, 0)
	c.DropFrame = func(*packet.Frame, packet.NodeID) bool { return true }
	for i := 0; i < 5; i++ {
		c.Attach(packet.NodeID(i), fixed(float64(100*i), 50), &recorder{})
	}
	c.Transmit(c.Radios()[0], testFrame(0, 1), sim.Millisecond)
	s.Run()

	s.Reset()
	c.Reset(250, 550)
	if len(c.Radios()) != 0 {
		t.Fatalf("reset channel keeps %d radios attached", len(c.Radios()))
	}
	c.EnableGrid(geo.Rect{MaxX: 1000, MaxY: 1000}, 0)
	gotFrames, gotOK, gotSent := run(s, c)

	if gotFrames != wantFrames || gotOK != wantOK || gotSent != wantSent {
		t.Fatalf("reset channel: frames=%d ok=%v sent=%d, fresh: %d/%v/%d",
			gotFrames, gotOK, gotSent, wantFrames, wantOK, wantSent)
	}
}

func TestChannelResetRecyclesRadios(t *testing.T) {
	s := sim.NewScheduler()
	c := NewChannel(s, 250, 550)
	old := make(map[*Radio]bool)
	for i := 0; i < 4; i++ {
		old[c.Attach(packet.NodeID(i), fixed(float64(i), 0), &recorder{})] = true
	}
	c.Reset(250, 550)
	recycled := 0
	for i := 0; i < 4; i++ {
		r := c.Attach(packet.NodeID(i), fixed(float64(i), 0), &recorder{})
		if old[r] {
			recycled++
		}
		if r.FramesSent != 0 || r.Busy() {
			t.Fatal("recycled radio leaked state")
		}
	}
	if recycled != 4 {
		t.Fatalf("recycled %d of 4 radio structs", recycled)
	}
}
