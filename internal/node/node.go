// Package node assembles one mobile node: mobility model, radio, 802.11
// MAC, routing protocol and transport attachment points. It implements
// mac.Upper (receiving from the MAC) and routing.Env (serving the routing
// protocol), so it is the junction box between layers.
package node

import (
	"mtsim/internal/geo"
	"mtsim/internal/mac"
	"mtsim/internal/mobility"
	"mtsim/internal/packet"
	"mtsim/internal/phy"
	"mtsim/internal/routing"
	"mtsim/internal/sim"
)

// FlowHandler receives transport packets for a registered flow. It is a
// type alias so that plain function literals satisfy interface methods
// declared with the unnamed signature (e.g. tcp.Network.RegisterFlow).
type FlowHandler = func(p *packet.Packet, from packet.NodeID)

// Node is one simulated host.
type Node struct {
	id       packet.NodeID
	sched    *sim.Scheduler
	rng      *sim.RNG
	uids     *packet.UIDSource
	arena    *packet.Arena
	recycler *routing.Recycler

	// pend are the delayed (jittered) sends not yet handed to the MAC;
	// the node owns their packets until the timer fires.
	pend   []*delayedSend
	dsPool sim.Pool[delayedSend]

	Mob   mobility.Model
	Radio *phy.Radio
	Mac   *mac.Mac
	Proto routing.Protocol

	flows map[int]FlowHandler
	taps  []func(f *packet.Frame)

	// Metric hooks, set by the scenario's collector. Any may be nil.
	OnRelay     func(p *packet.Packet)                     // relayed a data packet (β)
	OnRouteDrop func(p *packet.Packet, reason string)      // routing-layer drop
	OnLocal     func(p *packet.Packet, from packet.NodeID) // delivered locally

	// DropFilter, when set, vets every packet the routing layer hands to
	// the MAC; returning true silently discards the packet (recorded as a
	// routing drop with reason "adversary"). Adversarial relay models
	// (blackhole/grayhole) install it; legitimate nodes leave it nil.
	DropFilter func(p *packet.Packet, next packet.NodeID) bool

	// OriginateFilter, when set, intercepts every locally generated packet
	// before the routing protocol sees it; returning true means the filter
	// took ownership (the data-shuffling countermeasure buffers segments
	// here and releases them later through Inject). Defensive mirror of
	// DropFilter; ordinary nodes leave it nil.
	OriginateFilter func(p *packet.Packet) bool

	// RouteFilter, when set, vets every *control* packet (RREQ/RREP/RERR
	// and MTS checking traffic) on its way to the MAC, and may rewrite the
	// broadcast jitter of deferred control sends. Route-discovery attacks
	// (wormhole tunnelling, rushing) install it; legitimate nodes leave it
	// nil. The data plane never passes through it, so the arena contract
	// for data packets is untouched.
	RouteFilter RouteFilter

	// trust, when set, observes forwarding evidence (sends handed to the
	// MAC, link failures, overheard relays via the promiscuous tap) and
	// answers routing.TrustCarrier queries. Installed by the trust
	// countermeasure; nil on undefended nodes.
	trust TrustMonitor
}

// RouteFilter intercepts control-plane transmissions. FilterRoute
// returning true means the filter took ownership of the packet — the
// node neither transmits nor releases it (the wormhole tunnels it to the
// far endpoint and releases it there). RouteJitter may rewrite the
// jitter of a deferred control send (the rushing attack returns 0 so the
// compromised relay's rebroadcast wins the duplicate-suppression race);
// the protocol has already drawn its jitter from its RNG by the time
// this runs, so RNG streams are unperturbed either way.
type RouteFilter interface {
	FilterRoute(p *packet.Packet, next packet.NodeID) bool
	RouteJitter(p *packet.Packet, d sim.Duration) sim.Duration
}

// TrustMonitor is the node-facing surface of a per-neighbour trust table:
// a routing.TrustOracle that additionally ingests the forwarding evidence
// this node can observe first-hand.
type TrustMonitor interface {
	routing.TrustOracle
	// NoteSend records that a unicast data packet was handed to the MAC
	// with the given next hop — the start of a forwarding obligation the
	// monitor will hold the neighbour to.
	NoteSend(p *packet.Packet, next packet.NodeID)
	// NoteLinkFailure records MAC retry exhaustion toward next.
	NoteLinkFailure(next packet.NodeID)
}

// FrameTap is implemented by routing protocols that listen promiscuously
// (DSR's snooping). The node wires it to the MAC's tap automatically.
type FrameTap interface {
	TapFrame(f *packet.Frame)
}

// New wires a node: attaches a radio for the mobility model to the channel
// with the node's MAC as listener. The routing protocol is attached
// afterwards with SetProtocol (protocols need the Env, i.e. the node).
func New(id packet.NodeID, sched *sim.Scheduler, ch *phy.Channel, macCfg mac.Config, mob mobility.Model, rng *sim.RNG, uids *packet.UIDSource) *Node {
	n := &Node{
		id:    id,
		sched: sched,
		rng:   rng,
		uids:  uids,
		Mob:   mob,
		flows: make(map[int]FlowHandler),
	}
	n.Mac = mac.New(id, sched, ch, macCfg, n, rng.Derive("mac"), uids)
	n.Radio = ch.Attach(id, mob.PositionAt, n.Mac)
	if sb, ok := mob.(mobility.SpeedBounded); ok {
		n.Radio.SetMaxSpeed(sb.MaxSpeed())
	}
	n.Mac.BindRadio(n.Radio)
	return n
}

// SetArena binds the run's packet arena to the node and its MAC. Must be
// called (if at all) before SetProtocol and before any traffic, so that
// the protocol and transport endpoints resolve the same arena.
func (n *Node) SetArena(a *packet.Arena) {
	n.arena = a
	n.Mac.SetArena(a)
}

// Arena implements routing.ArenaCarrier (and the transport layer's
// equivalent assertion); nil when the node was assembled without one.
func (n *Node) Arena() *packet.Arena { return n.arena }

// SetStateRecycler binds the context's router-state recycler. Like
// SetArena it must be called before SetProtocol: the protocol
// constructor is what takes a parked instance back out.
func (n *Node) SetStateRecycler(r *routing.Recycler) { n.recycler = r }

// StateRecycler implements routing.RecyclerCarrier; nil when the node
// was assembled without a reused context.
func (n *Node) StateRecycler() *routing.Recycler { return n.recycler }

// SetProtocol binds the routing protocol. Must be called before Start.
func (n *Node) SetProtocol(p routing.Protocol) {
	n.Proto = p
	if tap, ok := p.(FrameTap); ok {
		n.AddTap(tap.TapFrame)
	}
}

// InstallOriginateFilter sets OriginateFilter (countermeasure.Host).
func (n *Node) InstallOriginateFilter(f func(p *packet.Packet) bool) {
	n.OriginateFilter = f
}

// InstallRouteFilter sets RouteFilter (adversary control-plane attacks).
func (n *Node) InstallRouteFilter(f RouteFilter) { n.RouteFilter = f }

// InstallTrust binds the trust countermeasure's monitor to this node and
// wires its promiscuous evidence feed. The monitor then answers Trust()
// queries from the routing protocol.
func (n *Node) InstallTrust(m TrustMonitor) {
	n.trust = m
	if tap, ok := m.(FrameTap); ok {
		n.AddTap(tap.TapFrame)
	}
}

// Trust implements routing.TrustCarrier. The two-step nil check matters:
// a nil *concrete* monitor stored in the interface field would otherwise
// leak out as a non-nil routing.TrustOracle.
func (n *Node) Trust() routing.TrustOracle {
	if n.trust == nil {
		return nil
	}
	return n.trust
}

// AddTap registers a promiscuous frame listener (eavesdropper, snooping
// protocols, trace writers). Multiple listeners are supported.
func (n *Node) AddTap(h func(f *packet.Frame)) {
	n.taps = append(n.taps, h)
	if len(n.taps) == 1 {
		n.Mac.Tap = func(f *packet.Frame) {
			for _, t := range n.taps {
				t(f)
			}
		}
	}
}

// Originate hands a locally generated packet to the routing protocol;
// transport endpoints call this (tcp.Network interface). An installed
// OriginateFilter may claim the packet first.
func (n *Node) Originate(p *packet.Packet) {
	if n.OriginateFilter != nil && n.OriginateFilter(p) {
		return
	}
	n.Inject(p)
}

// Inject hands a packet directly to the routing protocol, bypassing any
// OriginateFilter — the re-entry point a countermeasure uses to release
// packets it previously claimed from Originate.
func (n *Node) Inject(p *packet.Packet) {
	if n.Proto != nil {
		n.Proto.Send(p)
		return
	}
	n.arena.Release(p)
}

// Start initialises the routing protocol timers.
func (n *Node) Start() {
	if n.Proto != nil {
		n.Proto.Start()
	}
}

// RegisterFlow attaches a transport handler for the given flow ID.
func (n *Node) RegisterFlow(flow int, h FlowHandler) { n.flows[flow] = h }

// Position returns the node's current location.
func (n *Node) Position() geo.Point { return n.Mob.PositionAt(n.sched.Now()) }

// --- mac.Upper ---

// Deliver implements mac.Upper: packets arriving from the radio go to the
// routing protocol, which either consumes them (control), forwards them, or
// calls DeliverLocal.
func (n *Node) Deliver(p *packet.Packet, from packet.NodeID) {
	if n.Proto != nil {
		n.Proto.Receive(p, from)
	}
}

// LinkFailed implements mac.Upper.
func (n *Node) LinkFailed(p *packet.Packet, next packet.NodeID) {
	if n.trust != nil {
		n.trust.NoteLinkFailure(next)
	}
	if n.Proto != nil {
		n.Proto.LinkFailed(p, next)
	}
}

// --- routing.Env ---

// ID implements routing.Env.
func (n *Node) ID() packet.NodeID { return n.id }

// Scheduler implements routing.Env.
func (n *Node) Scheduler() *sim.Scheduler { return n.sched }

// RNG implements routing.Env.
func (n *Node) RNG() *sim.RNG { return n.rng }

// UIDs implements routing.Env.
func (n *Node) UIDs() *packet.UIDSource { return n.uids }

// SendMac implements routing.Env.
func (n *Node) SendMac(p *packet.Packet, next packet.NodeID) {
	if n.DropFilter != nil && n.DropFilter(p, next) {
		n.NotifyDrop(p, "adversary")
		n.arena.Release(p)
		return
	}
	if n.RouteFilter != nil && p.Kind.IsControl() && n.RouteFilter.FilterRoute(p, next) {
		return // filter took ownership (tunnelled; released at the far end)
	}
	if n.trust != nil && next != packet.Broadcast && p.Kind == packet.KindData {
		n.trust.NoteSend(p, next)
	}
	n.Mac.Send(p, next)
}

// delayedSend is one jittered transmission awaiting its timer: the node
// owns the packet until the task fires and re-enters SendMac (so the
// adversary DropFilter still vets it at fire time, exactly as an
// immediate send would be).
type delayedSend struct {
	n    *Node
	p    *packet.Packet
	next packet.NodeID
	h    sim.TaskHandle
}

// Run implements sim.Task.
func (d *delayedSend) Run(int) {
	n, p, next := d.n, d.p, d.next
	n.forgetDelayed(d)
	n.SendMac(p, next)
}

func (n *Node) forgetDelayed(d *delayedSend) {
	for i, q := range n.pend {
		if q == d {
			last := len(n.pend) - 1
			n.pend[i] = n.pend[last]
			n.pend[last] = nil
			n.pend = n.pend[:last]
			break
		}
	}
	n.dsPool.Put(d)
}

// SendMacAfter implements routing.Env: SendMac after delay d, on a pooled
// task event (protocol broadcast jitter used to burn one closure + event
// allocation per flooded hop).
func (n *Node) SendMacAfter(d sim.Duration, p *packet.Packet, next packet.NodeID) {
	if n.RouteFilter != nil && p.Kind.IsControl() {
		d = n.RouteFilter.RouteJitter(p, d)
	}
	ds := n.dsPool.Get()
	ds.n, ds.p, ds.next = n, p, next
	ds.h = n.sched.AfterTaskCancellable(d, ds, 0)
	n.pend = append(n.pend, ds)
}

// Retire hands every packet still in the node's custody at the end of a
// run — pending jittered sends, the MAC's queue and in-flight exchange,
// and the routing protocol's send buffers — back to the arena, closing
// the leak-accounting books. The node must not carry traffic afterwards.
func (n *Node) Retire() {
	for len(n.pend) > 0 {
		d := n.pend[0]
		n.sched.CancelTask(d.h)
		n.arena.Release(d.p)
		n.forgetDelayed(d) // removes d from n.pend
	}
	n.Mac.Retire()
	if rt, ok := n.Proto.(routing.Retirer); ok {
		rt.Retire()
	}
}

// DropQueued implements routing.Env.
func (n *Node) DropQueued(pred func(p *packet.Packet, next packet.NodeID) bool) int {
	return n.Mac.DropWhere(pred)
}

// DeliverLocal implements routing.Env: the packet reached its end-to-end
// destination.
func (n *Node) DeliverLocal(p *packet.Packet, from packet.NodeID) {
	if n.OnLocal != nil {
		n.OnLocal(p, from)
	}
	if p.TCP != nil {
		if h, ok := n.flows[p.TCP.Flow]; ok {
			h(p, from)
		}
	}
}

// NotifyRelay implements routing.Env.
func (n *Node) NotifyRelay(p *packet.Packet) {
	if n.OnRelay != nil {
		n.OnRelay(p)
	}
}

// NotifyDrop implements routing.Env.
func (n *Node) NotifyDrop(p *packet.Packet, reason string) {
	if n.OnRouteDrop != nil {
		n.OnRouteDrop(p, reason)
	}
}

// Compile-time interface checks.
var (
	_ mac.Upper               = (*Node)(nil)
	_ routing.Env             = (*Node)(nil)
	_ routing.ArenaCarrier    = (*Node)(nil)
	_ routing.RecyclerCarrier = (*Node)(nil)
	_ routing.TrustCarrier    = (*Node)(nil)
)
