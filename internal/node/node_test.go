package node

import (
	"testing"

	"mtsim/internal/geo"
	"mtsim/internal/mac"
	"mtsim/internal/mobility"
	"mtsim/internal/packet"
	"mtsim/internal/phy"
	"mtsim/internal/routing"
	"mtsim/internal/sim"
)

// echoProto is a minimal protocol that delivers local packets and records
// everything else.
type echoProto struct {
	env      routing.Env
	started  bool
	received []*packet.Packet
	failed   []*packet.Packet
	tapped   int
}

func (e *echoProto) Name() string { return "ECHO" }
func (e *echoProto) Start()       { e.started = true }
func (e *echoProto) Send(p *packet.Packet) {
	if p.Dst == e.env.ID() {
		e.env.DeliverLocal(p, e.env.ID())
		return
	}
	e.env.SendMac(p, p.Dst)
}
func (e *echoProto) Receive(p *packet.Packet, from packet.NodeID) {
	e.received = append(e.received, p)
	if p.Dst == e.env.ID() {
		e.env.DeliverLocal(p, from)
	}
}
func (e *echoProto) LinkFailed(p *packet.Packet, next packet.NodeID) {
	e.failed = append(e.failed, p)
}
func (e *echoProto) TapFrame(f *packet.Frame) { e.tapped++ }

func buildPair(t *testing.T) (*sim.Scheduler, *Node, *Node, *echoProto, *echoProto) {
	t.Helper()
	sched := sim.NewScheduler()
	ch := phy.NewChannel(sched, 250, 550)
	uids := &packet.UIDSource{}
	rng := sim.NewRNG(1)
	n0 := New(0, sched, ch, mac.Default80211b(),
		&mobility.Static{P: geo.Point{X: 0, Y: 0}}, rng.Derive("n0"), uids)
	n1 := New(1, sched, ch, mac.Default80211b(),
		&mobility.Static{P: geo.Point{X: 100, Y: 0}}, rng.Derive("n1"), uids)
	p0 := &echoProto{env: n0}
	p1 := &echoProto{env: n1}
	n0.SetProtocol(p0)
	n1.SetProtocol(p1)
	n0.Start()
	n1.Start()
	return sched, n0, n1, p0, p1
}

func TestNodeWiring(t *testing.T) {
	sched, n0, n1, p0, p1 := buildPair(t)
	if !p0.started || !p1.started {
		t.Fatal("Start not propagated to protocol")
	}
	if n0.ID() != 0 || n1.ID() != 1 {
		t.Fatal("IDs wrong")
	}
	if n0.Position() != (geo.Point{X: 0, Y: 0}) {
		t.Fatal("position wrong")
	}
	if n0.Scheduler() != sched {
		t.Fatal("scheduler not exposed")
	}
	if n0.UIDs() == nil || n0.RNG() == nil {
		t.Fatal("env accessors broken")
	}
}

func TestNodeEndToEndViaMAC(t *testing.T) {
	sched, n0, _, _, p1 := buildPair(t)
	var uids packet.UIDSource
	pkt := &packet.Packet{UID: uids.Next(), Kind: packet.KindData, Size: 500, Src: 0, Dst: 1, TTL: 8}
	n0.Originate(pkt)
	sched.RunUntil(sim.Time(sim.Second))
	if len(p1.received) != 1 || p1.received[0] != pkt {
		t.Fatalf("received = %d", len(p1.received))
	}
}

func TestNodeFlowDispatch(t *testing.T) {
	sched, n0, n1, _, _ := buildPair(t)
	var got []*packet.Packet
	n1.RegisterFlow(7, func(p *packet.Packet, from packet.NodeID) {
		got = append(got, p)
	})
	var uids packet.UIDSource
	pkt := &packet.Packet{
		UID: uids.Next(), Kind: packet.KindData, Size: 500, Src: 0, Dst: 1, TTL: 8,
		TCP: &packet.TCPHeader{Flow: 7, Seq: 1},
	}
	n0.Originate(pkt)
	sched.RunUntil(sim.Time(sim.Second))
	if len(got) != 1 {
		t.Fatalf("flow handler calls = %d", len(got))
	}
	// Packets for unregistered flows are dropped silently at delivery.
	pkt2 := &packet.Packet{
		UID: uids.Next(), Kind: packet.KindData, Size: 500, Src: 0, Dst: 1, TTL: 8,
		TCP: &packet.TCPHeader{Flow: 99, Seq: 1},
	}
	n0.Originate(pkt2)
	sched.RunUntil(sim.Time(2 * sim.Second))
	if len(got) != 1 {
		t.Fatal("unregistered flow leaked into handler")
	}
}

func TestNodeOnLocalHook(t *testing.T) {
	sched, n0, n1, _, _ := buildPair(t)
	var local int
	n1.OnLocal = func(p *packet.Packet, from packet.NodeID) { local++ }
	var uids packet.UIDSource
	n0.Originate(&packet.Packet{
		UID: uids.Next(), Kind: packet.KindData, Size: 500, Src: 0, Dst: 1, TTL: 8,
		TCP: &packet.TCPHeader{Flow: 1},
	})
	sched.RunUntil(sim.Time(sim.Second))
	if local != 1 {
		t.Fatalf("OnLocal calls = %d", local)
	}
}

func TestNodeLinkFailurePropagates(t *testing.T) {
	sched := sim.NewScheduler()
	ch := phy.NewChannel(sched, 250, 550)
	uids := &packet.UIDSource{}
	rng := sim.NewRNG(1)
	n0 := New(0, sched, ch, mac.Default80211b(),
		&mobility.Static{P: geo.Point{X: 0, Y: 0}}, rng.Derive("n0"), uids)
	p0 := &echoProto{env: n0}
	n0.SetProtocol(p0)
	n0.Start()
	// No peer exists: the MAC exhausts retries and reports failure.
	pkt := &packet.Packet{UID: uids.Next(), Kind: packet.KindData, Size: 500, Src: 0, Dst: 1, TTL: 8}
	n0.Originate(pkt)
	sched.RunUntil(sim.Time(5 * sim.Second))
	if len(p0.failed) != 1 {
		t.Fatalf("LinkFailed calls = %d", len(p0.failed))
	}
}

func TestNodeTapFanout(t *testing.T) {
	sched, n0, n1, _, p1 := buildPair(t)
	// The protocol implements FrameTap, so SetProtocol wired one tap;
	// add a second listener and verify both observe traffic.
	var extra int
	n1.AddTap(func(f *packet.Frame) { extra++ })
	var uids packet.UIDSource
	n0.Originate(&packet.Packet{UID: uids.Next(), Kind: packet.KindData, Size: 1040, Src: 0, Dst: 1, TTL: 8})
	sched.RunUntil(sim.Time(sim.Second))
	if p1.tapped == 0 {
		t.Fatal("protocol tap not wired")
	}
	if extra == 0 {
		t.Fatal("second tap not called")
	}
}

func TestNodeDropQueued(t *testing.T) {
	sched, n0, _, _, _ := buildPair(t)
	var uids packet.UIDSource
	for i := 0; i < 5; i++ {
		n0.SendMac(&packet.Packet{UID: uids.Next(), Kind: packet.KindData, Size: 1040, Src: 0, Dst: 1, TTL: 8}, 1)
	}
	dropped := n0.DropQueued(func(p *packet.Packet, next packet.NodeID) bool { return true })
	if dropped == 0 {
		t.Fatal("nothing dropped from queue")
	}
	_ = sched
}
