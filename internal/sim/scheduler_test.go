package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if got := Time(2 * Second).Seconds(); got != 2.0 {
		t.Fatalf("Seconds() = %v", got)
	}
	if got := Micros(50); got != 50*Microsecond {
		t.Fatalf("Micros(50) = %v", got)
	}
	tm := Time(0).Add(3 * Second)
	if tm.Sub(Time(Second)) != 2*Second {
		t.Fatalf("Sub wrong")
	}
	if tm.String() != "3.000000s" {
		t.Fatalf("String = %q", tm.String())
	}
	if Duration(1500*Microsecond).String() != "0.001500s" {
		t.Fatalf("Duration.String = %q", Duration(1500*Microsecond).String())
	}
}

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(3*Time(Second), func() { got = append(got, 3) })
	s.At(1*Time(Second), func() { got = append(got, 1) })
	s.At(2*Time(Second), func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if s.Now() != 3*Time(Second) {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(Second), func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(Time(Second), func() { fired = true })
	s.Cancel(e)
	s.Cancel(e) // double-cancel is a no-op
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() not reported")
	}
}

func TestSchedulerCancelDuringRun(t *testing.T) {
	s := NewScheduler()
	fired := false
	var e2 *Event
	s.At(Time(Second), func() { s.Cancel(e2) })
	e2 = s.At(2*Time(Second), func() { fired = true })
	s.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestSchedulerReschedule(t *testing.T) {
	s := NewScheduler()
	var at Time
	e := s.At(Time(Second), func() { at = s.Now() })
	e = s.Reschedule(e, 5*Time(Second))
	s.Run()
	if at != 5*Time(Second) {
		t.Fatalf("rescheduled event fired at %v", at)
	}
	if e.At() != 5*Time(Second) {
		t.Fatalf("At() = %v", e.At())
	}
}

func TestSchedulerRunUntilHorizon(t *testing.T) {
	s := NewScheduler()
	var got []Time
	for i := 1; i <= 5; i++ {
		i := i
		s.At(Time(i)*Time(Second), func() { got = append(got, s.Now()) })
	}
	s.RunUntil(3 * Time(Second))
	if len(got) != 3 {
		t.Fatalf("executed %d events, want 3", len(got))
	}
	if s.Now() != 3*Time(Second) {
		t.Fatalf("clock = %v, want horizon", s.Now())
	}
	// Remaining events still run afterwards.
	s.RunUntil(10 * Time(Second))
	if len(got) != 5 {
		t.Fatalf("executed %d events total, want 5", len(got))
	}
	if s.Now() != 10*Time(Second) {
		t.Fatalf("clock = %v, want 10s", s.Now())
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 0; i < 10; i++ {
		s.At(Time(i)*Time(Second), func() {
			count++
			if count == 4 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 4 {
		t.Fatalf("ran %d events after Stop, want 4", count)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(Time(Second), func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(0, func() {})
}

func TestSchedulerNegativeDelayPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var got []Time
	s.At(Time(Second), func() {
		s.After(Duration(Second), func() { got = append(got, s.Now()) })
	})
	s.Run()
	if len(got) != 1 || got[0] != 2*Time(Second) {
		t.Fatalf("nested event: %v", got)
	}
}

// Property: for any multiset of event times, execution order is the sorted
// order, with FIFO among equal timestamps.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		s := NewScheduler()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, v := range raw {
			at := Time(v) * Time(Microsecond)
			i := i
			s.At(at, func() { fired = append(fired, rec{at, i}) })
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		ok := sort.SliceIsSorted(fired, func(a, b int) bool {
			if fired[a].at != fired[b].at {
				return fired[a].at < fired[b].at
			}
			return fired[a].seq < fired[b].seq
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestSchedulerCancelProperty(t *testing.T) {
	f := func(times []uint16, mask []bool) bool {
		s := NewScheduler()
		fired := map[int]bool{}
		events := make([]*Event, len(times))
		for i, v := range times {
			i := i
			events[i] = s.At(Time(v), func() { fired[i] = true })
		}
		cancelled := map[int]bool{}
		for i := range events {
			if i < len(mask) && mask[i] {
				s.Cancel(events[i])
				cancelled[i] = true
			}
		}
		s.Run()
		for i := range events {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestDeriveSeedSeparation(t *testing.T) {
	s1 := DeriveSeed(7, "mobility")
	s2 := DeriveSeed(7, "traffic")
	s3 := DeriveSeed(8, "mobility")
	if s1 == s2 || s1 == s3 {
		t.Fatalf("derived seeds collide: %d %d %d", s1, s2, s3)
	}
	if s1 != DeriveSeed(7, "mobility") {
		t.Fatal("DeriveSeed not deterministic")
	}
}

func TestRNGUniformRange(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestRNGJitterRange(t *testing.T) {
	g := NewRNG(1)
	if g.Jitter(0) != 0 {
		t.Fatal("Jitter(0) != 0")
	}
	for i := 0; i < 1000; i++ {
		j := g.Jitter(Second)
		if j < 0 || j >= Second {
			t.Fatalf("jitter out of range: %v", j)
		}
	}
}

func TestRNGDeriveIndependence(t *testing.T) {
	// Consuming extra draws from one derived stream must not change
	// another derived stream (paired-comparison property).
	g1 := NewRNG(99)
	a := g1.Derive("a")
	b1 := g1.Derive("b")
	firstB1 := b1.Float64()

	g2 := NewRNG(99)
	a2 := g2.Derive("a")
	for i := 0; i < 50; i++ {
		a2.Float64() // extra draws
	}
	b2 := g2.Derive("b")
	if firstB1 != b2.Float64() {
		t.Fatal("derived stream perturbed by sibling draws")
	}
	_ = a
}

func TestRNGExpPositive(t *testing.T) {
	g := NewRNG(5)
	sum := 0.0
	for i := 0; i < 5000; i++ {
		v := g.Exp(2.0)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / 5000
	if mean < 1.6 || mean > 2.4 {
		t.Fatalf("exp mean = %v, want ~2.0", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	g := NewRNG(3)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

// taskRec is a Task recording the args it was dispatched with.
type taskRec struct{ got []int }

func (t *taskRec) Run(arg int) { t.got = append(t.got, arg) }

func TestSchedulerTaskEventsDispatchInOrder(t *testing.T) {
	s := NewScheduler()
	tr := &taskRec{}
	var closures []int
	s.AtTask(2*Time(Second), tr, 2)
	s.At(Time(Second), func() { closures = append(closures, 1) })
	s.AtTask(Time(Second), tr, 1) // same time as the closure, scheduled later
	s.AfterTask(Duration(3*Second), tr, 3)
	s.Run()
	if len(tr.got) != 3 || tr.got[0] != 1 || tr.got[1] != 2 || tr.got[2] != 3 {
		t.Fatalf("task args = %v", tr.got)
	}
	if len(closures) != 1 {
		t.Fatalf("closure events = %v", closures)
	}
	if s.Executed != 4 {
		t.Fatalf("Executed = %d, want 4", s.Executed)
	}
}

func TestSchedulerTaskEventPoolReuse(t *testing.T) {
	s := NewScheduler()
	tr := &taskRec{}
	for i := 0; i < 100; i++ {
		s.AfterTask(Duration(Millisecond), tr, i)
		s.Step()
	}
	if len(tr.got) != 100 {
		t.Fatalf("dispatched %d, want 100", len(tr.got))
	}
	// Sequential schedule/fire needs exactly one pooled Event.
	if s.FreeListLen() != 1 {
		t.Fatalf("free list holds %d events, want 1", s.FreeListLen())
	}
}

func TestSchedulerTaskEventZeroAllocSteadyState(t *testing.T) {
	s := NewScheduler()
	tr := &taskRec{got: make([]int, 0, 4096)}
	// Warm up the pool.
	s.AfterTask(0, tr, 0)
	s.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		s.AfterTask(Duration(Millisecond), tr, 0)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("task scheduling allocates %.1f objects/op, want 0", allocs)
	}
}

// Regression test for the pooled-scheduler lifecycle: rescheduling an event
// that has already fired must create a fresh, working event and must not
// touch the task-event free list (a stale *Event must never corrupt it).
func TestSchedulerRescheduleAfterFired(t *testing.T) {
	s := NewScheduler()
	runs := 0
	e := s.At(Time(Second), func() { runs++ })
	s.Run()
	if runs != 1 || e.index != -1 {
		t.Fatalf("precondition: runs=%d index=%d", runs, e.index)
	}
	// Mix some pooled traffic in so a corrupted free list would be visible.
	tr := &taskRec{}
	s.AfterTask(Duration(Millisecond), tr, 7)
	s.Step()
	before := s.FreeListLen()

	e2 := s.Reschedule(e, 5*Time(Second))
	if e2 == nil || e2 == e {
		t.Fatalf("Reschedule of fired event returned %v", e2)
	}
	s.Run()
	if runs != 2 {
		t.Fatalf("rescheduled fired event ran %d times, want 2", runs)
	}
	if s.FreeListLen() != before {
		t.Fatalf("free list changed: %d -> %d", before, s.FreeListLen())
	}
}

func TestSchedulerRescheduleNil(t *testing.T) {
	s := NewScheduler()
	if got := s.Reschedule(nil, Time(Second)); got != nil {
		t.Fatalf("Reschedule(nil) = %v", got)
	}
}

func TestSchedulerReschedulePooledPanics(t *testing.T) {
	s := NewScheduler()
	s.AtTask(Time(Second), &taskRec{}, 0)
	e := s.heap[0].ev // white box: task events hand out no handles
	defer func() {
		if recover() == nil {
			t.Fatal("rescheduling a pooled task event did not panic")
		}
	}()
	s.Reschedule(e, 2*Time(Second))
}

func TestSchedulerCancelAfterFired(t *testing.T) {
	s := NewScheduler()
	runs := 0
	e := s.At(Time(Second), func() { runs++ })
	s.Run()
	s.Cancel(e) // must be a harmless no-op
	if !e.Cancelled() {
		t.Fatal("Cancelled() not reported after post-fire Cancel")
	}
	if s.FreeListLen() != 0 {
		t.Fatal("closure event leaked into the task free list")
	}
	if runs != 1 {
		t.Fatalf("runs = %d", runs)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	g := rand.New(rand.NewSource(1))
	// Keep a standing population of events, replacing each as it fires.
	var fire func()
	fire = func() {
		s.After(Duration(g.Int63n(int64(Second))), fire)
	}
	for i := 0; i < 1024; i++ {
		s.After(Duration(g.Int63n(int64(Second))), fire)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func TestSchedulerResetMatchesFresh(t *testing.T) {
	// Run an arbitrary workload, Reset, and verify the scheduler replays a
	// second workload exactly like a brand-new scheduler would: same
	// dispatch order, same sequence numbering, same clock.
	type rec struct{ order []int }
	load := func(s *Scheduler, r *rec) {
		tr := &taskRec{}
		s.At(5, func() { r.order = append(r.order, 1) })
		s.At(5, func() { r.order = append(r.order, 2) }) // FIFO tie
		s.AtTask(3, tr, 3)
		s.After(10, func() { r.order = append(r.order, 4); r.order = append(r.order, tr.got...) })
		s.RunUntil(20)
	}

	reused := NewScheduler()
	// First life: leave pending events in the heap (both flavours) so Reset
	// has something nontrivial to clear.
	reused.At(1, func() {})
	reused.AtTask(100, &taskRec{}, 0)
	reused.At(200, func() {})
	reused.RunUntil(50)
	if reused.Len() == 0 {
		t.Fatal("test wants pending events at Reset")
	}
	reused.Reset()

	if reused.Now() != 0 || reused.Len() != 0 || reused.Executed != 0 {
		t.Fatalf("reset state: now=%v len=%d executed=%d", reused.Now(), reused.Len(), reused.Executed)
	}
	if reused.FreeListLen() == 0 {
		t.Fatal("reset dropped the pooled task event instead of recycling it")
	}

	var a, b rec
	fresh := NewScheduler()
	load(fresh, &a)
	load(reused, &b)
	if len(a.order) != len(b.order) {
		t.Fatalf("dispatch counts differ: %v vs %v", a.order, b.order)
	}
	for i := range a.order {
		if a.order[i] != b.order[i] {
			t.Fatalf("dispatch order differs: %v vs %v", a.order, b.order)
		}
	}
	if fresh.Now() != reused.Now() || fresh.Executed != reused.Executed {
		t.Fatalf("clock/executed differ: %v/%d vs %v/%d",
			fresh.Now(), fresh.Executed, reused.Now(), reused.Executed)
	}
}

func TestRNGRecyclerBitIdentical(t *testing.T) {
	var p RNGRecycler
	draw := func(g *RNG) [4]int64 {
		d := g.Derive("sub")
		return [4]int64{g.Int63(), d.Int63(), g.Int63(), int64(g.Intn(1000))}
	}
	fresh := draw(NewRNG(42))
	first := draw(p.New(42))
	if fresh != first {
		t.Fatalf("recycler first life differs: %v vs %v", fresh, first)
	}
	p.Recycle()
	if p.Len() == 0 {
		t.Fatal("recycler reclaimed nothing")
	}
	second := draw(p.New(42))
	if fresh != second {
		t.Fatalf("re-seeded source differs from fresh: %v vs %v", fresh, second)
	}
	// A different seed on a recycled source is that seed's stream.
	p.Recycle()
	other := draw(p.New(7))
	if other != draw(NewRNG(7)) {
		t.Fatal("recycled source not equivalent under new seed")
	}
	if other == fresh {
		t.Fatal("seed ignored on recycled source")
	}
}

// TestRunUntilBudgetChunksMatchRunUntil: slicing a run into arbitrary
// budget chunks pops the same events in the same order with the same
// final clock and Executed count as one RunUntil — the invariant the
// watchdog's chunked run loop rests on.
func TestRunUntilBudgetChunksMatchRunUntil(t *testing.T) {
	build := func() (*Scheduler, *[]int) {
		s := NewScheduler()
		var order []int
		// A cascading workload: events schedule follow-ups, including
		// some beyond the horizon.
		for i := 0; i < 10; i++ {
			i := i
			s.At(Time(i)*Time(Millisecond), func() {
				order = append(order, i)
				s.After(3*Millisecond, func() { order = append(order, 100+i) })
			})
		}
		return s, &order
	}
	ref, refOrder := build()
	ref.RunUntil(8 * Time(Millisecond))

	chunked, chOrder := build()
	horizon := 8 * Time(Millisecond)
	steps := 0
	for !chunked.RunUntilBudget(horizon, 3) {
		if steps++; steps > 100 {
			t.Fatal("RunUntilBudget never completed")
		}
	}
	if len(*refOrder) == 0 {
		t.Fatal("reference run executed nothing")
	}
	if got, want := *chOrder, *refOrder; len(got) != len(want) {
		t.Fatalf("chunked run executed %d events, reference %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("event %d: chunked ran %d, reference %d", i, got[i], want[i])
			}
		}
	}
	if chunked.Now() != ref.Now() {
		t.Fatalf("clock differs: chunked %v, reference %v", chunked.Now(), ref.Now())
	}
	if chunked.Executed != ref.Executed {
		t.Fatalf("Executed differs: chunked %d, reference %d", chunked.Executed, ref.Executed)
	}
	if chunked.Len() != ref.Len() {
		t.Fatalf("pending differs: chunked %d, reference %d", chunked.Len(), ref.Len())
	}
}

// TestRunUntilBudgetStopsMidRun: an exhausted budget leaves the clock at
// the last executed event (not the horizon) and the queue intact, and a
// later unbounded run finishes the remainder.
func TestRunUntilBudgetStopsMidRun(t *testing.T) {
	s := NewScheduler()
	var ran int
	for i := 0; i < 6; i++ {
		s.At(Time(i)*Time(Second), func() { ran++ })
	}
	horizon := 10 * Time(Second)
	if done := s.RunUntilBudget(horizon, 2); done {
		t.Fatal("budget of 2 over 6 events reported completion")
	}
	if ran != 2 {
		t.Fatalf("ran %d events under a budget of 2", ran)
	}
	if s.Now() == horizon {
		t.Fatal("clock jumped to the horizon on an incomplete run")
	}
	if !s.RunUntilBudget(horizon, 1<<30) {
		t.Fatal("unbounded continuation did not complete")
	}
	if ran != 6 || s.Now() != horizon {
		t.Fatalf("continuation: ran=%d now=%v, want 6 events and the horizon", ran, s.Now())
	}
}
