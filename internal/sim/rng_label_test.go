package sim

import (
	"fmt"
	"testing"
)

// TestLabelCacheMatchesSprintf locks the byte-identity that makes cached
// label derivation safe: Label(i) must equal the fmt.Sprintf the scenario
// builder used before, for every prefix in use and across out-of-order
// first accesses.
func TestLabelCacheMatchesSprintf(t *testing.T) {
	for _, prefix := range []string{"place", "mobility", "node"} {
		c := NewLabelCache(prefix)
		// First access out of order: the cache must backfill 0..i.
		if got, want := c.Label(17), fmt.Sprintf("%s/%d", prefix, 17); got != want {
			t.Fatalf("Label(17) = %q, want %q", got, want)
		}
		for i := 0; i < 200; i++ {
			want := fmt.Sprintf("%s/%d", prefix, i)
			if got := c.Label(i); got != want {
				t.Fatalf("%s: Label(%d) = %q, want %q", prefix, i, got, want)
			}
			if again := c.Label(i); again != want {
				t.Fatalf("%s: second Label(%d) = %q, want %q", prefix, i, again, want)
			}
		}
	}
}

// TestLabelCacheDerivesSameStreams is the stream-level guarantee behind
// the scenario's cached per-node RNG labels: deriving from a cached label
// must yield exactly the stream the Sprintf-built label yields — same
// seed, same draws — or context re-runs would diverge from fresh builds.
func TestLabelCacheDerivesSameStreams(t *testing.T) {
	c := NewLabelCache("node")
	for i := 0; i < 50; i++ {
		cached := NewRNG(42).Derive(c.Label(i))
		fresh := NewRNG(42).Derive(fmt.Sprintf("node/%d", i))
		for d := 0; d < 8; d++ {
			if a, b := cached.Int63(), fresh.Int63(); a != b {
				t.Fatalf("node/%d draw %d: cached stream %d != fresh stream %d", i, d, a, b)
			}
		}
	}
}

// TestLabelCacheReuseAcrossRuns simulates two context re-runs: the second
// run's labels must be the very same strings (no per-run growth), and
// DeriveSeed over them must match the first run's seeds.
func TestLabelCacheReuseAcrossRuns(t *testing.T) {
	c := NewLabelCache("mobility")
	var first []int64
	for i := 0; i < 30; i++ {
		first = append(first, DeriveSeed(7, c.Label(i)))
	}
	for i := 0; i < 30; i++ {
		if got := DeriveSeed(7, c.Label(i)); got != first[i] {
			t.Fatalf("run 2 label %d derives %d, run 1 derived %d", i, got, first[i])
		}
	}
}
