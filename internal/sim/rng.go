package sim

import (
	"hash/fnv"
	"math/rand"
	"strconv"
)

// splitmix64 advances a 64-bit state and returns the next output of the
// SplitMix64 generator. It is used only for seed derivation: it turns one
// master seed into well-separated per-subsystem seeds.
func splitmix64(state uint64) (next uint64, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// DeriveSeed produces a sub-seed from a master seed and a label, so that
// independent subsystems ("mobility", "traffic", "mac/12", ...) consume
// independent random streams: adding draws in one subsystem does not perturb
// the others, keeping scenario comparisons paired across protocols.
func DeriveSeed(master int64, label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	state := uint64(master) ^ h.Sum64()
	_, out := splitmix64(state)
	_, out2 := splitmix64(out)
	return int64(out2)
}

// RNG is a deterministic random stream with the convenience methods the
// simulator needs. It wraps math/rand with an explicit source so that runs
// are reproducible from the configuration seed alone.
type RNG struct {
	r   *rand.Rand
	rec *RNGRecycler // nil for standalone streams
}

// NewRNG returns a stream seeded with the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// RNGRecycler hands out RNGs whose underlying math/rand source — a ~5 KiB
// lagged-Fibonacci state — is recycled across simulation runs: re-seeding
// a recycled source yields exactly the stream a fresh source would, so
// reuse is observationally free. A scenario builds well over a hundred
// derived streams (per-node mobility, node, MAC, ...), which makes this
// one of the larger recyclable setup costs in a sweep (scenario.Context
// owns one recycler per worker). Not safe for concurrent use.
type RNGRecycler struct {
	free []*rand.Rand
	live []*rand.Rand
}

// New returns a stream seeded with seed, reusing a recycled source when
// one is available. Streams derived from it recycle through this pool too.
func (p *RNGRecycler) New(seed int64) *RNG {
	var r *rand.Rand
	if n := len(p.free); n > 0 {
		r = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		r.Seed(seed)
	} else {
		r = rand.New(rand.NewSource(seed))
	}
	p.live = append(p.live, r)
	return &RNG{r: r, rec: p}
}

// Recycle reclaims every stream handed out since the last Recycle. The
// caller must guarantee those streams are dead (the run they were built
// for has completed): a reclaimed source re-seeds under the next run.
func (p *RNGRecycler) Recycle() {
	p.free = append(p.free, p.live...)
	for i := range p.live {
		p.live[i] = nil
	}
	p.live = p.live[:0]
}

// Len reports the number of pooled free sources (tests/stats).
func (p *RNGRecycler) Len() int { return len(p.free) }

// LabelCache memoises indexed RNG derivation labels ("node/0", "node/1",
// ...). Scenario builds derive several labelled streams per node; the
// labels are pure functions of the prefix and index, so rebuilding them
// with fmt.Sprintf on every Context re-run is allocation for no entropy —
// the strings hash identically — and is the one per-node setup cost
// RNGRecycler reuse cannot absorb on its own. One cache per prefix;
// Label(i) is byte-identical to prefix+"/"+itoa(i) by construction, so
// cached and fresh derivations seed the same streams.
type LabelCache struct {
	prefix string
	labels []string
}

// NewLabelCache returns an empty cache for prefix (e.g. "node").
func NewLabelCache(prefix string) *LabelCache { return &LabelCache{prefix: prefix} }

// Label returns the cached "<prefix>/<i>" string, growing the cache on
// first use of an index. i must be non-negative.
func (c *LabelCache) Label(i int) string {
	for len(c.labels) <= i {
		c.labels = append(c.labels, c.prefix+"/"+strconv.Itoa(len(c.labels)))
	}
	return c.labels[i]
}

// Derive returns a new independent stream labelled relative to this one,
// drawn from the same recycler when this stream came from one.
func (g *RNG) Derive(label string) *RNG {
	seed := DeriveSeed(g.r.Int63(), label)
	if g.rec != nil {
		return g.rec.New(seed)
	}
	return NewRNG(seed)
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform value in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Intn returns a uniform integer in [0,n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Exp returns an exponentially distributed value with the given mean.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Jitter returns a duration uniform in [0,d). Used to desynchronise
// periodic timers (e.g. route-checking rounds) exactly as ns-2 does.
func (g *RNG) Jitter(d Duration) Duration {
	if d <= 0 {
		return 0
	}
	return Duration(g.r.Int63n(int64(d)))
}
