package sim

import (
	"hash/fnv"
	"math/rand"
)

// splitmix64 advances a 64-bit state and returns the next output of the
// SplitMix64 generator. It is used only for seed derivation: it turns one
// master seed into well-separated per-subsystem seeds.
func splitmix64(state uint64) (next uint64, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// DeriveSeed produces a sub-seed from a master seed and a label, so that
// independent subsystems ("mobility", "traffic", "mac/12", ...) consume
// independent random streams: adding draws in one subsystem does not perturb
// the others, keeping scenario comparisons paired across protocols.
func DeriveSeed(master int64, label string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	state := uint64(master) ^ h.Sum64()
	_, out := splitmix64(state)
	_, out2 := splitmix64(out)
	return int64(out2)
}

// RNG is a deterministic random stream with the convenience methods the
// simulator needs. It wraps math/rand with an explicit source so that runs
// are reproducible from the configuration seed alone.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Derive returns a new independent stream labelled relative to this one.
func (g *RNG) Derive(label string) *RNG {
	return NewRNG(DeriveSeed(g.r.Int63(), label))
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform value in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Intn returns a uniform integer in [0,n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Exp returns an exponentially distributed value with the given mean.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Jitter returns a duration uniform in [0,d). Used to desynchronise
// periodic timers (e.g. route-checking rounds) exactly as ns-2 does.
func (g *RNG) Jitter(d Duration) Duration {
	if d <= 0 {
		return 0
	}
	return Duration(g.r.Int63n(int64(d)))
}
