package sim

// Event is a scheduled callback. Events are created through Scheduler.At /
// Scheduler.After and may be cancelled; a cancelled event is skipped when its
// time comes. The zero Event is not valid.
//
// Events come in two flavours:
//
//   - Closure events (At / After) carry a func() and return a handle the
//     caller may keep for Cancel / Reschedule. They are never recycled, so
//     a retained *Event stays valid after it fires.
//   - Task events (AtTask / AfterTask) carry a Task plus a small integer
//     argument and are fire-and-forget: no handle is returned and the Event
//     is recycled into a free list the moment it leaves the heap. They cost
//     zero steady-state allocations, which is what the PHY broadcast hot
//     path needs: two batched arrival events per frame (first-bit and
//     last-bit, each iterating the whole receiver batch), or two events
//     per receiver per frame in the unbatched reference mode. Either way
//     one executed event may deliver to many radios — Executed counts
//     scheduler dispatches, not per-receiver deliveries.
type Event struct {
	at        Time
	seq       uint64 // creation order; breaks ties deterministically (FIFO)
	fn        func()
	task      Task
	arg       int
	index     int // heap index, -1 once popped
	cancelled bool
	pooled    bool // recycle into the free list once fired
}

// Task is the allocation-free alternative to a closure: a long-lived object
// whose Run method is invoked when the event fires. The integer argument
// lets one object serve several event kinds (e.g. frame-arrival start and
// end) without per-event state.
type Task interface {
	Run(arg int)
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

func (e *Event) dispatch() {
	if e.task != nil {
		e.task.Run(e.arg)
		return
	}
	e.fn()
}

// heapEntry is one slot of the event queue. The ordering key (at, seq) is
// stored inline so that sift comparisons stay within the backing array
// instead of chasing *Event pointers — the queue is the simulator's hottest
// data structure.
type heapEntry struct {
	at  Time
	seq uint64
	ev  *Event
}

// eventHeap is a hand-rolled 4-ary min-heap ordered by (at, seq). A wider
// node halves the tree depth of the binary heap and the sift loops move a
// hole instead of swapping (one entry write + one index write per level),
// which together remove the container/heap interface dispatch and most of
// the memory traffic from the hot path.
type eventHeap []heapEntry

func entryLess(a, b heapEntry) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (h eventHeap) siftUp(i int) {
	entry := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(entry, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].ev.index = i
		i = p
	}
	h[i] = entry
	entry.ev.index = i
}

func (h eventHeap) siftDown(i int) {
	entry := h[i]
	n := len(h)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[m]) {
				m = j
			}
		}
		if !entryLess(h[m], entry) {
			break
		}
		h[i] = h[m]
		h[i].ev.index = i
		i = m
	}
	h[i] = entry
	entry.ev.index = i
}

func (h *eventHeap) push(e *Event) {
	*h = append(*h, heapEntry{at: e.at, seq: e.seq, ev: e})
	h.siftUp(len(*h) - 1)
}

// popMin removes and returns the earliest event. (Floyd's bottom-up
// deletion was tried here and measured slower: short-lived arrival events
// keep the tail entries young, so the classic sift-down's early exit beats
// the unconditional hole-to-leaf walk.)
func (h *eventHeap) popMin() *Event {
	old := *h
	e := old[0].ev
	n := len(old) - 1
	last := old[n]
	old[n] = heapEntry{}
	*h = old[:n]
	if n > 0 {
		old[0] = last
		h.siftDown(0)
	}
	e.index = -1
	return e
}

// remove deletes the entry at index i.
func (h *eventHeap) remove(i int) {
	old := *h
	e := old[i].ev
	n := len(old) - 1
	last := old[n]
	old[n] = heapEntry{}
	*h = old[:n]
	if i < n {
		old[i] = last
		h.siftDown(i)
		h.siftUp(i)
	}
	e.index = -1
}

// Scheduler is a discrete-event scheduler: a priority queue of timestamped
// callbacks executed in (time, insertion-order) order while a virtual clock
// advances. It is not safe for concurrent use; a simulation owns exactly one
// scheduler and runs on one goroutine.
type Scheduler struct {
	heap    eventHeap
	free    []*Event // recycled task events (fire-and-forget, no handles)
	now     Time
	seq     uint64
	stopped bool
	// Executed counts events that have been dispatched; useful for
	// progress accounting and performance reporting.
	Executed uint64
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{heap: make(eventHeap, 0, 1024)}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending (non-cancelled) events, counting
// cancelled-but-unpopped events too; it is intended for tests and stats.
func (s *Scheduler) Len() int { return len(s.heap) }

// FreeListLen reports the size of the task-event free list (tests/stats).
func (s *Scheduler) FreeListLen() int { return len(s.free) }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// it indicates a logic error in the calling model, and silently reordering
// events would destroy causality.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	e := &Event{at: t, seq: s.seq, fn: fn}
	s.seq++
	s.heap.push(e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic("sim: negative delay")
	}
	return s.At(s.now.Add(d), fn)
}

// AtTask schedules task.Run(arg) at virtual time t using a pooled Event.
// The event is fire-and-forget: it cannot be cancelled or rescheduled (no
// handle is returned) and its Event struct is recycled once it fires, so
// steady-state scheduling through this path does not allocate.
func (s *Scheduler) AtTask(t Time, task Task, arg int) {
	s.atTask(t, task, arg)
}

func (s *Scheduler) atTask(t Time, task Task, arg int) *Event {
	if t < s.now {
		panic("sim: event scheduled in the past")
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	*e = Event{at: t, seq: s.seq, task: task, arg: arg, pooled: true}
	s.seq++
	s.heap.push(e)
	return e
}

// AfterTask schedules task.Run(arg) to run d after the current time; see
// AtTask for the pooling contract.
func (s *Scheduler) AfterTask(d Duration, task Task, arg int) {
	if d < 0 {
		panic("sim: negative delay")
	}
	s.AtTask(s.now.Add(d), task, arg)
}

// TaskHandle is a revocation token for a cancellable pooled task event. It
// pairs the Event pointer with the globally unique sequence number the
// event was created with, so a handle kept past the event's firing (and the
// Event struct's recycling into another event) is detected and ignored
// rather than cancelling an unrelated event. The zero TaskHandle refers to
// nothing; Pending reports false for it.
type TaskHandle struct {
	ev  *Event
	seq uint64
}

// Pending reports whether the handle refers to an event at all. It does not
// track firing — callers that need "still scheduled" semantics must clear
// their handle when the task runs (the task's Run is the notification).
func (h TaskHandle) Pending() bool { return h.ev != nil }

// AtTaskCancellable is AtTask returning a revocation handle for timer-style
// users (one outstanding event, frequently cancelled or superseded). The
// event is pooled exactly like AtTask's.
func (s *Scheduler) AtTaskCancellable(t Time, task Task, arg int) TaskHandle {
	e := s.atTask(t, task, arg)
	return TaskHandle{ev: e, seq: e.seq}
}

// AfterTaskCancellable is AfterTask returning a revocation handle.
func (s *Scheduler) AfterTaskCancellable(d Duration, task Task, arg int) TaskHandle {
	if d < 0 {
		panic("sim: negative delay")
	}
	return s.AtTaskCancellable(s.now.Add(d), task, arg)
}

// CancelTask revokes a pooled task event. Stale handles — the event already
// fired, was cancelled, or its struct was recycled for a newer event — are
// detected by the sequence check and ignored, so CancelTask can never
// corrupt the free list or cancel the wrong event.
func (s *Scheduler) CancelTask(h TaskHandle) {
	e := h.ev
	if e == nil || !e.pooled || e.seq != h.seq || e.index < 0 {
		return
	}
	s.heap.remove(e.index)
	s.recycle(e)
}

// recycle returns a popped task event to the free list. Closure events are
// never recycled: callers may retain their handles indefinitely, and a
// recycled handle would alias a future, unrelated event.
func (s *Scheduler) recycle(e *Event) {
	if !e.pooled {
		return
	}
	// The sentinel seq makes any retained TaskHandle to this event provably
	// stale while it sits in the free list (the seq counter never reaches it).
	*e = Event{index: -1, seq: ^uint64(0)}
	s.free = append(s.free, e)
}

// Cancel marks the event so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op. The event is removed from the queue
// immediately to keep the heap small in timer-heavy workloads.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.cancelled {
		return
	}
	if e.index < 0 {
		// Already fired. Closure events keep their identity after firing,
		// so marking them cancelled preserves the historical Cancelled()
		// contract; there is nothing to remove from the heap.
		e.cancelled = true
		return
	}
	e.cancelled = true
	s.heap.remove(e.index)
	s.recycle(e)
}

// Reschedule cancels e and returns a fresh event running the same callback
// at the new time. It is a convenience for restartable timers.
//
// It is defensive about event lifecycle so that timer code cannot corrupt
// the scheduler: rescheduling a nil event returns nil; rescheduling an
// event that has already fired (index == -1) creates a fresh event from the
// retained callback without touching the heap or the free list; and
// rescheduling a pooled task event panics, because a fired task event may
// already have been recycled and reused for an unrelated event, so the
// request is not meaningful (task events hand out no handles, so this can
// only happen through a scheduler bug).
func (s *Scheduler) Reschedule(e *Event, t Time) *Event {
	if e == nil {
		return nil
	}
	if e.pooled {
		panic("sim: reschedule of a pooled task event")
	}
	fn := e.fn
	s.Cancel(e)
	return s.At(t, fn)
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It returns false when the queue is empty. Cancelled events
// never appear here: Cancel removes them from the heap eagerly.
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.heap.popMin()
	s.now = e.at
	s.Executed++
	e.dispatch()
	s.recycle(e)
	return true
}

// RunUntil executes events in order until the queue is empty or the next
// event lies strictly beyond the horizon; the clock is then advanced to the
// horizon. Stop aborts the loop early.
func (s *Scheduler) RunUntil(horizon Time) {
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		if s.heap[0].at > horizon {
			break
		}
		e := s.heap.popMin()
		s.now = e.at
		s.Executed++
		e.dispatch()
		s.recycle(e)
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// RunUntilBudget executes at most budget events in order up to the
// horizon and reports whether the run is complete (no pending event at or
// before the horizon remains). It is RunUntil sliced into resumable
// chunks: calling it repeatedly until it returns true pops exactly the
// same events in exactly the same order as one RunUntil call — the clock
// is only advanced to the horizon on completion — which is what lets a
// watchdog (scenario.Scenario.RunWatched) interleave wall-clock and
// event-budget checks between chunks without perturbing a single bit of
// the simulation. Stop aborts the current chunk early (reported as not
// complete unless the queue happens to be drained).
func (s *Scheduler) RunUntilBudget(horizon Time, budget uint64) bool {
	s.stopped = false
	for budget > 0 && len(s.heap) > 0 && !s.stopped {
		if s.heap[0].at > horizon {
			break
		}
		e := s.heap.popMin()
		s.now = e.at
		s.Executed++
		e.dispatch()
		s.recycle(e)
		budget--
	}
	done := len(s.heap) == 0 || s.heap[0].at > horizon
	if done && s.now < horizon {
		s.now = horizon
	}
	return done
}

// Run executes every pending event (including ones scheduled while running)
// until the queue empties or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// Stop makes the innermost Run/RunUntil return after the current event.
func (s *Scheduler) Stop() { s.stopped = true }

// Reset returns the scheduler to its freshly-constructed state — clock at
// zero, no pending events — while keeping the heap's backing array and
// the task-event free list. Pending pooled task events are recycled into
// the free list (their Task references cleared so nothing from the
// previous simulation is pinned); pending closure events are dropped
// (their retained handles stay valid but refer to a dead simulation).
//
// The sequence counter deliberately keeps counting across Reset: only the
// relative order of seq values is observable (FIFO tie-breaking among
// same-time events), so continuing the count changes no behaviour, while
// restarting it would let a TaskHandle retained across Reset alias a
// recycled Event re-issued under the same seq — voiding CancelTask's
// stale-handle guarantee. A Reset scheduler is therefore observationally
// indistinguishable from NewScheduler's, which is what lets a worker
// reuse one scheduler across runs without perturbing a single bit of the
// results (scenario.Context relies on this).
func (s *Scheduler) Reset() {
	for i := range s.heap {
		e := s.heap[i].ev
		e.index = -1
		s.recycle(e) // no-op for closure events
		s.heap[i] = heapEntry{}
	}
	s.heap = s.heap[:0]
	s.now = 0
	s.stopped = false
	s.Executed = 0
}
